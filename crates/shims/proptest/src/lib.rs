//! Offline stand-in for the `proptest` crate.
//!
//! The workspace must build with no network access, so this crate
//! implements the slice of proptest this repository's property tests use:
//! the [`proptest!`] / [`prop_oneof!`] / [`prop_assert!`] macros, the
//! [`Strategy`] trait with `prop_map`, and the `any` / range / tuple /
//! [`collection::vec`] / [`option::of`] / [`array::uniform32`] / [`Just`]
//! strategies.
//!
//! Differences from upstream, deliberately accepted for a test-only shim:
//! no shrinking (a failing case panics with the assertion message but is
//! not minimized), and the value streams differ from upstream proptest.
//! Case generation is fully deterministic: the RNG seed is derived from the
//! test function's name, so failures reproduce exactly across runs.

use std::marker::PhantomData;

pub mod test_runner {
    /// Per-test configuration (subset of `proptest::test_runner::Config`).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }
}

pub use test_runner::Config as ProptestConfig;

/// The deterministic case generator handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Derives the RNG for `case` of the test named `name`.
    pub fn for_case(name: &str, case: u32) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            state: h ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    /// Next raw 64 bits (SplitMix64).
    pub fn bits(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value below `bound` (`bound > 0`).
    pub fn below(&mut self, bound: u64) -> u64 {
        self.bits() % bound
    }
}

/// A generator of test-case values (subset of `proptest::strategy::Strategy`).
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: std::rc::Rc::new(move |rng: &mut TestRng| self.sample(rng)),
        }
    }
}

/// A type-erased strategy.
#[derive(Clone)]
pub struct BoxedStrategy<T> {
    inner: std::rc::Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.inner)(rng)
    }
}

/// The `prop_map` combinator.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed strategies (backs [`prop_oneof!`]).
pub struct OneOf<T> {
    choices: Vec<BoxedStrategy<T>>,
}

impl<T> OneOf<T> {
    /// Builds a uniform union of `choices`.
    ///
    /// # Panics
    ///
    /// Panics if `choices` is empty.
    pub fn new(choices: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!choices.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { choices }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let k = rng.below(self.choices.len() as u64) as usize;
        self.choices[k].sample(rng)
    }
}

/// Types with a canonical `any` strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.bits() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.bits() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.bits() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.bits() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// The `any::<T>()` strategy.
#[derive(Debug, Clone)]
pub struct Any<T>(PhantomData<T>);

/// Uniformly arbitrary values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! strategy_for_range {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u128;
                self.start + (u128::from(rng.bits()) % span) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range strategy");
                let span = (hi - lo) as u128 + 1;
                lo + (u128::from(rng.bits()) % span) as $t
            }
        }
    )*};
}
strategy_for_range!(u8, u16, u32, u64, usize);

macro_rules! strategy_for_tuple {
    ($($S:ident/$idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}
strategy_for_tuple!(S0 / 0);
strategy_for_tuple!(S0 / 0, S1 / 1);
strategy_for_tuple!(S0 / 0, S1 / 1, S2 / 2);
strategy_for_tuple!(S0 / 0, S1 / 1, S2 / 2, S3 / 3);
strategy_for_tuple!(S0 / 0, S1 / 1, S2 / 2, S3 / 3, S4 / 4);
strategy_for_tuple!(S0 / 0, S1 / 1, S2 / 2, S3 / 3, S4 / 4, S5 / 5);

pub mod collection {
    use super::{Strategy, TestRng};

    /// A `Vec` strategy with random length drawn from `len`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    /// Vectors of `element` values with length in `len`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod option {
    use super::{Strategy, TestRng};

    /// An `Option` strategy (`None` one case in four).
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `Some` values of `inner`, or `None`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.sample(rng))
            }
        }
    }
}

pub mod array {
    use super::{Strategy, TestRng};

    /// A fixed 32-element array strategy.
    #[derive(Debug, Clone)]
    pub struct Uniform32<S> {
        inner: S,
    }

    /// `[T; 32]` with each element drawn from `inner`.
    pub fn uniform32<S: Strategy>(inner: S) -> Uniform32<S> {
        Uniform32 { inner }
    }

    impl<S: Strategy> Strategy for Uniform32<S> {
        type Value = [S::Value; 32];
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            std::array::from_fn(|_| self.inner.sample(rng))
        }
    }
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just,
        ProptestConfig, Strategy,
    };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg); $($rest)*);
    };
    (@cfg ($cfg:expr); $($(#[$meta:meta])* fn $name:ident ( $($arg:pat in $strat:expr),+ $(,)? ) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                for case in 0..cfg.cases {
                    let mut prop_rng = $crate::TestRng::for_case(stringify!($name), case);
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut prop_rng);)+
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg (<$crate::ProptestConfig as ::std::default::Default>::default()); $($rest)*);
    };
}

/// Uniform choice between the listed strategies (all yielding one type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// Property-scoped assertion (panics; no shrinking in the shim).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Property-scoped equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Property-scoped inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

#[cfg(test)]
mod tests {
    use crate::collection::vec;
    use crate::prelude::*;

    #[test]
    fn deterministic_across_runs() {
        let s = (0u64..100, any::<bool>());
        let mut a = crate::TestRng::for_case("t", 7);
        let mut b = crate::TestRng::for_case("t", 7);
        assert_eq!(s.sample(&mut a), s.sample(&mut b));
    }

    #[test]
    fn ranges_and_collections_bounded() {
        let s = vec(5u8..9, 2..6);
        let mut rng = crate::TestRng::for_case("bounds", 0);
        for _ in 0..200 {
            let v = crate::Strategy::sample(&s, &mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|x| (5..9).contains(x)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn macro_generates_cases(x in 0u32..10, flip in any::<bool>()) {
            prop_assert!(x < 10);
            let _ = flip;
        }
    }

    proptest! {
        #[test]
        fn oneof_and_map_compose(v in prop_oneof![
            (0u64..4).prop_map(|x| x * 2),
            Just(99u64),
        ]) {
            prop_assert!(v == 99 || v % 2 == 0);
            prop_assert!(v < 100);
        }
    }
}
