//! Offline stand-in for the `rand` crate.
//!
//! The workspace must build with no network access, so this crate provides
//! exactly the surface `sonuma-sim` consumes: [`rngs::SmallRng`] behind the
//! [`Rng`]/[`SeedableRng`] traits. The generator is SplitMix64 — a
//! statistically solid, trivially seedable 64-bit mixer — which keeps the
//! simulator's determinism guarantees (same seed, same stream) without
//! promising compatibility with upstream `rand` streams.

use std::ops::{Range, RangeInclusive};

/// Seeding interface (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from an RNG (stand-in for `Standard`).
pub trait Uniform {
    /// Draws one value from `bits`-producing closure.
    fn from_bits(next: &mut dyn FnMut() -> u64) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl Uniform for $t {
            fn from_bits(next: &mut dyn FnMut() -> u64) -> Self {
                next() as $t
            }
        }
    )*};
}
uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Uniform for u128 {
    fn from_bits(next: &mut dyn FnMut() -> u64) -> Self {
        (u128::from(next()) << 64) | u128::from(next())
    }
}

impl Uniform for bool {
    fn from_bits(next: &mut dyn FnMut() -> u64) -> Self {
        next() & 1 == 1
    }
}

impl Uniform for f64 {
    fn from_bits(next: &mut dyn FnMut() -> u64) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Uniform for f32 {
    fn from_bits(next: &mut dyn FnMut() -> u64) -> Self {
        (next() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one value uniformly from the range.
    fn sample(self, next: &mut dyn FnMut() -> u64) -> Self::Output;
}

macro_rules! sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample(self, next: &mut dyn FnMut() -> u64) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u128;
                self.start + (u128::from(next()) % span) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample(self, next: &mut dyn FnMut() -> u64) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range");
                let span = (hi - lo) as u128 + 1;
                lo + (u128::from(next()) % span) as $t
            }
        }
    )*};
}
sample_range_uint!(u8, u16, u32, u64, usize);

/// Sampling interface (subset of `rand::Rng`).
pub trait Rng {
    /// The raw 64-bit output of the generator.
    fn next_bits(&mut self) -> u64;

    /// Draws one uniformly distributed value.
    fn gen<T: Uniform>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_bits(&mut || self.next_bits())
    }

    /// Draws one value uniformly from `range`.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(&mut || self.next_bits())
    }
}

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// A small, fast, deterministic generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng { state: seed }
        }
    }

    impl Rng for SmallRng {
        fn next_bits(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(1);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SmallRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut r = SmallRng::seed_from_u64(4);
        for _ in 0..1000 {
            assert!(r.gen_range(10u64..20) < 20);
            assert!(r.gen_range(0usize..=5) <= 5);
        }
    }
}
