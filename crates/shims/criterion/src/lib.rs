//! Offline stand-in for the `criterion` crate.
//!
//! The workspace must build with no network access, so this crate provides
//! the slice of the criterion API the `sonuma-bench` bench targets use:
//! [`Criterion::benchmark_group`], `sample_size`, `bench_function`,
//! [`Bencher::iter`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros. Instead of statistical sampling it runs each benchmark
//! `sample_size` times and reports the minimum, mean, and maximum wall
//! time — enough to eyeball regressions and to keep the bench targets
//! compiling and runnable in CI.

use std::time::Instant;

/// Times one benchmark body.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<std::time::Duration>,
    iters: u32,
}

impl Bencher {
    /// Runs `f` once per sample, recording wall time.
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut f: F) {
        for _ in 0..self.iters.max(1) {
            let start = Instant::now();
            let out = f();
            self.samples.push(start.elapsed());
            drop(out);
        }
    }
}

/// A named group of benchmarks sharing a sample size.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u32,
    _c: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many times each benchmark body runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n as u32;
        self
    }

    /// Runs one benchmark and prints a one-line timing summary.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::new(),
            iters: self.sample_size,
        };
        f(&mut b);
        let (mut lo, mut hi, mut sum) = (f64::INFINITY, 0.0f64, 0.0f64);
        for s in &b.samples {
            let us = s.as_secs_f64() * 1e6;
            lo = lo.min(us);
            hi = hi.max(us);
            sum += us;
        }
        let n = b.samples.len().max(1) as f64;
        println!(
            "{}/{id}: min {lo:.1} us, mean {:.1} us, max {hi:.1} us ({} samples)",
            self.name,
            sum / n,
            b.samples.len()
        );
        self
    }

    /// Ends the group (formatting no-op).
    pub fn finish(&mut self) {}
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion;

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: 10,
            _c: self,
        }
    }
}

/// Collects benchmark functions into one runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Ignore harness arguments (e.g. `--bench` from `cargo bench`).
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn probe(c: &mut Criterion) {
        let mut g = c.benchmark_group("probe");
        g.sample_size(3);
        let mut runs = 0u32;
        g.bench_function("count", |b| b.iter(|| runs += 1));
        g.finish();
        assert_eq!(runs, 3);
    }

    crate::criterion_group!(benches, probe);

    #[test]
    fn group_runs_targets() {
        benches();
    }
}
