//! Fabric hot-path throughput: routing and packet injection across all
//! four topologies.
//!
//! `route/*` measures pure next-hop arithmetic ([`Topology::route_iter`]
//! walked to completion over a pseudorandom (src, dst) stream) and
//! `send/*` the full analytic injection ([`Fabric::send`]: route + dense
//! link lookup + credits + serialization) on the same stream. Runs
//! offline through the in-repo criterion shim:
//!
//! ```text
//! cargo bench -p sonuma-fabric --bench fabric
//! ```
//!
//! Both paths are allocation-free after link warm-up (asserted by the
//! counting-allocator test in `tests/`), so these numbers track pure
//! arithmetic + cache behavior, not allocator health.

use criterion::{criterion_group, criterion_main, Criterion};
use sonuma_fabric::{Fabric, FabricConfig, Topology};
use sonuma_protocol::NodeId;
use sonuma_sim::SimTime;

/// The benchmarked topology set: one of each routing family, all at
/// comparable node counts.
fn topologies() -> Vec<(&'static str, Topology, FabricConfig)> {
    vec![
        (
            "crossbar64",
            Topology::crossbar(64),
            FabricConfig::paper_crossbar(64),
        ),
        (
            "torus2d-8x8",
            Topology::torus2d(8, 8),
            FabricConfig::torus2d(8, 8),
        ),
        (
            "torus3d-4x4x4",
            Topology::torus3d(4, 4, 4),
            FabricConfig::torus3d(4, 4, 4),
        ),
        ("mesh2d-8x8", Topology::mesh2d(8, 8), {
            FabricConfig {
                topology: Topology::mesh2d(8, 8),
                ..FabricConfig::torus2d(8, 8)
            }
        }),
    ]
}

/// Deterministic (src, dst) pair stream (xorshift64), `src != dst`.
fn pair_stream(nodes: usize, count: usize) -> Vec<(NodeId, NodeId)> {
    let mut seed = 0x9E37_79B9_7F4A_7C15u64;
    let mut step = move || {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        seed
    };
    (0..count)
        .map(|_| {
            let src = (step() % nodes as u64) as u16;
            let mut dst = (step() % nodes as u64) as u16;
            if dst == src {
                dst = (dst + 1) % nodes as u16;
            }
            (NodeId(src), NodeId(dst))
        })
        .collect()
}

const PACKETS: usize = 100_000;

fn bench_route(c: &mut Criterion) {
    let mut g = c.benchmark_group("route");
    g.sample_size(10);
    for (name, topo, _) in topologies() {
        let pairs = pair_stream(topo.nodes(), PACKETS);
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut hops = 0u64;
                for &(src, dst) in &pairs {
                    hops += topo.route_iter(src, dst).count() as u64;
                }
                assert!(hops >= PACKETS as u64);
                hops
            })
        });
    }
    g.finish();
}

fn bench_send(c: &mut Criterion) {
    let mut g = c.benchmark_group("send");
    g.sample_size(10);
    for (name, topo, config) in topologies() {
        let pairs = pair_stream(topo.nodes(), PACKETS);
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut fabric = Fabric::new(config.clone());
                let mut last = SimTime::ZERO;
                for (i, &(src, dst)) in pairs.iter().enumerate() {
                    let now = SimTime::from_ns(i as u64);
                    last = fabric.send(now, src, dst, i & 1, 88).time;
                }
                assert!(last > SimTime::ZERO);
                last
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_route, bench_send);
criterion_main!(benches);
