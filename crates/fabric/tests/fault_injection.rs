//! Fault-injection properties of the fabric: dead-link avoidance against
//! an independent BFS oracle, purity of the per-packet fate stream, and
//! the zero-fault fast path's equivalence to the plain send path.

use sonuma_fabric::{Fabric, FabricConfig, FaultPlan, LinkFault, PacketFate, Topology};
use sonuma_protocol::NodeId;
use sonuma_sim::SimTime;

/// Shortest hop distance from `src` to `dst` avoiding `dead` directed
/// links — a from-scratch BFS, independent of `NextHopTable`.
fn bfs_hops(topo: &Topology, src: NodeId, dst: NodeId, dead: &[(NodeId, NodeId)]) -> Option<u32> {
    let n = topo.nodes();
    let mut dist = vec![u32::MAX; n];
    let mut queue = std::collections::VecDeque::new();
    dist[src.index()] = 0;
    queue.push_back(src);
    while let Some(v) = queue.pop_front() {
        if v == dst {
            return Some(dist[v.index()]);
        }
        for w in topo.neighbors(v) {
            if dead.contains(&(v, w)) || dist[w.index()] != u32::MAX {
                continue;
            }
            dist[w.index()] = dist[v.index()] + 1;
            queue.push_back(w);
        }
    }
    None
}

/// A torus fabric whose first link out of node 0 dies at `kill_ns`, with
/// `drop_prob = 1.0` on that link: any packet that still traversed it
/// after the kill would be dropped, so a `Delivered` fate *proves* the
/// avoidance table steered around it.
fn flappy_fabric(kill_ns: u64) -> (Fabric, (NodeId, NodeId)) {
    let mut config = FabricConfig::torus3d(4, 4, 4);
    let dead_dst = config.topology.neighbors(NodeId(0))[0];
    let mut plan = FaultPlan::new(11);
    let mut fault = LinkFault::on(NodeId(0), dead_dst);
    fault.kill_at = Some(SimTime::from_ns(kill_ns));
    fault.drop_prob = 1.0;
    plan.links.push(fault);
    config.faults = Some(plan);
    (Fabric::new(config), (NodeId(0), dead_dst))
}

#[test]
fn dead_link_is_avoided_and_hops_match_bfs_oracle() {
    let (mut f, dead) = flappy_fabric(20);
    let topo = f.config().topology.clone();
    let n = topo.nodes();
    let after = SimTime::from_ns(1000);
    for d in 1..n {
        let dst = NodeId(d as u16);
        let (arrival, fate) = f.send_faulty(after, NodeId(0), dst, 0, 80, d as u64);
        // drop_prob = 1.0 on the dead link: Delivered proves avoidance.
        assert_eq!(
            fate,
            PacketFate::Delivered,
            "0 -> {d} crossed the dead link"
        );
        let oracle = bfs_hops(&topo, NodeId(0), dst, &[dead]).expect("torus stays connected");
        assert_eq!(
            arrival.hops, oracle,
            "0 -> {d} took {} hops, BFS-avoiding oracle says {oracle}",
            arrival.hops
        );
    }
    let stats = f.fault_stats();
    assert_eq!(stats.rerouted, (n - 1) as u64, "every send saw a dead mask");
    assert_eq!(stats.dropped + stats.unreachable, 0);
}

#[test]
fn live_link_routes_normally_before_the_kill() {
    let (mut f, dead) = flappy_fabric(1_000_000);
    let topo = f.config().topology.clone();
    // Before the kill the default (non-avoiding) route applies. The
    // listed link's drop_prob holds whether it is dead or not, so pick a
    // destination whose default path cannot cross it: any *other*
    // neighbor of node 0 is a one-hop route on a disjoint link.
    let other = topo
        .neighbors(NodeId(0))
        .into_iter()
        .find(|&v| v != dead.1)
        .expect("torus degree > 1");
    let (arrival, fate) = f.send_faulty(SimTime::from_ns(0), NodeId(0), other, 0, 80, 1);
    assert_eq!(fate, PacketFate::Delivered);
    assert_eq!(arrival.hops, 1);
    assert_eq!(f.fault_stats().rerouted, 0, "no dead mask before the kill");
}

#[test]
fn fates_are_pure_functions_of_packet_identity() {
    // Two fabrics with the same plan, fed the same salts in opposite
    // orders, must agree on every per-packet fate.
    let build = || {
        let mut config = FabricConfig::torus2d(4, 4);
        let mut plan = FaultPlan::new(77);
        let mut fault = LinkFault::on(NodeId(0), config.topology.neighbors(NodeId(0))[0]);
        fault.drop_prob = 0.4;
        fault.corrupt_prob = 0.4;
        plan.links.push(fault);
        config.faults = Some(plan);
        Fabric::new(config)
    };
    let dst = build().config().topology.neighbors(NodeId(0))[0];
    let salts: Vec<u64> = (0..64).collect();
    let now = SimTime::from_ns(5);
    let mut forward = Vec::new();
    let mut f = build();
    for &s in &salts {
        forward.push(f.send_faulty(now, NodeId(0), dst, 0, 80, s).1);
    }
    let mut backward = vec![PacketFate::Delivered; salts.len()];
    let mut g = build();
    for &s in salts.iter().rev() {
        backward[s as usize] = g.send_faulty(now, NodeId(0), dst, 0, 80, s).1;
    }
    assert_eq!(forward, backward, "fate depended on draw order");
    assert!(
        forward.contains(&PacketFate::Dropped)
            && forward.contains(&PacketFate::Corrupted)
            && forward.contains(&PacketFate::Delivered),
        "0.4/0.4 probabilities over 64 draws should show all three fates: {forward:?}"
    );
    assert_eq!(f.fault_stats(), g.fault_stats());
}

#[test]
fn node_crash_only_plan_keeps_the_link_path_exact() {
    // A plan with node faults but no link faults must leave link-level
    // sends byte-identical to a fabric with no plan at all: same arrival
    // times, all fates Delivered, zeroed fault counters.
    let mut plain = Fabric::new(FabricConfig::torus2d(4, 4));
    let mut config = FabricConfig::torus2d(4, 4);
    let mut plan = FaultPlan::new(3);
    plan.nodes.push(sonuma_fabric::NodeFault {
        node: NodeId(5),
        crash_at: SimTime::from_ns(10),
        restart_at: SimTime::from_ns(20),
    });
    config.faults = Some(plan);
    let mut faulty = Fabric::new(config);
    for i in 0..32u64 {
        let src = NodeId((i % 16) as u16);
        let dst = NodeId(((i + 3) % 16) as u16);
        let now = SimTime::from_ns(i * 7);
        let a = plain.send(now, src, dst, (i % 2) as usize, 64 + i);
        let (b, fate) = faulty.send_faulty(now, src, dst, (i % 2) as usize, 64 + i, i);
        assert_eq!(fate, PacketFate::Delivered);
        assert_eq!(a, b, "send {i} diverged from the fault-free path");
    }
    assert_eq!(faulty.fault_stats(), sonuma_fabric::FaultStats::default());
}
