//! Property tests: lossless delivery, credit conservation, and routing
//! invariants under arbitrary traffic — driven through the typed
//! `sonuma_sim::EventEngine`, exactly as the machine delivers packets.

use proptest::collection::vec;
use proptest::prelude::*;

use sonuma_fabric::{Fabric, FabricConfig, Topology, VirtualChannel};
use sonuma_protocol::NodeId;
use sonuma_sim::{EventEngine, SimTime, World};

/// The minimal fabric-consumer world: packets injected through
/// [`Fabric::send`] become typed [`Delivery`] events, mirroring the
/// machine's `ClusterEvent::Deliver` path.
#[derive(Default)]
struct DeliverySink {
    /// `(arrival time, source, destination, lane)` in execution order.
    delivered: Vec<(SimTime, u16, u16, usize)>,
}

#[derive(Debug, Clone, Copy)]
struct Delivery {
    src: u16,
    dst: u16,
    lane: usize,
}

impl World for DeliverySink {
    type Event = Delivery;

    fn handle(&mut self, engine: &mut EventEngine<Self>, event: Delivery) {
        self.delivered
            .push((engine.now(), event.src, event.dst, event.lane));
    }
}

proptest! {
    /// Every packet is delivered at a finite time no earlier than its
    /// injection plus the minimum path cost; nothing is ever dropped.
    #[test]
    fn fabric_is_lossless_and_causal(
        sends in vec((0u16..8, 0u16..8, 0usize..2, any::<bool>(), 0u64..1_000), 1..300)
    ) {
        let mut f = Fabric::new(FabricConfig::paper_crossbar(8));
        let mut delivered = 0u64;
        for &(src, dst, lane, big, gap_ns) in &sends {
            if src == dst { continue; }
            let now = SimTime::from_ns(gap_ns);
            let bytes = if big { 88 } else { 24 };
            let arrival = f.send(now, NodeId(src), NodeId(dst), lane, bytes);
            let min = now + f.config().hop_latency + f.config().serialization(bytes);
            prop_assert!(arrival.time >= min, "arrived before physically possible");
            delivered += 1;
        }
        prop_assert_eq!(f.packets_sent(), delivered);
    }

    /// Virtual-channel occupancy never exceeds the credit pool, for any
    /// interleaving of sends.
    #[test]
    fn credits_never_overrun(
        credits in 1usize..8,
        sends in vec((0u64..500, 1u64..200), 1..200),
    ) {
        let mut vc = VirtualChannel::new(credits, SimTime::from_ns(10));
        let mut now = SimTime::ZERO;
        for &(gap_ns, flight_ns) in &sends {
            now += SimTime::from_ns(gap_ns);
            let start = vc.acquire(now, now + SimTime::from_ns(flight_ns));
            prop_assert!(start >= now);
            prop_assert!(vc.occupancy() <= vc.capacity());
        }
    }

    /// On any torus, routes visit only neighbors, terminate at the
    /// destination, and stay within the diameter.
    #[test]
    fn torus_routing_invariants(
        w in 2usize..6, h in 2usize..6,
        src in 0usize..36, dst in 0usize..36,
    ) {
        let t = Topology::torus2d(w, h);
        let n = t.nodes();
        let (src, dst) = (NodeId((src % n) as u16), NodeId((dst % n) as u16));
        let path = t.route(src, dst);
        if src == dst {
            prop_assert!(path.is_empty());
        } else {
            prop_assert_eq!(*path.last().unwrap(), dst);
            prop_assert!(path.len() as u32 <= t.diameter());
            // Dimension-order: no node repeats (deadlock-free with 2 VLs).
            let mut seen = std::collections::HashSet::new();
            for hop in &path {
                prop_assert!(seen.insert(hop.0), "cycle in route");
            }
        }
    }

    /// Same-time, same-link sends arrive in FIFO order (the link serializes
    /// them; reliability implies no reordering within a lane).
    #[test]
    fn same_lane_fifo(count in 2usize..50) {
        let mut f = Fabric::new(FabricConfig::paper_crossbar(2));
        let mut prev = SimTime::ZERO;
        for _ in 0..count {
            let a = f.send(SimTime::ZERO, NodeId(0), NodeId(1), 0, 88);
            prop_assert!(a.time > prev);
            prev = a.time;
        }
    }

    /// Driving arrivals through the typed event engine delivers every
    /// packet exactly once, in nondecreasing time order, with per-lane
    /// same-link FIFO preserved — the machine's delivery contract.
    #[test]
    fn typed_engine_delivery_is_lossless_and_ordered(
        sends in vec((0u16..8, 0u16..8, 0usize..2, 0u64..500), 1..200)
    ) {
        let mut fabric = Fabric::new(FabricConfig::torus2d(4, 2));
        let mut engine = EventEngine::new();
        let mut sink = DeliverySink::default();
        let mut injected = 0u64;
        for &(src, dst, lane, gap_ns) in &sends {
            if src == dst { continue; }
            let arrival = fabric.send(
                SimTime::from_ns(gap_ns),
                NodeId(src),
                NodeId(dst),
                lane,
                88,
            );
            engine.schedule_at(arrival.time, Delivery { src, dst, lane });
            injected += 1;
        }
        engine.run(&mut sink);
        prop_assert_eq!(sink.delivered.len() as u64, injected, "lossless");
        // Execution order is nondecreasing in time.
        for w in sink.delivered.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "delivery went backwards");
        }
        // Same (src, dst, lane) stream: injection order == delivery order
        // at strictly increasing times (link serialization FIFO).
        for &(src, dst, lane, _) in &sends {
            let times: Vec<SimTime> = sink
                .delivered
                .iter()
                .filter(|&&(_, s, d, l)| (s, d, l) == (src, dst, lane))
                .map(|&(t, _, _, _)| t)
                .collect();
            for w in times.windows(2) {
                prop_assert!(w[0] < w[1], "same-lane stream reordered");
            }
        }
    }
}
