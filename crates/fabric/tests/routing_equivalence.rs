//! Routing equivalence: the allocation-free `RouteIter` and the dense
//! `NextHopTable` must reproduce, hop for hop, the route the original
//! `Vec`-building implementation computed.
//!
//! The reference implementations below are verbatim ports of the
//! pre-refactor `route_torus` / `route_mesh` (per-call `Vec`s and all),
//! kept here as the oracle. Exhaustive all-pairs checks cover the
//! acceptance topologies (crossbar, 4×4 torus, 4×4×4 torus, 8×8 mesh);
//! the property test fuzzes arbitrary torus shapes.

use proptest::prelude::*;
use sonuma_fabric::Topology;
use sonuma_protocol::NodeId;

/// Pre-refactor dimension-order torus routing (the oracle).
fn reference_route_torus(dims: &[usize], src: usize, dst: usize) -> Vec<NodeId> {
    let coord = |mut id: usize| -> Vec<usize> {
        dims.iter()
            .map(|&d| {
                let c = id % d;
                id /= d;
                c
            })
            .collect()
    };
    let compose = |coords: &[usize]| -> usize {
        let mut id = 0;
        for (i, &c) in coords.iter().enumerate().rev() {
            id = id * dims[i] + c;
        }
        id
    };
    let mut cur = coord(src);
    let goal = coord(dst);
    let mut path = Vec::new();
    for dim in 0..dims.len() {
        let k = dims[dim];
        while cur[dim] != goal[dim] {
            let fwd = (goal[dim] + k - cur[dim]) % k;
            let step = if fwd <= k - fwd { 1 } else { k - 1 };
            cur[dim] = (cur[dim] + step) % k;
            path.push(NodeId(compose(&cur) as u16));
        }
    }
    path
}

/// Pre-refactor XY mesh routing (the oracle).
fn reference_route_mesh(width: usize, src: usize, dst: usize) -> Vec<NodeId> {
    let (mut x, mut y) = (src % width, src / width);
    let (gx, gy) = (dst % width, dst / width);
    let mut path = Vec::new();
    while x != gx {
        x = if gx > x { x + 1 } else { x - 1 };
        path.push(NodeId((y * width + x) as u16));
    }
    while y != gy {
        y = if gy > y { y + 1 } else { y - 1 };
        path.push(NodeId((y * width + x) as u16));
    }
    path
}

/// The oracle route for any topology.
fn reference_route(topo: &Topology, src: usize, dst: usize) -> Vec<NodeId> {
    if src == dst {
        return Vec::new();
    }
    match *topo {
        Topology::Crossbar { .. } => vec![NodeId(dst as u16)],
        Topology::Torus2D { width, height } => reference_route_torus(&[width, height], src, dst),
        Topology::Torus3D { x, y, z } => reference_route_torus(&[x, y, z], src, dst),
        Topology::Mesh2D { width, .. } => reference_route_mesh(width, src, dst),
    }
}

/// All-pairs equivalence of `route_iter`, `route`, the next-hop table,
/// and `distance` against the oracle.
fn assert_equivalent(topo: &Topology) {
    let n = topo.nodes();
    let table = topo.next_hop_table();
    for src in 0..n {
        for dst in 0..n {
            let (s, d) = (NodeId(src as u16), NodeId(dst as u16));
            let oracle = reference_route(topo, src, dst);
            let iter: Vec<NodeId> = topo.route_iter(s, d).collect();
            assert_eq!(iter, oracle, "{topo:?} route_iter {src}->{dst}");
            assert_eq!(topo.route(s, d), oracle, "{topo:?} route {src}->{dst}");
            assert_eq!(table.route(s, d), oracle, "{topo:?} table {src}->{dst}");
            assert_eq!(
                topo.distance(s, d),
                oracle.len() as u32,
                "{topo:?} distance {src}->{dst}"
            );
        }
    }
}

#[test]
fn crossbar_matches_reference() {
    assert_equivalent(&Topology::crossbar(16));
}

#[test]
fn torus2d_4x4_matches_reference() {
    assert_equivalent(&Topology::torus2d(4, 4));
}

#[test]
fn torus3d_4x4x4_matches_reference() {
    assert_equivalent(&Topology::torus3d(4, 4, 4));
}

#[test]
fn mesh2d_8x8_matches_reference() {
    assert_equivalent(&Topology::mesh2d(8, 8));
}

proptest! {
    /// Any torus shape, any pair: `route_iter` reproduces the oracle.
    #[test]
    fn arbitrary_torus_routes_match_reference(
        w in 1usize..7, h in 1usize..7, d in 1usize..5,
        src in 0usize..245, dst in 0usize..245,
    ) {
        let topo = Topology::torus3d(w, h, d);
        let n = topo.nodes();
        let (src, dst) = (src % n, dst % n);
        let oracle = reference_route(&topo, src, dst);
        let got: Vec<NodeId> = topo
            .route_iter(NodeId(src as u16), NodeId(dst as u16))
            .collect();
        prop_assert_eq!(got, oracle);
    }

    /// Any mesh shape, any pair: `route_iter` reproduces the oracle.
    #[test]
    fn arbitrary_mesh_routes_match_reference(
        w in 1usize..12, h in 1usize..12,
        src in 0usize..144, dst in 0usize..144,
    ) {
        let topo = Topology::mesh2d(w, h);
        let n = topo.nodes();
        let (src, dst) = (src % n, dst % n);
        let oracle = reference_route(&topo, src, dst);
        let got: Vec<NodeId> = topo
            .route_iter(NodeId(src as u16), NodeId(dst as u16))
            .collect();
        prop_assert_eq!(got, oracle);
    }
}
