//! The flight recorder's zero-allocation guarantee on the fabric hot
//! path, asserted with a counting global allocator.
//!
//! An armed [`FlightRecorder`] must add no heap traffic to a warm-link
//! send: its rings are pre-filled at construction, its previous-counter
//! tables are sized once, and sampling is delta arithmetic plus a ring
//! write. This is the contract that lets the sharded cluster sample
//! inside the commit merge without perturbing the simulator.
//!
//! This file contains exactly one `#[test]` so no concurrent test can
//! allocate while the counters are being read.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use sonuma_fabric::{Fabric, FabricConfig};
use sonuma_protocol::NodeId;
use sonuma_sim::SimTime;
use sonuma_trace::{FlightRecorder, NodeCounters, TraceConfig};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static A: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

#[test]
fn armed_recorder_adds_no_allocation_to_warm_sends() {
    let config = FabricConfig::torus2d(4, 4);
    let nodes = config.topology.nodes() as u16;
    // Same retry discipline as `zero_alloc.rs`: libtest's own threads
    // allocate lazily at unpredictable moments, so require one clean
    // window out of three — a real hot-path allocation reproduces in
    // every window.
    let mut leaked = u64::MAX;
    for _attempt in 0..3 {
        let mut fabric = Fabric::new(config.clone());
        let mut recorder = FlightRecorder::new(
            &TraceConfig::every(SimTime::from_ns(200)),
            fabric.link_slots(),
            nodes as usize,
        );
        // Warm-up: create every link state and run one full sampling
        // round of each stream, so the measured window sees the
        // steady-state paths only.
        for src in 0..nodes {
            for dst in 0..nodes {
                if src != dst {
                    fabric.send(SimTime::ZERO, NodeId(src), NodeId(dst), 0, 88);
                }
            }
        }
        let end = recorder.close_fabric_window(SimTime::from_ns(200));
        fabric.visit_links(|slot, src, dst, bytes, packets, stalls| {
            recorder.record_link(end, slot, src, dst, bytes, packets, stalls);
        });
        recorder.begin_node_round(SimTime::from_ns(200));
        for node in 0..nodes {
            recorder.record_node(SimTime::from_ns(200), node, NodeCounters::default());
        }
        recorder.record_fault_counters(SimTime::from_ns(200), [0; 7]);

        // Steady state: sends interleaved with full sampling rounds —
        // zero heap traffic allowed.
        let before = allocs();
        let mut t = SimTime::from_ns(300);
        for round in 1..50u64 {
            for src in 0..nodes {
                for dst in 0..nodes {
                    if src != dst {
                        let lane = ((src + dst + round as u16) % 2) as usize;
                        fabric.send(t, NodeId(src), NodeId(dst), lane, 88);
                    }
                }
            }
            if recorder.fabric_due(t) {
                let end = recorder.close_fabric_window(t);
                fabric.visit_links(|slot, src, dst, bytes, packets, stalls| {
                    recorder.record_link(end, slot, src, dst, bytes, packets, stalls);
                });
            }
            if recorder.node_due(t) {
                recorder.begin_node_round(t);
                for node in 0..nodes {
                    recorder.record_node(
                        t,
                        node,
                        NodeCounters {
                            rgp_requests: round * u64::from(node) + round,
                            rrpp_served: round,
                            rcp_completions: round,
                            itt_in_flight: u64::from(node % 3),
                            ..NodeCounters::default()
                        },
                    );
                }
                recorder.record_fault_counters(t, [round, 0, round / 2, 0, 0, round, round]);
            }
            t += SimTime::from_ns(100);
        }
        leaked = allocs() - before;
        // Sanity: the recorder actually captured the steady state
        // (not counted against the window).
        let summary = recorder.summary();
        assert!(summary.ticks > 10, "sampling never ran: {summary:?}");
        assert!(summary.link_samples > 0 && summary.node_samples > 0);
        if leaked == 0 {
            break;
        }
    }
    assert_eq!(leaked, 0, "an armed recorder allocated on the hot path");
}
