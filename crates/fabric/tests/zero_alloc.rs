//! The fabric hot path's zero-allocation guarantee, asserted with a
//! counting global allocator.
//!
//! `Fabric::send` must not touch the heap after a link's state exists:
//! routes are arithmetic iterators, link lookup is a dense index, and the
//! per-lane credit deques are pre-sized to the credit pool. The first
//! packet on a link may allocate (the boxed link state); every subsequent
//! packet — on any route whose links are all warm — must allocate
//! nothing.
//!
//! This file contains exactly one `#[test]` so no concurrent test can
//! allocate while the counters are being read.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use sonuma_fabric::{Fabric, FabricConfig, Topology};
use sonuma_protocol::NodeId;
use sonuma_sim::SimTime;

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static A: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

#[test]
fn send_allocates_nothing_after_link_warmup() {
    let configs = [
        FabricConfig::paper_crossbar(16),
        FabricConfig::torus2d(4, 4),
        FabricConfig::torus3d(4, 4, 4),
        FabricConfig {
            topology: Topology::mesh2d(4, 4),
            ..FabricConfig::torus2d(4, 4)
        },
    ];
    for config in configs {
        let topo = config.topology.clone();
        let nodes = topo.nodes() as u16;
        // The counting allocator sees every thread in the process, and the
        // libtest harness's own threads lazily allocate a handful of times
        // (channel wakers, stdio plumbing) at unpredictable moments, so a
        // single measurement window can flake. A real hot-path allocation
        // reproduces on every fresh fabric; harness noise is once per
        // process. Require one clean window out of three.
        let mut leaked = u64::MAX;
        for _attempt in 0..3 {
            let mut fabric = Fabric::new(config.clone());
            // Warm-up: the first packet on each (src, dst) flow creates
            // every link state on its route.
            for src in 0..nodes {
                for dst in 0..nodes {
                    if src != dst {
                        fabric.send(SimTime::ZERO, NodeId(src), NodeId(dst), 0, 88);
                    }
                }
            }
            // Steady state: heavy mixed traffic, both lanes, varying sizes
            // and timestamps — zero heap traffic allowed.
            let before = allocs();
            let mut t = SimTime::ZERO;
            for round in 0..50u64 {
                for src in 0..nodes {
                    for dst in 0..nodes {
                        if src != dst {
                            let lane = ((src + dst + round as u16) % 2) as usize;
                            let bytes = if (src ^ dst) & 1 == 0 { 88 } else { 24 };
                            fabric.send(t, NodeId(src), NodeId(dst), lane, bytes);
                        }
                    }
                }
                t += SimTime::from_ns(100);
            }
            leaked = allocs() - before;
            // The cold statistics paths may allocate their result vectors,
            // but must still be callable (sanity check, not counted).
            assert!(fabric.credit_stalls() < u64::MAX);
            assert!(!fabric.link_stats().is_empty());
            if leaked == 0 {
                break;
            }
        }
        assert_eq!(leaked, 0, "{topo:?}: Fabric::send allocated on a warm link");
    }
}
