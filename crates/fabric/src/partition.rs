//! Node-to-shard partitioning for conservative-parallel simulation.
//!
//! A [`ShardPlan`] splits the fabric's node id space into contiguous
//! ranges, one per shard. Contiguity matters twice over: shard membership
//! becomes a binary search over a handful of bounds, and — because node
//! ids enumerate grid topologies x-major (the same order `AdjIndex` uses
//! for the dense link table) — a contiguous id range is a contiguous slab
//! of the torus/mesh, so most neighbor links stay shard-internal.
//! [`ShardPlan::for_topology`] additionally aligns shard boundaries to
//! whole rows (2D) or planes (3D) when the grid allows it, which keeps
//! the cut surface — and with it cross-shard traffic — minimal.

use crate::topology::Topology;

/// A partition of nodes `0..n` into contiguous shard ranges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    /// `shards + 1` strictly increasing bounds; shard `s` owns
    /// `bounds[s]..bounds[s + 1]`.
    bounds: Vec<usize>,
}

impl ShardPlan {
    /// An even contiguous split of `nodes` into `shards` ranges (shard
    /// counts above the node count are clamped down — a shard must own at
    /// least one node).
    ///
    /// # Panics
    ///
    /// Panics if `nodes` or `shards` is zero.
    pub fn contiguous(nodes: usize, shards: usize) -> ShardPlan {
        assert!(nodes > 0, "cannot partition an empty cluster");
        assert!(shards > 0, "need at least one shard");
        let shards = shards.min(nodes);
        let bounds = (0..=shards).map(|s| s * nodes / shards).collect();
        ShardPlan { bounds }
    }

    /// A topology-aware contiguous split: grid boundaries snap to whole
    /// rows/planes so torus/mesh shards cut the minimum number of links;
    /// crossbars (where every even split is equivalent) fall back to the
    /// even split.
    ///
    /// When the even bounds do not land on plane boundaries there are
    /// several plane-aligned candidates (snap each bound to the nearest,
    /// previous, or next plane); the candidate with the smallest
    /// [`ShardPlan::cut_links`] wins, ties broken toward nearest-snap so
    /// the historical choice is stable.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn for_topology(topology: &Topology, shards: usize) -> ShardPlan {
        let nodes = topology.nodes();
        let plane = match *topology {
            Topology::Crossbar { .. } => 1,
            Topology::Torus2D { width, .. } | Topology::Mesh2D { width, .. } => width,
            Topology::Torus3D { x, y, .. } => x * y,
        };
        let even = ShardPlan::contiguous(nodes, shards);
        if plane <= 1 {
            return even;
        }
        // Snap each interior bound to a plane boundary three ways (nearest,
        // floor, ceiling), pin the ends, and keep the candidates that stay
        // strictly increasing (enough planes to go around). If none
        // survive, the unaligned even split is the best we can do.
        let snapped = |round_up: usize| -> Option<ShardPlan> {
            let mut bounds: Vec<usize> = even
                .bounds
                .iter()
                .map(|&b| ((b + round_up) / plane) * plane)
                .collect();
            *bounds.first_mut().expect("nonempty bounds") = 0;
            *bounds.last_mut().expect("nonempty bounds") = nodes;
            bounds
                .windows(2)
                .all(|w| w[0] < w[1])
                .then_some(ShardPlan { bounds })
        };
        let mut candidates: Vec<ShardPlan> = [plane / 2, 0, plane - 1]
            .into_iter()
            .filter_map(snapped)
            .collect();
        candidates.dedup();
        candidates
            .into_iter()
            .min_by_key(|plan| plan.cut_links(topology))
            .unwrap_or(even)
    }

    /// A plan from explicit bounds (`bounds[0] == 0`, strictly
    /// increasing, last bound = node count). This is the surface the
    /// partition-equivalence property tests use to exercise *arbitrary*
    /// contiguous partitions.
    ///
    /// # Errors
    ///
    /// Returns a description of the violated constraint.
    pub fn from_bounds(bounds: Vec<usize>) -> Result<ShardPlan, String> {
        if bounds.len() < 2 {
            return Err("a plan needs at least one shard (two bounds)".into());
        }
        if bounds[0] != 0 {
            return Err(format!("first bound must be 0, got {}", bounds[0]));
        }
        if !bounds.windows(2).all(|w| w[0] < w[1]) {
            return Err(format!("bounds must be strictly increasing: {bounds:?}"));
        }
        Ok(ShardPlan { bounds })
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.bounds.len() - 1
    }

    /// Total nodes covered.
    pub fn nodes(&self) -> usize {
        *self.bounds.last().expect("nonempty bounds")
    }

    /// The node range shard `s` owns.
    pub fn range(&self, s: usize) -> std::ops::Range<usize> {
        self.bounds[s]..self.bounds[s + 1]
    }

    /// The shard owning `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is outside the plan.
    pub fn shard_of(&self, node: usize) -> usize {
        assert!(node < self.nodes(), "node {node} outside plan");
        // partition_point returns the count of bounds <= node, which is
        // exactly 1 + the owning shard index.
        self.bounds.partition_point(|&b| b <= node) - 1
    }

    /// Number of directed links (as used by the topology's routing) whose
    /// endpoints live in different shards under this plan — the cut
    /// surface cross-shard traffic must cross.
    ///
    /// Dimension-order routing only ever steps between distance-1
    /// neighbors, and for any adjacent pair the direct route uses the
    /// `(src, dst)` link itself, so the link set routing can use is exactly
    /// the set of ordered distance-1 pairs. Counting those per node makes
    /// this O(n · dimensions) — cheap enough to run over several candidate
    /// plans at rack4096 scale (the old next-hop-table walk was O(n²)).
    pub fn cut_links(&self, topology: &Topology) -> usize {
        match *topology {
            Topology::Crossbar { nodes } => {
                // Every ordered pair is a one-hop link; count the ordered
                // pairs whose endpoints live in different shards.
                (0..self.shards())
                    .map(|s| self.range(s).len() * (nodes - self.range(s).len()))
                    .sum()
            }
            _ => {
                let n = topology.nodes();
                let mut cut = 0;
                for a in 0..n {
                    let sa = self.shard_of(a);
                    for_each_grid_neighbor(topology, a, |b| {
                        if self.shard_of(b) != sa {
                            cut += 1;
                        }
                    });
                }
                cut
            }
        }
    }
}

/// Calls `f` once per distinct node at hop distance 1 from `id` on a grid
/// topology (±1 per dimension; torus dimensions wrap, mesh dimensions
/// clamp at the edges).
fn for_each_grid_neighbor(topology: &Topology, id: usize, mut f: impl FnMut(usize)) {
    let (dims, wraps) = match *topology {
        Topology::Crossbar { .. } => unreachable!("crossbar handled arithmetically"),
        Topology::Torus2D { width, height } => ([width, height, 1], true),
        Topology::Torus3D { x, y, z } => ([x, y, z], true),
        Topology::Mesh2D { width, height } => ([width, height, 1], false),
    };
    let mut stride = 1usize;
    for k in dims {
        if k >= 2 {
            let c = (id / stride) % k;
            let base = id - c * stride;
            if wraps {
                let up = (c + 1) % k;
                let down = (c + k - 1) % k;
                f(base + up * stride);
                if down != up {
                    f(base + down * stride);
                }
            } else {
                if c + 1 < k {
                    f(base + (c + 1) * stride);
                }
                if c > 0 {
                    f(base + (c - 1) * stride);
                }
            }
        }
        stride *= k;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contiguous_covers_everything_evenly() {
        let plan = ShardPlan::contiguous(10, 4);
        assert_eq!(plan.shards(), 4);
        assert_eq!(plan.nodes(), 10);
        let sizes: Vec<usize> = (0..4).map(|s| plan.range(s).len()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 10);
        assert!(sizes.iter().all(|&s| s == 2 || s == 3));
        for n in 0..10 {
            let s = plan.shard_of(n);
            assert!(plan.range(s).contains(&n));
        }
    }

    #[test]
    fn shard_count_clamps_to_nodes() {
        let plan = ShardPlan::contiguous(2, 8);
        assert_eq!(plan.shards(), 2);
    }

    #[test]
    fn grid_plans_align_to_planes() {
        let topo = Topology::torus3d(4, 4, 8); // plane = 16, 8 planes
        let plan = ShardPlan::for_topology(&topo, 4);
        assert_eq!(plan.shards(), 4);
        for s in 0..4 {
            assert_eq!(plan.range(s).start % 16, 0, "shard {s} starts on a plane");
        }
        // Plane alignment means each shard cuts exactly its two boundary
        // planes (x and y rings are internal): fewer cut links than an
        // arbitrary split through the middle of a plane.
        let aligned_cut = plan.cut_links(&topo);
        let skewed = ShardPlan::from_bounds(vec![0, 30, 62, 94, 128]).expect("valid bounds");
        assert!(
            aligned_cut <= skewed.cut_links(&topo),
            "plane alignment must not increase the cut"
        );
    }

    /// The reference cut metric: materialize every route's links via the
    /// next-hop table (the pre-optimization O(n²) implementation) and count
    /// the cross-shard ones.
    fn cut_links_via_routes(plan: &ShardPlan, topology: &Topology) -> usize {
        use sonuma_protocol::NodeId;
        let table = topology.next_hop_table();
        let n = topology.nodes();
        let mut links = std::collections::BTreeSet::new();
        for a in 0..n {
            for d in 0..n {
                if a != d {
                    let hop = table.next_hop(NodeId(a as u16), NodeId(d as u16));
                    links.insert((a, hop.index()));
                }
            }
        }
        links
            .iter()
            .filter(|&&(a, b)| plan.shard_of(a) != plan.shard_of(b))
            .count()
    }

    #[test]
    fn cut_links_matches_the_route_table_reference() {
        for topo in [
            Topology::crossbar(10),
            Topology::torus2d(4, 4),
            Topology::torus2d(2, 6),
            Topology::torus3d(3, 4, 2),
            Topology::mesh2d(5, 3),
        ] {
            let n = topo.nodes();
            for plan in [
                ShardPlan::contiguous(n, 3),
                ShardPlan::for_topology(&topo, 4),
                ShardPlan::from_bounds(vec![0, 1, n]).expect("valid bounds"),
            ] {
                assert_eq!(
                    plan.cut_links(&topo),
                    cut_links_via_routes(&plan, &topo),
                    "{topo:?} {plan:?}"
                );
            }
        }
    }

    #[test]
    fn for_topology_picks_the_smallest_cut_among_aligned_candidates() {
        // 5 planes of 16 over 2 shards: even bound 40 snaps to plane 2 or
        // 3; both are valid plane-aligned candidates and for_topology must
        // do no worse than either.
        let topo = Topology::torus3d(4, 4, 5);
        let plan = ShardPlan::for_topology(&topo, 2);
        let chosen = plan.cut_links(&topo);
        for bounds in [vec![0, 32, 80], vec![0, 48, 80]] {
            let candidate = ShardPlan::from_bounds(bounds).expect("valid bounds");
            assert!(chosen <= candidate.cut_links(&topo));
        }
        assert_eq!(plan.range(0).start, 0);
        assert_eq!(plan.range(0).end % 16, 0, "boundary stays plane-aligned");
    }

    #[test]
    fn degenerate_grids_fall_back() {
        // 3 shards over 2 rows of 8: not enough planes, falls back to the
        // even split but still covers everything.
        let topo = Topology::torus2d(8, 2);
        let plan = ShardPlan::for_topology(&topo, 3);
        assert_eq!(plan.shards(), 3);
        assert_eq!(plan.nodes(), 16);
    }

    #[test]
    fn bad_bounds_are_rejected() {
        assert!(ShardPlan::from_bounds(vec![0]).is_err());
        assert!(ShardPlan::from_bounds(vec![1, 4]).is_err());
        assert!(ShardPlan::from_bounds(vec![0, 4, 4]).is_err());
        assert!(ShardPlan::from_bounds(vec![0, 4, 2]).is_err());
        assert!(ShardPlan::from_bounds(vec![0, 4, 8]).is_ok());
    }
}
