//! The soNUMA memory fabric (§3, §6 of the paper).
//!
//! soNUMA replaces deep network stacks with a lean NUMA-style memory fabric:
//! reliable point-to-point links with credit-based flow control, two virtual
//! lanes for deadlock-free request/reply traffic, and low-radix routers
//! whose forwarding logic maps destination ids directly to output ports
//! (no CAM/TCAM lookups). The paper's evaluation models a full crossbar
//! with a flat 50 ns inter-node delay; the design "is not restricted to any
//! particular topology", so this crate also provides the 2D/3D torus
//! arrangements the paper recommends for rack-scale deployments.
//!
//! The fabric is modeled analytically inside the discrete-event world: a
//! send computes the packet's arrival time from per-port and per-link
//! serialization (bandwidth contention), per-hop latency, and virtual-lane
//! credit occupancy (backpressure). The caller schedules the delivery event
//! at the returned time.
//!
//! # Example
//!
//! ```
//! use sonuma_fabric::{Fabric, FabricConfig};
//! use sonuma_protocol::NodeId;
//! use sonuma_sim::SimTime;
//!
//! let mut fabric = Fabric::new(FabricConfig::paper_crossbar(4));
//! let arrival = fabric.send(SimTime::ZERO, NodeId(0), NodeId(2), 0, 88);
//! assert!(arrival.time >= SimTime::from_ns(50)); // flat crossbar delay
//! ```

pub mod config;
pub mod fabric;
pub mod fault;
pub mod link;
pub mod partition;
pub mod topology;

pub use config::FabricConfig;
pub use fabric::{Arrival, Fabric, FaultStats, LinkStats};
pub use fault::{fault_unit, FaultPlan, LinkFault, NodeFault, PacketFate};
pub use link::{LinkTiming, VirtualChannel};
pub use partition::ShardPlan;
pub use topology::{NextHopTable, RouteIter, Topology};

/// Number of virtual lanes: requests on 0, replies on 1 (§6).
pub const VIRTUAL_LANES: usize = 2;
