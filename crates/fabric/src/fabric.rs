//! The assembled fabric: topology + per-link serialization + credits.

use sonuma_protocol::NodeId;
use sonuma_sim::SimTime;

use crate::config::FabricConfig;
use crate::fault::{fault_unit, FaultPlan, LinkFault, PacketFate};
use crate::link::{LinkSerializer, VirtualChannel};
use crate::topology::{NextHopTable, Topology};
use crate::VIRTUAL_LANES;

/// Result of injecting a packet: when and via how many hops it arrives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Arrival {
    /// Time the packet is fully delivered at the destination NI.
    pub time: SimTime,
    /// Number of links traversed.
    pub hops: u32,
}

#[derive(Debug)]
struct DirectedLink {
    src: u16,
    dst: u16,
    serializer: LinkSerializer,
    lanes: [VirtualChannel; VIRTUAL_LANES],
}

/// How `(from, to)` directed-link pairs map into the dense link table —
/// the fabric's "adjacency index". Both forms are pure arithmetic, so a
/// hop's link lookup is an index computation plus one array load, no
/// hashing.
#[derive(Debug, Clone, Copy)]
enum AdjIndex {
    /// Crossbar: src-major ordered-pair index. `from` owns a contiguous
    /// block of `n - 1` slots, one per possible peer (the diagonal is
    /// skipped — loopback never enters the fabric).
    Pairs { n: usize },
    /// Torus/mesh: node × output port. Ports pair up per dimension
    /// (+1 direction then −1), so a D-dimensional grid has 2·D ports per
    /// node and `n · 2D` slots total.
    Grid { dims: [u16; 3], ndims: u8 },
}

impl AdjIndex {
    fn of(topology: &Topology) -> AdjIndex {
        match *topology {
            Topology::Crossbar { nodes } => AdjIndex::Pairs { n: nodes },
            Topology::Torus2D { width, height } | Topology::Mesh2D { width, height } => {
                AdjIndex::Grid {
                    dims: [width as u16, height as u16, 1],
                    ndims: 2,
                }
            }
            Topology::Torus3D { x, y, z } => AdjIndex::Grid {
                dims: [x as u16, y as u16, z as u16],
                ndims: 3,
            },
        }
    }

    /// Total slots in the dense table.
    fn slots(self, nodes: usize) -> usize {
        match self {
            AdjIndex::Pairs { n } => n * (n - 1).max(1),
            AdjIndex::Grid { ndims, .. } => nodes * 2 * ndims as usize,
        }
    }

    /// The slot of directed link `from -> to`. `to` must be one hop from
    /// `from` under the owning topology's routing.
    fn index(self, from: NodeId, to: NodeId) -> usize {
        match self {
            AdjIndex::Pairs { n } => {
                let peer = if to.index() < from.index() {
                    to.index()
                } else {
                    to.index() - 1
                };
                from.index() * (n - 1) + peer
            }
            AdjIndex::Grid { dims, ndims } => {
                // Find the one dimension the neighbors differ in and its
                // direction: +1 steps take the even port, −1 the odd.
                // (On a ring of 2 both directions coincide on the even
                // port — there is only one physical link.)
                let (mut f, mut t) = (from.index(), to.index());
                for (d, &dim) in dims[..ndims as usize].iter().enumerate() {
                    let k = dim as usize;
                    let (fc, tc) = (f % k, t % k);
                    if fc != tc {
                        let port = 2 * d + usize::from((tc + k - fc) % k != 1);
                        return from.index() * 2 * ndims as usize + port;
                    }
                    f /= k;
                    t /= k;
                }
                unreachable!("link endpoints are not grid neighbors");
            }
        }
    }
}

/// Per-slot link degradation, precomputed from the [`FaultPlan`] so the
/// send path reads a `Copy` struct instead of scanning the plan.
#[derive(Debug, Clone, Copy)]
struct LinkParams {
    derate: f64,
    credit_loss: usize,
    drop_prob: f64,
    corrupt_prob: f64,
}

const CLEAN_LINK: LinkParams = LinkParams {
    derate: 1.0,
    credit_loss: 0,
    drop_prob: 0.0,
    corrupt_prob: 0.0,
};

/// Fault-injection state of a fabric whose plan degrades or kills links.
///
/// All probabilistic decisions are pure hashes (`fault_unit`) and the
/// kill/revive state is a pure function of the packet's injection time, so
/// this struct holds no RNG position — only the plan compiled to slot
/// indices, a routing-table cache, and counters.
#[derive(Debug)]
struct FaultRuntime {
    seed: u64,
    /// Degraded slots, sorted by slot index for binary search.
    params: Vec<(u32, LinkParams)>,
    /// Links with a kill window; bit `i` of a dead mask tracks entry `i`.
    killable: Vec<(u32, LinkFault)>,
    /// Avoidance table for the most recent dead-mask value. Rebuilt only
    /// when the mask changes (kills and revivals, a handful per run).
    cache: Option<(u64, NextHopTable)>,
    dropped: u64,
    corrupted: u64,
    rerouted: u64,
    unreachable: u64,
}

impl FaultRuntime {
    fn build(plan: &FaultPlan, topology: &Topology, adj: AdjIndex) -> FaultRuntime {
        let mut params: Vec<(u32, LinkParams)> = Vec::new();
        let mut killable = Vec::new();
        for f in &plan.links {
            assert!(
                topology.neighbors(f.src).contains(&f.dst),
                "link fault {:?}->{:?} does not name a fabric link",
                f.src,
                f.dst,
            );
            let slot = adj.index(f.src, f.dst) as u32;
            if f.derate > 1.0 || f.credit_loss > 0 || f.drop_prob > 0.0 || f.corrupt_prob > 0.0 {
                params.push((
                    slot,
                    LinkParams {
                        derate: f.derate.max(1.0),
                        credit_loss: f.credit_loss,
                        drop_prob: f.drop_prob,
                        corrupt_prob: f.corrupt_prob,
                    },
                ));
            }
            if f.kill_at.is_some() {
                assert!(killable.len() < 64, "at most 64 killable links per plan");
                killable.push((slot, *f));
            }
        }
        params.sort_unstable_by_key(|&(slot, _)| slot);
        assert!(
            params.windows(2).all(|w| w[0].0 != w[1].0),
            "duplicate link fault on one directed link"
        );
        FaultRuntime {
            seed: plan.seed,
            params,
            killable,
            cache: None,
            dropped: 0,
            corrupted: 0,
            rerouted: 0,
            unreachable: 0,
        }
    }

    fn params_at(&self, slot: u32) -> LinkParams {
        match self.params.binary_search_by_key(&slot, |&(s, _)| s) {
            Ok(i) => self.params[i].1,
            Err(_) => CLEAN_LINK,
        }
    }

    /// Which killable links are dead for a packet injected at `now` — a
    /// pure function of time, never a stateful toggle, because the fabric
    /// sees send times out of order within an epoch.
    fn dead_mask(&self, now: SimTime) -> u64 {
        let mut mask = 0u64;
        for (i, (_, f)) in self.killable.iter().enumerate() {
            if f.dead_at(now) {
                mask |= 1 << i;
            }
        }
        mask
    }

    fn dead_pairs(&self, mask: u64) -> Vec<(NodeId, NodeId)> {
        self.killable
            .iter()
            .enumerate()
            .filter(|&(i, _)| mask & (1 << i) != 0)
            .map(|(_, &(_, f))| (f.src, f.dst))
            .collect()
    }
}

/// Fault-injection counters of one fabric (see [`Fabric::fault_stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultStats {
    /// Packets lost on a faulty link after occupying the wire up to it.
    pub dropped: u64,
    /// Packets delivered with flipped bits (the receiving RMC discards
    /// them on its integrity check).
    pub corrupted: u64,
    /// Packets routed via the dead-link-avoidance table (at least one
    /// link was dead when they were injected).
    pub rerouted: u64,
    /// Packets dropped because no live route to the destination existed.
    pub unreachable: u64,
}

/// The rack-scale memory fabric connecting all nodes' network interfaces.
///
/// Analytic DES component: [`Fabric::send`] advances internal link state
/// and returns the packet's arrival time; the caller schedules delivery.
/// Per-hop costs are `serialization + hop_latency` with store-and-forward
/// at intermediate routers (indistinguishable from cut-through at soNUMA's
/// 88-byte MTU), and per-lane credits apply on every hop.
///
/// Hot-path discipline: routes come from the allocation-free
/// [`Topology::route_iter`], and link state lives in a dense table indexed
/// by `AdjIndex` arithmetic, so a send does zero hashing and — once a
/// link's state exists (created boxed on its first packet, with credit
/// deques pre-sized to the credit pool) — zero heap allocation.
///
/// # Example
///
/// ```
/// use sonuma_fabric::{Fabric, FabricConfig};
/// use sonuma_protocol::NodeId;
/// use sonuma_sim::SimTime;
///
/// let mut f = Fabric::new(FabricConfig::torus2d(4, 4));
/// let near = f.send(SimTime::ZERO, NodeId(0), NodeId(1), 0, 88);
/// let far = f.send(SimTime::ZERO, NodeId(0), NodeId(10), 0, 88);
/// assert!(far.hops > near.hops);
/// assert!(far.time > near.time);
/// ```
pub struct Fabric {
    config: FabricConfig,
    adj: AdjIndex,
    /// Dense link table, [`AdjIndex`]-indexed. Boxed so an idle slot costs
    /// one machine word; filled on a link's first packet.
    links: Vec<Option<Box<DirectedLink>>>,
    /// Lazily-built forwarding table (see [`Fabric::next_hops`]).
    next_hops: Option<NextHopTable>,
    /// Compiled link-fault state; `None` whenever the plan (if any) has no
    /// link faults, which keeps [`Fabric::send_faulty`] on the plain
    /// [`Fabric::send`] path.
    fault_rt: Option<FaultRuntime>,
    packets_sent: u64,
    bytes_sent: u64,
    lane_packets: [u64; VIRTUAL_LANES],
}

impl std::fmt::Debug for Fabric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Fabric")
            .field("config", &self.config)
            .field("links_active", &self.links.iter().flatten().count())
            .field("packets_sent", &self.packets_sent)
            .field("bytes_sent", &self.bytes_sent)
            .finish()
    }
}

impl Fabric {
    /// Creates an idle fabric.
    pub fn new(config: FabricConfig) -> Self {
        let adj = AdjIndex::of(&config.topology);
        let mut links = Vec::new();
        links.resize_with(adj.slots(config.topology.nodes()), || None);
        let fault_rt = config
            .faults
            .as_ref()
            .filter(|plan| !plan.links.is_empty())
            .map(|plan| FaultRuntime::build(plan, &config.topology, adj));
        Fabric {
            config,
            adj,
            links,
            next_hops: None,
            fault_rt,
            packets_sent: 0,
            bytes_sent: 0,
            lane_packets: [0; VIRTUAL_LANES],
        }
    }

    /// The fabric configuration.
    pub fn config(&self) -> &FabricConfig {
        &self.config
    }

    /// Number of nodes the fabric connects.
    pub fn nodes(&self) -> usize {
        self.config.topology.nodes()
    }

    /// The dense next-hop forwarding table for this fabric's topology,
    /// built on first use (N×N; see [`NextHopTable`]). The send path
    /// routes arithmetically and never needs it — this is the structure a
    /// table-routed topology would plug in, exposed for tools and tests.
    pub fn next_hops(&mut self) -> &NextHopTable {
        self.next_hops
            .get_or_insert_with(|| self.config.topology.next_hop_table())
    }

    fn link(&mut self, from: NodeId, to: NodeId) -> &mut DirectedLink {
        let idx = self.adj.index(from, to);
        // Flow-control degradation: a faulty link is built with a shrunken
        // credit pool (never below one, or it could carry nothing).
        let lost = self
            .fault_rt
            .as_ref()
            .map_or(0, |rt| rt.params_at(idx as u32).credit_loss);
        let slot = &mut self.links[idx];
        if slot.is_none() {
            let credits = (self.config.credits_per_lane.saturating_sub(lost)).max(1);
            let credit_return = self.config.credit_return;
            *slot = Some(Box::new(DirectedLink {
                src: from.0,
                dst: to.0,
                serializer: LinkSerializer::new(),
                lanes: std::array::from_fn(|_| VirtualChannel::new(credits, credit_return)),
            }));
        }
        slot.as_mut().expect("just filled")
    }

    /// Injects a packet of `bytes` on virtual lane `lane` at time `now`;
    /// returns its arrival at `dst`.
    ///
    /// # Panics
    ///
    /// Panics if `lane >= 2`, if either node id is out of range, or if
    /// `src == dst` (local traffic never enters the fabric).
    pub fn send(
        &mut self,
        now: SimTime,
        src: NodeId,
        dst: NodeId,
        lane: usize,
        bytes: u64,
    ) -> Arrival {
        assert!(lane < VIRTUAL_LANES, "virtual lane out of range");
        assert_ne!(src, dst, "loopback traffic must not enter the fabric");
        let ser = self.config.serialization(bytes);
        let hop_latency = self.config.hop_latency;

        let mut at = now;
        let mut prev = src;
        let mut hops = 0u32;
        for hop in self.config.topology.route_iter(src, dst) {
            let link = self.link(prev, hop);
            // Credit first (receive buffer at `hop`), then the wire.
            let after_credit = link.lanes[lane].acquire(at, at + ser + hop_latency);
            let start = link.serializer.occupy(after_credit, ser, bytes);
            at = start + ser + hop_latency;
            prev = hop;
            hops += 1;
        }

        self.packets_sent += 1;
        self.bytes_sent += bytes;
        self.lane_packets[lane] += 1;
        Arrival { time: at, hops }
    }

    /// One hop of the faulty send path: occupy credit + wire (with the
    /// slot's derate applied to serialization), then draw the hop's drop
    /// and corruption fates from the pure fault stream. Returns the time
    /// the packet clears the hop and the two fate bits.
    #[allow(clippy::too_many_arguments)]
    fn faulty_hop(
        &mut self,
        at: SimTime,
        prev: NodeId,
        hop: NodeId,
        lane: usize,
        ser: SimTime,
        bytes: u64,
        salt: u64,
    ) -> (SimTime, bool, bool) {
        let hop_latency = self.config.hop_latency;
        let slot = self.adj.index(prev, hop) as u32;
        let rt = self.fault_rt.as_ref().expect("faulty path needs a runtime");
        let seed = rt.seed;
        let p = rt.params_at(slot);
        let ser = if p.derate > 1.0 {
            SimTime::from_ps((ser.as_ps() as f64 * p.derate).round() as u64)
        } else {
            ser
        };
        let link = self.link(prev, hop);
        let after_credit = link.lanes[lane].acquire(at, at + ser + hop_latency);
        let start = link.serializer.occupy(after_credit, ser, bytes);
        let cleared = start + ser + hop_latency;
        // Streams 4·slot and 4·slot+1 keep every link's drop and corrupt
        // draws decorrelated for the same packet.
        let dropped =
            p.drop_prob > 0.0 && fault_unit(seed, salt, u64::from(slot) << 2) < p.drop_prob;
        let corrupted = !dropped
            && p.corrupt_prob > 0.0
            && fault_unit(seed, salt, (u64::from(slot) << 2) | 1) < p.corrupt_prob;
        (cleared, dropped, corrupted)
    }

    /// Injects a packet through the fault plan: like [`Fabric::send`], but
    /// each hop may be derated, may drop the packet (it occupies the wire
    /// up to and including the faulting hop, then vanishes), or may corrupt
    /// it (it still arrives and pays full wire time; the receiver discards
    /// it). Packets injected while a link is dead route around it via a
    /// recomputed shortest-path table; if no live route exists the packet
    /// is dropped at the source.
    ///
    /// `salt` must identify the packet *instance* — the caller hashes the
    /// packet's wire identity and send time — so the same packet drawn on
    /// any shard of any partition gets the same fate, and a retransmission
    /// (new send time) gets a fresh draw.
    ///
    /// With no link faults compiled this is exactly `send` (and the
    /// returned fate is `Delivered`), so zero-fault runs stay byte-
    /// identical to the fault-free build.
    pub fn send_faulty(
        &mut self,
        now: SimTime,
        src: NodeId,
        dst: NodeId,
        lane: usize,
        bytes: u64,
        salt: u64,
    ) -> (Arrival, PacketFate) {
        if self.fault_rt.is_none() {
            return (self.send(now, src, dst, lane, bytes), PacketFate::Delivered);
        }
        assert!(lane < VIRTUAL_LANES, "virtual lane out of range");
        assert_ne!(src, dst, "loopback traffic must not enter the fabric");
        let ser = self.config.serialization(bytes);
        let mask = self.fault_rt.as_ref().expect("checked").dead_mask(now);

        // Dead links force table routing: reuse the cached avoidance table
        // when the dead set is unchanged, rebuild it otherwise (a handful
        // of times per run — only at kill/revive boundaries).
        let table = if mask == 0 {
            None
        } else {
            let cached = self.fault_rt.as_mut().expect("checked").cache.take();
            match cached {
                Some((m, t)) if m == mask => Some(t),
                _ => {
                    let dead = self.fault_rt.as_ref().expect("checked").dead_pairs(mask);
                    Some(NextHopTable::build_avoiding(&self.config.topology, &dead))
                }
            }
        };

        let mut at = now;
        let mut hops = 0u32;
        let mut fate = PacketFate::Delivered;
        let mut unreachable = false;
        match &table {
            None => {
                let mut prev = src;
                for hop in self.config.topology.route_iter(src, dst) {
                    let (cleared, dropped, corrupted) =
                        self.faulty_hop(at, prev, hop, lane, ser, bytes, salt);
                    at = cleared;
                    prev = hop;
                    hops += 1;
                    if dropped {
                        fate = PacketFate::Dropped;
                        break;
                    }
                    if corrupted {
                        fate = PacketFate::Corrupted;
                    }
                }
            }
            Some(t) => {
                let mut cur = src;
                while cur != dst {
                    let hop = t.next_hop(cur, dst);
                    if hop == cur {
                        fate = PacketFate::Dropped;
                        unreachable = true;
                        break;
                    }
                    let (cleared, dropped, corrupted) =
                        self.faulty_hop(at, cur, hop, lane, ser, bytes, salt);
                    at = cleared;
                    cur = hop;
                    hops += 1;
                    if dropped {
                        fate = PacketFate::Dropped;
                        break;
                    }
                    if corrupted {
                        fate = PacketFate::Corrupted;
                    }
                }
            }
        }

        self.packets_sent += 1;
        self.bytes_sent += bytes;
        self.lane_packets[lane] += 1;
        let rt = self.fault_rt.as_mut().expect("checked");
        if let Some(t) = table {
            rt.rerouted += 1;
            rt.cache = Some((mask, t));
        }
        match fate {
            PacketFate::Dropped if unreachable => rt.unreachable += 1,
            PacketFate::Dropped => rt.dropped += 1,
            PacketFate::Corrupted => rt.corrupted += 1,
            PacketFate::Delivered => {}
        }
        (Arrival { time: at, hops }, fate)
    }

    /// Whether this fabric carries a fault plan (even one with only node
    /// crashes — the cluster layer reads the plan for those).
    pub fn has_faults(&self) -> bool {
        self.config.faults.is_some()
    }

    /// Fault-injection counters; all zero when no link faults exist.
    pub fn fault_stats(&self) -> FaultStats {
        self.fault_rt
            .as_ref()
            .map_or(FaultStats::default(), |rt| FaultStats {
                dropped: rt.dropped,
                corrupted: rt.corrupted,
                rerouted: rt.rerouted,
                unreachable: rt.unreachable,
            })
    }

    /// Total packets injected.
    pub fn packets_sent(&self) -> u64 {
        self.packets_sent
    }

    /// Total bytes injected.
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent
    }

    /// Packets per virtual lane `[requests, replies]`.
    pub fn lane_packets(&self) -> [u64; VIRTUAL_LANES] {
        self.lane_packets
    }

    /// Total credit stalls across all links and lanes (congestion metric).
    pub fn credit_stalls(&self) -> u64 {
        self.links
            .iter()
            .flatten()
            .flat_map(|l| l.lanes.iter())
            .map(|vc| vc.stalls())
            .sum()
    }

    /// Per-link traffic counters for every directed link that has carried
    /// at least one packet, sorted by `(src, dst)` — deterministic
    /// regardless of traffic pattern, so reports built from it are
    /// byte-stable across runs.
    pub fn link_stats(&self) -> Vec<LinkStats> {
        let mut out: Vec<LinkStats> = self
            .links
            .iter()
            .flatten()
            .map(|link| LinkStats {
                src: NodeId(link.src),
                dst: NodeId(link.dst),
                bytes: link.serializer.bytes(),
                packets: link.serializer.packets(),
                credit_stalls: link.lanes.iter().map(VirtualChannel::stalls).sum(),
            })
            .collect();
        out.sort_unstable_by_key(|l| (l.src, l.dst));
        out
    }

    /// Number of dense link slots (the fixed upper bound on distinct
    /// directed links this fabric can ever instantiate). Flight recorders
    /// size their per-link tables from this once, up front.
    pub fn link_slots(&self) -> usize {
        self.links.len()
    }

    /// Visits every instantiated link in slot order with
    /// `(slot, src, dst, bytes, packets, credit_stalls)` — the cumulative
    /// counters [`Fabric::link_stats`] reports, but without allocating,
    /// so a flight recorder can sample mid-run on the hot path. Slot
    /// order is a pure function of the topology, never of traffic.
    pub fn visit_links(&self, mut f: impl FnMut(usize, u16, u16, u64, u64, u64)) {
        for (slot, link) in self.links.iter().enumerate() {
            if let Some(link) = link {
                f(
                    slot,
                    link.src,
                    link.dst,
                    link.serializer.bytes(),
                    link.serializer.packets(),
                    link.lanes.iter().map(VirtualChannel::stalls).sum(),
                );
            }
        }
    }
}

/// Traffic counters of one directed link (see [`Fabric::link_stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkStats {
    /// Sending node.
    pub src: NodeId,
    /// Receiving node.
    pub dst: NodeId,
    /// Bytes serialized onto the wire.
    pub bytes: u64,
    /// Packets serialized onto the wire.
    pub packets: u64,
    /// Sends that had to wait for a credit, summed over the link's
    /// virtual lanes (`VirtualChannel::stalls`).
    pub credit_stalls: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crossbar_uncontended_latency_is_flat() {
        let mut f = Fabric::new(FabricConfig::paper_crossbar(8));
        let a = f.send(SimTime::ZERO, NodeId(0), NodeId(5), 0, 88);
        assert_eq!(a.hops, 1);
        // 50 ns + 2.75 ns serialization.
        assert_eq!(a.time, SimTime::from_ns(50) + f.config().serialization(88));
    }

    #[test]
    fn torus_latency_scales_with_distance() {
        let mut f = Fabric::new(FabricConfig::torus2d(4, 4));
        let one = f.send(SimTime::ZERO, NodeId(0), NodeId(1), 0, 88);
        let four = f.send(SimTime::ZERO, NodeId(0), NodeId(10), 0, 88);
        assert_eq!(one.hops, 1);
        assert_eq!(four.hops, 4);
        assert!(
            four.time > one.time * 3,
            "multi-hop must cost proportionally"
        );
    }

    #[test]
    fn link_contention_serializes() {
        let mut f = Fabric::new(FabricConfig::paper_crossbar(4));
        let a = f.send(SimTime::ZERO, NodeId(0), NodeId(1), 0, 88);
        let b = f.send(SimTime::ZERO, NodeId(0), NodeId(1), 0, 88);
        assert_eq!(b.time - a.time, f.config().serialization(88));
    }

    #[test]
    fn distinct_links_do_not_contend() {
        let mut f = Fabric::new(FabricConfig::paper_crossbar(4));
        let a = f.send(SimTime::ZERO, NodeId(0), NodeId(1), 0, 88);
        let b = f.send(SimTime::ZERO, NodeId(2), NodeId(3), 0, 88);
        assert_eq!(a.time, b.time);
    }

    #[test]
    fn lanes_do_not_share_credits() {
        let cfg = FabricConfig {
            credits_per_lane: 1,
            ..FabricConfig::paper_crossbar(2)
        };
        let mut f = Fabric::new(cfg);
        // Exhaust lane 0's single credit.
        let a0 = f.send(SimTime::ZERO, NodeId(0), NodeId(1), 0, 88);
        // Lane 1 is unaffected (same physical link, so only serialization).
        let b = f.send(SimTime::ZERO, NodeId(0), NodeId(1), 1, 88);
        assert_eq!(b.time - a0.time, f.config().serialization(88));
        // Lane 0 again: must wait for the credit to return.
        let a1 = f.send(SimTime::ZERO, NodeId(0), NodeId(1), 0, 88);
        assert!(a1.time >= a0.time + f.config().credit_return);
        assert!(f.credit_stalls() >= 1);
    }

    #[test]
    fn stats_accumulate() {
        let mut f = Fabric::new(FabricConfig::paper_crossbar(4));
        f.send(SimTime::ZERO, NodeId(0), NodeId(1), 0, 24);
        f.send(SimTime::ZERO, NodeId(1), NodeId(0), 1, 88);
        assert_eq!(f.packets_sent(), 2);
        assert_eq!(f.bytes_sent(), 112);
        assert_eq!(f.lane_packets(), [1, 1]);
    }

    #[test]
    fn sustained_throughput_matches_link_bandwidth() {
        let mut f = Fabric::new(FabricConfig::paper_crossbar(2));
        let n = 10_000u64;
        let mut last = SimTime::ZERO;
        for _ in 0..n {
            last = f.send(SimTime::ZERO, NodeId(0), NodeId(1), 0, 88).time;
        }
        let gbps = sonuma_sim::stats::gbps(n * 88, last);
        // Wire rate is 32 GB/s = 256 Gbps; the 16-credit window over a
        // ~103 ns credit round trip sustains ~88% of it. Either way the
        // fabric must comfortably outrun one DDR3 channel (~77 Gbps).
        assert!(gbps > 200.0, "sustained {gbps} Gbps");
    }

    #[test]
    fn link_stats_are_sorted_and_complete() {
        let mut f = Fabric::new(FabricConfig::paper_crossbar(4));
        f.send(SimTime::ZERO, NodeId(2), NodeId(1), 0, 88);
        f.send(SimTime::ZERO, NodeId(0), NodeId(3), 1, 24);
        f.send(SimTime::ZERO, NodeId(0), NodeId(3), 1, 24);
        let stats = f.link_stats();
        assert_eq!(stats.len(), 2, "only links that carried traffic");
        assert_eq!((stats[0].src, stats[0].dst), (NodeId(0), NodeId(3)));
        assert_eq!((stats[0].bytes, stats[0].packets), (48, 2));
        assert_eq!((stats[1].src, stats[1].dst), (NodeId(2), NodeId(1)));
        assert_eq!(
            stats.iter().map(|l| l.bytes).sum::<u64>(),
            f.bytes_sent(),
            "per-link bytes must account for every byte sent"
        );
    }

    #[test]
    fn link_stats_ordering_matches_hashmap_reference() {
        // The dense layout must report exactly what the original
        // HashMap-keyed implementation did: one row per directed link that
        // carried traffic, sorted by (src, dst). The reference here
        // accumulates the same traffic into a HashMap and sorts its keys.
        use std::collections::HashMap;
        for config in [
            FabricConfig::paper_crossbar(6),
            FabricConfig::torus2d(3, 4),
            FabricConfig::torus3d(2, 3, 2),
        ] {
            let topo = config.topology.clone();
            let n = topo.nodes() as u16;
            let mut fabric = Fabric::new(config);
            let mut reference: HashMap<(u16, u16), (u64, u64)> = HashMap::new();
            let mut seed = 12345u64;
            for i in 0..500u64 {
                seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
                let src = (seed >> 33) as u16 % n;
                let dst = (seed >> 17) as u16 % n;
                if src == dst {
                    continue;
                }
                let bytes = if i % 3 == 0 { 24 } else { 88 };
                fabric.send(SimTime::from_ns(i), NodeId(src), NodeId(dst), 0, bytes);
                let mut prev = src;
                for hop in topo.route(NodeId(src), NodeId(dst)) {
                    let e = reference.entry((prev, hop.0)).or_default();
                    e.0 += bytes;
                    e.1 += 1;
                    prev = hop.0;
                }
            }
            let mut expected: Vec<((u16, u16), (u64, u64))> = reference.into_iter().collect();
            expected.sort_unstable_by_key(|&(k, _)| k);
            let stats = fabric.link_stats();
            assert_eq!(stats.len(), expected.len(), "{topo:?} link row count");
            for (row, ((src, dst), (bytes, packets))) in stats.iter().zip(expected) {
                assert_eq!((row.src.0, row.dst.0), (src, dst), "{topo:?} ordering");
                assert_eq!((row.bytes, row.packets), (bytes, packets), "{topo:?}");
            }
        }
    }

    #[test]
    fn next_hops_table_is_lazily_built_and_consistent() {
        let mut fabric = Fabric::new(FabricConfig::torus2d(4, 4));
        let table = fabric.next_hops();
        assert_eq!(table.nodes(), 16);
        assert_eq!(
            table.next_hop(NodeId(0), NodeId(10)),
            NodeId(1),
            "X-first dimension-order routing"
        );
    }

    fn plan_with(links: Vec<LinkFault>) -> FaultPlan {
        let mut plan = FaultPlan::new(42);
        plan.links = links;
        plan
    }

    #[test]
    fn send_faulty_without_link_faults_matches_send() {
        let mut clean = Fabric::new(FabricConfig::torus2d(4, 4));
        let mut faulty = Fabric::new(FabricConfig {
            faults: Some(FaultPlan::new(42)),
            ..FabricConfig::torus2d(4, 4)
        });
        for i in 0..50u64 {
            let (src, dst) = (NodeId((i % 16) as u16), NodeId(((i * 7 + 3) % 16) as u16));
            if src == dst {
                continue;
            }
            let t = SimTime::from_ns(i * 3);
            let a = clean.send(t, src, dst, (i % 2) as usize, 88);
            let (b, fate) = faulty.send_faulty(t, src, dst, (i % 2) as usize, 88, i);
            assert_eq!(a, b);
            assert_eq!(fate, PacketFate::Delivered);
        }
        assert_eq!(faulty.fault_stats(), FaultStats::default());
        assert!(faulty.has_faults());
        assert!(!clean.has_faults());
    }

    #[test]
    fn certain_drop_loses_the_packet_but_occupies_the_wire() {
        let mut f = LinkFault::on(NodeId(0), NodeId(1));
        f.drop_prob = 1.0;
        let mut fabric = Fabric::new(FabricConfig {
            faults: Some(plan_with(vec![f])),
            ..FabricConfig::paper_crossbar(4)
        });
        let (_, fate) = fabric.send_faulty(SimTime::ZERO, NodeId(0), NodeId(1), 0, 88, 1);
        assert_eq!(fate, PacketFate::Dropped);
        assert_eq!(fabric.fault_stats().dropped, 1);
        // The dropped packet serialized onto the faulty link: a follow-up
        // on a *clean* link out of node 0 is undisturbed, but the faulty
        // link's serializer was busy.
        let (a, fate) = fabric.send_faulty(SimTime::ZERO, NodeId(0), NodeId(1), 0, 88, 2);
        assert_eq!(fate, PacketFate::Dropped);
        assert!(a.time > SimTime::from_ns(50) + fabric.config().serialization(88));
    }

    #[test]
    fn certain_corruption_still_pays_full_wire_time() {
        let mut f = LinkFault::on(NodeId(0), NodeId(1));
        f.corrupt_prob = 1.0;
        let mut clean = Fabric::new(FabricConfig::paper_crossbar(4));
        let mut faulty = Fabric::new(FabricConfig {
            faults: Some(plan_with(vec![f])),
            ..FabricConfig::paper_crossbar(4)
        });
        let a = clean.send(SimTime::ZERO, NodeId(0), NodeId(1), 0, 88);
        let (b, fate) = faulty.send_faulty(SimTime::ZERO, NodeId(0), NodeId(1), 0, 88, 1);
        assert_eq!(fate, PacketFate::Corrupted);
        assert_eq!(a, b, "corruption must not change timing");
        assert_eq!(faulty.fault_stats().corrupted, 1);
    }

    #[test]
    fn derate_slows_only_the_faulty_link() {
        let mut f = LinkFault::on(NodeId(0), NodeId(1));
        f.derate = 4.0;
        let mut fabric = Fabric::new(FabricConfig {
            faults: Some(plan_with(vec![f])),
            ..FabricConfig::paper_crossbar(4)
        });
        let ser = fabric.config().serialization(88);
        let (slow, _) = fabric.send_faulty(SimTime::ZERO, NodeId(0), NodeId(1), 0, 88, 1);
        let (fast, _) = fabric.send_faulty(SimTime::ZERO, NodeId(0), NodeId(2), 0, 88, 2);
        assert_eq!(slow.time, SimTime::from_ns(50) + ser * 4);
        assert_eq!(fast.time, SimTime::from_ns(50) + ser);
    }

    #[test]
    fn credit_loss_shrinks_the_pool() {
        let mut f = LinkFault::on(NodeId(0), NodeId(1));
        f.credit_loss = 15; // 16-credit pool -> 1 credit
        let mut fabric = Fabric::new(FabricConfig {
            faults: Some(plan_with(vec![f])),
            ..FabricConfig::paper_crossbar(4)
        });
        let (a0, _) = fabric.send_faulty(SimTime::ZERO, NodeId(0), NodeId(1), 0, 88, 1);
        let (a1, _) = fabric.send_faulty(SimTime::ZERO, NodeId(0), NodeId(1), 0, 88, 2);
        assert!(a1.time >= a0.time + fabric.config().credit_return);
        assert!(fabric.credit_stalls() >= 1);
    }

    #[test]
    fn dead_link_reroutes_and_revival_restores() {
        let mut f = LinkFault::on(NodeId(0), NodeId(1));
        f.kill_at = Some(SimTime::from_ns(100));
        f.revive_at = Some(SimTime::from_ns(200));
        let mut fabric = Fabric::new(FabricConfig {
            faults: Some(plan_with(vec![f])),
            ..FabricConfig::torus2d(4, 4)
        });
        // Before the kill: the direct one-hop route.
        let (before, fate) = fabric.send_faulty(SimTime::ZERO, NodeId(0), NodeId(1), 0, 88, 1);
        assert_eq!((before.hops, fate), (1, PacketFate::Delivered));
        // During the outage: detour, still delivered.
        let (during, fate) =
            fabric.send_faulty(SimTime::from_ns(100), NodeId(0), NodeId(1), 0, 88, 2);
        assert_eq!(fate, PacketFate::Delivered);
        assert!(during.hops > 1, "must avoid the dead link");
        assert_eq!(fabric.fault_stats().rerouted, 1);
        // After revival: direct again.
        let (after, _) = fabric.send_faulty(SimTime::from_ns(200), NodeId(0), NodeId(1), 0, 88, 3);
        assert_eq!(after.hops, 1);
    }

    #[test]
    fn unreachable_destination_drops_at_source() {
        let mut plan = FaultPlan::new(7);
        for f in [
            LinkFault::on(NodeId(0), NodeId(1)),
            LinkFault::on(NodeId(1), NodeId(0)),
        ] {
            let mut f = f;
            f.kill_at = Some(SimTime::ZERO);
            plan.links.push(f);
        }
        let mut fabric = Fabric::new(FabricConfig {
            faults: Some(plan),
            ..FabricConfig::paper_crossbar(2)
        });
        let (a, fate) = fabric.send_faulty(SimTime::ZERO, NodeId(0), NodeId(1), 0, 88, 1);
        assert_eq!(fate, PacketFate::Dropped);
        assert_eq!(a.hops, 0);
        assert_eq!(fabric.fault_stats().unreachable, 1);
    }

    #[test]
    fn crossbar_reroute_takes_a_two_hop_detour() {
        let mut f = LinkFault::on(NodeId(0), NodeId(1));
        f.kill_at = Some(SimTime::ZERO);
        let mut fabric = Fabric::new(FabricConfig {
            faults: Some(plan_with(vec![f])),
            ..FabricConfig::paper_crossbar(4)
        });
        let (a, fate) = fabric.send_faulty(SimTime::ZERO, NodeId(0), NodeId(1), 0, 88, 1);
        assert_eq!(fate, PacketFate::Delivered);
        assert_eq!(a.hops, 2, "crossbar detour goes through one peer");
    }

    #[test]
    fn fault_fates_are_time_salted() {
        // The same packet identity retransmitted at a new time gets an
        // independent draw: with p = 0.5 some salt must flip the fate.
        let mut f = LinkFault::on(NodeId(0), NodeId(1));
        f.drop_prob = 0.5;
        let mut fabric = Fabric::new(FabricConfig {
            faults: Some(plan_with(vec![f])),
            ..FabricConfig::paper_crossbar(2)
        });
        let fates: Vec<PacketFate> = (0..32)
            .map(|i| {
                fabric
                    .send_faulty(SimTime::from_ns(i), NodeId(0), NodeId(1), 0, 88, 900 + i)
                    .1
            })
            .collect();
        assert!(fates.contains(&PacketFate::Dropped));
        assert!(fates.contains(&PacketFate::Delivered));
    }

    #[test]
    #[should_panic(expected = "loopback")]
    fn loopback_panics() {
        let mut f = Fabric::new(FabricConfig::paper_crossbar(2));
        f.send(SimTime::ZERO, NodeId(0), NodeId(0), 0, 88);
    }

    #[test]
    #[should_panic(expected = "virtual lane")]
    fn bad_lane_panics() {
        let mut f = Fabric::new(FabricConfig::paper_crossbar(2));
        f.send(SimTime::ZERO, NodeId(0), NodeId(1), 2, 88);
    }
}
