//! The assembled fabric: topology + per-link serialization + credits.

use std::collections::HashMap;

use sonuma_protocol::NodeId;
use sonuma_sim::SimTime;

use crate::config::FabricConfig;
use crate::link::{LinkSerializer, VirtualChannel};
use crate::VIRTUAL_LANES;

/// Result of injecting a packet: when and via how many hops it arrives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Arrival {
    /// Time the packet is fully delivered at the destination NI.
    pub time: SimTime,
    /// Number of links traversed.
    pub hops: u32,
}

#[derive(Debug)]
struct DirectedLink {
    serializer: LinkSerializer,
    lanes: [VirtualChannel; VIRTUAL_LANES],
}

/// The rack-scale memory fabric connecting all nodes' network interfaces.
///
/// Analytic DES component: [`Fabric::send`] advances internal link state
/// and returns the packet's arrival time; the caller schedules delivery.
/// Per-hop costs are `serialization + hop_latency` with store-and-forward
/// at intermediate routers (indistinguishable from cut-through at soNUMA's
/// 88-byte MTU), and per-lane credits apply on every hop.
///
/// # Example
///
/// ```
/// use sonuma_fabric::{Fabric, FabricConfig};
/// use sonuma_protocol::NodeId;
/// use sonuma_sim::SimTime;
///
/// let mut f = Fabric::new(FabricConfig::torus2d(4, 4));
/// let near = f.send(SimTime::ZERO, NodeId(0), NodeId(1), 0, 88);
/// let far = f.send(SimTime::ZERO, NodeId(0), NodeId(10), 0, 88);
/// assert!(far.hops > near.hops);
/// assert!(far.time > near.time);
/// ```
#[derive(Debug)]
pub struct Fabric {
    config: FabricConfig,
    links: HashMap<(u16, u16), DirectedLink>,
    packets_sent: u64,
    bytes_sent: u64,
    lane_packets: [u64; VIRTUAL_LANES],
}

impl Fabric {
    /// Creates an idle fabric.
    pub fn new(config: FabricConfig) -> Self {
        Fabric {
            config,
            links: HashMap::new(),
            packets_sent: 0,
            bytes_sent: 0,
            lane_packets: [0; VIRTUAL_LANES],
        }
    }

    /// The fabric configuration.
    pub fn config(&self) -> &FabricConfig {
        &self.config
    }

    /// Number of nodes the fabric connects.
    pub fn nodes(&self) -> usize {
        self.config.topology.nodes()
    }

    fn link(&mut self, from: NodeId, to: NodeId) -> &mut DirectedLink {
        let credits = self.config.credits_per_lane;
        let credit_return = self.config.credit_return;
        self.links
            .entry((from.0, to.0))
            .or_insert_with(|| DirectedLink {
                serializer: LinkSerializer::new(),
                lanes: std::array::from_fn(|_| VirtualChannel::new(credits, credit_return)),
            })
    }

    /// Injects a packet of `bytes` on virtual lane `lane` at time `now`;
    /// returns its arrival at `dst`.
    ///
    /// # Panics
    ///
    /// Panics if `lane >= 2`, if either node id is out of range, or if
    /// `src == dst` (local traffic never enters the fabric).
    pub fn send(
        &mut self,
        now: SimTime,
        src: NodeId,
        dst: NodeId,
        lane: usize,
        bytes: u64,
    ) -> Arrival {
        assert!(lane < VIRTUAL_LANES, "virtual lane out of range");
        assert_ne!(src, dst, "loopback traffic must not enter the fabric");
        let route = self.config.topology.route(src, dst);
        let ser = self.config.serialization(bytes);
        let hop_latency = self.config.hop_latency;

        let mut at = now;
        let mut prev = src;
        for &hop in &route {
            let link = self.link(prev, hop);
            // Credit first (receive buffer at `hop`), then the wire.
            let after_credit = link.lanes[lane].acquire(at, at + ser + hop_latency);
            let start = link.serializer.occupy(after_credit, ser, bytes);
            at = start + ser + hop_latency;
            prev = hop;
        }

        self.packets_sent += 1;
        self.bytes_sent += bytes;
        self.lane_packets[lane] += 1;
        Arrival {
            time: at,
            hops: route.len() as u32,
        }
    }

    /// Total packets injected.
    pub fn packets_sent(&self) -> u64 {
        self.packets_sent
    }

    /// Total bytes injected.
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent
    }

    /// Packets per virtual lane `[requests, replies]`.
    pub fn lane_packets(&self) -> [u64; VIRTUAL_LANES] {
        self.lane_packets
    }

    /// Total credit stalls across all links and lanes (congestion metric).
    pub fn credit_stalls(&self) -> u64 {
        self.links
            .values()
            .flat_map(|l| l.lanes.iter())
            .map(|vc| vc.stalls())
            .sum()
    }

    /// Per-link traffic counters for every directed link that has carried
    /// at least one packet, sorted by `(src, dst)` — deterministic
    /// regardless of traffic pattern, so reports built from it are
    /// byte-stable across runs.
    pub fn link_stats(&self) -> Vec<LinkStats> {
        let mut out: Vec<LinkStats> = self
            .links
            .iter()
            .map(|(&(src, dst), link)| LinkStats {
                src: NodeId(src),
                dst: NodeId(dst),
                bytes: link.serializer.bytes(),
                packets: link.serializer.packets(),
                credit_stalls: link.lanes.iter().map(VirtualChannel::stalls).sum(),
            })
            .collect();
        out.sort_unstable_by_key(|l| (l.src, l.dst));
        out
    }
}

/// Traffic counters of one directed link (see [`Fabric::link_stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkStats {
    /// Sending node.
    pub src: NodeId,
    /// Receiving node.
    pub dst: NodeId,
    /// Bytes serialized onto the wire.
    pub bytes: u64,
    /// Packets serialized onto the wire.
    pub packets: u64,
    /// Sends that had to wait for a credit, summed over the link's
    /// virtual lanes (`VirtualChannel::stalls`).
    pub credit_stalls: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crossbar_uncontended_latency_is_flat() {
        let mut f = Fabric::new(FabricConfig::paper_crossbar(8));
        let a = f.send(SimTime::ZERO, NodeId(0), NodeId(5), 0, 88);
        assert_eq!(a.hops, 1);
        // 50 ns + 2.75 ns serialization.
        assert_eq!(a.time, SimTime::from_ns(50) + f.config().serialization(88));
    }

    #[test]
    fn torus_latency_scales_with_distance() {
        let mut f = Fabric::new(FabricConfig::torus2d(4, 4));
        let one = f.send(SimTime::ZERO, NodeId(0), NodeId(1), 0, 88);
        let four = f.send(SimTime::ZERO, NodeId(0), NodeId(10), 0, 88);
        assert_eq!(one.hops, 1);
        assert_eq!(four.hops, 4);
        assert!(
            four.time > one.time * 3,
            "multi-hop must cost proportionally"
        );
    }

    #[test]
    fn link_contention_serializes() {
        let mut f = Fabric::new(FabricConfig::paper_crossbar(4));
        let a = f.send(SimTime::ZERO, NodeId(0), NodeId(1), 0, 88);
        let b = f.send(SimTime::ZERO, NodeId(0), NodeId(1), 0, 88);
        assert_eq!(b.time - a.time, f.config().serialization(88));
    }

    #[test]
    fn distinct_links_do_not_contend() {
        let mut f = Fabric::new(FabricConfig::paper_crossbar(4));
        let a = f.send(SimTime::ZERO, NodeId(0), NodeId(1), 0, 88);
        let b = f.send(SimTime::ZERO, NodeId(2), NodeId(3), 0, 88);
        assert_eq!(a.time, b.time);
    }

    #[test]
    fn lanes_do_not_share_credits() {
        let cfg = FabricConfig {
            credits_per_lane: 1,
            ..FabricConfig::paper_crossbar(2)
        };
        let mut f = Fabric::new(cfg);
        // Exhaust lane 0's single credit.
        let a0 = f.send(SimTime::ZERO, NodeId(0), NodeId(1), 0, 88);
        // Lane 1 is unaffected (same physical link, so only serialization).
        let b = f.send(SimTime::ZERO, NodeId(0), NodeId(1), 1, 88);
        assert_eq!(b.time - a0.time, f.config().serialization(88));
        // Lane 0 again: must wait for the credit to return.
        let a1 = f.send(SimTime::ZERO, NodeId(0), NodeId(1), 0, 88);
        assert!(a1.time >= a0.time + f.config().credit_return);
        assert!(f.credit_stalls() >= 1);
    }

    #[test]
    fn stats_accumulate() {
        let mut f = Fabric::new(FabricConfig::paper_crossbar(4));
        f.send(SimTime::ZERO, NodeId(0), NodeId(1), 0, 24);
        f.send(SimTime::ZERO, NodeId(1), NodeId(0), 1, 88);
        assert_eq!(f.packets_sent(), 2);
        assert_eq!(f.bytes_sent(), 112);
        assert_eq!(f.lane_packets(), [1, 1]);
    }

    #[test]
    fn sustained_throughput_matches_link_bandwidth() {
        let mut f = Fabric::new(FabricConfig::paper_crossbar(2));
        let n = 10_000u64;
        let mut last = SimTime::ZERO;
        for _ in 0..n {
            last = f.send(SimTime::ZERO, NodeId(0), NodeId(1), 0, 88).time;
        }
        let gbps = sonuma_sim::stats::gbps(n * 88, last);
        // Wire rate is 32 GB/s = 256 Gbps; the 16-credit window over a
        // ~103 ns credit round trip sustains ~88% of it. Either way the
        // fabric must comfortably outrun one DDR3 channel (~77 Gbps).
        assert!(gbps > 200.0, "sustained {gbps} Gbps");
    }

    #[test]
    fn link_stats_are_sorted_and_complete() {
        let mut f = Fabric::new(FabricConfig::paper_crossbar(4));
        f.send(SimTime::ZERO, NodeId(2), NodeId(1), 0, 88);
        f.send(SimTime::ZERO, NodeId(0), NodeId(3), 1, 24);
        f.send(SimTime::ZERO, NodeId(0), NodeId(3), 1, 24);
        let stats = f.link_stats();
        assert_eq!(stats.len(), 2, "only links that carried traffic");
        assert_eq!((stats[0].src, stats[0].dst), (NodeId(0), NodeId(3)));
        assert_eq!((stats[0].bytes, stats[0].packets), (48, 2));
        assert_eq!((stats[1].src, stats[1].dst), (NodeId(2), NodeId(1)));
        assert_eq!(
            stats.iter().map(|l| l.bytes).sum::<u64>(),
            f.bytes_sent(),
            "per-link bytes must account for every byte sent"
        );
    }

    #[test]
    #[should_panic(expected = "loopback")]
    fn loopback_panics() {
        let mut f = Fabric::new(FabricConfig::paper_crossbar(2));
        f.send(SimTime::ZERO, NodeId(0), NodeId(0), 0, 88);
    }

    #[test]
    #[should_panic(expected = "virtual lane")]
    fn bad_lane_panics() {
        let mut f = Fabric::new(FabricConfig::paper_crossbar(2));
        f.send(SimTime::ZERO, NodeId(0), NodeId(1), 2, 88);
    }
}
