//! Fabric timing configuration.

use sonuma_sim::SimTime;

use crate::fault::FaultPlan;
use crate::topology::Topology;

/// Timing and flow-control parameters of the memory fabric.
#[derive(Debug, Clone)]
pub struct FabricConfig {
    /// Node arrangement and routing.
    pub topology: Topology,
    /// One-way latency of a single hop (router pin-to-pin + wire). For the
    /// crossbar this is the flat inter-node delay.
    pub hop_latency: SimTime,
    /// Bandwidth of each point-to-point link / NI port, bytes per second.
    pub link_bytes_per_sec: u64,
    /// Receive-buffer credits per virtual lane per link. A sender stalls
    /// when all credits of the target lane are consumed by in-flight
    /// packets (credit-based flow control, §6).
    pub credits_per_lane: usize,
    /// Extra latency for a credit to travel back to the sender after the
    /// receiver drains a packet.
    pub credit_return: SimTime,
    /// Seeded fault schedule, if this run injects failures. `None` keeps
    /// the fabric on the fault-free fast path (bit-identical to a build
    /// without fault support).
    pub faults: Option<FaultPlan>,
}

impl FabricConfig {
    /// The paper's simulated configuration (Table 1): a full crossbar with
    /// a flat 50 ns inter-node delay and links comfortably faster than one
    /// DDR3-1600 channel (so memory, not wires, bounds bandwidth).
    pub fn paper_crossbar(nodes: usize) -> Self {
        FabricConfig {
            topology: Topology::crossbar(nodes),
            hop_latency: SimTime::from_ns(50),
            // QPI/HTX-class parallel links: 32 GB/s per direction.
            link_bytes_per_sec: 32_000_000_000,
            credits_per_lane: 16,
            credit_return: SimTime::from_ns(50),
            faults: None,
        }
    }

    /// A 2D torus with Alpha 21364-style routers — 11 ns pin-to-pin (§3)
    /// plus ~4 ns of wire per hop.
    pub fn torus2d(width: usize, height: usize) -> Self {
        FabricConfig {
            topology: Topology::torus2d(width, height),
            hop_latency: SimTime::from_ns(15),
            link_bytes_per_sec: 32_000_000_000,
            credits_per_lane: 16,
            credit_return: SimTime::from_ns(15),
            faults: None,
        }
    }

    /// A 3D torus for rack-scale deployments (§6, §8).
    pub fn torus3d(x: usize, y: usize, z: usize) -> Self {
        FabricConfig {
            topology: Topology::torus3d(x, y, z),
            ..FabricConfig::torus2d(1, 1)
        }
    }

    /// The development platform's "fabric": VM-to-VM shared-memory queues
    /// across NUMA domains of one Opteron server (§7.1). Per-hop latency is
    /// a chip-to-chip HyperTransport crossing plus the software queueing the
    /// hypervisor mapping adds.
    pub fn dev_platform(nodes: usize) -> Self {
        FabricConfig {
            topology: Topology::crossbar(nodes),
            hop_latency: SimTime::from_ns(220),
            link_bytes_per_sec: 6_000_000_000,
            credits_per_lane: 16,
            credit_return: SimTime::from_ns(220),
            faults: None,
        }
    }

    /// Serialization delay of `bytes` on one link.
    pub fn serialization(&self, bytes: u64) -> SimTime {
        SimTime::from_ns_f64(bytes as f64 / self.link_bytes_per_sec as f64 * 1e9)
    }

    /// A lower bound on the injection-to-delivery latency of any packet of
    /// at least `min_packet_bytes`: one hop of latency plus one link's
    /// serialization of the smallest packet. Credits and contention only
    /// delay further, and multi-hop routes pay this per hop, so every
    /// fabric delivery lands at least this far after its injection — the
    /// *lookahead* that bounds the sharded engine's epochs.
    pub fn min_delivery_delay(&self, min_packet_bytes: u64) -> SimTime {
        self.hop_latency + self.serialization(min_packet_bytes)
    }

    /// A lower bound on the injection-to-delivery latency of any packet of
    /// at least `min_packet_bytes` whose route is at least `min_hops` hops
    /// long: every hop pays the hop latency, and at least one link's
    /// serialization of the smallest packet is paid before anything can
    /// arrive (in fact every hop pays it, but one is all the bound needs).
    /// Credits and contention only delay further.
    ///
    /// `delivery_delay_for_hops(1, b) == min_delivery_delay(b)`; together
    /// with [`crate::Topology::min_hops`] this gives the per-shard-pair
    /// lookahead of the distance-aware conservative engine.
    pub fn delivery_delay_for_hops(&self, min_hops: u32, min_packet_bytes: u64) -> SimTime {
        self.hop_latency * u64::from(min_hops.max(1)) + self.serialization(min_packet_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_crossbar_matches_table1() {
        let c = FabricConfig::paper_crossbar(8);
        assert_eq!(c.topology.nodes(), 8);
        assert_eq!(c.hop_latency, SimTime::from_ns(50));
    }

    #[test]
    fn serialization_scales_linearly() {
        let c = FabricConfig::paper_crossbar(2);
        let one = c.serialization(88);
        let two = c.serialization(176);
        assert_eq!(two, one * 2);
        // 88 B at 32 GB/s = 2.75 ns.
        assert_eq!(one, SimTime::from_ps(2750));
    }

    #[test]
    fn delivery_delay_scales_with_hops_and_reduces_at_one() {
        let c = FabricConfig::torus2d(4, 4);
        assert_eq!(c.delivery_delay_for_hops(1, 24), c.min_delivery_delay(24));
        // Zero hops is clamped: distinct nodes are at least one hop apart.
        assert_eq!(c.delivery_delay_for_hops(0, 24), c.min_delivery_delay(24));
        assert_eq!(
            c.delivery_delay_for_hops(3, 24),
            c.hop_latency * 3 + c.serialization(24)
        );
    }

    #[test]
    fn dev_platform_is_slower() {
        let hw = FabricConfig::paper_crossbar(4);
        let dev = FabricConfig::dev_platform(4);
        assert!(dev.hop_latency > hw.hop_latency);
        assert!(dev.link_bytes_per_sec < hw.link_bytes_per_sec);
    }
}
