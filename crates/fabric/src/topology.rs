//! Fabric topologies and routing.

use sonuma_protocol::NodeId;

/// A fabric topology with deterministic routing.
///
/// Routing is topology-based — "the router's forwarding logic directly maps
/// destination addresses to outgoing router ports" (§6) — so routes are
/// computed, never looked up: dimension-order for meshes and torii, direct
/// for the crossbar.
///
/// # Example
///
/// ```
/// use sonuma_fabric::Topology;
/// use sonuma_protocol::NodeId;
///
/// let torus = Topology::torus2d(4, 4);
/// let path = torus.route(NodeId(0), NodeId(10));
/// assert_eq!(path.last(), Some(&NodeId(10)));
/// assert!(path.len() as u32 <= torus.diameter());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Topology {
    /// Full crossbar: every pair one hop apart (the paper's simulated
    /// configuration).
    Crossbar {
        /// Number of nodes.
        nodes: usize,
    },
    /// 2D torus with wraparound links, dimension-order (X then Y) routing.
    Torus2D {
        /// Width (X dimension).
        width: usize,
        /// Height (Y dimension).
        height: usize,
    },
    /// 3D torus — the "low-dimensional k-ary n-cube" the paper suggests for
    /// rack-scale deployments (§6).
    Torus3D {
        /// X dimension.
        x: usize,
        /// Y dimension.
        y: usize,
        /// Z dimension.
        z: usize,
    },
    /// 2D mesh without wraparound links (e.g. a blade backplane where edge
    /// links are not closed into rings).
    Mesh2D {
        /// Width (X dimension).
        width: usize,
        /// Height (Y dimension).
        height: usize,
    },
}

impl Topology {
    /// Builds a crossbar over `nodes` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero.
    pub fn crossbar(nodes: usize) -> Self {
        assert!(nodes > 0, "empty fabric");
        Topology::Crossbar { nodes }
    }

    /// Builds a `width x height` 2D torus.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn torus2d(width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0, "empty torus");
        Topology::Torus2D { width, height }
    }

    /// Builds an `x par y par z` 3D torus.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn torus3d(x: usize, y: usize, z: usize) -> Self {
        assert!(x > 0 && y > 0 && z > 0, "empty torus");
        Topology::Torus3D { x, y, z }
    }

    /// Builds a `width x height` mesh (no wraparound).
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn mesh2d(width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0, "empty mesh");
        Topology::Mesh2D { width, height }
    }

    /// Total number of nodes.
    pub fn nodes(&self) -> usize {
        match *self {
            Topology::Crossbar { nodes } => nodes,
            Topology::Torus2D { width, height } => width * height,
            Topology::Torus3D { x, y, z } => x * y * z,
            Topology::Mesh2D { width, height } => width * height,
        }
    }

    /// Maximum hop count between any pair.
    pub fn diameter(&self) -> u32 {
        match *self {
            Topology::Crossbar { .. } => 1,
            Topology::Torus2D { width, height } => (width / 2 + height / 2) as u32,
            Topology::Torus3D { x, y, z } => (x / 2 + y / 2 + z / 2) as u32,
            Topology::Mesh2D { width, height } => (width - 1 + height - 1) as u32,
        }
    }

    /// The sequence of nodes a packet visits after leaving `src`, ending at
    /// `dst`. Empty when `src == dst`.
    ///
    /// # Panics
    ///
    /// Panics if either id is out of range.
    pub fn route(&self, src: NodeId, dst: NodeId) -> Vec<NodeId> {
        let n = self.nodes();
        assert!(src.index() < n && dst.index() < n, "node id out of range");
        if src == dst {
            return Vec::new();
        }
        match *self {
            Topology::Crossbar { .. } => vec![dst],
            Topology::Torus2D { width, height } => {
                route_torus(&[width, height], src.index(), dst.index())
            }
            Topology::Torus3D { x, y, z } => route_torus(&[x, y, z], src.index(), dst.index()),
            Topology::Mesh2D { width, .. } => route_mesh(width, src.index(), dst.index()),
        }
    }

    /// Minimum hop count between two nodes.
    pub fn distance(&self, src: NodeId, dst: NodeId) -> u32 {
        self.route(src, dst).len() as u32
    }
}

/// Dimension-order routing on a k-ary n-cube with wraparound: resolve each
/// dimension fully (taking the shorter direction) before the next.
fn route_torus(dims: &[usize], src: usize, dst: usize) -> Vec<NodeId> {
    // Decompose into per-dimension coordinates (dimension 0 varies fastest).
    let coord = |mut id: usize| -> Vec<usize> {
        dims.iter()
            .map(|&d| {
                let c = id % d;
                id /= d;
                c
            })
            .collect()
    };
    let compose = |coords: &[usize]| -> usize {
        let mut id = 0;
        for (i, &c) in coords.iter().enumerate().rev() {
            id = id * dims[i] + c;
        }
        id
    };

    let mut cur = coord(src);
    let goal = coord(dst);
    let mut path = Vec::new();
    for dim in 0..dims.len() {
        let k = dims[dim];
        while cur[dim] != goal[dim] {
            let fwd = (goal[dim] + k - cur[dim]) % k; // hops going +1
            let step = if fwd <= k - fwd { 1 } else { k - 1 }; // +1 or -1 mod k
            cur[dim] = (cur[dim] + step) % k;
            path.push(NodeId(compose(&cur) as u16));
        }
    }
    path
}

/// Dimension-order (XY) routing on a mesh: no wraparound, so every step
/// moves monotonically toward the destination coordinate.
fn route_mesh(width: usize, src: usize, dst: usize) -> Vec<NodeId> {
    let (mut x, mut y) = (src % width, src / width);
    let (gx, gy) = (dst % width, dst / width);
    let mut path = Vec::new();
    while x != gx {
        x = if gx > x { x + 1 } else { x - 1 };
        path.push(NodeId((y * width + x) as u16));
    }
    while y != gy {
        y = if gy > y { y + 1 } else { y - 1 };
        path.push(NodeId((y * width + x) as u16));
    }
    path
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mesh_routes_have_no_wraparound() {
        let m = Topology::mesh2d(4, 4);
        assert_eq!(m.nodes(), 16);
        assert_eq!(m.diameter(), 6);
        // 0 -> 3 must walk the whole row (no ring shortcut).
        assert_eq!(
            m.route(NodeId(0), NodeId(3)),
            vec![NodeId(1), NodeId(2), NodeId(3)]
        );
        // Corner to corner: Manhattan distance.
        assert_eq!(m.distance(NodeId(0), NodeId(15)), 6);
        // Every route ends at its destination.
        for s in 0..16u16 {
            for d in 0..16u16 {
                let path = m.route(NodeId(s), NodeId(d));
                if s != d {
                    assert_eq!(*path.last().unwrap(), NodeId(d));
                    assert!(path.len() as u32 <= m.diameter());
                }
            }
        }
    }

    #[test]
    fn mesh_is_slower_than_torus_at_the_edges() {
        let mesh = Topology::mesh2d(4, 4);
        let torus = Topology::torus2d(4, 4);
        assert!(mesh.distance(NodeId(0), NodeId(3)) > torus.distance(NodeId(0), NodeId(3)));
    }

    #[test]
    fn crossbar_routes_are_single_hop() {
        let t = Topology::crossbar(8);
        assert_eq!(t.nodes(), 8);
        assert_eq!(t.diameter(), 1);
        assert_eq!(t.route(NodeId(0), NodeId(7)), vec![NodeId(7)]);
        assert_eq!(t.route(NodeId(3), NodeId(3)), vec![]);
        assert_eq!(t.distance(NodeId(1), NodeId(2)), 1);
    }

    #[test]
    fn torus2d_routes_are_dimension_ordered() {
        let t = Topology::torus2d(4, 4);
        // 0=(0,0) to 10=(2,2): X first (1, 2), then Y (6, 10).
        let path = t.route(NodeId(0), NodeId(10));
        assert_eq!(path, vec![NodeId(1), NodeId(2), NodeId(6), NodeId(10)]);
    }

    #[test]
    fn torus_wraparound_takes_short_way() {
        let t = Topology::torus2d(4, 1);
        // 0 -> 3 is one hop backwards around the ring, not three forward.
        assert_eq!(t.route(NodeId(0), NodeId(3)), vec![NodeId(3)]);
        let t8 = Topology::torus2d(8, 1);
        assert_eq!(t8.distance(NodeId(0), NodeId(6)), 2); // via 7
    }

    #[test]
    fn torus_routes_end_at_destination_and_respect_diameter() {
        let t = Topology::torus3d(3, 3, 3);
        for s in 0..27u16 {
            for d in 0..27u16 {
                let path = t.route(NodeId(s), NodeId(d));
                if s == d {
                    assert!(path.is_empty());
                } else {
                    assert_eq!(*path.last().unwrap(), NodeId(d));
                    assert!(path.len() as u32 <= t.diameter());
                }
            }
        }
    }

    #[test]
    fn torus_steps_are_neighbors() {
        let t = Topology::torus2d(4, 4);
        for s in 0..16u16 {
            for d in 0..16u16 {
                let mut prev = s as usize;
                for hop in t.route(NodeId(s), NodeId(d)) {
                    let (px, py) = (prev % 4, prev / 4);
                    let (hx, hy) = (hop.index() % 4, hop.index() / 4);
                    let dx = (px as i32 - hx as i32)
                        .rem_euclid(4)
                        .min((hx as i32 - px as i32).rem_euclid(4));
                    let dy = (py as i32 - hy as i32)
                        .rem_euclid(4)
                        .min((hy as i32 - py as i32).rem_euclid(4));
                    assert_eq!(dx + dy, 1, "non-neighbor step {prev}->{}", hop.index());
                    prev = hop.index();
                }
            }
        }
    }

    #[test]
    fn diameters() {
        assert_eq!(Topology::torus2d(4, 4).diameter(), 4);
        assert_eq!(Topology::torus3d(4, 4, 4).diameter(), 6);
        assert_eq!(Topology::torus3d(3, 3, 3).diameter(), 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_node_panics() {
        Topology::crossbar(2).route(NodeId(0), NodeId(5));
    }

    #[test]
    #[should_panic(expected = "empty fabric")]
    fn empty_crossbar_panics() {
        Topology::crossbar(0);
    }
}
