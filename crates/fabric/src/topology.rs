//! Fabric topologies and routing.

use sonuma_protocol::NodeId;

/// A fabric topology with deterministic routing.
///
/// Routing is topology-based — "the router's forwarding logic directly maps
/// destination addresses to outgoing router ports" (§6) — so routes are
/// computed, never looked up: dimension-order for meshes and torii, direct
/// for the crossbar. [`Topology::route_iter`] yields the hop sequence
/// without touching the heap (this is what [`crate::Fabric::send`] walks on
/// every packet); [`Topology::route`] is the allocating convenience wrapper
/// for tests and tools. Topologies whose routing is *not* arithmetic can be
/// served by a precomputed [`NextHopTable`] instead.
///
/// # Example
///
/// ```
/// use sonuma_fabric::Topology;
/// use sonuma_protocol::NodeId;
///
/// let torus = Topology::torus2d(4, 4);
/// let path = torus.route(NodeId(0), NodeId(10));
/// assert_eq!(path.last(), Some(&NodeId(10)));
/// assert!(path.len() as u32 <= torus.diameter());
/// // The allocation-free iterator yields the same hops.
/// assert!(torus.route_iter(NodeId(0), NodeId(10)).eq(path.into_iter()));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Topology {
    /// Full crossbar: every pair one hop apart (the paper's simulated
    /// configuration).
    Crossbar {
        /// Number of nodes.
        nodes: usize,
    },
    /// 2D torus with wraparound links, dimension-order (X then Y) routing.
    Torus2D {
        /// Width (X dimension).
        width: usize,
        /// Height (Y dimension).
        height: usize,
    },
    /// 3D torus — the "low-dimensional k-ary n-cube" the paper suggests for
    /// rack-scale deployments (§6).
    Torus3D {
        /// X dimension.
        x: usize,
        /// Y dimension.
        y: usize,
        /// Z dimension.
        z: usize,
    },
    /// 2D mesh without wraparound links (e.g. a blade backplane where edge
    /// links are not closed into rings).
    Mesh2D {
        /// Width (X dimension).
        width: usize,
        /// Height (Y dimension).
        height: usize,
    },
}

impl Topology {
    /// Builds a crossbar over `nodes` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero.
    pub fn crossbar(nodes: usize) -> Self {
        assert!(nodes > 0, "empty fabric");
        Topology::Crossbar { nodes }
    }

    /// Builds a `width x height` 2D torus.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn torus2d(width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0, "empty torus");
        Topology::Torus2D { width, height }
    }

    /// Builds an `x par y par z` 3D torus.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn torus3d(x: usize, y: usize, z: usize) -> Self {
        assert!(x > 0 && y > 0 && z > 0, "empty torus");
        Topology::Torus3D { x, y, z }
    }

    /// Builds a `width x height` mesh (no wraparound).
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn mesh2d(width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0, "empty mesh");
        Topology::Mesh2D { width, height }
    }

    /// Total number of nodes.
    pub fn nodes(&self) -> usize {
        match *self {
            Topology::Crossbar { nodes } => nodes,
            Topology::Torus2D { width, height } => width * height,
            Topology::Torus3D { x, y, z } => x * y * z,
            Topology::Mesh2D { width, height } => width * height,
        }
    }

    /// Maximum hop count between any pair.
    pub fn diameter(&self) -> u32 {
        match *self {
            Topology::Crossbar { .. } => 1,
            Topology::Torus2D { width, height } => (width / 2 + height / 2) as u32,
            Topology::Torus3D { x, y, z } => (x / 2 + y / 2 + z / 2) as u32,
            Topology::Mesh2D { width, height } => (width - 1 + height - 1) as u32,
        }
    }

    /// Allocation-free iterator over the nodes a packet visits after
    /// leaving `src`, ending at `dst`. Empty when `src == dst`. This is the
    /// hot-path form: every hop is computed arithmetically from fixed-size
    /// coordinate arrays, so routing a packet never touches the heap.
    ///
    /// # Panics
    ///
    /// Panics if either id is out of range.
    pub fn route_iter(&self, src: NodeId, dst: NodeId) -> RouteIter {
        let n = self.nodes();
        assert!(src.index() < n && dst.index() < n, "node id out of range");
        let state = if src == dst {
            RouteState::Done
        } else {
            match *self {
                Topology::Crossbar { .. } => RouteState::Direct { dst: dst.0 },
                Topology::Torus2D { width, height } => {
                    torus_state(&[width, height], src.index(), dst.index())
                }
                Topology::Torus3D { x, y, z } => torus_state(&[x, y, z], src.index(), dst.index()),
                Topology::Mesh2D { width, .. } => RouteState::Mesh {
                    width: width as u16,
                    x: (src.index() % width) as u16,
                    y: (src.index() / width) as u16,
                    gx: (dst.index() % width) as u16,
                    gy: (dst.index() / width) as u16,
                },
            }
        };
        RouteIter { state }
    }

    /// The sequence of nodes a packet visits after leaving `src`, ending at
    /// `dst`, as an owned `Vec`. Empty when `src == dst`. Allocating
    /// convenience form of [`Topology::route_iter`] for tests and tools —
    /// the fabric's per-packet path never calls this.
    ///
    /// # Panics
    ///
    /// Panics if either id is out of range.
    pub fn route(&self, src: NodeId, dst: NodeId) -> Vec<NodeId> {
        self.route_iter(src, dst).collect()
    }

    /// Minimum hop count between two nodes, computed arithmetically
    /// (no route materialization).
    pub fn distance(&self, src: NodeId, dst: NodeId) -> u32 {
        let n = self.nodes();
        assert!(src.index() < n && dst.index() < n, "node id out of range");
        if src == dst {
            return 0;
        }
        match *self {
            Topology::Crossbar { .. } => 1,
            Topology::Torus2D { width, height } => {
                ring_distance(width, src.index(), dst.index())
                    + ring_distance(height, src.index() / width, dst.index() / width)
            }
            Topology::Torus3D { x, y, z } => {
                ring_distance(x, src.index(), dst.index())
                    + ring_distance(y, src.index() / x, dst.index() / x)
                    + ring_distance(z, src.index() / (x * y), dst.index() / (x * y))
            }
            Topology::Mesh2D { width, .. } => {
                let (sx, sy) = (src.index() % width, src.index() / width);
                let (dx, dy) = (dst.index() % width, dst.index() / width);
                (sx.abs_diff(dx) + sy.abs_diff(dy)) as u32
            }
        }
    }

    /// Builds the dense next-hop forwarding table for this topology (see
    /// [`NextHopTable`]). O(N²) space; the arithmetic topologies above
    /// never need it, but it is the routing structure of choice for
    /// topologies whose next hop is awkward to compute on the fly.
    pub fn next_hop_table(&self) -> NextHopTable {
        NextHopTable::build(self)
    }

    /// The physical neighbors of `v` — every node one link away, in
    /// ascending id order. For the crossbar that is every other node; for
    /// grids, the ±1 step in each dimension (deduplicated on rings of 2,
    /// where both directions land on the same node).
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn neighbors(&self, v: NodeId) -> Vec<NodeId> {
        let n = self.nodes();
        assert!(v.index() < n, "node id out of range");
        let mut out: Vec<NodeId> = match *self {
            Topology::Crossbar { nodes } => (0..nodes as u16)
                .filter(|&p| p != v.0)
                .map(NodeId)
                .collect(),
            Topology::Torus2D { width, height } => {
                grid_neighbors(&[width, height], true, v.index())
            }
            Topology::Torus3D { x, y, z } => grid_neighbors(&[x, y, z], true, v.index()),
            Topology::Mesh2D { width, height } => {
                grid_neighbors(&[width, height], false, v.index())
            }
        };
        out.sort_unstable();
        out.dedup();
        out
    }

    /// A lower bound on the hop distance between any node in range `a` and
    /// any node in range `b`, clamped to at least 1.
    ///
    /// Computed per dimension: the minimum ring (torus) or line (mesh)
    /// distance between the coordinate sets each range occupies in that
    /// dimension, summed over dimensions. Because the per-dimension minima
    /// may be achieved by *different* node pairs, the sum is a lower bound
    /// on the true minimum pairwise distance — exact when both ranges are
    /// whole slabs (products of coordinate intervals), which is what
    /// plane-aligned shard plans produce. A lower bound is the safe
    /// direction for conservative lookahead: promising *less* distance than
    /// packets actually travel never admits an early delivery.
    ///
    /// The clamp to 1 covers overlapping or adjacent ranges: two distinct
    /// nodes are always at least one hop apart, and no fabric packet is
    /// ever sent node-to-self.
    ///
    /// # Panics
    ///
    /// Panics if either range is empty or reaches past the node count.
    pub fn min_hops(&self, a: std::ops::Range<usize>, b: std::ops::Range<usize>) -> u32 {
        let n = self.nodes();
        assert!(!a.is_empty() && !b.is_empty(), "empty node range");
        assert!(a.end <= n && b.end <= n, "node id out of range");
        let bound = match *self {
            Topology::Crossbar { .. } => 1,
            Topology::Torus2D { width, height } => {
                grid_min_hops(&[(width, true), (height, true)], &a, &b)
            }
            Topology::Torus3D { x, y, z } => {
                grid_min_hops(&[(x, true), (y, true), (z, true)], &a, &b)
            }
            Topology::Mesh2D { width, height } => {
                grid_min_hops(&[(width, false), (height, false)], &a, &b)
            }
        };
        bound.max(1)
    }
}

/// Sum over dimensions of the minimum distance between the coordinate sets
/// `a` and `b` occupy in that dimension. `dims` lists `(extent, wraps)`
/// fastest-varying first, matching the x-major node id encoding.
fn grid_min_hops(
    dims: &[(usize, bool)],
    a: &std::ops::Range<usize>,
    b: &std::ops::Range<usize>,
) -> u32 {
    let mut total = 0u32;
    let mut stride = 1usize;
    for &(k, wraps) in dims {
        let pa = coords_present(k, stride, a);
        let pb = coords_present(k, stride, b);
        total += coord_set_distance(k, wraps, &pa, &pb);
        stride *= k;
    }
    total
}

/// Which coordinates of a `k`-extent dimension (id stride `stride`) the
/// contiguous id range `r` touches.
fn coords_present(k: usize, stride: usize, r: &std::ops::Range<usize>) -> Vec<bool> {
    // A range spanning a full revolution of this dimension touches every
    // coordinate; skip the per-id walk.
    if r.len() >= k * stride {
        return vec![true; k];
    }
    let mut present = vec![false; k];
    for id in r.clone() {
        present[(id / stride) % k] = true;
    }
    present
}

/// Minimum ring/line distance between two non-empty coordinate sets.
fn coord_set_distance(k: usize, wraps: bool, a: &[bool], b: &[bool]) -> u32 {
    let mut best = u32::MAX;
    for (i, _) in a.iter().enumerate().filter(|(_, &p)| p) {
        for (j, _) in b.iter().enumerate().filter(|(_, &p)| p) {
            let d = if wraps {
                ring_distance(k, i, j)
            } else {
                i.abs_diff(j) as u32
            };
            if d < best {
                best = d;
                if best == 0 {
                    return 0;
                }
            }
        }
    }
    best
}

/// The grid neighbors of node id `v`: ±1 in every dimension, wrapping on
/// torii (`wraps`), clipped at the edges on meshes. May contain duplicates
/// on rings of 2 (the caller dedups).
fn grid_neighbors(dims: &[usize], wraps: bool, v: usize) -> Vec<NodeId> {
    let mut out = Vec::with_capacity(2 * dims.len());
    let mut stride = 1usize;
    for &k in dims {
        let c = (v / stride) % k;
        if wraps {
            out.push(v - c * stride + ((c + 1) % k) * stride);
            out.push(v - c * stride + ((c + k - 1) % k) * stride);
        } else {
            if c + 1 < k {
                out.push(v + stride);
            }
            if c > 0 {
                out.push(v - stride);
            }
        }
        stride *= k;
    }
    out.into_iter().map(|id| NodeId(id as u16)).collect()
}

/// Shortest directed hop count between positions `s` and `d` on a ring of
/// `k` (both taken modulo `k` after dividing out faster dimensions).
fn ring_distance(k: usize, s: usize, d: usize) -> u32 {
    let (s, d) = (s % k, d % k);
    let fwd = (d + k - s) % k;
    fwd.min(k - fwd) as u32
}

/// Initial dimension-order walk state on a k-ary n-cube: coordinates are
/// decomposed once into fixed-size arrays (dimension 0 varies fastest), so
/// iterating the route allocates nothing.
fn torus_state(dims: &[usize], src: usize, dst: usize) -> RouteState {
    let mut d = [1u16; 3];
    let mut cur = [0u16; 3];
    let mut goal = [0u16; 3];
    let (mut s, mut g) = (src, dst);
    for (i, &k) in dims.iter().enumerate() {
        d[i] = k as u16;
        cur[i] = (s % k) as u16;
        goal[i] = (g % k) as u16;
        s /= k;
        g /= k;
    }
    RouteState::Torus {
        dims: d,
        ndims: dims.len() as u8,
        dim: 0,
        cur,
        goal,
    }
}

/// Allocation-free route iterator (see [`Topology::route_iter`]).
///
/// Plain `Copy` data: the topology's parameters and the walker's current
/// position are captured in fixed-size arrays at construction, so cloning
/// or iterating never allocates.
#[derive(Debug, Clone, Copy)]
pub struct RouteIter {
    state: RouteState,
}

#[derive(Debug, Clone, Copy)]
enum RouteState {
    /// Route fully consumed (or `src == dst`).
    Done,
    /// Crossbar: one hop straight to the destination.
    Direct { dst: u16 },
    /// Dimension-order walk on a k-ary n-cube with wraparound: resolve
    /// each dimension fully (taking the shorter direction) before the
    /// next.
    Torus {
        dims: [u16; 3],
        ndims: u8,
        dim: u8,
        cur: [u16; 3],
        goal: [u16; 3],
    },
    /// Dimension-order (XY) walk on a mesh: no wraparound, so every step
    /// moves monotonically toward the destination coordinate.
    Mesh {
        width: u16,
        x: u16,
        y: u16,
        gx: u16,
        gy: u16,
    },
}

impl Iterator for RouteIter {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        match &mut self.state {
            RouteState::Done => None,
            RouteState::Direct { dst } => {
                let hop = NodeId(*dst);
                self.state = RouteState::Done;
                Some(hop)
            }
            RouteState::Torus {
                dims,
                ndims,
                dim,
                cur,
                goal,
            } => {
                while *dim < *ndims && cur[*dim as usize] == goal[*dim as usize] {
                    *dim += 1;
                }
                if *dim >= *ndims {
                    self.state = RouteState::Done;
                    return None;
                }
                let i = *dim as usize;
                let k = dims[i];
                let fwd = (goal[i] + k - cur[i]) % k; // hops going +1
                let step = if fwd <= k - fwd { 1 } else { k - 1 }; // +1 or -1 mod k
                cur[i] = (cur[i] + step) % k;
                let mut id = 0u32;
                for j in (0..*ndims as usize).rev() {
                    id = id * dims[j] as u32 + cur[j] as u32;
                }
                Some(NodeId(id as u16))
            }
            RouteState::Mesh {
                width,
                x,
                y,
                gx,
                gy,
            } => {
                if x != gx {
                    *x = if *gx > *x { *x + 1 } else { *x - 1 };
                } else if y != gy {
                    *y = if *gy > *y { *y + 1 } else { *y - 1 };
                } else {
                    self.state = RouteState::Done;
                    return None;
                }
                Some(NodeId(*y * *width + *x))
            }
        }
    }
}

/// Dense precomputed forwarding table: `next_hop(cur, dst)` is one array
/// load. This is the "forwarding logic directly maps destination addresses
/// to outgoing router ports" structure (§6) in table form, N×N `u16`s —
/// the fallback for topologies whose next hop is awkward to compute
/// arithmetically, and the reference the routing-equivalence tests check
/// [`RouteIter`] against.
#[derive(Debug, Clone)]
pub struct NextHopTable {
    n: usize,
    next: Vec<u16>,
}

impl NextHopTable {
    /// Precomputes every (current, destination) pair's next hop.
    pub fn build(topo: &Topology) -> Self {
        let n = topo.nodes();
        let mut next = vec![0u16; n * n];
        for cur in 0..n {
            for dst in 0..n {
                next[cur * n + dst] = if cur == dst {
                    cur as u16
                } else {
                    topo.route_iter(NodeId(cur as u16), NodeId(dst as u16))
                        .next()
                        .expect("nonempty route")
                        .0
                };
            }
        }
        NextHopTable { n, next }
    }

    /// Precomputes shortest-path next hops that avoid every directed link
    /// in `dead` — the adaptive re-routing structure a fabric switches to
    /// while links are down. One BFS per destination over the reversed
    /// live graph; ties break toward the lowest-id neighbor discovered
    /// first, so the table is a pure function of `(topology, dead set)`
    /// and identical on every shard of a partitioned run.
    ///
    /// Pairs the dead set disconnects keep `next_hop(cur, dst) == cur`
    /// (the same marker as "already there"); callers detect that before
    /// walking and treat the packet as lost.
    pub fn build_avoiding(topo: &Topology, dead: &[(NodeId, NodeId)]) -> Self {
        let n = topo.nodes();
        // Self-pointing default doubles as the unreachable marker.
        let mut next: Vec<u16> = (0..n)
            .flat_map(|cur| std::iter::repeat_n(cur as u16, n))
            .collect();
        let adj: Vec<Vec<NodeId>> = (0..n).map(|v| topo.neighbors(NodeId(v as u16))).collect();
        let alive = |from: NodeId, to: NodeId| !dead.contains(&(from, to));
        let mut dist = vec![u32::MAX; n];
        let mut queue = std::collections::VecDeque::new();
        for dst in 0..n {
            dist.fill(u32::MAX);
            dist[dst] = 0;
            queue.clear();
            queue.push_back(dst);
            // BFS from the destination over reversed edges: discovering
            // `u` through `v` means the live link u->v starts a shortest
            // path, so `u` forwards to `v`.
            while let Some(v) = queue.pop_front() {
                for &u in &adj[v] {
                    let u = u.index();
                    if dist[u] == u32::MAX && alive(NodeId(u as u16), NodeId(v as u16)) {
                        dist[u] = dist[v] + 1;
                        next[u * n + dst] = v as u16;
                        queue.push_back(u);
                    }
                }
            }
        }
        NextHopTable { n, next }
    }

    /// Number of nodes the table covers.
    pub fn nodes(&self) -> usize {
        self.n
    }

    /// The node a packet at `cur` forwards to on its way to `dst`
    /// (`cur` itself when already there).
    ///
    /// # Panics
    ///
    /// Panics if either id is out of range.
    pub fn next_hop(&self, cur: NodeId, dst: NodeId) -> NodeId {
        NodeId(self.next[cur.index() * self.n + dst.index()])
    }

    /// The full hop sequence from `src` to `dst` via repeated table
    /// lookups — hop-for-hop identical to [`Topology::route_iter`] on the
    /// topology the table was built from.
    pub fn route(&self, src: NodeId, dst: NodeId) -> Vec<NodeId> {
        let mut path = Vec::new();
        let mut cur = src;
        while cur != dst {
            cur = self.next_hop(cur, dst);
            path.push(cur);
        }
        path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mesh_routes_have_no_wraparound() {
        let m = Topology::mesh2d(4, 4);
        assert_eq!(m.nodes(), 16);
        assert_eq!(m.diameter(), 6);
        // 0 -> 3 must walk the whole row (no ring shortcut).
        assert_eq!(
            m.route(NodeId(0), NodeId(3)),
            vec![NodeId(1), NodeId(2), NodeId(3)]
        );
        // Corner to corner: Manhattan distance.
        assert_eq!(m.distance(NodeId(0), NodeId(15)), 6);
        // Every route ends at its destination.
        for s in 0..16u16 {
            for d in 0..16u16 {
                let path = m.route(NodeId(s), NodeId(d));
                if s != d {
                    assert_eq!(*path.last().unwrap(), NodeId(d));
                    assert!(path.len() as u32 <= m.diameter());
                }
            }
        }
    }

    #[test]
    fn mesh_is_slower_than_torus_at_the_edges() {
        let mesh = Topology::mesh2d(4, 4);
        let torus = Topology::torus2d(4, 4);
        assert!(mesh.distance(NodeId(0), NodeId(3)) > torus.distance(NodeId(0), NodeId(3)));
    }

    #[test]
    fn crossbar_routes_are_single_hop() {
        let t = Topology::crossbar(8);
        assert_eq!(t.nodes(), 8);
        assert_eq!(t.diameter(), 1);
        assert_eq!(t.route(NodeId(0), NodeId(7)), vec![NodeId(7)]);
        assert_eq!(t.route(NodeId(3), NodeId(3)), vec![]);
        assert_eq!(t.distance(NodeId(1), NodeId(2)), 1);
    }

    #[test]
    fn torus2d_routes_are_dimension_ordered() {
        let t = Topology::torus2d(4, 4);
        // 0=(0,0) to 10=(2,2): X first (1, 2), then Y (6, 10).
        let path = t.route(NodeId(0), NodeId(10));
        assert_eq!(path, vec![NodeId(1), NodeId(2), NodeId(6), NodeId(10)]);
    }

    #[test]
    fn torus_wraparound_takes_short_way() {
        let t = Topology::torus2d(4, 1);
        // 0 -> 3 is one hop backwards around the ring, not three forward.
        assert_eq!(t.route(NodeId(0), NodeId(3)), vec![NodeId(3)]);
        let t8 = Topology::torus2d(8, 1);
        assert_eq!(t8.distance(NodeId(0), NodeId(6)), 2); // via 7
    }

    #[test]
    fn torus_routes_end_at_destination_and_respect_diameter() {
        let t = Topology::torus3d(3, 3, 3);
        for s in 0..27u16 {
            for d in 0..27u16 {
                let path = t.route(NodeId(s), NodeId(d));
                if s == d {
                    assert!(path.is_empty());
                } else {
                    assert_eq!(*path.last().unwrap(), NodeId(d));
                    assert!(path.len() as u32 <= t.diameter());
                }
            }
        }
    }

    #[test]
    fn torus_steps_are_neighbors() {
        let t = Topology::torus2d(4, 4);
        for s in 0..16u16 {
            for d in 0..16u16 {
                let mut prev = s as usize;
                for hop in t.route(NodeId(s), NodeId(d)) {
                    let (px, py) = (prev % 4, prev / 4);
                    let (hx, hy) = (hop.index() % 4, hop.index() / 4);
                    let dx = (px as i32 - hx as i32)
                        .rem_euclid(4)
                        .min((hx as i32 - px as i32).rem_euclid(4));
                    let dy = (py as i32 - hy as i32)
                        .rem_euclid(4)
                        .min((hy as i32 - py as i32).rem_euclid(4));
                    assert_eq!(dx + dy, 1, "non-neighbor step {prev}->{}", hop.index());
                    prev = hop.index();
                }
            }
        }
    }

    #[test]
    fn diameters() {
        assert_eq!(Topology::torus2d(4, 4).diameter(), 4);
        assert_eq!(Topology::torus3d(4, 4, 4).diameter(), 6);
        assert_eq!(Topology::torus3d(3, 3, 3).diameter(), 3);
    }

    #[test]
    fn distance_is_arithmetic_and_matches_route_len() {
        for topo in [
            Topology::crossbar(9),
            Topology::torus2d(4, 4),
            Topology::torus3d(3, 4, 2),
            Topology::mesh2d(5, 3),
        ] {
            let n = topo.nodes() as u16;
            for s in 0..n {
                for d in 0..n {
                    assert_eq!(
                        topo.distance(NodeId(s), NodeId(d)),
                        topo.route(NodeId(s), NodeId(d)).len() as u32,
                        "{topo:?} {s}->{d}"
                    );
                }
            }
        }
    }

    #[test]
    fn next_hop_table_matches_route_iter() {
        for topo in [
            Topology::crossbar(6),
            Topology::torus2d(4, 3),
            Topology::mesh2d(3, 4),
        ] {
            let table = topo.next_hop_table();
            assert_eq!(table.nodes(), topo.nodes());
            let n = topo.nodes() as u16;
            for s in 0..n {
                assert_eq!(table.next_hop(NodeId(s), NodeId(s)), NodeId(s));
                for d in 0..n {
                    assert_eq!(
                        table.route(NodeId(s), NodeId(d)),
                        topo.route(NodeId(s), NodeId(d)),
                        "{topo:?} {s}->{d}"
                    );
                }
            }
        }
    }

    #[test]
    fn neighbors_are_symmetric_and_match_one_hop_routes() {
        for topo in [
            Topology::crossbar(5),
            Topology::torus2d(4, 3),
            Topology::torus3d(2, 3, 4),
            Topology::mesh2d(3, 4),
            Topology::torus2d(2, 2), // rings of two: both directions coincide
        ] {
            let n = topo.nodes() as u16;
            for v in 0..n {
                let nbrs = topo.neighbors(NodeId(v));
                assert!(nbrs.windows(2).all(|w| w[0] < w[1]), "{topo:?} sorted");
                for &u in &nbrs {
                    assert_eq!(topo.distance(NodeId(v), u), 1, "{topo:?} {v}->{u:?}");
                    assert!(
                        topo.neighbors(u).contains(&NodeId(v)),
                        "{topo:?} symmetry {v}<->{u:?}"
                    );
                }
                // Completeness: every node at distance 1 is listed.
                for u in 0..n {
                    if u != v && topo.distance(NodeId(v), NodeId(u)) == 1 {
                        assert!(nbrs.contains(&NodeId(u)), "{topo:?} missing {v}->{u}");
                    }
                }
            }
        }
    }

    #[test]
    fn build_avoiding_nothing_preserves_all_distances() {
        for topo in [
            Topology::crossbar(6),
            Topology::torus2d(4, 4),
            Topology::torus3d(2, 3, 2),
            Topology::mesh2d(3, 3),
        ] {
            let table = NextHopTable::build_avoiding(&topo, &[]);
            let n = topo.nodes() as u16;
            for s in 0..n {
                for d in 0..n {
                    if s == d {
                        continue;
                    }
                    assert_eq!(
                        table.route(NodeId(s), NodeId(d)).len(),
                        topo.distance(NodeId(s), NodeId(d)) as usize,
                        "{topo:?} {s}->{d} must stay a shortest path"
                    );
                }
            }
        }
    }

    #[test]
    fn build_avoiding_detours_around_the_dead_link() {
        let topo = Topology::torus2d(4, 4);
        let dead = [(NodeId(0), NodeId(1))];
        let table = NextHopTable::build_avoiding(&topo, &dead);
        let n = topo.nodes() as u16;
        for s in 0..n {
            for d in 0..n {
                if s == d {
                    continue;
                }
                let route = table.route(NodeId(s), NodeId(d));
                let mut prev = NodeId(s);
                for &hop in &route {
                    assert!(
                        !dead.contains(&(prev, hop)),
                        "{s}->{d} crosses the dead link"
                    );
                    prev = hop;
                }
                assert_eq!(prev, NodeId(d), "{s}->{d} must still arrive");
                // Losing one link of a torus costs at most one extra hop
                // on routes that used it, and nothing on the rest.
                let min = topo.distance(NodeId(s), NodeId(d)) as usize;
                assert!(route.len() >= min);
                assert!(route.len() <= min + 2, "{s}->{d} detour too long");
            }
        }
        // The reverse direction is untouched (faults are directed).
        assert_eq!(table.next_hop(NodeId(1), NodeId(0)), NodeId(0));
    }

    #[test]
    fn build_avoiding_marks_disconnected_pairs_unreachable() {
        let topo = Topology::crossbar(2);
        let table = NextHopTable::build_avoiding(&topo, &[(NodeId(0), NodeId(1))]);
        // Self-pointing next hop is the unreachable marker.
        assert_eq!(table.next_hop(NodeId(0), NodeId(1)), NodeId(0));
        assert_eq!(table.next_hop(NodeId(1), NodeId(0)), NodeId(0));
    }

    #[test]
    fn min_hops_is_a_lower_bound_on_pair_distance() {
        for topo in [
            Topology::crossbar(12),
            Topology::torus2d(4, 4),
            Topology::torus3d(3, 4, 2),
            Topology::mesh2d(5, 3),
        ] {
            let n = topo.nodes();
            // Arbitrary contiguous splits, including overlapping ones.
            let ranges = [0..n / 2, n / 2..n, n / 3..n, 0..1, n - 1..n, 0..n];
            for a in &ranges {
                for b in &ranges {
                    let bound = topo.min_hops(a.clone(), b.clone());
                    assert_eq!(
                        bound,
                        topo.min_hops(b.clone(), a.clone()),
                        "{topo:?} min_hops must be symmetric"
                    );
                    let true_min = a
                        .clone()
                        .flat_map(|s| b.clone().map(move |d| (s, d)))
                        .filter(|(s, d)| s != d)
                        .map(|(s, d)| topo.distance(NodeId(s as u16), NodeId(d as u16)))
                        .min()
                        .unwrap_or(u32::MAX);
                    assert!(
                        bound <= true_min,
                        "{topo:?} {a:?}->{b:?}: bound {bound} exceeds true min {true_min}"
                    );
                    assert!(bound >= 1);
                }
            }
        }
    }

    #[test]
    fn min_hops_is_exact_for_plane_aligned_slabs() {
        let t = Topology::torus3d(4, 4, 8); // plane = 16
                                            // z in {0,1} vs z in {4,5}: nearest pair is z=1 to z=4, three hops.
        assert_eq!(t.min_hops(0..32, 64..96), 3);
        // Adjacent plane slabs: one z hop.
        assert_eq!(t.min_hops(0..32, 32..64), 1);
        // Wraparound: first plane vs last plane is one z hop.
        assert_eq!(t.min_hops(0..16, 112..128), 1);
        // Mesh rows have no wraparound shortcut.
        let m = Topology::mesh2d(4, 8);
        assert_eq!(m.min_hops(0..4, 28..32), 7);
        // Crossbar: everything is one hop.
        assert_eq!(Topology::crossbar(16).min_hops(0..8, 8..16), 1);
    }

    #[test]
    #[should_panic(expected = "empty node range")]
    fn min_hops_rejects_empty_ranges() {
        Topology::torus2d(2, 2).min_hops(0..0, 0..4);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_node_panics() {
        Topology::crossbar(2).route(NodeId(0), NodeId(5));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_distance_panics() {
        Topology::torus2d(2, 2).distance(NodeId(9), NodeId(0));
    }

    #[test]
    #[should_panic(expected = "empty fabric")]
    fn empty_crossbar_panics() {
        Topology::crossbar(0);
    }
}
