//! Point-to-point link state: serialization and credit-based flow control.

use std::collections::VecDeque;

use sonuma_sim::SimTime;

/// Departure/arrival times computed for one packet on one link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkTiming {
    /// When the packet starts serializing (after bandwidth and credit
    /// stalls).
    pub start: SimTime,
    /// When the packet fully arrives at the far end.
    pub arrive: SimTime,
}

/// One virtual lane's credit pool on one directed link.
///
/// Tracks in-flight packets by their drain times. A sender consumes one
/// credit per packet; the credit returns `credit_return` after the receiver
/// drains it. When no credit is available the send stalls until the oldest
/// in-flight packet's credit comes back — this is what makes the fabric
/// lossless (§6: "credit-based flow control").
///
/// # Example
///
/// ```
/// use sonuma_fabric::VirtualChannel;
/// use sonuma_sim::SimTime;
///
/// let mut vc = VirtualChannel::new(2, SimTime::from_ns(10));
/// assert_eq!(vc.acquire(SimTime::ZERO, SimTime::from_ns(100)), SimTime::ZERO);
/// assert_eq!(vc.acquire(SimTime::ZERO, SimTime::from_ns(100)), SimTime::ZERO);
/// // Both credits consumed: next send waits for the first drain + return.
/// assert_eq!(vc.acquire(SimTime::ZERO, SimTime::from_ns(100)), SimTime::from_ns(110));
/// ```
#[derive(Debug, Clone)]
pub struct VirtualChannel {
    credits: usize,
    credit_return: SimTime,
    in_flight: VecDeque<SimTime>, // drain times, ascending
    stalls: u64,
}

impl VirtualChannel {
    /// Creates a lane with `credits` receive buffers.
    ///
    /// # Panics
    ///
    /// Panics if `credits` is zero (a zero-credit lane can never send).
    pub fn new(credits: usize, credit_return: SimTime) -> Self {
        assert!(credits > 0, "zero-credit virtual channel");
        VirtualChannel {
            credits,
            credit_return,
            // Occupancy never exceeds the credit pool (acquire reclaims or
            // evicts before inserting), so pre-sizing the deque to it makes
            // every later acquire allocation-free.
            in_flight: VecDeque::with_capacity(credits),
            stalls: 0,
        }
    }

    /// Acquires a credit for a packet wishing to depart at `now` and
    /// draining at the far end at `drain_at`; returns the earliest time the
    /// packet may actually start (equal to `now` unless credit-stalled).
    pub fn acquire(&mut self, now: SimTime, drain_at: SimTime) -> SimTime {
        // Reclaim credits whose packets drained long enough ago.
        while let Some(&front) = self.in_flight.front() {
            if front + self.credit_return <= now {
                self.in_flight.pop_front();
            } else {
                break;
            }
        }
        let start = if self.in_flight.len() >= self.credits {
            self.stalls += 1;
            let oldest = self.in_flight.pop_front().expect("credits > 0");
            (oldest + self.credit_return).max(now)
        } else {
            now
        };
        // Record this packet's drain; keep the deque sorted (drains are
        // normally monotone, but a stalled packet may reorder slightly).
        let effective_drain = drain_at.max(start);
        let pos = self
            .in_flight
            .iter()
            .rposition(|&t| t <= effective_drain)
            .map(|i| i + 1)
            .unwrap_or(0);
        self.in_flight.insert(pos, effective_drain);
        start
    }

    /// Number of credits currently consumed.
    pub fn occupancy(&self) -> usize {
        self.in_flight.len()
    }

    /// Total credit pool size.
    pub fn capacity(&self) -> usize {
        self.credits
    }

    /// Times a send had to wait for a credit.
    pub fn stalls(&self) -> u64 {
        self.stalls
    }
}

/// Serialization state of one directed physical link (shared by its lanes).
#[derive(Debug, Clone, Default)]
pub struct LinkSerializer {
    busy_until: SimTime,
    bytes: u64,
    packets: u64,
}

impl LinkSerializer {
    /// Creates an idle link.
    pub fn new() -> Self {
        Self::default()
    }

    /// Occupies the link for `duration` starting no earlier than `now`;
    /// returns the actual start time.
    pub fn occupy(&mut self, now: SimTime, duration: SimTime, bytes: u64) -> SimTime {
        let start = now.max(self.busy_until);
        self.busy_until = start + duration;
        self.bytes += bytes;
        self.packets += 1;
        start
    }

    /// Total bytes moved.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Total packets moved.
    pub fn packets(&self) -> u64 {
        self.packets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn credits_conserved_under_traffic() {
        let mut vc = VirtualChannel::new(4, SimTime::from_ns(5));
        let mut now = SimTime::ZERO;
        for i in 0..100u64 {
            let drain = now + SimTime::from_ns(20);
            let start = vc.acquire(now, drain);
            assert!(start >= now);
            assert!(vc.occupancy() <= vc.capacity(), "credit overrun at {i}");
            now = start + SimTime::from_ns(1);
        }
    }

    #[test]
    fn exhausted_credits_stall_until_return() {
        let mut vc = VirtualChannel::new(1, SimTime::from_ns(10));
        let s1 = vc.acquire(SimTime::ZERO, SimTime::from_ns(30));
        assert_eq!(s1, SimTime::ZERO);
        let s2 = vc.acquire(SimTime::from_ns(1), SimTime::from_ns(60));
        assert_eq!(s2, SimTime::from_ns(40)); // 30 drain + 10 return
        assert_eq!(vc.stalls(), 1);
    }

    #[test]
    fn credits_reclaimed_after_return_delay() {
        let mut vc = VirtualChannel::new(2, SimTime::from_ns(10));
        vc.acquire(SimTime::ZERO, SimTime::from_ns(5));
        vc.acquire(SimTime::ZERO, SimTime::from_ns(5));
        // At t=20 both credits are home again: no stall.
        let s = vc.acquire(SimTime::from_ns(20), SimTime::from_ns(25));
        assert_eq!(s, SimTime::from_ns(20));
        assert_eq!(vc.stalls(), 0);
    }

    #[test]
    fn serializer_orders_backtoback_sends() {
        let mut link = LinkSerializer::new();
        let d = SimTime::from_ns(3);
        assert_eq!(link.occupy(SimTime::ZERO, d, 88), SimTime::ZERO);
        assert_eq!(link.occupy(SimTime::ZERO, d, 88), SimTime::from_ns(3));
        assert_eq!(
            link.occupy(SimTime::from_ns(10), d, 88),
            SimTime::from_ns(10)
        );
        assert_eq!(link.bytes(), 264);
        assert_eq!(link.packets(), 3);
    }

    #[test]
    #[should_panic(expected = "zero-credit")]
    fn zero_credits_panics() {
        VirtualChannel::new(0, SimTime::ZERO);
    }
}
