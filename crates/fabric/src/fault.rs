//! Deterministic, seeded fault injection for the fabric.
//!
//! A [`FaultPlan`] names everything that goes wrong in a run: links that
//! die (and optionally revive), links that degrade (longer serialization,
//! fewer credits, probabilistic drop/corruption), and nodes that crash and
//! restart losing their RMC state. The plan is *data* — it rides inside
//! [`crate::FabricConfig`], so every component that builds a fabric (the
//! serial cluster, every shard of the parallel cluster) sees the same
//! schedule.
//!
//! Determinism is the whole design: no fault decision ever consults
//! mutable RNG state. Time-driven faults (kill/revive/crash windows) are
//! pure functions of the packet's injection or delivery time, and
//! per-packet faults (drop, corruption) are pure hashes of
//! `(plan seed, packet identity, link slot)` — a counter-based RNG stream.
//! The same packet committed in any order, on any shard partition, draws
//! the same fate, which is what keeps `--threads 4` runs byte-identical to
//! `--threads 1`.

use sonuma_protocol::NodeId;
use sonuma_sim::SimTime;

/// One faulty directed link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkFault {
    /// Sending endpoint.
    pub src: NodeId,
    /// Receiving endpoint.
    pub dst: NodeId,
    /// Time the link dies (packets injected at or after this reroute
    /// around it). `None` means the link never dies.
    pub kill_at: Option<SimTime>,
    /// Time a killed link comes back. `None` means it stays dead.
    pub revive_at: Option<SimTime>,
    /// Serialization multiplier (`>= 1.0`): a derated link moves the same
    /// bytes more slowly. `1.0` means full speed.
    pub derate: f64,
    /// Receive-buffer credits lost per virtual lane (flow-control
    /// degradation); the pool never drops below one credit.
    pub credit_loss: usize,
    /// Per-packet probability the link silently drops a packet.
    pub drop_prob: f64,
    /// Per-packet probability the link corrupts a packet (delivered, but
    /// the receiving RMC discards it on its integrity check).
    pub corrupt_prob: f64,
}

impl LinkFault {
    /// A link fault that does nothing until fields are filled in.
    pub fn on(src: NodeId, dst: NodeId) -> LinkFault {
        LinkFault {
            src,
            dst,
            kill_at: None,
            revive_at: None,
            derate: 1.0,
            credit_loss: 0,
            drop_prob: 0.0,
            corrupt_prob: 0.0,
        }
    }

    /// Whether the link is dead at `now`.
    pub fn dead_at(&self, now: SimTime) -> bool {
        match self.kill_at {
            Some(kill) => now >= kill && self.revive_at.is_none_or(|rev| now < rev),
            None => false,
        }
    }
}

/// One crashing node: its RMC loses all ITT/CT-cache state in the window
/// `[crash_at, restart_at)` and serves nothing while down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeFault {
    /// The crashing node.
    pub node: NodeId,
    /// Crash instant: in-flight operations abort with error completions,
    /// packets arriving during the outage are dropped.
    pub crash_at: SimTime,
    /// Restart instant: the RMC resumes with cold caches and empty tables.
    pub restart_at: SimTime,
}

/// The complete fault schedule of one run.
///
/// An empty plan (`links` and `nodes` both empty) must never be installed:
/// callers use `Option<FaultPlan>` and keep `None` for the fault-free
/// fast path, so zero-fault runs execute exactly the pre-fault code.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed of the dedicated fault stream. Every probabilistic fault
    /// decision hashes this with the packet identity — independent of the
    /// workload seed, so the same fault schedule replays under any
    /// traffic.
    pub seed: u64,
    /// Faulty links.
    pub links: Vec<LinkFault>,
    /// Crashing nodes.
    pub nodes: Vec<NodeFault>,
    /// Base retransmission deadline: a source RMC that has not seen every
    /// reply to a request this long after issuing it retransmits the
    /// missing lines. Doubles per retry (exponential backoff).
    pub timeout: SimTime,
    /// Retransmission attempts before the operation completes with an
    /// error status.
    pub max_retries: u32,
}

impl FaultPlan {
    /// A plan with no faults and default timeout parameters; callers add
    /// link/node faults to taste.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            links: Vec::new(),
            nodes: Vec::new(),
            timeout: SimTime::from_ns(10_000),
            max_retries: 3,
        }
    }

    /// Whether the plan injects anything at all.
    pub fn is_empty(&self) -> bool {
        self.links.is_empty() && self.nodes.is_empty()
    }

    /// The crash window of `node`, if the plan crashes it.
    pub fn crash_window(&self, node: NodeId) -> Option<(SimTime, SimTime)> {
        self.nodes
            .iter()
            .find(|f| f.node == node)
            .map(|f| (f.crash_at, f.restart_at))
    }
}

/// What the fabric did with an injected packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketFate {
    /// Arrived intact; schedule the delivery.
    Delivered,
    /// Arrived, but a faulty link flipped bits in transit: deliver it and
    /// let the receiving RMC discard it (so the wire time is still paid).
    Corrupted,
    /// Never arrived — lost on a faulty link, or no live route existed.
    /// Schedule nothing; the source's retransmission timer is the only
    /// recovery.
    Dropped,
}

/// A 64-bit finalizer (splitmix64's) — the mixing core of the
/// counter-based fault stream.
#[inline]
fn mix(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

/// A uniform draw in `[0, 1)` from the pure-hash fault stream: seed ⊕
/// packet identity ⊕ decision stream, finalized. Order-invariant by
/// construction — the value depends only on its inputs, never on how many
/// draws happened before.
#[inline]
pub fn fault_unit(seed: u64, salt: u64, stream: u64) -> f64 {
    let h = mix(seed ^ mix(salt.wrapping_add(mix(stream))));
    // 53 high bits -> [0, 1) double, the standard construction.
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_unit_is_pure_and_uniform_ish() {
        // Purity: same inputs, same draw, regardless of call order.
        let a = fault_unit(7, 12345, 1);
        let _ = fault_unit(99, 1, 2);
        assert_eq!(a, fault_unit(7, 12345, 1));
        // Spread: over many salts the mean lands near 0.5.
        let n = 10_000;
        let sum: f64 = (0..n).map(|s| fault_unit(7, s, 0)).sum();
        let mean = sum / n as f64;
        assert!((0.48..0.52).contains(&mean), "mean {mean}");
        // Streams decorrelate: drop and corrupt draws for the same packet
        // differ.
        assert_ne!(fault_unit(7, 42, 0), fault_unit(7, 42, 1));
    }

    #[test]
    fn dead_window_is_half_open() {
        let mut f = LinkFault::on(NodeId(0), NodeId(1));
        f.kill_at = Some(SimTime::from_ns(100));
        f.revive_at = Some(SimTime::from_ns(200));
        assert!(!f.dead_at(SimTime::from_ns(99)));
        assert!(f.dead_at(SimTime::from_ns(100)));
        assert!(f.dead_at(SimTime::from_ns(199)));
        assert!(!f.dead_at(SimTime::from_ns(200)));
        f.revive_at = None;
        assert!(f.dead_at(SimTime::from_ns(1_000_000)));
    }

    #[test]
    fn plan_crash_window_lookup() {
        let mut plan = FaultPlan::new(1);
        plan.nodes.push(NodeFault {
            node: NodeId(3),
            crash_at: SimTime::from_ns(10),
            restart_at: SimTime::from_ns(20),
        });
        assert_eq!(
            plan.crash_window(NodeId(3)),
            Some((SimTime::from_ns(10), SimTime::from_ns(20)))
        );
        assert_eq!(plan.crash_window(NodeId(4)), None);
        assert!(!plan.is_empty());
        assert!(FaultPlan::new(0).is_empty());
    }
}
