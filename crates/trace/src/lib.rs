//! The flight recorder: allocation-free time-series tracing of the
//! interconnect, the RMC pipelines, and tenants.
//!
//! End-of-run aggregates hide exactly the phenomena the paper cares
//! about — credit-stall storms, RGP backpressure, the goodput dip after a
//! link dies and the climb back once routing adapts. This crate records
//! those transients as fixed-cadence samples in fixed-capacity rings:
//!
//! * [`FlightRecorder`] — armed once at construction with every capacity
//!   it will ever need, then fed cumulative counters on the hot path; it
//!   stores *deltas per sampling window* and never allocates after
//!   construction (the fabric zero-alloc test runs with one armed);
//! * [`TenantFlow`] — the driver-side tenant sampler: completions binned
//!   by simulated completion time into per-tenant rate and p99 samples;
//! * [`export`] — the versioned JSON-lines trace writer plus the
//!   Chrome-trace conversion helpers.
//!
//! # Determinism
//!
//! Nothing here samples wall-clock anything. Every sample is keyed by
//! simulated time, and the recorder is only ever fed from
//! partition-invariant points (quantum boundaries for node counters, the
//! global `(t, src, seq)` commit merge for link counters), so a trace
//! taken at `--threads 4` is byte-identical to `--threads 1` — the trace
//! file itself is a determinism artifact CI can `cmp`.

mod recorder;
mod ring;
mod tenant;

pub mod export;

pub use export::{render_jsonl, TraceMeta};
pub use recorder::{
    FaultEvent, FaultKind, FlightRecorder, LinkSample, NodeCounters, NodeSample, TraceConfig,
    TraceSummary, FAULT_COUNTER_KINDS,
};
pub use ring::Ring;
pub use tenant::{TenantFlow, TenantSample};

/// Version tag of the JSON-lines trace format (first line of every trace).
pub const TRACE_SCHEMA: &str = "sonuma-trace/v1";
