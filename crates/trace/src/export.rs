//! The versioned JSON-lines trace writer.
//!
//! One header line (schema tag plus run identity) followed by one JSON
//! object per sample, merged across the four record streams in
//! `(t_ps, stream rank, ring order)` order. Every value is an integer —
//! no float ever hits the file — so the bytes are a stable function of
//! the samples alone and two runs can be compared with `cmp`.

use std::fmt::Write as _;

use crate::recorder::FlightRecorder;
use crate::tenant::TenantFlow;
use crate::TRACE_SCHEMA;

/// Run identity stamped into the trace header. Deliberately excludes
/// anything partition- or wall-clock-dependent (no thread count, no
/// timestamps): the whole file must be byte-identical across `--threads`.
#[derive(Debug, Clone)]
pub struct TraceMeta {
    /// Scenario name.
    pub scenario: String,
    /// Backend name (`sonuma`, …).
    pub backend: String,
    /// Number of nodes in the machine.
    pub nodes: u64,
    /// Sampling cadence in picoseconds.
    pub interval_ps: u64,
}

/// Stream ranks: ties at one `t_ps` order faults before links before
/// nodes before tenants, each in ring order.
const RANK_FAULT: u8 = 0;
const RANK_LINK: u8 = 1;
const RANK_NODE: u8 = 2;
const RANK_TENANT: u8 = 3;

/// Renders the full trace as JSON lines (trailing newline included).
pub fn render_jsonl(
    meta: &TraceMeta,
    recorder: Option<&FlightRecorder>,
    tenants: Option<&TenantFlow>,
) -> String {
    let mut records: Vec<(u64, u8, String)> = Vec::new();
    if let Some(rec) = recorder {
        for e in rec.fault_events() {
            let mut line = format!(
                "{{\"t_ps\":{},\"rec\":\"fault\",\"kind\":\"{}\"",
                e.t_ps,
                e.kind.as_str()
            );
            let _ = write!(line, ",\"a\":{},\"b\":{},\"count\":{}}}", e.a, e.b, e.count);
            records.push((e.t_ps, RANK_FAULT, line));
        }
        for s in rec.link_samples() {
            records.push((
                s.t_ps,
                RANK_LINK,
                format!(
                    "{{\"t_ps\":{},\"rec\":\"link\",\"src\":{},\"dst\":{},\"bytes\":{},\"packets\":{},\"credit_stalls\":{}}}",
                    s.t_ps, s.src, s.dst, s.bytes, s.packets, s.credit_stalls
                ),
            ));
        }
        for s in rec.node_samples() {
            let c = s.counters;
            records.push((
                s.t_ps,
                RANK_NODE,
                format!(
                    "{{\"t_ps\":{},\"rec\":\"node\",\"node\":{},\"rgp_requests\":{},\"rrpp_served\":{},\"rcp_completions\":{},\"rgp_itt_stalls\":{},\"api_wq_full\":{},\"itt_in_flight\":{},\"rgp_timeouts\":{},\"rgp_retransmits\":{}}}",
                    s.t_ps,
                    s.node,
                    c.rgp_requests,
                    c.rrpp_served,
                    c.rcp_completions,
                    c.rgp_itt_stalls,
                    c.api_wq_full,
                    c.itt_in_flight,
                    c.rgp_timeouts,
                    c.rgp_retransmits
                ),
            ));
        }
    }
    if let Some(flow) = tenants {
        for s in flow.samples() {
            records.push((
                s.t_ps,
                RANK_TENANT,
                format!(
                    "{{\"t_ps\":{},\"rec\":\"tenant\",\"tenant\":{},\"completions\":{},\"p99_ps\":{}}}",
                    s.t_ps, s.tenant, s.completions, s.p99_ps
                ),
            ));
        }
    }
    // Stable: within one (t, rank) key, ring order (itself deterministic)
    // is preserved.
    records.sort_by_key(|&(t, rank, _)| (t, rank));

    let mut out = format!(
        "{{\"schema\":\"{}\",\"scenario\":\"{}\",\"backend\":\"{}\",\"nodes\":{},\"interval_ps\":{}}}\n",
        TRACE_SCHEMA,
        escape(&meta.scenario),
        escape(&meta.backend),
        meta.nodes,
        meta.interval_ps
    );
    for (_, _, line) in records {
        out.push_str(&line);
        out.push('\n');
    }
    out
}

/// Minimal JSON string escaping (names here are plain identifiers, but a
/// malformed file must be impossible).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use sonuma_sim::SimTime;

    use super::*;
    use crate::recorder::{FaultKind, TraceConfig};

    #[test]
    fn renders_sorted_integer_only_lines() {
        let cfg = TraceConfig::every(SimTime::from_ns(100));
        let mut rec = FlightRecorder::new(&cfg, 2, 2);
        rec.record_link(SimTime::from_ns(200), 0, 0, 1, 64, 1, 0);
        rec.record_transition(SimTime::from_ns(150), FaultKind::LinkKill, 0, 1);
        let mut flow = TenantFlow::new(SimTime::from_ns(100));
        flow.record(SimTime::from_ns(120), 3, SimTime::from_ns(2));
        let meta = TraceMeta {
            scenario: "unit".to_string(),
            backend: "sonuma".to_string(),
            nodes: 2,
            interval_ps: SimTime::from_ns(100).as_ps(),
        };
        let text = render_jsonl(&meta, Some(&rec), Some(&flow));
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("{\"schema\":\"sonuma-trace/v1\""));
        // 150 ns fault, then the two 200 ns records with fault < link <
        // tenant rank ordering... here link (rank 1) before tenant (rank 3).
        assert!(lines[1].contains("\"kind\":\"link_kill\""));
        assert!(lines[2].contains("\"rec\":\"link\""));
        assert!(lines[3].contains("\"rec\":\"tenant\""));
        assert!(!text.contains('.'), "integer-only output: {text}");
    }

    #[test]
    fn escape_handles_quotes_and_controls() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\u000ad");
    }
}
