//! The fixed-capacity sample ring.

/// A ring buffer with capacity fixed at construction: pushes past
/// capacity overwrite the oldest entry (flight-recorder semantics — the
/// most recent window survives) and are tallied, never silently lost.
/// `push` is allocation-free by construction: the backing store is built
/// full-size up front.
#[derive(Debug, Clone)]
pub struct Ring<T> {
    buf: Vec<T>,
    /// Index of the oldest retained entry.
    head: usize,
    len: usize,
    overwritten: u64,
}

impl<T: Copy + Default> Ring<T> {
    /// A ring holding at most `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "zero-capacity ring");
        Ring {
            buf: vec![T::default(); capacity],
            head: 0,
            len: 0,
            overwritten: 0,
        }
    }

    /// Appends `item`, evicting (and tallying) the oldest entry if full.
    pub fn push(&mut self, item: T) {
        let cap = self.buf.len();
        if self.len == cap {
            self.buf[self.head] = item;
            self.head = (self.head + 1) % cap;
            self.overwritten += 1;
        } else {
            self.buf[(self.head + self.len) % cap] = item;
            self.len += 1;
        }
    }

    /// Retained entries, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &T> + '_ {
        let cap = self.buf.len();
        (0..self.len).map(move |i| &self.buf[(self.head + i) % cap])
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Entries evicted to make room — the sample-loss tally reports
    /// surface so a too-small ring is visible, not silent.
    pub fn overwritten(&self) -> u64 {
        self.overwritten
    }

    /// Total entries ever pushed.
    pub fn pushed(&self) -> u64 {
        self.len as u64 + self.overwritten
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_newest_and_tallies_evictions() {
        let mut r: Ring<u32> = Ring::new(3);
        assert!(r.is_empty());
        for v in 0..5 {
            r.push(v);
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.overwritten(), 2);
        assert_eq!(r.pushed(), 5);
        let kept: Vec<u32> = r.iter().copied().collect();
        assert_eq!(kept, vec![2, 3, 4], "oldest evicted, order preserved");
    }

    #[test]
    #[should_panic(expected = "zero-capacity")]
    fn zero_capacity_panics() {
        let _ = Ring::<u32>::new(0);
    }
}
