//! The driver-side tenant sampler.
//!
//! The machine has no per-tenant latency state — tenants are a bench
//! concept — so tenant time series are built where completions are
//! observed: the scenario driver calls [`TenantFlow::record`] once per
//! completed operation with the operation's *simulated* completion time
//! and latency.
//!
//! Unlike the in-machine recorder, completions may be observed in a
//! partition-dependent order (the sharded backend drains shards in slot
//! order). [`TenantFlow`] is therefore order-independent by construction:
//! every completion is binned by its completion-time window into a keyed
//! map, and samples read out sorted by `(window end, tenant)` — the same
//! bytes no matter the observation order.

use std::collections::BTreeMap;

use sonuma_sim::SimTime;

/// One tenant's completions over one sampling window.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TenantSample {
    /// Window end (an exact multiple of the sampling interval; the
    /// window covers `[t_ps - interval, t_ps)`).
    pub t_ps: u64,
    /// The tenant.
    pub tenant: u32,
    /// Operations completed during the window.
    pub completions: u64,
    /// Upper bound of the window's 99th-percentile latency (from a
    /// power-of-two histogram, so an integer — no float formatting in
    /// the trace).
    pub p99_ps: u64,
}

/// Per-window, power-of-two latency histogram for one `(window, tenant)`
/// cell.
#[derive(Debug, Clone)]
struct Cell {
    completions: u64,
    /// `hist[i]` counts latencies with `floor(log2(ps)) == i` (zero
    /// latencies land in bucket 0).
    hist: [u32; 64],
}

impl Cell {
    fn new() -> Cell {
        Cell {
            completions: 0,
            hist: [0; 64],
        }
    }

    /// Smallest histogram upper bound covering at least 99% of the
    /// window's completions.
    fn p99_ps(&self) -> u64 {
        let mut seen: u64 = 0;
        for (idx, &n) in self.hist.iter().enumerate() {
            seen += u64::from(n);
            if seen * 100 >= self.completions * 99 {
                return if idx >= 63 {
                    u64::MAX
                } else {
                    (1u64 << (idx + 1)) - 1
                };
            }
        }
        0
    }
}

/// Bins tenant completions by simulated completion time into fixed
/// windows, yielding per-tenant completion counts and a rolling p99.
#[derive(Debug)]
pub struct TenantFlow {
    interval_ps: u64,
    /// `(window end, tenant)` → histogram. A `BTreeMap` so read-out is
    /// already in the canonical sort order.
    cells: BTreeMap<(u64, u32), Cell>,
}

impl TenantFlow {
    /// A sampler with the given cadence.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero.
    pub fn new(interval: SimTime) -> TenantFlow {
        assert!(interval.as_ps() > 0, "zero trace interval");
        TenantFlow {
            interval_ps: interval.as_ps(),
            cells: BTreeMap::new(),
        }
    }

    /// Records one completed operation: `tenant`'s op finished at
    /// `completed_at` with the given end-to-end latency.
    pub fn record(&mut self, completed_at: SimTime, tenant: u32, latency: SimTime) {
        let end = (completed_at.as_ps() / self.interval_ps + 1) * self.interval_ps;
        let cell = self.cells.entry((end, tenant)).or_insert_with(Cell::new);
        cell.completions += 1;
        let bucket = 63 - u64::leading_zeros(latency.as_ps().max(1)) as usize;
        cell.hist[bucket] = cell.hist[bucket].saturating_add(1);
    }

    /// Samples in canonical `(window end, tenant)` order.
    pub fn samples(&self) -> impl Iterator<Item = TenantSample> + '_ {
        self.cells
            .iter()
            .map(|(&(t_ps, tenant), cell)| TenantSample {
                t_ps,
                tenant,
                completions: cell.completions,
                p99_ps: cell.p99_ps(),
            })
    }

    /// Number of `(window, tenant)` samples accumulated.
    pub fn sample_count(&self) -> u64 {
        self.cells.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_by_completion_window_regardless_of_observation_order() {
        let mut a = TenantFlow::new(SimTime::from_ns(100));
        let mut b = TenantFlow::new(SimTime::from_ns(100));
        let completions = [
            (SimTime::from_ns(10), 0u32, SimTime::from_ns(3)),
            (SimTime::from_ns(150), 0, SimTime::from_ns(9)),
            (SimTime::from_ns(90), 1, SimTime::from_ns(5)),
            (SimTime::from_ns(95), 0, SimTime::from_ns(4)),
        ];
        for &(t, tenant, lat) in &completions {
            a.record(t, tenant, lat);
        }
        for &(t, tenant, lat) in completions.iter().rev() {
            b.record(t, tenant, lat);
        }
        let sa: Vec<TenantSample> = a.samples().collect();
        let sb: Vec<TenantSample> = b.samples().collect();
        assert_eq!(sa, sb, "observation order must not matter");
        assert_eq!(sa.len(), 3);
        // Window (0, 100ns] for tenant 0 holds two completions.
        assert_eq!(sa[0].t_ps, SimTime::from_ns(100).as_ps());
        assert_eq!(sa[0].tenant, 0);
        assert_eq!(sa[0].completions, 2);
        assert_eq!(sa[1].tenant, 1);
        assert_eq!(sa[2].t_ps, SimTime::from_ns(200).as_ps());
    }

    #[test]
    fn p99_is_a_power_of_two_upper_bound() {
        let mut flow = TenantFlow::new(SimTime::from_us(1));
        // 99 fast ops and one slow one: p99 must cover the fast bucket
        // but not chase the single outlier.
        for _ in 0..99 {
            flow.record(SimTime::from_ns(10), 7, SimTime::from_ns(3));
        }
        flow.record(SimTime::from_ns(10), 7, SimTime::from_us(10));
        let s: Vec<TenantSample> = flow.samples().collect();
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].completions, 100);
        // 3 ns = 3000 ps sits in bucket floor(log2(3000)) = 11, whose
        // upper bound is 2^12 - 1 ps.
        assert_eq!(s[0].p99_ps, (1 << 12) - 1);
    }
}
