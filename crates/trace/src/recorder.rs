//! The per-run flight recorder: cadenced counter-delta sampling into
//! fixed rings.

use sonuma_sim::SimTime;

use crate::ring::Ring;

/// Sampling configuration of one [`FlightRecorder`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Sampling cadence in simulated time. Link samples land on exact
    /// multiples of it; node samples land on the first quantum boundary
    /// at or past each multiple.
    pub interval: SimTime,
    /// Link-sample ring capacity.
    pub link_capacity: usize,
    /// Node-sample ring capacity.
    pub node_capacity: usize,
    /// Fault-event ring capacity.
    pub event_capacity: usize,
}

impl TraceConfig {
    /// A recorder config sampling every `interval` with the default ring
    /// capacities (64 Ki link/node samples, 4 Ki events — a few MiB,
    /// sized so the canned rack scenarios record without eviction).
    pub fn every(interval: SimTime) -> TraceConfig {
        TraceConfig {
            interval,
            link_capacity: 1 << 16,
            node_capacity: 1 << 16,
            event_capacity: 1 << 12,
        }
    }
}

/// One link's activity over one sampling window (counter deltas, not
/// cumulative totals).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkSample {
    /// Window end (an exact multiple of the sampling interval).
    pub t_ps: u64,
    /// Sending node.
    pub src: u16,
    /// Receiving node.
    pub dst: u16,
    /// Bytes serialized onto the wire during the window.
    pub bytes: u64,
    /// Packets serialized during the window.
    pub packets: u64,
    /// Credit stalls suffered during the window.
    pub credit_stalls: u64,
}

/// Cumulative per-node pipeline counters fed to
/// [`FlightRecorder::record_node`]; every field but the
/// `itt_in_flight` gauge is a running total the recorder turns into a
/// window delta.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeCounters {
    /// RGP: remote operations unrolled (cumulative).
    pub rgp_requests: u64,
    /// RRPP: request packets served (cumulative).
    pub rrpp_served: u64,
    /// RCP: operations completed (cumulative).
    pub rcp_completions: u64,
    /// RGP stalls on a full ITT (cumulative).
    pub rgp_itt_stalls: u64,
    /// Posts rejected on a full WQ (cumulative).
    pub api_wq_full: u64,
    /// ITT entries currently in flight (a gauge, recorded as-is).
    pub itt_in_flight: u64,
    /// Request timeouts fired (cumulative).
    pub rgp_timeouts: u64,
    /// Lines retransmitted (cumulative).
    pub rgp_retransmits: u64,
}

/// One node's activity over one sampling window.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeSample {
    /// Window end (a quantum boundary, partition-invariant).
    pub t_ps: u64,
    /// The node.
    pub node: u16,
    /// Counter deltas over the window, plus the `itt_in_flight` gauge at
    /// the window end.
    pub counters: NodeCounters,
}

/// What a [`FaultEvent`] records.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum FaultKind {
    /// A scheduled link kill took effect (`a -> b`).
    #[default]
    LinkKill,
    /// A killed link revived (`a -> b`).
    LinkRevive,
    /// A node crashed (`a`).
    NodeCrash,
    /// A crashed node restarted cold (`a`).
    NodeRestart,
    /// Packets dropped on faulty links during the window (`count`).
    PacketsDropped,
    /// Packets corrupted in flight during the window (`count`).
    PacketsCorrupted,
    /// Packets rerouted around dead links during the window (`count`).
    PacketsRerouted,
    /// Packets with no live route during the window (`count`).
    PacketsUnreachable,
    /// Packets discarded at crashed destinations during the window
    /// (`count`).
    CrashDrops,
    /// Request timeouts fired during the window (`count`).
    Timeouts,
    /// Lines retransmitted during the window (`count`).
    Retransmits,
}

impl FaultKind {
    /// The event name used in the exported trace.
    pub fn as_str(self) -> &'static str {
        match self {
            FaultKind::LinkKill => "link_kill",
            FaultKind::LinkRevive => "link_revive",
            FaultKind::NodeCrash => "node_crash",
            FaultKind::NodeRestart => "node_restart",
            FaultKind::PacketsDropped => "packets_dropped",
            FaultKind::PacketsCorrupted => "packets_corrupted",
            FaultKind::PacketsRerouted => "packets_rerouted",
            FaultKind::PacketsUnreachable => "packets_unreachable",
            FaultKind::CrashDrops => "crash_drops",
            FaultKind::Timeouts => "timeouts",
            FaultKind::Retransmits => "retransmits",
        }
    }
}

/// A fault instant: a scheduled transition at its exact scheduled time,
/// or a per-window recovery-counter delta.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultEvent {
    /// Scheduled instant (transitions) or window end (counter deltas).
    pub t_ps: u64,
    /// What happened.
    pub kind: FaultKind,
    /// First endpoint (link source / crashing node), `0` when unused.
    pub a: u16,
    /// Second endpoint (link destination), `0` when unused.
    pub b: u16,
    /// Delta count for counter events, `1` for transitions.
    pub count: u64,
}

/// Streams tracked by [`FlightRecorder::record_fault_counters`], in the
/// array order the caller must supply cumulative totals in.
pub const FAULT_COUNTER_KINDS: [FaultKind; 7] = [
    FaultKind::PacketsDropped,
    FaultKind::PacketsCorrupted,
    FaultKind::PacketsRerouted,
    FaultKind::PacketsUnreachable,
    FaultKind::CrashDrops,
    FaultKind::Timeouts,
    FaultKind::Retransmits,
];

/// Sample counts and loss tallies of a recorder, for the bench report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceSummary {
    /// Node sampling rounds taken (quantum boundaries that crossed a
    /// cadence deadline).
    pub ticks: u64,
    /// Link samples retained.
    pub link_samples: u64,
    /// Link samples evicted by ring overflow.
    pub link_dropped: u64,
    /// Node samples retained.
    pub node_samples: u64,
    /// Node samples evicted by ring overflow.
    pub node_dropped: u64,
    /// Fault events retained.
    pub fault_events: u64,
    /// Fault events evicted by ring overflow.
    pub fault_dropped: u64,
}

/// The recorder proper. All capacity is sized at construction — per-slot
/// and per-node previous-counter tables plus the three sample rings — so
/// every `record_*` call on the hot path is allocation-free.
///
/// Two sampling cursors run side by side:
///
/// * the **fabric cursor** advances with the committed send stream:
///   [`FlightRecorder::fabric_due`] is checked against each send's inject
///   time, and a sample window closes on the last exact cadence multiple
///   not after it — so link samples depend only on the global send order,
///   never on how commits batch;
/// * the **node cursor** advances with the simulation clock at quantum
///   boundaries, where every shard is aligned and node state is
///   partition-invariant.
#[derive(Debug)]
pub struct FlightRecorder {
    interval_ps: u64,
    /// Next fabric-sample deadline (an exact multiple of the interval).
    fabric_deadline_ps: u64,
    /// Next node-sample deadline (node samples take the first quantum
    /// boundary at or past it).
    node_deadline_ps: u64,
    /// End of the last scanned fault-transition window.
    instants_scanned_ps: u64,
    ticks: u64,
    links: Ring<LinkSample>,
    nodes: Ring<NodeSample>,
    events: Ring<FaultEvent>,
    /// Cumulative (bytes, packets, stalls) per link slot at the last
    /// fabric sample.
    prev_links: Vec<(u64, u64, u64)>,
    /// Cumulative counters per node at the last node sample.
    prev_nodes: Vec<NodeCounters>,
    /// Cumulative fault-counter totals at the last node sample, in
    /// [`FAULT_COUNTER_KINDS`] order.
    prev_faults: [u64; FAULT_COUNTER_KINDS.len()],
}

impl FlightRecorder {
    /// Arms a recorder over a machine with `link_slots` dense link slots
    /// and `nodes` nodes.
    ///
    /// # Panics
    ///
    /// Panics if the configured interval is zero (a zero cadence would
    /// sample every send).
    pub fn new(config: &TraceConfig, link_slots: usize, nodes: usize) -> Self {
        let interval_ps = config.interval.as_ps();
        assert!(interval_ps > 0, "zero trace interval");
        FlightRecorder {
            interval_ps,
            fabric_deadline_ps: interval_ps,
            node_deadline_ps: interval_ps,
            instants_scanned_ps: 0,
            ticks: 0,
            links: Ring::new(config.link_capacity),
            nodes: Ring::new(config.node_capacity),
            events: Ring::new(config.event_capacity),
            prev_links: vec![(0, 0, 0); link_slots.max(1)],
            prev_nodes: vec![NodeCounters::default(); nodes.max(1)],
            prev_faults: [0; FAULT_COUNTER_KINDS.len()],
        }
    }

    /// The sampling cadence.
    pub fn interval(&self) -> SimTime {
        SimTime::from_ps(self.interval_ps)
    }

    // ------------------------------------------------------------------
    // Fabric cursor (driven by the committed send stream).
    // ------------------------------------------------------------------

    /// Whether a send injected at `t` closes the open link window. Must
    /// be checked (and the sample taken) *before* that send touches the
    /// link counters.
    pub fn fabric_due(&self, t: SimTime) -> bool {
        t.as_ps() >= self.fabric_deadline_ps
    }

    /// Closes the link window against a send at `t`: returns the window
    /// end — the last cadence multiple not after `t` — and advances the
    /// deadline past it. Empty windows in between are skipped in one
    /// step, so an idle gap costs one sample, not one per interval.
    pub fn close_fabric_window(&mut self, t: SimTime) -> SimTime {
        debug_assert!(self.fabric_due(t));
        let end = (t.as_ps() / self.interval_ps) * self.interval_ps;
        self.fabric_deadline_ps = end + self.interval_ps;
        SimTime::from_ps(end)
    }

    /// Records one link's cumulative counters against the window ending
    /// at `t` (from [`FlightRecorder::close_fabric_window`]). Pushes a
    /// sample only when the link moved during the window.
    #[allow(clippy::too_many_arguments)] // mirrors the visit_links callback
    pub fn record_link(
        &mut self,
        t: SimTime,
        slot: usize,
        src: u16,
        dst: u16,
        bytes: u64,
        packets: u64,
        credit_stalls: u64,
    ) {
        let prev = &mut self.prev_links[slot];
        let sample = LinkSample {
            t_ps: t.as_ps(),
            src,
            dst,
            bytes: bytes - prev.0,
            packets: packets - prev.1,
            credit_stalls: credit_stalls - prev.2,
        };
        *prev = (bytes, packets, credit_stalls);
        if sample.bytes | sample.packets | sample.credit_stalls != 0 {
            self.links.push(sample);
        }
    }

    // ------------------------------------------------------------------
    // Node cursor (driven by quantum boundaries).
    // ------------------------------------------------------------------

    /// Whether the clock has reached the next node-sampling deadline.
    pub fn node_due(&self, now: SimTime) -> bool {
        now.as_ps() >= self.node_deadline_ps
    }

    /// Opens a node sampling round at boundary `now` and advances the
    /// deadline to the next cadence multiple past it. Returns the
    /// half-open fault-transition window `(start, end]` this round must
    /// scan for scheduled instants.
    pub fn begin_node_round(&mut self, now: SimTime) -> (SimTime, SimTime) {
        debug_assert!(self.node_due(now));
        self.node_deadline_ps = (now.as_ps() / self.interval_ps + 1) * self.interval_ps;
        self.ticks += 1;
        let window = (SimTime::from_ps(self.instants_scanned_ps), now);
        self.instants_scanned_ps = now.as_ps();
        window
    }

    /// Records one node's cumulative counters against the round at `t`.
    /// Pushes a sample only when something changed since the last round.
    pub fn record_node(&mut self, t: SimTime, node: u16, cur: NodeCounters) {
        let prev = &mut self.prev_nodes[node as usize];
        let delta = NodeCounters {
            rgp_requests: cur.rgp_requests - prev.rgp_requests,
            rrpp_served: cur.rrpp_served - prev.rrpp_served,
            rcp_completions: cur.rcp_completions - prev.rcp_completions,
            rgp_itt_stalls: cur.rgp_itt_stalls - prev.rgp_itt_stalls,
            api_wq_full: cur.api_wq_full - prev.api_wq_full,
            itt_in_flight: cur.itt_in_flight,
            rgp_timeouts: cur.rgp_timeouts - prev.rgp_timeouts,
            rgp_retransmits: cur.rgp_retransmits - prev.rgp_retransmits,
        };
        let moved = delta.rgp_requests
            | delta.rrpp_served
            | delta.rcp_completions
            | delta.rgp_itt_stalls
            | delta.api_wq_full
            | delta.rgp_timeouts
            | delta.rgp_retransmits
            != 0
            || delta.itt_in_flight != prev.itt_in_flight;
        *prev = cur;
        if moved {
            self.nodes.push(NodeSample {
                t_ps: t.as_ps(),
                node,
                counters: delta,
            });
        }
    }

    /// Records a scheduled fault transition at its exact instant.
    pub fn record_transition(&mut self, at: SimTime, kind: FaultKind, a: u16, b: u16) {
        self.events.push(FaultEvent {
            t_ps: at.as_ps(),
            kind,
            a,
            b,
            count: 1,
        });
    }

    /// Records the cumulative fault-recovery counters (in
    /// [`FAULT_COUNTER_KINDS`] order) against the round at `t`, emitting
    /// one event per stream that moved during the window.
    pub fn record_fault_counters(&mut self, t: SimTime, cur: [u64; FAULT_COUNTER_KINDS.len()]) {
        for (i, kind) in FAULT_COUNTER_KINDS.iter().enumerate() {
            let delta = cur[i] - self.prev_faults[i];
            if delta != 0 {
                self.events.push(FaultEvent {
                    t_ps: t.as_ps(),
                    kind: *kind,
                    a: 0,
                    b: 0,
                    count: delta,
                });
            }
        }
        self.prev_faults = cur;
    }

    // ------------------------------------------------------------------
    // Read-out.
    // ------------------------------------------------------------------

    /// Retained link samples, oldest first.
    pub fn link_samples(&self) -> impl Iterator<Item = &LinkSample> + '_ {
        self.links.iter()
    }

    /// Retained node samples, oldest first.
    pub fn node_samples(&self) -> impl Iterator<Item = &NodeSample> + '_ {
        self.nodes.iter()
    }

    /// Retained fault events, oldest first.
    pub fn fault_events(&self) -> impl Iterator<Item = &FaultEvent> + '_ {
        self.events.iter()
    }

    /// Sample counts and ring-overflow tallies.
    pub fn summary(&self) -> TraceSummary {
        TraceSummary {
            ticks: self.ticks,
            link_samples: self.links.len() as u64,
            link_dropped: self.links.overwritten(),
            node_samples: self.nodes.len() as u64,
            node_dropped: self.nodes.overwritten(),
            fault_events: self.events.len() as u64,
            fault_dropped: self.events.overwritten(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn recorder(interval_ns: u64) -> FlightRecorder {
        FlightRecorder::new(&TraceConfig::every(SimTime::from_ns(interval_ns)), 4, 2)
    }

    #[test]
    fn fabric_windows_close_on_cadence_multiples() {
        let mut rec = recorder(100);
        assert!(!rec.fabric_due(SimTime::from_ns(99)));
        assert!(rec.fabric_due(SimTime::from_ns(100)));
        // A send at 250 ns closes the window at 200 ns (the last multiple
        // not after it), skipping the empty 100 ns window.
        assert_eq!(
            rec.close_fabric_window(SimTime::from_ns(250)),
            SimTime::from_ns(200)
        );
        assert!(!rec.fabric_due(SimTime::from_ns(299)));
        assert!(rec.fabric_due(SimTime::from_ns(300)));
    }

    #[test]
    fn link_samples_are_deltas_and_idle_links_are_skipped() {
        let mut rec = recorder(100);
        let t = SimTime::from_ns(100);
        rec.record_link(t, 0, 0, 1, 640, 10, 2);
        rec.record_link(t, 1, 1, 0, 0, 0, 0); // never moved
        let t2 = SimTime::from_ns(200);
        rec.record_link(t2, 0, 0, 1, 1000, 15, 2);
        let got: Vec<LinkSample> = rec.link_samples().copied().collect();
        assert_eq!(got.len(), 2);
        assert_eq!(
            (got[0].bytes, got[0].packets, got[0].credit_stalls),
            (640, 10, 2)
        );
        assert_eq!(
            (got[1].bytes, got[1].packets, got[1].credit_stalls),
            (360, 5, 0)
        );
    }

    #[test]
    fn node_rounds_emit_only_movement_and_scan_contiguous_windows() {
        let mut rec = recorder(100);
        let (w0, w1) = rec.begin_node_round(SimTime::from_ns(130));
        assert_eq!((w0, w1), (SimTime::ZERO, SimTime::from_ns(130)));
        rec.record_node(
            SimTime::from_ns(130),
            0,
            NodeCounters {
                rgp_requests: 3,
                ..NodeCounters::default()
            },
        );
        rec.record_node(SimTime::from_ns(130), 1, NodeCounters::default());
        assert!(!rec.node_due(SimTime::from_ns(199)));
        assert!(rec.node_due(SimTime::from_ns(200)));
        let (w0, w1) = rec.begin_node_round(SimTime::from_ns(205));
        assert_eq!((w0, w1), (SimTime::from_ns(130), SimTime::from_ns(205)));
        // No movement since the last round: nothing pushed.
        rec.record_node(
            SimTime::from_ns(205),
            0,
            NodeCounters {
                rgp_requests: 3,
                ..NodeCounters::default()
            },
        );
        assert_eq!(rec.node_samples().count(), 1);
        assert_eq!(rec.summary().ticks, 2);
    }

    #[test]
    fn fault_counter_deltas_become_events() {
        let mut rec = recorder(100);
        let mut cur = [0u64; FAULT_COUNTER_KINDS.len()];
        cur[0] = 4; // dropped
        cur[6] = 2; // retransmits
        rec.record_fault_counters(SimTime::from_ns(100), cur);
        cur[0] = 4; // unchanged
        cur[6] = 5;
        rec.record_fault_counters(SimTime::from_ns(200), cur);
        let events: Vec<FaultEvent> = rec.fault_events().copied().collect();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].kind, FaultKind::PacketsDropped);
        assert_eq!(events[0].count, 4);
        assert_eq!(events[2].kind, FaultKind::Retransmits);
        assert_eq!(events[2].count, 3);
    }
}
