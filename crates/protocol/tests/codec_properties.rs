//! Property tests: every protocol codec roundtrips for arbitrary field
//! values, and decoding never panics on arbitrary bytes.

use proptest::prelude::*;

use sonuma_protocol::{
    CqEntry, CtxId, NodeId, Packet, RemoteOp, Status, Tid, WqEntry, HEADER_BYTES, MAX_PACKET_BYTES,
};

fn arb_op() -> impl Strategy<Value = RemoteOp> {
    prop_oneof![
        Just(RemoteOp::Read),
        Just(RemoteOp::Write),
        Just(RemoteOp::FetchAdd),
        Just(RemoteOp::CompSwap),
        Just(RemoteOp::Interrupt),
    ]
}

fn arb_status() -> impl Strategy<Value = Status> {
    prop_oneof![
        Just(Status::Ok),
        Just(Status::OutOfBounds),
        Just(Status::BadContext),
    ]
}

proptest! {
    #[test]
    fn packet_request_roundtrip(
        dst in any::<u16>(), src in any::<u16>(), ctx in any::<u16>(), tid in any::<u16>(),
        op in arb_op(), offset in any::<u64>(), line_seq in any::<u32>(),
        payload in proptest::option::of(proptest::array::uniform32(any::<u8>())),
    ) {
        // Expand the 32-byte arbitrary seed into a 64-byte payload.
        let payload = payload.map(|half| {
            let mut p = [0u8; 64];
            p[..32].copy_from_slice(&half);
            p[32..].copy_from_slice(&half);
            p
        });
        let mut pkt = Packet::request(NodeId(dst), NodeId(src), CtxId(ctx), Tid(tid), op, offset, line_seq);
        pkt.payload = payload;
        let bytes = pkt.encode();
        prop_assert_eq!(Packet::decode(&bytes), Some(pkt));
        prop_assert_eq!(bytes.len() as u64, pkt.wire_bytes());
    }

    #[test]
    fn packet_reply_roundtrip(
        dst in any::<u16>(), src in any::<u16>(), ctx in any::<u16>(), tid in any::<u16>(),
        op in arb_op(), status in arb_status(), offset in any::<u64>(), line_seq in any::<u32>(),
    ) {
        let req = Packet::request(NodeId(dst), NodeId(src), CtxId(ctx), Tid(tid), op, offset, line_seq);
        let reply = Packet::reply_to(&req, status, Some([0x5A; 64]));
        let bytes = reply.encode();
        prop_assert_eq!(Packet::decode(&bytes), Some(reply));
    }

    /// Decoding arbitrary garbage never panics, and only well-formed sizes
    /// can possibly decode.
    #[test]
    fn packet_decode_total(bytes in proptest::collection::vec(any::<u8>(), 0..128)) {
        let decoded = Packet::decode(&bytes);
        if bytes.len() != HEADER_BYTES && bytes.len() != MAX_PACKET_BYTES {
            prop_assert_eq!(decoded, None);
        }
    }

    #[test]
    fn wq_entry_roundtrip(
        op in arb_op(), dst in any::<u16>(), ctx in any::<u16>(),
        offset in any::<u64>(), buf in any::<u64>(), length in any::<u64>(),
        op1 in any::<u64>(), op2 in any::<u64>(), phase in any::<bool>(),
    ) {
        let e = WqEntry {
            op, dst: NodeId(dst), ctx: CtxId(ctx),
            offset, buf_vaddr: buf, length, operand1: op1, operand2: op2,
        };
        prop_assert_eq!(WqEntry::decode(&e.encode(phase)), Some((e, phase)));
    }

    #[test]
    fn cq_entry_roundtrip(idx in any::<u16>(), status in arb_status(), phase in any::<bool>()) {
        let e = CqEntry { wq_index: idx, status };
        prop_assert_eq!(CqEntry::decode(&e.encode(phase)), Some((e, phase)));
    }

    /// WQ decode never panics on arbitrary lines.
    #[test]
    fn wq_decode_total(bytes in proptest::array::uniform32(any::<u8>())) {
        let mut line = [0u8; 64];
        line[..32].copy_from_slice(&bytes);
        let _ = WqEntry::decode(&line);
        let _ = CqEntry::decode(&line);
    }

    /// Unrolling is consistent: lines() x 64 always covers length for
    /// non-atomic ops.
    #[test]
    fn unroll_covers_length(length in 1u64..100_000) {
        let e = WqEntry::read(NodeId(0), CtxId(0), 0, 0, length);
        let lines = e.lines() as u64;
        prop_assert!(lines * 64 >= length);
        prop_assert!((lines - 1) * 64 < length);
    }
}
