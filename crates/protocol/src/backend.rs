//! The transport-agnostic remote-memory backend contract.
//!
//! The paper's evaluation (Table 2) compares soNUMA against RDMA and
//! TCP/IP running *the same* one-sided request streams. [`RemoteBackend`]
//! captures the contract all three share — post / poll / completion over a
//! per-node globally readable segment — in protocol terms only, with no
//! reference to any transport's internals:
//!
//! * `sonuma-machine` implements it over the full RMC pipeline simulation
//!   (`SonumaBackend`);
//! * `sonuma-baselines` implements it over the calibrated TCP and RDMA
//!   stage-level cost models (`TcpBackend`, `RdmaBackend`).
//!
//! Layers above (the `sonuma-core` conformance suite, the benchmark
//! harness) program against this trait, which is what makes the Table 2
//! comparisons apples-to-apples: identical request streams, identical
//! functional semantics, different timing.
//!
//! Semantics every implementation must honor:
//!
//! * each node owns a `segment_len`-byte segment addressed by
//!   `(node, offset)`; reads/writes move whole byte ranges, atomics operate
//!   on one little-endian `u64`;
//! * [`RemoteBackend::post`] is asynchronous and returns a token;
//!   the matching [`RemoteCompletion`] appears in a later
//!   [`RemoteBackend::poll`] on the *posting* node, after enough
//!   [`RemoteBackend::advance`] calls;
//! * out-of-range accesses complete with [`Status::OutOfBounds`] (the
//!   paper's §4.2 error reply path), not a panic;
//! * zero-length operations and writes whose `len` disagrees with the
//!   payload are rejected at post time with [`BackendError::BadRequest`]
//!   on every implementation;
//! * completions for one node may arrive out of order across tokens,
//!   matching the out-of-order completion of §4.2.

use sonuma_sim::SimTime;

use crate::{NodeId, RemoteOp, Status};

/// One one-sided operation handed to a backend.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RemoteRequest {
    /// The operation kind.
    pub op: RemoteOp,
    /// Destination node.
    pub dst: NodeId,
    /// Byte offset into the destination's segment.
    pub offset: u64,
    /// Bytes to read (reads) — atomics are fixed 8-byte operations.
    pub len: u64,
    /// Bytes to write (writes); empty otherwise.
    pub payload: Vec<u8>,
    /// Atomic operands: `(delta, _)` for fetch-add, `(expected, new)` for
    /// compare-and-swap.
    pub operands: (u64, u64),
}

impl RemoteRequest {
    /// A remote read of `len` bytes at `offset`.
    pub fn read(dst: NodeId, offset: u64, len: u64) -> Self {
        RemoteRequest {
            op: RemoteOp::Read,
            dst,
            offset,
            len,
            payload: Vec::new(),
            operands: (0, 0),
        }
    }

    /// A remote write of `payload` at `offset`.
    pub fn write(dst: NodeId, offset: u64, payload: Vec<u8>) -> Self {
        RemoteRequest {
            op: RemoteOp::Write,
            dst,
            offset,
            len: payload.len() as u64,
            payload,
            operands: (0, 0),
        }
    }

    /// A remote fetch-and-add of `delta` on the word at `offset`.
    pub fn fetch_add(dst: NodeId, offset: u64, delta: u64) -> Self {
        RemoteRequest {
            op: RemoteOp::FetchAdd,
            dst,
            offset,
            len: 8,
            payload: Vec::new(),
            operands: (delta, 0),
        }
    }

    /// A remote compare-and-swap (`expected` -> `new`) at `offset`.
    pub fn comp_swap(dst: NodeId, offset: u64, expected: u64, new: u64) -> Self {
        RemoteRequest {
            op: RemoteOp::CompSwap,
            dst,
            offset,
            len: 8,
            payload: Vec::new(),
            operands: (expected, new),
        }
    }

    /// Cache lines this transfer spans: the RMC unrolls every request
    /// into 64-byte line packets (§4.1), so a multi-line KV GET costs
    /// `lines()` fabric packets, not one. Sub-line and straddling
    /// transfers round up to whole lines.
    pub fn lines(&self) -> u64 {
        let bytes = match self.op {
            RemoteOp::Write => self.payload.len() as u64,
            _ => self.len,
        };
        let first = self.offset % 64;
        (first + bytes).div_ceil(64)
    }
}

/// A finished operation, as reported by [`RemoteBackend::poll`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RemoteCompletion {
    /// The token [`RemoteBackend::post`] returned for this operation.
    pub token: u64,
    /// Completion status (errors surface here, never as panics).
    pub status: Status,
    /// Read data, or the 8-byte previous value for atomics; empty for
    /// writes and errors.
    pub data: Vec<u8>,
}

/// Why a backend refused to accept a post.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendError {
    /// Transient resource exhaustion (queue full); poll/advance and retry.
    Backpressure,
    /// The destination node does not exist.
    BadNode,
    /// The request shape is invalid for this backend (e.g. zero-length
    /// operations, a write whose `len` disagrees with its payload, or a
    /// non-line-multiple soNUMA read).
    BadRequest,
    /// Permanent resource exhaustion (e.g. node memory): do not retry.
    Exhausted,
}

impl std::fmt::Display for BackendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BackendError::Backpressure => write!(f, "backend queue full, drain completions"),
            BackendError::BadNode => write!(f, "destination node out of range"),
            BackendError::BadRequest => write!(f, "request shape invalid for this backend"),
            BackendError::Exhausted => write!(f, "backend resources exhausted, do not retry"),
        }
    }
}

impl std::error::Error for BackendError {}

/// A remote-memory transport: post one-sided operations, advance time,
/// poll completions.
pub trait RemoteBackend {
    /// Short human-readable transport name (report labels).
    fn label(&self) -> &'static str;

    /// Number of nodes.
    fn num_nodes(&self) -> usize;

    /// Hints how many host threads the backend may use to execute the
    /// simulation. Purely a performance knob: implementations must keep
    /// every simulated outcome identical for every value (the sharded
    /// soNUMA machine repartitions its cluster; the modeled baselines,
    /// which have no internal parallelism, ignore it). Must be called
    /// before any traffic; implementations may panic otherwise.
    fn set_threads(&mut self, threads: usize) {
        let _ = threads;
    }

    /// Bytes in each node's globally accessible segment.
    fn segment_len(&self) -> u64;

    /// Functional (un-timed) write into `node`'s segment — workload setup.
    ///
    /// # Panics
    ///
    /// Panics if the range falls outside the segment.
    fn write_ctx(&mut self, node: NodeId, offset: u64, data: &[u8]);

    /// Functional (un-timed) read from `node`'s segment — verification.
    ///
    /// # Panics
    ///
    /// Panics if the range falls outside the segment.
    fn read_ctx(&self, node: NodeId, offset: u64, buf: &mut [u8]);

    /// Posts `req` from `src`, returning a token echoed by the matching
    /// completion.
    ///
    /// # Errors
    ///
    /// [`BackendError::Backpressure`] when the transport's queue is full
    /// (poll and retry), or a validation error.
    fn post(&mut self, src: NodeId, req: RemoteRequest) -> Result<u64, BackendError>;

    /// Posts `req` from `src` on tenant channel `channel`. Backends with
    /// real per-channel queues (soNUMA's tenant-owned QPs) give every
    /// channel its own queue, so one tenant's backlog cannot reject
    /// another's posts; transports without that machinery fall back to
    /// the shared per-node queue. Tokens share the per-node completion
    /// space either way: completions for every channel of `src` appear in
    /// [`RemoteBackend::poll`]`(src)`.
    ///
    /// # Errors
    ///
    /// As [`RemoteBackend::post`].
    fn post_on(
        &mut self,
        src: NodeId,
        channel: u32,
        req: RemoteRequest,
    ) -> Result<u64, BackendError> {
        let _ = channel;
        self.post(src, req)
    }

    /// Advances the backend's notion of "now" to at least `t` even when
    /// nothing is in flight (a no-op if the clock is already past `t`).
    /// Open-loop traffic generators need this: with a purely
    /// completion-driven clock, an idle backend would never reach the
    /// next scheduled arrival time. The default is a no-op, which is
    /// correct only for backends whose clock advances on its own.
    fn advance_clock_to(&mut self, t: SimTime) {
        let _ = t;
    }

    /// Drains completions available at `src` right now (non-blocking).
    fn poll(&mut self, src: NodeId) -> Vec<RemoteCompletion>;

    /// Makes forward progress (runs the event engine / advances the clock).
    /// Returns `false` once no work remains in flight.
    fn advance(&mut self) -> bool;

    /// The backend's current simulated time.
    fn now(&self) -> SimTime;

    /// Number of discrete events the backend's engine has executed so far
    /// — the denominator of the wall-clock events/sec metric the benchmark
    /// harness gates CI on. Implementations without an internal event
    /// engine report completions processed instead.
    fn events_processed(&self) -> u64;

    /// Runs [`RemoteBackend::advance`] to quiescence and drains every
    /// completion for `src` (convenience for lock-step request streams).
    fn complete_all(&mut self, src: NodeId) -> Vec<RemoteCompletion> {
        while self.advance() {}
        self.poll(src)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_constructors_fill_shapes() {
        let r = RemoteRequest::read(NodeId(1), 64, 128);
        assert_eq!((r.op, r.len), (RemoteOp::Read, 128));
        let w = RemoteRequest::write(NodeId(2), 0, vec![7; 96]);
        assert_eq!((w.op, w.len), (RemoteOp::Write, 96));
        let fa = RemoteRequest::fetch_add(NodeId(0), 8, 5);
        assert_eq!((fa.op, fa.operands.0), (RemoteOp::FetchAdd, 5));
        let cs = RemoteRequest::comp_swap(NodeId(0), 8, 1, 2);
        assert_eq!((cs.op, cs.operands), (RemoteOp::CompSwap, (1, 2)));
    }

    #[test]
    fn request_line_counts_round_up() {
        assert_eq!(RemoteRequest::read(NodeId(1), 0, 64).lines(), 1);
        assert_eq!(RemoteRequest::read(NodeId(1), 0, 4096).lines(), 64);
        assert_eq!(RemoteRequest::read(NodeId(1), 0, 1 << 26).lines(), 1 << 20);
        // Straddling a line boundary costs both lines.
        assert_eq!(RemoteRequest::read(NodeId(1), 32, 64).lines(), 2);
        assert_eq!(
            RemoteRequest::write(NodeId(1), 0, vec![0; 4096]).lines(),
            64
        );
        assert_eq!(RemoteRequest::fetch_add(NodeId(1), 8, 1).lines(), 1);
    }

    #[test]
    fn backend_errors_display() {
        for e in [
            BackendError::Backpressure,
            BackendError::BadNode,
            BackendError::BadRequest,
            BackendError::Exhausted,
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
