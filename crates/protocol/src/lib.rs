//! The soNUMA wire protocol (§6 of the paper).
//!
//! soNUMA's protocol layer is a minimal, **stateless** request/reply
//! protocol: exactly one reply per request, headers small enough that a
//! message is one header plus at most one cache-line payload, and all the
//! state needed to process a request carried *in* the request
//! (`<ctx_id, offset>` plus the destination's own Context Table). The
//! transfer id (`tid`) is opaque to the destination and echoed in the reply
//! so the source RMC can locate the originating work-queue entry in its
//! Inflight Transaction Table.
//!
//! This crate defines:
//!
//! * identifier newtypes ([`NodeId`], [`CtxId`], [`Tid`], [`QpId`]),
//! * the operation and status sets ([`RemoteOp`], [`Status`]),
//! * binary codecs for request/reply packets ([`Packet`]) and for the
//!   64-byte work-queue / completion-queue entries ([`WqEntry`],
//!   [`CqEntry`]) that live in simulated memory and are genuinely parsed
//!   from bytes by the RMC model,
//! * the [`RemoteBackend`] transport contract (post/poll/completion over
//!   per-node segments) that the soNUMA machine and the TCP/RDMA baseline
//!   models all implement, so higher layers run unchanged over any of them.
//!
//! # Example
//!
//! ```
//! use sonuma_protocol::{CtxId, NodeId, Packet, RemoteOp, Tid};
//!
//! let req = Packet::request(NodeId(3), NodeId(1), CtxId(7), Tid(42), RemoteOp::Read, 0x1000, 0);
//! let bytes = req.encode();
//! assert_eq!(Packet::decode(&bytes).unwrap(), req);
//! ```

pub mod backend;
pub mod ids;
pub mod ops;
pub mod packet;
pub mod queue;

pub use backend::{BackendError, RemoteBackend, RemoteCompletion, RemoteRequest};
pub use ids::{CtxId, NodeId, QpId, TenantId, Tid};
pub use ops::{RemoteOp, Status};
pub use packet::{Packet, PacketKind, CACHE_LINE_BYTES, HEADER_BYTES, MAX_PACKET_BYTES};
pub use queue::{CqEntry, WqEntry, CQ_ENTRY_BYTES, WQ_ENTRY_BYTES};
