//! Identifier newtypes used across the protocol.

use std::fmt;

/// Identifies one node in the soNUMA fabric.
///
/// Carried in the routing-layer header as `<dst_nid, src_nid>`; `dst_nid`
/// routes the packet and `src_nid` addresses the reply (§6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(pub u16);

impl NodeId {
    /// The node index as a `usize` (for table lookups).
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifies a global address-space context (§4.1).
///
/// All nodes participating in the same application share a `ctx_id`; it
/// indexes the destination's Context Table during stateless request
/// processing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct CtxId(pub u16);

impl CtxId {
    /// The context index as a `usize`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for CtxId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ctx{}", self.0)
    }
}

/// A transfer identifier: the source RMC's handle for an in-flight
/// transaction.
///
/// Opaque to the destination, echoed verbatim in the reply, and used to
/// index the Inflight Transaction Table (§4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Tid(pub u16);

impl Tid {
    /// The tid as a `usize` (ITT index).
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Tid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tid{}", self.0)
    }
}

/// Identifies one tenant sharing a node's RMC.
///
/// Queue pairs are the user-level interface to remote memory (§4.1); a
/// rack serving many applications multiplexes thousands of tenant-owned
/// QPs per node. The tenant id tags each QP so the RGP's QoS scheduler
/// can arbitrate between owners; it never crosses the wire (requests stay
/// stateless, §6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TenantId(pub u32);

impl TenantId {
    /// The tenant index as a `usize` (tenant-table lookups).
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TenantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Identifies a queue pair registered with a node's RMC.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct QpId(pub u16);

impl QpId {
    /// The queue-pair index as a `usize`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for QpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "qp{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        assert_eq!(NodeId(3).to_string(), "n3");
        assert_eq!(CtxId(1).to_string(), "ctx1");
        assert_eq!(Tid(9).to_string(), "tid9");
        assert_eq!(QpId(0).to_string(), "qp0");
        assert_eq!(TenantId(1024).to_string(), "t1024");
        assert_eq!(TenantId(7).index(), 7);
    }

    #[test]
    fn index_conversions() {
        assert_eq!(NodeId(65535).index(), 65535);
        assert_eq!(Tid(12).index(), 12);
        assert_eq!(CtxId(7).index(), 7);
        assert_eq!(QpId(2).index(), 2);
    }

    #[test]
    fn ordering_and_equality() {
        assert!(NodeId(1) < NodeId(2));
        assert_eq!(Tid(5), Tid(5));
        assert_ne!(CtxId(0), CtxId(1));
    }
}
