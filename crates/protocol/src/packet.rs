//! Request/reply packet format and binary codec.
//!
//! A packet is a fixed 24-byte header plus an optional single cache-line
//! (64-byte) payload — "the message MTU is large enough to support a
//! fixed-size header and an optional cache-line-sized payload" (§6). Larger
//! application transfers never produce larger packets: the source RMC
//! unrolls them into line-sized transactions.

use crate::ids::{CtxId, NodeId, Tid};
use crate::ops::{RemoteOp, Status};

/// Cache-line (and payload) size in bytes.
pub const CACHE_LINE_BYTES: usize = 64;

/// Wire size of the fixed packet header.
pub const HEADER_BYTES: usize = 24;

/// Maximum wire size of one packet (header + one line).
pub const MAX_PACKET_BYTES: usize = HEADER_BYTES + CACHE_LINE_BYTES;

/// Whether a packet is a request or a reply (selects the virtual lane).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PacketKind {
    /// Travels on virtual lane 0.
    Request,
    /// Travels on virtual lane 1.
    Reply,
}

/// One soNUMA fabric packet.
///
/// The same structure carries requests and replies; `kind` selects the
/// interpretation of the second header byte (`op` for requests, `status`
/// for replies). `line_seq` is the index of this line within an unrolled
/// multi-line transfer; replies echo it so the Request Completion Pipeline
/// can compute the destination buffer offset (§4.2).
///
/// # Example
///
/// ```
/// use sonuma_protocol::{CtxId, NodeId, Packet, RemoteOp, Status, Tid};
///
/// let req = Packet::request(NodeId(2), NodeId(0), CtxId(1), Tid(5), RemoteOp::Read, 4096, 3);
/// assert_eq!(req.wire_bytes(), 24); // read requests have no payload
/// let reply = Packet::reply_to(&req, Status::Ok, Some([0xAB; 64]));
/// assert_eq!(reply.dst, NodeId(0));
/// assert_eq!(reply.tid, Tid(5));
/// assert_eq!(reply.wire_bytes(), 88);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Packet {
    /// Request or reply.
    pub kind: PacketKind,
    /// Routing destination.
    pub dst: NodeId,
    /// Source (used by the destination to address the reply).
    pub src: NodeId,
    /// Global address-space context (requests; echoed in replies).
    pub ctx: CtxId,
    /// Transfer id, opaque to the destination.
    pub tid: Tid,
    /// Operation (meaningful on both requests and replies so the RCP knows
    /// whether a payload is expected).
    pub op: RemoteOp,
    /// Completion status (replies; `Ok` on requests).
    pub status: Status,
    /// Byte offset into the context segment (line-aligned for reads/writes).
    pub offset: u64,
    /// Index of this cache line within the unrolled transfer.
    pub line_seq: u32,
    /// Retransmission generation of the owning transfer. Zero on every
    /// first attempt; a source RMC that aborts a transfer and recycles its
    /// tid bumps the generation so straggler replies from the old
    /// incarnation are recognizably stale. Replies echo it.
    pub gen: u8,
    /// Set by a faulty link that flipped bits in transit: the packet still
    /// pays full wire time, and the receiving RMC discards it on its
    /// integrity check.
    pub corrupt: bool,
    /// Optional single-line payload.
    pub payload: Option<[u8; CACHE_LINE_BYTES]>,
}

impl Packet {
    /// Builds a request packet without payload (remote read).
    pub fn request(
        dst: NodeId,
        src: NodeId,
        ctx: CtxId,
        tid: Tid,
        op: RemoteOp,
        offset: u64,
        line_seq: u32,
    ) -> Self {
        Packet {
            kind: PacketKind::Request,
            dst,
            src,
            ctx,
            tid,
            op,
            status: Status::Ok,
            offset,
            line_seq,
            gen: 0,
            corrupt: false,
            payload: None,
        }
    }

    /// Builds a request packet carrying one line of data (remote write,
    /// atomic operands).
    #[allow(clippy::too_many_arguments)]
    pub fn request_with_payload(
        dst: NodeId,
        src: NodeId,
        ctx: CtxId,
        tid: Tid,
        op: RemoteOp,
        offset: u64,
        line_seq: u32,
        payload: [u8; CACHE_LINE_BYTES],
    ) -> Self {
        Packet {
            payload: Some(payload),
            ..Packet::request(dst, src, ctx, tid, op, offset, line_seq)
        }
    }

    /// Builds the reply to `req` (swapped direction, echoed tid/line_seq).
    pub fn reply_to(req: &Packet, status: Status, payload: Option<[u8; CACHE_LINE_BYTES]>) -> Self {
        debug_assert_eq!(req.kind, PacketKind::Request);
        Packet {
            kind: PacketKind::Reply,
            dst: req.src,
            src: req.dst,
            ctx: req.ctx,
            tid: req.tid,
            op: req.op,
            status,
            offset: req.offset,
            line_seq: req.line_seq,
            gen: req.gen,
            corrupt: false,
            payload,
        }
    }

    /// The fault-stream salt identifying this packet instance at `now_ps`
    /// (picoseconds of its injection time): a hash of the packet's wire
    /// identity and send time. Pure, so every shard of any partition
    /// computes the same salt for the same committed send — and a
    /// retransmission (same identity, later time) draws a fresh fate.
    pub fn fault_salt(&self, now_ps: u64) -> u64 {
        // FNV-1a over the identifying fields; cheap and stateless.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut fold = |v: u64| {
            h ^= v;
            h = h.wrapping_mul(0x100_0000_01b3);
        };
        fold(now_ps);
        fold(u64::from(self.src.0) << 32 | u64::from(self.dst.0));
        fold(u64::from(self.tid.0) << 40 | u64::from(self.line_seq) << 8 | u64::from(self.gen));
        fold(self.offset ^ (u64::from(self.kind == PacketKind::Reply) << 63));
        h
    }

    /// Size of this packet on the wire, in bytes.
    pub fn wire_bytes(&self) -> u64 {
        (HEADER_BYTES
            + if self.payload.is_some() {
                CACHE_LINE_BYTES
            } else {
                0
            }) as u64
    }

    /// The virtual lane this packet travels on: requests on VL0, replies on
    /// VL1 (deadlock freedom, §6).
    pub fn virtual_lane(&self) -> usize {
        match self.kind {
            PacketKind::Request => 0,
            PacketKind::Reply => 1,
        }
    }

    /// Serializes into a caller-provided buffer, returning the number of
    /// bytes written ([`HEADER_BYTES`], or [`MAX_PACKET_BYTES`] with a
    /// payload). The allocation-free form of [`Packet::encode`] for wire
    /// paths that serialize per packet.
    pub fn encode_into(&self, out: &mut [u8; MAX_PACKET_BYTES]) -> usize {
        out[0] = match self.kind {
            PacketKind::Request => 0u8,
            PacketKind::Reply => 1u8,
        } | if self.payload.is_some() { 0b10 } else { 0 };
        out[1] = self.op.to_wire() | (self.status.to_wire() << 4);
        out[2..4].copy_from_slice(&self.dst.0.to_le_bytes());
        out[4..6].copy_from_slice(&self.src.0.to_le_bytes());
        out[6..8].copy_from_slice(&self.ctx.0.to_le_bytes());
        out[8..10].copy_from_slice(&self.tid.0.to_le_bytes());
        out[10..14].copy_from_slice(&self.line_seq.to_le_bytes());
        // Formerly-reserved pad bytes: retransmission generation and the
        // corruption mark (zero on every fault-free packet, so fault-free
        // wire images are unchanged).
        out[14] = self.gen;
        out[15] = u8::from(self.corrupt);
        out[16..24].copy_from_slice(&self.offset.to_le_bytes());
        match &self.payload {
            Some(p) => {
                out[HEADER_BYTES..].copy_from_slice(p);
                MAX_PACKET_BYTES
            }
            None => HEADER_BYTES,
        }
    }

    /// Serializes to owned bytes (see [`Packet::encode_into`] for the
    /// allocation-free form).
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = [0u8; MAX_PACKET_BYTES];
        let len = self.encode_into(&mut buf);
        buf[..len].to_vec()
    }

    /// Deserializes from bytes.
    ///
    /// Returns `None` for malformed input (short buffer, unknown op/status,
    /// or a length inconsistent with the payload flag).
    pub fn decode(bytes: &[u8]) -> Option<Self> {
        if bytes.len() < HEADER_BYTES {
            return None;
        }
        let kind = match bytes[0] & 0b1 {
            0 => PacketKind::Request,
            _ => PacketKind::Reply,
        };
        let has_payload = bytes[0] & 0b10 != 0;
        let op = RemoteOp::from_wire(bytes[1] & 0x0F)?;
        let status = Status::from_wire(bytes[1] >> 4)?;
        let dst = NodeId(u16::from_le_bytes([bytes[2], bytes[3]]));
        let src = NodeId(u16::from_le_bytes([bytes[4], bytes[5]]));
        let ctx = CtxId(u16::from_le_bytes([bytes[6], bytes[7]]));
        let tid = Tid(u16::from_le_bytes([bytes[8], bytes[9]]));
        let line_seq = u32::from_le_bytes([bytes[10], bytes[11], bytes[12], bytes[13]]);
        let gen = bytes[14];
        let corrupt = match bytes[15] {
            0 => false,
            1 => true,
            _ => return None,
        };
        let offset = u64::from_le_bytes(bytes[16..24].try_into().ok()?);
        let payload = if has_payload {
            if bytes.len() != MAX_PACKET_BYTES {
                return None;
            }
            let mut p = [0u8; CACHE_LINE_BYTES];
            p.copy_from_slice(&bytes[HEADER_BYTES..]);
            Some(p)
        } else {
            if bytes.len() != HEADER_BYTES {
                return None;
            }
            None
        };
        Some(Packet {
            kind,
            dst,
            src,
            ctx,
            tid,
            op,
            status,
            offset,
            line_seq,
            gen,
            corrupt,
            payload,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_request() -> Packet {
        Packet::request(
            NodeId(7),
            NodeId(2),
            CtxId(3),
            Tid(11),
            RemoteOp::Read,
            0xABCD_0040,
            5,
        )
    }

    #[test]
    fn request_roundtrip_no_payload() {
        let p = sample_request();
        let bytes = p.encode();
        assert_eq!(bytes.len(), HEADER_BYTES);
        assert_eq!(Packet::decode(&bytes), Some(p));
    }

    #[test]
    fn encode_into_roundtrips_and_matches_encode() {
        let mut buf = [0u8; MAX_PACKET_BYTES];
        // Header-only request.
        let req = sample_request();
        let n = req.encode_into(&mut buf);
        assert_eq!(n, HEADER_BYTES);
        assert_eq!(Packet::decode(&buf[..n]), Some(req));
        assert_eq!(&buf[..n], req.encode().as_slice());
        // Payload-carrying reply reuses the same buffer.
        let rep = Packet::reply_to(&req, Status::Ok, Some([0x5A; 64]));
        let n = rep.encode_into(&mut buf);
        assert_eq!(n, MAX_PACKET_BYTES);
        assert_eq!(Packet::decode(&buf[..n]), Some(rep));
        assert_eq!(&buf[..n], rep.encode().as_slice());
    }

    #[test]
    fn request_roundtrip_with_payload() {
        let mut payload = [0u8; 64];
        for (i, b) in payload.iter_mut().enumerate() {
            *b = i as u8;
        }
        let p = Packet::request_with_payload(
            NodeId(1),
            NodeId(0),
            CtxId(9),
            Tid(1),
            RemoteOp::Write,
            64,
            0,
            payload,
        );
        let bytes = p.encode();
        assert_eq!(bytes.len(), MAX_PACKET_BYTES);
        assert_eq!(Packet::decode(&bytes), Some(p));
    }

    #[test]
    fn reply_swaps_direction_and_echoes_ids() {
        let req = sample_request();
        let rep = Packet::reply_to(&req, Status::Ok, Some([9u8; 64]));
        assert_eq!(rep.kind, PacketKind::Reply);
        assert_eq!(rep.dst, req.src);
        assert_eq!(rep.src, req.dst);
        assert_eq!(rep.tid, req.tid);
        assert_eq!(rep.line_seq, req.line_seq);
        assert_eq!(rep.offset, req.offset);
        let bytes = rep.encode();
        assert_eq!(Packet::decode(&bytes), Some(rep));
    }

    #[test]
    fn error_reply_roundtrip() {
        let req = sample_request();
        let rep = Packet::reply_to(&req, Status::OutOfBounds, None);
        let bytes = rep.encode();
        let back = Packet::decode(&bytes).unwrap();
        assert_eq!(back.status, Status::OutOfBounds);
        assert!(!back.status.is_ok());
    }

    #[test]
    fn virtual_lanes_by_kind() {
        let req = sample_request();
        assert_eq!(req.virtual_lane(), 0);
        assert_eq!(Packet::reply_to(&req, Status::Ok, None).virtual_lane(), 1);
    }

    #[test]
    fn decode_rejects_short_buffers() {
        let p = sample_request().encode();
        assert_eq!(Packet::decode(&p[..10]), None);
        assert_eq!(Packet::decode(&[]), None);
    }

    #[test]
    fn decode_rejects_inconsistent_length() {
        let mut bytes = sample_request().encode();
        bytes.push(0); // header-only packet with a trailing byte
        assert_eq!(Packet::decode(&bytes), None);

        let mut with_payload = Packet::request_with_payload(
            NodeId(0),
            NodeId(1),
            CtxId(0),
            Tid(0),
            RemoteOp::Write,
            0,
            0,
            [0; 64],
        )
        .encode();
        with_payload.truncate(50);
        assert_eq!(Packet::decode(&with_payload), None);
    }

    #[test]
    fn decode_rejects_unknown_op() {
        let mut bytes = sample_request().encode();
        bytes[1] = 0x0F; // op nibble = 15: invalid
        assert_eq!(Packet::decode(&bytes), None);
    }

    #[test]
    fn gen_and_corrupt_roundtrip_and_reply_echoes_gen() {
        let mut req = sample_request();
        req.gen = 3;
        let bytes = req.encode();
        assert_eq!(bytes[14], 3);
        assert_eq!(Packet::decode(&bytes), Some(req));
        let rep = Packet::reply_to(&req, Status::Ok, None);
        assert_eq!(rep.gen, 3, "replies echo the request generation");
        assert!(!rep.corrupt);
        let mut marked = rep;
        marked.corrupt = true;
        assert_eq!(Packet::decode(&marked.encode()), Some(marked));
        // Byte 15 is a strict boolean on the wire.
        let mut bad = rep.encode();
        bad[15] = 7;
        assert_eq!(Packet::decode(&bad), None);
    }

    #[test]
    fn fault_salt_distinguishes_instances() {
        let req = sample_request();
        assert_eq!(req.fault_salt(1000), req.fault_salt(1000), "pure");
        assert_ne!(req.fault_salt(1000), req.fault_salt(2000), "time-salted");
        let mut retx = req;
        retx.gen = 1;
        assert_ne!(req.fault_salt(1000), retx.fault_salt(1000));
        let rep = Packet::reply_to(&req, Status::Ok, None);
        assert_ne!(req.fault_salt(1000), rep.fault_salt(1000));
    }

    #[test]
    fn wire_size_accounting() {
        assert_eq!(sample_request().wire_bytes(), 24);
        let rep = Packet::reply_to(&sample_request(), Status::Ok, Some([0; 64]));
        assert_eq!(rep.wire_bytes(), 88);
    }
}
