//! Remote operations and completion statuses.

use std::fmt;

/// The architecturally supported one-sided remote operations.
///
/// soNUMA deliberately limits hardware support to reads, writes and atomics
/// (§5.3); send/receive messaging and barriers are software libraries built
/// on top. Atomics execute inside the destination node's cache coherence
/// hierarchy, which gives them global atomicity for any mix of local and
/// remote accesses (§7.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RemoteOp {
    /// Copy remote memory into a local buffer.
    Read,
    /// Copy a local buffer into remote memory.
    Write,
    /// Atomic fetch-and-add on a remote 8-byte word.
    FetchAdd,
    /// Atomic compare-and-swap on a remote 8-byte word.
    CompSwap,
    /// Remote interrupt: wake the destination's registered handler core
    /// with an 8-byte payload, bypassing its polling loops. The paper
    /// names this the first extension a complete architecture needs
    /// ("the ability to issue remote interrupts as part of an RMC
    /// command, so that nodes can communicate without polling", §8).
    Interrupt,
}

impl RemoteOp {
    /// Wire encoding.
    pub fn to_wire(self) -> u8 {
        match self {
            RemoteOp::Read => 0,
            RemoteOp::Write => 1,
            RemoteOp::FetchAdd => 2,
            RemoteOp::CompSwap => 3,
            RemoteOp::Interrupt => 4,
        }
    }

    /// Decodes a wire byte.
    pub fn from_wire(b: u8) -> Option<Self> {
        match b {
            0 => Some(RemoteOp::Read),
            1 => Some(RemoteOp::Write),
            2 => Some(RemoteOp::FetchAdd),
            3 => Some(RemoteOp::CompSwap),
            4 => Some(RemoteOp::Interrupt),
            _ => None,
        }
    }

    /// Whether the *request* packet carries a data payload.
    pub fn request_carries_payload(self) -> bool {
        matches!(
            self,
            RemoteOp::Write | RemoteOp::FetchAdd | RemoteOp::CompSwap | RemoteOp::Interrupt
        )
    }

    /// Whether the *reply* packet carries a data payload.
    pub fn reply_carries_payload(self) -> bool {
        matches!(
            self,
            RemoteOp::Read | RemoteOp::FetchAdd | RemoteOp::CompSwap
        )
    }

    /// Whether this is an atomic read-modify-write.
    pub fn is_atomic(self) -> bool {
        matches!(self, RemoteOp::FetchAdd | RemoteOp::CompSwap)
    }
}

impl fmt::Display for RemoteOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RemoteOp::Read => "rread",
            RemoteOp::Write => "rwrite",
            RemoteOp::FetchAdd => "rfetch_add",
            RemoteOp::CompSwap => "rcomp_swap",
            RemoteOp::Interrupt => "rinterrupt",
        };
        f.write_str(s)
    }
}

/// Completion status delivered in reply packets and CQ entries.
///
/// Errors correspond to the paper's security-context check: "virtual
/// addresses that fall outside of the range of the specified security
/// context are signaled through an error message ... delivered to the
/// application via the CQ" (§4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Status {
    /// The operation completed.
    Ok,
    /// The offset fell outside the context segment's registered bounds.
    OutOfBounds,
    /// The context id is not registered at the destination.
    BadContext,
}

impl Status {
    /// Wire encoding.
    pub fn to_wire(self) -> u8 {
        match self {
            Status::Ok => 0,
            Status::OutOfBounds => 1,
            Status::BadContext => 2,
        }
    }

    /// Decodes a wire byte.
    pub fn from_wire(b: u8) -> Option<Self> {
        match b {
            0 => Some(Status::Ok),
            1 => Some(Status::OutOfBounds),
            2 => Some(Status::BadContext),
            _ => None,
        }
    }

    /// Whether this status reports success.
    pub fn is_ok(self) -> bool {
        self == Status::Ok
    }
}

impl fmt::Display for Status {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Status::Ok => "ok",
            Status::OutOfBounds => "out of segment bounds",
            Status::BadContext => "unknown context",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_wire_roundtrip() {
        for op in [
            RemoteOp::Read,
            RemoteOp::Write,
            RemoteOp::FetchAdd,
            RemoteOp::CompSwap,
            RemoteOp::Interrupt,
        ] {
            assert_eq!(RemoteOp::from_wire(op.to_wire()), Some(op));
        }
        assert_eq!(RemoteOp::from_wire(200), None);
    }

    #[test]
    fn status_wire_roundtrip() {
        for s in [Status::Ok, Status::OutOfBounds, Status::BadContext] {
            assert_eq!(Status::from_wire(s.to_wire()), Some(s));
        }
        assert_eq!(Status::from_wire(99), None);
    }

    #[test]
    fn payload_direction() {
        assert!(!RemoteOp::Read.request_carries_payload());
        assert!(RemoteOp::Read.reply_carries_payload());
        assert!(RemoteOp::Write.request_carries_payload());
        assert!(!RemoteOp::Write.reply_carries_payload());
        // Atomics carry operands out and old values back.
        assert!(RemoteOp::FetchAdd.request_carries_payload());
        assert!(RemoteOp::FetchAdd.reply_carries_payload());
    }

    #[test]
    fn atomicity_classification() {
        assert!(RemoteOp::FetchAdd.is_atomic());
        assert!(RemoteOp::CompSwap.is_atomic());
        assert!(!RemoteOp::Read.is_atomic());
        assert!(!RemoteOp::Write.is_atomic());
        assert!(!RemoteOp::Interrupt.is_atomic());
    }

    #[test]
    fn interrupt_payload_direction() {
        assert!(RemoteOp::Interrupt.request_carries_payload());
        assert!(!RemoteOp::Interrupt.reply_carries_payload());
    }

    #[test]
    fn status_predicates() {
        assert!(Status::Ok.is_ok());
        assert!(!Status::OutOfBounds.is_ok());
    }
}
