//! Work-queue and completion-queue entry layouts.
//!
//! The queue pair (QP) is the application/RMC interface: "a work queue (WQ),
//! a bounded buffer written exclusively by the application, and a completion
//! queue (CQ), a bounded buffer of the same size written exclusively by the
//! RMC" (§4.1). Both live in (simulated) main memory and are coherently
//! cached by cores and RMC alike — so in this reproduction they are real
//! byte arrays, written and parsed through these codecs, and their cache
//! behaviour (core writes, RMC polls) falls out of the hierarchy model.
//!
//! Entries occupy one 64-byte cache line each. A one-bit *phase* field
//! toggles on every wrap of the ring, letting the consumer detect fresh
//! entries without a shared head pointer — the standard lock-free
//! single-producer/single-consumer ring convention.

use crate::ids::{CtxId, NodeId};
use crate::ops::{RemoteOp, Status};

/// Wire size of one WQ entry (one cache line).
pub const WQ_ENTRY_BYTES: u64 = 64;

/// Wire size of one CQ entry (one cache line).
pub const CQ_ENTRY_BYTES: u64 = 64;

/// One work-queue entry: a remote operation scheduled by the application.
///
/// # Example
///
/// ```
/// use sonuma_protocol::{CtxId, NodeId, RemoteOp, WqEntry};
///
/// let e = WqEntry::read(NodeId(4), CtxId(0), 0x2000, 0x7000_0000, 256);
/// let bytes = e.encode(true);
/// let (back, phase) = WqEntry::decode(&bytes).unwrap();
/// assert_eq!(back, e);
/// assert!(phase);
/// assert_eq!(back.lines(), 4); // 256 B unrolls into four cache lines
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WqEntry {
    /// Operation to perform.
    pub op: RemoteOp,
    /// Destination node.
    pub dst: NodeId,
    /// Target global context.
    pub ctx: CtxId,
    /// Byte offset into the destination's context segment.
    pub offset: u64,
    /// Local buffer virtual address (source for writes, destination for
    /// reads and atomic results).
    pub buf_vaddr: u64,
    /// Transfer length in bytes (multiple of 64 for reads/writes; 8 for
    /// atomics).
    pub length: u64,
    /// First atomic operand (fetch-add delta, or compare-swap expected).
    pub operand1: u64,
    /// Second atomic operand (compare-swap new value).
    pub operand2: u64,
}

impl WqEntry {
    /// Builds a remote read request.
    pub fn read(dst: NodeId, ctx: CtxId, offset: u64, buf_vaddr: u64, length: u64) -> Self {
        WqEntry {
            op: RemoteOp::Read,
            dst,
            ctx,
            offset,
            buf_vaddr,
            length,
            operand1: 0,
            operand2: 0,
        }
    }

    /// Builds a remote write request.
    pub fn write(dst: NodeId, ctx: CtxId, offset: u64, buf_vaddr: u64, length: u64) -> Self {
        WqEntry {
            op: RemoteOp::Write,
            ..WqEntry::read(dst, ctx, offset, buf_vaddr, length)
        }
    }

    /// Builds a remote fetch-and-add of `delta` on the 8-byte word at
    /// `offset`; the previous value lands in `buf_vaddr`.
    pub fn fetch_add(dst: NodeId, ctx: CtxId, offset: u64, buf_vaddr: u64, delta: u64) -> Self {
        WqEntry {
            op: RemoteOp::FetchAdd,
            operand1: delta,
            ..WqEntry::read(dst, ctx, offset, buf_vaddr, 8)
        }
    }

    /// Builds a remote compare-and-swap on the 8-byte word at `offset`; the
    /// observed value lands in `buf_vaddr`.
    pub fn comp_swap(
        dst: NodeId,
        ctx: CtxId,
        offset: u64,
        buf_vaddr: u64,
        expected: u64,
        new: u64,
    ) -> Self {
        WqEntry {
            op: RemoteOp::CompSwap,
            operand1: expected,
            operand2: new,
            ..WqEntry::read(dst, ctx, offset, buf_vaddr, 8)
        }
    }

    /// Builds a remote interrupt carrying an 8-byte payload to the
    /// destination's handler core (the §8 extension).
    pub fn interrupt(dst: NodeId, ctx: CtxId, payload: u64) -> Self {
        WqEntry {
            op: RemoteOp::Interrupt,
            operand1: payload,
            ..WqEntry::read(dst, ctx, 0, 0, 0)
        }
    }

    /// Number of cache-line transactions this request unrolls into.
    ///
    /// Atomics are a single transaction regardless of their 8-byte length.
    pub fn lines(&self) -> u32 {
        if self.op.is_atomic() || self.op == RemoteOp::Interrupt || self.length == 0 {
            1
        } else {
            self.length.div_ceil(64) as u32
        }
    }

    /// Serializes to one cache line; `phase` is the ring's current phase
    /// bit (doubles as the valid marker).
    pub fn encode(&self, phase: bool) -> [u8; WQ_ENTRY_BYTES as usize] {
        let mut out = [0u8; WQ_ENTRY_BYTES as usize];
        out[0] = 0x80 | u8::from(phase); // bit7: entry-ever-written marker
        out[1] = self.op.to_wire();
        out[2..4].copy_from_slice(&self.dst.0.to_le_bytes());
        out[4..6].copy_from_slice(&self.ctx.0.to_le_bytes());
        out[8..16].copy_from_slice(&self.offset.to_le_bytes());
        out[16..24].copy_from_slice(&self.buf_vaddr.to_le_bytes());
        out[24..32].copy_from_slice(&self.length.to_le_bytes());
        out[32..40].copy_from_slice(&self.operand1.to_le_bytes());
        out[40..48].copy_from_slice(&self.operand2.to_le_bytes());
        out
    }

    /// Parses one cache line; returns the entry and its phase bit, or
    /// `None` if the line was never written or holds an unknown op.
    pub fn decode(bytes: &[u8; WQ_ENTRY_BYTES as usize]) -> Option<(Self, bool)> {
        if bytes[0] & 0x80 == 0 {
            return None;
        }
        let phase = bytes[0] & 1 != 0;
        let op = RemoteOp::from_wire(bytes[1])?;
        Some((
            WqEntry {
                op,
                dst: NodeId(u16::from_le_bytes([bytes[2], bytes[3]])),
                ctx: CtxId(u16::from_le_bytes([bytes[4], bytes[5]])),
                offset: u64::from_le_bytes(bytes[8..16].try_into().ok()?),
                buf_vaddr: u64::from_le_bytes(bytes[16..24].try_into().ok()?),
                length: u64::from_le_bytes(bytes[24..32].try_into().ok()?),
                operand1: u64::from_le_bytes(bytes[32..40].try_into().ok()?),
                operand2: u64::from_le_bytes(bytes[40..48].try_into().ok()?),
            },
            phase,
        ))
    }
}

/// One completion-queue entry, written by the RMC when a WQ request
/// finishes: "the CQ entry contains the index of the completed WQ request"
/// (§4.1), plus the completion status for error delivery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CqEntry {
    /// Index of the completed WQ entry.
    pub wq_index: u16,
    /// Completion status.
    pub status: Status,
}

impl CqEntry {
    /// Builds a successful completion.
    pub fn ok(wq_index: u16) -> Self {
        CqEntry {
            wq_index,
            status: Status::Ok,
        }
    }

    /// Builds an error completion.
    pub fn error(wq_index: u16, status: Status) -> Self {
        CqEntry { wq_index, status }
    }

    /// Serializes to one cache line with the ring phase bit.
    pub fn encode(&self, phase: bool) -> [u8; CQ_ENTRY_BYTES as usize] {
        let mut out = [0u8; CQ_ENTRY_BYTES as usize];
        out[0] = 0x80 | u8::from(phase);
        out[1] = self.status.to_wire();
        out[2..4].copy_from_slice(&self.wq_index.to_le_bytes());
        out
    }

    /// Parses one cache line; returns the entry and its phase bit.
    pub fn decode(bytes: &[u8; CQ_ENTRY_BYTES as usize]) -> Option<(Self, bool)> {
        if bytes[0] & 0x80 == 0 {
            return None;
        }
        let phase = bytes[0] & 1 != 0;
        let status = Status::from_wire(bytes[1])?;
        Some((
            CqEntry {
                wq_index: u16::from_le_bytes([bytes[2], bytes[3]]),
                status,
            },
            phase,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wq_read_roundtrip() {
        let e = WqEntry::read(NodeId(3), CtxId(1), 4096, 0x1000, 128);
        for phase in [false, true] {
            let bytes = e.encode(phase);
            assert_eq!(WqEntry::decode(&bytes), Some((e, phase)));
        }
    }

    #[test]
    fn wq_write_roundtrip() {
        let e = WqEntry::write(NodeId(0), CtxId(2), 0, 0xFFFF_0000, 64);
        let bytes = e.encode(true);
        let (back, _) = WqEntry::decode(&bytes).unwrap();
        assert_eq!(back.op, RemoteOp::Write);
        assert_eq!(back, e);
    }

    #[test]
    fn wq_atomics_roundtrip() {
        let fa = WqEntry::fetch_add(NodeId(1), CtxId(0), 8, 0x100, 5);
        let (back, _) = WqEntry::decode(&fa.encode(false)).unwrap();
        assert_eq!(back.operand1, 5);
        assert_eq!(back.length, 8);
        assert_eq!(back.lines(), 1);

        let cas = WqEntry::comp_swap(NodeId(1), CtxId(0), 8, 0x100, 42, 43);
        let (back, _) = WqEntry::decode(&cas.encode(false)).unwrap();
        assert_eq!((back.operand1, back.operand2), (42, 43));
    }

    #[test]
    fn unwritten_line_decodes_to_none() {
        let zeros = [0u8; 64];
        assert_eq!(WqEntry::decode(&zeros), None);
        assert_eq!(CqEntry::decode(&zeros), None);
    }

    #[test]
    fn line_unrolling_counts() {
        assert_eq!(WqEntry::read(NodeId(0), CtxId(0), 0, 0, 64).lines(), 1);
        assert_eq!(WqEntry::read(NodeId(0), CtxId(0), 0, 0, 65).lines(), 2);
        assert_eq!(WqEntry::read(NodeId(0), CtxId(0), 0, 0, 8192).lines(), 128);
        assert_eq!(WqEntry::read(NodeId(0), CtxId(0), 0, 0, 0).lines(), 1);
    }

    #[test]
    fn wq_interrupt_roundtrip() {
        let e = WqEntry::interrupt(NodeId(2), CtxId(1), 0xFACE);
        let (back, _) = WqEntry::decode(&e.encode(true)).unwrap();
        assert_eq!(back.op, RemoteOp::Interrupt);
        assert_eq!(back.operand1, 0xFACE);
        assert_eq!(back.lines(), 1);
    }

    #[test]
    fn cq_roundtrip() {
        for phase in [false, true] {
            let e = CqEntry::ok(513);
            assert_eq!(CqEntry::decode(&e.encode(phase)), Some((e, phase)));
        }
        let err = CqEntry::error(7, Status::OutOfBounds);
        let (back, _) = CqEntry::decode(&err.encode(true)).unwrap();
        assert_eq!(back.status, Status::OutOfBounds);
        assert_eq!(back.wq_index, 7);
    }

    #[test]
    fn corrupt_op_rejected() {
        let e = WqEntry::read(NodeId(0), CtxId(0), 0, 0, 64);
        let mut bytes = e.encode(true);
        bytes[1] = 77;
        assert_eq!(WqEntry::decode(&bytes), None);
    }
}
