//! Set-associative cache tag arrays with LRU replacement.
//!
//! Caches here are *timing* structures: they track which lines are resident
//! (tags, dirty bits, LRU order) but never hold data — the functional bytes
//! stay in [`crate::PhysicalMemory`]. This is the classic decoupled
//! functional/timing simulator split and keeps the model honest: a hit or
//! miss changes only latency, never values.

use crate::addr::{PAddr, CACHE_LINE_BYTES};

/// Geometry of one cache level.
///
/// # Example
///
/// ```
/// use sonuma_memory::CacheGeometry;
///
/// // The paper's L1: 32 KB, 2-way, 64 B lines => 256 sets.
/// let l1 = CacheGeometry::new(32 * 1024, 2);
/// assert_eq!(l1.sets(), 256);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheGeometry {
    size_bytes: u64,
    ways: u32,
}

impl CacheGeometry {
    /// Creates a geometry from total size and associativity (64 B lines).
    ///
    /// # Panics
    ///
    /// Panics if the parameters do not yield a power-of-two, nonzero set
    /// count.
    pub fn new(size_bytes: u64, ways: u32) -> Self {
        assert!(ways > 0, "associativity must be nonzero");
        assert!(
            size_bytes.is_multiple_of(CACHE_LINE_BYTES * ways as u64),
            "size not divisible into sets"
        );
        let sets = size_bytes / CACHE_LINE_BYTES / ways as u64;
        assert!(
            sets > 0 && sets.is_power_of_two(),
            "set count must be a nonzero power of two"
        );
        CacheGeometry { size_bytes, ways }
    }

    /// Total capacity in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.size_bytes
    }

    /// Associativity.
    pub fn ways(&self) -> u32 {
        self.ways
    }

    /// Number of sets.
    pub fn sets(&self) -> u64 {
        self.size_bytes / CACHE_LINE_BYTES / self.ways as u64
    }

    /// Set index for a physical address.
    #[inline]
    pub fn set_of(&self, addr: PAddr) -> u64 {
        addr.line_index() & (self.sets() - 1)
    }

    /// Tag for a physical address.
    #[inline]
    pub fn tag_of(&self, addr: PAddr) -> u64 {
        addr.line_index() / self.sets()
    }
}

/// Per-way flag bits (see [`CacheArray`]'s parallel arrays).
const VALID: u8 = 1;
const DIRTY: u8 = 2;

/// Outcome of a cache lookup-with-fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LookupResult {
    /// The line was resident.
    Hit,
    /// The line missed; no dirty line was displaced.
    Miss {
        /// Line index (addr/64) of a clean line that was evicted, if any.
        evicted_clean: Option<u64>,
    },
    /// The line missed and filling it displaced a dirty line that must be
    /// written back.
    MissDirtyEviction {
        /// Line index (addr/64) of the dirty victim.
        victim_line: u64,
    },
}

impl LookupResult {
    /// Whether the lookup hit.
    pub fn is_hit(&self) -> bool {
        matches!(self, LookupResult::Hit)
    }
}

/// One level of set-associative, LRU, write-back cache tags.
///
/// # Example
///
/// ```
/// use sonuma_memory::{CacheArray, CacheGeometry, PAddr};
///
/// let mut l1 = CacheArray::new(CacheGeometry::new(32 * 1024, 2));
/// assert!(!l1.probe(PAddr::new(0)));            // cold
/// l1.access(PAddr::new(0), false);              // fill
/// assert!(l1.probe(PAddr::new(0)));             // now resident
/// ```
#[derive(Debug, Clone)]
pub struct CacheArray {
    geom: CacheGeometry,
    // Way state as parallel arrays (sets × ways, row-major by set), all
    // zero-initialized. `vec![0; n]` allocates zeroed pages straight from
    // the allocator, so building a rack of 4 MB LLC tag arrays costs
    // virtual address space, not hundreds of megabytes of writes — pages
    // materialize only for sets the workload actually touches.
    tags: Vec<u64>,
    lru: Vec<u64>,
    flags: Vec<u8>, // VALID | DIRTY
    tick: u64,
    hits: u64,
    misses: u64,
}

impl CacheArray {
    /// Creates an empty (all-invalid) cache.
    pub fn new(geom: CacheGeometry) -> Self {
        let n = (geom.sets() * geom.ways() as u64) as usize;
        CacheArray {
            geom,
            tags: vec![0; n],
            lru: vec![0; n],
            flags: vec![0; n],
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// The cache geometry.
    pub fn geometry(&self) -> CacheGeometry {
        self.geom
    }

    /// Lifetime hit count.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lifetime miss count.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    fn set_range(&self, set: u64) -> std::ops::Range<usize> {
        let w = self.geom.ways() as usize;
        let base = set as usize * w;
        base..base + w
    }

    /// Whether `addr`'s line is resident, without disturbing LRU or stats.
    pub fn probe(&self, addr: PAddr) -> bool {
        let set = self.geom.set_of(addr);
        let tag = self.geom.tag_of(addr);
        self.set_range(set)
            .any(|i| self.flags[i] & VALID != 0 && self.tags[i] == tag)
    }

    /// Accesses `addr`'s line, filling on miss; `write` marks it dirty.
    ///
    /// Returns what happened, including any eviction the fill caused.
    pub fn access(&mut self, addr: PAddr, write: bool) -> LookupResult {
        self.tick += 1;
        let tick = self.tick;
        let set = self.geom.set_of(addr);
        let tag = self.geom.tag_of(addr);
        let sets = self.geom.sets();
        let range = self.set_range(set);

        // Hit path.
        if let Some(i) = range
            .clone()
            .find(|&i| self.flags[i] & VALID != 0 && self.tags[i] == tag)
        {
            self.lru[i] = tick;
            if write {
                self.flags[i] |= DIRTY;
            }
            self.hits += 1;
            return LookupResult::Hit;
        }

        self.misses += 1;

        // Miss: pick an invalid way, else the LRU way.
        let idx = match range.clone().find(|&i| self.flags[i] & VALID == 0) {
            Some(i) => i,
            None => range
                .min_by_key(|&i| self.lru[i])
                .expect("nonzero associativity"),
        };
        let result = if self.flags[idx] & VALID != 0 {
            let victim_line = self.tags[idx] * sets + set;
            if self.flags[idx] & DIRTY != 0 {
                LookupResult::MissDirtyEviction { victim_line }
            } else {
                LookupResult::Miss {
                    evicted_clean: Some(victim_line),
                }
            }
        } else {
            LookupResult::Miss {
                evicted_clean: None,
            }
        };
        self.tags[idx] = tag;
        self.lru[idx] = tick;
        self.flags[idx] = VALID | if write { DIRTY } else { 0 };
        result
    }

    /// Invalidates `addr`'s line if resident; returns whether it was dirty.
    ///
    /// Used for coherence: a remote writer invalidates other agents' copies.
    pub fn invalidate(&mut self, addr: PAddr) -> Option<bool> {
        let set = self.geom.set_of(addr);
        let tag = self.geom.tag_of(addr);
        for i in self.set_range(set) {
            if self.flags[i] & VALID != 0 && self.tags[i] == tag {
                let dirty = self.flags[i] & DIRTY != 0;
                self.flags[i] &= !VALID;
                return Some(dirty);
            }
        }
        None
    }

    /// Downgrades `addr`'s line to clean (e.g. after a sharer reads a line
    /// this cache held modified). Returns whether the line was present.
    pub fn clean(&mut self, addr: PAddr) -> bool {
        let set = self.geom.set_of(addr);
        let tag = self.geom.tag_of(addr);
        for i in self.set_range(set) {
            if self.flags[i] & VALID != 0 && self.tags[i] == tag {
                self.flags[i] &= !DIRTY;
                return true;
            }
        }
        false
    }

    /// Number of resident lines (for tests and occupancy stats).
    pub fn resident_lines(&self) -> usize {
        self.flags.iter().filter(|&&f| f & VALID != 0).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> CacheArray {
        // 4 sets x 2 ways x 64B = 512B cache: easy to force evictions.
        CacheArray::new(CacheGeometry::new(512, 2))
    }

    fn line(i: u64) -> PAddr {
        PAddr::new(i * CACHE_LINE_BYTES)
    }

    #[test]
    fn geometry_decomposition() {
        let g = CacheGeometry::new(4 * 1024 * 1024, 16);
        assert_eq!(g.sets(), 4096);
        let a = PAddr::new(0x12345678);
        assert_eq!(g.set_of(a), (0x12345678u64 / 64) % 4096);
        assert_eq!(g.tag_of(a), (0x12345678u64 / 64) / 4096);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_geometry_panics() {
        CacheGeometry::new(192, 1);
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = tiny();
        assert!(!c.access(line(0), false).is_hit());
        assert!(c.access(line(0), false).is_hit());
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn conflict_eviction_lru() {
        let mut c = tiny();
        // Lines 0, 4, 8 all map to set 0 in a 4-set cache.
        c.access(line(0), false);
        c.access(line(4), false);
        c.access(line(0), false); // 0 is now MRU, 4 is LRU
        match c.access(line(8), false) {
            LookupResult::Miss {
                evicted_clean: Some(v),
            } => assert_eq!(v, 4),
            other => panic!("expected clean eviction of line 4, got {other:?}"),
        }
        assert!(c.probe(line(0)));
        assert!(!c.probe(line(4)));
        assert!(c.probe(line(8)));
    }

    #[test]
    fn dirty_eviction_reports_victim() {
        let mut c = tiny();
        c.access(line(0), true); // dirty
        c.access(line(4), false);
        c.access(line(4), false);
        // line 0 is LRU and dirty; filling line 8 must report a writeback.
        match c.access(line(8), false) {
            LookupResult::MissDirtyEviction { victim_line } => assert_eq!(victim_line, 0),
            other => panic!("expected dirty eviction, got {other:?}"),
        }
    }

    #[test]
    fn write_marks_dirty_on_hit() {
        let mut c = tiny();
        c.access(line(0), false);
        c.access(line(0), true); // dirtied by hit
        c.access(line(4), false);
        match c.access(line(8), false) {
            LookupResult::MissDirtyEviction { victim_line } => assert_eq!(victim_line, 0),
            other => panic!("expected dirty eviction, got {other:?}"),
        }
    }

    #[test]
    fn invalidate_reports_dirtiness() {
        let mut c = tiny();
        c.access(line(0), true);
        c.access(line(1), false);
        assert_eq!(c.invalidate(line(0)), Some(true));
        assert_eq!(c.invalidate(line(1)), Some(false));
        assert_eq!(c.invalidate(line(2)), None);
        assert!(!c.probe(line(0)));
    }

    #[test]
    fn clean_downgrades() {
        let mut c = tiny();
        c.access(line(0), true);
        assert!(c.clean(line(0)));
        // After cleaning, evicting it is a clean eviction.
        c.access(line(4), false);
        c.access(line(4), false);
        match c.access(line(8), false) {
            LookupResult::Miss {
                evicted_clean: Some(0),
            } => {}
            other => panic!("expected clean eviction of line 0, got {other:?}"),
        }
    }

    #[test]
    fn probe_does_not_touch_lru() {
        let mut c = tiny();
        c.access(line(0), false);
        c.access(line(4), false);
        // Probing 0 must not promote it.
        assert!(c.probe(line(0)));
        match c.access(line(8), false) {
            LookupResult::Miss {
                evicted_clean: Some(v),
            } => assert_eq!(v, 0),
            other => panic!("expected eviction of line 0, got {other:?}"),
        }
    }

    #[test]
    fn resident_count() {
        let mut c = tiny();
        assert_eq!(c.resident_lines(), 0);
        c.access(line(0), false);
        c.access(line(1), false);
        assert_eq!(c.resident_lines(), 2);
    }
}
