//! Address newtypes and layout constants.

use std::fmt;

/// Cache line size in bytes — the granularity of all soNUMA remote
/// transactions (§4.1 of the paper).
pub const CACHE_LINE_BYTES: u64 = 64;

/// Page size in bytes (Table 1: 8 KB pages).
pub const PAGE_BYTES: u64 = 8192;

/// A virtual address within some context's address space.
///
/// # Example
///
/// ```
/// use sonuma_memory::VAddr;
///
/// let va = VAddr::new(0x2040);
/// assert_eq!(va.page_number(), 1);
/// assert_eq!(va.page_offset(), 0x40);
/// assert_eq!(va.line_offset(), 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VAddr(u64);

impl VAddr {
    /// Wraps a raw virtual address.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        VAddr(raw)
    }

    /// The raw address value.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Virtual page number (8 KB pages).
    #[inline]
    pub const fn page_number(self) -> u64 {
        self.0 / PAGE_BYTES
    }

    /// Offset within the page.
    #[inline]
    pub const fn page_offset(self) -> u64 {
        self.0 % PAGE_BYTES
    }

    /// Offset within the cache line.
    #[inline]
    pub const fn line_offset(self) -> u64 {
        self.0 % CACHE_LINE_BYTES
    }

    /// The address rounded down to its cache line.
    #[inline]
    pub const fn line_base(self) -> VAddr {
        VAddr(self.0 - self.0 % CACHE_LINE_BYTES)
    }

    /// This address displaced by `delta` bytes.
    #[inline]
    pub const fn offset(self, delta: u64) -> VAddr {
        VAddr(self.0 + delta)
    }

    /// Whether the address is aligned to `align` bytes (power of two).
    #[inline]
    pub const fn is_aligned(self, align: u64) -> bool {
        self.0.is_multiple_of(align)
    }
}

impl fmt::Display for VAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "va:{:#x}", self.0)
    }
}

impl fmt::LowerHex for VAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

/// A physical address within one node's memory.
///
/// Physical addresses never leave a node: the soNUMA protocol ships
/// `<ctx_id, offset>` pairs and each node translates locally (§6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PAddr(u64);

impl PAddr {
    /// Wraps a raw physical address.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        PAddr(raw)
    }

    /// The raw address value.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Physical frame number (8 KB frames).
    #[inline]
    pub const fn frame_number(self) -> u64 {
        self.0 / PAGE_BYTES
    }

    /// Offset within the frame.
    #[inline]
    pub const fn frame_offset(self) -> u64 {
        self.0 % PAGE_BYTES
    }

    /// Global cache line index (address / 64).
    #[inline]
    pub const fn line_index(self) -> u64 {
        self.0 / CACHE_LINE_BYTES
    }

    /// The address rounded down to its cache line.
    #[inline]
    pub const fn line_base(self) -> PAddr {
        PAddr(self.0 - self.0 % CACHE_LINE_BYTES)
    }

    /// This address displaced by `delta` bytes.
    #[inline]
    pub const fn offset(self, delta: u64) -> PAddr {
        PAddr(self.0 + delta)
    }
}

impl fmt::Display for PAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pa:{:#x}", self.0)
    }
}

impl fmt::LowerHex for PAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

/// Splits the byte range `[addr, addr+len)` into per-cache-line subranges.
///
/// Each item is `(line_base_addr, offset_in_range, len_in_line)`. Used by
/// everything that moves data at line granularity (the RMC's unrolling, the
/// hierarchy's timing charges).
///
/// # Example
///
/// ```
/// use sonuma_memory::addr::split_into_lines;
///
/// let parts: Vec<_> = split_into_lines(60, 10).collect();
/// assert_eq!(parts, vec![(0, 0, 4), (64, 4, 6)]);
/// ```
pub fn split_into_lines(addr: u64, len: u64) -> impl Iterator<Item = (u64, u64, u64)> {
    let mut cur = addr;
    let end = addr + len;
    std::iter::from_fn(move || {
        if cur >= end {
            return None;
        }
        let line = cur - cur % CACHE_LINE_BYTES;
        let take = (line + CACHE_LINE_BYTES - cur).min(end - cur);
        let item = (line, cur - addr, take);
        cur += take;
        Some(item)
    })
}

/// Number of cache lines touched by the byte range `[addr, addr+len)`.
pub fn lines_spanned(addr: u64, len: u64) -> u64 {
    if len == 0 {
        return 0;
    }
    let first = addr / CACHE_LINE_BYTES;
    let last = (addr + len - 1) / CACHE_LINE_BYTES;
    last - first + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vaddr_decomposition() {
        let va = VAddr::new(PAGE_BYTES * 3 + 100);
        assert_eq!(va.page_number(), 3);
        assert_eq!(va.page_offset(), 100);
        assert_eq!(va.line_offset(), 36);
        assert_eq!(va.line_base(), VAddr::new(PAGE_BYTES * 3 + 64));
        assert!(va.offset(28).is_aligned(64));
    }

    #[test]
    fn paddr_decomposition() {
        let pa = PAddr::new(PAGE_BYTES + 65);
        assert_eq!(pa.frame_number(), 1);
        assert_eq!(pa.frame_offset(), 65);
        assert_eq!(pa.line_index(), (PAGE_BYTES + 64) / 64);
        assert_eq!(pa.line_base().raw(), PAGE_BYTES + 64);
    }

    #[test]
    fn split_lines_aligned() {
        let parts: Vec<_> = split_into_lines(128, 128).collect();
        assert_eq!(parts, vec![(128, 0, 64), (192, 64, 64)]);
    }

    #[test]
    fn split_lines_unaligned_head_and_tail() {
        let parts: Vec<_> = split_into_lines(60, 10).collect();
        assert_eq!(parts, vec![(0, 0, 4), (64, 4, 6)]);
        let total: u64 = parts.iter().map(|p| p.2).sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn split_lines_within_one_line() {
        let parts: Vec<_> = split_into_lines(10, 20).collect();
        assert_eq!(parts, vec![(0, 0, 20)]);
    }

    #[test]
    fn split_lines_empty() {
        assert_eq!(split_into_lines(100, 0).count(), 0);
    }

    #[test]
    fn lines_spanned_counts() {
        assert_eq!(lines_spanned(0, 0), 0);
        assert_eq!(lines_spanned(0, 1), 1);
        assert_eq!(lines_spanned(0, 64), 1);
        assert_eq!(lines_spanned(0, 65), 2);
        assert_eq!(lines_spanned(63, 2), 2);
        assert_eq!(lines_spanned(64, 8192), 128);
    }

    #[test]
    fn display_forms() {
        assert_eq!(VAddr::new(0x10).to_string(), "va:0x10");
        assert_eq!(PAddr::new(0x20).to_string(), "pa:0x20");
        assert_eq!(format!("{:x}", VAddr::new(255)), "ff");
    }
}
