//! The node's cache-coherent memory hierarchy as a latency calculator.
//!
//! Each *agent* (a core, or the RMC — which the paper integrates "into the
//! node's local coherence hierarchy via a private L1 cache", §4) owns an L1
//! tag array; all agents share one LLC and one DRAM channel. An access
//! returns the latency it would take, while maintaining MESI-style line
//! ownership so that producer/consumer interactions between a core and the
//! RMC (WQ entries, CQ entries, buffers) pay explicit cache-to-cache
//! transfer costs instead of magic zero-cost sharing. This is the mechanism
//! behind the paper's claim that RMC/core communication avoids PCIe DMA:
//! here it costs a ~15 ns on-chip transfer rather than ~450 ns per crossing.

use sonuma_sim::SimTime;

use crate::addr::PAddr;
use crate::cache::{CacheArray, CacheGeometry, LookupResult};
use crate::dram::{DramConfig, DramModel};
use crate::fasthash::FastMap;

/// Identifies an agent (core or RMC) attached to the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AgentId(pub usize);

/// Whether an access reads or writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// Load: may share the line.
    Read,
    /// Store: acquires exclusive ownership.
    Write,
}

/// Where an access was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HitLevel {
    /// Own L1.
    L1,
    /// Shared LLC.
    L2,
    /// Another agent's L1 (dirty), via cache-to-cache transfer.
    CacheToCache,
    /// DRAM.
    Dram,
}

/// Latency and provenance of one memory access.
#[derive(Debug, Clone, Copy)]
pub struct AccessResult {
    /// Start-to-data latency of this access.
    pub latency: SimTime,
    /// The level that supplied the line.
    pub level: HitLevel,
}

/// Timing and geometry parameters of the hierarchy (paper Table 1).
#[derive(Debug, Clone, Copy)]
pub struct HierarchyConfig {
    /// L1 geometry (per agent).
    pub l1_geometry: CacheGeometry,
    /// L1 hit latency (tag+data; 3 cycles at 2 GHz).
    pub l1_latency: SimTime,
    /// Shared LLC geometry.
    pub l2_geometry: CacheGeometry,
    /// LLC hit latency (6 cycles at 2 GHz).
    pub l2_latency: SimTime,
    /// Latency of a dirty cache-to-cache transfer between two agents' L1s.
    pub cache_to_cache: SimTime,
    /// DRAM channel configuration.
    pub dram: DramConfig,
}

impl HierarchyConfig {
    /// Table 1 parameters: 32 KB 2-way L1 (3 cycles), 4 MB 16-way LLC
    /// (6 cycles), DDR3-1600, 15 ns cache-to-cache transfers.
    pub fn table1() -> Self {
        HierarchyConfig {
            l1_geometry: CacheGeometry::new(32 * 1024, 2),
            l1_latency: SimTime::from_cycles(3, 2_000_000_000),
            l2_geometry: CacheGeometry::new(4 * 1024 * 1024, 16),
            l2_latency: SimTime::from_cycles(6, 2_000_000_000),
            cache_to_cache: SimTime::from_ns(15),
            dram: DramConfig::ddr3_1600(),
        }
    }

    /// Table 1 parameters scaled to an `n`-core multiprocessor with 4 MB of
    /// LLC per core — the configuration of the `SHM(pthreads)` PageRank
    /// baseline, which provisions aggregate cache equal to the distributed
    /// setup so that "no benefits can be attributed to larger cache
    /// capacity" (§7.5).
    pub fn table1_multicore(n: usize) -> Self {
        let mut c = Self::table1();
        c.l2_geometry = CacheGeometry::new(4 * 1024 * 1024 * n as u64, 16);
        c
    }
}

impl Default for HierarchyConfig {
    fn default() -> Self {
        Self::table1()
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct LineState {
    /// Bitmask of agents whose L1 may hold the line.
    holders: u64,
    /// Agent holding the line modified, if any.
    dirty_owner: Option<AgentId>,
}

/// A node's memory hierarchy: per-agent L1s, shared LLC, one DRAM channel.
///
/// # Example
///
/// ```
/// use sonuma_memory::{AccessKind, AgentId, HierarchyConfig, HitLevel, MemoryHierarchy, PAddr};
/// use sonuma_sim::SimTime;
///
/// let mut h = MemoryHierarchy::new(HierarchyConfig::table1(), 2);
/// let a = PAddr::new(0x1000);
/// let first = h.access(AgentId(0), a, AccessKind::Read, SimTime::ZERO);
/// assert_eq!(first.level, HitLevel::Dram);
/// let second = h.access(AgentId(0), a, AccessKind::Read, SimTime::ZERO);
/// assert_eq!(second.level, HitLevel::L1);
/// assert!(second.latency < first.latency);
/// ```
#[derive(Debug)]
pub struct MemoryHierarchy {
    config: HierarchyConfig,
    l1s: Vec<CacheArray>,
    l2: CacheArray,
    dram: DramModel,
    /// Line number → coherence state. Fast-hashed: probed several times
    /// per access, never iterated.
    lines: FastMap<u64, LineState>,
    hits_by_level: [u64; 4],
}

impl MemoryHierarchy {
    /// Creates a hierarchy with `agents` L1 caches.
    ///
    /// # Panics
    ///
    /// Panics if `agents` is zero or exceeds 64.
    pub fn new(config: HierarchyConfig, agents: usize) -> Self {
        assert!(agents > 0 && agents <= 64, "1..=64 agents supported");
        MemoryHierarchy {
            config,
            l1s: (0..agents)
                .map(|_| CacheArray::new(config.l1_geometry))
                .collect(),
            l2: CacheArray::new(config.l2_geometry),
            dram: DramModel::new(config.dram),
            lines: FastMap::default(),
            hits_by_level: [0; 4],
        }
    }

    /// The hierarchy configuration.
    pub fn config(&self) -> &HierarchyConfig {
        &self.config
    }

    /// Number of attached agents.
    pub fn agents(&self) -> usize {
        self.l1s.len()
    }

    /// Accesses per level: `[L1, L2, cache-to-cache, DRAM]`.
    pub fn hits_by_level(&self) -> [u64; 4] {
        self.hits_by_level
    }

    /// The DRAM channel (for bandwidth statistics).
    pub fn dram(&self) -> &DramModel {
        &self.dram
    }

    /// Cache lines with materialized state across all levels, plus the
    /// coherence lines tracked so far. The tag arrays are virtually sized
    /// by geometry but zero-page-backed until touched, so this — not
    /// `size_bytes()` — tracks what the hierarchy actually costs.
    pub fn resident_lines(&self) -> usize {
        self.l1s
            .iter()
            .map(CacheArray::resident_lines)
            .sum::<usize>()
            + self.l2.resident_lines()
            + self.lines.len()
    }

    fn note(&mut self, level: HitLevel) {
        let i = match level {
            HitLevel::L1 => 0,
            HitLevel::L2 => 1,
            HitLevel::CacheToCache => 2,
            HitLevel::Dram => 3,
        };
        self.hits_by_level[i] += 1;
    }

    fn apply_l1_side_effects(&mut self, agent: AgentId, result: LookupResult) {
        // Keep the coherence map consistent with L1 evictions; dirty
        // victims conceptually write back into the LLC.
        let evicted = match result {
            LookupResult::Hit => None,
            LookupResult::Miss { evicted_clean } => evicted_clean,
            LookupResult::MissDirtyEviction { victim_line } => {
                self.l2.access(PAddr::new(victim_line * 64), true);
                Some(victim_line)
            }
        };
        if let Some(line) = evicted {
            if let Some(st) = self.lines.get_mut(&line) {
                st.holders &= !(1u64 << agent.0);
                if st.dirty_owner == Some(agent) {
                    st.dirty_owner = None;
                }
            }
        }
    }

    fn apply_l2_side_effects(&mut self, now: SimTime, result: LookupResult) {
        if let LookupResult::MissDirtyEviction { .. } = result {
            // LLC writeback consumes DRAM bandwidth off the critical path.
            self.dram.access(now, 64);
        }
    }

    /// Performs one cache-line access by `agent` starting at `now`.
    ///
    /// Returns the latency to data and the supplying level, and updates tag
    /// and ownership state. Accesses never span lines: callers split larger
    /// transfers with [`crate::addr::split_into_lines`].
    pub fn access(
        &mut self,
        agent: AgentId,
        addr: PAddr,
        kind: AccessKind,
        now: SimTime,
    ) -> AccessResult {
        assert!(agent.0 < self.l1s.len(), "unknown agent {agent:?}");
        let line = addr.line_index();
        let write = kind == AccessKind::Write;
        let me = 1u64 << agent.0;

        let mut latency = self.config.l1_latency;
        let l1_result = self.l1s[agent.0].access(addr, write);
        self.apply_l1_side_effects(agent, l1_result);

        let state = self.lines.entry(line).or_default();
        let holders_others = state.holders & !me;
        let dirty_other = match state.dirty_owner {
            Some(o) if o != agent => Some(o),
            _ => None,
        };

        if l1_result.is_hit() && dirty_other.is_none() {
            // L1 hit. A write to a shared line pays an upgrade (invalidate
            // sharers through the LLC's directory).
            if write && holders_others != 0 {
                latency += self.config.l2_latency;
                self.invalidate_others(line, agent);
            }
            let state = self.lines.entry(line).or_default();
            state.holders |= me;
            if write {
                state.dirty_owner = Some(agent);
            }
            self.note(HitLevel::L1);
            return AccessResult {
                latency,
                level: HitLevel::L1,
            };
        }

        // L1 miss (or stale hit while another agent owns the line dirty):
        // go through the LLC lookup.
        latency += self.config.l2_latency;

        let level = if let Some(owner) = dirty_other {
            // Dirty in another agent's L1: cache-to-cache transfer. The
            // owner's copy is downgraded (read) or invalidated (write), and
            // the line lands in the LLC.
            latency += self.config.cache_to_cache;
            if write {
                self.l1s[owner.0].invalidate(addr);
            } else {
                self.l1s[owner.0].clean(addr);
            }
            let l2r = self.l2.access(addr, true);
            self.apply_l2_side_effects(now, l2r);
            HitLevel::CacheToCache
        } else {
            let l2r = self.l2.access(addr, write);
            self.apply_l2_side_effects(now, l2r);
            if l2r.is_hit() {
                HitLevel::L2
            } else {
                // Miss to DRAM; the channel model adds queueing under load.
                let issue = now + latency;
                let done = self.dram.access(issue, 64);
                latency = done - now;
                HitLevel::Dram
            }
        };

        // Fill our L1 (unless a stale tag already matched, in which case the
        // earlier access() call refreshed it).
        if !l1_result.is_hit() {
            // already filled by the access() above
        }

        let state = self.lines.entry(line).or_default();
        if write {
            self.invalidate_others(line, agent);
            let state = self.lines.entry(line).or_default();
            state.holders = me;
            state.dirty_owner = Some(agent);
        } else {
            state.holders |= me;
            if let Some(owner) = dirty_other {
                // Value now clean in LLC; previous owner keeps a clean copy.
                let state = self.lines.entry(line).or_default();
                if state.dirty_owner == Some(owner) {
                    state.dirty_owner = None;
                }
            }
        }

        self.note(level);
        AccessResult { latency, level }
    }

    fn invalidate_others(&mut self, line: u64, keep: AgentId) {
        let state = self.lines.entry(line).or_default();
        let holders = state.holders;
        state.holders &= 1u64 << keep.0;
        if let Some(owner) = state.dirty_owner {
            if owner != keep {
                state.dirty_owner = None;
            }
        }
        let addr = PAddr::new(line * 64);
        for i in 0..self.l1s.len() {
            if i != keep.0 && holders & (1u64 << i) != 0 {
                self.l1s[i].invalidate(addr);
            }
        }
    }

    /// Latency of an uncontended local DRAM access — the paper's baseline
    /// "local memory" figure that remote reads are compared against (~60 ns
    /// device + lookup overheads).
    pub fn local_dram_latency(&self) -> SimTime {
        self.config.l1_latency + self.config.l2_latency + self.config.dram.access_latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h2() -> MemoryHierarchy {
        MemoryHierarchy::new(HierarchyConfig::table1(), 2)
    }

    const A: AgentId = AgentId(0);
    const B: AgentId = AgentId(1);

    #[test]
    fn cold_read_goes_to_dram_then_l1() {
        let mut h = h2();
        let addr = PAddr::new(0x4000);
        let r1 = h.access(A, addr, AccessKind::Read, SimTime::ZERO);
        assert_eq!(r1.level, HitLevel::Dram);
        assert!(r1.latency >= SimTime::from_ns(60));
        let r2 = h.access(A, addr, AccessKind::Read, SimTime::ZERO);
        assert_eq!(r2.level, HitLevel::L1);
        assert_eq!(r2.latency, h.config().l1_latency);
    }

    #[test]
    fn second_agent_hits_in_llc() {
        let mut h = h2();
        let addr = PAddr::new(0x4000);
        h.access(A, addr, AccessKind::Read, SimTime::ZERO);
        let r = h.access(B, addr, AccessKind::Read, SimTime::ZERO);
        assert_eq!(r.level, HitLevel::L2);
        assert_eq!(r.latency, h.config().l1_latency + h.config().l2_latency);
    }

    #[test]
    fn dirty_line_transfers_cache_to_cache() {
        let mut h = h2();
        let addr = PAddr::new(0x8000);
        h.access(A, addr, AccessKind::Write, SimTime::ZERO); // A owns dirty
        let r = h.access(B, addr, AccessKind::Read, SimTime::ZERO);
        assert_eq!(r.level, HitLevel::CacheToCache);
        assert_eq!(
            r.latency,
            h.config().l1_latency + h.config().l2_latency + h.config().cache_to_cache
        );
        // After the transfer the line is clean and shared: B re-reads in L1.
        let r2 = h.access(B, addr, AccessKind::Read, SimTime::ZERO);
        assert_eq!(r2.level, HitLevel::L1);
    }

    #[test]
    fn write_invalidates_sharers() {
        let mut h = h2();
        let addr = PAddr::new(0xC000);
        h.access(A, addr, AccessKind::Read, SimTime::ZERO);
        h.access(B, addr, AccessKind::Read, SimTime::ZERO);
        // B writes: A's copy must be invalidated.
        h.access(B, addr, AccessKind::Write, SimTime::ZERO);
        let r = h.access(A, addr, AccessKind::Read, SimTime::ZERO);
        assert_eq!(
            r.level,
            HitLevel::CacheToCache,
            "A must fetch B's dirty line"
        );
    }

    #[test]
    fn write_upgrade_on_shared_hit_costs_more_than_plain_hit() {
        let mut h = h2();
        let addr = PAddr::new(0x10000);
        h.access(A, addr, AccessKind::Read, SimTime::ZERO);
        h.access(B, addr, AccessKind::Read, SimTime::ZERO);
        let up = h.access(A, addr, AccessKind::Write, SimTime::ZERO);
        assert_eq!(up.level, HitLevel::L1);
        assert_eq!(up.latency, h.config().l1_latency + h.config().l2_latency);
        // Subsequent write by the same agent is a plain L1 hit.
        let again = h.access(A, addr, AccessKind::Write, SimTime::ZERO);
        assert_eq!(again.latency, h.config().l1_latency);
    }

    #[test]
    fn ping_pong_write_sharing_pays_every_time() {
        let mut h = h2();
        let addr = PAddr::new(0x14000);
        for _ in 0..4 {
            let ra = h.access(A, addr, AccessKind::Write, SimTime::ZERO);
            let rb = h.access(B, addr, AccessKind::Write, SimTime::ZERO);
            // After warm-up, each write misses to the other's dirty copy.
            if h.hits_by_level()[2] > 1 {
                assert_eq!(ra.level, HitLevel::CacheToCache);
                assert_eq!(rb.level, HitLevel::CacheToCache);
            }
        }
    }

    #[test]
    fn local_dram_latency_matches_table1_ballpark() {
        let h = h2();
        let t = h.local_dram_latency();
        // 1.5 + 3 + 60 = 64.5 ns — the paper's ~60 ns local DRAM figure.
        assert_eq!(t, SimTime::from_ps(64_500));
    }

    #[test]
    fn dram_queueing_raises_latency_under_load() {
        let mut h = h2();
        // Stream distinct lines back-to-back at t=0: later ones queue.
        let first = h.access(A, PAddr::new(0), AccessKind::Read, SimTime::ZERO);
        let mut last = first;
        for i in 1..200u64 {
            last = h.access(A, PAddr::new(i * 64), AccessKind::Read, SimTime::ZERO);
        }
        assert!(last.latency > first.latency, "queueing must add latency");
    }

    #[test]
    fn stats_track_levels() {
        let mut h = h2();
        let addr = PAddr::new(0x18000);
        h.access(A, addr, AccessKind::Read, SimTime::ZERO); // DRAM
        h.access(A, addr, AccessKind::Read, SimTime::ZERO); // L1
        h.access(B, addr, AccessKind::Read, SimTime::ZERO); // L2
        let [l1, l2, c2c, dram] = h.hits_by_level();
        assert_eq!((l1, l2, c2c, dram), (1, 1, 0, 1));
    }

    #[test]
    #[should_panic(expected = "unknown agent")]
    fn unknown_agent_panics() {
        let mut h = h2();
        h.access(AgentId(5), PAddr::new(0), AccessKind::Read, SimTime::ZERO);
    }
}
