//! Page tables, frame allocation, and per-context address spaces.
//!
//! soNUMA's OS "interacts with the virtual memory subsystem to allocate and
//! pin pages in physical memory" (§5.1), and the RMC walks the same page
//! tables the OS maintains. We model a per-context address space with a
//! flat page table (the walk *cost* is a configurable number of memory
//! references, standing in for a radix walk) and a bump-with-free-list frame
//! allocator per node.

use std::collections::BTreeMap;

use crate::addr::{PAddr, VAddr, PAGE_BYTES};
use crate::error::MemError;

/// Allocates physical frames within one node.
///
/// # Example
///
/// ```
/// use sonuma_memory::FrameAllocator;
///
/// let mut alloc = FrameAllocator::new(4 << 20); // 4 MiB = 512 frames
/// let f = alloc.alloc().unwrap();
/// alloc.free(f);
/// assert_eq!(alloc.alloc().unwrap(), f); // free list is reused first
/// ```
#[derive(Debug, Clone)]
pub struct FrameAllocator {
    total_frames: u64,
    next_fresh: u64,
    free_list: Vec<u64>,
}

impl FrameAllocator {
    /// Creates an allocator over `capacity_bytes` of physical memory.
    pub fn new(capacity_bytes: u64) -> Self {
        FrameAllocator {
            total_frames: capacity_bytes / PAGE_BYTES,
            next_fresh: 0,
            free_list: Vec::new(),
        }
    }

    /// Allocates one frame.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfFrames`] when memory is exhausted.
    pub fn alloc(&mut self) -> Result<u64, MemError> {
        if let Some(f) = self.free_list.pop() {
            return Ok(f);
        }
        if self.next_fresh < self.total_frames {
            let f = self.next_fresh;
            self.next_fresh += 1;
            Ok(f)
        } else {
            Err(MemError::OutOfFrames)
        }
    }

    /// Returns a frame to the allocator.
    pub fn free(&mut self, frame: u64) {
        debug_assert!(frame < self.total_frames);
        self.free_list.push(frame);
    }

    /// Frames still available.
    pub fn available(&self) -> u64 {
        self.total_frames - self.next_fresh + self.free_list.len() as u64
    }
}

/// One context's virtual address space: a page table plus walk cost model.
///
/// # Example
///
/// ```
/// use sonuma_memory::{AddressSpace, FrameAllocator, VAddr};
///
/// let mut alloc = FrameAllocator::new(1 << 20);
/// let mut space = AddressSpace::new(7);
/// space.map_range(VAddr::new(0x10000), 3 * 8192, &mut alloc).unwrap();
/// let pa = space.translate(VAddr::new(0x10000 + 100)).unwrap();
/// assert_eq!(pa.frame_offset(), 100);
/// ```
#[derive(Debug, Clone)]
pub struct AddressSpace {
    asid: u32,
    table: BTreeMap<u64, u64>, // vpn -> pfn
}

impl AddressSpace {
    /// Creates an empty address space with identifier `asid`.
    pub fn new(asid: u32) -> Self {
        AddressSpace {
            asid,
            table: BTreeMap::new(),
        }
    }

    /// The address-space identifier (tags TLB entries).
    pub fn asid(&self) -> u32 {
        self.asid
    }

    /// Number of mapped pages.
    pub fn mapped_pages(&self) -> usize {
        self.table.len()
    }

    /// Maps `len` bytes starting at page-aligned `base`, allocating frames.
    ///
    /// # Errors
    ///
    /// * [`MemError::AlreadyMapped`] if any page in the range is mapped.
    /// * [`MemError::OutOfFrames`] if the node runs out of memory (pages
    ///   mapped before the failure stay mapped).
    ///
    /// # Panics
    ///
    /// Panics if `base` is not page-aligned or `len` is zero.
    pub fn map_range(
        &mut self,
        base: VAddr,
        len: u64,
        alloc: &mut FrameAllocator,
    ) -> Result<(), MemError> {
        assert!(base.is_aligned(PAGE_BYTES), "unaligned mapping base {base}");
        assert!(len > 0, "empty mapping");
        let first = base.page_number();
        let pages = len.div_ceil(PAGE_BYTES);
        for vpn in first..first + pages {
            if self.table.contains_key(&vpn) {
                return Err(MemError::AlreadyMapped(VAddr::new(vpn * PAGE_BYTES)));
            }
        }
        for vpn in first..first + pages {
            let pfn = alloc.alloc()?;
            self.table.insert(vpn, pfn);
        }
        Ok(())
    }

    /// Unmaps `len` bytes starting at `base`, returning frames to `alloc`.
    pub fn unmap_range(&mut self, base: VAddr, len: u64, alloc: &mut FrameAllocator) {
        let first = base.page_number();
        let pages = len.div_ceil(PAGE_BYTES);
        for vpn in first..first + pages {
            if let Some(pfn) = self.table.remove(&vpn) {
                alloc.free(pfn);
            }
        }
    }

    /// Translates a virtual address to a physical address.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::Unmapped`] if no mapping covers `va`.
    pub fn translate(&self, va: VAddr) -> Result<PAddr, MemError> {
        let pfn = self
            .table
            .get(&va.page_number())
            .ok_or(MemError::Unmapped(va))?;
        Ok(PAddr::new(pfn * PAGE_BYTES + va.page_offset()))
    }

    /// Number of memory references a hardware walk of this table performs.
    ///
    /// Stands in for a two-level radix walk; the hierarchy charges this many
    /// dependent memory accesses on a TLB miss.
    pub fn walk_references(&self) -> u32 {
        2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocator_bump_and_free_list() {
        let mut a = FrameAllocator::new(3 * PAGE_BYTES);
        assert_eq!(a.available(), 3);
        let f0 = a.alloc().unwrap();
        let f1 = a.alloc().unwrap();
        assert_ne!(f0, f1);
        a.free(f0);
        assert_eq!(a.alloc().unwrap(), f0);
        let _ = a.alloc().unwrap();
        assert_eq!(a.alloc(), Err(MemError::OutOfFrames));
    }

    #[test]
    fn map_translate_roundtrip() {
        let mut alloc = FrameAllocator::new(1 << 20);
        let mut s = AddressSpace::new(1);
        s.map_range(VAddr::new(0), 2 * PAGE_BYTES, &mut alloc)
            .unwrap();
        let pa0 = s.translate(VAddr::new(10)).unwrap();
        let pa1 = s.translate(VAddr::new(PAGE_BYTES + 10)).unwrap();
        assert_eq!(pa0.frame_offset(), 10);
        assert_eq!(pa1.frame_offset(), 10);
        assert_ne!(pa0.frame_number(), pa1.frame_number());
    }

    #[test]
    fn translate_unmapped_fails() {
        let s = AddressSpace::new(1);
        assert_eq!(
            s.translate(VAddr::new(0x5000)),
            Err(MemError::Unmapped(VAddr::new(0x5000)))
        );
    }

    #[test]
    fn double_map_rejected_atomically() {
        let mut alloc = FrameAllocator::new(1 << 20);
        let mut s = AddressSpace::new(1);
        s.map_range(VAddr::new(PAGE_BYTES * 2), PAGE_BYTES, &mut alloc)
            .unwrap();
        // Overlapping range: refused before allocating anything.
        let avail_before = alloc.available();
        let err = s
            .map_range(VAddr::new(0), PAGE_BYTES * 4, &mut alloc)
            .unwrap_err();
        assert!(matches!(err, MemError::AlreadyMapped(_)));
        assert_eq!(alloc.available(), avail_before);
        assert_eq!(s.mapped_pages(), 1);
    }

    #[test]
    fn unmap_returns_frames() {
        let mut alloc = FrameAllocator::new(4 * PAGE_BYTES);
        let mut s = AddressSpace::new(1);
        s.map_range(VAddr::new(0), 4 * PAGE_BYTES, &mut alloc)
            .unwrap();
        assert_eq!(alloc.available(), 0);
        s.unmap_range(VAddr::new(0), 2 * PAGE_BYTES, &mut alloc);
        assert_eq!(alloc.available(), 2);
        assert!(s.translate(VAddr::new(0)).is_err());
        assert!(s.translate(VAddr::new(2 * PAGE_BYTES)).is_ok());
    }

    #[test]
    fn partial_page_len_rounds_up() {
        let mut alloc = FrameAllocator::new(1 << 20);
        let mut s = AddressSpace::new(1);
        s.map_range(VAddr::new(0), 100, &mut alloc).unwrap();
        assert_eq!(s.mapped_pages(), 1);
        assert!(s.translate(VAddr::new(PAGE_BYTES - 1)).is_ok());
    }

    #[test]
    #[should_panic(expected = "unaligned mapping")]
    fn unaligned_base_panics() {
        let mut alloc = FrameAllocator::new(1 << 20);
        let mut s = AddressSpace::new(1);
        let _ = s.map_range(VAddr::new(100), PAGE_BYTES, &mut alloc);
    }
}
