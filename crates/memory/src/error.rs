//! Memory subsystem error types.

use std::error::Error;
use std::fmt;

use crate::addr::VAddr;

/// Errors surfaced by the memory subsystem.
///
/// Translation faults map onto the soNUMA protocol's error replies: a remote
/// request whose computed virtual address is unmapped or out of the context
/// segment's bounds produces an error CQ entry at the source (§4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemError {
    /// The virtual address has no valid page-table entry.
    Unmapped(VAddr),
    /// The node has no free physical frames left.
    OutOfFrames,
    /// The virtual address falls outside the registered segment bounds.
    OutOfBounds(VAddr),
    /// A mapping request overlaps an existing mapping.
    AlreadyMapped(VAddr),
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::Unmapped(va) => write!(f, "unmapped virtual address {va}"),
            MemError::OutOfFrames => write!(f, "physical memory exhausted"),
            MemError::OutOfBounds(va) => write!(f, "virtual address {va} outside segment bounds"),
            MemError::AlreadyMapped(va) => write!(f, "virtual address {va} already mapped"),
        }
    }
}

impl Error for MemError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errs = [
            MemError::Unmapped(VAddr::new(0x10)),
            MemError::OutOfFrames,
            MemError::OutOfBounds(VAddr::new(0x20)),
            MemError::AlreadyMapped(VAddr::new(0x30)),
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn is_std_error() {
        fn takes_err<E: Error>(_: E) {}
        takes_err(MemError::OutOfFrames);
    }
}
