//! A tiny deterministic hasher for the model's internal integer-keyed
//! maps.
//!
//! The functional memory and coherence maps sit on the per-packet hot
//! path: every simulated cache-line access probes them several times, and
//! `std`'s default SipHash costs more than the arithmetic around it. This
//! is an FxHash-style multiplicative hasher — one multiply per word —
//! which is plenty for the dense, low-entropy keys involved (frame and
//! line numbers). None of the maps using it ever expose iteration order,
//! so swapping the hasher cannot change simulation results.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// One-multiply-per-word hasher (64-bit Fibonacci multiplier + rotate).
#[derive(Debug, Default, Clone, Copy)]
pub struct FastHasher(u64);

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl Hasher for FastHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u64(b as u64);
        }
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.0 = (self.0.rotate_left(5) ^ i).wrapping_mul(SEED);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.write_u64(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.write_u64(i as u64);
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.write_u64(i as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.write_u64(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }
}

/// A `HashMap` keyed through [`FastHasher`] — deterministic (no
/// per-process seed) and cheap enough for per-access probing.
pub type FastMap<K, V> = HashMap<K, V, BuildHasherDefault<FastHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_keys_map_and_read_back() {
        let mut m: FastMap<u64, u64> = FastMap::default();
        for i in 0..10_000u64 {
            m.insert(i * 8192, i);
        }
        for i in 0..10_000u64 {
            assert_eq!(m.get(&(i * 8192)), Some(&i));
        }
        assert_eq!(m.get(&7), None);
    }

    #[test]
    fn hashing_is_deterministic() {
        let mut a = FastHasher::default();
        let mut b = FastHasher::default();
        a.write_u64(0xABCD);
        b.write_u64(0xABCD);
        assert_eq!(a.finish(), b.finish());
        assert_ne!(a.finish(), 0, "nonzero diffusion");
    }
}
