//! DRAM channel model: fixed access latency plus bandwidth occupancy.
//!
//! The paper simulates memory with DRAMSim2 (DDR3-1600, 60 ns latency,
//! 12.8 GB/s per channel — Table 1 lists "12GBps" usable). We reproduce the
//! two properties that shape the results: a fixed access latency and a
//! finite-bandwidth data bus whose saturation bounds streaming throughput.
//! Saturation caps the remote-read bandwidth curve (Fig. 7b) at ~9.6 GB/s.
//!
//! Bandwidth is accounted in fixed time buckets rather than a strict
//! "next-free" cursor: each bucket admits `bandwidth x bucket` bytes, and
//! an access that finds its bucket full queues into the next one. Bucketed
//! accounting is tolerant of *out-of-order request timestamps*, which the
//! run-to-block execution model produces (different cores' wake-ups advance
//! logical time independently), while still converging to the exact
//! sustained bandwidth under load.

use std::collections::BTreeMap;

use sonuma_sim::SimTime;

/// Width of one bandwidth-accounting bucket.
const BUCKET: SimTime = SimTime::from_ns(200);

/// Configuration of one DRAM channel.
#[derive(Debug, Clone, Copy)]
pub struct DramConfig {
    /// Device access latency added to every request (row activate + CAS).
    pub access_latency: SimTime,
    /// Peak data-bus bandwidth in bytes per second.
    pub peak_bytes_per_sec: u64,
    /// Fraction of peak the bus sustains for random line streams; models
    /// refresh, bank conflicts and bus turnarounds without per-bank state.
    pub efficiency: f64,
}

impl DramConfig {
    /// DDR3-1600 single channel as in Table 1: 60 ns, 12.8 GB/s peak,
    /// 75% sustained efficiency (=> ~9.6 GB/s streaming, the "practical
    /// maximum" the paper reports for 8 KB reads).
    pub fn ddr3_1600() -> Self {
        DramConfig {
            access_latency: SimTime::from_ns(60),
            peak_bytes_per_sec: 12_800_000_000,
            efficiency: 0.75,
        }
    }
}

impl Default for DramConfig {
    fn default() -> Self {
        Self::ddr3_1600()
    }
}

/// One DRAM channel: latency + bucketed-bandwidth model.
///
/// # Example
///
/// ```
/// use sonuma_memory::{DramConfig, DramModel};
/// use sonuma_sim::SimTime;
///
/// let mut dram = DramModel::new(DramConfig::ddr3_1600());
/// let done = dram.access(SimTime::ZERO, 64);
/// assert!(done >= SimTime::from_ns(60)); // at least the device latency
/// ```
#[derive(Debug, Clone)]
pub struct DramModel {
    config: DramConfig,
    bucket_bytes: u64,
    used: BTreeMap<u64, u64>,
    accesses: u64,
    bytes: u64,
    stall_ps: u64,
}

impl DramModel {
    /// Creates an idle channel.
    pub fn new(config: DramConfig) -> Self {
        assert!(config.peak_bytes_per_sec > 0, "zero-bandwidth DRAM");
        assert!(
            config.efficiency > 0.0 && config.efficiency <= 1.0,
            "efficiency must be in (0, 1]"
        );
        let eff = config.peak_bytes_per_sec as f64 * config.efficiency;
        let bucket_bytes = (eff * BUCKET.as_secs_f64()) as u64;
        assert!(bucket_bytes >= 64, "bucket narrower than one line");
        DramModel {
            config,
            bucket_bytes,
            used: BTreeMap::new(),
            accesses: 0,
            bytes: 0,
            stall_ps: 0,
        }
    }

    /// The channel configuration.
    pub fn config(&self) -> &DramConfig {
        &self.config
    }

    /// Time the data bus occupies to move `bytes`.
    pub fn transfer_time(&self, bytes: u64) -> SimTime {
        let eff_bw = self.config.peak_bytes_per_sec as f64 * self.config.efficiency;
        SimTime::from_ns_f64(bytes as f64 / eff_bw * 1e9)
    }

    /// Issues an access of `bytes` at time `now`; returns its completion
    /// time. Under saturation the access queues into the first bucket with
    /// spare bandwidth.
    pub fn access(&mut self, now: SimTime, bytes: u64) -> SimTime {
        self.accesses += 1;
        self.bytes += bytes;
        let mut idx = now.as_ps() / BUCKET.as_ps();
        let mut remaining = bytes;
        let mut last_idx = idx;
        while remaining > 0 {
            let used = self.used.entry(idx).or_insert(0);
            let free = self.bucket_bytes.saturating_sub(*used);
            if free > 0 {
                let take = free.min(remaining);
                *used += take;
                remaining -= take;
                last_idx = idx;
            }
            if remaining > 0 {
                idx += 1;
            }
        }
        // The transfer effectively completes in the bucket that admitted
        // the final byte.
        let admitted_at = SimTime::from_ps(last_idx * BUCKET.as_ps()).max(now);
        self.stall_ps += (admitted_at - now).as_ps();
        admitted_at + self.config.access_latency + self.transfer_time(bytes)
    }

    /// Lifetime access count.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Lifetime bytes moved.
    pub fn bytes_moved(&self) -> u64 {
        self.bytes
    }

    /// Total time requests spent queued behind a saturated bus.
    pub fn total_stall(&self) -> SimTime {
        SimTime::from_ps(self.stall_ps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sonuma_sim::stats::gbytes_per_sec;

    #[test]
    fn idle_access_is_latency_plus_transfer() {
        let mut d = DramModel::new(DramConfig::ddr3_1600());
        let done = d.access(SimTime::ZERO, 64);
        let expect = SimTime::from_ns(60) + d.transfer_time(64);
        assert_eq!(done, expect);
    }

    #[test]
    fn saturated_bucket_pushes_accesses_later() {
        let mut d = DramModel::new(DramConfig::ddr3_1600());
        // Fill bucket 0 (9.6 GB/s x 200 ns = 1920 B = 30 lines).
        let per_bucket = 1920 / 64;
        let mut first_batch_done = SimTime::ZERO;
        for _ in 0..per_bucket {
            first_batch_done = d.access(SimTime::ZERO, 64);
        }
        let overflow = d.access(SimTime::ZERO, 64);
        assert!(
            overflow >= first_batch_done.max(SimTime::from_ns(200)),
            "overflow access must queue into the next bucket"
        );
        assert!(d.total_stall() > SimTime::ZERO);
    }

    #[test]
    fn streaming_bandwidth_approaches_effective_peak() {
        let mut d = DramModel::new(DramConfig::ddr3_1600());
        let mut done = SimTime::ZERO;
        let n = 10_000u64;
        for _ in 0..n {
            done = done.max(d.access(SimTime::ZERO, 64));
        }
        let gbs = gbytes_per_sec(n * 64, done);
        // 12.8 * 0.75 = 9.6 GB/s effective.
        assert!((gbs - 9.6).abs() < 0.3, "streaming bandwidth {gbs} GB/s");
    }

    #[test]
    fn out_of_order_timestamps_do_not_poison_the_future() {
        let mut d = DramModel::new(DramConfig::ddr3_1600());
        // A burst far in the future...
        for _ in 0..10 {
            d.access(SimTime::from_us(50), 64);
        }
        // ...must not delay an uncontended access at an earlier time.
        let early = d.access(SimTime::from_ns(100), 64);
        assert_eq!(
            early,
            SimTime::from_ns(100) + SimTime::from_ns(60) + d.transfer_time(64)
        );
        assert_eq!(d.total_stall(), SimTime::ZERO);
    }

    #[test]
    fn spaced_accesses_do_not_stall() {
        let mut d = DramModel::new(DramConfig::ddr3_1600());
        let mut now = SimTime::ZERO;
        for _ in 0..100 {
            d.access(now, 64);
            now += SimTime::from_ns(100); // far slower than the bus
        }
        assert_eq!(d.total_stall(), SimTime::ZERO);
    }

    #[test]
    fn stats_accumulate() {
        let mut d = DramModel::new(DramConfig::ddr3_1600());
        d.access(SimTime::ZERO, 64);
        d.access(SimTime::ZERO, 128);
        assert_eq!(d.accesses(), 2);
        assert_eq!(d.bytes_moved(), 192);
    }

    #[test]
    #[should_panic(expected = "efficiency")]
    fn bad_efficiency_panics() {
        DramModel::new(DramConfig {
            access_latency: SimTime::from_ns(60),
            peak_bytes_per_sec: 12_800_000_000,
            efficiency: 0.0,
        });
    }
}
