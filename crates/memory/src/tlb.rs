//! Translation lookaside buffer.
//!
//! The RMC's MMU block contains a TLB "tagged with address space identifiers
//! corresponding to the application context" (§4.3), with misses serviced by
//! a hardware page walker. This module models a fully associative, LRU TLB;
//! the walk cost itself is charged by the hierarchy when a miss occurs.

use crate::addr::VAddr;

/// A fully associative, LRU TLB tagged by address-space id.
///
/// # Example
///
/// ```
/// use sonuma_memory::{Tlb, VAddr};
///
/// let mut tlb = Tlb::new(32);
/// assert_eq!(tlb.lookup(1, VAddr::new(0x2000)), None); // cold
/// tlb.insert(1, VAddr::new(0x2000), 7);
/// assert_eq!(tlb.lookup(1, VAddr::new(0x2040)), Some(7)); // same page
/// assert_eq!(tlb.lookup(2, VAddr::new(0x2040)), None);    // other ASID
/// ```
#[derive(Debug, Clone)]
pub struct Tlb {
    capacity: usize,
    entries: Vec<TlbEntry>,
    tick: u64,
    hits: u64,
    misses: u64,
}

#[derive(Debug, Clone, Copy)]
struct TlbEntry {
    asid: u32,
    vpn: u64,
    pfn: u64,
    lru: u64,
}

impl Tlb {
    /// Creates an empty TLB with room for `capacity` translations.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "zero-entry TLB");
        Tlb {
            capacity,
            entries: Vec::with_capacity(capacity),
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Capacity in entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Looks up the frame number for `va` in address space `asid`,
    /// refreshing LRU on a hit.
    pub fn lookup(&mut self, asid: u32, va: VAddr) -> Option<u64> {
        self.tick += 1;
        let vpn = va.page_number();
        let tick = self.tick;
        if let Some(e) = self
            .entries
            .iter_mut()
            .find(|e| e.asid == asid && e.vpn == vpn)
        {
            e.lru = tick;
            self.hits += 1;
            Some(e.pfn)
        } else {
            self.misses += 1;
            None
        }
    }

    /// Installs a translation, evicting the LRU entry if full.
    pub fn insert(&mut self, asid: u32, va: VAddr, pfn: u64) {
        self.tick += 1;
        let vpn = va.page_number();
        // Refresh in place if already present.
        if let Some(e) = self
            .entries
            .iter_mut()
            .find(|e| e.asid == asid && e.vpn == vpn)
        {
            e.pfn = pfn;
            e.lru = self.tick;
            return;
        }
        let entry = TlbEntry {
            asid,
            vpn,
            pfn,
            lru: self.tick,
        };
        if self.entries.len() < self.capacity {
            self.entries.push(entry);
        } else {
            let victim = self
                .entries
                .iter_mut()
                .min_by_key(|e| e.lru)
                .expect("nonzero capacity");
            *victim = entry;
        }
    }

    /// Drops every translation for `asid` (context teardown).
    pub fn flush_asid(&mut self, asid: u32) {
        self.entries.retain(|e| e.asid != asid);
    }

    /// Drops everything.
    pub fn flush_all(&mut self) {
        self.entries.clear();
    }

    /// Lifetime hit count.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lifetime miss count.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Current occupancy.
    pub fn occupancy(&self) -> usize {
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::PAGE_BYTES;

    fn page(i: u64) -> VAddr {
        VAddr::new(i * PAGE_BYTES)
    }

    #[test]
    fn miss_then_hit() {
        let mut t = Tlb::new(4);
        assert_eq!(t.lookup(0, page(1)), None);
        t.insert(0, page(1), 42);
        assert_eq!(t.lookup(0, page(1)), Some(42));
        assert_eq!(t.hits(), 1);
        assert_eq!(t.misses(), 1);
    }

    #[test]
    fn asid_isolation() {
        let mut t = Tlb::new(4);
        t.insert(1, page(5), 10);
        t.insert(2, page(5), 20);
        assert_eq!(t.lookup(1, page(5)), Some(10));
        assert_eq!(t.lookup(2, page(5)), Some(20));
    }

    #[test]
    fn lru_eviction() {
        let mut t = Tlb::new(2);
        t.insert(0, page(1), 1);
        t.insert(0, page(2), 2);
        t.lookup(0, page(1)); // make page 2 the LRU
        t.insert(0, page(3), 3);
        assert_eq!(t.lookup(0, page(1)), Some(1));
        assert_eq!(t.lookup(0, page(2)), None, "LRU entry should be evicted");
        assert_eq!(t.lookup(0, page(3)), Some(3));
    }

    #[test]
    fn insert_refreshes_existing() {
        let mut t = Tlb::new(2);
        t.insert(0, page(1), 1);
        t.insert(0, page(1), 99); // remap
        assert_eq!(t.occupancy(), 1);
        assert_eq!(t.lookup(0, page(1)), Some(99));
    }

    #[test]
    fn flush_asid_is_selective() {
        let mut t = Tlb::new(4);
        t.insert(1, page(1), 1);
        t.insert(2, page(2), 2);
        t.flush_asid(1);
        assert_eq!(t.lookup(1, page(1)), None);
        assert_eq!(t.lookup(2, page(2)), Some(2));
        t.flush_all();
        assert_eq!(t.occupancy(), 0);
    }

    #[test]
    fn same_page_different_offsets_hit() {
        let mut t = Tlb::new(4);
        t.insert(0, VAddr::new(PAGE_BYTES), 3);
        assert_eq!(t.lookup(0, VAddr::new(PAGE_BYTES + 100)), Some(3));
        assert_eq!(t.lookup(0, VAddr::new(PAGE_BYTES * 2 - 1)), Some(3));
        assert_eq!(t.lookup(0, VAddr::new(PAGE_BYTES * 2)), None);
    }

    #[test]
    #[should_panic(expected = "zero-entry")]
    fn zero_capacity_panics() {
        Tlb::new(0);
    }
}
