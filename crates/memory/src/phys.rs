//! Functional physical memory: the bytes behind every simulated node.

use crate::addr::{PAddr, PAGE_BYTES};
use crate::fasthash::FastMap;

/// One simulated node's physical memory: a sparse array of 8 KB frames.
///
/// This is the *functional* half of the memory model — the timing half lives
/// in [`crate::MemoryHierarchy`]. Frames materialize (zero-filled) on first
/// touch, so a 4 GB node costs only what the workload actually uses.
///
/// # Example
///
/// ```
/// use sonuma_memory::{PhysicalMemory, PAddr};
///
/// let mut mem = PhysicalMemory::new(4 << 30);
/// mem.store_u64(PAddr::new(0x100), 0xDEAD_BEEF);
/// assert_eq!(mem.load_u64(PAddr::new(0x100)), 0xDEAD_BEEF);
/// ```
#[derive(Debug, Clone)]
pub struct PhysicalMemory {
    /// Frame number → bytes. Fast-hashed: probed on every functional read
    /// and write, and never iterated (order cannot leak into results).
    frames: FastMap<u64, Box<[u8]>>,
    capacity: u64,
}

impl PhysicalMemory {
    /// Creates a memory of `capacity` bytes (rounded up to whole frames).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: u64) -> Self {
        assert!(capacity > 0, "zero-capacity memory");
        let capacity = capacity.div_ceil(PAGE_BYTES) * PAGE_BYTES;
        PhysicalMemory {
            frames: FastMap::default(),
            capacity,
        }
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Number of frames currently materialized.
    pub fn resident_frames(&self) -> usize {
        self.frames.len()
    }

    fn frame_mut(&mut self, frame_no: u64) -> &mut [u8] {
        self.frames
            .entry(frame_no)
            .or_insert_with(|| vec![0u8; PAGE_BYTES as usize].into_boxed_slice())
    }

    /// Reads `buf.len()` bytes starting at `addr`.
    ///
    /// Unmaterialized memory reads as zeros.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds capacity.
    pub fn read(&self, addr: PAddr, buf: &mut [u8]) {
        let end = addr.raw() + buf.len() as u64;
        assert!(
            end <= self.capacity,
            "read past end of memory: {addr}+{}",
            buf.len()
        );
        let mut cur = addr.raw();
        let mut done = 0usize;
        while done < buf.len() {
            let frame_no = cur / PAGE_BYTES;
            let off = (cur % PAGE_BYTES) as usize;
            let take = ((PAGE_BYTES as usize) - off).min(buf.len() - done);
            match self.frames.get(&frame_no) {
                Some(frame) => buf[done..done + take].copy_from_slice(&frame[off..off + take]),
                None => buf[done..done + take].fill(0),
            }
            cur += take as u64;
            done += take;
        }
    }

    /// Writes `data` starting at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds capacity.
    pub fn write(&mut self, addr: PAddr, data: &[u8]) {
        let end = addr.raw() + data.len() as u64;
        assert!(
            end <= self.capacity,
            "write past end of memory: {addr}+{}",
            data.len()
        );
        let mut cur = addr.raw();
        let mut done = 0usize;
        while done < data.len() {
            let frame_no = cur / PAGE_BYTES;
            let off = (cur % PAGE_BYTES) as usize;
            let take = ((PAGE_BYTES as usize) - off).min(data.len() - done);
            self.frame_mut(frame_no)[off..off + take].copy_from_slice(&data[done..done + take]);
            cur += take as u64;
            done += take;
        }
    }

    /// Reads a little-endian `u64`.
    pub fn load_u64(&self, addr: PAddr) -> u64 {
        let mut buf = [0u8; 8];
        self.read(addr, &mut buf);
        u64::from_le_bytes(buf)
    }

    /// Writes a little-endian `u64`.
    pub fn store_u64(&mut self, addr: PAddr, value: u64) {
        self.write(addr, &value.to_le_bytes());
    }

    /// Reads a little-endian `u32`.
    pub fn load_u32(&self, addr: PAddr) -> u32 {
        let mut buf = [0u8; 4];
        self.read(addr, &mut buf);
        u32::from_le_bytes(buf)
    }

    /// Writes a little-endian `u32`.
    pub fn store_u32(&mut self, addr: PAddr, value: u32) {
        self.write(addr, &value.to_le_bytes());
    }

    /// Reads one byte.
    pub fn load_u8(&self, addr: PAddr) -> u8 {
        let mut buf = [0u8; 1];
        self.read(addr, &mut buf);
        buf[0]
    }

    /// Writes one byte.
    pub fn store_u8(&mut self, addr: PAddr, value: u8) {
        self.write(addr, &[value]);
    }

    /// Atomically adds `delta` to the `u64` at `addr`, returning the value
    /// *before* the add. Backs the RMC's fetch-and-add (§5.2): atomicity is
    /// provided by the destination node's coherence hierarchy, which the
    /// single-threaded simulation models exactly.
    pub fn fetch_add_u64(&mut self, addr: PAddr, delta: u64) -> u64 {
        let old = self.load_u64(addr);
        self.store_u64(addr, old.wrapping_add(delta));
        old
    }

    /// Atomically compare-and-swaps the `u64` at `addr`, returning the value
    /// found (the swap succeeded iff the return value equals `expected`).
    pub fn compare_swap_u64(&mut self, addr: PAddr, expected: u64, new: u64) -> u64 {
        let old = self.load_u64(addr);
        if old == expected {
            self.store_u64(addr, new);
        }
        old
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_memory_reads_zero() {
        let mem = PhysicalMemory::new(1 << 20);
        let mut buf = [0xFFu8; 16];
        mem.read(PAddr::new(4096), &mut buf);
        assert_eq!(buf, [0u8; 16]);
        assert_eq!(mem.resident_frames(), 0);
    }

    #[test]
    fn write_then_read_roundtrip() {
        let mut mem = PhysicalMemory::new(1 << 20);
        let data: Vec<u8> = (0..=255).collect();
        mem.write(PAddr::new(100), &data);
        let mut back = vec![0u8; 256];
        mem.read(PAddr::new(100), &mut back);
        assert_eq!(back, data);
    }

    #[test]
    fn cross_frame_access() {
        let mut mem = PhysicalMemory::new(1 << 20);
        // Straddle the frame boundary at 8192.
        let addr = PAddr::new(PAGE_BYTES - 4);
        mem.write(addr, &[1, 2, 3, 4, 5, 6, 7, 8]);
        let mut back = [0u8; 8];
        mem.read(addr, &mut back);
        assert_eq!(back, [1, 2, 3, 4, 5, 6, 7, 8]);
        assert_eq!(mem.resident_frames(), 2);
    }

    #[test]
    fn integer_accessors() {
        let mut mem = PhysicalMemory::new(1 << 20);
        mem.store_u64(PAddr::new(8), u64::MAX - 1);
        assert_eq!(mem.load_u64(PAddr::new(8)), u64::MAX - 1);
        mem.store_u32(PAddr::new(16), 0xABCD);
        assert_eq!(mem.load_u32(PAddr::new(16)), 0xABCD);
        mem.store_u8(PAddr::new(20), 7);
        assert_eq!(mem.load_u8(PAddr::new(20)), 7);
    }

    #[test]
    fn fetch_add_returns_old_value() {
        let mut mem = PhysicalMemory::new(1 << 20);
        mem.store_u64(PAddr::new(0), 10);
        assert_eq!(mem.fetch_add_u64(PAddr::new(0), 5), 10);
        assert_eq!(mem.load_u64(PAddr::new(0)), 15);
        // Wrapping behaviour.
        mem.store_u64(PAddr::new(0), u64::MAX);
        assert_eq!(mem.fetch_add_u64(PAddr::new(0), 1), u64::MAX);
        assert_eq!(mem.load_u64(PAddr::new(0)), 0);
    }

    #[test]
    fn compare_swap_semantics() {
        let mut mem = PhysicalMemory::new(1 << 20);
        mem.store_u64(PAddr::new(0), 42);
        // Successful CAS.
        assert_eq!(mem.compare_swap_u64(PAddr::new(0), 42, 43), 42);
        assert_eq!(mem.load_u64(PAddr::new(0)), 43);
        // Failed CAS leaves memory untouched.
        assert_eq!(mem.compare_swap_u64(PAddr::new(0), 42, 99), 43);
        assert_eq!(mem.load_u64(PAddr::new(0)), 43);
    }

    #[test]
    fn capacity_rounds_up_to_frames() {
        let mem = PhysicalMemory::new(1);
        assert_eq!(mem.capacity(), PAGE_BYTES);
    }

    #[test]
    #[should_panic(expected = "read past end")]
    fn read_out_of_range_panics() {
        let mem = PhysicalMemory::new(PAGE_BYTES);
        let mut buf = [0u8; 2];
        mem.read(PAddr::new(PAGE_BYTES - 1), &mut buf);
    }

    #[test]
    #[should_panic(expected = "write past end")]
    fn write_out_of_range_panics() {
        let mut mem = PhysicalMemory::new(PAGE_BYTES);
        mem.write(PAddr::new(PAGE_BYTES), &[1]);
    }
}
