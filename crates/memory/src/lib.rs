//! Memory subsystem for the soNUMA reproduction.
//!
//! The paper's evaluation platform (Table 1) models split 32 KB L1 caches, a
//! 4 MB LLC, and a single DDR3-1600 channel simulated with DRAMSim2. This
//! crate provides that substrate in a *functional-backing + timing-model*
//! style:
//!
//! * [`PhysicalMemory`] holds the actual bytes (sparse 8 KB frames) and is
//!   the single source of truth for data. Queue pairs, context segments and
//!   message buffers all live here as real bytes.
//! * [`CacheArray`] models set-associative tag arrays with LRU replacement;
//!   [`MemoryHierarchy`] composes per-agent L1s, a shared LLC, and
//!   [`DramModel`] into a latency calculator with MESI-style line ownership,
//!   so cache-to-cache transfers between a core and the RMC — the paper's
//!   key integration argument — have an explicit cost.
//! * [`AddressSpace`] and [`Tlb`] implement 8 KB paging, hardware page walks
//!   and per-context translation, mirroring how the RMC shares page tables
//!   with the OS instead of replicating them across PCIe.
//!
//! # Example
//!
//! ```
//! use sonuma_memory::{PhysicalMemory, PAddr};
//!
//! let mut mem = PhysicalMemory::new(1 << 30); // 1 GiB node
//! mem.write(PAddr::new(0x4000), &[1, 2, 3]);
//! let mut buf = [0u8; 3];
//! mem.read(PAddr::new(0x4000), &mut buf);
//! assert_eq!(buf, [1, 2, 3]);
//! ```

pub mod addr;
pub mod cache;
pub mod dram;
pub mod error;
pub mod fasthash;
pub mod hierarchy;
pub mod page;
pub mod phys;
pub mod tlb;

pub use addr::{PAddr, VAddr, CACHE_LINE_BYTES, PAGE_BYTES};
pub use cache::{CacheArray, CacheGeometry, LookupResult};
pub use dram::{DramConfig, DramModel};
pub use error::MemError;
pub use fasthash::{FastHasher, FastMap};
pub use hierarchy::{
    AccessKind, AccessResult, AgentId, HierarchyConfig, HitLevel, MemoryHierarchy,
};
pub use page::{AddressSpace, FrameAllocator};
pub use phys::PhysicalMemory;
pub use tlb::Tlb;
