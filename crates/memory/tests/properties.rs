//! Property-based tests for the memory subsystem invariants.

use proptest::collection::vec;
use proptest::prelude::*;

use sonuma_memory::addr::{lines_spanned, split_into_lines};
use sonuma_memory::{
    AccessKind, AddressSpace, AgentId, CacheArray, CacheGeometry, FrameAllocator, HierarchyConfig,
    MemoryHierarchy, PAddr, PhysicalMemory, Tlb, VAddr, PAGE_BYTES,
};
use sonuma_sim::SimTime;

proptest! {
    /// Writes followed by reads always return the written bytes, regardless
    /// of alignment or frame-boundary crossings.
    #[test]
    fn phys_mem_write_read_roundtrip(
        addr in 0u64..(1 << 20),
        data in vec(any::<u8>(), 1..512),
    ) {
        let mut mem = PhysicalMemory::new(2 << 20);
        mem.write(PAddr::new(addr), &data);
        let mut back = vec![0u8; data.len()];
        mem.read(PAddr::new(addr), &mut back);
        prop_assert_eq!(back, data);
    }

    /// Non-overlapping writes do not disturb each other.
    #[test]
    fn phys_mem_disjoint_writes_independent(
        a_addr in 0u64..10_000,
        a_data in vec(any::<u8>(), 1..64),
        gap in 0u64..1_000,
        b_data in vec(any::<u8>(), 1..64),
    ) {
        let b_addr = a_addr + a_data.len() as u64 + gap;
        let mut mem = PhysicalMemory::new(1 << 20);
        mem.write(PAddr::new(a_addr), &a_data);
        mem.write(PAddr::new(b_addr), &b_data);
        let mut back = vec![0u8; a_data.len()];
        mem.read(PAddr::new(a_addr), &mut back);
        prop_assert_eq!(back, a_data);
    }

    /// `split_into_lines` partitions the range exactly: fragments are
    /// contiguous, line-contained, and sum to the total length.
    #[test]
    fn split_into_lines_partitions(addr in 0u64..100_000, len in 1u64..20_000) {
        let parts: Vec<_> = split_into_lines(addr, len).collect();
        prop_assert_eq!(parts.len() as u64, lines_spanned(addr, len));
        let mut expected_off = 0u64;
        for &(line, off, n) in &parts {
            prop_assert_eq!(off, expected_off);
            let abs = addr + off;
            // Fragment lies within one cache line starting at `line`.
            prop_assert!(abs >= line && abs + n <= line + 64);
            expected_off += n;
        }
        prop_assert_eq!(expected_off, len);
    }

    /// A cache never reports more resident lines than its capacity, and
    /// hits + misses equals the number of accesses.
    #[test]
    fn cache_capacity_and_accounting(lines in vec(0u64..64, 1..200)) {
        let mut c = CacheArray::new(CacheGeometry::new(1024, 2)); // 16 lines
        for &l in &lines {
            c.access(PAddr::new(l * 64), l % 3 == 0);
        }
        prop_assert!(c.resident_lines() <= 16);
        prop_assert_eq!(c.hits() + c.misses(), lines.len() as u64);
    }

    /// Immediately re-accessing any line is a hit (LRU never evicts the MRU
    /// line).
    #[test]
    fn cache_mru_is_stable(lines in vec(0u64..256, 1..100)) {
        let mut c = CacheArray::new(CacheGeometry::new(2048, 4));
        for &l in &lines {
            c.access(PAddr::new(l * 64), false);
            prop_assert!(c.access(PAddr::new(l * 64), false).is_hit());
        }
    }

    /// TLB occupancy never exceeds capacity and a just-inserted entry
    /// always hits.
    #[test]
    fn tlb_capacity_respected(pages in vec((0u32..4, 0u64..128), 1..200)) {
        let mut t = Tlb::new(32);
        for &(asid, vpn) in &pages {
            t.insert(asid, VAddr::new(vpn * PAGE_BYTES), vpn + 1000);
            prop_assert_eq!(
                t.lookup(asid, VAddr::new(vpn * PAGE_BYTES)),
                Some(vpn + 1000)
            );
            prop_assert!(t.occupancy() <= 32);
        }
    }

    /// Translation preserves page offsets and maps distinct pages to
    /// distinct frames.
    #[test]
    fn address_space_translation_is_injective(npages in 1u64..32, probe in 0u64..32_768) {
        let mut alloc = FrameAllocator::new(64 << 20);
        let mut s = AddressSpace::new(1);
        s.map_range(VAddr::new(0), npages * PAGE_BYTES, &mut alloc).unwrap();
        let mut frames = std::collections::HashSet::new();
        for p in 0..npages {
            let pa = s.translate(VAddr::new(p * PAGE_BYTES)).unwrap();
            prop_assert!(frames.insert(pa.frame_number()), "frame reused");
        }
        let va = VAddr::new(probe % (npages * PAGE_BYTES));
        let pa = s.translate(va).unwrap();
        prop_assert_eq!(pa.frame_offset(), va.page_offset());
    }

    /// Hierarchy latencies are always at least the L1 latency and the level
    /// accounting matches the access count.
    #[test]
    fn hierarchy_latency_floor(ops in vec((0usize..3, 0u64..512, any::<bool>()), 1..300)) {
        let mut h = MemoryHierarchy::new(HierarchyConfig::table1(), 3);
        let l1 = h.config().l1_latency;
        for &(agent, line, write) in &ops {
            let kind = if write { AccessKind::Write } else { AccessKind::Read };
            let r = h.access(AgentId(agent), PAddr::new(line * 64), kind, SimTime::ZERO);
            prop_assert!(r.latency >= l1);
        }
        let total: u64 = h.hits_by_level().iter().sum();
        prop_assert_eq!(total, ops.len() as u64);
    }

    /// Functional data never depends on cache state: interleaved accesses
    /// through the hierarchy leave PhysicalMemory identical to a shadow
    /// model (timing and function are fully decoupled).
    #[test]
    fn hierarchy_never_corrupts_function(
        ops in vec((0usize..2, 0u64..64, any::<u64>(), any::<bool>()), 1..200)
    ) {
        let mut h = MemoryHierarchy::new(HierarchyConfig::table1(), 2);
        let mut mem = PhysicalMemory::new(1 << 20);
        let mut shadow = vec![0u64; 64];
        for &(agent, slot, value, write) in &ops {
            let addr = PAddr::new(slot * 64);
            let kind = if write { AccessKind::Write } else { AccessKind::Read };
            h.access(AgentId(agent), addr, kind, SimTime::ZERO);
            if write {
                mem.store_u64(addr, value);
                shadow[slot as usize] = value;
            } else {
                prop_assert_eq!(mem.load_u64(addr), shadow[slot as usize]);
            }
        }
    }
}
