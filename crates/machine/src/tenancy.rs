//! Multi-tenant QP virtualization: tenant registry, SLO classes, and
//! per-tenant accounting.
//!
//! A rack running soNUMA is shared by many applications; each node's RMC
//! multiplexes all of their queue pairs through one Request Generation
//! Pipeline. This module owns the node-local tenant registry: which
//! tenant each QP belongs to, the tenant's scheduling weight and SLO
//! class, and the per-tenant counters (requests serviced, completions,
//! backpressure rejections) the benchmark harness reports per tenant.
//!
//! The registry is deliberately flat data — `Vec`s indexed by slot, with
//! a sorted id index — so lookups on the RGP's hot path are O(log n) and
//! iteration order is deterministic regardless of registration pattern.

use sonuma_protocol::{QpId, TenantId};

/// Service-level objective class of a tenant (strict-priority tiers).
///
/// `Gold` preempts `Silver` preempts `Bronze` under the strict-priority
/// scheduler; under weighted policies the class is reporting metadata
/// (the weight carries the policy).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum SloClass {
    /// Latency-critical traffic; served first under strict priority.
    Gold,
    /// Standard traffic.
    #[default]
    Silver,
    /// Throughput-oriented background traffic; served last.
    Bronze,
}

impl SloClass {
    /// Strict-priority level: 0 is served first.
    #[inline]
    pub fn priority(self) -> u8 {
        match self {
            SloClass::Gold => 0,
            SloClass::Silver => 1,
            SloClass::Bronze => 2,
        }
    }

    /// Number of distinct priority levels.
    pub const LEVELS: usize = 3;

    /// Report label.
    pub fn as_str(self) -> &'static str {
        match self {
            SloClass::Gold => "gold",
            SloClass::Silver => "silver",
            SloClass::Bronze => "bronze",
        }
    }

    /// Parses a report label.
    ///
    /// # Errors
    ///
    /// Returns the unknown label back.
    pub fn parse(s: &str) -> Result<SloClass, String> {
        match s {
            "gold" => Ok(SloClass::Gold),
            "silver" => Ok(SloClass::Silver),
            "bronze" => Ok(SloClass::Bronze),
            other => Err(format!("unknown SLO class {other:?} (gold|silver|bronze)")),
        }
    }
}

/// Registration record for one tenant on one node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantSpec {
    /// Cluster-wide tenant identity.
    pub id: TenantId,
    /// WDRR scheduling weight (line-quanta per round). Must be nonzero.
    pub weight: u32,
    /// Strict-priority tier.
    pub slo: SloClass,
}

impl TenantSpec {
    /// A weight-1 `Silver` tenant — the shape untagged QPs get.
    pub fn best_effort(id: TenantId) -> Self {
        TenantSpec {
            id,
            weight: 1,
            slo: SloClass::Silver,
        }
    }
}

/// Per-tenant counters accumulated by the pipelines and the access
/// library on one node.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TenantStats {
    /// WQ entries the RGP consumed for this tenant's QPs.
    pub requests: u64,
    /// CQ entries the RCP posted for this tenant's QPs.
    pub completions: u64,
    /// Posts the access library rejected with `WqFull` (backpressure the
    /// tenant itself experienced).
    pub wq_full: u64,
}

/// The node-local tenant registry: specs, stats, and the QP→tenant map.
#[derive(Debug, Default)]
pub struct TenantTable {
    /// Registration order preserved (deterministic iteration).
    tenants: Vec<(TenantSpec, TenantStats)>,
    /// `(tenant id raw, slot)` sorted by id, for O(log n) lookup.
    by_id: Vec<(u32, usize)>,
    /// QP index → tenant slot (None for untagged QPs).
    qp_slot: Vec<Option<usize>>,
}

impl TenantTable {
    /// Registers (or updates) a tenant.
    ///
    /// Re-registering an existing id overwrites its weight/SLO but keeps
    /// its stats and QP bindings.
    pub fn register(&mut self, spec: TenantSpec) {
        match self.by_id.binary_search_by_key(&spec.id.0, |&(id, _)| id) {
            Ok(i) => {
                let slot = self.by_id[i].1;
                self.tenants[slot].0 = spec;
            }
            Err(i) => {
                let slot = self.tenants.len();
                self.tenants.push((spec, TenantStats::default()));
                self.by_id.insert(i, (spec.id.0, slot));
            }
        }
    }

    /// The registration for `id`, if present.
    pub fn lookup(&self, id: TenantId) -> Option<&TenantSpec> {
        self.slot_of(id).map(|s| &self.tenants[s].0)
    }

    fn slot_of(&self, id: TenantId) -> Option<usize> {
        self.by_id
            .binary_search_by_key(&id.0, |&(id, _)| id)
            .ok()
            .map(|i| self.by_id[i].1)
    }

    /// Binds `qp` to `tenant` (which must be registered).
    ///
    /// # Panics
    ///
    /// Panics if the tenant is not registered.
    pub fn bind_qp(&mut self, qp: QpId, tenant: TenantId) {
        let slot = self
            .slot_of(tenant)
            .expect("tenant must be registered before binding a QP");
        if self.qp_slot.len() <= qp.index() {
            self.qp_slot.resize(qp.index() + 1, None);
        }
        self.qp_slot[qp.index()] = Some(slot);
    }

    /// The spec of the tenant owning `qp` (None for untagged QPs).
    pub fn qp_tenant(&self, qp: QpId) -> Option<&TenantSpec> {
        let slot = *self.qp_slot.get(qp.index())?;
        slot.map(|s| &self.tenants[s].0)
    }

    /// Number of registered tenants.
    pub fn len(&self) -> usize {
        self.tenants.len()
    }

    /// Whether no tenant is registered.
    pub fn is_empty(&self) -> bool {
        self.tenants.is_empty()
    }

    /// `(spec, stats)` pairs in registration order.
    pub fn iter(&self) -> impl Iterator<Item = (&TenantSpec, &TenantStats)> {
        self.tenants.iter().map(|(spec, stats)| (spec, stats))
    }

    /// Stats for `id`, if registered.
    pub fn stats(&self, id: TenantId) -> Option<&TenantStats> {
        self.slot_of(id).map(|s| &self.tenants[s].1)
    }

    /// Counts one RGP-serviced WQ entry against `qp`'s tenant.
    pub(crate) fn note_request(&mut self, qp: QpId) {
        if let Some(Some(slot)) = self.qp_slot.get(qp.index()) {
            self.tenants[*slot].1.requests += 1;
        }
    }

    /// Counts one posted CQ entry against `qp`'s tenant.
    pub(crate) fn note_completion(&mut self, qp: QpId) {
        if let Some(Some(slot)) = self.qp_slot.get(qp.index()) {
            self.tenants[*slot].1.completions += 1;
        }
    }

    /// Counts one `WqFull` rejection against `qp`'s tenant.
    pub(crate) fn note_wq_full(&mut self, qp: QpId) {
        if let Some(Some(slot)) = self.qp_slot.get(qp.index()) {
            self.tenants[*slot].1.wq_full += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_lookup_bind() {
        let mut t = TenantTable::default();
        t.register(TenantSpec {
            id: TenantId(9),
            weight: 4,
            slo: SloClass::Gold,
        });
        t.register(TenantSpec::best_effort(TenantId(2)));
        assert_eq!(t.len(), 2);
        assert_eq!(t.lookup(TenantId(9)).unwrap().weight, 4);
        assert!(t.lookup(TenantId(5)).is_none());

        t.bind_qp(QpId(3), TenantId(9));
        assert_eq!(t.qp_tenant(QpId(3)).unwrap().id, TenantId(9));
        assert!(t.qp_tenant(QpId(0)).is_none(), "untagged QP");
        assert!(t.qp_tenant(QpId(100)).is_none(), "unknown QP");
    }

    #[test]
    fn reregistration_updates_spec_keeps_stats() {
        let mut t = TenantTable::default();
        t.register(TenantSpec::best_effort(TenantId(1)));
        t.bind_qp(QpId(0), TenantId(1));
        t.note_request(QpId(0));
        t.register(TenantSpec {
            id: TenantId(1),
            weight: 8,
            slo: SloClass::Bronze,
        });
        assert_eq!(t.len(), 1);
        assert_eq!(t.lookup(TenantId(1)).unwrap().weight, 8);
        assert_eq!(t.stats(TenantId(1)).unwrap().requests, 1);
        assert_eq!(t.qp_tenant(QpId(0)).unwrap().slo, SloClass::Bronze);
    }

    #[test]
    fn counters_attribute_to_the_bound_tenant() {
        let mut t = TenantTable::default();
        t.register(TenantSpec::best_effort(TenantId(0)));
        t.register(TenantSpec::best_effort(TenantId(1)));
        t.bind_qp(QpId(0), TenantId(0));
        t.bind_qp(QpId(1), TenantId(1));
        t.note_request(QpId(0));
        t.note_completion(QpId(0));
        t.note_wq_full(QpId(1));
        // Counters on untagged QPs are silently dropped, not misattributed.
        t.note_request(QpId(7));
        let a = t.stats(TenantId(0)).unwrap();
        let b = t.stats(TenantId(1)).unwrap();
        assert_eq!((a.requests, a.completions, a.wq_full), (1, 1, 0));
        assert_eq!((b.requests, b.completions, b.wq_full), (0, 0, 1));
    }

    #[test]
    fn slo_roundtrip_and_priority_order() {
        for slo in [SloClass::Gold, SloClass::Silver, SloClass::Bronze] {
            assert_eq!(SloClass::parse(slo.as_str()).unwrap(), slo);
        }
        assert!(SloClass::parse("platinum").is_err());
        assert!(SloClass::Gold.priority() < SloClass::Silver.priority());
        assert!(SloClass::Silver.priority() < SloClass::Bronze.priority());
        assert!((SloClass::Bronze.priority() as usize) < SloClass::LEVELS);
    }
}
