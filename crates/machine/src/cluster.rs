//! The cluster world: node + fabric ownership and the OS-driver surface.
//!
//! Pipeline event logic lives in [`crate::pipeline`] (RGP/RRPP/RCP) and
//! core scheduling in `crate::sched`; this module holds only what the
//! paper's §5.1 kernel driver owns — contexts, queue pairs, process
//! attachment — plus functional segment access for workload setup and the
//! cluster-wide statistics accessors.

use sonuma_fabric::Fabric;
use sonuma_memory::{MemError, VAddr};
use sonuma_protocol::{CtxId, NodeId, QpId, TenantId};
use sonuma_rmc::{ContextEntry, QueuePairState};
use sonuma_sim::SimTime;

use crate::tenancy::{TenantSpec, TenantStats};

use crate::config::MachineConfig;
use crate::event::{ClusterEvent, WakeReason};
use crate::node::{AppQpCursors, BlockState, Node, CTX_BASE};
use crate::process::AppProcess;
use crate::ClusterEngine;

/// The simulation world: every node plus the memory fabric.
///
/// Build one with [`Cluster::new`], set up contexts/QPs/processes with the
/// OS-driver methods, then drive it with a [`ClusterEngine`]:
///
/// ```
/// use sonuma_machine::{Cluster, ClusterEngine, MachineConfig};
///
/// let mut cluster = Cluster::new(MachineConfig::simulated_hardware(2));
/// let mut engine = ClusterEngine::new();
/// cluster.create_context(sonuma_protocol::CtxId(0), 1 << 20).unwrap();
/// engine.run(&mut cluster); // nothing scheduled yet: returns immediately
/// assert_eq!(engine.events_executed(), 0);
/// ```
pub struct Cluster {
    config: MachineConfig,
    /// All nodes, indexed by `NodeId`.
    pub nodes: Vec<Node>,
    /// The memory fabric.
    pub fabric: Fabric,
    /// Logical events folded into batched engine events: a line burst of
    /// `n` injections executes as one engine event but represents `n`
    /// logical pipeline steps. Adding these back keeps `events_processed`
    /// (and the events/sec throughput gate) comparable across
    /// `rgp_burst_lines` settings.
    pub(crate) batched_logical_events: u64,
}

impl std::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster")
            .field("nodes", &self.nodes.len())
            .field("fabric", &self.fabric)
            .finish()
    }
}

impl Cluster {
    /// Builds an idle cluster per `config`.
    ///
    /// # Panics
    ///
    /// Panics if the fabric topology disagrees with `config.nodes`.
    pub fn new(config: MachineConfig) -> Self {
        assert_eq!(
            config.fabric.topology.nodes(),
            config.nodes,
            "fabric topology size must match node count"
        );
        Cluster {
            nodes: (0..config.nodes).map(|_| Node::new(&config)).collect(),
            fabric: Fabric::new(config.fabric.clone()),
            config,
            batched_logical_events: 0,
        }
    }

    /// The cluster configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    // ------------------------------------------------------------------
    // OS driver (§5.1): contexts, queue pairs, processes.
    // ------------------------------------------------------------------

    /// Establishes global context `ctx` with a `segment_len`-byte segment on
    /// every node, mapping and pinning the pages and registering the CT
    /// entries (the driver work of §5.1).
    ///
    /// # Errors
    ///
    /// Fails if any node cannot map the segment.
    pub fn create_context(&mut self, ctx: CtxId, segment_len: u64) -> Result<(), MemError> {
        for node in &mut self.nodes {
            let base = VAddr::new(CTX_BASE);
            node.space.map_range(base, segment_len, &mut node.alloc)?;
            node.rmc.ct.register(
                ctx,
                ContextEntry {
                    segment_base: base,
                    segment_len,
                    asid: 0,
                    qps: Vec::new(),
                },
            );
        }
        Ok(())
    }

    /// Creates a queue pair on `node` for `ctx`, owned (polled) by
    /// `owner_core`. Rings are allocated from the node's pinned heap.
    ///
    /// # Errors
    ///
    /// Fails on memory exhaustion or an unregistered context.
    pub fn create_qp(
        &mut self,
        node: NodeId,
        ctx: CtxId,
        owner_core: usize,
    ) -> Result<QpId, MemError> {
        let entries = self.config.qp_entries;
        let n = &mut self.nodes[node.index()];
        assert!(owner_core < n.cores.len(), "owner core out of range");
        let ring_bytes = entries as u64 * 64;
        let wq_base = n.heap_alloc(ring_bytes)?;
        let cq_base = n.heap_alloc(ring_bytes)?;
        let qp = QpId(n.rmc.qps.len() as u16);
        n.rmc
            .qps
            .push(QueuePairState::new(ctx, 0, wq_base, cq_base, entries));
        n.app_qps.push(AppQpCursors {
            owner_core,
            wq_index: 0,
            wq_phase: true,
            cq_index: 0,
            cq_phase: true,
            cq_drained: 0,
            outstanding: 0,
            slot_busy: vec![false; entries as usize],
        });
        if let Ok(entry) = n.rmc.ct.lookup_mut(ctx) {
            entry.qps.push(qp);
        }
        Ok(qp)
    }

    /// Registers (or updates) a tenant on `node`: its WDRR weight and SLO
    /// class become visible to the RGP's QoS scheduler for every QP later
    /// bound to it.
    pub fn register_tenant(&mut self, node: NodeId, spec: TenantSpec) {
        self.nodes[node.index()].tenants.register(spec);
    }

    /// As [`Cluster::create_qp`], additionally binding the new queue pair
    /// to `tenant` so the RGP schedules it under the tenant's weight and
    /// SLO class.
    ///
    /// # Errors
    ///
    /// Fails on memory exhaustion or an unregistered context.
    ///
    /// # Panics
    ///
    /// Panics if `tenant` is not registered on `node`.
    pub fn create_tenant_qp(
        &mut self,
        node: NodeId,
        ctx: CtxId,
        owner_core: usize,
        tenant: TenantId,
    ) -> Result<QpId, MemError> {
        assert!(
            self.nodes[node.index()].tenants.lookup(tenant).is_some(),
            "tenant {tenant} not registered on {node}"
        );
        let qp = self.create_qp(node, ctx, owner_core)?;
        self.nodes[node.index()].tenants.bind_qp(qp, tenant);
        Ok(qp)
    }

    /// Snapshot of `node`'s per-tenant counters, in registration order.
    pub fn tenant_stats(&self, node: NodeId) -> Vec<(TenantSpec, TenantStats)> {
        self.nodes[node.index()]
            .tenants
            .iter()
            .map(|(spec, stats)| (*spec, *stats))
            .collect()
    }

    /// Attaches `process` to a core and schedules its first wake-up.
    pub fn spawn(
        &mut self,
        engine: &mut ClusterEngine,
        node: NodeId,
        core: usize,
        process: Box<dyn AppProcess>,
    ) {
        let slot = &mut self.nodes[node.index()].cores[core];
        assert!(slot.process.is_none(), "core already occupied");
        slot.process = Some(process);
        slot.block = BlockState::Sleeping;
        engine.schedule_in(
            SimTime::ZERO,
            ClusterEvent::CoreWake {
                node: node.0,
                core: core as u16,
                reason: WakeReason::Start,
            },
        );
    }

    /// Functional write into a node's context segment (test/workload setup;
    /// no timing charge).
    ///
    /// # Panics
    ///
    /// Panics if the context or range is invalid.
    pub fn write_ctx(&mut self, node: NodeId, ctx: CtxId, offset: u64, data: &[u8]) {
        let n = &mut self.nodes[node.index()];
        let entry = n.rmc.ct.lookup(ctx).expect("context not registered");
        let va = entry
            .resolve(offset, data.len() as u64)
            .expect("write outside segment");
        n.write_virt(va, data).expect("segment must be mapped");
    }

    /// Functional read from a node's context segment (assertions in tests).
    ///
    /// # Panics
    ///
    /// Panics if the context or range is invalid.
    pub fn read_ctx(&self, node: NodeId, ctx: CtxId, offset: u64, buf: &mut [u8]) {
        let n = &self.nodes[node.index()];
        let entry = n.rmc.ct.lookup(ctx).expect("context not registered");
        let va = entry
            .resolve(offset, buf.len() as u64)
            .expect("read outside segment");
        n.read_virt(va, buf).expect("segment must be mapped");
    }

    // ------------------------------------------------------------------
    // Statistics.
    // ------------------------------------------------------------------

    /// Total remote operations completed across the cluster.
    pub fn total_ops_completed(&self) -> u64 {
        self.nodes.iter().map(|n| n.ops_completed).sum()
    }

    /// Total remote-read payload bytes delivered across the cluster.
    pub fn total_bytes_read(&self) -> u64 {
        self.nodes.iter().map(|n| n.bytes_read).sum()
    }

    /// Total remote-write payload bytes delivered across the cluster.
    pub fn total_bytes_written(&self) -> u64 {
        self.nodes.iter().map(|n| n.bytes_written).sum()
    }
}
