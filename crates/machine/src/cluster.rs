//! The cluster world: node + fabric ownership and the OS-driver surface.
//!
//! Pipeline event logic lives in [`crate::pipeline`] (RGP/RRPP/RCP) and
//! core scheduling in `crate::sched`; this module holds only what the
//! paper's §5.1 kernel driver owns — contexts, queue pairs, process
//! attachment — plus functional segment access for workload setup and the
//! cluster-wide statistics accessors.

use sonuma_fabric::Fabric;
use sonuma_memory::{MemError, VAddr};
use sonuma_protocol::{CtxId, NodeId, Packet, QpId, TenantId};
use sonuma_rmc::{ContextEntry, QueuePairState};
use sonuma_sim::SimTime;

use crate::tenancy::{TenantSpec, TenantStats};

use crate::config::MachineConfig;
use crate::event::{ClusterEvent, WakeReason};
use crate::node::{AppQpCursors, BlockState, Node, CTX_BASE};
use crate::process::AppProcess;
use crate::ClusterEngine;

/// One fabric send staged for the epoch-barrier merge (shard mode).
///
/// `(src, seq)` is the deterministic tiebreak: `seq` counts the packets
/// each source node has ever injected, so the merge order
/// `(time, src, seq)` is a total order that depends only on the
/// simulation's history — never on how nodes are distributed over shards.
#[derive(Debug, Clone)]
pub(crate) struct Departure {
    /// Fabric injection time.
    pub t: SimTime,
    /// Injecting node.
    pub src: NodeId,
    /// Per-source injection sequence number.
    pub seq: u64,
    /// The packet itself (`pkt.dst` names the receiver).
    pub pkt: Packet,
}

/// Where this cluster's packets go: straight into an owned fabric
/// (classic single-engine mode) or into a mailbox drained at the epoch
/// barrier (one shard of a `ShardedCluster`).
pub(crate) enum RoutePath {
    /// The cluster owns the whole world; sends resolve inline.
    Direct(Box<Fabric>),
    /// The cluster is one shard; sends are staged as [`Departure`]s and
    /// the `ShardedCluster` merges them into the global fabric in
    /// deterministic order.
    Mailbox(Vec<Departure>),
}

/// The simulation world: every node plus the memory fabric.
///
/// Build one with [`Cluster::new`], set up contexts/QPs/processes with the
/// OS-driver methods, then drive it with a [`ClusterEngine`]:
///
/// ```
/// use sonuma_machine::{Cluster, ClusterEngine, MachineConfig};
///
/// let mut cluster = Cluster::new(MachineConfig::simulated_hardware(2));
/// let mut engine = ClusterEngine::new();
/// cluster.create_context(sonuma_protocol::CtxId(0), 1 << 20).unwrap();
/// engine.run(&mut cluster); // nothing scheduled yet: returns immediately
/// assert_eq!(engine.events_executed(), 0);
/// ```
pub struct Cluster {
    config: MachineConfig,
    /// The nodes this cluster *owns*, holding global ids
    /// `node_base..node_base + nodes.len()`. A classic cluster owns every
    /// node (`node_base == 0`), so indexing by `NodeId` keeps working; a
    /// shard cluster owns a contiguous slice and all internal code goes
    /// through [`Cluster::node`]/[`Cluster::node_mut`], which translate.
    pub nodes: Vec<Node>,
    /// Global id of `nodes[0]` (0 except for shard clusters).
    node_base: usize,
    /// Owned fabric, or the shard-mode departure mailbox.
    pub(crate) route: RoutePath,
    /// Logical events folded into batched engine events: a line burst of
    /// `n` injections executes as one engine event but represents `n`
    /// logical pipeline steps. Adding these back keeps `events_processed`
    /// (and the events/sec throughput gate) comparable across
    /// `rgp_burst_lines` settings.
    pub(crate) batched_logical_events: u64,
}

impl std::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut d = f.debug_struct("Cluster");
        d.field("nodes", &self.nodes.len())
            .field("node_base", &self.node_base);
        match &self.route {
            RoutePath::Direct(fabric) => d.field("fabric", fabric),
            RoutePath::Mailbox(outbox) => d.field("outbox", &outbox.len()),
        };
        d.finish()
    }
}

impl Cluster {
    /// Builds an idle cluster per `config`.
    ///
    /// # Panics
    ///
    /// Panics if the fabric topology disagrees with `config.nodes`.
    pub fn new(config: MachineConfig) -> Self {
        assert_eq!(
            config.fabric.topology.nodes(),
            config.nodes,
            "fabric topology size must match node count"
        );
        Cluster {
            nodes: (0..config.nodes).map(|_| Node::new(&config)).collect(),
            node_base: 0,
            route: RoutePath::Direct(Box::new(Fabric::new(config.fabric.clone()))),
            config,
            batched_logical_events: 0,
        }
    }

    /// Builds one *shard* of a cluster: the world of nodes
    /// `range.start..range.end`, with fabric sends staged in a mailbox
    /// for the owning `ShardedCluster`'s epoch merge.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty or outside `config.nodes`.
    pub(crate) fn shard_slice(config: MachineConfig, range: std::ops::Range<usize>) -> Self {
        assert!(
            !range.is_empty() && range.end <= config.nodes,
            "shard range {range:?} outside cluster of {}",
            config.nodes
        );
        Cluster {
            nodes: range.clone().map(|_| Node::new(&config)).collect(),
            node_base: range.start,
            route: RoutePath::Mailbox(Vec::new()),
            config,
            batched_logical_events: 0,
        }
    }

    /// The cluster configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// Number of nodes in the *whole* cluster (a shard answers for the
    /// full fabric, not just its slice — destination validation and peer
    /// sampling depend on it).
    pub fn num_nodes(&self) -> usize {
        self.config.nodes
    }

    /// Global id of the first node this cluster owns.
    pub fn node_base(&self) -> usize {
        self.node_base
    }

    /// Global ids of the nodes this cluster owns.
    pub fn owned_nodes(&self) -> std::ops::Range<usize> {
        self.node_base..self.node_base + self.nodes.len()
    }

    /// The node with *global* id `n`.
    ///
    /// # Panics
    ///
    /// Panics if this cluster does not own `n`.
    #[inline]
    pub fn node(&self, n: usize) -> &Node {
        &self.nodes[n - self.node_base]
    }

    /// Mutable access to the node with *global* id `n`.
    ///
    /// # Panics
    ///
    /// Panics if this cluster does not own `n`.
    #[inline]
    pub fn node_mut(&mut self, n: usize) -> &mut Node {
        &mut self.nodes[n - self.node_base]
    }

    /// The memory fabric (classic single-engine clusters only).
    ///
    /// # Panics
    ///
    /// Panics on a shard cluster — shards do not own the fabric; ask the
    /// `ShardedCluster` (or `SonumaBackend::fabric`) instead.
    pub fn fabric(&self) -> &Fabric {
        match &self.route {
            RoutePath::Direct(fabric) => fabric,
            RoutePath::Mailbox(_) => {
                panic!("shard clusters do not own the fabric; query the ShardedCluster")
            }
        }
    }

    // ------------------------------------------------------------------
    // OS driver (§5.1): contexts, queue pairs, processes.
    // ------------------------------------------------------------------

    /// Establishes global context `ctx` with a `segment_len`-byte segment on
    /// every node, mapping and pinning the pages and registering the CT
    /// entries (the driver work of §5.1).
    ///
    /// # Errors
    ///
    /// Fails if any node cannot map the segment.
    pub fn create_context(&mut self, ctx: CtxId, segment_len: u64) -> Result<(), MemError> {
        for node in &mut self.nodes {
            let base = VAddr::new(CTX_BASE);
            node.space.map_range(base, segment_len, &mut node.alloc)?;
            node.rmc.ct.register(
                ctx,
                ContextEntry {
                    segment_base: base,
                    segment_len,
                    asid: 0,
                    qps: Vec::new(),
                },
            );
        }
        Ok(())
    }

    /// Creates a queue pair on `node` for `ctx`, owned (polled) by
    /// `owner_core`. Rings are allocated from the node's pinned heap.
    ///
    /// # Errors
    ///
    /// Fails on memory exhaustion or an unregistered context.
    pub fn create_qp(
        &mut self,
        node: NodeId,
        ctx: CtxId,
        owner_core: usize,
    ) -> Result<QpId, MemError> {
        let entries = self.config.qp_entries;
        let n = self.node_mut(node.index());
        assert!(owner_core < n.cores.len(), "owner core out of range");
        let ring_bytes = entries as u64 * 64;
        let wq_base = n.heap_alloc(ring_bytes)?;
        let cq_base = n.heap_alloc(ring_bytes)?;
        let qp = QpId(n.rmc.qps.len() as u16);
        n.rmc
            .qps
            .push(QueuePairState::new(ctx, 0, wq_base, cq_base, entries));
        n.app_qps.push(AppQpCursors {
            owner_core,
            wq_index: 0,
            wq_phase: true,
            cq_index: 0,
            cq_phase: true,
            cq_drained: 0,
            outstanding: 0,
            slot_busy: vec![false; entries as usize],
        });
        if let Ok(entry) = n.rmc.ct.lookup_mut(ctx) {
            entry.qps.push(qp);
        }
        Ok(qp)
    }

    /// Registers (or updates) a tenant on `node`: its WDRR weight and SLO
    /// class become visible to the RGP's QoS scheduler for every QP later
    /// bound to it.
    pub fn register_tenant(&mut self, node: NodeId, spec: TenantSpec) {
        self.node_mut(node.index()).tenants.register(spec);
    }

    /// As [`Cluster::create_qp`], additionally binding the new queue pair
    /// to `tenant` so the RGP schedules it under the tenant's weight and
    /// SLO class.
    ///
    /// # Errors
    ///
    /// Fails on memory exhaustion or an unregistered context.
    ///
    /// # Panics
    ///
    /// Panics if `tenant` is not registered on `node`.
    pub fn create_tenant_qp(
        &mut self,
        node: NodeId,
        ctx: CtxId,
        owner_core: usize,
        tenant: TenantId,
    ) -> Result<QpId, MemError> {
        assert!(
            self.node(node.index()).tenants.lookup(tenant).is_some(),
            "tenant {tenant} not registered on {node}"
        );
        let qp = self.create_qp(node, ctx, owner_core)?;
        self.node_mut(node.index()).tenants.bind_qp(qp, tenant);
        Ok(qp)
    }

    /// Snapshot of `node`'s per-tenant counters, in registration order.
    pub fn tenant_stats(&self, node: NodeId) -> Vec<(TenantSpec, TenantStats)> {
        self.node(node.index())
            .tenants
            .iter()
            .map(|(spec, stats)| (*spec, *stats))
            .collect()
    }

    /// Attaches `process` to a core and schedules its first wake-up.
    pub fn spawn(
        &mut self,
        engine: &mut ClusterEngine,
        node: NodeId,
        core: usize,
        process: Box<dyn AppProcess>,
    ) {
        let slot = &mut self.node_mut(node.index()).cores[core];
        assert!(slot.process.is_none(), "core already occupied");
        slot.process = Some(process);
        slot.block = BlockState::Sleeping;
        engine.schedule_in(
            SimTime::ZERO,
            ClusterEvent::CoreWake {
                node: node.0,
                core: core as u16,
                reason: WakeReason::Start,
            },
        );
    }

    /// Functional write into a node's context segment (test/workload setup;
    /// no timing charge).
    ///
    /// # Panics
    ///
    /// Panics if the context or range is invalid.
    pub fn write_ctx(&mut self, node: NodeId, ctx: CtxId, offset: u64, data: &[u8]) {
        let n = self.node_mut(node.index());
        let entry = n.rmc.ct.lookup(ctx).expect("context not registered");
        let va = entry
            .resolve(offset, data.len() as u64)
            .expect("write outside segment");
        n.write_virt(va, data).expect("segment must be mapped");
    }

    /// Functional read from a node's context segment (assertions in tests).
    ///
    /// # Panics
    ///
    /// Panics if the context or range is invalid.
    pub fn read_ctx(&self, node: NodeId, ctx: CtxId, offset: u64, buf: &mut [u8]) {
        let n = self.node(node.index());
        let entry = n.rmc.ct.lookup(ctx).expect("context not registered");
        let va = entry
            .resolve(offset, buf.len() as u64)
            .expect("read outside segment");
        n.read_virt(va, buf).expect("segment must be mapped");
    }

    // ------------------------------------------------------------------
    // Statistics.
    // ------------------------------------------------------------------

    /// Total remote operations completed across the cluster.
    pub fn total_ops_completed(&self) -> u64 {
        self.nodes.iter().map(|n| n.ops_completed).sum()
    }

    /// Total remote-read payload bytes delivered across the cluster.
    pub fn total_bytes_read(&self) -> u64 {
        self.nodes.iter().map(|n| n.bytes_read).sum()
    }

    /// Total remote-write payload bytes delivered across the cluster.
    pub fn total_bytes_written(&self) -> u64 {
        self.nodes.iter().map(|n| n.bytes_written).sum()
    }

    /// Estimated resident heap bytes across every node's model state (see
    /// [`Node::resident_bytes`]). The number the rack4096 memory budget
    /// is asserted against.
    pub fn resident_bytes(&self) -> u64 {
        self.nodes.iter().map(Node::resident_bytes).sum()
    }

    /// Node-crash events executed across the cluster (0 without a fault
    /// plan).
    pub fn total_crashes(&self) -> u64 {
        self.nodes.iter().map(|n| n.crashes).sum()
    }

    /// Packets discarded at delivery because their destination node was
    /// inside a crash window (0 without a fault plan).
    pub fn total_crash_drops(&self) -> u64 {
        self.nodes.iter().map(|n| n.crash_drops).sum()
    }
}
