//! The cluster world: all nodes + the fabric + the RMC pipeline event glue.

use sonuma_fabric::Fabric;
use sonuma_memory::{AccessKind, MemError, VAddr, CACHE_LINE_BYTES};
use sonuma_protocol::{CqEntry, CtxId, NodeId, Packet, QpId, RemoteOp, Status, Tid, WqEntry};
use sonuma_rmc::{ContextEntry, QueuePairState, ReplyAction};
use sonuma_sim::SimTime;

use crate::api::NodeApi;
use crate::config::MachineConfig;
use crate::node::{AppQpCursors, BlockState, Node, Watch, CTX_BASE};
use crate::process::{AppProcess, Completion, Step, Wake};
use crate::ClusterEngine;

/// One unrolled cache-line transaction queued for injection by the RGP.
#[derive(Debug, Clone, Copy)]
struct LineRequest {
    dst: NodeId,
    ctx: CtxId,
    tid: Tid,
    op: RemoteOp,
    offset: u64,
    line_seq: u32,
    /// Local VA the payload is read from (writes), or operands (atomics).
    payload_src: Option<VAddr>,
    operands: (u64, u64),
}

/// The simulation world: every node plus the memory fabric.
///
/// Build one with [`Cluster::new`], set up contexts/QPs/processes with the
/// OS-driver methods, then drive it with a [`ClusterEngine`]:
///
/// ```
/// use sonuma_machine::{Cluster, ClusterEngine, MachineConfig};
///
/// let mut cluster = Cluster::new(MachineConfig::simulated_hardware(2));
/// let mut engine = ClusterEngine::new();
/// cluster.create_context(sonuma_protocol::CtxId(0), 1 << 20).unwrap();
/// engine.run(&mut cluster); // nothing scheduled yet: returns immediately
/// assert_eq!(engine.events_executed(), 0);
/// ```
pub struct Cluster {
    config: MachineConfig,
    /// All nodes, indexed by `NodeId`.
    pub nodes: Vec<Node>,
    /// The memory fabric.
    pub fabric: Fabric,
}

impl std::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster")
            .field("nodes", &self.nodes.len())
            .field("fabric", &self.fabric)
            .finish()
    }
}

impl Cluster {
    /// Builds an idle cluster per `config`.
    ///
    /// # Panics
    ///
    /// Panics if the fabric topology disagrees with `config.nodes`.
    pub fn new(config: MachineConfig) -> Self {
        assert_eq!(
            config.fabric.topology.nodes(),
            config.nodes,
            "fabric topology size must match node count"
        );
        Cluster {
            nodes: (0..config.nodes).map(|_| Node::new(&config)).collect(),
            fabric: Fabric::new(config.fabric.clone()),
            config,
        }
    }

    /// The cluster configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    // ------------------------------------------------------------------
    // OS driver (§5.1): contexts, queue pairs, processes.
    // ------------------------------------------------------------------

    /// Establishes global context `ctx` with a `segment_len`-byte segment on
    /// every node, mapping and pinning the pages and registering the CT
    /// entries (the driver work of §5.1).
    ///
    /// # Errors
    ///
    /// Fails if any node cannot map the segment.
    pub fn create_context(&mut self, ctx: CtxId, segment_len: u64) -> Result<(), MemError> {
        for node in &mut self.nodes {
            let base = VAddr::new(CTX_BASE);
            node.space.map_range(base, segment_len, &mut node.alloc)?;
            node.rmc.ct.register(
                ctx,
                ContextEntry {
                    segment_base: base,
                    segment_len,
                    asid: 0,
                    qps: Vec::new(),
                },
            );
        }
        Ok(())
    }

    /// Creates a queue pair on `node` for `ctx`, owned (polled) by
    /// `owner_core`. Rings are allocated from the node's pinned heap.
    ///
    /// # Errors
    ///
    /// Fails on memory exhaustion or an unregistered context.
    pub fn create_qp(
        &mut self,
        node: NodeId,
        ctx: CtxId,
        owner_core: usize,
    ) -> Result<QpId, MemError> {
        let entries = self.config.qp_entries;
        let n = &mut self.nodes[node.index()];
        assert!(owner_core < n.cores.len(), "owner core out of range");
        let ring_bytes = entries as u64 * 64;
        let wq_base = n.heap_alloc(ring_bytes)?;
        let cq_base = n.heap_alloc(ring_bytes)?;
        let qp = QpId(n.rmc.qps.len() as u16);
        n.rmc
            .qps
            .push(QueuePairState::new(ctx, 0, wq_base, cq_base, entries));
        n.app_qps.push(AppQpCursors {
            owner_core,
            wq_index: 0,
            wq_phase: true,
            cq_index: 0,
            cq_phase: true,
            outstanding: 0,
            slot_busy: vec![false; entries as usize],
        });
        if let Ok(entry) = n.rmc.ct.lookup_mut(ctx) {
            entry.qps.push(qp);
        }
        Ok(qp)
    }

    /// Attaches `process` to a core and schedules its first wake-up.
    pub fn spawn(
        &mut self,
        engine: &mut ClusterEngine,
        node: NodeId,
        core: usize,
        process: Box<dyn AppProcess>,
    ) {
        let slot = &mut self.nodes[node.index()].cores[core];
        assert!(slot.process.is_none(), "core already occupied");
        slot.process = Some(process);
        slot.block = BlockState::Sleeping;
        let n = node.index();
        engine.schedule_in(SimTime::ZERO, move |w: &mut Cluster, e: &mut ClusterEngine| {
            w.wake_core(e, n, core, Wake::Start);
        });
    }

    /// Functional write into a node's context segment (test/workload setup;
    /// no timing charge).
    ///
    /// # Panics
    ///
    /// Panics if the context or range is invalid.
    pub fn write_ctx(&mut self, node: NodeId, ctx: CtxId, offset: u64, data: &[u8]) {
        let n = &mut self.nodes[node.index()];
        let entry = n.rmc.ct.lookup(ctx).expect("context not registered");
        let va = entry
            .resolve(offset, data.len() as u64)
            .expect("write outside segment");
        n.write_virt(va, data).expect("segment must be mapped");
    }

    /// Functional read from a node's context segment (assertions in tests).
    ///
    /// # Panics
    ///
    /// Panics if the context or range is invalid.
    pub fn read_ctx(&self, node: NodeId, ctx: CtxId, offset: u64, buf: &mut [u8]) {
        let n = &self.nodes[node.index()];
        let entry = n.rmc.ct.lookup(ctx).expect("context not registered");
        let va = entry
            .resolve(offset, buf.len() as u64)
            .expect("read outside segment");
        n.read_virt(va, buf).expect("segment must be mapped");
    }

    // ------------------------------------------------------------------
    // Request Generation Pipeline (RGP).
    // ------------------------------------------------------------------

    /// Notifies the RGP that `qp` may have fresh WQ entries (the coherence
    /// hint of a core's WQ store). Called by the access library after every
    /// post.
    pub(crate) fn notify_rgp(&mut self, engine: &mut ClusterEngine, now: SimTime, n: usize, qp: QpId) {
        let node = &mut self.nodes[n];
        if !node.rmc.active_qps.contains(&qp) {
            node.rmc.active_qps.push_back(qp);
        }
        if !node.rmc.rgp_busy {
            node.rmc.rgp_busy = true;
            // Detection latency: on average half a poll interval elapses
            // before the polling loop re-reads this WQ.
            let detect = node.rmc.timing.poll_interval / 2;
            engine.schedule_at(now + detect, move |w: &mut Cluster, e: &mut ClusterEngine| {
                w.rgp_service(e, n);
            });
        }
    }

    /// One RGP service step: consume at most one WQ entry from the QP at
    /// the head of the active list, unroll it, and chain.
    fn rgp_service(&mut self, engine: &mut ClusterEngine, n: usize) {
        let now = engine.now();
        let node = &mut self.nodes[n];
        let timing = node.rmc.timing;

        let Some(&qp) = node.rmc.active_qps.front() else {
            node.rmc.rgp_busy = false;
            return;
        };

        // Fetch the WQ entry at the RMC's consumer cursor through the
        // coherent hierarchy (this is where the core-to-RMC cache-to-cache
        // transfer of a fresh entry is paid).
        let (wq_index, expected_phase) = node.rmc.qps[qp.index()].wq_cursor();
        let wq_va = node.rmc.qps[qp.index()].wq_entry_addr(wq_index);
        let (pa, t_xl) = node.rmc_translate(now, wq_va);
        let pa = pa.expect("WQ rings are pinned by the driver");
        let t_read = node.rmc_line_access(t_xl, pa, AccessKind::Read);
        let mut line = [0u8; 64];
        node.read_virt(wq_va, &mut line).expect("WQ rings are mapped");

        let parsed = WqEntry::decode(&line).filter(|(_, phase)| *phase == expected_phase);
        let Some((entry, _)) = parsed else {
            // No new entry: retire this QP from the active list.
            node.rmc.active_qps.pop_front();
            if node.rmc.active_qps.is_empty() {
                node.rmc.rgp_busy = false;
            } else {
                engine.schedule_at(t_read, move |w: &mut Cluster, e: &mut ClusterEngine| {
                    w.rgp_service(e, n);
                });
            }
            return;
        };

        if node.rmc.itt.is_full() {
            // All tids in flight: retry after a poll interval.
            engine.schedule_at(
                now + timing.poll_interval,
                move |w: &mut Cluster, e: &mut ClusterEngine| w.rgp_service(e, n),
            );
            return;
        }

        let lines = entry.lines();
        let tid = node
            .rmc
            .itt
            .alloc(qp, wq_index, lines, entry.buf_vaddr)
            .expect("checked not full");
        node.rmc.qps[qp.index()].advance_wq();
        node.rmc.rgp_requests += 1;

        // Unroll into line-sized transactions (§4.2): one injection every
        // initiation interval.
        let t0 = t_read + timing.rgp_per_request;
        for k in 0..lines {
            let at = t0 + timing.unroll_interval * k as u64;
            let spec = LineRequest {
                dst: entry.dst,
                ctx: entry.ctx,
                tid,
                op: entry.op,
                offset: entry.offset + k as u64 * CACHE_LINE_BYTES,
                line_seq: k,
                payload_src: (entry.op == RemoteOp::Write)
                    .then(|| VAddr::new(entry.buf_vaddr + k as u64 * CACHE_LINE_BYTES)),
                operands: (entry.operand1, entry.operand2),
            };
            engine.schedule_at(at, move |w: &mut Cluster, e: &mut ClusterEngine| {
                w.inject_line(e, n, spec);
            });
        }

        // Rotate this QP to the back and chain the next service step once
        // the unroll finishes occupying the pipeline.
        let node = &mut self.nodes[n];
        if let Some(front) = node.rmc.active_qps.pop_front() {
            node.rmc.active_qps.push_back(front);
        }
        let t_next = (t0 + timing.unroll_interval * lines as u64).max(now + timing.stage_local);
        engine.schedule_at(t_next, move |w: &mut Cluster, e: &mut ClusterEngine| {
            w.rgp_service(e, n);
        });
    }

    /// Injects one unrolled line transaction into the fabric (reading the
    /// payload for writes).
    fn inject_line(&mut self, engine: &mut ClusterEngine, n: usize, spec: LineRequest) {
        let now = engine.now();
        let node = &mut self.nodes[n];
        let timing = node.rmc.timing;
        let src = NodeId(n as u16);

        let mut t = now;
        let mut payload: Option<[u8; 64]> = None;
        match spec.op {
            RemoteOp::Write => {
                let va = spec.payload_src.expect("writes carry a payload source");
                let (pa, t_xl) = node.rmc_translate(t, va);
                let pa = pa.expect("local buffer validated at post time");
                t = node.rmc_line_access(t_xl, pa, AccessKind::Read);
                let mut buf = [0u8; 64];
                node.read_virt(va, &mut buf).expect("local buffer mapped");
                payload = Some(buf);
            }
            RemoteOp::FetchAdd | RemoteOp::CompSwap | RemoteOp::Interrupt => {
                let mut buf = [0u8; 64];
                buf[0..8].copy_from_slice(&spec.operands.0.to_le_bytes());
                buf[8..16].copy_from_slice(&spec.operands.1.to_le_bytes());
                payload = Some(buf);
                t += timing.stage_local;
            }
            RemoteOp::Read => {
                t += timing.stage_local;
            }
        }

        let pkt = Packet {
            kind: sonuma_protocol::PacketKind::Request,
            dst: spec.dst,
            src,
            ctx: spec.ctx,
            tid: spec.tid,
            op: spec.op,
            status: Status::Ok,
            offset: spec.offset,
            line_seq: spec.line_seq,
            payload,
        };
        node.rmc.rgp_lines += 1;
        self.route_packet(engine, t, pkt);
    }

    /// Delivers `pkt` to its destination's RRPP (requests) or RCP
    /// (replies), through the fabric or the local NI loopback.
    fn route_packet(&mut self, engine: &mut ClusterEngine, t: SimTime, pkt: Packet) {
        let dst = pkt.dst.index();
        let is_request = pkt.kind == sonuma_protocol::PacketKind::Request;
        let deliver_at = if pkt.dst == pkt.src {
            // Local loopback through the NI: no fabric traversal.
            t + self.nodes[dst].rmc.timing.stage_local
        } else {
            self.fabric
                .send(t, pkt.src, pkt.dst, pkt.virtual_lane(), pkt.wire_bytes())
                .time
        };
        engine.schedule_at(deliver_at, move |w: &mut Cluster, e: &mut ClusterEngine| {
            if is_request {
                w.rrpp_handle(e, dst, pkt);
            } else {
                w.rcp_handle(e, dst, pkt);
            }
        });
    }

    // ------------------------------------------------------------------
    // Remote Request Processing Pipeline (RRPP) — stateless (§4.2, §6).
    // ------------------------------------------------------------------

    /// Services one incoming request packet at node `n` and sends exactly
    /// one reply.
    fn rrpp_handle(&mut self, engine: &mut ClusterEngine, n: usize, pkt: Packet) {
        let now = engine.now();
        let node = &mut self.nodes[n];
        let timing = node.rmc.timing;
        node.rmc.rrpp_served += 1;

        let mut t = now + timing.rrpp_per_packet;
        if !node.rmc.ct_cache.touch(pkt.ctx) {
            t += timing.ct_miss_penalty;
        }

        // Remote interrupt (§8 extension): validate the context, then hand
        // the payload to the registered handler core — no memory access.
        if pkt.op == RemoteOp::Interrupt {
            let status = match node.rmc.ct.lookup(pkt.ctx) {
                Ok(_) => {
                    let payload = pkt
                        .payload
                        .map(|p| u64::from_le_bytes(p[0..8].try_into().unwrap()))
                        .unwrap_or(0);
                    if node.interrupt_handler.is_some() {
                        node.pending_interrupts.push_back((pkt.src, payload));
                        self.deliver_interrupt(engine, n, t);
                    } else {
                        self.nodes[n].interrupts_dropped += 1;
                    }
                    Status::Ok
                }
                Err(status) => status,
            };
            let reply = Packet::reply_to(&pkt, status, None);
            let t = t + self.nodes[n].rmc.timing.stage_local;
            self.route_packet(engine, t, reply);
            return;
        }

        let size = if pkt.op.is_atomic() { 8 } else { CACHE_LINE_BYTES };
        // Stateless handling: everything below uses only the packet header
        // and this node's CT/page tables.
        let resolved = node
            .rmc
            .ct
            .lookup(pkt.ctx)
            .and_then(|entry| entry.resolve(pkt.offset, size));
        let va = match resolved {
            Ok(va) => va,
            Err(status) => {
                let reply = Packet::reply_to(&pkt, status, None);
                self.route_packet(engine, t + timing.stage_local, reply);
                return;
            }
        };

        let (pa, t_xl) = node.rmc_translate(t, va);
        let Ok(pa) = pa else {
            // Mapped-segment invariant violated only by teardown races;
            // surface as a bounds error per the paper's error reply path.
            let reply = Packet::reply_to(&pkt, Status::OutOfBounds, None);
            self.route_packet(engine, t + timing.stage_local, reply);
            return;
        };

        let kind = match pkt.op {
            RemoteOp::Read => AccessKind::Read,
            _ => AccessKind::Write,
        };
        let t_mem = node.rmc_line_access(t_xl, pa, kind);

        let mut reply_payload: Option<[u8; 64]> = None;
        match pkt.op {
            RemoteOp::Interrupt => unreachable!("handled before translation"),
            RemoteOp::Read => {
                let mut buf = [0u8; 64];
                node.read_virt(va, &mut buf).expect("segment mapped");
                reply_payload = Some(buf);
            }
            RemoteOp::Write => {
                let data = pkt.payload.expect("write request carries payload");
                node.write_virt(va, &data).expect("segment mapped");
                node.note_remote_write(va, CACHE_LINE_BYTES, t_mem);
            }
            RemoteOp::FetchAdd => {
                let delta = pkt.payload.map(|p| u64::from_le_bytes(p[0..8].try_into().unwrap()))
                    .expect("fetch-add carries operands");
                let old = node.phys.fetch_add_u64(pa, delta);
                let mut buf = [0u8; 64];
                buf[0..8].copy_from_slice(&old.to_le_bytes());
                reply_payload = Some(buf);
                node.note_remote_write(va, 8, t_mem);
            }
            RemoteOp::CompSwap => {
                let p = pkt.payload.expect("compare-swap carries operands");
                let expected = u64::from_le_bytes(p[0..8].try_into().unwrap());
                let new = u64::from_le_bytes(p[8..16].try_into().unwrap());
                let old = node.phys.compare_swap_u64(pa, expected, new);
                let mut buf = [0u8; 64];
                buf[0..8].copy_from_slice(&old.to_le_bytes());
                reply_payload = Some(buf);
                node.note_remote_write(va, 8, t_mem);
            }
        }

        // Remote writes/atomics may satisfy a memory watch (a core polling
        // its receive buffer).
        if kind == AccessKind::Write {
            self.trigger_watches(engine, n, va, size, t_mem);
        }

        let reply = Packet::reply_to(&pkt, Status::Ok, reply_payload);
        self.route_packet(engine, t_mem + timing.stage_local, reply);
    }

    /// Registers `core` as node `node`'s remote-interrupt handler (§8
    /// extension). Interrupts arriving with no handler are counted and
    /// dropped.
    pub fn set_interrupt_handler(&mut self, node: NodeId, core: usize) {
        assert!(core < self.nodes[node.index()].cores.len(), "core out of range");
        self.nodes[node.index()].interrupt_handler = Some(core);
    }

    /// Delivers the next pending interrupt to the handler core if it is
    /// parked (one per wake-up; redelivery happens when the core blocks
    /// again).
    fn deliver_interrupt(&mut self, engine: &mut ClusterEngine, n: usize, t: SimTime) {
        let Some(core) = self.nodes[n].interrupt_handler else {
            return;
        };
        let slot = &self.nodes[n].cores[core];
        let parked = matches!(
            slot.block,
            BlockState::WaitingCq(_)
                | BlockState::WaitingMemory(_, _)
                | BlockState::WaitingEither(_, _, _)
        );
        if !parked || slot.wake_pending || self.nodes[n].pending_interrupts.is_empty() {
            return;
        }
        let (from, payload) = self.nodes[n]
            .pending_interrupts
            .pop_front()
            .expect("checked nonempty");
        self.nodes[n].cores[core].wake_pending = true;
        let at = (t + self.config.software.wake_detect).max(self.nodes[n].cores[core].busy_until);
        engine.schedule_at(at, move |w: &mut Cluster, e: &mut ClusterEngine| {
            w.wake_core(e, n, core, Wake::Interrupt { from, payload });
        });
    }

    /// Wakes any core whose armed watch intersects the written range.
    fn trigger_watches(
        &mut self,
        engine: &mut ClusterEngine,
        n: usize,
        addr: VAddr,
        len: u64,
        t: SimTime,
    ) {
        while let Some(idx) = self.nodes[n].matching_watch(addr, len) {
            let watch = self.nodes[n].watches.swap_remove(idx);
            let core = watch.core;
            let slot = &mut self.nodes[n].cores[core];
            if slot.wake_pending {
                continue;
            }
            slot.wake_pending = true;
            let at = (t + self.config.software.wake_detect).max(slot.busy_until);
            engine.schedule_at(at, move |w: &mut Cluster, e: &mut ClusterEngine| {
                w.wake_core(e, n, core, Wake::MemoryTouched { addr });
            });
        }
    }

    // ------------------------------------------------------------------
    // Request Completion Pipeline (RCP) (§4.2).
    // ------------------------------------------------------------------

    /// Processes one reply at the originating node `n`.
    fn rcp_handle(&mut self, engine: &mut ClusterEngine, n: usize, pkt: Packet) {
        let now = engine.now();
        let node = &mut self.nodes[n];
        let timing = node.rmc.timing;
        node.rmc.rcp_replies += 1;

        let mut t = now + timing.rcp_per_packet;

        // Scatter the payload into the application buffer (reads/atomics).
        if pkt.status.is_ok() && pkt.op.reply_carries_payload() {
            let base = node.rmc.itt.buf_vaddr(pkt.tid);
            let dest = VAddr::new(base + pkt.line_seq as u64 * CACHE_LINE_BYTES);
            let (pa, t_xl) = node.rmc_translate(t, dest);
            let pa = pa.expect("local buffer validated at post time");
            t = node.rmc_line_access(t_xl, pa, AccessKind::Write);
            let payload = pkt.payload.expect("reply carries payload");
            if pkt.op.is_atomic() {
                node.write_virt(dest, &payload[0..8]).expect("buffer mapped");
            } else {
                node.write_virt(dest, &payload).expect("buffer mapped");
                node.bytes_read += CACHE_LINE_BYTES;
            }
        } else if pkt.op == RemoteOp::Write {
            node.bytes_written += CACHE_LINE_BYTES;
            t += timing.stage_local;
        }

        match node.rmc.itt.on_reply(pkt.tid, pkt.status) {
            ReplyAction::InProgress => {}
            ReplyAction::Complete { qp, wq_index, status } => {
                // Post the CQ entry through the coherent hierarchy.
                let (cq_index, cq_phase) = node.rmc.qps[qp.index()].cq_cursor();
                let cq_va = node.rmc.qps[qp.index()].cq_entry_addr(cq_index);
                let (pa, t_xl) = node.rmc_translate(t, cq_va);
                let pa = pa.expect("CQ rings are pinned");
                t = node.rmc_line_access(t_xl, pa, AccessKind::Write);
                let bytes = CqEntry { wq_index, status }.encode(cq_phase);
                node.write_virt(cq_va, &bytes).expect("CQ mapped");
                node.rmc.qps[qp.index()].advance_cq();
                node.ops_completed += 1;
                self.maybe_cq_wake(engine, n, qp, t);
            }
        }
    }

    /// Schedules a CQ wake-up for the QP's owner core if it is parked on
    /// this queue.
    fn maybe_cq_wake(&mut self, engine: &mut ClusterEngine, n: usize, qp: QpId, t: SimTime) {
        let owner = self.nodes[n].app_qps[qp.index()].owner_core;
        let slot = &self.nodes[n].cores[owner];
        let waiting = matches!(
            slot.block,
            BlockState::WaitingCq(q) | BlockState::WaitingEither(q, _, _) if q == qp
        );
        if !waiting || slot.wake_pending {
            return;
        }
        let busy = self.nodes[n].cores[owner].busy_until;
        self.nodes[n].cores[owner].wake_pending = true;
        let at = (t + self.config.software.wake_detect).max(busy);
        engine.schedule_at(at, move |w: &mut Cluster, e: &mut ClusterEngine| {
            w.deliver_cq_wake(e, n, qp);
        });
    }

    /// Drains the CQ and wakes the owner with the completions.
    fn deliver_cq_wake(&mut self, engine: &mut ClusterEngine, n: usize, qp: QpId) {
        let owner = self.nodes[n].app_qps[qp.index()].owner_core;
        let comps = self.drain_cq(n, qp);
        if comps.is_empty() {
            // Raced with an explicit poll; nothing to deliver.
            self.nodes[n].cores[owner].wake_pending = false;
            return;
        }
        self.wake_core(engine, n, owner, Wake::CqReady(comps));
    }

    /// Functionally drains every fresh CQ entry (application-side consumer).
    pub(crate) fn drain_cq(&mut self, n: usize, qp: QpId) -> Vec<Completion> {
        let mut out = Vec::new();
        loop {
            let (cq_index, cq_phase) = {
                let cur = &self.nodes[n].app_qps[qp.index()];
                (cur.cq_index, cur.cq_phase)
            };
            let cq_va = self.nodes[n].rmc.qps[qp.index()].cq_entry_addr(cq_index);
            let mut line = [0u8; 64];
            self.nodes[n]
                .read_virt(cq_va, &mut line)
                .expect("CQ mapped");
            match CqEntry::decode(&line) {
                Some((entry, phase)) if phase == cq_phase => {
                    out.push(Completion {
                        qp,
                        wq_index: entry.wq_index,
                        status: entry.status,
                    });
                    let entries = self.nodes[n].rmc.qps[qp.index()].entries();
                    let cur = &mut self.nodes[n].app_qps[qp.index()];
                    cur.cq_index += 1;
                    if cur.cq_index == entries {
                        cur.cq_index = 0;
                        cur.cq_phase = !cur.cq_phase;
                    }
                    cur.outstanding = cur.outstanding.saturating_sub(1);
                    cur.slot_busy[entry.wq_index as usize] = false;
                }
                _ => break,
            }
        }
        out
    }

    // ------------------------------------------------------------------
    // Core execution (run-to-block).
    // ------------------------------------------------------------------

    /// Runs one process wake-up and applies its blocking decision.
    pub(crate) fn wake_core(&mut self, engine: &mut ClusterEngine, n: usize, core: usize, why: Wake) {
        let Some(mut process) = self.nodes[n].cores[core].process.take() else {
            return;
        };
        // Disarm any watch this core had (single-wake semantics).
        self.nodes[n].watches.retain(|w| w.core != core);
        let slot = &mut self.nodes[n].cores[core];
        slot.block = BlockState::Running;
        slot.wake_pending = false;

        // Charge the software cost of observing this wake-up.
        let software = self.config.software;
        let base_charge = match &why {
            Wake::Start | Wake::Timer => SimTime::ZERO,
            Wake::CqReady(comps) => {
                software.cq_poll_cost + software.completion_cost * comps.len() as u64
            }
            Wake::MemoryTouched { .. } => software.cq_poll_cost,
            // Interrupt entry: vectoring + handler prologue, modeled like
            // one completion observation.
            Wake::Interrupt { .. } => software.completion_cost,
        };

        let mut api = NodeApi::new(self, engine, n, core, base_charge);
        let step = process.wake(&mut api, why);
        let elapsed = api.elapsed();
        let now = engine.now() + elapsed;

        if !matches!(step, Step::Done) {
            self.nodes[n].cores[core].process = Some(process);
        }
        self.apply_step(engine, n, core, step, now);
    }

    /// Applies a process's blocking decision at logical time `now`.
    fn apply_step(&mut self, engine: &mut ClusterEngine, n: usize, core: usize, step: Step, now: SimTime) {
        self.nodes[n].cores[core].busy_until = now;
        match step {
            Step::Done => {
                self.nodes[n].cores[core].block = BlockState::Idle;
                // Anchor the work performed in this final wake-up on the
                // event clock, so total simulated time includes it.
                engine.schedule_at(now, |_: &mut Cluster, _: &mut ClusterEngine| {});
            }
            Step::Sleep(d) => {
                self.nodes[n].cores[core].block = BlockState::Sleeping;
                engine.schedule_at(now + d, move |w: &mut Cluster, e: &mut ClusterEngine| {
                    w.wake_core(e, n, core, Wake::Timer);
                });
            }
            Step::WaitCq(qp) => {
                self.nodes[n].cores[core].block = BlockState::WaitingCq(qp);
                self.recheck_cq(engine, n, core, qp, now);
            }
            Step::WaitMemory { addr, len } => {
                self.nodes[n].cores[core].block = BlockState::WaitingMemory(addr, len);
                self.nodes[n].watches.push(Watch { core, addr, len });
            }
            Step::WaitCqOrMemory { qp, addr, len } => {
                self.nodes[n].cores[core].block = BlockState::WaitingEither(qp, addr, len);
                self.nodes[n].watches.push(Watch { core, addr, len });
                self.recheck_cq(engine, n, core, qp, now);
            }
        }
        // A parked handler core picks up any interrupt that arrived while
        // it was running.
        if self.nodes[n].interrupt_handler == Some(core)
            && !self.nodes[n].pending_interrupts.is_empty()
        {
            self.deliver_interrupt(engine, n, now);
        }
    }

    /// If completions already sit in the CQ when a core parks on it, wake
    /// it immediately (the poll loop would have found them).
    fn recheck_cq(&mut self, engine: &mut ClusterEngine, n: usize, core: usize, qp: QpId, now: SimTime) {
        let (cq_index, cq_phase) = {
            let cur = &self.nodes[n].app_qps[qp.index()];
            (cur.cq_index, cur.cq_phase)
        };
        let cq_va = self.nodes[n].rmc.qps[qp.index()].cq_entry_addr(cq_index);
        let mut line = [0u8; 64];
        self.nodes[n].read_virt(cq_va, &mut line).expect("CQ mapped");
        let fresh = matches!(CqEntry::decode(&line), Some((_, phase)) if phase == cq_phase);
        if fresh && !self.nodes[n].cores[core].wake_pending {
            self.nodes[n].cores[core].wake_pending = true;
            let poll = self.config.software.cq_poll_cost;
            engine.schedule_at(now + poll, move |w: &mut Cluster, e: &mut ClusterEngine| {
                w.deliver_cq_wake(e, n, qp);
            });
        }
    }

    // ------------------------------------------------------------------
    // Statistics.
    // ------------------------------------------------------------------

    /// Total remote operations completed across the cluster.
    pub fn total_ops_completed(&self) -> u64 {
        self.nodes.iter().map(|n| n.ops_completed).sum()
    }

    /// Total remote-read payload bytes delivered across the cluster.
    pub fn total_bytes_read(&self) -> u64 {
        self.nodes.iter().map(|n| n.bytes_read).sum()
    }

    /// Total remote-write payload bytes delivered across the cluster.
    pub fn total_bytes_written(&self) -> u64 {
        self.nodes.iter().map(|n| n.bytes_written).sum()
    }
}
