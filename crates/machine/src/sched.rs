//! Core scheduling: run-to-block execution, wake-up delivery and CQ/watch
//! parking.
//!
//! Simulated cores run [`crate::AppProcess`] state machines in
//! run-to-block style. This module owns everything between a pipeline
//! event and application code observing it: CQ wake-ups (with the
//! coherence-invalidation detection cost), memory watches (the model of a
//! core polling its receive buffer, §5.3), remote-interrupt delivery (§8
//! extension), and the application-side CQ drain.

use sonuma_memory::VAddr;
use sonuma_protocol::{CqEntry, NodeId, QpId};
use sonuma_sim::SimTime;

use crate::api::NodeApi;
use crate::cluster::Cluster;
use crate::event::{ClusterEvent, WakeReason};
use crate::node::{BlockState, Watch};
use crate::process::{Completion, Step, Wake};
use crate::ClusterEngine;

impl Cluster {
    // ------------------------------------------------------------------
    // Wake-up sources: CQ completions, memory watches, interrupts.
    // ------------------------------------------------------------------

    /// Schedules a CQ wake-up for the QP's owner core if it is parked on
    /// this queue.
    pub(crate) fn maybe_cq_wake(
        &mut self,
        engine: &mut ClusterEngine,
        n: usize,
        qp: QpId,
        t: SimTime,
    ) {
        let owner = self.node_mut(n).app_qps[qp.index()].owner_core;
        let slot = &self.node_mut(n).cores[owner];
        let waiting = matches!(
            slot.block,
            BlockState::WaitingCq(q) | BlockState::WaitingEither(q, _, _) if q == qp
        );
        if !waiting || slot.wake_pending {
            return;
        }
        let busy = self.node_mut(n).cores[owner].busy_until;
        self.node_mut(n).cores[owner].wake_pending = true;
        let at = (t + self.config().software.wake_detect).max(busy);
        engine.schedule_at(at, ClusterEvent::CqWake { node: n as u16, qp });
    }

    /// Drains the CQ and wakes the owner with the completions.
    pub(crate) fn deliver_cq_wake(&mut self, engine: &mut ClusterEngine, n: usize, qp: QpId) {
        let owner = self.node_mut(n).app_qps[qp.index()].owner_core;
        let comps = self.drain_cq(n, qp);
        if comps.is_empty() {
            // Raced with an explicit poll; nothing to deliver.
            self.node_mut(n).cores[owner].wake_pending = false;
            return;
        }
        self.wake_core(engine, n, owner, Wake::CqReady(comps));
    }

    /// Functionally drains every fresh CQ entry (application-side consumer).
    pub(crate) fn drain_cq(&mut self, n: usize, qp: QpId) -> Vec<Completion> {
        // O(1) emptiness check against the RMC's producer counter: the
        // overwhelmingly common empty poll must not walk the CQ ring
        // through page translation (a 512-node driver polls every node
        // between engine bursts).
        if self.node_mut(n).app_qps[qp.index()].cq_drained
            == self.node_mut(n).rmc.qps[qp.index()].cq_produced()
        {
            return Vec::new();
        }
        let mut out = Vec::new();
        loop {
            let (cq_index, cq_phase) = {
                let cur = &self.node_mut(n).app_qps[qp.index()];
                (cur.cq_index, cur.cq_phase)
            };
            let cq_va = self.node_mut(n).rmc.qps[qp.index()].cq_entry_addr(cq_index);
            let mut line = [0u8; 64];
            self.node_mut(n)
                .read_virt(cq_va, &mut line)
                .expect("CQ mapped");
            match CqEntry::decode(&line) {
                Some((entry, phase)) if phase == cq_phase => {
                    out.push(Completion {
                        qp,
                        wq_index: entry.wq_index,
                        status: entry.status,
                    });
                    let entries = self.node_mut(n).rmc.qps[qp.index()].entries();
                    let cur = &mut self.node_mut(n).app_qps[qp.index()];
                    cur.cq_index += 1;
                    if cur.cq_index == entries {
                        cur.cq_index = 0;
                        cur.cq_phase = !cur.cq_phase;
                    }
                    cur.cq_drained += 1;
                    cur.outstanding = cur.outstanding.saturating_sub(1);
                    cur.slot_busy[entry.wq_index as usize] = false;
                }
                _ => break,
            }
        }
        out
    }

    /// Wakes any core whose armed watch intersects the written range.
    pub(crate) fn trigger_watches(
        &mut self,
        engine: &mut ClusterEngine,
        n: usize,
        addr: VAddr,
        len: u64,
        t: SimTime,
    ) {
        let wake_detect = self.config().software.wake_detect;
        while let Some(idx) = self.node_mut(n).matching_watch(addr, len) {
            let watch = self.node_mut(n).watches.swap_remove(idx);
            let core = watch.core;
            let slot = &mut self.node_mut(n).cores[core];
            if slot.wake_pending {
                continue;
            }
            slot.wake_pending = true;
            let at = (t + wake_detect).max(slot.busy_until);
            engine.schedule_at(
                at,
                ClusterEvent::CoreWake {
                    node: n as u16,
                    core: core as u16,
                    reason: WakeReason::MemoryTouched { addr },
                },
            );
        }
    }

    /// Delivers the next pending interrupt to the handler core if it is
    /// parked (one per wake-up; redelivery happens when the core blocks
    /// again).
    pub(crate) fn deliver_interrupt(&mut self, engine: &mut ClusterEngine, n: usize, t: SimTime) {
        let Some(core) = self.node_mut(n).interrupt_handler else {
            return;
        };
        let slot = &self.node(n).cores[core];
        let parked = matches!(
            slot.block,
            BlockState::WaitingCq(_)
                | BlockState::WaitingMemory(_, _)
                | BlockState::WaitingEither(_, _, _)
        );
        let wake_pending = slot.wake_pending;
        if !parked || wake_pending || self.node(n).pending_interrupts.is_empty() {
            return;
        }
        let (from, payload) = self
            .node_mut(n)
            .pending_interrupts
            .pop_front()
            .expect("checked nonempty");
        self.node_mut(n).cores[core].wake_pending = true;
        let at = (t + self.config().software.wake_detect).max(self.node(n).cores[core].busy_until);
        engine.schedule_at(
            at,
            ClusterEvent::CoreWake {
                node: n as u16,
                core: core as u16,
                reason: WakeReason::Interrupt { from, payload },
            },
        );
    }

    // ------------------------------------------------------------------
    // Core execution (run-to-block).
    // ------------------------------------------------------------------

    /// Runs one process wake-up and applies its blocking decision.
    pub(crate) fn wake_core(
        &mut self,
        engine: &mut ClusterEngine,
        n: usize,
        core: usize,
        why: Wake,
    ) {
        let Some(mut process) = self.node_mut(n).cores[core].process.take() else {
            return;
        };
        // Disarm any watch this core had (single-wake semantics).
        self.node_mut(n).watches.retain(|w| w.core != core);
        let slot = &mut self.node_mut(n).cores[core];
        slot.block = BlockState::Running;
        slot.wake_pending = false;

        // Charge the software cost of observing this wake-up.
        let software = self.config().software;
        let base_charge = match &why {
            Wake::Start | Wake::Timer => SimTime::ZERO,
            Wake::CqReady(comps) => {
                software.cq_poll_cost + software.completion_cost * comps.len() as u64
            }
            Wake::MemoryTouched { .. } => software.cq_poll_cost,
            // Interrupt entry: vectoring + handler prologue, modeled like
            // one completion observation.
            Wake::Interrupt { .. } => software.completion_cost,
        };

        let mut api = NodeApi::new(self, engine, n, core, base_charge);
        let step = process.wake(&mut api, why);
        let elapsed = api.elapsed();
        let now = engine.now() + elapsed;

        if !matches!(step, Step::Done) {
            self.node_mut(n).cores[core].process = Some(process);
        }
        self.apply_step(engine, n, core, step, now);
    }

    /// Applies a process's blocking decision at logical time `now`.
    fn apply_step(
        &mut self,
        engine: &mut ClusterEngine,
        n: usize,
        core: usize,
        step: Step,
        now: SimTime,
    ) {
        self.node_mut(n).cores[core].busy_until = now;
        match step {
            Step::Done => {
                self.node_mut(n).cores[core].block = BlockState::Idle;
                // Anchor the work performed in this final wake-up on the
                // event clock, so total simulated time includes it.
                engine.schedule_at(now, ClusterEvent::Anchor);
            }
            Step::Sleep(d) => {
                self.node_mut(n).cores[core].block = BlockState::Sleeping;
                engine.schedule_at(
                    now + d,
                    ClusterEvent::CoreWake {
                        node: n as u16,
                        core: core as u16,
                        reason: WakeReason::Timer,
                    },
                );
            }
            Step::WaitCq(qp) => {
                self.node_mut(n).cores[core].block = BlockState::WaitingCq(qp);
                self.recheck_cq(engine, n, core, qp, now);
            }
            Step::WaitMemory { addr, len } => {
                self.node_mut(n).cores[core].block = BlockState::WaitingMemory(addr, len);
                self.node_mut(n).watches.push(Watch { core, addr, len });
            }
            Step::WaitCqOrMemory { qp, addr, len } => {
                self.node_mut(n).cores[core].block = BlockState::WaitingEither(qp, addr, len);
                self.node_mut(n).watches.push(Watch { core, addr, len });
                self.recheck_cq(engine, n, core, qp, now);
            }
        }
        // A parked handler core picks up any interrupt that arrived while
        // it was running.
        if self.node_mut(n).interrupt_handler == Some(core)
            && !self.node_mut(n).pending_interrupts.is_empty()
        {
            self.deliver_interrupt(engine, n, now);
        }
    }

    /// If completions already sit in the CQ when a core parks on it, wake
    /// it immediately (the poll loop would have found them).
    fn recheck_cq(
        &mut self,
        engine: &mut ClusterEngine,
        n: usize,
        core: usize,
        qp: QpId,
        now: SimTime,
    ) {
        let (cq_index, cq_phase) = {
            let cur = &self.node_mut(n).app_qps[qp.index()];
            (cur.cq_index, cur.cq_phase)
        };
        let cq_va = self.node_mut(n).rmc.qps[qp.index()].cq_entry_addr(cq_index);
        let mut line = [0u8; 64];
        self.node_mut(n)
            .read_virt(cq_va, &mut line)
            .expect("CQ mapped");
        let fresh = matches!(CqEntry::decode(&line), Some((_, phase)) if phase == cq_phase);
        if fresh && !self.node_mut(n).cores[core].wake_pending {
            self.node_mut(n).cores[core].wake_pending = true;
            let poll = self.config().software.cq_poll_cost;
            engine.schedule_at(now + poll, ClusterEvent::CqWake { node: n as u16, qp });
        }
    }

    /// Registers `core` as node `node`'s remote-interrupt handler (§8
    /// extension). Interrupts arriving with no handler are counted and
    /// dropped.
    pub fn set_interrupt_handler(&mut self, node: NodeId, core: usize) {
        assert!(
            core < self.node_mut(node.index()).cores.len(),
            "core out of range"
        );
        self.node_mut(node.index()).interrupt_handler = Some(core);
    }
}
