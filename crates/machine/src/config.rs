//! Cluster-wide configuration: hardware parameters plus software costs.

use sonuma_fabric::FabricConfig;
use sonuma_memory::HierarchyConfig;
use sonuma_rmc::RmcTiming;
use sonuma_sim::SimTime;

use crate::pipeline::rgp::SchedPolicy;

/// Costs of the user-level access library (§5.2) on a given platform.
///
/// These are the software-side halves of every remote operation: composing
/// and storing a WQ entry, polling the CQ, and dispatching a completion
/// callback. On the simulated hardware they bound per-core remote-operation
/// rate at ~10 M ops/s (§7.2: "the limited per-core remote read rate (due
/// to the software API's overhead on each request)"); on the development
/// platform the same path costs ~5x more (1.97 M IOPS, Table 2).
#[derive(Debug, Clone, Copy)]
pub struct SoftwareTiming {
    /// Composing + storing one WQ entry (the bare `rmc_*` issue path).
    pub post_cost: SimTime,
    /// One CQ poll that finds nothing.
    pub cq_poll_cost: SimTime,
    /// Observing one completion: reading the CQ entry and advancing the
    /// consumer cursor. Asynchronous applications additionally charge
    /// [`SoftwareTiming::callback_cost`] themselves per completion.
    pub completion_cost: SimTime,
    /// Callback dispatch and slot recycling per asynchronous operation —
    /// "the software API's overhead on each request" that bounds per-core
    /// remote operation rate at ~10 M ops/s (§7.5). Charged by the
    /// application's completion handler, not by the raw poll.
    pub callback_cost: SimTime,
    /// Latency from an RMC CQ write (or a remote write to watched memory)
    /// to the polling core observing it — the coherence invalidation plus
    /// the next poll iteration.
    pub wake_detect: SimTime,
    /// Per-message fixed cost of the software send/receive library
    /// (header packing, credit accounting; §5.3).
    pub msg_overhead: SimTime,
}

impl SoftwareTiming {
    /// The simulated-hardware platform (2 GHz OoO core).
    pub fn hardware() -> Self {
        SoftwareTiming {
            post_cost: SimTime::from_ns(25),
            cq_poll_cost: SimTime::from_ns(10),
            completion_cost: SimTime::from_ns(15),
            callback_cost: SimTime::from_ns(55),
            wake_detect: SimTime::from_ns(15),
            msg_overhead: SimTime::from_ns(50),
        }
    }

    /// The development platform (guest user space over Xen).
    pub fn emulated() -> Self {
        SoftwareTiming {
            post_cost: SimTime::from_ns(220),
            cq_poll_cost: SimTime::from_ns(55),
            completion_cost: SimTime::from_ns(55),
            callback_cost: SimTime::from_ns(170),
            wake_detect: SimTime::from_ns(100),
            msg_overhead: SimTime::from_ns(250),
        }
    }
}

/// Full configuration of a simulated soNUMA cluster.
#[derive(Debug, Clone)]
pub struct MachineConfig {
    /// Number of nodes on the fabric.
    pub nodes: usize,
    /// Application cores per node (the RMC is an extra agent).
    pub cores_per_node: usize,
    /// Physical memory per node, bytes.
    pub mem_bytes: u64,
    /// Cache/DRAM parameters (Table 1).
    pub hierarchy: HierarchyConfig,
    /// RMC pipeline timing.
    pub rmc: RmcTiming,
    /// Fabric topology and timing.
    pub fabric: FabricConfig,
    /// Access-library costs.
    pub software: SoftwareTiming,
    /// ITT capacity (in-flight WQ requests per node).
    pub itt_entries: usize,
    /// Queue-pair ring size used by the OS when creating QPs.
    pub qp_entries: u16,
    /// QoS policy each node's RGP uses to arbitrate between active QPs.
    pub sched_policy: SchedPolicy,
    /// Cache-line transactions one RGP unroll event injects (≥ 1). This is
    /// a host-side batching knob, not a timing parameter: every line keeps
    /// its own fabric injection timestamp and delivery time (spaced at the
    /// RMC's initiation interval) regardless of the burst size — bursting
    /// only folds what would be `burst` separate engine events into one
    /// service step, which is most of the event churn of large transfers.
    pub rgp_burst_lines: u32,
}

impl MachineConfig {
    /// The paper's simulated-hardware platform (Table 1) at `nodes` nodes.
    pub fn simulated_hardware(nodes: usize) -> Self {
        MachineConfig {
            nodes,
            cores_per_node: 1,
            mem_bytes: 4 << 30,
            hierarchy: HierarchyConfig::table1(),
            rmc: RmcTiming::hardware(),
            fabric: FabricConfig::paper_crossbar(nodes),
            software: SoftwareTiming::hardware(),
            itt_entries: 64,
            qp_entries: 64,
            sched_policy: SchedPolicy::RoundRobin,
            rgp_burst_lines: 8,
        }
    }

    /// The Xen-based development platform (§7.1) at `nodes` nodes: same
    /// architecture, software-emulation costs.
    pub fn dev_platform(nodes: usize) -> Self {
        MachineConfig {
            nodes,
            cores_per_node: 1,
            mem_bytes: 4 << 30,
            hierarchy: HierarchyConfig::table1(),
            rmc: RmcTiming::emulated(),
            fabric: FabricConfig::dev_platform(nodes),
            software: SoftwareTiming::emulated(),
            itt_entries: 64,
            qp_entries: 64,
            sched_policy: SchedPolicy::RoundRobin,
            rgp_burst_lines: 8,
        }
    }

    /// A single-node multicore for the `SHM(pthreads)` PageRank baseline:
    /// `cores` cores sharing one coherent hierarchy with 4 MB of LLC per
    /// core (§7.5).
    pub fn shared_memory_node(cores: usize) -> Self {
        let mut c = Self::simulated_hardware(1);
        c.cores_per_node = cores;
        c.hierarchy = HierarchyConfig::table1_multicore(cores);
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_consistent() {
        let hw = MachineConfig::simulated_hardware(8);
        assert_eq!(hw.nodes, 8);
        assert_eq!(hw.fabric.topology.nodes(), 8);
        assert_eq!(hw.cores_per_node, 1);

        let dev = MachineConfig::dev_platform(16);
        assert_eq!(dev.fabric.topology.nodes(), 16);
        assert!(dev.software.post_cost > hw.software.post_cost);
        assert!(dev.rmc.unroll_interval > hw.rmc.unroll_interval);
    }

    #[test]
    fn hardware_issue_rate_targets_ten_million_iops() {
        let s = SoftwareTiming::hardware();
        // Async loop: issue + observe + callback per operation.
        let per_op = s.post_cost + s.completion_cost + s.callback_cost;
        let iops = 1e9 / per_op.as_ns_f64() * 1e-6;
        assert!(
            (8.0..13.0).contains(&iops),
            "async issue rate {iops} M ops/s"
        );
    }

    #[test]
    fn shm_node_scales_llc() {
        let c = MachineConfig::shared_memory_node(8);
        assert_eq!(c.cores_per_node, 8);
        assert_eq!(c.hierarchy.l2_geometry.size_bytes(), 8 * 4 * 1024 * 1024);
    }
}
