//! [`SonumaBackend`]: the soNUMA machine behind the transport-agnostic
//! [`RemoteBackend`] contract.
//!
//! The backend owns a [`Cluster`] plus its engine and drives tenant
//! channels — one queue pair per `(node, channel)` — from outside the
//! simulation: posts go through the same access-library path simulated
//! applications use ([`crate::NodeApi`]), so they pay WQ-store, RGP,
//! fabric, RRPP and RCP costs exactly as §4.2 models them, and channels
//! registered with [`SonumaBackend::register_tenant_channel`] are
//! scheduled by the RGP under their tenant's weight and SLO class. This
//! is what lets `sonuma-core`'s backend conformance suite and the Table 2
//! harness run identical request streams over soNUMA and over the
//! baseline transports, and what lets the multi-tenant traffic harness
//! create real per-tenant contention inside one node's RMC.

use std::collections::{BTreeMap, HashMap};

use sonuma_memory::VAddr;
use sonuma_protocol::{
    BackendError, CtxId, NodeId, QpId, RemoteBackend, RemoteCompletion, RemoteOp, RemoteRequest,
    TenantId,
};
use sonuma_sim::SimTime;

use crate::api::{ApiError, NodeApi};
use crate::cluster::Cluster;
use crate::config::MachineConfig;
use crate::event::ClusterEvent;
use crate::tenancy::{SloClass, TenantSpec};
use crate::ClusterEngine;

const BACKEND_CTX: CtxId = CtxId(0);

/// One posted-but-not-yet-reported operation.
#[derive(Debug, Clone, Copy)]
struct PendingOp {
    token: u64,
    op: RemoteOp,
    /// Local landing buffer (reads/atomics read back at completion).
    buf: VAddr,
    len: u64,
}

/// Driver state of one tenant channel: its queue pair, in-flight
/// operations keyed by WQ slot (unique among outstanding operations on
/// one QP), and pooled landing buffers.
#[derive(Debug)]
struct ChannelPort {
    qp: QpId,
    pending: HashMap<u16, PendingOp>,
    /// Pooled landing buffers, one per WQ slot, grown on demand and
    /// reused across operations so arbitrarily long request streams never
    /// exhaust the node heap.
    bufs: HashMap<u16, (VAddr, u64)>,
}

/// Per-node driver state: tenant channels (ordered map — harvest order,
/// and therefore report content, is independent of registration pattern)
/// plus the node-wide completion staging area and token counter.
#[derive(Debug, Default)]
struct NodePort {
    channels: BTreeMap<u32, ChannelPort>,
    ready: Vec<RemoteCompletion>,
    next_token: u64,
}

/// The full soNUMA machine exposed as a [`RemoteBackend`].
///
/// # Example
///
/// ```
/// use sonuma_machine::SonumaBackend;
/// use sonuma_protocol::{NodeId, RemoteBackend, RemoteRequest};
///
/// let mut b = SonumaBackend::simulated_hardware(2, 1 << 20);
/// b.write_ctx(NodeId(1), 0, &[0xAB; 64]);
/// let t = b.post(NodeId(0), RemoteRequest::read(NodeId(1), 0, 64)).unwrap();
/// let done = b.complete_all(NodeId(0));
/// assert_eq!(done[0].token, t);
/// assert_eq!(done[0].data, vec![0xAB; 64]);
/// ```
pub struct SonumaBackend {
    cluster: Cluster,
    engine: ClusterEngine,
    ports: Vec<NodePort>,
    segment_len: u64,
    /// Idle-clock floor (`advance_clock_to`): the engine clock only moves
    /// while events execute, so the externally visible `now()` reports
    /// the max of the two. An Anchor event scheduled at the floor pulls
    /// the engine clock up on the next `advance()`.
    clock_floor: SimTime,
}

impl std::fmt::Debug for SonumaBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SonumaBackend")
            .field("nodes", &self.cluster.num_nodes())
            .field("now", &self.engine.now())
            .finish()
    }
}

impl SonumaBackend {
    /// Builds a backend over `config` with a `segment_len`-byte context on
    /// every node.
    ///
    /// # Panics
    ///
    /// Panics if the segment cannot be mapped.
    pub fn new(config: MachineConfig, segment_len: u64) -> Self {
        let nodes = config.nodes;
        let mut cluster = Cluster::new(config);
        cluster
            .create_context(BACKEND_CTX, segment_len)
            .expect("segment must fit in node memory");
        SonumaBackend {
            cluster,
            engine: ClusterEngine::new(),
            ports: (0..nodes).map(|_| NodePort::default()).collect(),
            segment_len,
            clock_floor: SimTime::ZERO,
        }
    }

    /// The paper's simulated-hardware platform (Table 1).
    pub fn simulated_hardware(nodes: usize, segment_len: u64) -> Self {
        Self::new(MachineConfig::simulated_hardware(nodes), segment_len)
    }

    /// The Xen-based development platform (§7.1).
    pub fn dev_platform(nodes: usize, segment_len: u64) -> Self {
        Self::new(MachineConfig::dev_platform(nodes), segment_len)
    }

    /// The underlying cluster (pipeline statistics, node inspection).
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// Registers tenant `channel` on `node`: the tenant is registered
    /// with the node's RMC under `(weight, slo)` and a dedicated queue
    /// pair is created for it, so [`RemoteBackend::post_on`] traffic for
    /// this channel is scheduled by the RGP under the tenant's QoS class.
    ///
    /// # Panics
    ///
    /// Panics if QP ring allocation fails (node memory exhausted).
    pub fn register_tenant_channel(
        &mut self,
        node: NodeId,
        channel: u32,
        tenant: TenantId,
        weight: u32,
        slo: SloClass,
    ) {
        let n = node.index();
        self.cluster.register_tenant(
            node,
            TenantSpec {
                id: tenant,
                weight,
                slo,
            },
        );
        let qp = self
            .cluster
            .create_tenant_qp(node, BACKEND_CTX, 0, tenant)
            .expect("QP ring allocation failed");
        self.ports[n].channels.insert(
            channel,
            ChannelPort {
                qp,
                pending: HashMap::new(),
                bufs: HashMap::new(),
            },
        );
    }

    /// Lazily creates node `n`'s queue pair for `channel` (core 0 owns
    /// it; the QP is untagged, i.e. best-effort, unless the channel was
    /// registered through [`SonumaBackend::register_tenant_channel`]).
    fn channel_qp(&mut self, n: usize, channel: u32) -> QpId {
        if let Some(port) = self.ports[n].channels.get(&channel) {
            return port.qp;
        }
        let qp = self
            .cluster
            .create_qp(NodeId(n as u16), BACKEND_CTX, 0)
            .expect("QP ring allocation failed");
        self.ports[n].channels.insert(
            channel,
            ChannelPort {
                qp,
                pending: HashMap::new(),
                bufs: HashMap::new(),
            },
        );
        qp
    }

    /// Harvests CQ entries for node `n` into finished completions.
    ///
    /// Allocation-free while nothing has completed: channels are walked in
    /// place and `drain_cq`'s empty fast path returns before touching the
    /// ring, so the per-advance poll sweep over hundreds of idle nodes
    /// costs integer compares, not heap traffic.
    fn harvest(&mut self, n: usize) {
        let cluster = &mut self.cluster;
        let NodePort {
            channels, ready, ..
        } = &mut self.ports[n];
        for port in channels.values_mut() {
            let comps = cluster.drain_cq(n, port.qp);
            for c in comps {
                let Some(p) = port.pending.remove(&c.wq_index) else {
                    continue;
                };
                let mut data = Vec::new();
                if c.status.is_ok() {
                    match p.op {
                        RemoteOp::Read => {
                            data = vec![0u8; p.len as usize];
                            cluster.nodes[n]
                                .read_virt(p.buf, &mut data)
                                .expect("landing buffer mapped");
                        }
                        RemoteOp::FetchAdd | RemoteOp::CompSwap => {
                            data = vec![0u8; 8];
                            cluster.nodes[n]
                                .read_virt(p.buf, &mut data)
                                .expect("landing buffer mapped");
                        }
                        RemoteOp::Write | RemoteOp::Interrupt => {}
                    }
                }
                ready.push(RemoteCompletion {
                    token: p.token,
                    status: c.status,
                    data,
                });
            }
        }
    }
}

impl RemoteBackend for SonumaBackend {
    fn label(&self) -> &'static str {
        "soNUMA"
    }

    fn num_nodes(&self) -> usize {
        self.cluster.num_nodes()
    }

    fn segment_len(&self) -> u64 {
        self.segment_len
    }

    fn write_ctx(&mut self, node: NodeId, offset: u64, data: &[u8]) {
        self.cluster.write_ctx(node, BACKEND_CTX, offset, data);
    }

    fn read_ctx(&self, node: NodeId, offset: u64, buf: &mut [u8]) {
        self.cluster.read_ctx(node, BACKEND_CTX, offset, buf);
    }

    fn post(&mut self, src: NodeId, req: RemoteRequest) -> Result<u64, BackendError> {
        self.post_on(src, 0, req)
    }

    fn post_on(
        &mut self,
        src: NodeId,
        channel: u32,
        req: RemoteRequest,
    ) -> Result<u64, BackendError> {
        let n = src.index();
        if n >= self.cluster.num_nodes() || req.dst.index() >= self.cluster.num_nodes() {
            return Err(BackendError::BadNode);
        }
        if req.op == RemoteOp::Write && req.len != req.payload.len() as u64 {
            return Err(BackendError::BadRequest);
        }
        let qp = self.channel_qp(n, channel);

        // Stage a landing/source buffer sized for the payload (whole lines:
        // the RMC moves cache-line multiples).
        let buf_len = match req.op {
            RemoteOp::Read | RemoteOp::Write => req.len,
            _ => 64,
        };
        if buf_len == 0 {
            // Zero-length reads/writes are rejected before touching the WQ.
            return Err(BackendError::BadRequest);
        }
        // Reuse (or grow) the landing buffer pooled for the WQ slot this
        // post will occupy; a failed post leaves the buffer pooled, so
        // neither retries nor long streams leak node heap.
        let need = buf_len.max(64);
        let wq_slot = {
            let api = NodeApi::new(&mut self.cluster, &mut self.engine, n, 0, SimTime::ZERO);
            api.next_wq_index(qp)
        };
        let pooled = self.ports[n]
            .channels
            .get(&channel)
            .and_then(|port| port.bufs.get(&wq_slot))
            .copied();
        let buf = match pooled {
            Some((va, len)) if len >= need => va,
            _ => {
                let mut api =
                    NodeApi::new(&mut self.cluster, &mut self.engine, n, 0, SimTime::ZERO);
                let va = api.heap_alloc(need).map_err(|_| BackendError::Exhausted)?;
                self.ports[n]
                    .channels
                    .get_mut(&channel)
                    .expect("channel exists")
                    .bufs
                    .insert(wq_slot, (va, need));
                va
            }
        };
        let mut api = NodeApi::new(&mut self.cluster, &mut self.engine, n, 0, SimTime::ZERO);
        if req.op == RemoteOp::Write {
            api.local_write(buf, &req.payload).expect("buffer mapped");
        }
        let posted = match req.op {
            RemoteOp::Read => api.post_read(qp, req.dst, BACKEND_CTX, req.offset, buf, req.len),
            RemoteOp::Write => api.post_write(
                qp,
                req.dst,
                BACKEND_CTX,
                req.offset,
                buf,
                req.payload.len() as u64,
            ),
            RemoteOp::FetchAdd => {
                api.post_fetch_add(qp, req.dst, BACKEND_CTX, req.offset, buf, req.operands.0)
            }
            RemoteOp::CompSwap => api.post_comp_swap(
                qp,
                req.dst,
                BACKEND_CTX,
                req.offset,
                buf,
                req.operands.0,
                req.operands.1,
            ),
            RemoteOp::Interrupt => return Err(BackendError::BadRequest),
        };
        let wq_index = match posted {
            Ok(i) => i,
            Err(ApiError::WqFull) => return Err(BackendError::Backpressure),
            Err(ApiError::BadLength) => return Err(BackendError::BadRequest),
            Err(_) => return Err(BackendError::BadRequest),
        };
        let port = &mut self.ports[n];
        let token = port.next_token;
        port.next_token += 1;
        port.channels
            .get_mut(&channel)
            .expect("channel exists")
            .pending
            .insert(
                wq_index,
                PendingOp {
                    token,
                    op: req.op,
                    buf,
                    len: req.len,
                },
            );
        Ok(token)
    }

    fn poll(&mut self, src: NodeId) -> Vec<RemoteCompletion> {
        let n = src.index();
        self.harvest(n);
        std::mem::take(&mut self.ports[n].ready)
    }

    fn advance(&mut self) -> bool {
        if self.engine.pending() == 0 {
            return false;
        }
        // One bounded burst per call keeps advance() responsive without
        // busy-stepping single events. The burst also bounds the clock
        // granularity callers observe between polls (completion latencies
        // measured at poll time are late by at most one burst's span).
        self.engine.run_steps(&mut self.cluster, 64);
        self.engine.pending() > 0
    }

    fn now(&self) -> SimTime {
        self.engine.now().max(self.clock_floor)
    }

    fn advance_clock_to(&mut self, t: SimTime) {
        // The floor moves `now()` immediately (the trait contract); the
        // Anchor event — which touches no state — pulls the engine's own
        // clock up on the next advance(), so the machinery's internal
        // timing catches up too.
        if t > self.engine.now() {
            self.clock_floor = self.clock_floor.max(t);
            self.engine.schedule_at(t, ClusterEvent::Anchor);
        }
    }

    fn events_processed(&self) -> u64 {
        // Engine events plus the logical injections folded into line
        // bursts, so the count (and events/sec) is invariant under
        // `rgp_burst_lines` batching.
        self.engine.events_executed() + self.cluster.batched_logical_events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_atomic_roundtrip() {
        let mut b = SonumaBackend::simulated_hardware(2, 1 << 20);
        let src = NodeId(0);
        let dst = NodeId(1);

        b.write_ctx(dst, 0, &[9u8; 128]);
        let t_read = b.post(src, RemoteRequest::read(dst, 0, 128)).unwrap();
        let t_write = b
            .post(src, RemoteRequest::write(dst, 256, vec![3u8; 64]))
            .unwrap();
        let t_fa = b.post(src, RemoteRequest::fetch_add(dst, 512, 41)).unwrap();
        let done = b.complete_all(src);
        assert_eq!(done.len(), 3);
        for c in &done {
            assert!(c.status.is_ok(), "completion failed: {c:?}");
            if c.token == t_read {
                assert_eq!(c.data, vec![9u8; 128]);
            } else if c.token == t_fa {
                assert_eq!(u64::from_le_bytes(c.data[..8].try_into().unwrap()), 0);
            } else {
                assert_eq!(c.token, t_write);
            }
        }
        let mut back = [0u8; 64];
        b.read_ctx(dst, 256, &mut back);
        assert_eq!(back, [3u8; 64]);
        let mut ctr = [0u8; 8];
        b.read_ctx(dst, 512, &mut ctr);
        assert_eq!(u64::from_le_bytes(ctr), 41);
        assert!(b.now() > SimTime::ZERO, "operations charge simulated time");
    }

    #[test]
    fn out_of_bounds_reports_status() {
        let mut b = SonumaBackend::simulated_hardware(2, 4096);
        let far = 1 << 30;
        b.post(NodeId(0), RemoteRequest::read(NodeId(1), far, 64))
            .unwrap();
        let done = b.complete_all(NodeId(0));
        assert_eq!(done.len(), 1);
        assert!(!done[0].status.is_ok());
        assert!(done[0].data.is_empty());
    }

    #[test]
    fn pipeline_stats_visible_through_backend() {
        let mut b = SonumaBackend::simulated_hardware(2, 1 << 20);
        for _ in 0..4 {
            b.post(NodeId(0), RemoteRequest::read(NodeId(1), 0, 256))
                .unwrap();
        }
        let _ = b.complete_all(NodeId(0));
        let src_stats = b.cluster().pipeline_stats(NodeId(0));
        let dst_stats = b.cluster().pipeline_stats(NodeId(1));
        assert_eq!(src_stats.rgp_requests, 4);
        assert_eq!(src_stats.rgp_lines, 16, "256 B unrolls into 4 lines");
        assert_eq!(dst_stats.rrpp_served, 16);
        assert_eq!(src_stats.rcp_completions, 4);
    }

    #[test]
    fn tenant_channels_are_isolated_queues() {
        let mut b = SonumaBackend::simulated_hardware(2, 1 << 20);
        b.register_tenant_channel(NodeId(0), 0, TenantId(100), 1, SloClass::Gold);
        b.register_tenant_channel(NodeId(0), 1, TenantId(101), 1, SloClass::Bronze);
        // Fill channel 0's entire WQ ring.
        let entries = b.cluster().config().qp_entries as usize;
        for _ in 0..entries {
            b.post_on(NodeId(0), 0, RemoteRequest::read(NodeId(1), 0, 64))
                .unwrap();
        }
        assert_eq!(
            b.post_on(NodeId(0), 0, RemoteRequest::read(NodeId(1), 0, 64)),
            Err(BackendError::Backpressure),
            "channel 0 is full"
        );
        // Channel 1 still accepts posts: one tenant's backlog cannot
        // reject another's work.
        let t = b
            .post_on(NodeId(0), 1, RemoteRequest::read(NodeId(1), 0, 64))
            .unwrap();
        let done = b.complete_all(NodeId(0));
        assert_eq!(done.len(), entries + 1);
        assert!(done.iter().any(|c| c.token == t));
        // Per-tenant accounting reached the RMC.
        let stats = b.cluster().tenant_stats(NodeId(0));
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0].1.completions, entries as u64);
        assert_eq!(stats[1].1.completions, 1);
    }

    #[test]
    fn advance_clock_to_moves_idle_time_forward() {
        let mut b = SonumaBackend::simulated_hardware(2, 4096);
        assert_eq!(b.now(), SimTime::ZERO);
        b.advance_clock_to(SimTime::from_us(5));
        assert_eq!(
            b.now(),
            SimTime::from_us(5),
            "the jump is visible immediately, per the trait contract"
        );
        while b.advance() {}
        assert_eq!(b.now(), SimTime::from_us(5));
        // Posting after the jump charges from the advanced clock.
        b.post(NodeId(0), RemoteRequest::read(NodeId(1), 0, 64))
            .unwrap();
        let _ = b.complete_all(NodeId(0));
        assert!(b.now() > SimTime::from_us(5));
    }
}
