//! [`SonumaBackend`]: the soNUMA machine behind the transport-agnostic
//! [`RemoteBackend`] contract.
//!
//! The backend owns a [`ShardedCluster`] — the cluster partitioned into
//! per-thread shards advancing in conservative epochs — and drives tenant
//! channels (one queue pair per `(node, channel)`) from outside the
//! simulation: posts go through the same access-library path simulated
//! applications use ([`crate::NodeApi`]), so they pay WQ-store, RGP,
//! fabric, RRPP and RCP costs exactly as §4.2 models them. With
//! `threads = 1` the cluster is a single shard and execution is serial;
//! with `threads = N` the shards run on `N` OS threads, and the epoch
//! merge keeps every simulated outcome bit-identical to the serial run
//! (see [`crate::shard`] for the argument). Channels registered with
//! [`SonumaBackend::register_tenant_channel`] are scheduled by the RGP
//! under their tenant's weight and SLO class.

use std::collections::{BTreeMap, HashMap};

use sonuma_fabric::{Fabric, ShardPlan};
use sonuma_memory::VAddr;
use sonuma_protocol::{
    BackendError, CtxId, NodeId, QpId, RemoteBackend, RemoteCompletion, RemoteOp, RemoteRequest,
    TenantId,
};
use sonuma_sim::SimTime;

use crate::api::{ApiError, NodeApi};
use crate::config::MachineConfig;
use crate::pipeline::PipelineStats;
use crate::shard::ShardedCluster;
use crate::tenancy::{SloClass, TenantSpec, TenantStats};

const BACKEND_CTX: CtxId = CtxId(0);

/// One posted-but-not-yet-reported operation.
#[derive(Debug, Clone, Copy)]
struct PendingOp {
    token: u64,
    op: RemoteOp,
    /// Local landing buffer (reads/atomics read back at completion).
    buf: VAddr,
    len: u64,
}

/// Driver state of one tenant channel: its queue pair, in-flight
/// operations keyed by WQ slot (unique among outstanding operations on
/// one QP), and pooled landing buffers.
#[derive(Debug)]
struct ChannelPort {
    qp: QpId,
    pending: HashMap<u16, PendingOp>,
    /// Pooled landing buffers, one per WQ slot, grown on demand and
    /// reused across operations so arbitrarily long request streams never
    /// exhaust the node heap.
    bufs: HashMap<u16, (VAddr, u64)>,
}

/// Per-node driver state: tenant channels (ordered map — harvest order,
/// and therefore report content, is independent of registration pattern)
/// plus the node-wide completion staging area and token counter.
#[derive(Debug, Default)]
struct NodePort {
    channels: BTreeMap<u32, ChannelPort>,
    ready: Vec<RemoteCompletion>,
    next_token: u64,
}

/// A registered tenant channel, logged so `set_threads` can rebuild the
/// cluster under a new partition and replay the registrations.
#[derive(Debug, Clone, Copy)]
struct TenantChannel {
    node: NodeId,
    channel: u32,
    tenant: TenantId,
    weight: u32,
    slo: SloClass,
}

/// The full soNUMA machine exposed as a [`RemoteBackend`].
///
/// # Example
///
/// ```
/// use sonuma_machine::SonumaBackend;
/// use sonuma_protocol::{NodeId, RemoteBackend, RemoteRequest};
///
/// let mut b = SonumaBackend::simulated_hardware(2, 1 << 20);
/// b.write_ctx(NodeId(1), 0, &[0xAB; 64]);
/// let t = b.post(NodeId(0), RemoteRequest::read(NodeId(1), 0, 64)).unwrap();
/// let done = b.complete_all(NodeId(0));
/// assert_eq!(done[0].token, t);
/// assert_eq!(done[0].data, vec![0xAB; 64]);
/// ```
pub struct SonumaBackend {
    sharded: ShardedCluster,
    ports: Vec<NodePort>,
    segment_len: u64,
    tenant_log: Vec<TenantChannel>,
    /// Idle-clock floor (`advance_clock_to`): the externally visible
    /// `now()` never lags behind a requested jump even while events are
    /// still catching up.
    clock_floor: SimTime,
}

impl std::fmt::Debug for SonumaBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SonumaBackend")
            .field("nodes", &self.sharded.num_nodes())
            .field("shards", &self.sharded.num_shards())
            .field("now", &self.now())
            .finish()
    }
}

impl SonumaBackend {
    /// Builds a single-threaded (one-shard) backend over `config` with a
    /// `segment_len`-byte context on every node.
    ///
    /// # Panics
    ///
    /// Panics if the segment cannot be mapped.
    pub fn new(config: MachineConfig, segment_len: u64) -> Self {
        Self::with_threads(config, segment_len, 1)
    }

    /// Builds a backend whose cluster is sharded across `threads` OS
    /// threads (topology-aware contiguous partition). Results are
    /// bit-identical for every `threads` value; only wall-clock changes.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero or the segment cannot be mapped.
    pub fn with_threads(config: MachineConfig, segment_len: u64, threads: usize) -> Self {
        Self::from_sharded(ShardedCluster::new(config, threads), segment_len)
    }

    /// Builds a backend over an explicit node→shard partition (testing
    /// surface for the partition-equivalence properties; `bounds` as in
    /// `ShardPlan::from_bounds`).
    ///
    /// # Panics
    ///
    /// Panics on an invalid plan or if the segment cannot be mapped.
    pub fn with_partition(config: MachineConfig, segment_len: u64, bounds: Vec<usize>) -> Self {
        let plan = ShardPlan::from_bounds(bounds).expect("valid shard bounds");
        Self::from_sharded(ShardedCluster::with_plan(config, plan), segment_len)
    }

    fn from_sharded(mut sharded: ShardedCluster, segment_len: u64) -> Self {
        let nodes = sharded.num_nodes();
        sharded
            .create_context(BACKEND_CTX, segment_len)
            .expect("segment must fit in node memory");
        SonumaBackend {
            sharded,
            ports: (0..nodes).map(|_| NodePort::default()).collect(),
            segment_len,
            tenant_log: Vec::new(),
            clock_floor: SimTime::ZERO,
        }
    }

    /// The paper's simulated-hardware platform (Table 1).
    pub fn simulated_hardware(nodes: usize, segment_len: u64) -> Self {
        Self::new(MachineConfig::simulated_hardware(nodes), segment_len)
    }

    /// The Xen-based development platform (§7.1).
    pub fn dev_platform(nodes: usize, segment_len: u64) -> Self {
        Self::new(MachineConfig::dev_platform(nodes), segment_len)
    }

    /// The cluster configuration.
    pub fn config(&self) -> &MachineConfig {
        self.sharded.config()
    }

    /// Number of shards (== executing threads).
    pub fn num_shards(&self) -> usize {
        self.sharded.num_shards()
    }

    /// Conservative epochs executed so far (partition-invariant).
    pub fn epochs(&self) -> u64 {
        self.sharded.epochs()
    }

    /// Sets the speculative run-ahead depth `K` (see
    /// `ShardedCluster::set_speculation`). Byte-invisible in results;
    /// survives a later [`SonumaBackend::set_threads`] rebuild.
    pub fn set_speculation(&mut self, k: u32) {
        self.sharded.set_speculation(k);
    }

    /// The configured speculative run-ahead depth.
    pub fn speculation_depth(&self) -> u32 {
        self.sharded.speculation_depth()
    }

    /// `(committed, rolled_back)` clock speculations so far.
    pub fn speculation(&self) -> (u64, u64) {
        self.sharded.speculation()
    }

    /// The global memory fabric (traffic counters, link stats).
    pub fn fabric(&self) -> &Fabric {
        self.sharded.fabric()
    }

    /// Arms a flight recorder on the underlying cluster (see
    /// [`ShardedCluster::arm_trace`]). Must run after any
    /// [`SonumaBackend::set_threads`] call — re-sharding rebuilds the
    /// cluster and would discard the recorder.
    ///
    /// # Panics
    ///
    /// Panics if traffic has already run or the interval is zero.
    pub fn arm_trace(&mut self, config: &sonuma_trace::TraceConfig) {
        self.sharded.arm_trace(config);
    }

    /// The armed flight recorder, if any.
    pub fn trace(&self) -> Option<&sonuma_trace::FlightRecorder> {
        self.sharded.trace()
    }

    /// Pipeline counters of `node`.
    pub fn pipeline_stats(&self, node: NodeId) -> PipelineStats {
        self.sharded.pipeline_stats(node)
    }

    /// Cluster-wide pipeline counter totals.
    pub fn total_pipeline_stats(&self) -> PipelineStats {
        self.sharded.total_pipeline_stats()
    }

    /// Per-tenant counters of `node`, in registration order.
    pub fn tenant_stats(&self, node: NodeId) -> Vec<(TenantSpec, TenantStats)> {
        self.sharded.tenant_stats(node)
    }

    /// Per-shard logical event counts (shard metadata for reports).
    pub fn shard_events(&self) -> Vec<u64> {
        self.sharded.shard_events()
    }

    /// Fabric links cut by the shard partition (0 on a single shard).
    pub fn cut_links(&self) -> usize {
        self.sharded.cut_links()
    }

    /// `(min, max)` over the per-shard-pair lookahead matrix. On a single
    /// shard or a crossbar both equal the scalar fabric lookahead.
    pub fn lookahead_bounds(&self) -> (SimTime, SimTime) {
        self.sharded.lookahead_bounds()
    }

    /// Cross-shard deliveries that arrived earlier than the lookahead
    /// matrix promised. Always 0 when the conservative bound is sound;
    /// the sharding tests assert on it.
    pub fn pair_bound_violations(&self) -> u64 {
        self.sharded.pair_bound_violations()
    }

    /// Estimated resident heap bytes of the simulated machine state (see
    /// `Node::resident_bytes`) — the rack4096 memory-diet metric.
    pub fn resident_bytes(&self) -> u64 {
        self.sharded.resident_bytes()
    }

    /// Node-crash events executed under the active fault plan (0 without
    /// one).
    pub fn total_crashes(&self) -> u64 {
        self.sharded.total_crashes()
    }

    /// Packets discarded at delivery because their destination was inside
    /// a crash window (0 without a fault plan).
    pub fn total_crash_drops(&self) -> u64 {
        self.sharded.total_crash_drops()
    }

    /// Delivery-order hash of `node` — equal across runs iff packets
    /// arrived in the same order at the same times (the determinism
    /// checksum the equivalence tests gate on).
    pub fn delivery_hash(&self, node: NodeId) -> u64 {
        self.sharded.delivery_hash(node)
    }

    /// Registers tenant `channel` on `node`: the tenant is registered
    /// with the node's RMC under `(weight, slo)` and a dedicated queue
    /// pair is created for it, so [`RemoteBackend::post_on`] traffic for
    /// this channel is scheduled by the RGP under the tenant's QoS class.
    ///
    /// # Panics
    ///
    /// Panics if QP ring allocation fails (node memory exhausted).
    pub fn register_tenant_channel(
        &mut self,
        node: NodeId,
        channel: u32,
        tenant: TenantId,
        weight: u32,
        slo: SloClass,
    ) {
        self.tenant_log.push(TenantChannel {
            node,
            channel,
            tenant,
            weight,
            slo,
        });
        self.sharded.register_tenant(
            node,
            TenantSpec {
                id: tenant,
                weight,
                slo,
            },
        );
        let qp = self
            .sharded
            .create_tenant_qp(node, BACKEND_CTX, 0, tenant)
            .expect("QP ring allocation failed");
        self.ports[node.index()].channels.insert(
            channel,
            ChannelPort {
                qp,
                pending: HashMap::new(),
                bufs: HashMap::new(),
            },
        );
    }

    /// Lazily creates node `n`'s queue pair for `channel` (core 0 owns
    /// it; the QP is untagged, i.e. best-effort, unless the channel was
    /// registered through [`SonumaBackend::register_tenant_channel`]).
    fn channel_qp(&mut self, n: usize, channel: u32) -> QpId {
        if let Some(port) = self.ports[n].channels.get(&channel) {
            return port.qp;
        }
        let qp = self
            .sharded
            .create_qp(NodeId(n as u16), BACKEND_CTX, 0)
            .expect("QP ring allocation failed");
        self.ports[n].channels.insert(
            channel,
            ChannelPort {
                qp,
                pending: HashMap::new(),
                bufs: HashMap::new(),
            },
        );
        qp
    }

    /// Harvests CQ entries for node `n` into finished completions.
    ///
    /// Allocation-free while nothing has completed: channels are walked in
    /// place and `drain_cq`'s empty fast path returns before touching the
    /// ring, so the per-advance poll sweep over hundreds of idle nodes
    /// costs integer compares, not heap traffic.
    fn harvest(&mut self, n: usize) {
        let SonumaBackend { sharded, ports, .. } = self;
        let NodePort {
            channels, ready, ..
        } = &mut ports[n];
        sharded.with_node(n, |cluster, _| {
            for port in channels.values_mut() {
                let comps = cluster.drain_cq(n, port.qp);
                for c in comps {
                    let Some(p) = port.pending.remove(&c.wq_index) else {
                        continue;
                    };
                    let mut data = Vec::new();
                    if c.status.is_ok() {
                        match p.op {
                            RemoteOp::Read => {
                                data = vec![0u8; p.len as usize];
                                cluster
                                    .node(n)
                                    .read_virt(p.buf, &mut data)
                                    .expect("landing buffer mapped");
                            }
                            RemoteOp::FetchAdd | RemoteOp::CompSwap => {
                                data = vec![0u8; 8];
                                cluster
                                    .node(n)
                                    .read_virt(p.buf, &mut data)
                                    .expect("landing buffer mapped");
                            }
                            RemoteOp::Write | RemoteOp::Interrupt => {}
                        }
                    }
                    ready.push(RemoteCompletion {
                        token: p.token,
                        status: c.status,
                        data,
                    });
                }
            }
        });
    }
}

impl RemoteBackend for SonumaBackend {
    fn label(&self) -> &'static str {
        "soNUMA"
    }

    fn num_nodes(&self) -> usize {
        self.sharded.num_nodes()
    }

    fn segment_len(&self) -> u64 {
        self.segment_len
    }

    fn set_threads(&mut self, threads: usize) {
        if threads == self.sharded.num_shards() {
            return;
        }
        assert!(
            self.now() == SimTime::ZERO
                && self.sharded.events_processed() == 0
                && self.ports.iter().all(|p| p.next_token == 0),
            "set_threads must be called before any traffic"
        );
        let config = self.sharded.config().clone();
        let replay = std::mem::take(&mut self.tenant_log);
        let speculate = self.sharded.speculation_depth();
        *self = Self::with_threads(config, self.segment_len, threads.max(1));
        self.sharded.set_speculation(speculate);
        for t in replay {
            self.register_tenant_channel(t.node, t.channel, t.tenant, t.weight, t.slo);
        }
    }

    fn write_ctx(&mut self, node: NodeId, offset: u64, data: &[u8]) {
        self.sharded.write_ctx(node, BACKEND_CTX, offset, data);
    }

    fn read_ctx(&self, node: NodeId, offset: u64, buf: &mut [u8]) {
        self.sharded.read_ctx(node, BACKEND_CTX, offset, buf);
    }

    fn post(&mut self, src: NodeId, req: RemoteRequest) -> Result<u64, BackendError> {
        self.post_on(src, 0, req)
    }

    fn post_on(
        &mut self,
        src: NodeId,
        channel: u32,
        req: RemoteRequest,
    ) -> Result<u64, BackendError> {
        let n = src.index();
        if n >= self.sharded.num_nodes() || req.dst.index() >= self.sharded.num_nodes() {
            return Err(BackendError::BadNode);
        }
        if req.op == RemoteOp::Write && req.len != req.payload.len() as u64 {
            return Err(BackendError::BadRequest);
        }
        if req.op == RemoteOp::Interrupt {
            // Interrupts are an application-level extension, not part of
            // the transport contract.
            return Err(BackendError::BadRequest);
        }
        let qp = self.channel_qp(n, channel);

        // Stage a landing/source buffer sized for the payload (whole lines:
        // the RMC moves cache-line multiples).
        let buf_len = match req.op {
            RemoteOp::Read | RemoteOp::Write => req.len,
            _ => 64,
        };
        if buf_len == 0 {
            // Zero-length reads/writes are rejected before touching the WQ.
            return Err(BackendError::BadRequest);
        }
        // Reuse (or grow) the landing buffer pooled for the WQ slot this
        // post will occupy; a failed post leaves the buffer pooled, so
        // neither retries nor long streams leak node heap.
        let need = buf_len.max(64);
        let wq_slot = self.sharded.with_node(n, |cluster, engine| {
            NodeApi::new(cluster, engine, n, 0, SimTime::ZERO).next_wq_index(qp)
        });
        let pooled = self.ports[n]
            .channels
            .get(&channel)
            .and_then(|port| port.bufs.get(&wq_slot))
            .copied();
        let buf = match pooled {
            Some((va, len)) if len >= need => va,
            _ => {
                let va = self
                    .sharded
                    .with_node(n, |cluster, engine| {
                        NodeApi::new(cluster, engine, n, 0, SimTime::ZERO).heap_alloc(need)
                    })
                    .map_err(|_| BackendError::Exhausted)?;
                self.ports[n]
                    .channels
                    .get_mut(&channel)
                    .expect("channel exists")
                    .bufs
                    .insert(wq_slot, (va, need));
                va
            }
        };
        let posted = self.sharded.with_node(n, |cluster, engine| {
            let mut api = NodeApi::new(cluster, engine, n, 0, SimTime::ZERO);
            if req.op == RemoteOp::Write {
                api.local_write(buf, &req.payload).expect("buffer mapped");
            }
            match req.op {
                RemoteOp::Read => api.post_read(qp, req.dst, BACKEND_CTX, req.offset, buf, req.len),
                RemoteOp::Write => api.post_write(
                    qp,
                    req.dst,
                    BACKEND_CTX,
                    req.offset,
                    buf,
                    req.payload.len() as u64,
                ),
                RemoteOp::FetchAdd => {
                    api.post_fetch_add(qp, req.dst, BACKEND_CTX, req.offset, buf, req.operands.0)
                }
                RemoteOp::CompSwap => api.post_comp_swap(
                    qp,
                    req.dst,
                    BACKEND_CTX,
                    req.offset,
                    buf,
                    req.operands.0,
                    req.operands.1,
                ),
                RemoteOp::Interrupt => unreachable!("rejected at validation"),
            }
        });
        let wq_index = match posted {
            Ok(i) => i,
            Err(ApiError::WqFull) => return Err(BackendError::Backpressure),
            Err(ApiError::BadLength) => return Err(BackendError::BadRequest),
            Err(_) => return Err(BackendError::BadRequest),
        };
        let port = &mut self.ports[n];
        let token = port.next_token;
        port.next_token += 1;
        port.channels
            .get_mut(&channel)
            .expect("channel exists")
            .pending
            .insert(
                wq_index,
                PendingOp {
                    token,
                    op: req.op,
                    buf,
                    len: req.len,
                },
            );
        Ok(token)
    }

    fn poll(&mut self, src: NodeId) -> Vec<RemoteCompletion> {
        let n = src.index();
        self.harvest(n);
        std::mem::take(&mut self.ports[n].ready)
    }

    fn advance(&mut self) -> bool {
        // One bounded round per call keeps advance() responsive without
        // busy-stepping single events. A round is a fixed number of
        // *events* spread over however many conservative epochs they
        // need, so the driver's interleaving with the simulation — and
        // with it every simulated outcome — is identical at every thread
        // count. The round also bounds the clock granularity callers
        // observe between polls (completion latencies measured at poll
        // time are late by at most one round's span).
        self.sharded.advance_round()
    }

    fn now(&self) -> SimTime {
        self.sharded.now().max(self.clock_floor)
    }

    fn advance_clock_to(&mut self, t: SimTime) {
        // The floor moves `now()` immediately (the trait contract); when
        // nothing earlier is pending the shard engines jump too, so work
        // posted after the jump charges from the advanced clock.
        self.clock_floor = self.clock_floor.max(t);
        self.sharded.advance_clock_to(t);
    }

    fn events_processed(&self) -> u64 {
        // Engine events plus the logical injections folded into line
        // bursts, so the count (and events/sec) is invariant under
        // `rgp_burst_lines` batching — and under the shard count.
        self.sharded.events_processed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_atomic_roundtrip() {
        let mut b = SonumaBackend::simulated_hardware(2, 1 << 20);
        let src = NodeId(0);
        let dst = NodeId(1);

        b.write_ctx(dst, 0, &[9u8; 128]);
        let t_read = b.post(src, RemoteRequest::read(dst, 0, 128)).unwrap();
        let t_write = b
            .post(src, RemoteRequest::write(dst, 256, vec![3u8; 64]))
            .unwrap();
        let t_fa = b.post(src, RemoteRequest::fetch_add(dst, 512, 41)).unwrap();
        let done = b.complete_all(src);
        assert_eq!(done.len(), 3);
        for c in &done {
            assert!(c.status.is_ok(), "completion failed: {c:?}");
            if c.token == t_read {
                assert_eq!(c.data, vec![9u8; 128]);
            } else if c.token == t_fa {
                assert_eq!(u64::from_le_bytes(c.data[..8].try_into().unwrap()), 0);
            } else {
                assert_eq!(c.token, t_write);
            }
        }
        let mut back = [0u8; 64];
        b.read_ctx(dst, 256, &mut back);
        assert_eq!(back, [3u8; 64]);
        let mut ctr = [0u8; 8];
        b.read_ctx(dst, 512, &mut ctr);
        assert_eq!(u64::from_le_bytes(ctr), 41);
        assert!(b.now() > SimTime::ZERO, "operations charge simulated time");
    }

    #[test]
    fn out_of_bounds_reports_status() {
        let mut b = SonumaBackend::simulated_hardware(2, 4096);
        let far = 1 << 30;
        b.post(NodeId(0), RemoteRequest::read(NodeId(1), far, 64))
            .unwrap();
        let done = b.complete_all(NodeId(0));
        assert_eq!(done.len(), 1);
        assert!(!done[0].status.is_ok());
        assert!(done[0].data.is_empty());
    }

    #[test]
    fn pipeline_stats_visible_through_backend() {
        let mut b = SonumaBackend::simulated_hardware(2, 1 << 20);
        for _ in 0..4 {
            b.post(NodeId(0), RemoteRequest::read(NodeId(1), 0, 256))
                .unwrap();
        }
        let _ = b.complete_all(NodeId(0));
        let src_stats = b.pipeline_stats(NodeId(0));
        let dst_stats = b.pipeline_stats(NodeId(1));
        assert_eq!(src_stats.rgp_requests, 4);
        assert_eq!(src_stats.rgp_lines, 16, "256 B unrolls into 4 lines");
        assert_eq!(dst_stats.rrpp_served, 16);
        assert_eq!(src_stats.rcp_completions, 4);
    }

    #[test]
    fn multi_line_kv_read_returns_intact_payload() {
        // A KV-cache GET is one read spanning hundreds of lines; the RGP
        // unrolls it, the RRPP serves each line, and the payload must
        // reassemble byte-exact — including for a value homed on the
        // reading node itself (local delivery never enters the fabric).
        let mut b = SonumaBackend::simulated_hardware(2, 1 << 16);
        let value: Vec<u8> = (0..16384u32).map(|i| (i * 31 + 7) as u8).collect();
        b.write_ctx(NodeId(1), 4096, &value);
        b.write_ctx(NodeId(0), 0, &value);
        let remote = b
            .post(NodeId(0), RemoteRequest::read(NodeId(1), 4096, 16384))
            .unwrap();
        let local = b
            .post(NodeId(0), RemoteRequest::read(NodeId(0), 0, 16384))
            .unwrap();
        let done = b.complete_all(NodeId(0));
        assert_eq!(done.len(), 2);
        for c in &done {
            assert!(c.status.is_ok(), "{c:?}");
            assert!(c.token == remote || c.token == local);
            assert_eq!(c.data, value, "16 KB payload must reassemble intact");
        }
        assert_eq!(
            b.pipeline_stats(NodeId(0)).rgp_lines,
            512,
            "two 16 KB reads unroll into 256 lines each"
        );
    }

    #[test]
    fn tenant_channels_are_isolated_queues() {
        let mut b = SonumaBackend::simulated_hardware(2, 1 << 20);
        b.register_tenant_channel(NodeId(0), 0, TenantId(100), 1, SloClass::Gold);
        b.register_tenant_channel(NodeId(0), 1, TenantId(101), 1, SloClass::Bronze);
        // Fill channel 0's entire WQ ring.
        let entries = b.config().qp_entries as usize;
        for _ in 0..entries {
            b.post_on(NodeId(0), 0, RemoteRequest::read(NodeId(1), 0, 64))
                .unwrap();
        }
        assert_eq!(
            b.post_on(NodeId(0), 0, RemoteRequest::read(NodeId(1), 0, 64)),
            Err(BackendError::Backpressure),
            "channel 0 is full"
        );
        // Channel 1 still accepts posts: one tenant's backlog cannot
        // reject another's work.
        let t = b
            .post_on(NodeId(0), 1, RemoteRequest::read(NodeId(1), 0, 64))
            .unwrap();
        let done = b.complete_all(NodeId(0));
        assert_eq!(done.len(), entries + 1);
        assert!(done.iter().any(|c| c.token == t));
        // Per-tenant accounting reached the RMC.
        let stats = b.tenant_stats(NodeId(0));
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0].1.completions, entries as u64);
        assert_eq!(stats[1].1.completions, 1);
    }

    #[test]
    fn advance_clock_to_moves_idle_time_forward() {
        let mut b = SonumaBackend::simulated_hardware(2, 4096);
        assert_eq!(b.now(), SimTime::ZERO);
        b.advance_clock_to(SimTime::from_us(5));
        assert_eq!(
            b.now(),
            SimTime::from_us(5),
            "the jump is visible immediately, per the trait contract"
        );
        while b.advance() {}
        assert_eq!(b.now(), SimTime::from_us(5));
        // Posting after the jump charges from the advanced clock.
        b.post(NodeId(0), RemoteRequest::read(NodeId(1), 0, 64))
            .unwrap();
        let _ = b.complete_all(NodeId(0));
        assert!(b.now() > SimTime::from_us(5));
    }

    #[test]
    fn set_threads_repartitions_before_traffic() {
        let mut b = SonumaBackend::simulated_hardware(4, 1 << 16);
        b.register_tenant_channel(NodeId(1), 0, TenantId(7), 2, SloClass::Gold);
        b.set_threads(2);
        assert_eq!(b.num_shards(), 2);
        // The tenant registration survived the rebuild.
        let stats = b.tenant_stats(NodeId(1));
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].0.id, TenantId(7));
        let t = b
            .post_on(NodeId(1), 0, RemoteRequest::read(NodeId(2), 0, 64))
            .unwrap();
        let done = b.complete_all(NodeId(1));
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].token, t);
    }

    #[test]
    #[should_panic(expected = "before any traffic")]
    fn set_threads_after_traffic_panics() {
        let mut b = SonumaBackend::simulated_hardware(2, 4096);
        b.post(NodeId(0), RemoteRequest::read(NodeId(1), 0, 64))
            .unwrap();
        b.set_threads(4);
    }

    #[test]
    fn threaded_run_matches_serial_bit_for_bit() {
        let drive = |threads: usize| {
            let mut b =
                SonumaBackend::with_threads(MachineConfig::simulated_hardware(8), 1 << 16, threads);
            for n in 0..8u16 {
                b.write_ctx(NodeId(n), 0, &[n as u8; 256]);
            }
            let mut tokens = Vec::new();
            for round in 0..6u64 {
                for n in 0..8u16 {
                    let dst = NodeId(((n as u64 + 1 + round) % 8) as u16);
                    if dst == NodeId(n) {
                        continue;
                    }
                    tokens.push(b.post(NodeId(n), RemoteRequest::read(dst, 0, 256)).unwrap());
                }
                while b.advance() {}
            }
            let mut done = Vec::new();
            for n in 0..8u16 {
                done.extend(b.complete_all(NodeId(n)));
            }
            let hashes: Vec<u64> = (0..8u16).map(|n| b.delivery_hash(NodeId(n))).collect();
            let stats: Vec<PipelineStats> =
                (0..8u16).map(|n| b.pipeline_stats(NodeId(n))).collect();
            (b.now(), b.events_processed(), done, hashes, stats)
        };
        let serial = drive(1);
        for threads in [2, 3, 4] {
            let parallel = drive(threads);
            assert_eq!(serial.0, parallel.0, "sim time, {threads} threads");
            assert_eq!(serial.1, parallel.1, "events, {threads} threads");
            assert_eq!(serial.2, parallel.2, "completions, {threads} threads");
            assert_eq!(serial.3, parallel.3, "delivery order, {threads} threads");
            assert_eq!(serial.4, parallel.4, "pipeline stats, {threads} threads");
        }
    }
}
