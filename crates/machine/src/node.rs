//! Per-node state: memory, coherence hierarchy, RMC, cores, queue pairs.

use std::collections::VecDeque;

use sonuma_memory::{
    AccessKind, AddressSpace, AgentId, FrameAllocator, MemError, MemoryHierarchy, PAddr,
    PhysicalMemory, Tlb, VAddr, PAGE_BYTES,
};
use sonuma_protocol::QpId;
use sonuma_rmc::{ContextTable, CtCache, InflightTable, Maq, QueuePairState, RmcTiming};
use sonuma_sim::SimTime;

use crate::config::MachineConfig;
use crate::fault::RetryTable;
use crate::pipeline::{RcpState, RgpState, RrppState};
use crate::process::AppProcess;
use crate::tenancy::TenantTable;

/// Base virtual address of the per-node private heap (WQ/CQ rings, local
/// buffers).
pub const HEAP_BASE: u64 = 0x0010_0000;

/// Base virtual address of context segments (the globally accessible part
/// of each node's address space).
pub const CTX_BASE: u64 = 0x4000_0000;

/// Bytes reserved at the top of physical memory for page-table lines (the
/// hardware walker's memory traffic is charged against real, cacheable
/// addresses).
const PT_REGION_BYTES: u64 = 16 << 20;

/// What a core is blocked on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockState {
    /// No process attached (or the process returned `Step::Done`).
    Idle,
    /// Currently executing a wake-up (transient).
    Running,
    /// Waiting for a timer.
    Sleeping,
    /// Waiting for a completion on a QP.
    WaitingCq(QpId),
    /// Waiting for a remote write into a memory range.
    WaitingMemory(VAddr, u64),
    /// Waiting for whichever of the two comes first.
    WaitingEither(QpId, VAddr, u64),
}

/// One simulated core and its attached process.
pub struct CoreSlot {
    /// The application, absent while idle.
    pub process: Option<Box<dyn AppProcess>>,
    /// Current blocking state.
    pub block: BlockState,
    /// Set while a wake event is already scheduled (dedup).
    pub wake_pending: bool,
    /// Logical time the core finished its last wake-up. Wake deliveries
    /// never precede this: the core cannot observe a completion while it
    /// is still retiring the instructions of its previous run.
    pub busy_until: SimTime,
}

impl std::fmt::Debug for CoreSlot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CoreSlot")
            .field("attached", &self.process.is_some())
            .field("block", &self.block)
            .field("wake_pending", &self.wake_pending)
            .finish()
    }
}

/// Application-side cursors of one queue pair (the halves the access
/// library owns: WQ producer, CQ consumer).
#[derive(Debug, Clone)]
pub struct AppQpCursors {
    /// Core that owns (polls) this QP.
    pub owner_core: usize,
    /// Next WQ slot to fill.
    pub wq_index: u16,
    /// Phase bit to write into the next WQ entry.
    pub wq_phase: bool,
    /// Next CQ slot to read.
    pub cq_index: u16,
    /// Phase bit expected on the next fresh CQ entry.
    pub cq_phase: bool,
    /// CQ entries this consumer has drained. Compared against the RMC's
    /// `cq_produced` counter for an O(1) "anything new?" check, so the
    /// ubiquitous empty poll never walks the ring through page
    /// translation.
    pub cq_drained: u64,
    /// Posted-but-not-yet-consumed completions (bounds WQ occupancy).
    pub outstanding: u16,
    /// Per-slot in-flight markers. Completions arrive out of order (§4.2),
    /// so a slot is reusable only once *its* completion is processed —
    /// the paper's `rmc_wait_for_slot` semantics, which is what lets the
    /// CQ identify requests by WQ index unambiguously.
    pub slot_busy: Vec<bool>,
}

/// A remote write observed by this node (for memory-watch wake-ups).
#[derive(Debug, Clone, Copy)]
pub struct RemoteWrite {
    /// Virtual address written.
    pub addr: VAddr,
    /// Bytes written.
    pub len: u64,
    /// Completion time of the write in the local hierarchy.
    pub time: SimTime,
}

/// An armed memory watch: `core` wants a wake-up when a remote write lands
/// in `[addr, addr+len)`.
#[derive(Debug, Clone, Copy)]
pub struct Watch {
    /// Watching core.
    pub core: usize,
    /// Range base.
    pub addr: VAddr,
    /// Range length.
    pub len: u64,
}

/// The RMC: the three pipelines' state machines plus the structures they
/// share — CT/CT$, ITT, MAQ, TLB and the per-QP cursors (§4.2, §4.3).
#[derive(Debug)]
pub struct RmcUnit {
    /// Pipeline timing parameters.
    pub timing: RmcTiming,
    /// The Context Table (driver-maintained).
    pub ct: ContextTable,
    /// The CT$ lookaside.
    pub ct_cache: CtCache,
    /// Inflight Transaction Table.
    pub itt: InflightTable,
    /// Memory Access Queue.
    pub maq: Maq,
    /// The RMC's TLB (32 entries, Table 1).
    pub tlb: Tlb,
    /// Registered queue pairs (RMC-side cursors).
    pub qps: Vec<QueuePairState>,
    /// Request Generation Pipeline state and counters.
    pub rgp: RgpState,
    /// Remote Request Processing Pipeline counters.
    pub rrpp: RrppState,
    /// Request Completion Pipeline counters.
    pub rcp: RcpState,
}

/// One soNUMA node: SoC + memory + RMC, attached to the fabric.
#[derive(Debug)]
pub struct Node {
    /// Functional memory contents.
    pub phys: PhysicalMemory,
    /// Timing model (cores + RMC share it; RMC is the last agent).
    pub hierarchy: MemoryHierarchy,
    /// Physical frame allocator.
    pub alloc: FrameAllocator,
    /// The single application address space on this node (asid 0).
    pub space: AddressSpace,
    /// Bump pointer for heap allocations.
    pub heap_next: u64,
    /// The remote memory controller.
    pub rmc: RmcUnit,
    /// Application cores.
    pub cores: Vec<CoreSlot>,
    /// Application-side QP cursors, indexed like `rmc.qps`.
    pub app_qps: Vec<AppQpCursors>,
    /// Tenant registry: QP ownership, weights/SLO classes, per-tenant
    /// counters.
    pub tenants: TenantTable,
    /// Posts the access library rejected with `WqFull` (API-boundary
    /// backpressure, all tenants).
    pub wq_full_rejections: u64,
    /// Armed memory watches.
    pub watches: Vec<Watch>,
    /// Core designated to receive remote interrupts, if any.
    pub interrupt_handler: Option<usize>,
    /// Interrupts accepted but not yet delivered (FIFO).
    pub pending_interrupts: VecDeque<(sonuma_protocol::NodeId, u64)>,
    /// Interrupts dropped because no handler was registered.
    pub interrupts_dropped: u64,
    /// Recent remote writes (pruned ring, newest last).
    pub recent_remote_writes: VecDeque<RemoteWrite>,
    /// Retransmission state of in-flight requests, indexed by tid.
    /// Empty (and untouched) unless a fault plan is installed.
    pub(crate) retry: RetryTable,
    /// Times this node's RMC crashed (per the fault plan).
    pub crashes: u64,
    /// Packets dropped on arrival because this node was inside its crash
    /// window.
    pub crash_drops: u64,
    /// Completed remote operations issued by this node.
    pub ops_completed: u64,
    /// Payload bytes this node read from remote memory.
    pub bytes_read: u64,
    /// Payload bytes this node wrote to remote memory.
    pub bytes_written: u64,
    /// Packets this node has injected into the fabric. Under the sharded
    /// engine, `(src, fabric_seq)` is the deterministic merge key of every
    /// staged send.
    pub(crate) fabric_seq: u64,
    /// Rolling FNV-style hash over `(time, src, tid, seq)` of every packet
    /// delivered *to* this node, in delivery order. Two runs deliver
    /// packets in the same order iff their hashes match — the
    /// serial-equivalence property tests gate on it.
    pub deliver_hash: u64,
}

impl Node {
    /// Builds an idle node per `config`.
    pub fn new(config: &MachineConfig) -> Self {
        let agents = config.cores_per_node + 1;
        // Leave the PT region out of the allocatable pool.
        let allocatable = config.mem_bytes - PT_REGION_BYTES;
        Node {
            phys: PhysicalMemory::new(config.mem_bytes),
            hierarchy: MemoryHierarchy::new(config.hierarchy, agents),
            alloc: FrameAllocator::new(allocatable),
            space: AddressSpace::new(0),
            heap_next: HEAP_BASE,
            rmc: RmcUnit {
                timing: config.rmc,
                ct: ContextTable::new(),
                ct_cache: CtCache::new(config.rmc.ct_cache_entries),
                itt: InflightTable::new(config.itt_entries),
                maq: Maq::new(config.rmc.maq_entries),
                tlb: Tlb::new(config.rmc.tlb_entries),
                qps: Vec::new(),
                rgp: RgpState::with_policy(config.sched_policy),
                rrpp: RrppState::default(),
                rcp: RcpState::default(),
            },
            cores: (0..config.cores_per_node)
                .map(|_| CoreSlot {
                    process: None,
                    block: BlockState::Idle,
                    wake_pending: false,
                    busy_until: SimTime::ZERO,
                })
                .collect(),
            app_qps: Vec::new(),
            tenants: TenantTable::default(),
            wq_full_rejections: 0,
            watches: Vec::new(),
            interrupt_handler: None,
            pending_interrupts: VecDeque::new(),
            interrupts_dropped: 0,
            recent_remote_writes: VecDeque::new(),
            retry: RetryTable::default(),
            crashes: 0,
            crash_drops: 0,
            ops_completed: 0,
            bytes_read: 0,
            bytes_written: 0,
            fabric_seq: 0,
            deliver_hash: 0xcbf2_9ce4_8422_2325,
        }
    }

    /// The hierarchy agent id of core `c`.
    pub fn core_agent(&self, core: usize) -> AgentId {
        debug_assert!(core < self.cores.len());
        AgentId(core)
    }

    /// The hierarchy agent id of the RMC (always the last agent).
    pub fn rmc_agent(&self) -> AgentId {
        AgentId(self.cores.len())
    }

    /// Estimated heap bytes this node's model state actually occupies.
    ///
    /// Counts what is *resident*, not what is addressable: touched
    /// physical frames, materialized cache/coherence lines, grown ITT/CT
    /// slots, page-table entries, and per-QP cursor state. Fixed-capacity
    /// zero-page-backed arrays (cache tags) and untouched table slots
    /// contribute nothing, which is exactly the property the rack4096
    /// memory diet relies on.
    pub fn resident_bytes(&self) -> u64 {
        const LINE_STATE_BYTES: u64 = 17; // tag + lru + flags per way
        const PTE_BYTES: u64 = 16; // vpn -> pfn BTreeMap payload
        let frames = self.phys.resident_frames() as u64 * PAGE_BYTES;
        let lines = self.hierarchy.resident_lines() as u64 * LINE_STATE_BYTES;
        let ptes = self.space.mapped_pages() as u64 * PTE_BYTES;
        let rmc = self.rmc.itt.resident_bytes() as u64
            + self.rmc.ct.resident_bytes() as u64
            + (self.rmc.qps.len() * std::mem::size_of::<QueuePairState>()) as u64;
        let qp_cursors = self
            .app_qps
            .iter()
            .map(|q| std::mem::size_of::<AppQpCursors>() as u64 + q.slot_busy.capacity() as u64)
            .sum::<u64>();
        frames + lines + ptes + rmc + qp_cursors
    }

    /// Translates a virtual address through the node's page table.
    ///
    /// # Errors
    ///
    /// Propagates [`MemError::Unmapped`] faults.
    pub fn translate(&self, va: VAddr) -> Result<PAddr, MemError> {
        self.space.translate(va)
    }

    /// Functional read of `buf.len()` bytes at virtual `va` (handles page
    /// crossings).
    ///
    /// # Errors
    ///
    /// Fails if any page in the range is unmapped.
    pub fn read_virt(&self, va: VAddr, buf: &mut [u8]) -> Result<(), MemError> {
        let mut done = 0usize;
        while done < buf.len() {
            let cur = va.offset(done as u64);
            let pa = self.translate(cur)?;
            let take = ((PAGE_BYTES - cur.page_offset()) as usize).min(buf.len() - done);
            self.phys.read(pa, &mut buf[done..done + take]);
            done += take;
        }
        Ok(())
    }

    /// Functional write of `data` at virtual `va` (handles page crossings).
    ///
    /// # Errors
    ///
    /// Fails if any page in the range is unmapped.
    pub fn write_virt(&mut self, va: VAddr, data: &[u8]) -> Result<(), MemError> {
        let mut done = 0usize;
        while done < data.len() {
            let cur = va.offset(done as u64);
            let pa = self.translate(cur)?;
            let take = ((PAGE_BYTES - cur.page_offset()) as usize).min(data.len() - done);
            self.phys.write(pa, &data[done..done + take]);
            done += take;
        }
        Ok(())
    }

    /// One cache-line access by the RMC through the MAQ: bounded
    /// concurrency, hierarchy timing. Returns the completion time.
    pub fn rmc_line_access(&mut self, now: SimTime, pa: PAddr, kind: AccessKind) -> SimTime {
        let rmc_agent = AgentId(self.cores.len());
        let hierarchy = &mut self.hierarchy;
        let (_, done) = self.rmc.maq.schedule(now, |start| {
            hierarchy.access(rmc_agent, pa, kind, start).latency
        });
        done
    }

    /// RMC-side translation with TLB + hardware page walk. Returns the
    /// translation result and the time translation completes.
    ///
    /// Walk traffic is charged against real, cacheable page-table lines in
    /// a reserved physical region — hot PT entries hit in the LLC exactly
    /// as the paper's shared-page-table argument expects.
    pub fn rmc_translate(&mut self, now: SimTime, va: VAddr) -> (Result<PAddr, MemError>, SimTime) {
        let mut t = now + self.rmc.timing.tlb_lookup;
        let hit = self.rmc.tlb.lookup(0, va).is_some();
        if !hit {
            for level in 0..self.space.walk_references() {
                let pt_pa = self.pt_line_addr(va, level);
                t = self.rmc_line_access(t, pt_pa, AccessKind::Read);
            }
            if let Ok(pa) = self.space.translate(va) {
                self.rmc.tlb.insert(0, va, pa.frame_number());
            }
        }
        (self.space.translate(va), t)
    }

    /// Physical address of the page-table line the walker touches for
    /// `va` at `level`.
    fn pt_line_addr(&self, va: VAddr, level: u32) -> PAddr {
        let region_base = self.phys.capacity() - PT_REGION_BYTES;
        let idx = (va.page_number() * 2 + level as u64) * 64 % PT_REGION_BYTES;
        PAddr::new(region_base + idx)
    }

    /// Allocates `len` bytes (rounded to whole pages for simplicity of
    /// pinning) from the private heap, mapping frames eagerly.
    ///
    /// # Errors
    ///
    /// Fails when physical memory is exhausted.
    pub fn heap_alloc(&mut self, len: u64) -> Result<VAddr, MemError> {
        let base = VAddr::new(self.heap_next);
        let pages = len.div_ceil(PAGE_BYTES).max(1);
        self.space
            .map_range(base, pages * PAGE_BYTES, &mut self.alloc)?;
        self.heap_next += pages * PAGE_BYTES;
        Ok(base)
    }

    /// Records a remote write for watch matching, pruning old entries.
    pub fn note_remote_write(&mut self, addr: VAddr, len: u64, time: SimTime) {
        self.recent_remote_writes
            .push_back(RemoteWrite { addr, len, time });
        while self.recent_remote_writes.len() > 128 {
            self.recent_remote_writes.pop_front();
        }
    }

    /// Returns the index of the first armed watch intersecting
    /// `[addr, addr+len)`, if any.
    pub fn matching_watch(&self, addr: VAddr, len: u64) -> Option<usize> {
        self.watches.iter().position(|w| {
            let (a0, a1) = (addr.raw(), addr.raw() + len);
            let (w0, w1) = (w.addr.raw(), w.addr.raw() + w.len);
            a0 < w1 && w0 < a1
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sonuma_protocol::CtxId;
    use sonuma_rmc::ContextEntry;

    fn node() -> Node {
        Node::new(&MachineConfig::simulated_hardware(2))
    }

    #[test]
    fn heap_alloc_maps_pages() {
        let mut n = node();
        let a = n.heap_alloc(100).unwrap();
        assert_eq!(a.raw(), HEAP_BASE);
        assert!(n.translate(a).is_ok());
        let b = n.heap_alloc(PAGE_BYTES * 2).unwrap();
        assert_eq!(b.raw(), HEAP_BASE + PAGE_BYTES);
        assert!(n
            .translate(VAddr::new(b.raw() + 2 * PAGE_BYTES - 1))
            .is_ok());
    }

    #[test]
    fn virt_rw_roundtrip_across_pages() {
        let mut n = node();
        let base = n.heap_alloc(3 * PAGE_BYTES).unwrap();
        let data: Vec<u8> = (0..PAGE_BYTES as usize + 100).map(|i| i as u8).collect();
        let va = base.offset(PAGE_BYTES - 50);
        n.write_virt(va, &data).unwrap();
        let mut back = vec![0u8; data.len()];
        n.read_virt(va, &mut back).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn unmapped_virt_access_fails() {
        let n = node();
        let mut buf = [0u8; 4];
        assert!(n.read_virt(VAddr::new(0xDEAD_0000), &mut buf).is_err());
    }

    #[test]
    fn rmc_translate_uses_tlb_after_walk() {
        let mut n = node();
        let va = n.heap_alloc(64).unwrap();
        let (r1, t1) = n.rmc_translate(SimTime::ZERO, va);
        assert!(r1.is_ok());
        assert!(t1 > n.rmc.timing.tlb_lookup, "first translation walks");
        let (r2, t2) = n.rmc_translate(t1, va);
        assert_eq!(r1.unwrap(), r2.unwrap());
        assert_eq!(
            t2 - t1,
            n.rmc.timing.tlb_lookup,
            "second translation hits TLB"
        );
    }

    #[test]
    fn rmc_line_access_completes_out_of_order() {
        // §4.3: "The MAQ supports out-of-order completion of memory
        // accesses" — a later L1 hit may finish before an earlier DRAM miss.
        let mut n = node();
        let va = n.heap_alloc(64).unwrap();
        let pa = n.translate(va).unwrap();
        let t1 = n.rmc_line_access(SimTime::ZERO, pa, AccessKind::Read); // DRAM
        let t2 = n.rmc_line_access(SimTime::ZERO, pa, AccessKind::Read); // L1 hit
        assert!(t2 < t1, "the L1 hit should complete before the DRAM miss");
        assert_eq!(n.rmc.maq.accesses(), 2);
    }

    #[test]
    fn watch_matching_intersects_ranges() {
        let mut n = node();
        n.watches.push(Watch {
            core: 0,
            addr: VAddr::new(100),
            len: 50,
        });
        assert!(n.matching_watch(VAddr::new(140), 20).is_some());
        assert!(n.matching_watch(VAddr::new(150), 10).is_none());
        assert!(n.matching_watch(VAddr::new(0), 101).is_some());
        assert!(n.matching_watch(VAddr::new(0), 100).is_none());
    }

    #[test]
    fn context_registration_is_visible() {
        let mut n = node();
        n.rmc.ct.register(
            CtxId(0),
            ContextEntry {
                segment_base: VAddr::new(CTX_BASE),
                segment_len: 8192,
                asid: 0,
                qps: vec![],
            },
        );
        assert!(n.rmc.ct.lookup(CtxId(0)).is_ok());
    }

    #[test]
    fn remote_write_log_prunes() {
        let mut n = node();
        for i in 0..200 {
            n.note_remote_write(VAddr::new(i * 64), 64, SimTime::from_ns(i));
        }
        assert_eq!(n.recent_remote_writes.len(), 128);
        assert_eq!(
            n.recent_remote_writes.front().unwrap().addr,
            VAddr::new(72 * 64)
        );
    }
}
