//! Source-side fault recovery: retransmission timers and node
//! crash/restart.
//!
//! The fabric decides what breaks (see `sonuma_fabric::fault`); this
//! module decides how the machine recovers. Recovery is entirely
//! source-side, preserving the paper's stateless-destination design: the
//! RRPP never tracks requests, so the only party that can notice a lost
//! line is the RMC that issued it. Each WQ request issued under a fault
//! plan arms a [`ClusterEvent::RgpTimeout`] deadline; when it fires with
//! replies still missing, the missing lines are re-injected (bounded
//! retries, exponential backoff) and, once the budget is exhausted, the
//! operation completes with [`Status::Aborted`].
//!
//! A crashing node loses its RMC state — ITT, CT$, TLB — and drops every
//! packet that arrives during its outage. In-flight operations abort with
//! error completions at crash time (silent loss would hang any driver
//! waiting on them); the work queues themselves live in host memory and
//! survive, so unserved entries are picked up when the restarted RGP is
//! re-kicked.
//!
//! Duplicate suppression rides on two keys carried in every packet: the
//! per-line `received` bitmask (a retransmitted line may race its
//! original reply) and the tid *generation* (`Packet::gen`), bumped every
//! time a tid incarnation ends, so a straggler addressed to a recycled
//! tid can never be mistaken for the new operation's reply.

use sonuma_memory::{VAddr, CACHE_LINE_BYTES};
use sonuma_protocol::{CtxId, NodeId, RemoteOp, Status, Tid, WqEntry};
use sonuma_rmc::CtCache;
use sonuma_sim::SimTime;

use crate::cluster::Cluster;
use crate::event::ClusterEvent;
use crate::pipeline::rgp::LineBurst;
use crate::pipeline::RgpPhase;
use crate::ClusterEngine;

/// Everything the source needs to re-issue the missing lines of one
/// in-flight WQ request. Exists only while a fault plan is active (the
/// fault-free path never touches the retry table).
#[derive(Debug)]
pub(crate) struct RetryState {
    /// Destination node.
    pub dst: NodeId,
    /// Target context.
    pub ctx: CtxId,
    /// Operation kind.
    pub op: RemoteOp,
    /// Segment offset of line 0.
    pub offset: u64,
    /// Total unrolled lines.
    pub lines: u32,
    /// Local buffer base (payload source for writes).
    pub buf_vaddr: u64,
    /// Operand words (atomics).
    pub operands: (u64, u64),
    /// Generation of this tid incarnation (echoed by replies).
    pub gen: u8,
    /// Retransmission rounds already spent.
    pub retries: u32,
    /// One bit per line already answered (duplicate suppression).
    received: Vec<u64>,
}

impl RetryState {
    /// Fresh state for a WQ entry unrolling into `lines` transactions
    /// (`gen` is assigned by [`RetryTable::insert`]).
    pub fn new(entry: &WqEntry, lines: u32) -> RetryState {
        RetryState {
            dst: entry.dst,
            ctx: entry.ctx,
            op: entry.op,
            offset: entry.offset,
            lines,
            buf_vaddr: entry.buf_vaddr,
            operands: (entry.operand1, entry.operand2),
            gen: 0,
            retries: 0,
            received: vec![0u64; lines.div_ceil(64) as usize],
        }
    }

    /// Marks line `seq` answered; `false` if it already was (a duplicate).
    pub fn mark_received(&mut self, seq: u32) -> bool {
        debug_assert!(seq < self.lines, "line_seq outside the request");
        let (word, bit) = (seq as usize / 64, seq % 64);
        let fresh = self.received[word] & (1 << bit) == 0;
        self.received[word] |= 1 << bit;
        fresh
    }

    /// Line sequences still unanswered, ascending.
    pub fn missing(&self) -> Vec<u32> {
        (0..self.lines)
            .filter(|&s| self.received[s as usize / 64] & (1 << (s % 64)) == 0)
            .collect()
    }
}

/// Per-node retry table, indexed by tid like the ITT, plus the per-tid
/// generation counters that outlive individual incarnations. Empty (and
/// allocation-free) for the entire run when no fault plan is installed.
#[derive(Debug, Default)]
pub(crate) struct RetryTable {
    slots: Vec<Option<Box<RetryState>>>,
    /// Wrapping incarnation counter per tid: bumped whenever a state is
    /// removed (completion, abort, crash), so late replies to a recycled
    /// tid always mismatch. An ABA collision needs 256 recycles within
    /// one packet's flight time — impossible at simulated RTTs.
    gens: Vec<u8>,
}

impl RetryTable {
    fn ensure(&mut self, tid: Tid) {
        if self.slots.len() <= tid.index() {
            self.slots.resize_with(tid.index() + 1, || None);
            self.gens.resize(tid.index() + 1, 0);
        }
    }

    /// Installs `state` for a fresh incarnation of `tid`, stamping and
    /// returning its generation.
    pub fn insert(&mut self, tid: Tid, mut state: RetryState) -> u8 {
        self.ensure(tid);
        debug_assert!(self.slots[tid.index()].is_none(), "tid already tracked");
        let gen = self.gens[tid.index()];
        state.gen = gen;
        self.slots[tid.index()] = Some(Box::new(state));
        gen
    }

    /// The live state of `tid`, if any.
    pub fn get_mut(&mut self, tid: Tid) -> Option<&mut RetryState> {
        self.slots.get_mut(tid.index())?.as_deref_mut()
    }

    /// Whether `tid` is live at generation `gen`.
    pub fn matches(&self, tid: Tid, gen: u8) -> bool {
        self.slots
            .get(tid.index())
            .and_then(|s| s.as_ref())
            .is_some_and(|s| s.gen == gen)
    }

    /// Ends `tid`'s incarnation (bumping its generation); no-op when the
    /// tid was never tracked — the fault-free path lands here.
    pub fn remove(&mut self, tid: Tid) -> Option<Box<RetryState>> {
        let state = self.slots.get_mut(tid.index())?.take()?;
        self.gens[tid.index()] = self.gens[tid.index()].wrapping_add(1);
        Some(state)
    }

    /// Ends every live incarnation (node crash).
    pub fn clear(&mut self) {
        for (i, slot) in self.slots.iter_mut().enumerate() {
            if slot.take().is_some() {
                self.gens[i] = self.gens[i].wrapping_add(1);
            }
        }
    }

    /// Live entries (tests).
    #[cfg(test)]
    pub fn live(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }
}

impl Cluster {
    /// Whether node `n` is inside its crash window at `now` — a pure
    /// function of the fault plan and time, so every shard (and the
    /// serial run) answers identically without any cross-shard state.
    pub(crate) fn node_crashed(&self, n: usize, now: SimTime) -> bool {
        match &self.config().fabric.faults {
            Some(plan) => plan
                .crash_window(NodeId(n as u16))
                .is_some_and(|(crash, restart)| now >= crash && now < restart),
            None => false,
        }
    }

    /// Schedules the plan's one-time crash/restart transitions for the
    /// nodes this cluster owns. Called once per shard at construction
    /// (before any traffic, so the events carry the earliest sequence
    /// numbers and order identically under every partition).
    ///
    /// # Panics
    ///
    /// Panics if a node fault restarts at or before its crash.
    pub fn schedule_fault_events(&mut self, engine: &mut ClusterEngine) {
        let Some(plan) = &self.config().fabric.faults else {
            return;
        };
        let owned = self.owned_nodes();
        let transitions: Vec<(usize, SimTime, SimTime)> = plan
            .nodes
            .iter()
            .filter(|f| owned.contains(&f.node.index()))
            .map(|f| {
                assert!(
                    f.restart_at > f.crash_at,
                    "node {} must restart after it crashes",
                    f.node
                );
                (f.node.index(), f.crash_at, f.restart_at)
            })
            .collect();
        for (n, crash_at, restart_at) in transitions {
            engine.schedule_at(crash_at, ClusterEvent::NodeCrash { node: n as u16 });
            engine.schedule_at(restart_at, ClusterEvent::NodeRestart { node: n as u16 });
        }
    }

    /// Handles a fired retransmission deadline for `(tid, gen)` at node
    /// `n`: re-injects the missing lines and re-arms the timer with
    /// exponential backoff, or aborts the operation once the retry budget
    /// is spent. Stale timers (completed, aborted, or re-incarnated tids)
    /// are ignored.
    pub(crate) fn rgp_timeout(&mut self, engine: &mut ClusterEngine, n: usize, tid: Tid, gen: u8) {
        let now = engine.now();
        let Some(plan) = &self.config().fabric.faults else {
            return;
        };
        let (timeout, max_retries) = (plan.timeout, plan.max_retries);
        if self.node_crashed(n, now) {
            // The crash already aborted everything in flight.
            return;
        }
        let node = self.node_mut(n);
        let timing = node.rmc.timing;
        let Some(state) = node.retry.get_mut(tid) else {
            return;
        };
        if state.gen != gen {
            return;
        }
        let missing = state.missing();
        debug_assert!(!missing.is_empty(), "live retry state has missing lines");
        let exhausted = state.retries >= max_retries;
        if !exhausted {
            state.retries += 1;
        }
        let retries = state.retries;
        let (dst, ctx, op, offset, buf_vaddr, operands) = (
            state.dst,
            state.ctx,
            state.op,
            state.offset,
            state.buf_vaddr,
            state.operands,
        );
        node.rmc.rgp.timeouts += 1;

        if exhausted {
            // Budget spent: the operation fails with an error completion
            // (silent loss would hang the driver forever).
            node.retry.remove(tid);
            let (qp, wq_index) = node
                .rmc
                .itt
                .abort(tid)
                .expect("retry state implies an in-flight tid");
            let t = now + timing.stage_local;
            self.complete_to_cq(engine, n, qp, wq_index, Status::Aborted, t);
            return;
        }
        node.rmc.rgp.retransmits += missing.len() as u64;
        // Each missing line re-injects as its own single-line burst at the
        // pipeline's initiation interval; the fresh send time gives the
        // fabric's pure-hash fault stream a fresh draw, so a retransmit is
        // not doomed to the fate of the original.
        let t0 = now + timing.rgp_per_request;
        for (i, &seq) in missing.iter().enumerate() {
            let line_bytes = seq as u64 * CACHE_LINE_BYTES;
            engine.schedule_at(
                t0 + timing.unroll_interval * i as u64,
                ClusterEvent::InjectBurst {
                    node: n as u16,
                    burst: LineBurst {
                        dst,
                        ctx,
                        tid,
                        op,
                        offset: offset + line_bytes,
                        first_seq: seq,
                        count: 1,
                        payload_src: (op == RemoteOp::Write)
                            .then(|| VAddr::new(buf_vaddr + line_bytes)),
                        operands,
                        gen,
                    },
                },
            );
        }
        // Exponential backoff: the k-th retry waits 2^k base timeouts.
        let backoff = timeout * (1u64 << retries.min(16));
        engine.schedule_at(
            t0 + timing.unroll_interval * (missing.len() - 1) as u64 + backoff,
            ClusterEvent::RgpTimeout {
                node: n as u16,
                tid,
                gen,
            },
        );
    }

    /// Crashes node `n`: its RMC loses the ITT, CT$ and TLB, and every
    /// in-flight operation it issued aborts with an error completion. The
    /// crash *window* itself (dropping arrivals, idling the RGP) is
    /// enforced by pure time checks elsewhere; this event performs only
    /// the one-time state transitions.
    pub(crate) fn node_crash(&mut self, engine: &mut ClusterEngine, n: usize) {
        let now = engine.now();
        let ct_cache_entries = self.config().rmc.ct_cache_entries;
        let node = self.node_mut(n);
        node.crashes += 1;
        node.rmc.ct_cache = CtCache::new(ct_cache_entries);
        node.rmc.tlb.flush_all();
        node.retry.clear();
        let aborted = node.rmc.itt.abort_all();
        let t = now + node.rmc.timing.stage_local;
        for (_, qp, wq_index) in aborted {
            self.complete_to_cq(engine, n, qp, wq_index, Status::Aborted, t);
        }
    }

    /// Restarts node `n`: cold state was already installed at crash time;
    /// all that remains is re-kicking the RGP for the WQ entries that
    /// accumulated (or survived) across the outage.
    pub(crate) fn node_restart(&mut self, engine: &mut ClusterEngine, n: usize) {
        let now = engine.now();
        let node = self.node_mut(n);
        if node.rmc.rgp.scheduler.has_work() && !node.rmc.rgp.busy() {
            node.rmc.rgp.phase = RgpPhase::Polling;
            let detect = node.rmc.timing.poll_interval / 2;
            engine.schedule_at(now + detect, ClusterEvent::RgpService { node: n as u16 });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry() -> WqEntry {
        WqEntry {
            op: RemoteOp::Read,
            dst: NodeId(3),
            ctx: CtxId(0),
            offset: 4096,
            length: 256,
            buf_vaddr: 0x10_0000,
            operand1: 0,
            operand2: 0,
        }
    }

    #[test]
    fn retry_state_tracks_missing_lines() {
        let mut s = RetryState::new(&entry(), 4);
        assert_eq!(s.missing(), vec![0, 1, 2, 3]);
        assert!(s.mark_received(2));
        assert!(!s.mark_received(2), "duplicate line is flagged");
        assert_eq!(s.missing(), vec![0, 1, 3]);
    }

    #[test]
    fn retry_table_generations_advance_per_incarnation() {
        let mut t = RetryTable::default();
        let tid = Tid(5);
        let g0 = t.insert(tid, RetryState::new(&entry(), 1));
        assert!(t.matches(tid, g0));
        assert!(!t.matches(tid, g0.wrapping_add(1)));
        t.remove(tid);
        assert!(!t.matches(tid, g0), "removed incarnation no longer matches");
        let g1 = t.insert(tid, RetryState::new(&entry(), 1));
        assert_eq!(g1, g0.wrapping_add(1));
        t.clear();
        assert_eq!(t.live(), 0);
        let g2 = t.insert(tid, RetryState::new(&entry(), 1));
        assert_eq!(g2, g1.wrapping_add(1), "clear() also bumps");
    }

    #[test]
    fn wide_requests_span_mask_words() {
        let mut s = RetryState::new(&entry(), 130);
        for seq in 0..130 {
            if seq != 64 && seq != 129 {
                assert!(s.mark_received(seq));
            }
        }
        assert_eq!(s.missing(), vec![64, 129]);
    }
}
