//! The sharded cluster: conservative-parallel execution of the machine.
//!
//! [`ShardedCluster`] partitions the cluster's nodes into contiguous
//! shards (one per thread, planned by `sonuma_fabric::ShardPlan` so grid
//! shards are whole torus slabs), gives each shard *ownership* of its
//! slice of world state — a [`Cluster`] in mailbox mode plus its own
//! `ClusterEngine` — and advances all shards in epochs bounded by the
//! fabric's minimum delivery latency (`FabricConfig::min_delivery_delay`
//! of the smallest packet). The single global [`Fabric`] lives here, not
//! in any shard.
//!
//! # Why `--threads N` is bit-identical to `--threads 1`
//!
//! Determinism rests on three invariants:
//!
//! 1. **Packets are the only cross-node channel.** Every event a node
//!    schedules targets that node itself; influence between nodes flows
//!    exclusively through fabric packets (and harness-level driver calls,
//!    which are serial). So each node's event history is a function of
//!    the packet stream it receives.
//! 2. **Every non-loopback packet takes the mailbox path — even when
//!    source and destination share a shard.** At each epoch barrier the
//!    staged sends of *all* shards are merged into the global fabric in
//!    `(inject time, source node, per-source sequence)` order, and the
//!    resulting `Deliver` events are scheduled into destination shards in
//!    `(arrival, source, sequence)` order. Both keys are pure functions
//!    of simulated history, so link-state evolution and delivery order
//!    never depend on the partition.
//! 3. **Epoch boundaries are partition-invariant.** An epoch starts at
//!    the globally earliest pending event and spans one lookahead; the
//!    lookahead is a topology constant. Shard clocks align to the epoch
//!    boundary at each barrier, so harness-level posts charge from the
//!    same simulated time at any thread count.
//!
//! The conservative-safety argument is the usual one: a packet injected
//! during epoch `[T, T + L)` arrives no earlier than `T + L` (one hop of
//! latency plus minimum serialization per hop, credits only delay), so
//! merging at the barrier never schedules into any shard's past.

use sonuma_fabric::{Fabric, ShardPlan};
use sonuma_protocol::{CtxId, NodeId, Packet, QpId, TenantId, HEADER_BYTES};
use sonuma_sim::{EpochWorld, ShardedEngine, SimTime};

use crate::cluster::{Cluster, Departure, RoutePath};
use crate::config::MachineConfig;
use crate::event::ClusterEvent;
use crate::pipeline::PipelineStats;
use crate::tenancy::{TenantSpec, TenantStats};
use crate::ClusterEngine;

/// Events one `advance()` round executes before handing control back to
/// the driver (posts/polls happen between rounds). Rounds are measured in
/// events — a partition-invariant quantity — so the driver's interleaving
/// with the simulation is identical at every thread count. 64 matches the
/// pre-sharding `run_steps(64)` burst, keeping the driver's observation
/// granularity (and with it measured completion latencies) close to the
/// classic engine's.
pub const ADVANCE_ROUND_EVENTS: u64 = 64;

/// One shard: its slice of the world plus the engine that drives it.
pub(crate) struct ShardSlot {
    pub world: Cluster,
    pub engine: ClusterEngine,
}

// SAFETY: the only non-`Send` constituent of `Cluster` is the attached
// application process slot (`CoreSlot.process`, a `Box<dyn AppProcess>`
// whose implementations may capture `Rc` state). Shard clusters are
// constructed exclusively by `ShardedCluster` from fresh nodes, and
// nothing in the sharded surface can attach a process (`Cluster::spawn`
// is unreachable through it), so every `process` slot is `None` for the
// slot's entire lifetime. All remaining state is owned plain data.
// `ShardedCluster::with_plan` asserts the invariant at construction.
unsafe impl Send for ShardSlot {}

impl EpochWorld for ShardSlot {
    fn run_epoch(&mut self, horizon: SimTime) -> u64 {
        self.engine.run_until(&mut self.world, horizon)
    }

    fn next_event_time(&mut self) -> Option<SimTime> {
        self.engine.next_time()
    }

    fn align_clock(&mut self, to: SimTime) {
        self.engine.advance_now_to(to);
    }
}

/// The cluster sharded across threads, with the global fabric and the
/// epoch-barrier merge. Mirrors the [`Cluster`] driver surface (contexts,
/// queue pairs, tenants, functional segment access, statistics) with
/// global node ids routed to the owning shard.
pub struct ShardedCluster {
    engine: ShardedEngine<ShardSlot>,
    fabric: Fabric,
    plan: ShardPlan,
    config: MachineConfig,
    /// Global clock: the last epoch boundary (or an idle-jump target).
    clock: SimTime,
    /// Cached engine events + batched logical events, refreshed at round
    /// boundaries (`events_processed` is a `&self` query).
    events: u64,
    /// Scratch for the epoch merge, reused across exchanges.
    merge_buf: Vec<Departure>,
}

impl std::fmt::Debug for ShardedCluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedCluster")
            .field("nodes", &self.config.nodes)
            .field("shards", &self.plan.shards())
            .field("lookahead", &self.engine.lookahead())
            .field("clock", &self.clock)
            .finish()
    }
}

impl ShardedCluster {
    /// Builds a cluster sharded into (at most) `threads` topology-aware
    /// contiguous slabs.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero or the fabric topology disagrees with
    /// `config.nodes`.
    pub fn new(config: MachineConfig, threads: usize) -> Self {
        let plan = ShardPlan::for_topology(&config.fabric.topology, threads);
        Self::with_plan(config, plan)
    }

    /// Builds a cluster sharded per an explicit [`ShardPlan`] — the
    /// surface the partition-equivalence property tests use to exercise
    /// arbitrary contiguous partitions.
    ///
    /// # Panics
    ///
    /// Panics if the plan does not cover exactly `config.nodes` nodes or
    /// the fabric topology disagrees with `config.nodes`.
    pub fn with_plan(config: MachineConfig, plan: ShardPlan) -> Self {
        assert_eq!(
            config.fabric.topology.nodes(),
            config.nodes,
            "fabric topology size must match node count"
        );
        assert_eq!(
            plan.nodes(),
            config.nodes,
            "shard plan must cover every node"
        );
        let lookahead = config.fabric.min_delivery_delay(HEADER_BYTES as u64);
        let shards: Vec<ShardSlot> = (0..plan.shards())
            .map(|s| {
                let world = Cluster::shard_slice(config.clone(), plan.range(s));
                // The Send invariant of ShardSlot: no process ever attaches.
                debug_assert!(world
                    .nodes
                    .iter()
                    .all(|n| n.cores.iter().all(|c| c.process.is_none())));
                ShardSlot {
                    world,
                    engine: ClusterEngine::new(),
                }
            })
            .collect();
        ShardedCluster {
            engine: ShardedEngine::new(shards, lookahead),
            fabric: Fabric::new(config.fabric.clone()),
            plan,
            config,
            clock: SimTime::ZERO,
            events: 0,
            merge_buf: Vec::new(),
        }
    }

    /// The cluster configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// Number of nodes across all shards.
    pub fn num_nodes(&self) -> usize {
        self.config.nodes
    }

    /// Number of shards (== executing threads).
    pub fn num_shards(&self) -> usize {
        self.plan.shards()
    }

    /// The partition in force.
    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// Epochs executed so far (partition-invariant).
    pub fn epochs(&self) -> u64 {
        self.engine.epochs()
    }

    /// The shard owning `node`.
    pub fn shard_of(&self, node: usize) -> usize {
        self.plan.shard_of(node)
    }

    /// The global memory fabric (shared by every shard's traffic).
    pub fn fabric(&self) -> &Fabric {
        &self.fabric
    }

    /// The global simulated clock: every shard is aligned to it between
    /// rounds.
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// Engine events executed plus batched logical events, summed across
    /// shards — partition-invariant (cached at round boundaries).
    pub fn events_processed(&self) -> u64 {
        self.events
    }

    /// Per-shard logical event counts, for the report's sharding section.
    pub fn shard_events(&self) -> Vec<u64> {
        (0..self.plan.shards())
            .map(|s| {
                self.engine.peek_shard(s, |slot| {
                    slot.engine.events_executed() + slot.world.batched_logical_events
                })
            })
            .collect()
    }

    /// Runs `f` with the shard owning `node` (its world and engine).
    pub(crate) fn with_node<R>(
        &mut self,
        node: usize,
        f: impl FnOnce(&mut Cluster, &mut ClusterEngine) -> R,
    ) -> R {
        let shard = self.plan.shard_of(node);
        self.engine
            .with_shard(shard, |slot| f(&mut slot.world, &mut slot.engine))
    }

    /// Read-only access to the shard owning `node`.
    pub(crate) fn peek_node<R>(&self, node: usize, f: impl FnOnce(&Cluster) -> R) -> R {
        let shard = self.plan.shard_of(node);
        self.engine.peek_shard(shard, |slot| f(&slot.world))
    }

    // ------------------------------------------------------------------
    // Driver surface (global node ids, routed to the owning shard).
    // ------------------------------------------------------------------

    /// Establishes context `ctx` on every node of every shard.
    ///
    /// # Errors
    ///
    /// Fails if any node cannot map the segment.
    pub fn create_context(
        &mut self,
        ctx: CtxId,
        segment_len: u64,
    ) -> Result<(), sonuma_memory::MemError> {
        let mut result = Ok(());
        self.engine.for_each_shard(|_, slot| {
            if result.is_ok() {
                result = slot.world.create_context(ctx, segment_len);
            }
        });
        result
    }

    /// Creates a queue pair on `node` (see [`Cluster::create_qp`]).
    ///
    /// # Errors
    ///
    /// Fails on memory exhaustion or an unregistered context.
    pub fn create_qp(
        &mut self,
        node: NodeId,
        ctx: CtxId,
        owner_core: usize,
    ) -> Result<QpId, sonuma_memory::MemError> {
        self.with_node(node.index(), |cluster, _| {
            cluster.create_qp(node, ctx, owner_core)
        })
    }

    /// Registers a tenant on `node` (see [`Cluster::register_tenant`]).
    pub fn register_tenant(&mut self, node: NodeId, spec: TenantSpec) {
        self.with_node(node.index(), |cluster, _| {
            cluster.register_tenant(node, spec)
        });
    }

    /// Creates a tenant-bound queue pair (see [`Cluster::create_tenant_qp`]).
    ///
    /// # Errors
    ///
    /// Fails on memory exhaustion or an unregistered context.
    ///
    /// # Panics
    ///
    /// Panics if `tenant` is not registered on `node`.
    pub fn create_tenant_qp(
        &mut self,
        node: NodeId,
        ctx: CtxId,
        owner_core: usize,
        tenant: TenantId,
    ) -> Result<QpId, sonuma_memory::MemError> {
        self.with_node(node.index(), |cluster, _| {
            cluster.create_tenant_qp(node, ctx, owner_core, tenant)
        })
    }

    /// Per-tenant counters of `node` (see [`Cluster::tenant_stats`]).
    pub fn tenant_stats(&self, node: NodeId) -> Vec<(TenantSpec, TenantStats)> {
        self.peek_node(node.index(), |cluster| cluster.tenant_stats(node))
    }

    /// Functional write into `node`'s context segment.
    ///
    /// # Panics
    ///
    /// Panics if the context or range is invalid.
    pub fn write_ctx(&mut self, node: NodeId, ctx: CtxId, offset: u64, data: &[u8]) {
        self.with_node(node.index(), |cluster, _| {
            cluster.write_ctx(node, ctx, offset, data)
        });
    }

    /// Functional read from `node`'s context segment.
    ///
    /// # Panics
    ///
    /// Panics if the context or range is invalid.
    pub fn read_ctx(&self, node: NodeId, ctx: CtxId, offset: u64, buf: &mut [u8]) {
        self.peek_node(node.index(), |cluster| {
            cluster.read_ctx(node, ctx, offset, buf)
        });
    }

    // ------------------------------------------------------------------
    // Statistics.
    // ------------------------------------------------------------------

    /// Pipeline counters of `node`.
    pub fn pipeline_stats(&self, node: NodeId) -> PipelineStats {
        self.peek_node(node.index(), |cluster| cluster.pipeline_stats(node))
    }

    /// Cluster-wide pipeline counter totals.
    pub fn total_pipeline_stats(&self) -> PipelineStats {
        let mut total = PipelineStats::default();
        for s in 0..self.plan.shards() {
            self.engine.peek_shard(s, |slot| {
                total.merge_from(&slot.world.total_pipeline_stats());
            });
        }
        total
    }

    /// Total remote operations completed across the cluster.
    pub fn total_ops_completed(&self) -> u64 {
        self.fold_shards(|c| c.total_ops_completed())
    }

    /// Total remote-read payload bytes delivered.
    pub fn total_bytes_read(&self) -> u64 {
        self.fold_shards(|c| c.total_bytes_read())
    }

    /// Total remote-write payload bytes delivered.
    pub fn total_bytes_written(&self) -> u64 {
        self.fold_shards(|c| c.total_bytes_written())
    }

    /// The delivery-order hash of `node` (see `Node::deliver_hash`):
    /// equal across two runs iff packets arrived at `node` in the same
    /// order at the same times.
    pub fn delivery_hash(&self, node: NodeId) -> u64 {
        self.peek_node(node.index(), |cluster| {
            cluster.node(node.index()).deliver_hash
        })
    }

    fn fold_shards(&self, f: impl Fn(&Cluster) -> u64) -> u64 {
        (0..self.plan.shards())
            .map(|s| self.engine.peek_shard(s, |slot| f(&slot.world)))
            .sum()
    }

    // ------------------------------------------------------------------
    // Execution.
    // ------------------------------------------------------------------

    /// Jumps the global clock to `t` when nothing earlier is pending (the
    /// open-loop idle jump). With events pending before `t`, only the
    /// externally visible clock moves; engine clocks catch up through
    /// epochs.
    pub fn advance_clock_to(&mut self, t: SimTime) {
        let mut min_next: Option<SimTime> = None;
        self.engine.for_each_shard(|_, slot| {
            min_next = match (min_next, slot.next_event_time()) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            };
        });
        if min_next.is_none_or(|m| m >= t) {
            self.engine.for_each_shard(|_, slot| slot.align_clock(t));
        }
        self.clock = self.clock.max(t);
    }

    /// Runs one driver round: epochs (with the fabric merge at each
    /// barrier) until [`ADVANCE_ROUND_EVENTS`] events have executed or
    /// the simulation drains. Returns whether work remains.
    pub fn advance_round(&mut self) -> bool {
        let mut ran_total = 0u64;
        let more = loop {
            let ran = self.engine.run_epoch();
            let exchanged = self.exchange();
            if ran == 0 && exchanged == 0 {
                break false;
            }
            ran_total += ran;
            if ran_total >= ADVANCE_ROUND_EVENTS {
                break true;
            }
        };
        self.sync_caches();
        more
    }

    /// Refreshes the `&self`-queryable caches (clock, event counts) from
    /// shard state. Called at round boundaries.
    fn sync_caches(&mut self) {
        self.clock = self.clock.max(self.engine.horizon());
        let mut events = 0u64;
        self.engine.for_each_shard(|_, slot| {
            events += slot.engine.events_executed() + slot.world.batched_logical_events;
        });
        self.events = events;
    }

    /// The epoch-barrier merge: drains every shard's mailbox, applies the
    /// staged sends to the global fabric in `(time, src, seq)` order, and
    /// schedules the `Deliver` events into destination shards in
    /// `(arrival, src, seq)` order. Returns the number of packets merged.
    fn exchange(&mut self) -> usize {
        let merge = &mut self.merge_buf;
        merge.clear();
        self.engine.for_each_shard(|_, slot| {
            if let RoutePath::Mailbox(outbox) = &mut slot.world.route {
                merge.append(outbox);
            }
        });
        if merge.is_empty() {
            return 0;
        }
        merge.sort_unstable_by_key(|d| (d.t, d.src, d.seq));
        let horizon = self.engine.horizon();
        let mut deliveries: Vec<(usize, SimTime, Packet)> = Vec::with_capacity(merge.len());
        for d in merge.iter() {
            let arrival = self
                .fabric
                .send(
                    d.t,
                    d.src,
                    d.pkt.dst,
                    d.pkt.virtual_lane(),
                    d.pkt.wire_bytes(),
                )
                .time;
            debug_assert!(
                arrival > horizon,
                "conservative bound violated: arrival {arrival} within epoch (horizon {horizon})"
            );
            deliveries.push((self.plan.shard_of(d.pkt.dst.index()), arrival, d.pkt));
        }
        let n = deliveries.len();
        // One lock per destination shard, preserving merged order within
        // each shard (stable partition).
        for s in 0..self.plan.shards() {
            if deliveries.iter().any(|&(shard, _, _)| shard == s) {
                self.engine.with_shard(s, |slot| {
                    for &(shard, at, pkt) in &deliveries {
                        if shard == s {
                            slot.engine.schedule_at(at, ClusterEvent::Deliver { pkt });
                        }
                    }
                });
            }
        }
        n
    }
}
