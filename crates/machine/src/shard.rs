//! The sharded cluster: conservative-parallel execution of the machine.
//!
//! [`ShardedCluster`] partitions the cluster's nodes into contiguous
//! shards (one per thread, planned by `sonuma_fabric::ShardPlan` so grid
//! shards are whole torus slabs), gives each shard *ownership* of its
//! slice of world state — a [`Cluster`] in mailbox mode plus its own
//! `ClusterEngine` — and advances all shards in epochs bounded by a
//! *distance-aware lookahead matrix*: `lookahead[s][d]` is the fabric
//! delivery delay over the minimum hop distance between shard `s`'s and
//! shard `d`'s node slabs (`Topology::min_hops` ×
//! `FabricConfig::delivery_delay_for_hops`), so distant slabs of a torus
//! stop throttling each other to the single worst-case minimum delay.
//! The single global [`Fabric`] lives here, not in any shard.
//!
//! # Why `--threads N` is bit-identical to `--threads 1`
//!
//! Determinism rests on three invariants:
//!
//! 1. **Packets are the only cross-node channel.** Every event a node
//!    schedules targets that node itself; influence between nodes flows
//!    exclusively through fabric packets (and harness-level driver calls,
//!    which are serial). So each node's event history is a function of
//!    the packet stream it receives.
//! 2. **Every non-loopback packet takes the mailbox path — even when
//!    source and destination share a shard.** Shard outboxes drain into
//!    per-source staging buffers; once the commit frontier passes a
//!    staged departure it is applied to the global fabric in
//!    `(inject time, source node, per-source sequence)` order, and the
//!    resulting `Deliver` events are scheduled into destination shards in
//!    the same order. Both keys are pure functions of simulated history,
//!    so link-state evolution and delivery order never depend on the
//!    partition.
//! 3. **Round boundaries are partition-invariant.** Execution proceeds in
//!    *quanta* of [`QUANTUM_EPOCHS`] scalar lookaheads anchored at the
//!    globally earliest pending work — both partition-invariant
//!    quantities. Within a quantum, per-shard horizons (and with them the
//!    epoch structure) depend on the partition, but every quantum runs to
//!    completion — all events and staged traffic up to the quantum
//!    boundary are final — and every shard clock re-aligns to the
//!    boundary. Rounds hand control back to the driver only at quantum
//!    boundaries, so harness-level posts charge from the same simulated
//!    time at any thread count.
//!
//! Speculative run-ahead ([`ShardedCluster::set_speculation`]) preserves
//! all three: it only changes how epochs *batch* between barriers (safe
//! levels against published monotone floors) and where idle clocks park
//! (validated clock-only bets, rolled back via the
//! `EpochWorld::snapshot`/`restore` checkpoint when refuted), never which
//! events execute or in what per-shard order.
//!
//! # Conservative safety with per-pair lookahead
//!
//! Within an epoch, shard `d` runs to
//! `min over s of (floor[s] + lookahead[s][d]) - 1`, where `floor[s]` is
//! the earliest pending event or staged departure of shard `s`. Any
//! influence of shard `s` on shard `d` is a chain of packets over real
//! nodes, and node-level hop distance is a metric (the triangle
//! inequality holds hop-wise), so the chain crosses at least
//! `min_hops(s, d)` hops and pays at least one serialization — i.e. at
//! least `lookahead[s][d]` of simulated time after the chain's origin,
//! which cannot predate `floor[s]`. Hence nothing can land at or before
//! shard `d`'s horizon, and committing staged traffic at the frontier
//! `min over d of horizon[d]` never schedules into any shard's past.
//! Between epochs the cluster additionally *pre-commits* staged
//! departures below `min(frontier bound, earliest pending event - 1)`:
//! no shard can inject a departure earlier than its own next event, so
//! every staged entry below that line is final in the global
//! `(t, src, seq)` order and can be applied without running an epoch.
//! Pre-committing before anchoring a quantum also settles the anchor on
//! true event floors, keeping epoch windows tiled to the lookahead grid
//! instead of split across staged-head offsets. A
//! shard's horizon may *regress* when an empty peer gains a floor;
//! running and aligning are then no-ops and the bound above still holds
//! for everything already executed. The per-delivery
//! [`ShardedCluster::pair_bound_violations`] counter (asserted zero by
//! the partition property tests) checks the promise at runtime.

use sonuma_fabric::{Fabric, ShardPlan};
use sonuma_protocol::{CtxId, NodeId, Packet, QpId, TenantId, HEADER_BYTES};
use sonuma_sim::{EpochWorld, LookaheadMatrix, ShardedEngine, SimTime};
use sonuma_trace::{FaultKind, FlightRecorder, NodeCounters, TraceConfig};

use crate::cluster::{Cluster, Departure, RoutePath};
use crate::config::MachineConfig;
use crate::event::ClusterEvent;
use crate::pipeline::PipelineStats;
use crate::tenancy::{TenantSpec, TenantStats};
use crate::ClusterEngine;

/// Events one `advance()` round executes before handing control back to
/// the driver (posts/polls happen between rounds). Rounds are measured in
/// events — a partition-invariant quantity — and the threshold is only
/// checked at quantum boundaries (also partition-invariant), so the
/// driver's interleaving with the simulation is identical at every
/// thread count. 64 matches the pre-sharding `run_steps(64)` burst.
pub const ADVANCE_ROUND_EVENTS: u64 = 64;

/// Width of one execution quantum, in scalar lookaheads
/// (`FabricConfig::min_delivery_delay` of the smallest packet). A quantum
/// spans `[S, S + QUANTUM_EPOCHS * L)` where `S` is the globally earliest
/// pending work — a topology constant times a partition-invariant anchor,
/// so quantum boundaries are partition-invariant. Larger quanta let the
/// lookahead matrix merge more distant activity clusters into one epoch
/// (fewer barriers) but coarsen the driver's observation granularity;
/// 4 balances the two on the canned rack workloads.
pub const QUANTUM_EPOCHS: u64 = 4;

/// One shard: its slice of the world plus the engine that drives it.
pub(crate) struct ShardSlot {
    pub world: Cluster,
    pub engine: ClusterEngine,
    /// Frontier checkpoint of the last [`EpochWorld::snapshot`].
    saved: Option<Checkpoint>,
}

/// The speculation-mutable frontier of a shard. Clock-only speculation
/// executes no events and drains no outboxes past a snapshot, so the
/// clock is the whole restorable state; the counts exist to assert that.
#[derive(Clone, Copy)]
struct Checkpoint {
    now: SimTime,
    executed: u64,
    outbox_len: usize,
}

// SAFETY: the only non-`Send` constituent of `Cluster` is the attached
// application process slot (`CoreSlot.process`, a `Box<dyn AppProcess>`
// whose implementations may capture `Rc` state). Shard clusters are
// constructed exclusively by `ShardedCluster` from fresh nodes, and
// nothing in the sharded surface can attach a process (`Cluster::spawn`
// is unreachable through it), so every `process` slot is `None` for the
// slot's entire lifetime. All remaining state is owned plain data.
// `ShardedCluster::with_plan` asserts the invariant at construction.
unsafe impl Send for ShardSlot {}

impl ShardSlot {
    /// Departures executed events have staged but no drain has collected.
    fn outbox_len(&self) -> usize {
        match &self.world.route {
            RoutePath::Mailbox(outbox) => outbox.len(),
            RoutePath::Direct(_) => 0,
        }
    }
}

impl EpochWorld for ShardSlot {
    fn run_epoch(&mut self, horizon: SimTime) -> u64 {
        self.engine.run_until(&mut self.world, horizon)
    }

    fn next_event_time(&mut self) -> Option<SimTime> {
        self.engine.next_time()
    }

    fn align_clock(&mut self, to: SimTime) {
        self.engine.advance_now_to(to);
    }

    fn pending_floor(&mut self) -> Option<SimTime> {
        // During a speculative region outboxes are not drained between
        // levels, so staged-but-undrained departures are pending work the
        // engine must fence peers from — they join the floor at their
        // inject times. Outboxes are tiny (at most one level's sends), so
        // the scan is cheap; between regions they are empty and this is
        // exactly `next_event_time`.
        let next = self.engine.next_time();
        let staged = match &self.world.route {
            RoutePath::Mailbox(outbox) => outbox.iter().map(|d| d.t).min(),
            RoutePath::Direct(_) => None,
        };
        match (next, staged) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    fn snapshot(&mut self) {
        self.saved = Some(Checkpoint {
            now: self.engine.now(),
            executed: self.engine.events_executed(),
            outbox_len: self.outbox_len(),
        });
    }

    fn restore(&mut self) {
        let saved = self.saved.take().expect("restore without snapshot");
        debug_assert_eq!(
            saved.executed,
            self.engine.events_executed(),
            "clock-only speculation must not have executed events"
        );
        debug_assert_eq!(
            saved.outbox_len,
            self.outbox_len(),
            "clock-only speculation must not have staged departures"
        );
        self.engine.rewind_now_to(saved.now);
    }
}

/// Staged departures of one source shard, kept in `(t, src, seq)` order
/// with an incremental head cursor so committing pops nothing and moves
/// no memory. The buffer is reused across epochs and quanta; the consumed
/// prefix is compacted away once it dominates.
#[derive(Default)]
struct SourceQueue {
    buf: Vec<Departure>,
    head: usize,
    /// Cached merge cursor: the head departure's `(t, src, seq)` key.
    /// The commit merge's k-way scan reads only this, so a queue whose
    /// head did not move between quanta costs one field load instead of
    /// a re-deref of the departure memory every pop.
    head_key: Option<(SimTime, NodeId, u64)>,
    /// Most entries the buffer ever held — next quantum's presize hint.
    hwm: usize,
}

impl SourceQueue {
    /// Inject time of the earliest staged-but-uncommitted departure.
    fn head_time(&self) -> Option<SimTime> {
        self.head_key.map(|(t, _, _)| t)
    }

    /// Refreshes the cached head key after the head moved.
    fn refresh_key(&mut self) {
        self.head_key = self.buf.get(self.head).map(|d| (d.t, d.src, d.seq));
    }

    /// Pops the head departure. The caller has checked the queue is
    /// nonempty via its cached key.
    fn pop(&mut self) -> (SimTime, Packet) {
        let d = &self.buf[self.head];
        let out = (d.t, d.pkt);
        self.head += 1;
        self.refresh_key();
        out
    }

    /// Appends one epoch's outbox drain, keeping the uncommitted suffix
    /// `(t, src, seq)`-sorted. Chunks from successive epochs are usually
    /// time-separated (an epoch only executes events past the previous
    /// one's horizon), so sorting just the new tail suffices; inject
    /// times carry per-packet offsets (`stage_local` vs none), so when a
    /// chunk overlaps the staged suffix the whole uncommitted range is
    /// re-sorted. Everything staged is past the commit frontier, so the
    /// merge order is unaffected.
    fn append_chunk(&mut self, outbox: &mut Vec<Departure>) -> usize {
        if outbox.is_empty() {
            return 0;
        }
        // Presize from the previous high-water mark: one reservation per
        // steady-state quantum instead of a doubling ladder per burst.
        if self.buf.capacity() < self.hwm {
            self.buf.reserve(self.hwm - self.buf.len());
        }
        let tail = self.buf.len();
        self.buf.append(outbox);
        let key = |d: &Departure| (d.t, d.src, d.seq);
        self.buf[tail..].sort_unstable_by_key(key);
        if tail > self.head && key(&self.buf[tail - 1]) > key(&self.buf[tail]) {
            self.buf[self.head..].sort_unstable_by_key(key);
        }
        self.refresh_key();
        self.hwm = self.hwm.max(self.buf.len());
        self.buf.len() - tail
    }

    /// Drops the committed prefix once it outweighs the live tail.
    fn compact(&mut self) {
        if self.head > 64 && self.head * 2 >= self.buf.len() {
            self.buf.drain(..self.head);
            self.head = 0;
            self.refresh_key();
        }
    }
}

/// Builds shard `s`'s slice of the world. Pure function of the (shared,
/// read-only) config and plan, so [`ShardedCluster::with_plan`] can fan
/// construction across scoped threads.
fn build_shard(config: &MachineConfig, plan: &ShardPlan, s: usize) -> ShardSlot {
    let world = Cluster::shard_slice(config.clone(), plan.range(s));
    // The Send invariant of ShardSlot: no process ever attaches.
    debug_assert!(world
        .nodes
        .iter()
        .all(|n| n.cores.iter().all(|c| c.process.is_none())));
    let mut slot = ShardSlot {
        world,
        engine: ClusterEngine::new(),
        saved: None,
    };
    // Each shard schedules the crash/restart events for the fault-plan
    // nodes it owns; the schedule is a pure function of the plan, so it
    // is partition-invariant.
    slot.world.schedule_fault_events(&mut slot.engine);
    slot
}

/// The cluster sharded across threads, with the global fabric and the
/// staged commit-frontier merge. Mirrors the [`Cluster`] driver surface
/// (contexts, queue pairs, tenants, functional segment access,
/// statistics) with global node ids routed to the owning shard.
pub struct ShardedCluster {
    engine: ShardedEngine<ShardSlot>,
    fabric: Fabric,
    plan: ShardPlan,
    config: MachineConfig,
    /// Global clock: the last quantum boundary (or an idle-jump target).
    clock: SimTime,
    /// Cached engine events + batched logical events, refreshed at round
    /// boundaries (`events_processed` is a `&self` query).
    events: u64,
    /// Width of one quantum: `QUANTUM_EPOCHS` scalar lookaheads.
    quantum: SimTime,
    /// Per-source-shard staging of drained mailbox departures.
    staging: Vec<SourceQueue>,
    /// Scratch for one commit's deliveries, reused across commits.
    deliveries: Vec<(usize, SimTime, Packet)>,
    /// Most deliveries one commit ever produced — the presize hint.
    delivery_hwm: usize,
    /// Scratch: deliveries bound for each destination shard in the
    /// current commit, so the scheduling pass skips untouched shards.
    delivery_counts: Vec<usize>,
    /// Scratch for one iteration's per-shard floors, reused across epochs.
    floors: Vec<Option<SimTime>>,
    /// Cross-shard cut of the plan in force (directed links).
    cut_links: usize,
    /// Deliveries that landed at or before a promise the lookahead matrix
    /// made — always zero when the conservative bounds are sound; counted
    /// in release builds too so the property tests can assert on it.
    pair_bound_violations: u64,
    /// The armed flight recorder, if any. Boxed so the (large, cold)
    /// recorder state stays off the cluster's cache footprint; `None`
    /// (the default) leaves every hot path on exactly the untraced code.
    trace: Option<Box<FlightRecorder>>,
}

impl std::fmt::Debug for ShardedCluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedCluster")
            .field("nodes", &self.config.nodes)
            .field("shards", &self.plan.shards())
            .field("lookahead", &self.engine.lookahead())
            .field("clock", &self.clock)
            .finish()
    }
}

impl ShardedCluster {
    /// Builds a cluster sharded into (at most) `threads` topology-aware
    /// contiguous slabs.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero or the fabric topology disagrees with
    /// `config.nodes`.
    pub fn new(config: MachineConfig, threads: usize) -> Self {
        let plan = ShardPlan::for_topology(&config.fabric.topology, threads);
        Self::with_plan(config, plan)
    }

    /// Builds a cluster sharded per an explicit [`ShardPlan`] — the
    /// surface the partition-equivalence property tests use to exercise
    /// arbitrary contiguous partitions.
    ///
    /// # Panics
    ///
    /// Panics if the plan does not cover exactly `config.nodes` nodes or
    /// the fabric topology disagrees with `config.nodes`.
    pub fn with_plan(config: MachineConfig, plan: ShardPlan) -> Self {
        assert_eq!(
            config.fabric.topology.nodes(),
            config.nodes,
            "fabric topology size must match node count"
        );
        assert_eq!(
            plan.nodes(),
            config.nodes,
            "shard plan must cover every node"
        );
        let lookahead = config.fabric.min_delivery_delay(HEADER_BYTES as u64);
        // The distance-aware lookahead matrix: entry [s][d] is the fabric
        // delivery delay over the minimum hop distance between the two
        // shards' slabs. On a crossbar (or between adjacent slabs) this
        // reduces to the scalar `lookahead`; distant slabs get
        // proportionally more run-ahead.
        let matrix = LookaheadMatrix::from_fn(plan.shards(), |s, d| {
            config.fabric.delivery_delay_for_hops(
                config
                    .fabric
                    .topology
                    .min_hops(plan.range(s), plan.range(d)),
                HEADER_BYTES as u64,
            )
        });
        let cut_links = plan.cut_links(&config.fabric.topology);
        // Shard worlds are independent slices built from shared read-only
        // inputs, so a multi-shard build runs one construction thread per
        // shard (the worker pool does not exist yet — scoped threads
        // borrow `config`/`plan` directly). Joining in shard order keeps
        // the result deterministic; at rack4096/rack8192 construction is
        // hundreds of MB of node-table writes, so this parallelizes the
        // startup wall the same way epochs parallelize the drive.
        let shards: Vec<ShardSlot> = if plan.shards() > 1 {
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..plan.shards())
                    .map(|s| {
                        let (config, plan) = (&config, &plan);
                        scope.spawn(move || build_shard(config, plan, s))
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("shard construction panicked"))
                    .collect()
            })
        } else {
            (0..plan.shards())
                .map(|s| build_shard(&config, &plan, s))
                .collect()
        };
        let num_shards = shards.len();
        ShardedCluster {
            engine: ShardedEngine::with_matrix(shards, matrix),
            fabric: Fabric::new(config.fabric.clone()),
            plan,
            config,
            clock: SimTime::ZERO,
            events: 0,
            quantum: lookahead * QUANTUM_EPOCHS,
            staging: (0..num_shards).map(|_| SourceQueue::default()).collect(),
            deliveries: Vec::new(),
            delivery_hwm: 0,
            delivery_counts: vec![0; num_shards],
            floors: vec![None; num_shards],
            cut_links,
            pair_bound_violations: 0,
            trace: None,
        }
    }

    /// Arms a flight recorder: from now on, link counters are sampled
    /// inside the commit merge (the global `(t, src, seq)` send order)
    /// and node counters at quantum boundaries — both partition-invariant
    /// points, so the recorded series are byte-identical across thread
    /// counts. All recorder capacity is allocated here, once.
    ///
    /// # Panics
    ///
    /// Panics if the cluster has already run (samples would start
    /// mid-stream) or the configured interval is zero.
    pub fn arm_trace(&mut self, config: &TraceConfig) {
        assert!(
            self.clock == SimTime::ZERO && self.events == 0,
            "arm the flight recorder before any traffic"
        );
        self.trace = Some(Box::new(FlightRecorder::new(
            config,
            self.fabric.link_slots(),
            self.config.nodes,
        )));
    }

    /// The armed flight recorder, if any.
    pub fn trace(&self) -> Option<&FlightRecorder> {
        self.trace.as_deref()
    }

    /// The cluster configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// Number of nodes across all shards.
    pub fn num_nodes(&self) -> usize {
        self.config.nodes
    }

    /// Number of shards (== executing threads).
    pub fn num_shards(&self) -> usize {
        self.plan.shards()
    }

    /// The partition in force.
    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// Epoch barriers executed so far. With the distance-aware matrix the
    /// per-shard horizon structure (and so this count) depends on the
    /// partition; results stay bit-identical regardless.
    pub fn epochs(&self) -> u64 {
        self.engine.epochs()
    }

    /// Sets the speculative run-ahead depth `K`: each epoch barrier may
    /// cover up to `K` extra lookahead levels per shard, plus one
    /// validated clock-only speculation (see `sonuma_sim::ShardedEngine`).
    /// Observationally invisible — reports, traces, and fault fates stay
    /// byte-identical to `K = 0` — so it may be set at any point.
    pub fn set_speculation(&mut self, k: u32) {
        self.engine.set_speculation(k);
    }

    /// The configured speculative run-ahead depth.
    pub fn speculation_depth(&self) -> u32 {
        self.engine.speculation_depth()
    }

    /// `(committed, rolled_back)` clock speculations so far — scheduling-
    /// dependent reporting metadata, never part of the simulated result.
    pub fn speculation(&self) -> (u64, u64) {
        self.engine.speculation()
    }

    /// The per-shard-pair lookahead matrix in force.
    pub fn lookahead_matrix(&self) -> &LookaheadMatrix {
        self.engine.matrix()
    }

    /// Tightest and loosest entries of the lookahead matrix.
    pub fn lookahead_bounds(&self) -> (SimTime, SimTime) {
        (self.engine.matrix().min(), self.engine.matrix().max())
    }

    /// Directed links cut by the plan in force.
    pub fn cut_links(&self) -> usize {
        self.cut_links
    }

    /// Deliveries that beat a lookahead-matrix promise — zero when the
    /// conservative bounds are sound (the partition property tests assert
    /// this stays zero in release builds; debug builds also assert at the
    /// point of violation).
    pub fn pair_bound_violations(&self) -> u64 {
        self.pair_bound_violations
    }

    /// The shard owning `node`.
    pub fn shard_of(&self, node: usize) -> usize {
        self.plan.shard_of(node)
    }

    /// The global memory fabric (shared by every shard's traffic).
    pub fn fabric(&self) -> &Fabric {
        &self.fabric
    }

    /// The global simulated clock: every shard is aligned to it between
    /// rounds.
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// Engine events executed plus batched logical events, summed across
    /// shards — partition-invariant (cached at round boundaries).
    pub fn events_processed(&self) -> u64 {
        self.events
    }

    /// Per-shard logical event counts, for the report's sharding section.
    pub fn shard_events(&self) -> Vec<u64> {
        (0..self.plan.shards())
            .map(|s| {
                self.engine.peek_shard(s, |slot| {
                    slot.engine.events_executed() + slot.world.batched_logical_events
                })
            })
            .collect()
    }

    /// Runs `f` with the shard owning `node` (its world and engine).
    pub(crate) fn with_node<R>(
        &mut self,
        node: usize,
        f: impl FnOnce(&mut Cluster, &mut ClusterEngine) -> R,
    ) -> R {
        let shard = self.plan.shard_of(node);
        self.engine
            .with_shard(shard, |slot| f(&mut slot.world, &mut slot.engine))
    }

    /// Read-only access to the shard owning `node`.
    pub(crate) fn peek_node<R>(&self, node: usize, f: impl FnOnce(&Cluster) -> R) -> R {
        let shard = self.plan.shard_of(node);
        self.engine.peek_shard(shard, |slot| f(&slot.world))
    }

    // ------------------------------------------------------------------
    // Driver surface (global node ids, routed to the owning shard).
    // ------------------------------------------------------------------

    /// Establishes context `ctx` on every node of every shard.
    ///
    /// # Errors
    ///
    /// Fails if any node cannot map the segment.
    pub fn create_context(
        &mut self,
        ctx: CtxId,
        segment_len: u64,
    ) -> Result<(), sonuma_memory::MemError> {
        let mut result = Ok(());
        self.engine.for_each_shard(|_, slot| {
            if result.is_ok() {
                result = slot.world.create_context(ctx, segment_len);
            }
        });
        result
    }

    /// Creates a queue pair on `node` (see [`Cluster::create_qp`]).
    ///
    /// # Errors
    ///
    /// Fails on memory exhaustion or an unregistered context.
    pub fn create_qp(
        &mut self,
        node: NodeId,
        ctx: CtxId,
        owner_core: usize,
    ) -> Result<QpId, sonuma_memory::MemError> {
        self.with_node(node.index(), |cluster, _| {
            cluster.create_qp(node, ctx, owner_core)
        })
    }

    /// Registers a tenant on `node` (see [`Cluster::register_tenant`]).
    pub fn register_tenant(&mut self, node: NodeId, spec: TenantSpec) {
        self.with_node(node.index(), |cluster, _| {
            cluster.register_tenant(node, spec)
        });
    }

    /// Creates a tenant-bound queue pair (see [`Cluster::create_tenant_qp`]).
    ///
    /// # Errors
    ///
    /// Fails on memory exhaustion or an unregistered context.
    ///
    /// # Panics
    ///
    /// Panics if `tenant` is not registered on `node`.
    pub fn create_tenant_qp(
        &mut self,
        node: NodeId,
        ctx: CtxId,
        owner_core: usize,
        tenant: TenantId,
    ) -> Result<QpId, sonuma_memory::MemError> {
        self.with_node(node.index(), |cluster, _| {
            cluster.create_tenant_qp(node, ctx, owner_core, tenant)
        })
    }

    /// Per-tenant counters of `node` (see [`Cluster::tenant_stats`]).
    pub fn tenant_stats(&self, node: NodeId) -> Vec<(TenantSpec, TenantStats)> {
        self.peek_node(node.index(), |cluster| cluster.tenant_stats(node))
    }

    /// Functional write into `node`'s context segment.
    ///
    /// # Panics
    ///
    /// Panics if the context or range is invalid.
    pub fn write_ctx(&mut self, node: NodeId, ctx: CtxId, offset: u64, data: &[u8]) {
        self.with_node(node.index(), |cluster, _| {
            cluster.write_ctx(node, ctx, offset, data)
        });
    }

    /// Functional read from `node`'s context segment.
    ///
    /// # Panics
    ///
    /// Panics if the context or range is invalid.
    pub fn read_ctx(&self, node: NodeId, ctx: CtxId, offset: u64, buf: &mut [u8]) {
        self.peek_node(node.index(), |cluster| {
            cluster.read_ctx(node, ctx, offset, buf)
        });
    }

    // ------------------------------------------------------------------
    // Statistics.
    // ------------------------------------------------------------------

    /// Pipeline counters of `node`.
    pub fn pipeline_stats(&self, node: NodeId) -> PipelineStats {
        self.peek_node(node.index(), |cluster| cluster.pipeline_stats(node))
    }

    /// Cluster-wide pipeline counter totals.
    pub fn total_pipeline_stats(&self) -> PipelineStats {
        let mut total = PipelineStats::default();
        for s in 0..self.plan.shards() {
            self.engine.peek_shard(s, |slot| {
                total.merge_from(&slot.world.total_pipeline_stats());
            });
        }
        total
    }

    /// Total remote operations completed across the cluster.
    pub fn total_ops_completed(&self) -> u64 {
        self.fold_shards(|c| c.total_ops_completed())
    }

    /// Total remote-read payload bytes delivered.
    pub fn total_bytes_read(&self) -> u64 {
        self.fold_shards(|c| c.total_bytes_read())
    }

    /// Total remote-write payload bytes delivered.
    pub fn total_bytes_written(&self) -> u64 {
        self.fold_shards(|c| c.total_bytes_written())
    }

    /// Estimated resident heap bytes across every node's model state
    /// (see `Node::resident_bytes`), summed over all shards.
    pub fn resident_bytes(&self) -> u64 {
        self.fold_shards(|c| c.resident_bytes())
    }

    /// Node-crash events executed (0 without a fault plan). Only owning
    /// shards count a node's crashes, so the sum is partition-invariant.
    pub fn total_crashes(&self) -> u64 {
        self.fold_shards(|c| c.total_crashes())
    }

    /// Packets discarded at delivery because the destination was inside a
    /// crash window (0 without a fault plan).
    pub fn total_crash_drops(&self) -> u64 {
        self.fold_shards(|c| c.total_crash_drops())
    }

    /// The delivery-order hash of `node` (see `Node::deliver_hash`):
    /// equal across two runs iff packets arrived at `node` in the same
    /// order at the same times.
    pub fn delivery_hash(&self, node: NodeId) -> u64 {
        self.peek_node(node.index(), |cluster| {
            cluster.node(node.index()).deliver_hash
        })
    }

    fn fold_shards(&self, f: impl Fn(&Cluster) -> u64) -> u64 {
        (0..self.plan.shards())
            .map(|s| self.engine.peek_shard(s, |slot| f(&slot.world)))
            .sum()
    }

    // ------------------------------------------------------------------
    // Execution.
    // ------------------------------------------------------------------

    /// Jumps the global clock to `t` when nothing earlier is pending (the
    /// open-loop idle jump). With events pending before `t`, only the
    /// externally visible clock moves; engine clocks catch up through
    /// epochs.
    pub fn advance_clock_to(&mut self, t: SimTime) {
        // Staged departures that outran the last quantum count as pending
        // work at their inject time (their arrivals lie even later), so
        // an idle jump never carries an engine clock past them.
        let mut min_next: Option<SimTime> = None;
        for queue in &self.staging {
            min_next = match (min_next, queue.head_time()) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            };
        }
        self.engine.for_each_shard(|_, slot| {
            min_next = match (min_next, slot.next_event_time()) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            };
        });
        if min_next.is_none_or(|m| m >= t) {
            self.engine.for_each_shard(|_, slot| slot.align_clock(t));
        }
        self.clock = self.clock.max(t);
    }

    /// Runs one driver round: whole quanta until [`ADVANCE_ROUND_EVENTS`]
    /// events have executed or the simulation drains. Both the event
    /// threshold and the quantum boundaries it is checked at are
    /// partition-invariant, so the driver regains control at the same
    /// simulated instants for every thread count. Returns whether work
    /// remains.
    pub fn advance_round(&mut self) -> bool {
        let mut ran_total = 0u64;
        let more = loop {
            match self.run_quantum() {
                None => break false,
                Some(ran) => {
                    ran_total += ran;
                    if ran_total >= ADVANCE_ROUND_EVENTS {
                        break true;
                    }
                }
            }
        };
        self.sync_caches();
        more
    }

    /// Refreshes the `&self`-queryable event count from shard state (the
    /// clock is maintained by `run_quantum`). Called at round boundaries.
    fn sync_caches(&mut self) {
        let mut events = 0u64;
        self.engine.for_each_shard(|_, slot| {
            events += slot.engine.events_executed() + slot.world.batched_logical_events;
        });
        self.events = events;
    }

    /// Executes one quantum `[S, S + QUANTUM_EPOCHS * L)` anchored at the
    /// globally earliest pending event, running matrix-bounded epochs —
    /// with an outbox drain and a commit-frontier merge after each —
    /// until everything inside the quantum is final, then aligns every
    /// shard clock to the (partition-invariant) quantum boundary.
    ///
    /// Returns `None` when the simulation is drained, otherwise the
    /// number of events executed.
    fn run_quantum(&mut self) -> Option<u64> {
        // Settle the anchor: commit every staged departure that is
        // already final — below both the floor-implied frontier and every
        // pending event — so heads left over from the previous quantum
        // become delivery events *before* the boundary is chosen. The
        // quantum then anchors on the earliest remaining work, which
        // keeps its `L`-grid aligned with the floors the epochs actually
        // step through; anchoring on a staged head would offset `t_end`
        // from that grid and split one lookahead band across two quanta
        // (one extra epoch per quantum). Every quantity involved —
        // staged entries, the global minimum floor and event time — is
        // partition-invariant, so the boundary still is too.
        let (mut min_floor, mut min_event) = self.gather_floors();
        min_floor?;
        // The commit frontier only ever moves forward: staged sends must
        // hit the (order-dependent) fabric in globally nondecreasing
        // `(t, src, seq)` order.
        let mut frontier = SimTime::ZERO;
        if let Some(bound) = self.precommit_bound(frontier, min_event) {
            frontier = bound;
            if self.commit(frontier) > 0 {
                (min_floor, min_event) = self.gather_floors();
            }
        }
        let anchor = min_floor?;
        let t_end = SimTime::from_ps(
            anchor
                .as_ps()
                .saturating_add(self.quantum.as_ps())
                .saturating_sub(1),
        );
        self.engine.set_cap(Some(t_end));
        let mut ran_quantum = 0u64;
        loop {
            // Stop without an empty barrier once everything left lies
            // beyond the quantum.
            if min_floor.is_none_or(|f| f > t_end) {
                break;
            }
            // Pre-commit: the frontier an epoch would establish is pure
            // floor arithmetic, so advance it *now* and turn final staged
            // departures into delivery events before the epoch runs —
            // otherwise an iteration whose earliest pending work is a
            // staged head burns a whole (empty) epoch just to publish the
            // frontier that lets `commit` deliver it. The bound stays
            // below every pending event, so no departure injected later
            // can slot under anything committed here.
            let mut pre = 0;
            if let Some(bound) = self.precommit_bound(frontier, min_event) {
                frontier = bound;
                pre = self.commit(frontier);
                if pre > 0 {
                    // Committing moved the staged heads (and added
                    // delivery events); refresh the floors so the epoch —
                    // and the quantum-exhausted check — see them.
                    // (`min_event` is re-gathered at the loop tail before
                    // its next read.)
                    (min_floor, _) = self.gather_floors();
                    if min_floor.is_none_or(|f| f > t_end) {
                        break;
                    }
                }
            }
            let ran = self.engine.run_epoch();
            let drained = self.drain_outboxes();
            frontier = frontier.max(self.engine.min_horizon());
            let committed = pre + self.commit(frontier);
            ran_quantum += ran;
            debug_assert!(
                ran + drained as u64 + committed as u64 > 0,
                "a quantum iteration with pending work must make progress"
            );
            if ran == 0 && drained == 0 && committed == 0 {
                break;
            }
            (min_floor, min_event) = self.gather_floors();
        }
        self.engine.set_cap(None);
        // Everything at or before the boundary is final; park every clock
        // on it so driver-visible time is partition-invariant.
        self.engine.align_all(t_end);
        self.clock = self.clock.max(t_end);
        self.sample_nodes_if_due();
        Some(ran_quantum)
    }

    /// Takes a node sample at the current quantum boundary if the
    /// recorder's cadence deadline has passed. The boundary sequence is
    /// partition-invariant and the quantum loop only exits once every
    /// event at or before the boundary is final, so the counters read
    /// here — pipeline totals per node, fault-recovery totals — are the
    /// same for every thread count.
    fn sample_nodes_if_due(&mut self) {
        let now = self.clock;
        // Taking the recorder out releases `self` for the read-only
        // counter folds below; `Option::take` on a box moves a pointer,
        // no allocation.
        let Some(mut rec) = self.trace.take() else {
            return;
        };
        if rec.node_due(now) {
            let (w_start, w_end) = rec.begin_node_round(now);
            // Scheduled fault transitions that fell inside this round's
            // window, at their true instants. The schedule is pure config
            // data, so the scan order (plan order) is deterministic.
            let in_window = |at: SimTime| {
                (at > w_start || (w_start == SimTime::ZERO && at == SimTime::ZERO)) && at <= w_end
            };
            if let Some(faults) = &self.config.fabric.faults {
                for lf in &faults.links {
                    if let Some(at) = lf.kill_at.filter(|&at| in_window(at)) {
                        rec.record_transition(at, FaultKind::LinkKill, lf.src.0, lf.dst.0);
                    }
                    if let Some(at) = lf.revive_at.filter(|&at| in_window(at)) {
                        rec.record_transition(at, FaultKind::LinkRevive, lf.src.0, lf.dst.0);
                    }
                }
                for nf in &faults.nodes {
                    if in_window(nf.crash_at) {
                        rec.record_transition(nf.crash_at, FaultKind::NodeCrash, nf.node.0, 0);
                    }
                    if in_window(nf.restart_at) {
                        rec.record_transition(nf.restart_at, FaultKind::NodeRestart, nf.node.0, 0);
                    }
                }
            }
            // Per-node pipeline counters, in global node order (shards
            // are contiguous slabs, so shard order == node order).
            for s in 0..self.plan.shards() {
                let range = self.plan.range(s);
                let rec = &mut rec;
                self.engine.peek_shard(s, |slot| {
                    for node in range {
                        let st = slot.world.pipeline_stats(NodeId(node as u16));
                        rec.record_node(
                            now,
                            node as u16,
                            NodeCounters {
                                rgp_requests: st.rgp_requests,
                                rrpp_served: st.rrpp_served,
                                rcp_completions: st.rcp_completions,
                                rgp_itt_stalls: st.rgp_itt_stalls,
                                api_wq_full: st.api_wq_full,
                                itt_in_flight: st.itt_in_flight,
                                rgp_timeouts: st.rgp_timeouts,
                                rgp_retransmits: st.rgp_retransmits,
                            },
                        );
                    }
                });
            }
            // Fault-recovery counter deltas (see FAULT_COUNTER_KINDS for
            // the array order).
            let fs = self.fabric.fault_stats();
            let pt = self.total_pipeline_stats();
            rec.record_fault_counters(
                now,
                [
                    fs.dropped,
                    fs.corrupted,
                    fs.rerouted,
                    fs.unreachable,
                    self.fold_shards(|c| c.total_crash_drops()),
                    pt.rgp_timeouts,
                    pt.rgp_retransmits,
                ],
            );
        }
        self.trace = Some(rec);
    }

    /// Refreshes `self.floors` — shard `s`'s earliest pending work, the
    /// min of its next event and its staged head — publishes the staged
    /// heads to the engine as source floors, and returns the global
    /// minimum floor plus the global minimum *event* time (the earliest
    /// instant any shard could inject a not-yet-staged departure).
    fn gather_floors(&mut self) -> (Option<SimTime>, Option<SimTime>) {
        let mut min_floor: Option<SimTime> = None;
        let mut min_event: Option<SimTime> = None;
        for s in 0..self.plan.shards() {
            let head = self.staging[s].head_time();
            let next = self.engine.with_shard(s, |slot| slot.next_event_time());
            let floor = match (head, next) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            };
            self.engine.set_source_floor(s, head);
            self.floors[s] = floor;
            min_floor = match (min_floor, floor) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            };
            min_event = match (min_event, next) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            };
        }
        (min_floor, min_event)
    }

    /// The largest frontier advance the current floors admit without an
    /// epoch: staged departures below both the would-be epoch frontier
    /// (`LookaheadMatrix::min_horizon`) and every pending event are
    /// final — no shard can inject a departure below its next event, so
    /// committing them cannot reorder the global `(t, src, seq)` send
    /// sequence. `None` when nothing is pending or the bound does not
    /// move past `frontier`.
    fn precommit_bound(&self, frontier: SimTime, min_event: Option<SimTime>) -> Option<SimTime> {
        let h = self.engine.matrix().min_horizon(&self.floors)?;
        let bound = match min_event {
            Some(e) => h.min(SimTime::from_ps(e.as_ps().saturating_sub(1))),
            None => h,
        };
        (bound > frontier).then_some(bound)
    }

    /// Drains every shard's mailbox outbox into its per-source staging
    /// queue, keeping each queue `(t, src, seq)`-sorted. Returns the
    /// number of departures staged.
    fn drain_outboxes(&mut self) -> usize {
        let mut drained = 0;
        let staging = &mut self.staging;
        self.engine.for_each_shard(|s, slot| {
            if let RoutePath::Mailbox(outbox) = &mut slot.world.route {
                drained += staging[s].append_chunk(outbox);
            }
        });
        drained
    }

    /// Applies every staged departure with `t <= frontier` to the global
    /// fabric — a k-way merge over the per-source queues in
    /// `(t, src, seq)` order, identical to the serial send order — and
    /// schedules the `Deliver` events into destination shards in the same
    /// order. Returns the number of departures committed.
    fn commit(&mut self, frontier: SimTime) -> usize {
        self.deliveries.clear();
        // `clear` keeps capacity, so the high-water reserve only does
        // work on the first commit after a burst grew past every prior
        // quantum — steady state never reallocates mid-merge.
        if self.deliveries.capacity() < self.delivery_hwm {
            self.deliveries.reserve(self.delivery_hwm);
        }
        self.delivery_counts.fill(0);
        // Progress is measured in departures *consumed*, not deliveries
        // scheduled: a fault-dropped packet leaves the staging queue
        // without producing a delivery, and reporting it as zero progress
        // would trip the quantum loop's liveness check.
        let mut consumed = 0usize;
        loop {
            // K-way walk: the queues are few (one per shard) and already
            // sorted, so the global minimum is a linear scan of the
            // cached head keys (the merge cursors persist across quanta —
            // a queue untouched since the last commit costs one load).
            let mut best: Option<(usize, (SimTime, NodeId, u64))> = None;
            for (q, queue) in self.staging.iter().enumerate() {
                if let Some(key) = queue.head_key {
                    if key.0 <= frontier && best.is_none_or(|(_, bk)| key < bk) {
                        best = Some((q, key));
                    }
                }
            }
            let Some((q, _)) = best else {
                break;
            };
            let (t, mut pkt) = self.staging[q].pop();
            consumed += 1;
            // Link sampling rides the merge: this loop applies sends in
            // the global `(t, src, seq)` order — identical to the serial
            // schedule — so closing the cadence window *before* the first
            // send at or past it captures the fabric state after exactly
            // the sends that precede the window end, no matter how
            // commits batch across partitions. (Quantum boundaries are
            // not usable here: a commit frontier may legally outrun the
            // boundary, making boundary-time fabric state
            // partition-dependent.)
            if let Some(rec) = self.trace.as_deref_mut() {
                if rec.fabric_due(t) {
                    let end = rec.close_fabric_window(t);
                    self.fabric
                        .visit_links(|slot, src, dst, bytes, packets, stalls| {
                            rec.record_link(end, slot, src, dst, bytes, packets, stalls);
                        });
                }
            }
            let salt = pkt.fault_salt(t.as_ps());
            let (arrival, fate) = self.fabric.send_faulty(
                t,
                pkt.src,
                pkt.dst,
                pkt.virtual_lane(),
                pkt.wire_bytes(),
                salt,
            );
            let arrival = arrival.time;
            match fate {
                // A dropped packet still advanced the link clocks (it
                // occupied the wire before vanishing) but never becomes a
                // delivery event.
                sonuma_fabric::PacketFate::Dropped => continue,
                sonuma_fabric::PacketFate::Corrupted => pkt.corrupt = true,
                sonuma_fabric::PacketFate::Delivered => {}
            }
            let dst_shard = self.plan.shard_of(pkt.dst.index());
            // The per-pair promise: the matrix said nothing from shard q
            // lands in dst_shard sooner than lookahead[q][dst] after its
            // inject time.
            let promise = t + self.engine.matrix().get(q, dst_shard);
            if arrival < promise {
                self.pair_bound_violations += 1;
                debug_assert!(
                    false,
                    "delivery beats the lookahead promise: arrival {arrival} < {promise}"
                );
            }
            self.deliveries.push((dst_shard, arrival, pkt));
            self.delivery_counts[dst_shard] += 1;
        }
        self.delivery_hwm = self.delivery_hwm.max(self.deliveries.len());
        // One lock per destination shard that actually received traffic
        // (the per-shard counts ran with the merge, so untouched shards
        // cost nothing), preserving merged order within each shard
        // (stable partition).
        for s in 0..self.plan.shards() {
            if self.delivery_counts[s] > 0 {
                let deliveries = &self.deliveries;
                let violations = &mut self.pair_bound_violations;
                self.engine.with_shard(s, |slot| {
                    for &(shard, at, pkt) in deliveries {
                        if shard == s {
                            if at <= slot.engine.now() {
                                *violations += 1;
                                debug_assert!(
                                    false,
                                    "delivery at {at} lands in shard {s}'s past ({})",
                                    slot.engine.now()
                                );
                            }
                            slot.engine.schedule_at(at, ClusterEvent::Deliver { pkt });
                        }
                    }
                });
            }
        }
        for queue in &mut self.staging {
            queue.compact();
        }
        consumed
    }
}
