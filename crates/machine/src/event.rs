//! The cluster's typed event set and its dispatch.
//!
//! Every discrete thing that can happen to the simulated machine is a
//! [`ClusterEvent`] variant — pipeline advances, fabric link deliveries,
//! core wake-ups, timers — dispatched by the `World` implementation below.
//! Events carry only ids and fixed-size payloads, so scheduling one never
//! allocates: the `sonuma_sim::EventEngine` stores them by value in its
//! arena. This is what lets 512-node scenario runs spend their time in
//! pipeline logic instead of `Box<dyn FnOnce>` churn.

use sonuma_memory::VAddr;
use sonuma_protocol::{NodeId, Packet, PacketKind, QpId, Tid};
use sonuma_sim::World;

use crate::cluster::Cluster;
use crate::pipeline::rgp::LineBurst;
use crate::pipeline::RgpPhase;
use crate::process::Wake;
use crate::ClusterEngine;

/// One scheduled occurrence in the cluster world.
#[derive(Debug, Clone)]
pub enum ClusterEvent {
    /// One RGP service step at `node`: poll the head active QP, unroll a
    /// fresh WQ entry, chain the next step.
    RgpService {
        /// Node whose RGP advances.
        node: u16,
    },
    /// The RGP at `node` resumes polling after an ITT-full backoff.
    RgpResume {
        /// Node whose RGP leaves the `Stalled` phase.
        node: u16,
    },
    /// The RGP at `node` injects a burst of unrolled line transactions
    /// into the fabric, each at its own initiation-interval-spaced
    /// timestamp (see [`LineBurst`]).
    InjectBurst {
        /// Originating node.
        node: u16,
        /// The run of unrolled cache-line transactions.
        burst: LineBurst,
    },
    /// `pkt` is fully delivered at its destination NI (fabric arrival or
    /// local loopback) and enters the RRPP (requests) or RCP (replies).
    Deliver {
        /// The delivered packet; `pkt.dst` names the receiving node.
        pkt: Packet,
    },
    /// Deliver pending CQ completions to the owner core of `(node, qp)`.
    CqWake {
        /// Node the queue pair lives on.
        node: u16,
        /// Queue pair whose CQ is drained.
        qp: QpId,
    },
    /// Wake `core` on `node` for `reason`.
    CoreWake {
        /// Node the core belongs to.
        node: u16,
        /// Core index within the node.
        core: u16,
        /// Why the core wakes.
        reason: WakeReason,
    },
    /// The retransmission deadline for `tid` at `node` expired. A no-op
    /// when the request already completed (the ITT slot was recycled and
    /// `gen` no longer matches); otherwise the RGP re-injects the missing
    /// lines or aborts the operation once its retry budget is spent.
    RgpTimeout {
        /// Source node that owns the in-flight request.
        node: u16,
        /// Transfer id of the request being watched.
        tid: Tid,
        /// Incarnation the deadline was armed for (ABA guard).
        gen: u8,
    },
    /// `node` crashes: its RMC loses ITT, CT cache, TLB, and retry state,
    /// and in-flight operations abort. Scheduled once at construction per
    /// entry in the fault plan.
    NodeCrash {
        /// Node that fails.
        node: u16,
    },
    /// `node` comes back after a crash: the RGP restarts polling if work
    /// survived in the (host-memory) work queues.
    NodeRestart {
        /// Node that recovers.
        node: u16,
    },
    /// Anchors the event clock at the scheduled time so the simulated
    /// duration includes work performed in a final wake-up; no state
    /// change.
    Anchor,
}

/// Why a [`ClusterEvent::CoreWake`] was scheduled.
///
/// This is the by-value half of [`Wake`]: CQ-completion wake-ups carry a
/// drained `Vec<Completion>` and are delivered through
/// [`ClusterEvent::CqWake`] instead, which drains the ring at delivery
/// time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WakeReason {
    /// First wake-up after `spawn`.
    Start,
    /// A `Step::Sleep` timer expired.
    Timer,
    /// A remote write touched watched memory.
    MemoryTouched {
        /// Base of the watched range that was written.
        addr: VAddr,
    },
    /// A remote interrupt arrived for this core.
    Interrupt {
        /// Originating node.
        from: NodeId,
        /// 8-byte payload the sender attached.
        payload: u64,
    },
}

impl From<WakeReason> for Wake {
    fn from(reason: WakeReason) -> Wake {
        match reason {
            WakeReason::Start => Wake::Start,
            WakeReason::Timer => Wake::Timer,
            WakeReason::MemoryTouched { addr } => Wake::MemoryTouched { addr },
            WakeReason::Interrupt { from, payload } => Wake::Interrupt { from, payload },
        }
    }
}

/// One FNV-1a step folding `x` into the delivery-order hash.
#[inline]
fn fnv_mix(h: u64, x: u64) -> u64 {
    (h ^ x).wrapping_mul(0x0000_0100_0000_01b3)
}

impl World for Cluster {
    type Event = ClusterEvent;

    fn handle(&mut self, engine: &mut ClusterEngine, event: ClusterEvent) {
        match event {
            ClusterEvent::RgpService { node } => self.rgp_service(engine, node as usize),
            ClusterEvent::RgpResume { node } => {
                self.node_mut(node as usize).rmc.rgp.phase = RgpPhase::Polling;
                self.rgp_service(engine, node as usize);
            }
            ClusterEvent::InjectBurst { node, burst } => {
                self.inject_burst(engine, node as usize, burst);
            }
            ClusterEvent::Deliver { pkt } => {
                let dst = pkt.dst.index();
                // A crashed node's NI is dark: packets that arrive inside
                // the crash window vanish before they touch the delivery
                // hash or any pipeline. The window is a pure function of
                // arrival time, so every shard count agrees on the drop.
                if self.node_crashed(dst, engine.now()) {
                    self.node_mut(dst).crash_drops += 1;
                    return;
                }
                // Fold the delivery into the receiver's order hash: equal
                // hashes mean packet-for-packet identical delivery order,
                // which is what the serial-equivalence tests assert across
                // shard counts.
                let node = self.node_mut(dst);
                let mut h = node.deliver_hash;
                h = fnv_mix(h, engine.now().as_ps());
                h = fnv_mix(h, pkt.src.0 as u64);
                h = fnv_mix(h, pkt.tid.0 as u64);
                h = fnv_mix(h, pkt.line_seq as u64);
                node.deliver_hash = h;
                // The receiving RMC's integrity check: corrupted packets
                // (requests and replies alike) are discarded after the
                // order-hash fold, leaving recovery to the source's
                // retransmission timer.
                if pkt.corrupt {
                    node.rmc.rrpp.corrupt_drops += 1;
                } else if pkt.kind == PacketKind::Request {
                    self.rrpp_handle(engine, dst, pkt);
                } else {
                    self.rcp_handle(engine, dst, pkt);
                }
            }
            ClusterEvent::CqWake { node, qp } => self.deliver_cq_wake(engine, node as usize, qp),
            ClusterEvent::CoreWake { node, core, reason } => {
                self.wake_core(engine, node as usize, core as usize, reason.into());
            }
            ClusterEvent::RgpTimeout { node, tid, gen } => {
                self.rgp_timeout(engine, node as usize, tid, gen);
            }
            ClusterEvent::NodeCrash { node } => self.node_crash(engine, node as usize),
            ClusterEvent::NodeRestart { node } => self.node_restart(engine, node as usize),
            ClusterEvent::Anchor => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wake_reasons_convert() {
        assert_eq!(Wake::from(WakeReason::Start), Wake::Start);
        assert_eq!(Wake::from(WakeReason::Timer), Wake::Timer);
        assert_eq!(
            Wake::from(WakeReason::MemoryTouched {
                addr: VAddr::new(64)
            }),
            Wake::MemoryTouched {
                addr: VAddr::new(64)
            }
        );
        assert_eq!(
            Wake::from(WakeReason::Interrupt {
                from: NodeId(3),
                payload: 9
            }),
            Wake::Interrupt {
                from: NodeId(3),
                payload: 9
            }
        );
    }
}
