//! The Request Generation Pipeline (RGP, §4.2) with QoS-aware QP
//! scheduling.
//!
//! The RGP is the source-side front half of the RMC: it polls registered
//! work queues through the coherence hierarchy, allocates a tid in the ITT
//! for each fresh WQ entry, unrolls multi-line requests into cache-line
//! transactions at the pipeline's initiation interval, and injects request
//! packets into the fabric.
//!
//! Which WQ gets polled next is a policy decision: a node multiplexes
//! many tenant-owned queue pairs through one RGP, and under load the
//! polling order *is* the QoS policy. The [`QpScheduler`] trait makes it
//! pluggable; [`RrScheduler`] (the classic flat rotation),
//! [`WdrrScheduler`] (weighted deficit round-robin over line quanta) and
//! [`StrictScheduler`] (SLO-class priority tiers) implement it.
//!
//! The service loop is an explicit state machine ([`RgpPhase`]): `Idle`
//! when no QP has pending work, `Polling` while a service event is
//! scheduled, and `Stalled` while it backs off from a full ITT — the
//! pipeline's only backpressure point, counted in
//! [`RgpState::itt_full_stalls`].

use std::collections::VecDeque;

use sonuma_memory::{AccessKind, VAddr, CACHE_LINE_BYTES};
use sonuma_protocol::{CtxId, NodeId, Packet, PacketKind, QpId, RemoteOp, Status, Tid, WqEntry};
use sonuma_sim::SimTime;

use super::PipelineStats;
use crate::cluster::Cluster;
use crate::event::ClusterEvent;
use crate::tenancy::SloClass;
use crate::ClusterEngine;

/// Where the RGP's service loop currently is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RgpPhase {
    /// No active QPs; the next WQ post restarts the loop.
    #[default]
    Idle,
    /// A service event is scheduled (polling or unrolling).
    Polling,
    /// Backing off from a full ITT; retries after a poll interval.
    Stalled,
}

/// Scheduling attributes the RGP resolves for a QP when it activates
/// (from the owning tenant's registration; untagged QPs get the default).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QpClass {
    /// WDRR weight (line quanta per scheduling round).
    pub weight: u32,
    /// Strict-priority level (0 served first).
    pub priority: u8,
}

impl Default for QpClass {
    fn default() -> Self {
        QpClass {
            weight: 1,
            priority: SloClass::Silver.priority(),
        }
    }
}

/// Arbitration policy over a node's active queue pairs.
///
/// The RGP drives the scheduler with a strict call protocol:
///
/// 1. [`QpScheduler::activate`] whenever a QP may have fresh WQ entries
///    (idempotent while the QP is already active);
/// 2. [`QpScheduler::select`] to pick the QP to poll next (stable until
///    the outcome is reported — a stalled RGP re-selects the same QP);
/// 3. exactly one of [`QpScheduler::consumed`] (a WQ entry was serviced,
///    with its unrolled line count as the cost) or
///    [`QpScheduler::emptied`] (the poll found nothing; the QP
///    deactivates until its next `activate`).
pub trait QpScheduler: std::fmt::Debug + Send {
    /// Marks `qp` active with scheduling attributes `class`. Idempotent
    /// while the QP is already active (the class of an active QP is not
    /// re-resolved until it deactivates).
    fn activate(&mut self, qp: QpId, class: QpClass);

    /// The QP the RGP should poll next, or `None` when no QP is active.
    /// Must return the same QP until `consumed`/`emptied` is reported.
    fn select(&mut self) -> Option<QpId>;

    /// Reports that one WQ entry of `qp` was serviced, unrolling into
    /// `lines` cache-line transactions (the scheduling cost unit).
    fn consumed(&mut self, qp: QpId, lines: u32);

    /// Reports that polling `qp` found no fresh entry; deactivates it.
    fn emptied(&mut self, qp: QpId);

    /// Whether any QP is active.
    fn has_work(&self) -> bool;

    /// Times a pending QP was passed over in favor of another by policy
    /// (the starvation-pressure signal; 0 for policies that never skip).
    fn skips(&self) -> u64;

    /// Policy label for reports.
    fn label(&self) -> &'static str;
}

/// Which [`QpScheduler`] a node's RGP runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedPolicy {
    /// Flat round-robin rotation (the paper's baseline behavior).
    #[default]
    RoundRobin,
    /// Weighted deficit round-robin over line quanta.
    Wdrr,
    /// Strict SLO-class priority (gold before silver before bronze).
    StrictPriority,
}

impl SchedPolicy {
    /// Builds a fresh scheduler implementing this policy.
    pub fn build(self) -> Box<dyn QpScheduler> {
        match self {
            SchedPolicy::RoundRobin => Box::new(RrScheduler::default()),
            SchedPolicy::Wdrr => Box::new(WdrrScheduler::default()),
            SchedPolicy::StrictPriority => Box::new(StrictScheduler::default()),
        }
    }

    /// Config/report label.
    pub fn as_str(self) -> &'static str {
        match self {
            SchedPolicy::RoundRobin => "rr",
            SchedPolicy::Wdrr => "wdrr",
            SchedPolicy::StrictPriority => "strict",
        }
    }

    /// Parses a config label.
    ///
    /// # Errors
    ///
    /// Returns the unknown label back.
    pub fn parse(s: &str) -> Result<SchedPolicy, String> {
        match s {
            "rr" => Ok(SchedPolicy::RoundRobin),
            "wdrr" => Ok(SchedPolicy::Wdrr),
            "strict" => Ok(SchedPolicy::StrictPriority),
            other => Err(format!("unknown scheduler {other:?} (rr|wdrr|strict)")),
        }
    }
}

/// Grows a per-QP side table to cover `qp`.
fn ensure_slot<T: Clone + Default>(v: &mut Vec<T>, qp: QpId) {
    if v.len() <= qp.index() {
        v.resize(qp.index() + 1, T::default());
    }
}

/// Flat round-robin: every active QP is serviced one WQ entry per turn.
#[derive(Debug, Default)]
pub struct RrScheduler {
    queue: VecDeque<QpId>,
    active: Vec<bool>,
}

impl QpScheduler for RrScheduler {
    fn activate(&mut self, qp: QpId, _class: QpClass) {
        ensure_slot(&mut self.active, qp);
        if !self.active[qp.index()] {
            self.active[qp.index()] = true;
            self.queue.push_back(qp);
        }
    }

    fn select(&mut self) -> Option<QpId> {
        self.queue.front().copied()
    }

    fn consumed(&mut self, qp: QpId, _lines: u32) {
        debug_assert_eq!(self.queue.front(), Some(&qp));
        if let Some(front) = self.queue.pop_front() {
            self.queue.push_back(front);
        }
    }

    fn emptied(&mut self, qp: QpId) {
        debug_assert_eq!(self.queue.front(), Some(&qp));
        self.queue.pop_front();
        self.active[qp.index()] = false;
    }

    fn has_work(&self) -> bool {
        !self.queue.is_empty()
    }

    fn skips(&self) -> u64 {
        0
    }

    fn label(&self) -> &'static str {
        "rr"
    }
}

/// Line quanta one unit of WDRR weight buys per scheduling round. A
/// weight-`w` QP may service up to `w * QUANTUM_LINES` cache-line
/// transactions before yielding the pipeline.
pub const QUANTUM_LINES: i64 = 8;

/// Weighted deficit round-robin over unrolled cache-line counts.
///
/// Each QP accrues `weight * QUANTUM_LINES` of deficit when it reaches
/// the head of the rotation and spends it per serviced line. Because the
/// cost of a WQ entry is only known *after* polling it, the scheduler
/// serves first and charges after, letting the deficit go negative; the
/// debt carries into the next round, so long-run service remains
/// proportional to weight and every nonzero-weight QP is served each
/// rotation (no starvation).
#[derive(Debug, Default)]
pub struct WdrrScheduler {
    queue: VecDeque<QpId>,
    active: Vec<bool>,
    weight: Vec<u32>,
    deficit: Vec<i64>,
    head_charged: bool,
}

impl QpScheduler for WdrrScheduler {
    fn activate(&mut self, qp: QpId, class: QpClass) {
        ensure_slot(&mut self.active, qp);
        ensure_slot(&mut self.weight, qp);
        ensure_slot(&mut self.deficit, qp);
        if !self.active[qp.index()] {
            self.active[qp.index()] = true;
            self.weight[qp.index()] = class.weight.max(1);
            self.queue.push_back(qp);
        }
    }

    fn select(&mut self) -> Option<QpId> {
        self.queue.front()?;
        // Rotate past QPs still repaying debt from oversized requests;
        // each pass adds a quantum, so every nonzero-weight QP surfaces
        // within a bounded number of rotations (no starvation).
        loop {
            let qp = *self.queue.front().expect("checked nonempty");
            if !self.head_charged {
                self.deficit[qp.index()] += self.weight[qp.index()] as i64 * QUANTUM_LINES;
                self.head_charged = true;
            }
            if self.deficit[qp.index()] > 0 {
                return Some(qp);
            }
            let front = self.queue.pop_front().expect("checked nonempty");
            self.queue.push_back(front);
            self.head_charged = false;
        }
    }

    fn consumed(&mut self, qp: QpId, lines: u32) {
        debug_assert_eq!(self.queue.front(), Some(&qp));
        self.deficit[qp.index()] -= lines as i64;
        if self.deficit[qp.index()] <= 0 {
            if let Some(front) = self.queue.pop_front() {
                self.queue.push_back(front);
            }
            self.head_charged = false;
        }
    }

    fn emptied(&mut self, qp: QpId) {
        debug_assert_eq!(self.queue.front(), Some(&qp));
        self.queue.pop_front();
        self.active[qp.index()] = false;
        // An emptied queue forfeits its unspent deficit (classic DRR),
        // but keeps its debt: a huge request cannot be laundered by
        // draining and re-posting.
        self.deficit[qp.index()] = self.deficit[qp.index()].min(0);
        self.head_charged = false;
    }

    fn has_work(&self) -> bool {
        !self.queue.is_empty()
    }

    fn skips(&self) -> u64 {
        0
    }

    fn label(&self) -> &'static str {
        "wdrr"
    }
}

/// Strict SLO-class priority: gold QPs are always served before silver,
/// silver before bronze; within a level, round-robin. Lower classes can
/// starve under sustained high-priority load — [`StrictScheduler::skips`]
/// counts every pass-over so that pressure is observable.
#[derive(Debug, Default)]
pub struct StrictScheduler {
    levels: [VecDeque<QpId>; SloClass::LEVELS],
    active: Vec<bool>,
    level_of: Vec<u8>,
    skips: u64,
}

impl QpScheduler for StrictScheduler {
    fn activate(&mut self, qp: QpId, class: QpClass) {
        ensure_slot(&mut self.active, qp);
        ensure_slot(&mut self.level_of, qp);
        if !self.active[qp.index()] {
            self.active[qp.index()] = true;
            let level = (class.priority as usize).min(SloClass::LEVELS - 1);
            self.level_of[qp.index()] = level as u8;
            self.levels[level].push_back(qp);
        }
    }

    fn select(&mut self) -> Option<QpId> {
        let level = self.levels.iter().position(|q| !q.is_empty())?;
        self.levels[level].front().copied()
    }

    fn consumed(&mut self, qp: QpId, _lines: u32) {
        let level = self.level_of[qp.index()] as usize;
        debug_assert_eq!(self.levels[level].front(), Some(&qp));
        // One WQ entry was genuinely serviced past every pending
        // lower-priority QP: count the pass-overs here (not in select,
        // which ITT-stall retries and empty polls re-invoke without
        // servicing anything — that would inflate the metric with
        // timing-dependent recounts).
        self.skips += self.levels[level + 1..]
            .iter()
            .map(|q| q.len() as u64)
            .sum::<u64>();
        if let Some(front) = self.levels[level].pop_front() {
            self.levels[level].push_back(front);
        }
    }

    fn emptied(&mut self, qp: QpId) {
        let level = self.level_of[qp.index()] as usize;
        debug_assert_eq!(self.levels[level].front(), Some(&qp));
        self.levels[level].pop_front();
        self.active[qp.index()] = false;
    }

    fn has_work(&self) -> bool {
        self.levels.iter().any(|q| !q.is_empty())
    }

    fn skips(&self) -> u64 {
        self.skips
    }

    fn label(&self) -> &'static str {
        "strict"
    }
}

/// Per-node RGP state machine and counters.
#[derive(Debug)]
pub struct RgpState {
    /// Current service-loop phase.
    pub phase: RgpPhase,
    /// The QoS policy arbitrating between active QPs.
    pub scheduler: Box<dyn QpScheduler>,
    /// WQ requests launched (tid allocated, unroll started).
    pub requests: u64,
    /// Line packets injected into the fabric.
    pub lines: u64,
    /// WQ ring reads performed while polling.
    pub wq_polls: u64,
    /// WQ polls that found no fresh entry.
    pub empty_polls: u64,
    /// Service retries forced by a full ITT (backpressure).
    pub itt_full_stalls: u64,
    /// Retransmission deadlines that fired with replies still missing
    /// (fault runs only).
    pub timeouts: u64,
    /// Line packets re-injected by the retransmission path.
    pub retransmits: u64,
}

impl Default for RgpState {
    fn default() -> Self {
        RgpState::with_policy(SchedPolicy::RoundRobin)
    }
}

impl RgpState {
    /// Fresh state running `policy`.
    pub fn with_policy(policy: SchedPolicy) -> Self {
        RgpState {
            phase: RgpPhase::default(),
            scheduler: policy.build(),
            requests: 0,
            lines: 0,
            wq_polls: 0,
            empty_polls: 0,
            itt_full_stalls: 0,
            timeouts: 0,
            retransmits: 0,
        }
    }

    /// Whether a service event is currently scheduled.
    pub fn busy(&self) -> bool {
        self.phase != RgpPhase::Idle
    }

    /// This pipeline's slice of a [`PipelineStats`] snapshot.
    pub fn stats(&self) -> PipelineStats {
        PipelineStats {
            rgp_requests: self.requests,
            rgp_lines: self.lines,
            rgp_wq_polls: self.wq_polls,
            rgp_empty_polls: self.empty_polls,
            rgp_itt_stalls: self.itt_full_stalls,
            rgp_sched_skips: self.scheduler.skips(),
            rgp_timeouts: self.timeouts,
            rgp_retransmits: self.retransmits,
            ..PipelineStats::default()
        }
    }
}

/// A run of unrolled cache-line transactions queued for injection by the
/// RGP (carried by value inside [`ClusterEvent::InjectBurst`]; the fields
/// are pipeline-internal). Line `k` of the burst targets
/// `offset + k·64` with sequence `first_seq + k` and is injected at the
/// event's time plus `k` initiation intervals — identical per-line timing
/// to one event per line, at a fraction of the engine churn.
#[derive(Debug, Clone, Copy)]
pub struct LineBurst {
    pub(crate) dst: NodeId,
    pub(crate) ctx: CtxId,
    pub(crate) tid: Tid,
    pub(crate) op: RemoteOp,
    /// Segment offset of the burst's first line.
    pub(crate) offset: u64,
    /// `line_seq` of the burst's first line.
    pub(crate) first_seq: u32,
    /// Lines in this burst (≥ 1).
    pub(crate) count: u32,
    /// Local VA the first line's payload is read from (writes only;
    /// subsequent lines stride by one cache line).
    pub(crate) payload_src: Option<VAddr>,
    /// Operand words (atomics/interrupts).
    pub(crate) operands: (u64, u64),
    /// Retransmission generation of the tid incarnation this burst
    /// belongs to (0 on the initial unroll; see `crate::fault`). A burst
    /// whose generation no longer matches the tid's is stale — the
    /// operation was aborted — and injects nothing.
    pub(crate) gen: u8,
}

impl Cluster {
    /// Notifies the RGP that `qp` may have fresh WQ entries (the coherence
    /// hint of a core's WQ store). Called by the access library after every
    /// post.
    pub(crate) fn notify_rgp(
        &mut self,
        engine: &mut ClusterEngine,
        now: SimTime,
        n: usize,
        qp: QpId,
    ) {
        let node = self.node_mut(n);
        let class = node
            .tenants
            .qp_tenant(qp)
            .map(|spec| QpClass {
                weight: spec.weight,
                priority: spec.slo.priority(),
            })
            .unwrap_or_default();
        node.rmc.rgp.scheduler.activate(qp, class);
        if !node.rmc.rgp.busy() {
            node.rmc.rgp.phase = RgpPhase::Polling;
            // Detection latency: on average half a poll interval elapses
            // before the polling loop re-reads this WQ.
            let detect = node.rmc.timing.poll_interval / 2;
            engine.schedule_at(now + detect, ClusterEvent::RgpService { node: n as u16 });
        }
    }

    /// One RGP service step: poll the QP the scheduler picks, consume at
    /// most one WQ entry, unroll it, and chain.
    pub(crate) fn rgp_service(&mut self, engine: &mut ClusterEngine, n: usize) {
        let now = engine.now();
        let burst = self.config().rgp_burst_lines.max(1);
        let fault_timeout = self.config().fabric.faults.as_ref().map(|p| p.timeout);
        if self.node_crashed(n, now) {
            // A crashed RMC serves nothing; the restart event re-kicks the
            // service loop (the scheduler keeps its pending QPs).
            self.node_mut(n).rmc.rgp.phase = RgpPhase::Idle;
            return;
        }
        let node = self.node_mut(n);
        let timing = node.rmc.timing;

        let Some(qp) = node.rmc.rgp.scheduler.select() else {
            node.rmc.rgp.phase = RgpPhase::Idle;
            return;
        };

        // Fetch the WQ entry at the RMC's consumer cursor through the
        // coherent hierarchy (this is where the core-to-RMC cache-to-cache
        // transfer of a fresh entry is paid).
        let (wq_index, expected_phase) = node.rmc.qps[qp.index()].wq_cursor();
        let wq_va = node.rmc.qps[qp.index()].wq_entry_addr(wq_index);
        let (pa, t_xl) = node.rmc_translate(now, wq_va);
        let pa = pa.expect("WQ rings are pinned by the driver");
        let t_read = node.rmc_line_access(t_xl, pa, AccessKind::Read);
        let mut line = [0u8; 64];
        node.read_virt(wq_va, &mut line)
            .expect("WQ rings are mapped");
        node.rmc.rgp.wq_polls += 1;

        let parsed = WqEntry::decode(&line).filter(|(_, phase)| *phase == expected_phase);
        let Some((entry, _)) = parsed else {
            // No new entry: deactivate this QP until its next post.
            node.rmc.rgp.empty_polls += 1;
            node.rmc.rgp.scheduler.emptied(qp);
            if !node.rmc.rgp.scheduler.has_work() {
                node.rmc.rgp.phase = RgpPhase::Idle;
            } else {
                engine.schedule_at(t_read, ClusterEvent::RgpService { node: n as u16 });
            }
            return;
        };

        if node.rmc.itt.is_full() {
            // All tids in flight: back off and retry after a poll interval.
            // The scheduler is untouched, so the resume re-selects this QP.
            node.rmc.rgp.phase = RgpPhase::Stalled;
            node.rmc.rgp.itt_full_stalls += 1;
            engine.schedule_at(
                now + timing.poll_interval,
                ClusterEvent::RgpResume { node: n as u16 },
            );
            return;
        }

        let lines = entry.lines();
        let tid = node
            .rmc
            .itt
            .alloc(qp, wq_index, lines, entry.buf_vaddr)
            .expect("checked not full");
        node.rmc.qps[qp.index()].advance_wq();
        node.rmc.rgp.requests += 1;
        node.tenants.note_request(qp);

        // Unroll into line-sized transactions (§4.2): one injection every
        // initiation interval, scheduled `rgp_burst_lines` to an event so
        // a large transfer costs O(lines / burst) engine events while
        // every line keeps its own injection timestamp.
        let t0 = t_read + timing.rgp_per_request;
        // Under a fault plan the source arms a retransmission deadline per
        // request: the retry table records everything needed to re-inject
        // missing lines, and the timer fires once every line has had time
        // to complete a round trip.
        let mut gen = 0u8;
        if let Some(timeout) = fault_timeout {
            gen = node
                .retry
                .insert(tid, crate::fault::RetryState::new(&entry, lines));
            let deadline = t0 + timing.unroll_interval * (lines - 1) as u64 + timeout;
            engine.schedule_at(
                deadline,
                ClusterEvent::RgpTimeout {
                    node: n as u16,
                    tid,
                    gen,
                },
            );
        }
        let mut k = 0u32;
        while k < lines {
            let count = burst.min(lines - k);
            engine.schedule_at(
                t0 + timing.unroll_interval * k as u64,
                ClusterEvent::InjectBurst {
                    node: n as u16,
                    burst: LineBurst {
                        dst: entry.dst,
                        ctx: entry.ctx,
                        tid,
                        op: entry.op,
                        offset: entry.offset + k as u64 * CACHE_LINE_BYTES,
                        first_seq: k,
                        count,
                        payload_src: (entry.op == RemoteOp::Write)
                            .then(|| VAddr::new(entry.buf_vaddr + k as u64 * CACHE_LINE_BYTES)),
                        operands: (entry.operand1, entry.operand2),
                        gen,
                    },
                },
            );
            k += count;
        }

        // Charge the service to the scheduler and chain the next step once
        // the unroll finishes occupying the pipeline.
        node.rmc.rgp.scheduler.consumed(qp, lines);
        let t_next = (t0 + timing.unroll_interval * lines as u64).max(now + timing.stage_local);
        engine.schedule_at(t_next, ClusterEvent::RgpService { node: n as u16 });
    }

    /// Injects a burst of unrolled line transactions into the fabric
    /// (reading the payload for writes). Line `k` of the burst is injected
    /// at the event time plus `k` initiation intervals — exactly the
    /// timestamps the lines would get as individual events.
    pub(crate) fn inject_burst(&mut self, engine: &mut ClusterEngine, n: usize, spec: LineBurst) {
        let now = engine.now();
        if self.config().fabric.faults.is_some() {
            // A burst outlives its operation when the node crashes or the
            // retry budget runs out mid-unroll: the tid was aborted (and
            // its generation bumped), so the burst injects nothing.
            if self.node_crashed(n, now) || !self.node(n).retry.matches(spec.tid, spec.gen) {
                return;
            }
        }
        let unroll = self.node(n).rmc.timing.unroll_interval;
        // One engine event stands in for `count` logical injections; keep
        // the logical-event count batching-invariant for throughput
        // reporting.
        self.batched_logical_events += spec.count as u64 - 1;
        for k in 0..spec.count {
            self.inject_line_at(engine, n, &spec, k, now + unroll * k as u64);
        }
    }

    /// Injects line `k` of `spec` starting its pipeline work at `at`.
    fn inject_line_at(
        &mut self,
        engine: &mut ClusterEngine,
        n: usize,
        spec: &LineBurst,
        k: u32,
        at: SimTime,
    ) {
        let node = self.node_mut(n);
        let timing = node.rmc.timing;
        let src = NodeId(n as u16);
        let line_bytes = k as u64 * CACHE_LINE_BYTES;

        let mut t = at;
        let mut payload: Option<[u8; 64]> = None;
        match spec.op {
            RemoteOp::Write => {
                let base = spec.payload_src.expect("writes carry a payload source");
                let va = VAddr::new(base.raw() + line_bytes);
                let (pa, t_xl) = node.rmc_translate(t, va);
                let pa = pa.expect("local buffer validated at post time");
                t = node.rmc_line_access(t_xl, pa, AccessKind::Read);
                let mut buf = [0u8; 64];
                node.read_virt(va, &mut buf).expect("local buffer mapped");
                payload = Some(buf);
            }
            RemoteOp::FetchAdd | RemoteOp::CompSwap | RemoteOp::Interrupt => {
                let mut buf = [0u8; 64];
                buf[0..8].copy_from_slice(&spec.operands.0.to_le_bytes());
                buf[8..16].copy_from_slice(&spec.operands.1.to_le_bytes());
                payload = Some(buf);
                t += timing.stage_local;
            }
            RemoteOp::Read => {
                t += timing.stage_local;
            }
        }

        let pkt = Packet {
            kind: PacketKind::Request,
            dst: spec.dst,
            src,
            ctx: spec.ctx,
            tid: spec.tid,
            op: spec.op,
            status: Status::Ok,
            offset: spec.offset + line_bytes,
            line_seq: spec.first_seq + k,
            payload,
            gen: spec.gen,
            corrupt: false,
        };
        node.rmc.rgp.lines += 1;
        self.route_packet(engine, t, pkt);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn qp(i: u16) -> QpId {
        QpId(i)
    }

    fn class(weight: u32, priority: u8) -> QpClass {
        QpClass { weight, priority }
    }

    #[test]
    fn rr_rotates_and_deactivates() {
        let mut s = RrScheduler::default();
        s.activate(qp(0), QpClass::default());
        s.activate(qp(1), QpClass::default());
        s.activate(qp(0), QpClass::default()); // idempotent
        assert_eq!(s.select(), Some(qp(0)));
        s.consumed(qp(0), 1);
        assert_eq!(s.select(), Some(qp(1)));
        s.emptied(qp(1));
        assert_eq!(s.select(), Some(qp(0)));
        s.emptied(qp(0));
        assert!(!s.has_work());
        assert_eq!(s.select(), None);
    }

    #[test]
    fn wdrr_service_is_weight_proportional() {
        let mut s = WdrrScheduler::default();
        s.activate(qp(0), class(3, 1));
        s.activate(qp(1), class(1, 1));
        let mut served = [0u64; 2];
        // Both queues stay backlogged; single-line requests.
        for _ in 0..4000 {
            let q = s.select().unwrap();
            served[q.index()] += 1;
            s.consumed(q, 1);
        }
        let ratio = served[0] as f64 / served[1] as f64;
        assert!(
            (2.5..3.5).contains(&ratio),
            "weight-3 vs weight-1 served {served:?} (ratio {ratio})"
        );
    }

    #[test]
    fn wdrr_big_requests_carry_debt() {
        let mut s = WdrrScheduler::default();
        s.activate(qp(0), class(1, 1));
        s.activate(qp(1), class(1, 1));
        let mut served_lines = [0i64; 2];
        for _ in 0..2000 {
            let q = s.select().unwrap();
            // QP 0 posts 128-line (8 KiB) requests, QP 1 single lines.
            let lines = if q.index() == 0 { 128 } else { 1 };
            served_lines[q.index()] += lines as i64;
            s.consumed(q, lines);
        }
        let ratio = served_lines[0] as f64 / served_lines[1] as f64;
        assert!(
            (0.8..1.25).contains(&ratio),
            "equal weights must get equal line service: {served_lines:?}"
        );
    }

    #[test]
    fn strict_serves_gold_first_and_counts_skips() {
        let mut s = StrictScheduler::default();
        s.activate(qp(0), class(1, SloClass::Bronze.priority()));
        s.activate(qp(1), class(1, SloClass::Gold.priority()));
        assert_eq!(s.select(), Some(qp(1)), "gold preempts bronze");
        assert_eq!(s.skips(), 0, "selection alone is not a pass-over");
        s.consumed(qp(1), 1);
        assert_eq!(s.skips(), 1, "bronze was serviced past");
        assert_eq!(s.select(), Some(qp(1)), "gold keeps the pipeline");
        assert_eq!(s.skips(), 1, "re-selection does not re-count");
        s.emptied(qp(1));
        assert_eq!(s.select(), Some(qp(0)), "bronze runs once gold drains");
        s.consumed(qp(0), 1);
        assert!(s.has_work());
    }

    #[test]
    fn policy_labels_roundtrip() {
        for p in [
            SchedPolicy::RoundRobin,
            SchedPolicy::Wdrr,
            SchedPolicy::StrictPriority,
        ] {
            assert_eq!(SchedPolicy::parse(p.as_str()).unwrap(), p);
            assert_eq!(p.build().label(), p.as_str());
        }
        assert!(SchedPolicy::parse("fifo").is_err());
    }

    #[test]
    fn schedulers_report_idle_when_drained() {
        for policy in [
            SchedPolicy::RoundRobin,
            SchedPolicy::Wdrr,
            SchedPolicy::StrictPriority,
        ] {
            let mut s = policy.build();
            assert_eq!(s.select(), None);
            s.activate(qp(2), QpClass::default());
            assert_eq!(s.select(), Some(qp(2)));
            s.emptied(qp(2));
            assert!(!s.has_work(), "{policy:?} must drain");
        }
    }
}
