//! The Request Generation Pipeline (RGP, §4.2).
//!
//! The RGP is the source-side front half of the RMC: it polls registered
//! work queues through the coherence hierarchy, allocates a tid in the ITT
//! for each fresh WQ entry, unrolls multi-line requests into cache-line
//! transactions at the pipeline's initiation interval, and injects request
//! packets into the fabric.
//!
//! Its service loop is an explicit state machine ([`RgpPhase`]): `Idle`
//! when no QP has pending work, `Polling` while a service event is
//! scheduled, and `Stalled` while it backs off from a full ITT — the
//! pipeline's only backpressure point, counted in
//! [`RgpState::itt_full_stalls`].

use std::collections::VecDeque;

use sonuma_memory::{AccessKind, VAddr, CACHE_LINE_BYTES};
use sonuma_protocol::{CtxId, NodeId, Packet, PacketKind, QpId, RemoteOp, Status, Tid, WqEntry};
use sonuma_sim::SimTime;

use super::PipelineStats;
use crate::cluster::Cluster;
use crate::event::ClusterEvent;
use crate::ClusterEngine;

/// Where the RGP's service loop currently is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RgpPhase {
    /// No active QPs; the next WQ post restarts the loop.
    #[default]
    Idle,
    /// A service event is scheduled (polling or unrolling).
    Polling,
    /// Backing off from a full ITT; retries after a poll interval.
    Stalled,
}

/// Per-node RGP state machine and counters.
#[derive(Debug, Default)]
pub struct RgpState {
    /// Current service-loop phase.
    pub phase: RgpPhase,
    /// QPs with possibly-unconsumed WQ entries, in service order.
    pub active_qps: VecDeque<QpId>,
    /// WQ requests launched (tid allocated, unroll started).
    pub requests: u64,
    /// Line packets injected into the fabric.
    pub lines: u64,
    /// WQ ring reads performed while polling.
    pub wq_polls: u64,
    /// WQ polls that found no fresh entry.
    pub empty_polls: u64,
    /// Service retries forced by a full ITT (backpressure).
    pub itt_full_stalls: u64,
}

impl RgpState {
    /// Whether a service event is currently scheduled.
    pub fn busy(&self) -> bool {
        self.phase != RgpPhase::Idle
    }

    /// This pipeline's slice of a [`PipelineStats`] snapshot.
    pub fn stats(&self) -> PipelineStats {
        PipelineStats {
            rgp_requests: self.requests,
            rgp_lines: self.lines,
            rgp_wq_polls: self.wq_polls,
            rgp_empty_polls: self.empty_polls,
            rgp_itt_stalls: self.itt_full_stalls,
            ..PipelineStats::default()
        }
    }
}

/// One unrolled cache-line transaction queued for injection by the RGP
/// (carried by value inside [`ClusterEvent::InjectLine`]; the fields are
/// pipeline-internal).
#[derive(Debug, Clone, Copy)]
pub struct LineRequest {
    dst: NodeId,
    ctx: CtxId,
    tid: Tid,
    op: RemoteOp,
    offset: u64,
    line_seq: u32,
    /// Local VA the payload is read from (writes), or operands (atomics).
    payload_src: Option<VAddr>,
    operands: (u64, u64),
}

impl Cluster {
    /// Notifies the RGP that `qp` may have fresh WQ entries (the coherence
    /// hint of a core's WQ store). Called by the access library after every
    /// post.
    pub(crate) fn notify_rgp(
        &mut self,
        engine: &mut ClusterEngine,
        now: SimTime,
        n: usize,
        qp: QpId,
    ) {
        let node = &mut self.nodes[n];
        if !node.rmc.rgp.active_qps.contains(&qp) {
            node.rmc.rgp.active_qps.push_back(qp);
        }
        if !node.rmc.rgp.busy() {
            node.rmc.rgp.phase = RgpPhase::Polling;
            // Detection latency: on average half a poll interval elapses
            // before the polling loop re-reads this WQ.
            let detect = node.rmc.timing.poll_interval / 2;
            engine.schedule_at(now + detect, ClusterEvent::RgpService { node: n as u16 });
        }
    }

    /// One RGP service step: consume at most one WQ entry from the QP at
    /// the head of the active list, unroll it, and chain.
    pub(crate) fn rgp_service(&mut self, engine: &mut ClusterEngine, n: usize) {
        let now = engine.now();
        let node = &mut self.nodes[n];
        let timing = node.rmc.timing;

        let Some(&qp) = node.rmc.rgp.active_qps.front() else {
            node.rmc.rgp.phase = RgpPhase::Idle;
            return;
        };

        // Fetch the WQ entry at the RMC's consumer cursor through the
        // coherent hierarchy (this is where the core-to-RMC cache-to-cache
        // transfer of a fresh entry is paid).
        let (wq_index, expected_phase) = node.rmc.qps[qp.index()].wq_cursor();
        let wq_va = node.rmc.qps[qp.index()].wq_entry_addr(wq_index);
        let (pa, t_xl) = node.rmc_translate(now, wq_va);
        let pa = pa.expect("WQ rings are pinned by the driver");
        let t_read = node.rmc_line_access(t_xl, pa, AccessKind::Read);
        let mut line = [0u8; 64];
        node.read_virt(wq_va, &mut line)
            .expect("WQ rings are mapped");
        node.rmc.rgp.wq_polls += 1;

        let parsed = WqEntry::decode(&line).filter(|(_, phase)| *phase == expected_phase);
        let Some((entry, _)) = parsed else {
            // No new entry: retire this QP from the active list.
            node.rmc.rgp.empty_polls += 1;
            node.rmc.rgp.active_qps.pop_front();
            if node.rmc.rgp.active_qps.is_empty() {
                node.rmc.rgp.phase = RgpPhase::Idle;
            } else {
                engine.schedule_at(t_read, ClusterEvent::RgpService { node: n as u16 });
            }
            return;
        };

        if node.rmc.itt.is_full() {
            // All tids in flight: back off and retry after a poll interval.
            node.rmc.rgp.phase = RgpPhase::Stalled;
            node.rmc.rgp.itt_full_stalls += 1;
            engine.schedule_at(
                now + timing.poll_interval,
                ClusterEvent::RgpResume { node: n as u16 },
            );
            return;
        }

        let lines = entry.lines();
        let tid = node
            .rmc
            .itt
            .alloc(qp, wq_index, lines, entry.buf_vaddr)
            .expect("checked not full");
        node.rmc.qps[qp.index()].advance_wq();
        node.rmc.rgp.requests += 1;

        // Unroll into line-sized transactions (§4.2): one injection every
        // initiation interval.
        let t0 = t_read + timing.rgp_per_request;
        for k in 0..lines {
            let at = t0 + timing.unroll_interval * k as u64;
            let line = LineRequest {
                dst: entry.dst,
                ctx: entry.ctx,
                tid,
                op: entry.op,
                offset: entry.offset + k as u64 * CACHE_LINE_BYTES,
                line_seq: k,
                payload_src: (entry.op == RemoteOp::Write)
                    .then(|| VAddr::new(entry.buf_vaddr + k as u64 * CACHE_LINE_BYTES)),
                operands: (entry.operand1, entry.operand2),
            };
            engine.schedule_at(
                at,
                ClusterEvent::InjectLine {
                    node: n as u16,
                    line,
                },
            );
        }

        // Rotate this QP to the back and chain the next service step once
        // the unroll finishes occupying the pipeline.
        let node = &mut self.nodes[n];
        if let Some(front) = node.rmc.rgp.active_qps.pop_front() {
            node.rmc.rgp.active_qps.push_back(front);
        }
        let t_next = (t0 + timing.unroll_interval * lines as u64).max(now + timing.stage_local);
        engine.schedule_at(t_next, ClusterEvent::RgpService { node: n as u16 });
    }

    /// Injects one unrolled line transaction into the fabric (reading the
    /// payload for writes).
    pub(crate) fn inject_line(&mut self, engine: &mut ClusterEngine, n: usize, spec: LineRequest) {
        let now = engine.now();
        let node = &mut self.nodes[n];
        let timing = node.rmc.timing;
        let src = NodeId(n as u16);

        let mut t = now;
        let mut payload: Option<[u8; 64]> = None;
        match spec.op {
            RemoteOp::Write => {
                let va = spec.payload_src.expect("writes carry a payload source");
                let (pa, t_xl) = node.rmc_translate(t, va);
                let pa = pa.expect("local buffer validated at post time");
                t = node.rmc_line_access(t_xl, pa, AccessKind::Read);
                let mut buf = [0u8; 64];
                node.read_virt(va, &mut buf).expect("local buffer mapped");
                payload = Some(buf);
            }
            RemoteOp::FetchAdd | RemoteOp::CompSwap | RemoteOp::Interrupt => {
                let mut buf = [0u8; 64];
                buf[0..8].copy_from_slice(&spec.operands.0.to_le_bytes());
                buf[8..16].copy_from_slice(&spec.operands.1.to_le_bytes());
                payload = Some(buf);
                t += timing.stage_local;
            }
            RemoteOp::Read => {
                t += timing.stage_local;
            }
        }

        let pkt = Packet {
            kind: PacketKind::Request,
            dst: spec.dst,
            src,
            ctx: spec.ctx,
            tid: spec.tid,
            op: spec.op,
            status: Status::Ok,
            offset: spec.offset,
            line_seq: spec.line_seq,
            payload,
        };
        node.rmc.rgp.lines += 1;
        self.route_packet(engine, t, pkt);
    }
}
