//! The Request Completion Pipeline (RCP, §4.2).
//!
//! The RCP is the source-side back half of the RMC: it matches each reply
//! packet to its in-flight transaction via the ITT (by the echoed `tid`),
//! scatters read/atomic payloads into the application's buffer through the
//! coherent hierarchy, and — once the last line of a request has arrived —
//! posts a CQ entry and hands wake-up scheduling to the core scheduler.
//! Replies arrive out of order across requests; ordering within a request
//! is irrelevant because each line carries its own `line_seq`.
//!
//! When a fault plan is active the RCP also deduplicates: retransmission
//! means a line can be answered twice (the original reply raced the
//! timeout), and a recycled tid can receive replies from a previous
//! incarnation. Both are filtered against the retry table's per-line
//! bitmap and generation stamp *before* the ITT sees them, keeping the
//! ITT's exact line accounting intact.

use sonuma_memory::{AccessKind, VAddr, CACHE_LINE_BYTES};
use sonuma_protocol::{CqEntry, Packet, QpId, RemoteOp, Status};
use sonuma_rmc::ReplyAction;
use sonuma_sim::SimTime;

use super::PipelineStats;
use crate::cluster::Cluster;
use crate::ClusterEngine;

/// Per-node RCP counters (transaction state itself lives in the ITT).
#[derive(Debug, Default)]
pub struct RcpState {
    /// Reply packets processed.
    pub replies: u64,
    /// CQ entries posted (WQ requests fully completed).
    pub completions: u64,
    /// Replies discarded by the fault-recovery dedup filter: stale tid,
    /// stale generation, or a line already accounted. Zero unless a fault
    /// plan is active.
    pub stale_drops: u64,
}

impl RcpState {
    /// This pipeline's slice of a [`PipelineStats`] snapshot.
    pub fn stats(&self) -> PipelineStats {
        PipelineStats {
            rcp_replies: self.replies,
            rcp_completions: self.completions,
            ..PipelineStats::default()
        }
    }
}

impl Cluster {
    /// Processes one reply at the originating node `n`.
    pub(crate) fn rcp_handle(&mut self, engine: &mut ClusterEngine, n: usize, pkt: Packet) {
        let now = engine.now();
        let faults_on = self.config().fabric.faults.is_some();
        let node = self.node_mut(n);
        let timing = node.rmc.timing;
        node.rmc.rcp.replies += 1;

        // Fault-recovery dedup: only replies that match the live
        // incarnation of the tid and carry a not-yet-seen line may reach
        // the ITT. Anything else is a ghost of a retransmitted or aborted
        // request.
        if faults_on {
            let fresh = match node.retry.get_mut(pkt.tid) {
                Some(state) => state.gen == pkt.gen && state.mark_received(pkt.line_seq),
                None => false,
            };
            if !fresh {
                node.rmc.rcp.stale_drops += 1;
                return;
            }
        }

        let mut t = now + timing.rcp_per_packet;

        // Scatter the payload into the application buffer (reads/atomics).
        if pkt.status.is_ok() && pkt.op.reply_carries_payload() {
            let base = node.rmc.itt.buf_vaddr(pkt.tid);
            let dest = VAddr::new(base + pkt.line_seq as u64 * CACHE_LINE_BYTES);
            let (pa, t_xl) = node.rmc_translate(t, dest);
            let pa = pa.expect("local buffer validated at post time");
            t = node.rmc_line_access(t_xl, pa, AccessKind::Write);
            let payload = pkt.payload.expect("reply carries payload");
            if pkt.op.is_atomic() {
                node.write_virt(dest, &payload[0..8])
                    .expect("buffer mapped");
            } else {
                node.write_virt(dest, &payload).expect("buffer mapped");
                node.bytes_read += CACHE_LINE_BYTES;
            }
        } else if pkt.op == RemoteOp::Write {
            node.bytes_written += CACHE_LINE_BYTES;
            t += timing.stage_local;
        }

        match node.rmc.itt.on_reply(pkt.tid, pkt.status) {
            ReplyAction::InProgress => {}
            ReplyAction::Complete {
                qp,
                wq_index,
                status,
            } => {
                // Retire the retry state with the tid; `remove` is a
                // no-op on fault-free runs (the table never grew).
                node.retry.remove(pkt.tid);
                self.complete_to_cq(engine, n, qp, wq_index, status, t);
            }
        }
    }

    /// Posts a CQ entry for `(qp, wq_index)` at node `n` through the
    /// coherent hierarchy and schedules the owner core's wake-up. Shared
    /// by the normal completion path above and the fault paths (retry
    /// exhaustion, node crash) that post [`Status::Aborted`] entries.
    pub(crate) fn complete_to_cq(
        &mut self,
        engine: &mut ClusterEngine,
        n: usize,
        qp: QpId,
        wq_index: u16,
        status: Status,
        mut t: SimTime,
    ) {
        let node = self.node_mut(n);
        let (cq_index, cq_phase) = node.rmc.qps[qp.index()].cq_cursor();
        let cq_va = node.rmc.qps[qp.index()].cq_entry_addr(cq_index);
        let (pa, t_xl) = node.rmc_translate(t, cq_va);
        let pa = pa.expect("CQ rings are pinned");
        t = node.rmc_line_access(t_xl, pa, AccessKind::Write);
        let bytes = CqEntry { wq_index, status }.encode(cq_phase);
        node.write_virt(cq_va, &bytes).expect("CQ mapped");
        node.rmc.qps[qp.index()].advance_cq();
        node.rmc.rcp.completions += 1;
        node.ops_completed += 1;
        node.tenants.note_completion(qp);
        self.maybe_cq_wake(engine, n, qp, t);
    }
}
