//! The three decoupled RMC pipelines (§4.2) as explicit modules.
//!
//! The paper's central architectural claim is that the RMC is *three
//! independent pipelines* sharing only the Context Table, the ITT and the
//! MAQ:
//!
//! * [`rgp`] — the Request Generation Pipeline (source side, WQ to fabric);
//! * [`rrpp`] — the Remote Request Processing Pipeline (destination side,
//!   stateless request service);
//! * [`rcp`] — the Request Completion Pipeline (source side, fabric to CQ).
//!
//! Each module owns its pipeline's state machine
//! ([`RgpState`]/[`RrppState`]/[`RcpState`]), its backpressure counters,
//! and the event logic that advances it over the cluster world. The
//! [`PipelineStats`] snapshot collects every counter for one node, which is
//! what the benchmark harness prints for per-pipeline ablations.

pub mod rcp;
pub mod rgp;
pub mod rrpp;

pub use rcp::RcpState;
pub use rgp::{RgpPhase, RgpState};
pub use rrpp::RrppState;

use sonuma_protocol::{NodeId, Packet};
use sonuma_sim::SimTime;

use crate::cluster::Cluster;
use crate::event::ClusterEvent;
use crate::ClusterEngine;

/// A point-in-time snapshot of one node's pipeline counters.
///
/// Field prefixes name the pipeline the counter belongs to. Snapshots are
/// plain data: diff two to measure an interval, or sum them across nodes
/// with [`PipelineStats::merge`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PipelineStats {
    /// WQ requests launched by the RGP (tid allocated, unroll started).
    pub rgp_requests: u64,
    /// Line-sized request packets injected by the RGP.
    pub rgp_lines: u64,
    /// WQ ring reads the RGP performed while polling.
    pub rgp_wq_polls: u64,
    /// WQ polls that found no fresh entry.
    pub rgp_empty_polls: u64,
    /// RGP service retries because every ITT tid was in flight — the
    /// pipeline's backpressure signal.
    pub rgp_itt_stalls: u64,
    /// Pending QPs the RGP's QoS scheduler passed over in favor of
    /// higher-priority work — the starvation-pressure signal (0 under
    /// round-robin and WDRR, which never skip).
    pub rgp_sched_skips: u64,
    /// Posts the access library rejected with `WqFull` — the backpressure
    /// tenants themselves experienced at the API boundary.
    pub api_wq_full: u64,
    /// Request packets serviced by the RRPP (this node as destination).
    pub rrpp_served: u64,
    /// RRPP context lookups that missed the CT$.
    pub rrpp_ct_misses: u64,
    /// Error replies the RRPP generated (bounds/context violations).
    pub rrpp_errors: u64,
    /// Remote-interrupt requests the RRPP handled.
    pub rrpp_interrupts: u64,
    /// Reply packets processed by the RCP.
    pub rcp_replies: u64,
    /// CQ entries the RCP posted (completed WQ requests).
    pub rcp_completions: u64,
    /// Transactions in flight in the ITT at snapshot time.
    pub itt_in_flight: u64,
    /// Retransmission deadlines that fired with lines still missing
    /// (fault recovery; zero without a fault plan).
    pub rgp_timeouts: u64,
    /// Line requests re-injected by the retransmission path.
    pub rgp_retransmits: u64,
    /// Packets the receiving RMC discarded as corrupted (requests and
    /// replies alike; the source's timeout recovers them).
    pub rrpp_corrupt_drops: u64,
}

impl PipelineStats {
    /// Element-wise in-place accumulation of `other` into `self` — the
    /// fold step of cluster-wide aggregation. Report loops summing
    /// hundreds of per-node snapshots use this so the fold is one pass
    /// over borrowed data, not a chain of by-value copies.
    pub fn merge_from(&mut self, other: &PipelineStats) {
        self.rgp_requests += other.rgp_requests;
        self.rgp_lines += other.rgp_lines;
        self.rgp_wq_polls += other.rgp_wq_polls;
        self.rgp_empty_polls += other.rgp_empty_polls;
        self.rgp_itt_stalls += other.rgp_itt_stalls;
        self.rgp_sched_skips += other.rgp_sched_skips;
        self.api_wq_full += other.api_wq_full;
        self.rrpp_served += other.rrpp_served;
        self.rrpp_ct_misses += other.rrpp_ct_misses;
        self.rrpp_errors += other.rrpp_errors;
        self.rrpp_interrupts += other.rrpp_interrupts;
        self.rcp_replies += other.rcp_replies;
        self.rcp_completions += other.rcp_completions;
        self.itt_in_flight += other.itt_in_flight;
        self.rgp_timeouts += other.rgp_timeouts;
        self.rgp_retransmits += other.rgp_retransmits;
        self.rrpp_corrupt_drops += other.rrpp_corrupt_drops;
    }

    /// Element-wise sum of two snapshots (by-value convenience form of
    /// [`PipelineStats::merge_from`]).
    #[must_use]
    pub fn merge(mut self, other: PipelineStats) -> PipelineStats {
        self.merge_from(&other);
        self
    }

    /// `(name, value)` rows in presentation order, so reporting layers can
    /// render snapshots without hand-listing fields.
    pub fn rows(&self) -> [(&'static str, u64); 17] {
        [
            ("rgp_requests", self.rgp_requests),
            ("rgp_lines", self.rgp_lines),
            ("rgp_wq_polls", self.rgp_wq_polls),
            ("rgp_empty_polls", self.rgp_empty_polls),
            ("rgp_itt_stalls", self.rgp_itt_stalls),
            ("rgp_sched_skips", self.rgp_sched_skips),
            ("api_wq_full", self.api_wq_full),
            ("rrpp_served", self.rrpp_served),
            ("rrpp_ct_misses", self.rrpp_ct_misses),
            ("rrpp_errors", self.rrpp_errors),
            ("rrpp_interrupts", self.rrpp_interrupts),
            ("rcp_replies", self.rcp_replies),
            ("rcp_completions", self.rcp_completions),
            ("itt_in_flight", self.itt_in_flight),
            ("rgp_timeouts", self.rgp_timeouts),
            ("rgp_retransmits", self.rgp_retransmits),
            ("rrpp_corrupt_drops", self.rrpp_corrupt_drops),
        ]
    }
}

impl Cluster {
    /// Snapshot of node `node`'s pipeline counters.
    ///
    /// # Panics
    ///
    /// Panics if this cluster does not own `node`.
    pub fn pipeline_stats(&self, node: NodeId) -> PipelineStats {
        let n = self.node(node.index());
        let mut s = n
            .rmc
            .rgp
            .stats()
            .merge(n.rmc.rrpp.stats())
            .merge(n.rmc.rcp.stats());
        s.itt_in_flight = n.rmc.itt.in_flight() as u64;
        s.api_wq_full = n.wq_full_rejections;
        s
    }

    /// Sum of the pipeline counters of every node this cluster *owns*
    /// (the whole cluster classically; one shard's slice under the
    /// sharded engine): one in-place O(N) fold per call. Callers that
    /// need both the total and the per-node rows (the bench report path)
    /// should snapshot per-node stats once and fold those, rather than
    /// calling this per counter.
    pub fn total_pipeline_stats(&self) -> PipelineStats {
        let mut total = PipelineStats::default();
        for n in self.owned_nodes() {
            total.merge_from(&self.pipeline_stats(NodeId(n as u16)));
        }
        total
    }

    /// Delivers `pkt` to its destination's RRPP (requests) or RCP
    /// (replies), through the fabric or the local NI loopback.
    ///
    /// Classic clusters resolve the fabric traversal inline (link
    /// serialization + credits) and schedule the typed
    /// [`ClusterEvent::Deliver`] at the computed arrival. Shard clusters
    /// instead stamp the send with its `(src, seq)` merge key and stage
    /// it in the mailbox; the `ShardedCluster` applies every staged send
    /// to the one global fabric at the epoch barrier, in an order that is
    /// a pure function of simulated history — which is what keeps
    /// `--threads N` bit-identical to `--threads 1`.
    pub(crate) fn route_packet(&mut self, engine: &mut ClusterEngine, t: SimTime, mut pkt: Packet) {
        if pkt.dst == pkt.src {
            // Local loopback through the NI: no fabric traversal, stays
            // within the owning shard.
            let deliver_at = t + self.node(pkt.dst.index()).rmc.timing.stage_local;
            engine.schedule_at(deliver_at, ClusterEvent::Deliver { pkt });
            return;
        }
        let src = pkt.src;
        match &mut self.route {
            crate::cluster::RoutePath::Direct(fabric) => {
                let salt = pkt.fault_salt(t.as_ps());
                let (arrival, fate) = fabric.send_faulty(
                    t,
                    pkt.src,
                    pkt.dst,
                    pkt.virtual_lane(),
                    pkt.wire_bytes(),
                    salt,
                );
                match fate {
                    sonuma_fabric::PacketFate::Dropped => {}
                    sonuma_fabric::PacketFate::Corrupted => {
                        pkt.corrupt = true;
                        engine.schedule_at(arrival.time, ClusterEvent::Deliver { pkt });
                    }
                    sonuma_fabric::PacketFate::Delivered => {
                        engine.schedule_at(arrival.time, ClusterEvent::Deliver { pkt });
                    }
                }
            }
            crate::cluster::RoutePath::Mailbox(_) => {
                let seq = {
                    let node = self.node_mut(src.index());
                    let seq = node.fabric_seq;
                    node.fabric_seq += 1;
                    seq
                };
                let crate::cluster::RoutePath::Mailbox(outbox) = &mut self.route else {
                    unreachable!("route path changed underfoot");
                };
                outbox.push(crate::cluster::Departure { t, src, seq, pkt });
            }
        }
    }
}
