//! The Remote Request Processing Pipeline (RRPP, §4.2, §6).
//!
//! The RRPP is the destination-side pipeline: it services incoming request
//! packets *statelessly* — everything it needs is in the packet header plus
//! this node's Context Table and page tables — and sends exactly one reply
//! per request. Stages per packet: CT/CT$ lookup, bounds check, TLB or
//! hardware page-walk translation, one coherent local memory access
//! (including atomics executed in the destination's cache hierarchy), and
//! reply generation. Error paths (bad context, out-of-bounds offset) skip
//! the memory access and reply with the error status (§4.2).

use sonuma_memory::{AccessKind, CACHE_LINE_BYTES};
use sonuma_protocol::{Packet, RemoteOp, Status};

use super::PipelineStats;
use crate::cluster::Cluster;
use crate::ClusterEngine;

/// Per-node RRPP counters (the pipeline itself is stateless).
#[derive(Debug, Default)]
pub struct RrppState {
    /// Request packets serviced.
    pub served: u64,
    /// Context lookups that missed the CT$.
    pub ct_misses: u64,
    /// Error replies generated (context/bounds violations).
    pub errors: u64,
    /// Remote-interrupt requests handled (§8 extension).
    pub interrupts: u64,
    /// Packets this node's NI discarded as corrupted. Incremented by the
    /// central delivery integrity check for requests *and* replies (the
    /// check models the receiving RMC's CRC, which runs before the
    /// packet is steered to a pipeline); zero without a fault plan.
    pub corrupt_drops: u64,
}

impl RrppState {
    /// This pipeline's slice of a [`PipelineStats`] snapshot.
    pub fn stats(&self) -> PipelineStats {
        PipelineStats {
            rrpp_served: self.served,
            rrpp_ct_misses: self.ct_misses,
            rrpp_errors: self.errors,
            rrpp_interrupts: self.interrupts,
            rrpp_corrupt_drops: self.corrupt_drops,
            ..PipelineStats::default()
        }
    }
}

impl Cluster {
    /// Services one incoming request packet at node `n` and sends exactly
    /// one reply.
    pub(crate) fn rrpp_handle(&mut self, engine: &mut ClusterEngine, n: usize, pkt: Packet) {
        let now = engine.now();
        let node = self.node_mut(n);
        let timing = node.rmc.timing;
        node.rmc.rrpp.served += 1;

        let mut t = now + timing.rrpp_per_packet;
        if !node.rmc.ct_cache.touch(pkt.ctx) {
            node.rmc.rrpp.ct_misses += 1;
            t += timing.ct_miss_penalty;
        }

        // Remote interrupt (§8 extension): validate the context, then hand
        // the payload to the registered handler core — no memory access.
        if pkt.op == RemoteOp::Interrupt {
            node.rmc.rrpp.interrupts += 1;
            let status = match node.rmc.ct.lookup(pkt.ctx) {
                Ok(_) => {
                    let payload = pkt
                        .payload
                        .map(|p| u64::from_le_bytes(p[0..8].try_into().unwrap()))
                        .unwrap_or(0);
                    if node.interrupt_handler.is_some() {
                        node.pending_interrupts.push_back((pkt.src, payload));
                        self.deliver_interrupt(engine, n, t);
                    } else {
                        self.node_mut(n).interrupts_dropped += 1;
                    }
                    Status::Ok
                }
                Err(status) => {
                    node.rmc.rrpp.errors += 1;
                    status
                }
            };
            let reply = Packet::reply_to(&pkt, status, None);
            let t = t + self.node(n).rmc.timing.stage_local;
            self.route_packet(engine, t, reply);
            return;
        }

        let size = if pkt.op.is_atomic() {
            8
        } else {
            CACHE_LINE_BYTES
        };
        // Stateless handling: everything below uses only the packet header
        // and this node's CT/page tables.
        let resolved = node
            .rmc
            .ct
            .lookup(pkt.ctx)
            .and_then(|entry| entry.resolve(pkt.offset, size));
        let va = match resolved {
            Ok(va) => va,
            Err(status) => {
                node.rmc.rrpp.errors += 1;
                let reply = Packet::reply_to(&pkt, status, None);
                self.route_packet(engine, t + timing.stage_local, reply);
                return;
            }
        };

        let (pa, t_xl) = node.rmc_translate(t, va);
        let Ok(pa) = pa else {
            // Mapped-segment invariant violated only by teardown races;
            // surface as a bounds error per the paper's error reply path.
            node.rmc.rrpp.errors += 1;
            let reply = Packet::reply_to(&pkt, Status::OutOfBounds, None);
            self.route_packet(engine, t + timing.stage_local, reply);
            return;
        };

        let kind = match pkt.op {
            RemoteOp::Read => AccessKind::Read,
            _ => AccessKind::Write,
        };
        let t_mem = node.rmc_line_access(t_xl, pa, kind);

        let mut reply_payload: Option<[u8; 64]> = None;
        match pkt.op {
            RemoteOp::Interrupt => unreachable!("handled before translation"),
            RemoteOp::Read => {
                let mut buf = [0u8; 64];
                node.read_virt(va, &mut buf).expect("segment mapped");
                reply_payload = Some(buf);
            }
            RemoteOp::Write => {
                let data = pkt.payload.expect("write request carries payload");
                node.write_virt(va, &data).expect("segment mapped");
                node.note_remote_write(va, CACHE_LINE_BYTES, t_mem);
            }
            RemoteOp::FetchAdd => {
                let delta = pkt
                    .payload
                    .map(|p| u64::from_le_bytes(p[0..8].try_into().unwrap()))
                    .expect("fetch-add carries operands");
                let old = node.phys.fetch_add_u64(pa, delta);
                let mut buf = [0u8; 64];
                buf[0..8].copy_from_slice(&old.to_le_bytes());
                reply_payload = Some(buf);
                node.note_remote_write(va, 8, t_mem);
            }
            RemoteOp::CompSwap => {
                let p = pkt.payload.expect("compare-swap carries operands");
                let expected = u64::from_le_bytes(p[0..8].try_into().unwrap());
                let new = u64::from_le_bytes(p[8..16].try_into().unwrap());
                let old = node.phys.compare_swap_u64(pa, expected, new);
                let mut buf = [0u8; 64];
                buf[0..8].copy_from_slice(&old.to_le_bytes());
                reply_payload = Some(buf);
                node.note_remote_write(va, 8, t_mem);
            }
        }

        // Remote writes/atomics may satisfy a memory watch (a core polling
        // its receive buffer).
        if kind == AccessKind::Write {
            self.trigger_watches(engine, n, va, size, t_mem);
        }

        let reply = Packet::reply_to(&pkt, Status::Ok, reply_payload);
        self.route_packet(engine, t_mem + timing.stage_local, reply);
    }
}
