//! The run-to-block application execution model.
//!
//! Simulated applications are state machines: on every wake-up they run on
//! their core — issuing remote operations, touching memory, computing —
//! with each action charging simulated time through the [`crate::NodeApi`].
//! They then *block* by returning a [`Step`], and the machine wakes them
//! when the corresponding event fires. This mirrors how the paper's
//! applications are written against the asynchronous access library
//! (Fig. 4): issue loops, CQ polling, and callback dispatch — with the
//! blocking points made explicit instead of burning simulated cycles in a
//! spin loop.

use sonuma_memory::VAddr;
use sonuma_protocol::{QpId, Status};
use sonuma_sim::SimTime;

use crate::api::NodeApi;

/// One completed WQ request, as observed by the application.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// Queue pair it completed on.
    pub qp: QpId,
    /// Index of the completed WQ entry (the paper's CQ payload, §4.1).
    pub wq_index: u16,
    /// Completion status (errors surface here, §4.2).
    pub status: Status,
}

/// Why a process was woken.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Wake {
    /// First wake-up after `spawn`.
    Start,
    /// A `Step::Sleep` timer expired.
    Timer,
    /// One or more completions are ready on a CQ the process waited on.
    CqReady(Vec<Completion>),
    /// A remote write touched memory the process was watching.
    MemoryTouched {
        /// Base of the watched range that was written.
        addr: VAddr,
    },
    /// A remote interrupt arrived for this core (the §8 extension: node-to-
    /// node notification without polling). Delivered when the process next
    /// blocks; one interrupt per wake-up.
    Interrupt {
        /// Originating node.
        from: sonuma_protocol::NodeId,
        /// 8-byte payload the sender attached.
        payload: u64,
    },
}

/// How a process blocks at the end of a wake-up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    /// Compute (or idle) for a duration, then wake with [`Wake::Timer`].
    Sleep(SimTime),
    /// Park until a completion is available on this queue pair.
    WaitCq(QpId),
    /// Park until a remote write lands in `[addr, addr+len)` — the model of
    /// polling a receive buffer: the poll loop observes the coherence
    /// invalidation caused by the RMC's write (§5.3).
    WaitMemory {
        /// Watched range base.
        addr: VAddr,
        /// Watched range length in bytes.
        len: u64,
    },
    /// Park until either a CQ completion or a watched write, whichever
    /// comes first.
    WaitCqOrMemory {
        /// Queue pair to watch.
        qp: QpId,
        /// Watched range base.
        addr: VAddr,
        /// Watched range length in bytes.
        len: u64,
    },
    /// The process finished; the core goes idle permanently.
    Done,
}

/// A simulated application running on one core.
///
/// Implementations hold their own state (loop counters, outstanding-slot
/// tables, measurement accumulators) and advance it on every [`Self::wake`].
///
/// # Example
///
/// ```
/// use sonuma_machine::{AppProcess, NodeApi, Step, Wake};
/// use sonuma_sim::SimTime;
///
/// /// Counts its own wake-ups, then finishes.
/// struct Ticker { remaining: u32 }
///
/// impl AppProcess for Ticker {
///     fn wake(&mut self, _api: &mut NodeApi<'_>, _why: Wake) -> Step {
///         if self.remaining == 0 {
///             return Step::Done;
///         }
///         self.remaining -= 1;
///         Step::Sleep(SimTime::from_us(1))
///     }
/// }
/// ```
pub trait AppProcess {
    /// Runs the process until it blocks; `why` reports what woke it.
    fn wake(&mut self, api: &mut NodeApi<'_>, why: Wake) -> Step;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wake_variants_compare() {
        assert_eq!(Wake::Start, Wake::Start);
        assert_ne!(Wake::Start, Wake::Timer);
        let c = Completion {
            qp: QpId(0),
            wq_index: 3,
            status: Status::Ok,
        };
        assert_eq!(Wake::CqReady(vec![c]), Wake::CqReady(vec![c]));
    }

    #[test]
    fn step_variants_compare() {
        assert_eq!(
            Step::Sleep(SimTime::from_ns(5)),
            Step::Sleep(SimTime::from_ns(5))
        );
        assert_ne!(Step::WaitCq(QpId(0)), Step::WaitCq(QpId(1)));
        assert_eq!(
            Step::WaitMemory {
                addr: VAddr::new(4),
                len: 8
            },
            Step::WaitMemory {
                addr: VAddr::new(4),
                len: 8
            }
        );
    }
}
