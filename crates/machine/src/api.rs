//! The user-level access library (§5.2): the API processes program against.
//!
//! Every method charges the simulated time the equivalent inline C/C++
//! wrapper would cost — a WQ post is a real 64-byte store into the work
//! queue ring through the coherence hierarchy plus the library's bookkeeping
//! — so the per-core remote-operation rate emerges from the same overheads
//! the paper measures (§7.2, §7.5).

use std::error::Error;
use std::fmt;

use sonuma_memory::{AccessKind, VAddr, CACHE_LINE_BYTES};
use sonuma_protocol::{CtxId, NodeId, QpId, WqEntry};
use sonuma_sim::SimTime;

use crate::cluster::Cluster;
use crate::process::Completion;
use crate::ClusterEngine;

/// Errors surfaced by the access library.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ApiError {
    /// The work queue is full; drain completions first
    /// (`rmc_wait_for_slot` in the paper's Fig. 4).
    WqFull,
    /// The queue pair does not exist or belongs to another core.
    BadQp,
    /// Read/write lengths must be nonzero multiples of the 64-byte cache
    /// line (§4.2: "coarser granularities, in cache-line-sized multiples").
    BadLength,
    /// A local buffer address is not mapped.
    Unmapped(VAddr),
    /// The node is out of physical memory.
    OutOfMemory,
}

impl fmt::Display for ApiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ApiError::WqFull => write!(f, "work queue full"),
            ApiError::BadQp => write!(f, "invalid queue pair"),
            ApiError::BadLength => write!(f, "length must be a nonzero multiple of 64"),
            ApiError::Unmapped(va) => write!(f, "unmapped local buffer at {va}"),
            ApiError::OutOfMemory => write!(f, "out of physical memory"),
        }
    }
}

impl Error for ApiError {}

/// The per-wake-up handle through which a process acts on the world.
///
/// Borrowed mutably for the duration of one [`crate::AppProcess::wake`];
/// all actions charge time to the process's core via the internal elapsed
/// counter.
pub struct NodeApi<'a> {
    cluster: &'a mut Cluster,
    engine: &'a mut ClusterEngine,
    node: usize,
    core: usize,
    elapsed: SimTime,
}

impl<'a> NodeApi<'a> {
    pub(crate) fn new(
        cluster: &'a mut Cluster,
        engine: &'a mut ClusterEngine,
        node: usize,
        core: usize,
        base_charge: SimTime,
    ) -> Self {
        NodeApi {
            cluster,
            engine,
            node,
            core,
            elapsed: base_charge,
        }
    }

    pub(crate) fn elapsed(&self) -> SimTime {
        self.elapsed
    }

    /// Current simulated time as seen by this core (event time plus work
    /// already performed in this wake-up).
    pub fn now(&self) -> SimTime {
        self.engine.now() + self.elapsed
    }

    /// This node's fabric id.
    pub fn node_id(&self) -> NodeId {
        NodeId(self.node as u16)
    }

    /// This core's index within the node.
    pub fn core_id(&self) -> usize {
        self.core
    }

    /// Number of nodes in the cluster.
    pub fn num_nodes(&self) -> usize {
        self.cluster.num_nodes()
    }

    /// Number of cores per node.
    pub fn cores_per_node(&self) -> usize {
        self.cluster.config().cores_per_node
    }

    /// Charges explicit compute time (the per-item work of an application
    /// kernel, e.g. a PageRank edge update).
    pub fn compute(&mut self, d: SimTime) {
        self.elapsed += d;
    }

    /// The platform's access-library cost parameters, for applications
    /// that charge their own per-callback work.
    pub fn software(&self) -> crate::config::SoftwareTiming {
        self.cluster.config().software
    }

    /// Base virtual address of this node's segment in context `ctx`.
    ///
    /// # Panics
    ///
    /// Panics if the context is not registered.
    pub fn ctx_base(&self, ctx: CtxId) -> VAddr {
        self.cluster
            .node(self.node)
            .rmc
            .ct
            .lookup(ctx)
            .expect("context not registered")
            .segment_base
    }

    /// Length of this node's segment in context `ctx`.
    ///
    /// # Panics
    ///
    /// Panics if the context is not registered.
    pub fn ctx_len(&self, ctx: CtxId) -> u64 {
        self.cluster
            .node(self.node)
            .rmc
            .ct
            .lookup(ctx)
            .expect("context not registered")
            .segment_len
    }

    /// Allocates pinned local memory (buffers); no time charge (setup path).
    ///
    /// # Errors
    ///
    /// Returns [`ApiError::OutOfMemory`] on exhaustion.
    pub fn heap_alloc(&mut self, len: u64) -> Result<VAddr, ApiError> {
        self.cluster
            .node_mut(self.node)
            .heap_alloc(len)
            .map_err(|_| ApiError::OutOfMemory)
    }

    fn validate_buffer(&self, va: VAddr, len: u64) -> Result<(), ApiError> {
        let node = self.cluster.node(self.node);
        node.translate(va).map_err(|_| ApiError::Unmapped(va))?;
        if len > 0 {
            let last = va.offset(len - 1);
            node.translate(last).map_err(|_| ApiError::Unmapped(last))?;
        }
        Ok(())
    }

    fn post(&mut self, qp: QpId, entry: WqEntry) -> Result<u16, ApiError> {
        let n = self.node;
        {
            let node = self.cluster.node_mut(n);
            let cursors = node.app_qps.get(qp.index()).ok_or(ApiError::BadQp)?;
            if cursors.owner_core != self.core {
                return Err(ApiError::BadQp);
            }
            // Head-of-ring flow control (`rmc_wait_for_slot`): completions
            // are out of order, so the next slot may still be in flight
            // even when others have completed.
            if cursors.outstanding >= node.rmc.qps[qp.index()].entries()
                || cursors.slot_busy[cursors.wq_index as usize]
            {
                // Backpressure is an explicit error, never a silent drop;
                // count it so noisy-neighbor rejection is observable.
                node.wq_full_rejections += 1;
                node.tenants.note_wq_full(qp);
                return Err(ApiError::WqFull);
            }
        }
        // Interrupts carry no local buffer; everything else must reference
        // mapped memory.
        if entry.op != sonuma_protocol::RemoteOp::Interrupt {
            self.validate_buffer(VAddr::new(entry.buf_vaddr), entry.length)?;
        }

        let now = self.now();
        let software = self.cluster.config().software;
        let node = self.cluster.node_mut(n);
        let (wq_index, wq_phase) = {
            let cur = &node.app_qps[qp.index()];
            (cur.wq_index, cur.wq_phase)
        };
        let wq_va = node.rmc.qps[qp.index()].wq_entry_addr(wq_index);
        let bytes = entry.encode(wq_phase);
        let pa = node.translate(wq_va).expect("WQ rings pinned");
        let agent = node.core_agent(self.core);
        let store = node
            .hierarchy
            .access(agent, pa, AccessKind::Write, now)
            .latency;
        node.write_virt(wq_va, &bytes).expect("WQ mapped");

        let posted_index = wq_index;
        let entries = node.rmc.qps[qp.index()].entries();
        let cur = &mut node.app_qps[qp.index()];
        cur.outstanding += 1;
        cur.slot_busy[posted_index as usize] = true;
        cur.wq_index += 1;
        if cur.wq_index == entries {
            cur.wq_index = 0;
            cur.wq_phase = !cur.wq_phase;
        }

        self.elapsed += software.post_cost + store;
        let t = self.now();
        self.cluster.notify_rgp(self.engine, t, n, qp);
        Ok(posted_index)
    }

    /// Schedules an asynchronous remote read of `len` bytes from
    /// `<dst, ctx, offset>` into the local buffer at `buf` (the paper's
    /// `rmc_read_async`). Returns the WQ slot index for callback matching.
    ///
    /// # Errors
    ///
    /// [`ApiError::WqFull`] when all slots are in flight, plus the usual
    /// validation errors.
    pub fn post_read(
        &mut self,
        qp: QpId,
        dst: NodeId,
        ctx: CtxId,
        offset: u64,
        buf: VAddr,
        len: u64,
    ) -> Result<u16, ApiError> {
        if len == 0 || !len.is_multiple_of(CACHE_LINE_BYTES) {
            return Err(ApiError::BadLength);
        }
        self.post(qp, WqEntry::read(dst, ctx, offset, buf.raw(), len))
    }

    /// Schedules an asynchronous remote write of `len` bytes from the local
    /// buffer at `buf` to `<dst, ctx, offset>` (`rmc_write_async`).
    ///
    /// # Errors
    ///
    /// As [`NodeApi::post_read`].
    pub fn post_write(
        &mut self,
        qp: QpId,
        dst: NodeId,
        ctx: CtxId,
        offset: u64,
        buf: VAddr,
        len: u64,
    ) -> Result<u16, ApiError> {
        if len == 0 || !len.is_multiple_of(CACHE_LINE_BYTES) {
            return Err(ApiError::BadLength);
        }
        self.post(qp, WqEntry::write(dst, ctx, offset, buf.raw(), len))
    }

    /// Schedules a remote fetch-and-add of `delta` on the 8-byte word at
    /// `<dst, ctx, offset>`; the previous value lands at `result_buf`.
    ///
    /// # Errors
    ///
    /// As [`NodeApi::post_read`] (atomics have a fixed 8-byte length).
    pub fn post_fetch_add(
        &mut self,
        qp: QpId,
        dst: NodeId,
        ctx: CtxId,
        offset: u64,
        result_buf: VAddr,
        delta: u64,
    ) -> Result<u16, ApiError> {
        self.post(
            qp,
            WqEntry::fetch_add(dst, ctx, offset, result_buf.raw(), delta),
        )
    }

    /// Schedules a remote compare-and-swap on the 8-byte word at
    /// `<dst, ctx, offset>`; the observed value lands at `result_buf`.
    ///
    /// # Errors
    ///
    /// As [`NodeApi::post_read`].
    #[allow(clippy::too_many_arguments)] // mirrors the paper's rmc_comp_swap_async signature
    pub fn post_comp_swap(
        &mut self,
        qp: QpId,
        dst: NodeId,
        ctx: CtxId,
        offset: u64,
        result_buf: VAddr,
        expected: u64,
        new: u64,
    ) -> Result<u16, ApiError> {
        self.post(
            qp,
            WqEntry::comp_swap(dst, ctx, offset, result_buf.raw(), expected, new),
        )
    }

    /// Sends a remote interrupt carrying an 8-byte `payload` to `dst`'s
    /// registered handler core — the §8 extension ("the ability to issue
    /// remote interrupts as part of an RMC command, so that nodes can
    /// communicate without polling"). Completes locally like any one-sided
    /// operation; dropped (with a counter) if the destination registered
    /// no handler.
    ///
    /// # Errors
    ///
    /// As [`NodeApi::post_read`].
    pub fn post_interrupt(
        &mut self,
        qp: QpId,
        dst: NodeId,
        ctx: CtxId,
        payload: u64,
    ) -> Result<u16, ApiError> {
        self.post(qp, WqEntry::interrupt(dst, ctx, payload))
    }

    /// Polls the completion queue, draining every fresh entry (the paper's
    /// CQ-polling loop). Charges poll plus per-completion dispatch costs.
    pub fn poll_cq(&mut self, qp: QpId) -> Vec<Completion> {
        let software = self.cluster.config().software;
        let comps = self.cluster.drain_cq(self.node, qp);
        self.elapsed += software.cq_poll_cost + software.completion_cost * comps.len() as u64;
        comps
    }

    /// Operations posted but not yet observed complete on `qp`.
    pub fn outstanding(&self, qp: QpId) -> u16 {
        self.cluster.node(self.node).app_qps[qp.index()].outstanding
    }

    /// The WQ slot index the next successful post will occupy. Useful for
    /// associating per-operation resources (e.g. a scratch source line that
    /// must stay stable until the RGP reads it) with the slot.
    pub fn next_wq_index(&self, qp: QpId) -> u16 {
        self.cluster.node(self.node).app_qps[qp.index()].wq_index
    }

    /// Ring capacity of `qp`.
    pub fn qp_capacity(&self, qp: QpId) -> u16 {
        self.cluster.node(self.node).rmc.qps[qp.index()].entries()
    }

    /// Registers (or updates) a tenant on this node, making its weight and
    /// SLO class visible to the RGP's QoS scheduler. Setup path: no time
    /// charge.
    pub fn register_tenant(&mut self, spec: crate::tenancy::TenantSpec) {
        self.cluster.node_mut(self.node).tenants.register(spec);
    }

    /// Creates a queue pair owned by this core and bound to `tenant`
    /// (which must be registered). Setup path: no time charge.
    ///
    /// # Errors
    ///
    /// Returns [`ApiError::OutOfMemory`] if the rings cannot be allocated.
    ///
    /// # Panics
    ///
    /// Panics if `tenant` is not registered or `ctx` does not exist.
    pub fn create_tenant_qp(
        &mut self,
        ctx: CtxId,
        tenant: sonuma_protocol::TenantId,
    ) -> Result<QpId, ApiError> {
        let node = NodeId(self.node as u16);
        let core = self.core;
        self.cluster
            .create_tenant_qp(node, ctx, core, tenant)
            .map_err(|_| ApiError::OutOfMemory)
    }

    /// The tenant registration owning `qp`, if any.
    pub fn qp_tenant(&self, qp: QpId) -> Option<crate::tenancy::TenantSpec> {
        self.cluster.node(self.node).tenants.qp_tenant(qp).copied()
    }

    /// Local memory read with cache-timing charges (one hierarchy access
    /// per line touched).
    ///
    /// # Errors
    ///
    /// Returns [`ApiError::Unmapped`] if the range is not mapped.
    pub fn local_read(&mut self, va: VAddr, buf: &mut [u8]) -> Result<(), ApiError> {
        self.local_access(va, buf.len() as u64, AccessKind::Read)?;
        self.cluster
            .node(self.node)
            .read_virt(va, buf)
            .map_err(|_| ApiError::Unmapped(va))
    }

    /// Local memory write with cache-timing charges.
    ///
    /// # Errors
    ///
    /// Returns [`ApiError::Unmapped`] if the range is not mapped.
    pub fn local_write(&mut self, va: VAddr, data: &[u8]) -> Result<(), ApiError> {
        self.local_access(va, data.len() as u64, AccessKind::Write)?;
        self.cluster
            .node_mut(self.node)
            .write_virt(va, data)
            .map_err(|_| ApiError::Unmapped(va))
    }

    /// Reads a little-endian `u64` from local memory.
    ///
    /// # Errors
    ///
    /// Returns [`ApiError::Unmapped`] if the address is not mapped.
    pub fn local_load_u64(&mut self, va: VAddr) -> Result<u64, ApiError> {
        let mut buf = [0u8; 8];
        self.local_read(va, &mut buf)?;
        Ok(u64::from_le_bytes(buf))
    }

    /// Writes a little-endian `u64` to local memory.
    ///
    /// # Errors
    ///
    /// Returns [`ApiError::Unmapped`] if the address is not mapped.
    pub fn local_store_u64(&mut self, va: VAddr, value: u64) -> Result<(), ApiError> {
        self.local_write(va, &value.to_le_bytes())
    }

    fn local_access(&mut self, va: VAddr, len: u64, kind: AccessKind) -> Result<(), ApiError> {
        if len == 0 {
            return Ok(());
        }
        self.validate_buffer(va, len)?;
        let mut t = self.now();
        let node = self.cluster.node_mut(self.node);
        let agent = node.core_agent(self.core);
        let mut charged = SimTime::ZERO;
        for (line, _, _) in sonuma_memory::addr::split_into_lines(va.raw(), len) {
            let pa = node
                .translate(VAddr::new(line))
                .map_err(|_| ApiError::Unmapped(VAddr::new(line)))?;
            let lat = node.hierarchy.access(agent, pa, kind, t).latency;
            t += lat;
            charged += lat;
        }
        self.elapsed += charged;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn api_error_displays() {
        for e in [
            ApiError::WqFull,
            ApiError::BadQp,
            ApiError::BadLength,
            ApiError::Unmapped(VAddr::new(0x10)),
            ApiError::OutOfMemory,
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
