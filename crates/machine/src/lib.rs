//! Full-system model: nodes, cores, OS driver, and the cluster world that
//! wires the RMC pipelines to the memory fabric.
//!
//! This crate is the reproduction's stand-in for Flexus full-system
//! simulation. A [`Cluster`] owns every node (physical memory, coherent
//! cache hierarchy, RMC, cores) plus the fabric, and is driven as the world
//! of a `sonuma_sim::Engine`. The three RMC pipelines of the paper (§4.2)
//! are implemented as event chains over that world:
//!
//! * **RGP** — `Cluster::rgp_service` polls work queues (reading real WQ
//!   bytes through the coherence hierarchy), allocates tids in the ITT,
//!   unrolls multi-line requests, and injects request packets;
//! * **RRPP** — `Cluster::rrpp_handle` statelessly services requests:
//!   CT/CT$ lookup, bounds check, TLB/page-walk translation, a local
//!   coherent memory access (including atomics), and exactly one reply;
//! * **RCP** — `Cluster::rcp_handle` matches replies via the ITT, writes
//!   payloads into application buffers, and posts CQ entries.
//!
//! Applications are [`AppProcess`] state machines running on simulated
//! cores in run-to-block style: each wake-up performs local work and API
//! calls (which charge simulated time) and then blocks on a timer, a
//! completion queue, or a memory watch — the model of the paper's polling
//! loops, with the coherence-invalidation wake-up made explicit.

pub mod api;
pub mod cluster;
pub mod config;
pub mod node;
pub mod process;

pub use api::{ApiError, NodeApi};
pub use cluster::Cluster;
pub use config::{MachineConfig, SoftwareTiming};
pub use node::Node;
pub use process::{AppProcess, Completion, Step, Wake};

/// Convenience alias: the event engine specialized to the cluster world.
pub type ClusterEngine = sonuma_sim::Engine<Cluster>;
