//! Full-system model: nodes, cores, OS driver, and the cluster world that
//! wires the RMC pipelines to the memory fabric.
//!
//! This crate is the reproduction's stand-in for Flexus full-system
//! simulation. A [`Cluster`] owns every node (physical memory, coherent
//! cache hierarchy, RMC, cores) plus the fabric, and is driven as the world
//! of a `sonuma_sim::Engine`. The crate is layered:
//!
//! * [`cluster`] — world ownership and the OS-driver surface of §5.1
//!   (contexts, queue pairs, process attachment);
//! * [`pipeline`] — one module per RMC pipeline (§4.2), each with its own
//!   state machine and backpressure counters:
//!   [`pipeline::rgp`] polls work queues (reading real WQ bytes through
//!   the coherence hierarchy), allocates tids in the ITT, unrolls
//!   multi-line requests, and injects request packets;
//!   [`pipeline::rrpp`] statelessly services requests — CT/CT$ lookup,
//!   bounds check, TLB/page-walk translation, a local coherent memory
//!   access (including atomics), and exactly one reply;
//!   [`pipeline::rcp`] matches replies via the ITT, writes payloads into
//!   application buffers, and posts CQ entries.
//!   A [`PipelineStats`] snapshot exposes every pipeline counter per node;
//! * `sched` — run-to-block core scheduling: CQ wake-ups, memory watches,
//!   and remote-interrupt delivery;
//! * [`shard`] — [`ShardedCluster`]: the cluster partitioned into
//!   per-thread shards (each a [`Cluster`] owning a slice of nodes, with
//!   fabric sends staged in a mailbox), advanced in conservative epochs
//!   with a deterministic fabric merge at each barrier, so `--threads N`
//!   runs are bit-identical to serial ones;
//! * [`backend`] — [`SonumaBackend`], the soNUMA implementation of the
//!   transport-agnostic `sonuma_protocol::RemoteBackend` contract, so the
//!   same request streams can run over the baselines for Table 2.
//!
//! Applications are [`AppProcess`] state machines running on simulated
//! cores in run-to-block style: each wake-up performs local work and API
//! calls (which charge simulated time) and then blocks on a timer, a
//! completion queue, or a memory watch — the model of the paper's polling
//! loops, with the coherence-invalidation wake-up made explicit.

pub mod api;
pub mod backend;
pub mod cluster;
pub mod config;
pub mod event;
pub mod fault;
pub mod node;
pub mod pipeline;
pub mod process;
pub mod sched;
pub mod shard;
pub mod tenancy;

pub use api::{ApiError, NodeApi};
pub use backend::SonumaBackend;
pub use cluster::Cluster;
pub use config::{MachineConfig, SoftwareTiming};
pub use event::{ClusterEvent, WakeReason};
pub use node::Node;
pub use pipeline::rgp::{QpClass, QpScheduler, SchedPolicy};
pub use pipeline::{PipelineStats, RcpState, RgpPhase, RgpState, RrppState};
pub use process::{AppProcess, Completion, Step, Wake};
pub use shard::{ShardedCluster, ADVANCE_ROUND_EVENTS};
pub use tenancy::{SloClass, TenantSpec, TenantStats, TenantTable};

/// Convenience alias: the typed event engine specialized to the cluster
/// world (events are [`ClusterEvent`]s dispatched by value — see
/// [`event`]).
pub type ClusterEngine = sonuma_sim::EventEngine<Cluster>;
