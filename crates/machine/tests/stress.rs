//! Stress tests for resource-exhaustion corners: ITT smaller than the WQ,
//! CQ rings wrapping many times, and RGP fairness across queue pairs.

use std::cell::RefCell;
use std::rc::Rc;

use sonuma_machine::{AppProcess, Cluster, ClusterEngine, MachineConfig, NodeApi, Step, Wake};
use sonuma_memory::VAddr;
use sonuma_protocol::{CtxId, NodeId, QpId};

const CTX: CtxId = CtxId(0);

fn setup(mut config: MachineConfig) -> (Cluster, ClusterEngine) {
    config.nodes = 2;
    let mut cluster = Cluster::new(config);
    cluster.create_context(CTX, 1 << 20).unwrap();
    (cluster, ClusterEngine::new())
}

/// Pipelines `total` reads as hard as the WQ allows, counting completions.
struct Pipeliner {
    qp: QpId,
    total: u32,
    issued: u32,
    completed: Rc<RefCell<u32>>,
    buf: VAddr,
}

impl AppProcess for Pipeliner {
    fn wake(&mut self, api: &mut NodeApi<'_>, why: Wake) -> Step {
        if matches!(why, Wake::Start) {
            self.buf = api
                .heap_alloc(64 * api.qp_capacity(self.qp) as u64)
                .unwrap();
        }
        if let Wake::CqReady(comps) = &why {
            for c in comps {
                assert!(c.status.is_ok());
                *self.completed.borrow_mut() += 1;
            }
        }
        while self.issued < self.total {
            let slot = api.next_wq_index(self.qp) as u64;
            let buf = VAddr::new(self.buf.raw() + slot * 64);
            match api.post_read(self.qp, NodeId(1), CTX, 0, buf, 64) {
                Ok(_) => self.issued += 1,
                Err(_) => return Step::WaitCq(self.qp),
            }
        }
        if *self.completed.borrow() < self.total {
            return Step::WaitCq(self.qp);
        }
        Step::Done
    }
}

/// An ITT far smaller than the WQ ring: the RGP must stall on tid
/// exhaustion and retry, losing nothing.
#[test]
fn itt_exhaustion_stalls_but_loses_nothing() {
    let mut config = MachineConfig::simulated_hardware(2);
    config.itt_entries = 4; // WQ has 64 slots, so the RGP outpaces the ITT
    let (mut cluster, mut engine) = setup(config);
    let qp = cluster.create_qp(NodeId(0), CTX, 0).unwrap();
    let completed = Rc::new(RefCell::new(0u32));
    cluster.spawn(
        &mut engine,
        NodeId(0),
        0,
        Box::new(Pipeliner {
            qp,
            total: 300,
            issued: 0,
            completed: completed.clone(),
            buf: VAddr::new(0),
        }),
    );
    engine.run(&mut cluster);
    assert_eq!(*completed.borrow(), 300);
    assert_eq!(cluster.nodes[0].rmc.itt.in_flight(), 0, "no leaked tids");
    assert_eq!(cluster.nodes[0].rmc.itt.completed(), 300);
}

/// Tiny rings wrapping dozens of times: phase-bit bookkeeping on both WQ
/// and CQ must stay coherent across many wraps.
#[test]
fn queue_rings_survive_many_wraps() {
    let mut config = MachineConfig::simulated_hardware(2);
    config.qp_entries = 4; // 300 ops => 75 wraps
    let (mut cluster, mut engine) = setup(config);
    let qp = cluster.create_qp(NodeId(0), CTX, 0).unwrap();
    let completed = Rc::new(RefCell::new(0u32));
    cluster.spawn(
        &mut engine,
        NodeId(0),
        0,
        Box::new(Pipeliner {
            qp,
            total: 300,
            issued: 0,
            completed: completed.clone(),
            buf: VAddr::new(0),
        }),
    );
    engine.run(&mut cluster);
    assert_eq!(*completed.borrow(), 300);
    assert_eq!(cluster.nodes[0].rmc.qps[qp.index()].wq_consumed(), 300);
    assert_eq!(cluster.nodes[0].rmc.qps[qp.index()].cq_produced(), 300);
}

/// Two QPs streaming concurrently: RGP round-robin must give both forward
/// progress (neither finishes an order of magnitude after the other).
#[test]
fn rgp_is_fair_across_queue_pairs() {
    struct TimedPipeliner {
        inner: Pipeliner,
        finished_at: Rc<RefCell<f64>>,
    }
    impl AppProcess for TimedPipeliner {
        fn wake(&mut self, api: &mut NodeApi<'_>, why: Wake) -> Step {
            let step = self.inner.wake(api, why);
            if matches!(step, Step::Done) {
                *self.finished_at.borrow_mut() = api.now().as_us_f64();
            }
            step
        }
    }

    let (mut cluster, mut engine) = setup(MachineConfig::simulated_hardware(2));
    // Two cores, two QPs, one node.
    let mut config = MachineConfig::simulated_hardware(2);
    config.cores_per_node = 2;
    let (mut cluster2, mut engine2) = setup(config);
    std::mem::swap(&mut cluster, &mut cluster2);
    std::mem::swap(&mut engine, &mut engine2);

    let mut finishes = Vec::new();
    for core in 0..2 {
        let qp = cluster.create_qp(NodeId(0), CTX, core).unwrap();
        let completed = Rc::new(RefCell::new(0u32));
        let finished_at = Rc::new(RefCell::new(0.0f64));
        finishes.push(finished_at.clone());
        cluster.spawn(
            &mut engine,
            NodeId(0),
            core,
            Box::new(TimedPipeliner {
                inner: Pipeliner {
                    qp,
                    total: 200,
                    issued: 0,
                    completed,
                    buf: VAddr::new(0),
                },
                finished_at,
            }),
        );
    }
    engine.run(&mut cluster);
    let (a, b) = (*finishes[0].borrow(), *finishes[1].borrow());
    assert!(a > 0.0 && b > 0.0, "both streams must finish");
    let ratio = a.max(b) / a.min(b);
    assert!(
        ratio < 1.5,
        "RGP starvation: finish times {a:.1} vs {b:.1} us"
    );
}
