//! RGP backpressure: when every ITT tid is in flight the pipeline must
//! stall and retry — and once tids free up, drain the work queue without
//! losing or double-issuing a single WQ entry (§4.2's flow control).

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use sonuma_machine::{
    AppProcess, Cluster, ClusterEngine, MachineConfig, NodeApi, RgpPhase, Step, Wake,
};
use sonuma_memory::VAddr;
use sonuma_protocol::{CtxId, NodeId, QpId};

const CTX: CtxId = CtxId(0);

/// Posts `total` remote reads as fast as the WQ accepts them, then drains
/// completions, recording every completed WQ index.
struct Flooder {
    qp: QpId,
    dst: NodeId,
    total: u32,
    posted: u32,
    completed: Rc<RefCell<HashMap<u16, u32>>>,
    done: Rc<RefCell<u32>>,
    buf: Option<VAddr>,
}

impl Flooder {
    fn pump(&mut self, api: &mut NodeApi<'_>) -> Step {
        let buf = self.buf.expect("allocated on start");
        while self.posted < self.total {
            // Distinct offsets so each request is distinguishable; 4-line
            // reads keep several line transactions per tid in flight.
            let offset = u64::from(self.posted % 64) * 256;
            match api.post_read(self.qp, self.dst, CTX, offset, buf, 256) {
                Ok(_) => self.posted += 1,
                Err(_) => break, // WQ full: wait for completions
            }
        }
        if *self.done.borrow() == self.total {
            return Step::Done;
        }
        Step::WaitCq(self.qp)
    }
}

impl AppProcess for Flooder {
    fn wake(&mut self, api: &mut NodeApi<'_>, why: Wake) -> Step {
        match why {
            Wake::Start => {
                self.buf = Some(api.heap_alloc(256).unwrap());
                self.pump(api)
            }
            Wake::CqReady(comps) => {
                for c in &comps {
                    assert!(c.status.is_ok(), "completion error: {:?}", c.status);
                    *self.completed.borrow_mut().entry(c.wq_index).or_insert(0) += 1;
                    *self.done.borrow_mut() += 1;
                }
                // Pick up stragglers the wake-up did not carry.
                for c in api.poll_cq(self.qp) {
                    assert!(c.status.is_ok());
                    *self.completed.borrow_mut().entry(c.wq_index).or_insert(0) += 1;
                    *self.done.borrow_mut() += 1;
                }
                self.pump(api)
            }
            other => panic!("unexpected wake {other:?}"),
        }
    }
}

/// Tiny ITT + deep WQ: the RGP must hit ITT-full stalls, retry, and still
/// deliver exactly one completion per posted WQ entry.
#[test]
fn itt_exhaustion_stalls_then_drains_losslessly() {
    let mut config = MachineConfig::simulated_hardware(2);
    config.itt_entries = 2; // force backpressure immediately
    config.qp_entries = 32;
    let mut cluster = Cluster::new(config);
    cluster.create_context(CTX, 1 << 20).unwrap();
    let mut engine = ClusterEngine::new();

    let qp = cluster.create_qp(NodeId(0), CTX, 0).unwrap();
    let completed: Rc<RefCell<HashMap<u16, u32>>> = Rc::new(RefCell::new(HashMap::new()));
    let done = Rc::new(RefCell::new(0u32));
    let total = 120u32;
    cluster.spawn(
        &mut engine,
        NodeId(0),
        0,
        Box::new(Flooder {
            qp,
            dst: NodeId(1),
            total,
            posted: 0,
            completed: completed.clone(),
            done: done.clone(),
            buf: None,
        }),
    );
    engine.run(&mut cluster);

    assert_eq!(*done.borrow(), total, "every posted request completes");
    let stats = cluster.pipeline_stats(NodeId(0));
    assert_eq!(
        stats.rgp_requests,
        u64::from(total),
        "RGP launched each WQ entry once"
    );
    assert_eq!(
        stats.rgp_lines,
        u64::from(total) * 4,
        "4 lines per 256 B read"
    );
    assert_eq!(stats.rcp_completions, u64::from(total));
    assert!(
        stats.rgp_itt_stalls > 0,
        "a 2-entry ITT under 120 requests must stall the RGP"
    );

    // No WQ entry lost or double-issued: completions per ring slot match
    // the number of times the application cycled through that slot.
    let per_slot = completed.borrow();
    let slots = 32u32;
    for slot in 0..slots {
        let full_rounds = total / slots;
        let expect = full_rounds + u32::from(slot < total % slots);
        assert_eq!(
            per_slot.get(&(slot as u16)).copied().unwrap_or(0),
            expect,
            "WQ slot {slot} completed the wrong number of times"
        );
    }

    // Steady state restored: nothing left in flight, pipeline idle.
    assert_eq!(cluster.nodes[0].rmc.itt.in_flight(), 0, "no leaked tids");
    assert_eq!(cluster.nodes[0].rmc.rgp.phase, RgpPhase::Idle);
}

/// The stall counter stays at zero when the ITT is deep enough — the
/// backpressure path is attributable, not ambient noise.
#[test]
fn ample_itt_never_stalls() {
    let mut config = MachineConfig::simulated_hardware(2);
    config.itt_entries = 64;
    let mut cluster = Cluster::new(config);
    cluster.create_context(CTX, 1 << 20).unwrap();
    let mut engine = ClusterEngine::new();

    let qp = cluster.create_qp(NodeId(0), CTX, 0).unwrap();
    let completed = Rc::new(RefCell::new(HashMap::new()));
    let done = Rc::new(RefCell::new(0u32));
    cluster.spawn(
        &mut engine,
        NodeId(0),
        0,
        Box::new(Flooder {
            qp,
            dst: NodeId(1),
            total: 40,
            posted: 0,
            completed,
            done: done.clone(),
            buf: None,
        }),
    );
    engine.run(&mut cluster);

    assert_eq!(*done.borrow(), 40);
    let stats = cluster.pipeline_stats(NodeId(0));
    assert_eq!(stats.rgp_itt_stalls, 0, "64 tids cover a 64-slot WQ");
    assert_eq!(stats.rgp_requests, 40);
}
