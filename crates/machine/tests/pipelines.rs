//! End-to-end tests of the three RMC pipelines over the full machine model:
//! real WQ/CQ bytes in simulated memory, translation, fabric traversal,
//! stateless remote processing, and completion delivery.

use std::cell::RefCell;
use std::rc::Rc;

use sonuma_machine::{AppProcess, Cluster, ClusterEngine, MachineConfig, NodeApi, Step, Wake};
use sonuma_memory::VAddr;
use sonuma_protocol::{CtxId, NodeId, QpId, Status};
use sonuma_sim::SimTime;

const CTX: CtxId = CtxId(0);

fn setup(config: MachineConfig) -> (Cluster, ClusterEngine) {
    let mut cluster = Cluster::new(config);
    cluster.create_context(CTX, 1 << 20).unwrap();
    (cluster, ClusterEngine::new())
}

/// Shared result cell for extracting observations from processes.
type Out<T> = Rc<RefCell<T>>;

#[derive(Default, Debug)]
struct ReadResult {
    data: Vec<u8>,
    status: Option<Status>,
    latency: SimTime,
}

/// Posts one remote read and records payload, status and latency.
struct ReadOnce {
    qp: QpId,
    dst: NodeId,
    offset: u64,
    len: u64,
    buf: Option<VAddr>,
    posted_at: SimTime,
    out: Out<ReadResult>,
}

impl AppProcess for ReadOnce {
    fn wake(&mut self, api: &mut NodeApi<'_>, why: Wake) -> Step {
        match why {
            Wake::Start => {
                let buf = api.heap_alloc(self.len).unwrap();
                self.buf = Some(buf);
                self.posted_at = api.now();
                api.post_read(self.qp, self.dst, CTX, self.offset, buf, self.len)
                    .unwrap();
                Step::WaitCq(self.qp)
            }
            Wake::CqReady(comps) => {
                assert_eq!(comps.len(), 1);
                let mut o = self.out.borrow_mut();
                o.status = Some(comps[0].status);
                o.latency = api.now() - self.posted_at;
                if comps[0].status.is_ok() {
                    o.data = vec![0u8; self.len as usize];
                    api.local_read(self.buf.unwrap(), &mut o.data).unwrap();
                }
                Step::Done
            }
            other => panic!("unexpected wake {other:?}"),
        }
    }
}

/// Issues `reps` sequential synchronous reads and records the latency of
/// the last one (steady state: warm TLBs, CT$, queue lines — the regime the
/// paper's microbenchmarks measure).
struct ReadSteady {
    qp: QpId,
    dst: NodeId,
    offset: u64,
    len: u64,
    reps: u32,
    buf: Option<VAddr>,
    posted_at: SimTime,
    out: Out<ReadResult>,
}

impl AppProcess for ReadSteady {
    fn wake(&mut self, api: &mut NodeApi<'_>, why: Wake) -> Step {
        match why {
            Wake::Start => {
                let buf = api.heap_alloc(self.len).unwrap();
                self.buf = Some(buf);
                self.posted_at = api.now();
                api.post_read(self.qp, self.dst, CTX, self.offset, buf, self.len)
                    .unwrap();
                Step::WaitCq(self.qp)
            }
            Wake::CqReady(comps) => {
                assert!(comps[0].status.is_ok());
                self.reps -= 1;
                if self.reps == 0 {
                    self.out.borrow_mut().latency = api.now() - self.posted_at;
                    self.out.borrow_mut().status = Some(comps[0].status);
                    return Step::Done;
                }
                self.posted_at = api.now();
                api.post_read(
                    self.qp,
                    self.dst,
                    CTX,
                    self.offset,
                    self.buf.unwrap(),
                    self.len,
                )
                .unwrap();
                Step::WaitCq(self.qp)
            }
            other => panic!("unexpected wake {other:?}"),
        }
    }
}

fn run_read_steady(config: MachineConfig, len: u64) -> SimTime {
    let (mut cluster, mut engine) = setup(config);
    let qp = cluster.create_qp(NodeId(0), CTX, 0).unwrap();
    let out: Out<ReadResult> = Rc::new(RefCell::new(ReadResult::default()));
    cluster.spawn(
        &mut engine,
        NodeId(0),
        0,
        Box::new(ReadSteady {
            qp,
            dst: NodeId(1),
            offset: 0,
            len,
            reps: 8,
            buf: None,
            posted_at: SimTime::ZERO,
            out: out.clone(),
        }),
    );
    engine.run(&mut cluster);
    let latency = out.borrow().latency;
    latency
}

fn run_read(config: MachineConfig, offset: u64, len: u64, pattern: Option<&[u8]>) -> ReadResult {
    let (mut cluster, mut engine) = setup(config);
    if let Some(p) = pattern {
        cluster.write_ctx(NodeId(1), CTX, offset, p);
    }
    let qp = cluster.create_qp(NodeId(0), CTX, 0).unwrap();
    let out: Out<ReadResult> = Rc::new(RefCell::new(ReadResult::default()));
    cluster.spawn(
        &mut engine,
        NodeId(0),
        0,
        Box::new(ReadOnce {
            qp,
            dst: NodeId(1),
            offset,
            len,
            buf: None,
            posted_at: SimTime::ZERO,
            out: out.clone(),
        }),
    );
    engine.run(&mut cluster);
    Rc::try_unwrap(out).unwrap().into_inner()
}

#[test]
fn remote_read_moves_correct_bytes() {
    let pattern: Vec<u8> = (0..64u32).map(|i| (i * 7 + 3) as u8).collect();
    let r = run_read(
        MachineConfig::simulated_hardware(2),
        4096,
        64,
        Some(&pattern),
    );
    assert_eq!(r.status, Some(Status::Ok));
    assert_eq!(r.data, pattern);
}

#[test]
fn remote_read_latency_is_about_300ns_on_simulated_hardware() {
    let lat = run_read_steady(MachineConfig::simulated_hardware(2), 64);
    let ns = lat.as_ns_f64();
    assert!(
        (220.0..420.0).contains(&ns),
        "64B remote read steady-state latency {ns:.1} ns; expected ~300 ns"
    );
}

#[test]
fn remote_read_latency_is_microseconds_on_dev_platform() {
    let lat = run_read_steady(MachineConfig::dev_platform(2), 64);
    let us = lat.as_us_f64();
    assert!(
        (1.2..2.0).contains(&us),
        "64B dev-platform read steady-state latency {us:.2} us; expected ~1.5 us"
    );
}

#[test]
fn dev_platform_is_roughly_5x_slower_than_hardware() {
    // §7.2: "The baseline latency is 1.5 us, which is 5x the latency on the
    // simulated hardware."
    let hw = run_read_steady(MachineConfig::simulated_hardware(2), 64);
    let dev = run_read_steady(MachineConfig::dev_platform(2), 64);
    let ratio = dev.as_ns_f64() / hw.as_ns_f64();
    assert!(
        (3.0..8.0).contains(&ratio),
        "dev/hw latency ratio {ratio:.1}; paper reports ~5x"
    );
}

#[test]
fn multi_line_read_reassembles_in_order() {
    let pattern: Vec<u8> = (0..8192u32).map(|i| (i % 251) as u8).collect();
    let r = run_read(
        MachineConfig::simulated_hardware(2),
        8192,
        8192,
        Some(&pattern),
    );
    assert_eq!(r.status, Some(Status::Ok));
    assert_eq!(r.data, pattern);
}

#[test]
fn out_of_bounds_read_delivers_error_completion() {
    // Segment is 1 MiB; read starting at the last line but spanning beyond.
    let r = run_read(
        MachineConfig::simulated_hardware(2),
        (1 << 20) - 64,
        128,
        None,
    );
    assert_eq!(r.status, Some(Status::OutOfBounds));
    assert!(r.data.is_empty());
}

/// Posts one remote write, then reports completion.
struct WriteOnce {
    qp: QpId,
    dst: NodeId,
    offset: u64,
    payload: Vec<u8>,
    done: Out<Option<Status>>,
}

impl AppProcess for WriteOnce {
    fn wake(&mut self, api: &mut NodeApi<'_>, why: Wake) -> Step {
        match why {
            Wake::Start => {
                let buf = api.heap_alloc(self.payload.len() as u64).unwrap();
                api.local_write(buf, &self.payload).unwrap();
                api.post_write(
                    self.qp,
                    self.dst,
                    CTX,
                    self.offset,
                    buf,
                    self.payload.len() as u64,
                )
                .unwrap();
                Step::WaitCq(self.qp)
            }
            Wake::CqReady(comps) => {
                *self.done.borrow_mut() = Some(comps[0].status);
                Step::Done
            }
            other => panic!("unexpected wake {other:?}"),
        }
    }
}

#[test]
fn remote_write_lands_in_destination_segment() {
    let (mut cluster, mut engine) = setup(MachineConfig::simulated_hardware(2));
    let qp = cluster.create_qp(NodeId(0), CTX, 0).unwrap();
    let payload: Vec<u8> = (0..128u32).map(|i| (i * 3 + 1) as u8).collect();
    let done: Out<Option<Status>> = Rc::new(RefCell::new(None));
    cluster.spawn(
        &mut engine,
        NodeId(0),
        0,
        Box::new(WriteOnce {
            qp,
            dst: NodeId(1),
            offset: 256,
            payload: payload.clone(),
            done: done.clone(),
        }),
    );
    engine.run(&mut cluster);
    assert_eq!(*done.borrow(), Some(Status::Ok));
    let mut back = vec![0u8; payload.len()];
    cluster.read_ctx(NodeId(1), CTX, 256, &mut back);
    assert_eq!(back, payload);
    assert_eq!(cluster.total_bytes_written(), 128);
}

/// Issues fetch-add then compare-and-swap against the same remote word.
struct AtomicDance {
    qp: QpId,
    dst: NodeId,
    buf: Option<VAddr>,
    phase: u8,
    observed: Out<Vec<u64>>,
}

impl AppProcess for AtomicDance {
    fn wake(&mut self, api: &mut NodeApi<'_>, why: Wake) -> Step {
        match (self.phase, why) {
            (0, Wake::Start) => {
                let buf = api.heap_alloc(64).unwrap();
                self.buf = Some(buf);
                api.post_fetch_add(self.qp, self.dst, CTX, 512, buf, 5)
                    .unwrap();
                self.phase = 1;
                Step::WaitCq(self.qp)
            }
            (1, Wake::CqReady(c)) => {
                assert!(c[0].status.is_ok());
                let old = api.local_load_u64(self.buf.unwrap()).unwrap();
                self.observed.borrow_mut().push(old);
                // CAS expecting the post-add value.
                api.post_comp_swap(self.qp, self.dst, CTX, 512, self.buf.unwrap(), old + 5, 999)
                    .unwrap();
                self.phase = 2;
                Step::WaitCq(self.qp)
            }
            (2, Wake::CqReady(c)) => {
                assert!(c[0].status.is_ok());
                let seen = api.local_load_u64(self.buf.unwrap()).unwrap();
                self.observed.borrow_mut().push(seen);
                Step::Done
            }
            (p, w) => panic!("unexpected ({p}, {w:?})"),
        }
    }
}

#[test]
fn remote_atomics_return_old_values_and_update_memory() {
    let (mut cluster, mut engine) = setup(MachineConfig::simulated_hardware(2));
    cluster.write_ctx(NodeId(1), CTX, 512, &37u64.to_le_bytes());
    let qp = cluster.create_qp(NodeId(0), CTX, 0).unwrap();
    let observed: Out<Vec<u64>> = Rc::new(RefCell::new(Vec::new()));
    cluster.spawn(
        &mut engine,
        NodeId(0),
        0,
        Box::new(AtomicDance {
            qp,
            dst: NodeId(1),
            buf: None,
            phase: 0,
            observed: observed.clone(),
        }),
    );
    engine.run(&mut cluster);
    // fetch-add observed 37; CAS observed 42 and swapped in 999.
    assert_eq!(*observed.borrow(), vec![37, 42]);
    let mut back = [0u8; 8];
    cluster.read_ctx(NodeId(1), CTX, 512, &mut back);
    assert_eq!(u64::from_le_bytes(back), 999);
}

/// Waits for a remote write into its watched mailbox.
struct Watcher {
    mailbox_offset: u64,
    woke: Out<Option<u64>>,
}

impl AppProcess for Watcher {
    fn wake(&mut self, api: &mut NodeApi<'_>, why: Wake) -> Step {
        let mailbox = VAddr::new(api.ctx_base(CTX).raw() + self.mailbox_offset);
        match why {
            Wake::Start => Step::WaitMemory {
                addr: mailbox,
                len: 64,
            },
            Wake::MemoryTouched { .. } => {
                let v = api.local_load_u64(mailbox).unwrap();
                *self.woke.borrow_mut() = Some(v);
                Step::Done
            }
            other => panic!("unexpected wake {other:?}"),
        }
    }
}

/// Sleeps briefly, then writes into the peer's mailbox.
struct Poker {
    qp: QpId,
    dst: NodeId,
    mailbox_offset: u64,
}

impl AppProcess for Poker {
    fn wake(&mut self, api: &mut NodeApi<'_>, why: Wake) -> Step {
        match why {
            Wake::Start => Step::Sleep(SimTime::from_us(1)),
            Wake::Timer => {
                let buf = api.heap_alloc(64).unwrap();
                api.local_write(buf, &[0u8; 64]).unwrap();
                api.local_store_u64(buf, 0x5151).unwrap();
                api.post_write(self.qp, self.dst, CTX, self.mailbox_offset, buf, 64)
                    .unwrap();
                Step::WaitCq(self.qp)
            }
            Wake::CqReady(_) => Step::Done,
            other => panic!("unexpected wake {other:?}"),
        }
    }
}

#[test]
fn memory_watch_wakes_on_remote_write() {
    let (mut cluster, mut engine) = setup(MachineConfig::simulated_hardware(2));
    let qp = cluster.create_qp(NodeId(0), CTX, 0).unwrap();
    let woke: Out<Option<u64>> = Rc::new(RefCell::new(None));
    cluster.spawn(
        &mut engine,
        NodeId(1),
        0,
        Box::new(Watcher {
            mailbox_offset: 2048,
            woke: woke.clone(),
        }),
    );
    cluster.spawn(
        &mut engine,
        NodeId(0),
        0,
        Box::new(Poker {
            qp,
            dst: NodeId(1),
            mailbox_offset: 2048,
        }),
    );
    engine.run(&mut cluster);
    assert_eq!(*woke.borrow(), Some(0x5151));
}

/// Floods the WQ to verify occupancy limits, then drains.
struct Flooder {
    qp: QpId,
    dst: NodeId,
    observed_full: Out<bool>,
    drained: u32,
}

impl AppProcess for Flooder {
    fn wake(&mut self, api: &mut NodeApi<'_>, why: Wake) -> Step {
        match why {
            Wake::Start => {
                let buf = api.heap_alloc(64).unwrap();
                let cap = api.qp_capacity(self.qp) as u32;
                for _ in 0..cap {
                    api.post_read(self.qp, self.dst, CTX, 0, buf, 64).unwrap();
                }
                // One more must fail.
                let err = api.post_read(self.qp, self.dst, CTX, 0, buf, 64);
                *self.observed_full.borrow_mut() =
                    matches!(err, Err(sonuma_machine::ApiError::WqFull));
                Step::WaitCq(self.qp)
            }
            Wake::CqReady(comps) => {
                self.drained += comps.len() as u32;
                if self.drained == api.qp_capacity(self.qp) as u32 {
                    Step::Done
                } else {
                    Step::WaitCq(self.qp)
                }
            }
            other => panic!("unexpected wake {other:?}"),
        }
    }
}

#[test]
fn wq_occupancy_is_bounded_and_drains() {
    let (mut cluster, mut engine) = setup(MachineConfig::simulated_hardware(2));
    let qp = cluster.create_qp(NodeId(0), CTX, 0).unwrap();
    let observed_full: Out<bool> = Rc::new(RefCell::new(false));
    cluster.spawn(
        &mut engine,
        NodeId(0),
        0,
        Box::new(Flooder {
            qp,
            dst: NodeId(1),
            observed_full: observed_full.clone(),
            drained: 0,
        }),
    );
    engine.run(&mut cluster);
    assert!(*observed_full.borrow(), "WqFull must surface at capacity");
    assert_eq!(cluster.total_ops_completed(), 64);
}

#[test]
fn simulation_is_deterministic() {
    let run = || {
        let pattern = vec![0x3C; 4096];
        let (mut cluster, mut engine) = setup(MachineConfig::simulated_hardware(4));
        cluster.write_ctx(NodeId(1), CTX, 0, &pattern);
        let qp = cluster.create_qp(NodeId(0), CTX, 0).unwrap();
        let out: Out<ReadResult> = Rc::new(RefCell::new(ReadResult::default()));
        cluster.spawn(
            &mut engine,
            NodeId(0),
            0,
            Box::new(ReadOnce {
                qp,
                dst: NodeId(1),
                offset: 0,
                len: 4096,
                buf: None,
                posted_at: SimTime::ZERO,
                out: out.clone(),
            }),
        );
        engine.run(&mut cluster);
        let latency = out.borrow().latency;
        (
            engine.now(),
            engine.events_executed(),
            latency,
            cluster.fabric().packets_sent(),
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn local_node_atomics_use_loopback() {
    // An atomic addressed to the local node must work without the fabric.
    let (mut cluster, mut engine) = setup(MachineConfig::simulated_hardware(2));
    cluster.write_ctx(NodeId(0), CTX, 512, &7u64.to_le_bytes());
    let qp = cluster.create_qp(NodeId(0), CTX, 0).unwrap();
    let observed: Out<Vec<u64>> = Rc::new(RefCell::new(Vec::new()));
    cluster.spawn(
        &mut engine,
        NodeId(0),
        0,
        Box::new(AtomicDance {
            qp,
            dst: NodeId(0),
            buf: None,
            phase: 0,
            observed: observed.clone(),
        }),
    );
    engine.run(&mut cluster);
    assert_eq!(*observed.borrow(), vec![7, 12]);
    assert_eq!(
        cluster.fabric().packets_sent(),
        0,
        "loopback must bypass the fabric"
    );
}
