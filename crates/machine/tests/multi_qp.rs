//! Multiple queue pairs per node/context: "multi-threaded processes can
//! register multiple QPs for the same address space and ctx_id" (§4.2).
//! The RGP round-robins its active-QP list; completions must route to the
//! right CQ.

use std::cell::RefCell;
use std::rc::Rc;

use sonuma_machine::{AppProcess, Cluster, ClusterEngine, MachineConfig, NodeApi, Step, Wake};
use sonuma_memory::VAddr;
use sonuma_protocol::{CtxId, NodeId, QpId};

const CTX: CtxId = CtxId(0);

/// Drives two QPs concurrently from one core, tagging reads per QP.
struct TwoQueues {
    qps: [QpId; 2],
    bufs: [VAddr; 2],
    per_qp: u32,
    done: [u32; 2],
    issued: [u32; 2],
    totals: Rc<RefCell<[u32; 2]>>,
}

impl AppProcess for TwoQueues {
    fn wake(&mut self, api: &mut NodeApi<'_>, why: Wake) -> Step {
        if matches!(why, Wake::Start) {
            self.bufs = [api.heap_alloc(64).unwrap(), api.heap_alloc(64).unwrap()];
        }
        if let Wake::CqReady(comps) = &why {
            for c in comps {
                let which = self.qps.iter().position(|q| *q == c.qp).expect("known QP");
                assert!(c.status.is_ok());
                // Each QP reads a distinct offset; verify no cross-talk.
                let v = api.local_load_u64(self.bufs[which]).unwrap();
                assert_eq!(v, 0xAA00 + which as u64, "QP {which} read wrong region");
                self.done[which] += 1;
                self.totals.borrow_mut()[which] += 1;
            }
        }
        // Keep both QPs busy; block on whichever lags.
        for which in 0..2 {
            while self.issued[which] < self.per_qp && api.outstanding(self.qps[which]) < 4 {
                api.post_read(
                    self.qps[which],
                    NodeId(1),
                    CTX,
                    (which as u64) * 64,
                    self.bufs[which],
                    64,
                )
                .unwrap();
                self.issued[which] += 1;
            }
        }
        if self.done[0] == self.per_qp && self.done[1] == self.per_qp {
            return Step::Done;
        }
        // Wait on the QP with more outstanding work.
        let lag = if (self.issued[0] - self.done[0]) >= (self.issued[1] - self.done[1]) {
            0
        } else {
            1
        };
        Step::WaitCq(self.qps[lag])
    }
}

#[test]
fn two_qps_on_one_core_interleave_correctly() {
    let mut cluster = Cluster::new(MachineConfig::simulated_hardware(2));
    cluster.create_context(CTX, 1 << 20).unwrap();
    cluster.write_ctx(NodeId(1), CTX, 0, &0xAA00u64.to_le_bytes());
    cluster.write_ctx(NodeId(1), CTX, 64, &0xAA01u64.to_le_bytes());
    let mut engine = ClusterEngine::new();
    let qp_a = cluster.create_qp(NodeId(0), CTX, 0).unwrap();
    let qp_b = cluster.create_qp(NodeId(0), CTX, 0).unwrap();
    assert_ne!(qp_a, qp_b);
    let totals = Rc::new(RefCell::new([0u32; 2]));
    cluster.spawn(
        &mut engine,
        NodeId(0),
        0,
        Box::new(TwoQueues {
            qps: [qp_a, qp_b],
            bufs: [VAddr::new(0); 2],
            per_qp: 30,
            done: [0; 2],
            issued: [0; 2],
            totals: totals.clone(),
        }),
    );
    engine.run(&mut cluster);
    assert_eq!(*totals.borrow(), [30, 30]);
    // Both QPs were registered with the context.
    let ct_entry = cluster.nodes[0].rmc.ct.lookup(CTX).unwrap();
    assert_eq!(ct_entry.qps.len(), 2);
}

/// CQ wake-ups only fire for the QP the core actually waits on; the other
/// QP's completions sit in its CQ until polled.
#[test]
fn completions_stay_on_their_own_queue() {
    struct SplitPoller {
        qps: [QpId; 2],
        buf: VAddr,
        phase: u8,
        observed: Rc<RefCell<Vec<(usize, u16)>>>,
    }
    impl AppProcess for SplitPoller {
        fn wake(&mut self, api: &mut NodeApi<'_>, why: Wake) -> Step {
            match (self.phase, why) {
                (0, Wake::Start) => {
                    self.buf = api.heap_alloc(64).unwrap();
                    // One read on each QP.
                    api.post_read(self.qps[0], NodeId(1), CTX, 0, self.buf, 64)
                        .unwrap();
                    api.post_read(self.qps[1], NodeId(1), CTX, 0, self.buf, 64)
                        .unwrap();
                    self.phase = 1;
                    Step::WaitCq(self.qps[0])
                }
                (1, Wake::CqReady(comps)) => {
                    for c in &comps {
                        assert_eq!(c.qp, self.qps[0], "waited on QP 0 only");
                        self.observed.borrow_mut().push((0, c.wq_index));
                    }
                    // Now drain QP 1 explicitly.
                    let rest = api.poll_cq(self.qps[1]);
                    for c in &rest {
                        assert_eq!(c.qp, self.qps[1]);
                        self.observed.borrow_mut().push((1, c.wq_index));
                    }
                    if self.observed.borrow().len() == 2 {
                        Step::Done
                    } else {
                        // QP 1's completion not in yet: wait for it.
                        Step::WaitCq(self.qps[1])
                    }
                }
                (p, w) => panic!("unexpected ({p}, {w:?})"),
            }
        }
    }

    let mut cluster = Cluster::new(MachineConfig::simulated_hardware(2));
    cluster.create_context(CTX, 1 << 20).unwrap();
    let mut engine = ClusterEngine::new();
    let qp_a = cluster.create_qp(NodeId(0), CTX, 0).unwrap();
    let qp_b = cluster.create_qp(NodeId(0), CTX, 0).unwrap();
    let observed = Rc::new(RefCell::new(Vec::new()));
    cluster.spawn(
        &mut engine,
        NodeId(0),
        0,
        Box::new(SplitPoller {
            qps: [qp_a, qp_b],
            buf: VAddr::new(0),
            phase: 0,
            observed: observed.clone(),
        }),
    );
    engine.run(&mut cluster);
    let got = observed.borrow();
    assert_eq!(got.len(), 2);
    assert!(got.contains(&(0, 0)));
    assert!(got.contains(&(1, 0)));
}
