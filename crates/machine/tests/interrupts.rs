//! Tests for the §8 remote-interrupt extension: node-to-node notification
//! without polling.

use std::cell::RefCell;
use std::rc::Rc;

use sonuma_machine::{AppProcess, Cluster, ClusterEngine, MachineConfig, NodeApi, Step, Wake};
use sonuma_protocol::{CtxId, NodeId, QpId};
use sonuma_sim::SimTime;

const CTX: CtxId = CtxId(0);

type Shared<T> = Rc<RefCell<T>>;

fn setup(nodes: usize) -> (Cluster, ClusterEngine) {
    let mut cluster = Cluster::new(MachineConfig::simulated_hardware(nodes));
    cluster.create_context(CTX, 1 << 20).unwrap();
    (cluster, ClusterEngine::new())
}

/// Sends `count` interrupts to the peer, spaced by a small delay.
struct Sender {
    qp: QpId,
    dst: NodeId,
    count: u32,
    sent: u32,
    acked: u32,
}

impl AppProcess for Sender {
    fn wake(&mut self, api: &mut NodeApi<'_>, why: Wake) -> Step {
        if let Wake::CqReady(c) = &why {
            assert!(c.iter().all(|c| c.status.is_ok()));
            self.acked += c.len() as u32;
        }
        if self.sent < self.count {
            api.post_interrupt(self.qp, self.dst, CTX, 0x1000 + self.sent as u64)
                .unwrap();
            self.sent += 1;
            return Step::Sleep(SimTime::from_ns(500));
        }
        if self.acked < self.count {
            return Step::WaitCq(self.qp);
        }
        Step::Done
    }
}

/// Parks on an unrelated memory watch; only interrupts can wake it.
struct Handler {
    received: Shared<Vec<(u16, u64)>>,
    expect: u32,
}

impl AppProcess for Handler {
    fn wake(&mut self, api: &mut NodeApi<'_>, why: Wake) -> Step {
        if let Wake::Interrupt { from, payload } = &why {
            self.received.borrow_mut().push((from.0, *payload));
        }
        if self.received.borrow().len() as u32 == self.expect {
            return Step::Done;
        }
        // Park on a dummy watch: nothing ever writes here, so any wake-up
        // must be an interrupt.
        let dummy = api.ctx_base(CTX);
        Step::WaitMemory {
            addr: dummy,
            len: 64,
        }
    }
}

#[test]
fn interrupts_wake_a_parked_handler_in_order() {
    let (mut cluster, mut engine) = setup(2);
    cluster.set_interrupt_handler(NodeId(1), 0);
    let qp = cluster.create_qp(NodeId(0), CTX, 0).unwrap();
    let received: Shared<Vec<(u16, u64)>> = Rc::new(RefCell::new(Vec::new()));
    cluster.spawn(
        &mut engine,
        NodeId(1),
        0,
        Box::new(Handler {
            received: received.clone(),
            expect: 3,
        }),
    );
    cluster.spawn(
        &mut engine,
        NodeId(0),
        0,
        Box::new(Sender {
            qp,
            dst: NodeId(1),
            count: 3,
            sent: 0,
            acked: 0,
        }),
    );
    engine.run(&mut cluster);
    assert_eq!(
        *received.borrow(),
        vec![(0, 0x1000), (0, 0x1001), (0, 0x1002)],
        "interrupts deliver in order with sender id and payload"
    );
    assert_eq!(cluster.nodes[1].interrupts_dropped, 0);
}

#[test]
fn interrupts_without_a_handler_are_counted_and_acked() {
    let (mut cluster, mut engine) = setup(2);
    // No handler registered on node 1.
    let qp = cluster.create_qp(NodeId(0), CTX, 0).unwrap();
    cluster.spawn(
        &mut engine,
        NodeId(0),
        0,
        Box::new(Sender {
            qp,
            dst: NodeId(1),
            count: 2,
            sent: 0,
            acked: 0,
        }),
    );
    engine.run(&mut cluster);
    // Sender completed (acks arrived) even though delivery was dropped.
    assert_eq!(cluster.nodes[1].interrupts_dropped, 2);
    assert_eq!(cluster.nodes[0].ops_completed, 2);
}

#[test]
fn pending_interrupts_deliver_when_the_handler_parks() {
    // The handler sleeps (not interruptible in this model) while interrupts
    // arrive; they queue and deliver once it parks on a wait state.
    struct LateParker {
        received: Shared<Vec<u64>>,
        slept: bool,
    }
    impl AppProcess for LateParker {
        fn wake(&mut self, api: &mut NodeApi<'_>, why: Wake) -> Step {
            if let Wake::Interrupt { payload, .. } = &why {
                self.received.borrow_mut().push(*payload);
            }
            if self.received.borrow().len() == 2 {
                return Step::Done;
            }
            if !self.slept {
                self.slept = true;
                return Step::Sleep(SimTime::from_us(5)); // interrupts arrive now
            }
            let dummy = api.ctx_base(CTX);
            Step::WaitMemory {
                addr: dummy,
                len: 64,
            }
        }
    }

    let (mut cluster, mut engine) = setup(2);
    cluster.set_interrupt_handler(NodeId(1), 0);
    let qp = cluster.create_qp(NodeId(0), CTX, 0).unwrap();
    let received: Shared<Vec<u64>> = Rc::new(RefCell::new(Vec::new()));
    cluster.spawn(
        &mut engine,
        NodeId(1),
        0,
        Box::new(LateParker {
            received: received.clone(),
            slept: false,
        }),
    );
    cluster.spawn(
        &mut engine,
        NodeId(0),
        0,
        Box::new(Sender {
            qp,
            dst: NodeId(1),
            count: 2,
            sent: 0,
            acked: 0,
        }),
    );
    engine.run(&mut cluster);
    assert_eq!(*received.borrow(), vec![0x1000, 0x1001]);
}
