//! Access-library error paths: a full WQ must surface `ApiError::WqFull`
//! (never a silent drop), the rejection must be counted as backpressure,
//! and the application-side cursors (`outstanding`, `poll_cq`) must stay
//! consistent across many wrap-arounds of the 16-bit WQ ring index.

use std::cell::RefCell;
use std::rc::Rc;

use sonuma_machine::{
    ApiError, AppProcess, Cluster, ClusterEngine, MachineConfig, NodeApi, Step, TenantSpec, Wake,
};
use sonuma_memory::VAddr;
use sonuma_protocol::{CtxId, NodeId, QpId, TenantId};

const CTX: CtxId = CtxId(0);

#[derive(Debug, Default, Clone)]
struct Outcome {
    wq_full_errors: u32,
    completions: u32,
    max_outstanding: u16,
    cursor_mismatches: u32,
}

/// Posts greedily until the WQ rejects, across enough operations to wrap
/// the ring index many times, checking `outstanding` against its own
/// issued/completed ledger on every wake-up.
struct GreedyPoster {
    qp: QpId,
    buf: VAddr,
    target: u32,
    issued: u32,
    completed: u32,
    outcome: Rc<RefCell<Outcome>>,
}

impl AppProcess for GreedyPoster {
    fn wake(&mut self, api: &mut NodeApi<'_>, why: Wake) -> Step {
        if matches!(why, Wake::Start) {
            self.buf = api.heap_alloc(64).unwrap();
        }
        if let Wake::CqReady(comps) = &why {
            let entries = api.qp_capacity(self.qp);
            for c in comps {
                assert!(c.status.is_ok());
                assert!(
                    c.wq_index < entries,
                    "completion names WQ slot {} beyond the {}-entry ring",
                    c.wq_index,
                    entries
                );
                self.completed += 1;
            }
            self.outcome.borrow_mut().completions = self.completed;
        }
        // The ledger and the library must agree at every observation
        // point, through arbitrarily many ring wrap-arounds.
        if api.outstanding(self.qp) != (self.issued - self.completed) as u16 {
            self.outcome.borrow_mut().cursor_mismatches += 1;
        }
        while self.issued < self.target {
            match api.post_read(self.qp, NodeId(1), CTX, 0, self.buf, 64) {
                Ok(_) => self.issued += 1,
                Err(ApiError::WqFull) => {
                    let mut out = self.outcome.borrow_mut();
                    out.wq_full_errors += 1;
                    // The rejection happened exactly at capacity: every
                    // slot is genuinely in flight.
                    assert_eq!(api.outstanding(self.qp), api.qp_capacity(self.qp));
                    break;
                }
                Err(e) => panic!("unexpected post error: {e}"),
            }
        }
        let mut out = self.outcome.borrow_mut();
        out.max_outstanding = out.max_outstanding.max(api.outstanding(self.qp));
        if self.completed == self.target {
            return Step::Done;
        }
        Step::WaitCq(self.qp)
    }
}

fn small_ring_config() -> MachineConfig {
    let mut config = MachineConfig::simulated_hardware(2);
    // A 4-entry ring makes the 16-bit WQ index wrap every 4 posts; 64
    // operations exercise 16 full wraps (and 8 phase-bit flips).
    config.qp_entries = 4;
    config
}

#[test]
fn wq_full_is_an_error_and_cursors_survive_wraparound() {
    let mut cluster = Cluster::new(small_ring_config());
    cluster.create_context(CTX, 1 << 16).unwrap();
    let mut engine = ClusterEngine::new();
    let qp = cluster.create_qp(NodeId(0), CTX, 0).unwrap();
    let outcome = Rc::new(RefCell::new(Outcome::default()));
    let target = 64;
    cluster.spawn(
        &mut engine,
        NodeId(0),
        0,
        Box::new(GreedyPoster {
            qp,
            buf: VAddr::new(0),
            target,
            issued: 0,
            completed: 0,
            outcome: Rc::clone(&outcome),
        }),
    );
    engine.run(&mut cluster);
    let out = outcome.borrow().clone();
    assert_eq!(out.completions, target, "every accepted post completed");
    assert_eq!(
        out.cursor_mismatches, 0,
        "outstanding() disagreed with the issued/completed ledger"
    );
    assert!(
        out.wq_full_errors > 0,
        "a greedy poster against a 4-entry ring must hit WqFull"
    );
    assert_eq!(out.max_outstanding, 4, "occupancy never exceeds the ring");
    // Nothing was silently dropped: the RMC consumed exactly the accepted
    // posts, and the rejections are visible as API backpressure counters.
    let stats = cluster.pipeline_stats(NodeId(0));
    assert_eq!(stats.rgp_requests, target as u64);
    assert_eq!(stats.rcp_completions, target as u64);
    assert_eq!(stats.api_wq_full, out.wq_full_errors as u64);
}

#[test]
fn wq_full_rejections_attribute_to_the_posting_tenant() {
    let mut cluster = Cluster::new(small_ring_config());
    cluster.create_context(CTX, 1 << 16).unwrap();
    let mut engine = ClusterEngine::new();
    cluster.register_tenant(NodeId(0), TenantSpec::best_effort(TenantId(7)));
    let qp = cluster
        .create_tenant_qp(NodeId(0), CTX, 0, TenantId(7))
        .unwrap();
    let outcome = Rc::new(RefCell::new(Outcome::default()));
    cluster.spawn(
        &mut engine,
        NodeId(0),
        0,
        Box::new(GreedyPoster {
            qp,
            buf: VAddr::new(0),
            target: 16,
            issued: 0,
            completed: 0,
            outcome: Rc::clone(&outcome),
        }),
    );
    engine.run(&mut cluster);
    let stats = cluster.tenant_stats(NodeId(0));
    assert_eq!(stats.len(), 1);
    let (spec, t) = stats[0];
    assert_eq!(spec.id, TenantId(7));
    assert_eq!(t.completions, 16);
    assert_eq!(t.requests, 16);
    assert_eq!(
        t.wq_full,
        outcome.borrow().wq_full_errors as u64,
        "per-tenant backpressure must match the errors the app saw"
    );
    assert!(t.wq_full > 0);
}

#[test]
fn bad_qp_and_bad_length_reject_before_touching_state() {
    struct BadPoster;
    impl AppProcess for BadPoster {
        fn wake(&mut self, api: &mut NodeApi<'_>, _why: Wake) -> Step {
            let buf = api.heap_alloc(64).unwrap();
            assert_eq!(
                api.post_read(QpId(99), NodeId(1), CTX, 0, buf, 64),
                Err(ApiError::BadQp)
            );
            let qp = QpId(0);
            assert_eq!(
                api.post_read(qp, NodeId(1), CTX, 0, buf, 63),
                Err(ApiError::BadLength)
            );
            assert_eq!(
                api.post_read(qp, NodeId(1), CTX, 0, buf, 0),
                Err(ApiError::BadLength)
            );
            assert_eq!(api.outstanding(qp), 0, "rejected posts left no residue");
            Step::Done
        }
    }
    let mut cluster = Cluster::new(MachineConfig::simulated_hardware(2));
    cluster.create_context(CTX, 1 << 16).unwrap();
    let mut engine = ClusterEngine::new();
    cluster.create_qp(NodeId(0), CTX, 0).unwrap();
    cluster.spawn(&mut engine, NodeId(0), 0, Box::new(BadPoster));
    engine.run(&mut cluster);
    let stats = cluster.pipeline_stats(NodeId(0));
    assert_eq!(stats.rgp_requests, 0);
    assert_eq!(stats.api_wq_full, 0, "shape errors are not backpressure");
}
