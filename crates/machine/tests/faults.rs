//! End-to-end fault-injection properties of the machine: the seeded
//! fault schedule is deterministic across identical runs *and* across
//! arbitrary shard partitions (the invariant that keeps `--threads N`
//! byte-identical under failures), node crashes abort in-flight work and
//! recover via source-side retransmission, and exhausted retries surface
//! as `Status::Aborted` completions instead of hangs.

use proptest::collection::vec;
use proptest::prelude::*;

use sonuma_fabric::{FabricConfig, FaultPlan, FaultStats, LinkFault, NodeFault, Topology};
use sonuma_machine::{MachineConfig, PipelineStats, SonumaBackend};
use sonuma_protocol::{NodeId, RemoteBackend, RemoteCompletion, RemoteRequest, Status};
use sonuma_sim::SimTime;

/// A machine config over `topology` (paper timing, fabric swapped).
fn config_for(topology: Topology) -> MachineConfig {
    let nodes = topology.nodes();
    let mut config = MachineConfig::simulated_hardware(nodes);
    config.fabric = match &topology {
        Topology::Crossbar { .. } => FabricConfig::paper_crossbar(nodes),
        Topology::Torus2D { width, height } => FabricConfig::torus2d(*width, *height),
        Topology::Torus3D { x, y, z } => FabricConfig::torus3d(*x, *y, *z),
        Topology::Mesh2D { width, height } => FabricConfig {
            topology: topology.clone(),
            ..FabricConfig::torus2d(*width, *height)
        },
    };
    config
}

/// A busy fault schedule touching every injection mechanism: a lossy
/// degraded link, a link that dies mid-run and revives, and a node that
/// crashes and restarts — all derived from the topology so any shape
/// gets a valid plan.
fn busy_plan(topology: &Topology, seed: u64) -> FaultPlan {
    let mut plan = FaultPlan::new(seed);
    let mut lossy = LinkFault::on(NodeId(0), topology.neighbors(NodeId(0))[0]);
    lossy.drop_prob = 0.2;
    lossy.corrupt_prob = 0.2;
    plan.links.push(lossy);
    let n1 = NodeId(1);
    let mut flappy = LinkFault::on(n1, *topology.neighbors(n1).last().expect("degree >= 1"));
    flappy.kill_at = Some(SimTime::from_us(2));
    flappy.revive_at = Some(SimTime::from_us(8));
    plan.links.push(flappy);
    plan.nodes.push(NodeFault {
        node: NodeId((topology.nodes() - 1) as u16),
        crash_at: SimTime::from_us(3),
        restart_at: SimTime::from_us(6),
    });
    plan
}

/// Everything observable about one faulty run that must be identical
/// across repeats and shard partitions.
#[derive(Debug, PartialEq)]
struct Outcome {
    now: SimTime,
    events: u64,
    completions: Vec<Vec<RemoteCompletion>>,
    delivery_hashes: Vec<u64>,
    stats: PipelineStats,
    fault_stats: FaultStats,
    crashes: u64,
    crash_drops: u64,
}

/// Drives a deterministic closed-loop read/write stream over `b` and
/// snapshots every invariant observable, faults included.
fn drive(mut b: SonumaBackend, ops_per_node: u64, stride: usize) -> Outcome {
    let nodes = b.num_nodes();
    for n in 0..nodes {
        b.write_ctx(NodeId(n as u16), 0, &[n as u8 ^ 0x5A; 1024]);
    }
    let mut remaining = vec![ops_per_node; nodes];
    let mut inflight = vec![0usize; nodes];
    let mut completions: Vec<Vec<RemoteCompletion>> = vec![Vec::new(); nodes];
    loop {
        let mut posted = false;
        for n in 0..nodes {
            while remaining[n] > 0 && inflight[n] < 2 {
                let dst = NodeId(((n + stride) % nodes) as u16);
                if dst.index() == n {
                    remaining[n] = 0;
                    break;
                }
                let i = remaining[n];
                let req = if i.is_multiple_of(3) {
                    RemoteRequest::write(dst, (i * 64) % 512, vec![n as u8 ^ i as u8; 128])
                } else {
                    RemoteRequest::read(dst, (i * 64) % 512, 128)
                };
                b.post(NodeId(n as u16), req).expect("post accepted");
                remaining[n] -= 1;
                inflight[n] += 1;
                posted = true;
            }
        }
        let more = b.advance();
        for (n, sink) in completions.iter_mut().enumerate() {
            for c in b.poll(NodeId(n as u16)) {
                inflight[n] -= 1;
                sink.push(c);
            }
        }
        let pending: usize = inflight.iter().sum();
        if !more && !posted && pending == 0 && remaining.iter().all(|&r| r == 0) {
            break;
        }
    }
    assert_eq!(b.pair_bound_violations(), 0);
    Outcome {
        now: b.now(),
        events: b.events_processed(),
        delivery_hashes: (0..nodes)
            .map(|n| b.delivery_hash(NodeId(n as u16)))
            .collect(),
        stats: (0..nodes)
            .map(|n| b.pipeline_stats(NodeId(n as u16)))
            .fold(PipelineStats::default(), PipelineStats::merge),
        fault_stats: b.fabric().fault_stats(),
        crashes: b.total_crashes(),
        crash_drops: b.total_crash_drops(),
        completions,
    }
}

/// Strictly increasing partition bounds over `nodes` from raw cut
/// material.
fn bounds_from(cuts: &[usize], nodes: usize) -> Vec<usize> {
    let mut bounds = vec![0];
    let mut inner: Vec<usize> = cuts.iter().map(|&c| 1 + c % (nodes - 1)).collect();
    inner.sort_unstable();
    inner.dedup();
    bounds.extend(inner);
    bounds.push(nodes);
    bounds
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// The same seeded fault plan yields the *same* injected-fault
    /// sequence — drops, corruptions, reroutes, crashes, timeouts,
    /// retransmits, delivery order — on the serial engine and on any
    /// random shard partition.
    #[test]
    fn fault_schedule_is_partition_invariant(
        w in 2usize..4,
        h in 2usize..4,
        cuts in vec(0usize..1024, 1..4),
        stride_seed in 1usize..5,
        ops in 2u64..5,
        seed in 0u64..1000,
    ) {
        let topology = Topology::torus2d(w, h);
        let nodes = topology.nodes();
        let stride = 1 + stride_seed % (nodes - 1);
        let mut config = config_for(topology);
        config.fabric.faults = Some(busy_plan(&config.fabric.topology, seed));
        let serial = drive(
            SonumaBackend::with_partition(config.clone(), 1 << 16, vec![0, nodes]),
            ops, stride,
        );
        let bounds = bounds_from(&cuts, nodes);
        let sharded = drive(
            SonumaBackend::with_partition(config, 1 << 16, bounds.clone()),
            ops, stride,
        );
        prop_assert_eq!(
            &serial, &sharded,
            "faulty run diverged under partition {:?}", &bounds
        );
    }

    /// Identical seeds replay the identical fault sequence run over run.
    #[test]
    fn same_seed_replays_the_same_faults(seed in 0u64..1000) {
        let build = || {
            let mut config = config_for(Topology::torus2d(3, 3));
            config.fabric.faults = Some(busy_plan(&config.fabric.topology, seed));
            SonumaBackend::with_threads(config, 1 << 16, 1)
        };
        let a = drive(build(), 4, 2);
        let b = drive(build(), 4, 2);
        prop_assert_eq!(a, b);
    }
}

/// A node that crashes with requests outstanding against it: the first
/// delivery lands in the outage window and is discarded, the source's
/// retransmission timer fires, and the retry after restart completes the
/// operation cleanly — end to end through WQ, fabric, and CQ.
#[test]
fn crash_outage_recovers_via_retransmit() {
    let mut config = config_for(Topology::crossbar(4));
    let mut plan = FaultPlan::new(1);
    plan.nodes.push(NodeFault {
        node: NodeId(2),
        crash_at: SimTime::from_ps(0),
        restart_at: SimTime::from_us(5),
    });
    config.fabric.faults = Some(plan);
    let mut b = SonumaBackend::with_threads(config, 1 << 16, 1);
    b.write_ctx(NodeId(2), 0, &[0xEE; 256]);
    b.post(NodeId(0), RemoteRequest::read(NodeId(2), 0, 64))
        .expect("post accepted");
    while b.advance() {}
    let done = b.poll(NodeId(0));
    assert_eq!(done.len(), 1);
    assert_eq!(done[0].status, Status::Ok, "retry after restart succeeds");
    assert!(
        b.now() >= SimTime::from_us(5),
        "completion cannot predate the restart"
    );
    let stats = b.pipeline_stats(NodeId(0));
    assert_eq!(stats.rgp_timeouts, 1, "one deadline expired");
    assert_eq!(stats.rgp_retransmits, 1, "one line was retransmitted");
    assert_eq!(b.total_crashes(), 1);
    assert_eq!(
        b.total_crash_drops(),
        1,
        "the original landed in the window"
    );
}

/// A destination that never comes back: retries back off exponentially,
/// exhaust, and the operation completes with `Status::Aborted` — the
/// liveness guarantee that a fault plan can never hang the simulation.
#[test]
fn exhausted_retries_abort_instead_of_hanging() {
    let mut config = config_for(Topology::crossbar(4));
    let mut plan = FaultPlan::new(1);
    plan.timeout = SimTime::from_us(1);
    plan.max_retries = 2;
    plan.nodes.push(NodeFault {
        node: NodeId(2),
        crash_at: SimTime::from_ps(0),
        restart_at: SimTime::from_ns(1_000_000_000), // 1 s: effectively never
    });
    config.fabric.faults = Some(plan);
    let mut b = SonumaBackend::with_threads(config, 1 << 16, 1);
    b.write_ctx(NodeId(2), 0, &[0xEE; 256]);
    b.post(NodeId(0), RemoteRequest::read(NodeId(2), 0, 64))
        .expect("post accepted");
    while b.advance() {}
    let done = b.poll(NodeId(0));
    assert_eq!(done.len(), 1, "the operation must still complete");
    assert_eq!(done[0].status, Status::Aborted);
    let stats = b.pipeline_stats(NodeId(0));
    assert_eq!(stats.rgp_retransmits, 2, "max_retries bounds the attempts");
    assert_eq!(stats.rgp_timeouts, 3, "initial deadline plus one per retry");
}
