//! QoS-scheduler guarantees, policy-independent conservation, and the
//! WDRR no-starvation property.

use proptest::collection::vec;
use proptest::prelude::*;

use sonuma_machine::{QpClass, SchedPolicy, SloClass, SonumaBackend};
use sonuma_protocol::{NodeId, QpId, RemoteBackend, RemoteRequest, TenantId};

proptest! {
    /// WDRR never starves a nonzero-weight QP: with every queue
    /// perpetually backlogged, any QP is served again within one full
    /// rotation's worth of line quanta (plus its own), for arbitrary
    /// weight assignments and request sizes.
    #[test]
    fn wdrr_never_starves_nonzero_weights(
        weights in vec(1u32..=16, 2..8),
        sizes in vec(1u32..=128, 64..65),
    ) {
        let mut sched = SchedPolicy::Wdrr.build();
        for (i, &w) in weights.iter().enumerate() {
            sched.activate(QpId(i as u16), QpClass { weight: w, priority: 1 });
        }
        // Upper bound on lines served between two services of one QP:
        // serve-then-charge lets any QP overshoot its deficit by one
        // max-size request (127 lines of debt), which the weakest weight
        // repays at `w_min * QUANTUM` lines per rotation; each rotation
        // everyone else spends their quantum plus one overshoot. The
        // bound is loose but finite and independent of run length, which
        // is what "no starvation" means.
        let total_weight: u64 = weights.iter().map(|&w| w as u64).sum();
        let w_min = *weights.iter().min().unwrap() as u64;
        let rotations = 128 / (w_min * 8) + 2;
        let bound = rotations * (total_weight * 8 + weights.len() as u64 * 128);
        let mut since_served = vec![0u64; weights.len()];
        let mut size_iter = sizes.iter().cycle();
        let mut served_total = 0u64;
        while served_total < 4000 {
            let qp = sched.select().expect("all queues backlogged");
            let lines = *size_iter.next().unwrap();
            sched.consumed(qp, lines);
            served_total += lines as u64;
            for (i, gap) in since_served.iter_mut().enumerate() {
                if i == qp.index() {
                    *gap = 0;
                } else {
                    *gap += lines as u64;
                    prop_assert!(
                        *gap <= bound,
                        "QP {i} (weight {}) starved for {gap} lines (bound {bound})",
                        weights[i]
                    );
                }
            }
        }
    }
}

/// Runs one fixed multi-tenant request stream (3 tenants with distinct
/// weights/classes per node) over a backend configured with `policy`,
/// returning total completions and per-tenant completion counts.
#[allow(clippy::needless_range_loop)] // n indexes node ids, pending, and tenants at once
fn run_policy(policy: SchedPolicy) -> (u64, Vec<u64>) {
    let nodes = 4;
    let mut config = sonuma_machine::MachineConfig::simulated_hardware(nodes);
    config.sched_policy = policy;
    let mut b = SonumaBackend::new(config, 1 << 16);
    let classes = [SloClass::Gold, SloClass::Silver, SloClass::Bronze];
    let weights = [8u32, 4, 1];
    for n in 0..nodes {
        for c in 0..3 {
            b.register_tenant_channel(
                NodeId(n as u16),
                c as u32,
                TenantId((n * 3 + c) as u32),
                weights[c],
                classes[c],
            );
        }
    }
    // A deterministic seed-free stream: every tenant posts the same 20
    // reads toward its ring successor.
    let per_tenant = 20u64;
    let mut remaining: Vec<u64> = vec![per_tenant; nodes * 3];
    let mut pending: Vec<u64> = vec![0; nodes];
    let mut polled = 0u64;
    loop {
        let mut posted = false;
        for n in 0..nodes {
            for c in 0..3 {
                let idx = n * 3 + c;
                if remaining[idx] > 0 {
                    let dst = NodeId(((n + 1) % nodes) as u16);
                    match b.post_on(
                        NodeId(n as u16),
                        c as u32,
                        RemoteRequest::read(dst, (idx as u64 % 16) * 64, 64),
                    ) {
                        Ok(_) => {
                            remaining[idx] -= 1;
                            pending[n] += 1;
                            posted = true;
                        }
                        Err(sonuma_protocol::BackendError::Backpressure) => {}
                        Err(e) => panic!("post failed: {e}"),
                    }
                }
            }
        }
        let more = b.advance();
        for (n, p) in pending.iter_mut().enumerate() {
            let got = b.poll(NodeId(n as u16)).len() as u64;
            *p -= got;
            polled += got;
        }
        if !more && !posted && pending.iter().all(|&p| p == 0) && remaining.iter().all(|&r| r == 0)
        {
            break;
        }
    }
    let completed = polled;
    let per_tenant_done: Vec<u64> = (0..nodes)
        .flat_map(|n| {
            b.tenant_stats(NodeId(n as u16))
                .into_iter()
                .map(|(_, s)| s.completions)
        })
        .collect();
    (completed, per_tenant_done)
}

/// The scheduling policy reorders service but must neither create nor
/// lose operations: the same stream completes exactly the same totals
/// under round-robin, WDRR, and strict priority.
#[test]
fn total_ops_conserved_across_policies() {
    let (rr_total, rr_per) = run_policy(SchedPolicy::RoundRobin);
    let (wdrr_total, wdrr_per) = run_policy(SchedPolicy::Wdrr);
    let (strict_total, strict_per) = run_policy(SchedPolicy::StrictPriority);
    assert_eq!(rr_total, 4 * 3 * 20);
    assert_eq!(rr_total, wdrr_total);
    assert_eq!(rr_total, strict_total);
    // Conservation holds per tenant too — every tenant's stream finishes
    // under every policy (strict priority delays bronze, never drops it).
    assert_eq!(rr_per, wdrr_per);
    assert_eq!(rr_per, strict_per);
    assert!(rr_per.iter().all(|&c| c == 20));
}

/// Strict priority must let lower classes through once the high class
/// drains (no permanent starvation in a finite workload), and the
/// starvation-pressure counter must fire while gold holds the pipeline.
#[test]
fn strict_priority_is_work_conserving() {
    let (_, per) = run_policy(SchedPolicy::StrictPriority);
    assert!(per.iter().all(|&c| c == 20), "bronze completed: {per:?}");
}
