//! Partition-equivalence properties of the sharded engine.
//!
//! The fabric crate's `flow_properties` suite pins the delivery-order
//! behavior of the fabric under the serial typed engine; these tests
//! extend that contract up through the full machine: for *random*
//! contiguous node→shard partitions of random crossbar/torus/mesh
//! topologies, the sharded engine must deliver every packet to every
//! node in exactly the order the serial (single-shard) engine does —
//! asserted via the per-node delivery-order hash (time, source, tid,
//! line) plus completions, pipeline counters, fabric totals, and the
//! clock.

use proptest::collection::vec;
use proptest::prelude::*;

use sonuma_fabric::{FabricConfig, FaultPlan, LinkFault, NodeFault, ShardPlan, Topology};
use sonuma_machine::{MachineConfig, PipelineStats, ShardedCluster, SonumaBackend};
use sonuma_protocol::{NodeId, RemoteBackend, RemoteCompletion, RemoteRequest};
use sonuma_sim::SimTime;
use sonuma_trace::{render_jsonl, TraceConfig, TraceMeta};

/// A machine config over `topology` (paper timing, fabric swapped).
fn config_for(topology: Topology) -> MachineConfig {
    let nodes = topology.nodes();
    let mut config = MachineConfig::simulated_hardware(nodes);
    config.fabric = match &topology {
        Topology::Crossbar { .. } => FabricConfig::paper_crossbar(nodes),
        Topology::Torus2D { width, height } => FabricConfig::torus2d(*width, *height),
        Topology::Torus3D { x, y, z } => FabricConfig::torus3d(*x, *y, *z),
        Topology::Mesh2D { width, height } => FabricConfig {
            topology: topology.clone(),
            ..FabricConfig::torus2d(*width, *height)
        },
    };
    config
}

/// Everything observable about one run that must be partition-invariant.
#[derive(Debug, PartialEq)]
struct Outcome {
    now: SimTime,
    events: u64,
    completions: Vec<Vec<RemoteCompletion>>,
    delivery_hashes: Vec<u64>,
    stats: Vec<PipelineStats>,
    fabric_packets: u64,
    fabric_bytes: u64,
    credit_stalls: u64,
    trace: Option<String>,
}

/// Drives a deterministic closed-loop read/write stream over `b` and
/// snapshots every invariant observable. With `traced`, a flight
/// recorder is armed and its rendered JSONL rides along in the outcome
/// so trace bytes are pinned partition- and speculation-invariant too.
fn drive(b: SonumaBackend, ops_per_node: u64, stride: usize, op_bytes: u64) -> Outcome {
    drive_opts(b, ops_per_node, stride, op_bytes, false)
}

fn drive_opts(
    mut b: SonumaBackend,
    ops_per_node: u64,
    stride: usize,
    op_bytes: u64,
    traced: bool,
) -> Outcome {
    if traced {
        b.arm_trace(&TraceConfig {
            interval: SimTime::from_ns(1_000),
            link_capacity: 256,
            node_capacity: 256,
            event_capacity: 64,
        });
    }
    let nodes = b.num_nodes();
    for n in 0..nodes {
        b.write_ctx(NodeId(n as u16), 0, &[n as u8 ^ 0x3C; 1024]);
    }
    let mut remaining = vec![ops_per_node; nodes];
    let mut inflight = vec![0usize; nodes];
    let mut completions: Vec<Vec<RemoteCompletion>> = vec![Vec::new(); nodes];
    loop {
        let mut posted = false;
        for n in 0..nodes {
            while remaining[n] > 0 && inflight[n] < 2 {
                let dst = NodeId(((n + stride) % nodes) as u16);
                if dst.index() == n {
                    remaining[n] = 0;
                    break;
                }
                let i = remaining[n];
                let offset = (i * op_bytes) % 512;
                let req = if i.is_multiple_of(3) {
                    RemoteRequest::write(
                        dst,
                        offset,
                        vec![(n as u8) ^ (i as u8); op_bytes as usize],
                    )
                } else {
                    RemoteRequest::read(dst, offset, op_bytes)
                };
                b.post(NodeId(n as u16), req).expect("post accepted");
                remaining[n] -= 1;
                inflight[n] += 1;
                posted = true;
            }
        }
        let more = b.advance();
        for (n, sink) in completions.iter_mut().enumerate() {
            for c in b.poll(NodeId(n as u16)) {
                inflight[n] -= 1;
                sink.push(c);
            }
        }
        let pending: usize = inflight.iter().sum();
        if !more && !posted && pending == 0 && remaining.iter().all(|&r| r == 0) {
            break;
        }
    }
    assert_eq!(
        b.pair_bound_violations(),
        0,
        "a cross-shard delivery beat its lookahead-matrix promise"
    );
    Outcome {
        now: b.now(),
        events: b.events_processed(),
        delivery_hashes: (0..nodes)
            .map(|n| b.delivery_hash(NodeId(n as u16)))
            .collect(),
        stats: (0..nodes)
            .map(|n| b.pipeline_stats(NodeId(n as u16)))
            .collect(),
        fabric_packets: b.fabric().packets_sent(),
        fabric_bytes: b.fabric().bytes_sent(),
        credit_stalls: b.fabric().credit_stalls(),
        trace: b.trace().map(|rec| {
            let meta = TraceMeta {
                scenario: "sharding-proptest".to_string(),
                backend: "sonuma".to_string(),
                nodes: nodes as u64,
                interval_ps: SimTime::from_ns(1_000).as_ps(),
            };
            render_jsonl(&meta, Some(rec), None)
        }),
        completions,
    }
}

/// Builds strictly increasing partition bounds over `nodes` from raw cut
/// material (any slice of arbitrary integers yields a valid plan).
fn bounds_from(cuts: &[usize], nodes: usize) -> Vec<usize> {
    let mut bounds = vec![0];
    let mut inner: Vec<usize> = cuts.iter().map(|&c| 1 + c % (nodes - 1)).collect();
    inner.sort_unstable();
    inner.dedup();
    bounds.extend(inner);
    bounds.push(nodes);
    bounds
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Random partitions of random topologies are delivery-order
    /// equivalent to the serial engine.
    #[test]
    fn random_partitions_match_serial_delivery_order(
        shape in 0usize..4,
        w in 2usize..4,
        h in 2usize..4,
        cuts in vec(0usize..1024, 1..4),
        stride_seed in 1usize..7,
        ops in 2u64..5,
    ) {
        let topology = match shape {
            0 => Topology::crossbar(w * h + 1),
            1 => Topology::torus2d(w, h),
            2 => Topology::torus3d(w, h, 2),
            _ => Topology::mesh2d(w, h),
        };
        let nodes = topology.nodes();
        let stride = 1 + stride_seed % (nodes - 1);
        let config = config_for(topology);
        let serial = drive(
            SonumaBackend::with_partition(config.clone(), 1 << 16, vec![0, nodes]),
            ops, stride, 128,
        );
        let bounds = bounds_from(&cuts, nodes);
        let sharded = drive(
            SonumaBackend::with_partition(config, 1 << 16, bounds.clone()),
            ops, stride, 128,
        );
        prop_assert_eq!(
            &serial.delivery_hashes, &sharded.delivery_hashes,
            "delivery order diverged under partition {:?}", &bounds
        );
        prop_assert_eq!(serial, sharded);
    }

    /// Speculative run-ahead is observationally invisible: for random
    /// depths `K` ∈ {1..4} over random partitions of crossbar and
    /// torus3d topologies — optionally with a link-kill + node-crash
    /// fault plan installed — delivery orders, completions, pipeline
    /// stats, fabric totals, and rendered trace bytes are identical to
    /// the conservative engine (`K = 0`) on the same partition.
    #[test]
    fn random_speculation_depths_match_conservative(
        shape in 0usize..2,
        w in 2usize..4,
        h in 2usize..4,
        cuts in vec(0usize..1024, 1..4),
        k in 1u32..=4,
        faulty in any::<bool>(),
    ) {
        let topology = match shape {
            0 => Topology::crossbar(w * h + 1),
            _ => Topology::torus3d(w, h, 2),
        };
        let nodes = topology.nodes();
        let mut config = config_for(topology);
        if faulty {
            let mut plan = FaultPlan::new(0xFA17);
            let mut flap = LinkFault::on(NodeId(0), NodeId(1));
            flap.kill_at = Some(SimTime::from_ns(2_000));
            flap.revive_at = Some(SimTime::from_ns(20_000));
            plan.links.push(flap);
            plan.nodes.push(NodeFault {
                node: NodeId((nodes - 1) as u16),
                crash_at: SimTime::from_ns(3_000),
                restart_at: SimTime::from_ns(30_000),
            });
            config.fabric.faults = Some(plan);
        }
        let bounds = bounds_from(&cuts, nodes);
        let conservative = drive_opts(
            SonumaBackend::with_partition(config.clone(), 1 << 16, bounds.clone()),
            3, 2, 128, true,
        );
        let mut spec = SonumaBackend::with_partition(config, 1 << 16, bounds.clone());
        spec.set_speculation(k);
        let speculative = drive_opts(spec, 3, 2, 128, true);
        prop_assert_eq!(
            conservative, speculative,
            "speculation K={} diverged under partition {:?} (faulty={})",
            k, &bounds, faulty
        );
    }
}

/// The machine-level lookahead matrix mirrors hop distance: symmetric
/// pairs get identical entries, every entry matches the fabric's
/// hop-count delivery bound for that pair, and distant pairs earn
/// strictly wider lookahead than adjacent ones.
#[test]
fn lookahead_matrix_symmetric_and_hop_scaled() {
    use sonuma_protocol::HEADER_BYTES;
    let config = config_for(Topology::torus3d(4, 4, 4));
    let plan = ShardPlan::for_topology(&config.fabric.topology, 4);
    let cluster = ShardedCluster::with_plan(config.clone(), plan.clone());
    let m = cluster.lookahead_matrix();
    for a in 0..plan.shards() {
        for b in 0..plan.shards() {
            assert_eq!(m.get(a, b), m.get(b, a), "asymmetric at ({a},{b})");
            let hops = config
                .fabric
                .topology
                .min_hops(plan.range(a), plan.range(b));
            assert_eq!(
                m.get(a, b),
                config
                    .fabric
                    .delivery_delay_for_hops(hops, HEADER_BYTES as u64),
                "entry ({a},{b}) disagrees with the {hops}-hop fabric bound"
            );
        }
    }
    let (min, max) = cluster.lookahead_bounds();
    assert!(
        max > min,
        "a 4-shard 4x4x4 torus must have non-adjacent shard pairs"
    );
}

/// On a crossbar every pair is one hop, so the matrix collapses to the
/// scalar lookahead the pre-matrix engine used.
#[test]
fn crossbar_matrix_reduces_to_scalar_lookahead() {
    use sonuma_protocol::HEADER_BYTES;
    let config = config_for(Topology::crossbar(16));
    let cluster = ShardedCluster::new(config.clone(), 4);
    let (min, max) = cluster.lookahead_bounds();
    assert_eq!(min, max, "crossbar pairs are all equidistant");
    assert_eq!(min, config.fabric.min_delivery_delay(HEADER_BYTES as u64));
}

/// The topology-aware default partition is equivalent too, at every
/// thread count up to the node count — the non-random complement of the
/// property above (this is the exact configuration `--threads` uses).
#[test]
fn default_partitions_match_serial_at_every_thread_count() {
    let config = config_for(Topology::torus2d(4, 3));
    let serial = drive(
        SonumaBackend::with_threads(config.clone(), 1 << 16, 1),
        4,
        5,
        256,
    );
    for threads in [2, 3, 5, 12] {
        let sharded = drive(
            SonumaBackend::with_threads(config.clone(), 1 << 16, threads),
            4,
            5,
            256,
        );
        assert_eq!(serial, sharded, "diverged at {threads} threads");
    }
}
