//! Commit-path cost of the sharded cluster: a fixed closed-loop
//! neighbor-read workload over a 4×4 torus driven at 1 / 4 / 8 shards,
//! so the measured body is dominated by the quantum loop's k-way
//! staged-delivery merge and per-shard scheduling — the path the merge
//! cursor cache and high-water-mark presizing feed. Runs offline through
//! the in-repo criterion shim:
//!
//! ```text
//! cargo bench -p sonuma-machine --bench commit
//! ```

use criterion::{criterion_group, criterion_main, Criterion};
use sonuma_fabric::FabricConfig;
use sonuma_machine::{MachineConfig, SonumaBackend};
use sonuma_protocol::{NodeId, RemoteBackend, RemoteRequest};

/// Builds the 4×4 torus machine and drains `ops_per_node` two-deep
/// pipelined neighbor reads through the full quantum/commit loop.
fn commit_run(threads: usize, ops_per_node: u64) -> u64 {
    let mut config = MachineConfig::simulated_hardware(16);
    config.fabric = FabricConfig::torus2d(4, 4);
    let mut b = SonumaBackend::with_threads(config, 1 << 16, threads);
    let nodes = b.num_nodes();
    for n in 0..nodes {
        b.write_ctx(NodeId(n as u16), 0, &[0xA5; 1024]);
    }
    let mut remaining = vec![ops_per_node; nodes];
    let mut inflight = vec![0usize; nodes];
    loop {
        let mut posted = false;
        for n in 0..nodes {
            while remaining[n] > 0 && inflight[n] < 2 {
                let dst = NodeId(((n + 1) % nodes) as u16);
                let offset = (remaining[n] * 64) % 512;
                b.post(NodeId(n as u16), RemoteRequest::read(dst, offset, 64))
                    .expect("post accepted");
                remaining[n] -= 1;
                inflight[n] += 1;
                posted = true;
            }
        }
        let more = b.advance();
        for (n, inflight) in inflight.iter_mut().enumerate() {
            *inflight -= b.poll(NodeId(n as u16)).len();
        }
        let pending: usize = inflight.iter().sum();
        if !more && !posted && pending == 0 && remaining.iter().all(|&r| r == 0) {
            break;
        }
    }
    b.events_processed()
}

fn bench_commit(c: &mut Criterion) {
    let mut group = c.benchmark_group("commit");
    group.sample_size(5);
    for threads in [1usize, 4, 8] {
        group.bench_function(&format!("merge/{threads}"), |b| {
            b.iter(|| commit_run(threads, 8))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_commit);
criterion_main!(benches);
