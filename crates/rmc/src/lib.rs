//! The Remote Memory Controller (RMC) — the paper's core contribution (§4).
//!
//! The RMC is "a simple, hardwired, on-chip architectural block that
//! services remote memory requests through locally cache-coherent
//! interactions and interfaces directly with an on-die network interface".
//! It comprises three decoupled pipelines:
//!
//! * **RGP** (Request Generation Pipeline): polls registered work queues,
//!   unrolls multi-line requests, and injects request packets;
//! * **RRPP** (Remote Request Processing Pipeline): statelessly services
//!   incoming requests using only the packet header plus the local
//!   [`ContextTable`];
//! * **RCP** (Request Completion Pipeline): matches replies to the
//!   [`InflightTable`] by `tid`, writes payloads to application buffers,
//!   and posts CQ entries.
//!
//! This crate holds the RMC's *shared data structures* — the Context Table
//! and its cache (CT$), the Inflight Transaction Table (ITT), the Memory
//! Access Queue (MAQ), per-QP ring cursors, and the [`RmcTiming`]
//! parameter sets for the two evaluation platforms (hardwired RMC vs. the
//! software RMCemu of the development platform). The pipelines themselves
//! live in `sonuma-machine`'s `pipeline` module, one file per pipeline
//! (`pipeline::rgp`, `pipeline::rrpp`, `pipeline::rcp`): each owns its
//! per-stage state machine and backpressure counters over the structures
//! defined here, and exposes them through a per-node `PipelineStats`
//! snapshot.
//!
//! # Example
//!
//! ```
//! use sonuma_rmc::{InflightTable, ReplyAction};
//! use sonuma_protocol::{QpId, Status};
//!
//! let mut itt = InflightTable::new(16);
//! let tid = itt.alloc(QpId(0), 3, 2, 0x1000).unwrap(); // 2-line read
//! assert_eq!(itt.on_reply(tid, Status::Ok), ReplyAction::InProgress);
//! match itt.on_reply(tid, Status::Ok) {
//!     ReplyAction::Complete { wq_index, status, .. } => {
//!         assert_eq!(wq_index, 3);
//!         assert!(status.is_ok());
//!     }
//!     other => panic!("expected completion, got {other:?}"),
//! }
//! ```

pub mod config;
pub mod ct;
pub mod itt;
pub mod maq;
pub mod qp;

pub use config::RmcTiming;
pub use ct::{ContextEntry, ContextTable, CtCache};
pub use itt::{InflightTable, ReplyAction};
pub use maq::Maq;
pub use qp::QueuePairState;
