//! The Inflight Transaction Table (ITT).
//!
//! "For each request, the RMC generates a transfer identifier (tid) that
//! allows the source RMC to associate replies with requests ... the ITT
//! tracks the number of completed cache-line transactions for each WQ
//! request and is indexed by the request's tid" (§4.2). Requests complete
//! out of order; the ITT is the only per-transaction state in the system,
//! and it lives entirely at the *source* — the destination stays stateless.

use sonuma_protocol::{QpId, Status, Tid};

/// What the RCP should do after accounting one reply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplyAction {
    /// More line replies outstanding for this tid.
    InProgress,
    /// All lines arrived: post a CQ entry and free the tid.
    Complete {
        /// Queue pair the originating WQ entry came from.
        qp: QpId,
        /// Index of the completed WQ entry.
        wq_index: u16,
        /// Aggregate status (first error encountered wins).
        status: Status,
    },
}

#[derive(Debug, Clone, Copy)]
struct InflightEntry {
    qp: QpId,
    wq_index: u16,
    lines_total: u32,
    lines_done: u32,
    buf_vaddr: u64,
    status: Status,
}

/// The source RMC's table of in-flight WQ requests, indexed by tid.
///
/// Slot storage grows lazily: a node that never has more than a handful
/// of requests in flight holds a handful of slots, not `capacity` — at
/// rack scale (4096 nodes × 4096-entry tables) the difference is the
/// bulk of the simulator's resident set. Tid assignment is identical to
/// an eagerly allocated table: fresh tids issue in increasing order and
/// freed tids are reused LIFO, so lazy growth is invisible to the
/// deterministic history.
///
/// # Example
///
/// ```
/// use sonuma_rmc::InflightTable;
/// use sonuma_protocol::QpId;
///
/// let mut itt = InflightTable::new(4);
/// let t = itt.alloc(QpId(0), 0, 128, 0x1000).unwrap(); // one 8 KB read
/// assert_eq!(itt.in_flight(), 1);
/// assert_eq!(itt.buf_vaddr(t), 0x1000);
/// ```
#[derive(Debug, Clone)]
pub struct InflightTable {
    slots: Vec<Option<InflightEntry>>,
    free: Vec<u16>,
    next_fresh: usize,
    capacity: usize,
    allocated: u64,
    completed: u64,
}

impl InflightTable {
    /// Creates a table with `capacity` tids.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero or exceeds `u16::MAX + 1`.
    pub fn new(capacity: usize) -> Self {
        assert!(
            capacity > 0 && capacity <= (u16::MAX as usize) + 1,
            "bad ITT capacity"
        );
        InflightTable {
            slots: Vec::new(),
            free: Vec::new(),
            next_fresh: 0,
            capacity,
            allocated: 0,
            completed: 0,
        }
    }

    /// Tids currently in flight.
    pub fn in_flight(&self) -> usize {
        self.next_fresh - self.free.len()
    }

    /// Whether every tid is in use (the RGP must stall).
    pub fn is_full(&self) -> bool {
        self.free.is_empty() && self.next_fresh == self.capacity
    }

    /// Heap bytes currently resident for this table (grown slots plus the
    /// free list), as opposed to the `capacity` it could grow to.
    pub fn resident_bytes(&self) -> usize {
        self.slots.capacity() * std::mem::size_of::<Option<InflightEntry>>()
            + self.free.capacity() * std::mem::size_of::<u16>()
    }

    /// Lifetime allocations.
    pub fn allocated(&self) -> u64 {
        self.allocated
    }

    /// Lifetime completions.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Allocates a tid for a WQ request unrolling into `lines_total`
    /// transactions; `buf_vaddr` is the local buffer the RCP scatters
    /// replies into. Returns `None` when the table is full.
    pub fn alloc(
        &mut self,
        qp: QpId,
        wq_index: u16,
        lines_total: u32,
        buf_vaddr: u64,
    ) -> Option<Tid> {
        debug_assert!(lines_total > 0, "zero-line transaction");
        // Recycled tids first (LIFO, as an eager free list would), then a
        // fresh slot; the tid sequence matches a fully preallocated table.
        let tid = match self.free.pop() {
            Some(t) => t,
            None if self.next_fresh < self.capacity => {
                let t = self.next_fresh as u16;
                self.next_fresh += 1;
                self.slots.push(None);
                t
            }
            None => return None,
        };
        self.slots[tid as usize] = Some(InflightEntry {
            qp,
            wq_index,
            lines_total,
            lines_done: 0,
            buf_vaddr,
            status: Status::Ok,
        });
        self.allocated += 1;
        Some(Tid(tid))
    }

    /// The local buffer base registered for `tid`.
    ///
    /// # Panics
    ///
    /// Panics if `tid` is not in flight.
    pub fn buf_vaddr(&self, tid: Tid) -> u64 {
        self.slots[tid.index()]
            .as_ref()
            .expect("tid not in flight")
            .buf_vaddr
    }

    /// Accounts one line reply for `tid`; frees the tid on completion.
    ///
    /// # Panics
    ///
    /// Panics if `tid` is not in flight (a protocol-level duplicate).
    pub fn on_reply(&mut self, tid: Tid, status: Status) -> ReplyAction {
        let slot = self.slots[tid.index()].as_mut().expect("tid not in flight");
        slot.lines_done += 1;
        if slot.status == Status::Ok && status != Status::Ok {
            slot.status = status;
        }
        debug_assert!(
            slot.lines_done <= slot.lines_total,
            "more replies than requests"
        );
        if slot.lines_done == slot.lines_total {
            let done = *slot;
            self.slots[tid.index()] = None;
            self.free.push(tid.0);
            self.completed += 1;
            ReplyAction::Complete {
                qp: done.qp,
                wq_index: done.wq_index,
                status: done.status,
            }
        } else {
            ReplyAction::InProgress
        }
    }

    /// Forcibly frees `tid` (the source gave up on the operation) and
    /// returns the `(qp, wq_index)` an error completion should target, or
    /// `None` if the tid is not in flight. Counts toward `completed` so
    /// allocation/completion balance still holds at end of run.
    pub fn abort(&mut self, tid: Tid) -> Option<(QpId, u16)> {
        let done = self.slots.get_mut(tid.index())?.take()?;
        self.free.push(tid.0);
        self.completed += 1;
        Some((done.qp, done.wq_index))
    }

    /// Frees every in-flight tid (the node crashed), returning the
    /// `(tid, qp, wq_index)` triples in tid order so the caller can post
    /// deterministic error completions.
    pub fn abort_all(&mut self) -> Vec<(Tid, QpId, u16)> {
        let mut aborted = Vec::new();
        for (i, slot) in self.slots.iter_mut().enumerate() {
            if let Some(done) = slot.take() {
                let tid = Tid(i as u16);
                self.free.push(tid.0);
                self.completed += 1;
                aborted.push((tid, done.qp, done.wq_index));
            }
        }
        aborted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_line_completes_immediately() {
        let mut itt = InflightTable::new(2);
        let t = itt.alloc(QpId(1), 9, 1, 0).unwrap();
        match itt.on_reply(t, Status::Ok) {
            ReplyAction::Complete {
                qp,
                wq_index,
                status,
            } => {
                assert_eq!(qp, QpId(1));
                assert_eq!(wq_index, 9);
                assert!(status.is_ok());
            }
            other => panic!("expected completion, got {other:?}"),
        }
        assert_eq!(itt.in_flight(), 0);
        assert_eq!(itt.completed(), 1);
    }

    #[test]
    fn multi_line_counts_to_total() {
        let mut itt = InflightTable::new(2);
        let t = itt.alloc(QpId(0), 0, 4, 0x100).unwrap();
        for _ in 0..3 {
            assert_eq!(itt.on_reply(t, Status::Ok), ReplyAction::InProgress);
        }
        assert!(matches!(
            itt.on_reply(t, Status::Ok),
            ReplyAction::Complete { .. }
        ));
    }

    #[test]
    fn first_error_sticks() {
        let mut itt = InflightTable::new(2);
        let t = itt.alloc(QpId(0), 0, 3, 0).unwrap();
        itt.on_reply(t, Status::Ok);
        itt.on_reply(t, Status::OutOfBounds);
        match itt.on_reply(t, Status::Ok) {
            ReplyAction::Complete { status, .. } => assert_eq!(status, Status::OutOfBounds),
            other => panic!("expected completion, got {other:?}"),
        }
    }

    #[test]
    fn capacity_exhaustion_and_reuse() {
        let mut itt = InflightTable::new(2);
        let a = itt.alloc(QpId(0), 0, 1, 0).unwrap();
        let _b = itt.alloc(QpId(0), 1, 1, 0).unwrap();
        assert!(itt.is_full());
        assert!(itt.alloc(QpId(0), 2, 1, 0).is_none());
        itt.on_reply(a, Status::Ok);
        assert!(!itt.is_full());
        let c = itt.alloc(QpId(0), 3, 1, 0).unwrap();
        assert_eq!(c, a, "freed tid should be reused");
    }

    #[test]
    fn distinct_tids_track_independently() {
        let mut itt = InflightTable::new(8);
        let a = itt.alloc(QpId(0), 0, 2, 0x0).unwrap();
        let b = itt.alloc(QpId(1), 5, 1, 0x40).unwrap();
        assert_ne!(a, b);
        assert_eq!(itt.buf_vaddr(a), 0x0);
        assert_eq!(itt.buf_vaddr(b), 0x40);
        assert!(matches!(
            itt.on_reply(b, Status::Ok),
            ReplyAction::Complete { wq_index: 5, .. }
        ));
        assert_eq!(itt.on_reply(a, Status::Ok), ReplyAction::InProgress);
        assert!(matches!(
            itt.on_reply(a, Status::Ok),
            ReplyAction::Complete { wq_index: 0, .. }
        ));
    }

    #[test]
    #[should_panic(expected = "tid not in flight")]
    fn reply_for_free_tid_panics() {
        let mut itt = InflightTable::new(2);
        let t = itt.alloc(QpId(0), 0, 1, 0).unwrap();
        itt.on_reply(t, Status::Ok);
        itt.on_reply(t, Status::Ok); // duplicate: must panic in the model
    }

    #[test]
    #[should_panic(expected = "bad ITT capacity")]
    fn zero_capacity_panics() {
        InflightTable::new(0);
    }

    #[test]
    fn abort_frees_tid_and_reports_target() {
        let mut itt = InflightTable::new(4);
        let t = itt.alloc(QpId(2), 7, 4, 0x200).unwrap();
        assert_eq!(itt.abort(t), Some((QpId(2), 7)));
        assert_eq!(itt.in_flight(), 0);
        assert_eq!(itt.completed(), 1);
        // Double abort and unknown tids are inert.
        assert_eq!(itt.abort(t), None);
        assert_eq!(itt.abort(Tid(3)), None);
    }

    #[test]
    fn abort_all_drains_in_tid_order() {
        let mut itt = InflightTable::new(8);
        let a = itt.alloc(QpId(0), 0, 2, 0).unwrap();
        let b = itt.alloc(QpId(1), 1, 1, 0).unwrap();
        let c = itt.alloc(QpId(2), 2, 3, 0).unwrap();
        itt.on_reply(b, Status::Ok); // b completes normally first
        let aborted = itt.abort_all();
        assert_eq!(aborted, vec![(a, QpId(0), 0), (c, QpId(2), 2)]);
        assert_eq!(itt.in_flight(), 0);
        assert_eq!(itt.completed(), 3);
    }

    #[test]
    fn lazy_growth_matches_eager_tid_order() {
        // Fresh tids issue in increasing order; a freed tid is reused
        // before any fresh one — exactly the eager `(0..cap).rev()` free
        // list — so history never depends on the growth strategy.
        let mut itt = InflightTable::new(1 << 12);
        let a = itt.alloc(QpId(0), 0, 1, 0).unwrap();
        let b = itt.alloc(QpId(0), 1, 1, 0).unwrap();
        let c = itt.alloc(QpId(0), 2, 1, 0).unwrap();
        assert_eq!((a, b, c), (Tid(0), Tid(1), Tid(2)));
        itt.on_reply(b, Status::Ok);
        assert_eq!(itt.alloc(QpId(0), 3, 1, 0), Some(Tid(1)));
        assert_eq!(itt.alloc(QpId(0), 4, 1, 0), Some(Tid(3)));
        assert_eq!(itt.in_flight(), 4);
        // Only 4 of the 4096 slots are resident.
        assert!(itt.resident_bytes() < 64 * std::mem::size_of::<Option<InflightEntry>>());
    }
}
