//! The Context Table (CT) and its lookaside cache (CT$).
//!
//! "The CT keeps track of all registered context segments, queue pairs, and
//! page table root addresses. Each CT entry, indexed by its ctx_id,
//! specifies the address space and a list of registered QPs for that
//! context" (§4.2). The CT is what makes the destination side *stateless*:
//! any incoming `<ctx_id, offset>` is validated and translated against
//! purely local configuration.

use sonuma_memory::VAddr;
use sonuma_protocol::{CtxId, QpId, Status};

/// One registered context: a segment of the local address space exposed to
/// the global address space `ctx_id`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ContextEntry {
    /// Local virtual base address of the context segment.
    pub segment_base: VAddr,
    /// Segment length in bytes (bounds for the security check).
    pub segment_len: u64,
    /// Address-space id whose page tables translate segment addresses.
    pub asid: u32,
    /// Queue pairs registered for this context on this node.
    pub qps: Vec<QpId>,
}

impl ContextEntry {
    /// Validates `offset..offset+len` against the segment bounds and
    /// returns the local virtual address of `offset`.
    ///
    /// # Errors
    ///
    /// Returns [`Status::OutOfBounds`] exactly when the range escapes the
    /// segment — the paper's security check (§4.2).
    pub fn resolve(&self, offset: u64, len: u64) -> Result<VAddr, Status> {
        let end = offset.checked_add(len).ok_or(Status::OutOfBounds)?;
        if end > self.segment_len {
            return Err(Status::OutOfBounds);
        }
        Ok(self.segment_base.offset(offset))
    }
}

/// The Context Table: all contexts registered on one node, indexed by
/// `ctx_id`.
///
/// # Example
///
/// ```
/// use sonuma_rmc::{ContextEntry, ContextTable};
/// use sonuma_protocol::{CtxId, Status};
/// use sonuma_memory::VAddr;
///
/// let mut ct = ContextTable::new();
/// ct.register(CtxId(1), ContextEntry {
///     segment_base: VAddr::new(0x10000),
///     segment_len: 8192,
///     asid: 1,
///     qps: vec![],
/// });
/// let entry = ct.lookup(CtxId(1)).unwrap();
/// assert!(entry.resolve(0, 64).is_ok());
/// assert_eq!(entry.resolve(8192, 64), Err(Status::OutOfBounds));
/// ```
#[derive(Debug, Clone, Default)]
pub struct ContextTable {
    entries: Vec<Option<ContextEntry>>,
}

impl ContextTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Heap bytes currently resident for this table (the lazily grown
    /// entry slots plus each entry's QP list).
    pub fn resident_bytes(&self) -> usize {
        self.entries.capacity() * std::mem::size_of::<Option<ContextEntry>>()
            + self
                .entries
                .iter()
                .flatten()
                .map(|e| e.qps.capacity() * std::mem::size_of::<QpId>())
                .sum::<usize>()
    }

    /// Registers (or replaces) a context.
    pub fn register(&mut self, ctx: CtxId, entry: ContextEntry) {
        let idx = ctx.index();
        if idx >= self.entries.len() {
            self.entries.resize(idx + 1, None);
        }
        self.entries[idx] = Some(entry);
    }

    /// Looks up a context.
    ///
    /// # Errors
    ///
    /// Returns [`Status::BadContext`] for unregistered ids.
    pub fn lookup(&self, ctx: CtxId) -> Result<&ContextEntry, Status> {
        self.entries
            .get(ctx.index())
            .and_then(|e| e.as_ref())
            .ok_or(Status::BadContext)
    }

    /// Mutable lookup (QP registration).
    ///
    /// # Errors
    ///
    /// Returns [`Status::BadContext`] for unregistered ids.
    pub fn lookup_mut(&mut self, ctx: CtxId) -> Result<&mut ContextEntry, Status> {
        self.entries
            .get_mut(ctx.index())
            .and_then(|e| e.as_mut())
            .ok_or(Status::BadContext)
    }

    /// Removes a context (driver teardown).
    pub fn unregister(&mut self, ctx: CtxId) -> Option<ContextEntry> {
        self.entries.get_mut(ctx.index()).and_then(|e| e.take())
    }

    /// Number of registered contexts.
    pub fn len(&self) -> usize {
        self.entries.iter().filter(|e| e.is_some()).count()
    }

    /// Whether no contexts are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The CT$ — a small lookaside structure caching recently accessed CT rows
/// "to reduce pressure on the MAQ" (§4.3).
///
/// Timing-only: hits avoid the CT-row memory fetch; the data always comes
/// from the authoritative [`ContextTable`].
#[derive(Debug, Clone)]
pub struct CtCache {
    capacity: usize,
    resident: Vec<(u16, u64)>, // (ctx, lru)
    tick: u64,
    hits: u64,
    misses: u64,
}

impl CtCache {
    /// Creates an empty CT$ with `capacity` rows. A zero capacity disables
    /// the cache (every access misses) — used by the ablation bench.
    pub fn new(capacity: usize) -> Self {
        CtCache {
            capacity,
            resident: Vec::new(),
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Touches `ctx`; returns whether it hit.
    pub fn touch(&mut self, ctx: CtxId) -> bool {
        self.tick += 1;
        if self.capacity == 0 {
            self.misses += 1;
            return false;
        }
        if let Some(slot) = self.resident.iter_mut().find(|(c, _)| *c == ctx.0) {
            slot.1 = self.tick;
            self.hits += 1;
            return true;
        }
        self.misses += 1;
        if self.resident.len() < self.capacity {
            self.resident.push((ctx.0, self.tick));
        } else {
            let victim = self
                .resident
                .iter_mut()
                .min_by_key(|(_, lru)| *lru)
                .expect("nonzero capacity");
            *victim = (ctx.0, self.tick);
        }
        false
    }

    /// Invalidates one context's row (context teardown).
    pub fn invalidate(&mut self, ctx: CtxId) {
        self.resident.retain(|(c, _)| *c != ctx.0);
    }

    /// Lifetime hits.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lifetime misses.
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(base: u64, len: u64) -> ContextEntry {
        ContextEntry {
            segment_base: VAddr::new(base),
            segment_len: len,
            asid: 1,
            qps: Vec::new(),
        }
    }

    #[test]
    fn register_lookup_roundtrip() {
        let mut ct = ContextTable::new();
        assert!(ct.is_empty());
        ct.register(CtxId(3), entry(0x4000, 1 << 20));
        assert_eq!(ct.len(), 1);
        assert_eq!(
            ct.lookup(CtxId(3)).unwrap().segment_base,
            VAddr::new(0x4000)
        );
        assert_eq!(ct.lookup(CtxId(0)), Err(Status::BadContext));
    }

    #[test]
    fn resolve_checks_bounds() {
        let e = entry(0x1000, 4096);
        assert_eq!(e.resolve(0, 64).unwrap(), VAddr::new(0x1000));
        assert_eq!(e.resolve(4032, 64).unwrap(), VAddr::new(0x1FC0));
        assert_eq!(e.resolve(4033, 64), Err(Status::OutOfBounds));
        assert_eq!(e.resolve(4096, 0), Ok(VAddr::new(0x2000)));
        assert_eq!(e.resolve(4097, 0), Err(Status::OutOfBounds));
        // Overflow-safe.
        assert_eq!(e.resolve(u64::MAX, 2), Err(Status::OutOfBounds));
    }

    #[test]
    fn unregister_removes() {
        let mut ct = ContextTable::new();
        ct.register(CtxId(1), entry(0, 64));
        assert!(ct.unregister(CtxId(1)).is_some());
        assert_eq!(ct.lookup(CtxId(1)), Err(Status::BadContext));
        assert!(ct.unregister(CtxId(1)).is_none());
    }

    #[test]
    fn qp_registration_via_lookup_mut() {
        let mut ct = ContextTable::new();
        ct.register(CtxId(0), entry(0, 64));
        ct.lookup_mut(CtxId(0)).unwrap().qps.push(QpId(2));
        assert_eq!(ct.lookup(CtxId(0)).unwrap().qps, vec![QpId(2)]);
    }

    #[test]
    fn ct_cache_hit_miss_lru() {
        let mut c = CtCache::new(2);
        assert!(!c.touch(CtxId(1))); // miss, insert
        assert!(c.touch(CtxId(1))); // hit
        assert!(!c.touch(CtxId(2))); // miss, insert
        assert!(!c.touch(CtxId(3))); // miss, evicts LRU (ctx1)
        assert!(!c.touch(CtxId(1))); // miss again
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 4);
    }

    #[test]
    fn ct_cache_disabled_always_misses() {
        let mut c = CtCache::new(0);
        for _ in 0..5 {
            assert!(!c.touch(CtxId(1)));
        }
        assert_eq!(c.hits(), 0);
        assert_eq!(c.misses(), 5);
    }

    #[test]
    fn ct_cache_invalidate() {
        let mut c = CtCache::new(2);
        c.touch(CtxId(1));
        c.invalidate(CtxId(1));
        assert!(!c.touch(CtxId(1)), "invalidated row must miss");
    }
}
