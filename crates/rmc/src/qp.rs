//! RMC-side queue-pair state: ring geometry and cursors.
//!
//! The application and the RMC share WQ/CQ rings in memory (§4.1). The
//! application owns the WQ producer cursor and the CQ consumer cursor; the
//! RMC owns the mirror cursors tracked here. Phase bits (toggling per ring
//! wrap) let each side detect fresh entries without shared head pointers.

use sonuma_memory::VAddr;
use sonuma_protocol::{CtxId, CQ_ENTRY_BYTES, WQ_ENTRY_BYTES};

/// One queue pair as registered with the RMC by the device driver.
///
/// # Example
///
/// ```
/// use sonuma_rmc::QueuePairState;
/// use sonuma_protocol::CtxId;
/// use sonuma_memory::VAddr;
///
/// let mut qp = QueuePairState::new(CtxId(0), 1, VAddr::new(0x1000), VAddr::new(0x3000), 8);
/// assert_eq!(qp.wq_entry_addr(0), VAddr::new(0x1000));
/// assert_eq!(qp.wq_entry_addr(1), VAddr::new(0x1040));
/// let (idx, phase) = qp.wq_cursor();
/// assert_eq!((idx, phase), (0, true));
/// qp.advance_wq();
/// assert_eq!(qp.wq_cursor().0, 1);
/// ```
#[derive(Debug, Clone)]
pub struct QueuePairState {
    ctx: CtxId,
    asid: u32,
    wq_base: VAddr,
    cq_base: VAddr,
    entries: u16,
    // RMC consumer cursor over the WQ.
    wq_index: u16,
    wq_phase: bool,
    // RMC producer cursor over the CQ.
    cq_index: u16,
    cq_phase: bool,
    wq_consumed: u64,
    cq_produced: u64,
}

impl QueuePairState {
    /// Registers a QP over rings of `entries` slots at `wq_base`/`cq_base`.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero.
    pub fn new(ctx: CtxId, asid: u32, wq_base: VAddr, cq_base: VAddr, entries: u16) -> Self {
        assert!(entries > 0, "empty queue pair");
        QueuePairState {
            ctx,
            asid,
            wq_base,
            cq_base,
            entries,
            wq_index: 0,
            wq_phase: true,
            cq_index: 0,
            cq_phase: true,
            wq_consumed: 0,
            cq_produced: 0,
        }
    }

    /// The context this QP belongs to.
    pub fn ctx(&self) -> CtxId {
        self.ctx
    }

    /// Address space for buffer translations.
    pub fn asid(&self) -> u32 {
        self.asid
    }

    /// Ring capacity in entries.
    pub fn entries(&self) -> u16 {
        self.entries
    }

    /// Virtual address of WQ slot `index`.
    pub fn wq_entry_addr(&self, index: u16) -> VAddr {
        debug_assert!(index < self.entries);
        self.wq_base.offset(index as u64 * WQ_ENTRY_BYTES)
    }

    /// Virtual address of CQ slot `index`.
    pub fn cq_entry_addr(&self, index: u16) -> VAddr {
        debug_assert!(index < self.entries);
        self.cq_base.offset(index as u64 * CQ_ENTRY_BYTES)
    }

    /// The RMC's WQ consumer cursor: `(next index, expected phase)`.
    pub fn wq_cursor(&self) -> (u16, bool) {
        (self.wq_index, self.wq_phase)
    }

    /// Advances the WQ consumer cursor past one consumed entry.
    pub fn advance_wq(&mut self) {
        self.wq_consumed += 1;
        self.wq_index += 1;
        if self.wq_index == self.entries {
            self.wq_index = 0;
            self.wq_phase = !self.wq_phase;
        }
    }

    /// The RMC's CQ producer cursor: `(next index, phase to write)`.
    pub fn cq_cursor(&self) -> (u16, bool) {
        (self.cq_index, self.cq_phase)
    }

    /// Advances the CQ producer cursor past one produced entry.
    pub fn advance_cq(&mut self) {
        self.cq_produced += 1;
        self.cq_index += 1;
        if self.cq_index == self.entries {
            self.cq_index = 0;
            self.cq_phase = !self.cq_phase;
        }
    }

    /// Total WQ entries consumed.
    pub fn wq_consumed(&self) -> u64 {
        self.wq_consumed
    }

    /// Total CQ entries produced.
    pub fn cq_produced(&self) -> u64 {
        self.cq_produced
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn qp() -> QueuePairState {
        QueuePairState::new(CtxId(2), 7, VAddr::new(0x1000), VAddr::new(0x8000), 4)
    }

    #[test]
    fn slot_addresses_are_line_spaced() {
        let qp = qp();
        assert_eq!(qp.wq_entry_addr(0).raw(), 0x1000);
        assert_eq!(qp.wq_entry_addr(3).raw(), 0x1000 + 3 * 64);
        assert_eq!(qp.cq_entry_addr(2).raw(), 0x8000 + 2 * 64);
    }

    #[test]
    fn wq_cursor_wraps_and_flips_phase() {
        let mut qp = qp();
        assert_eq!(qp.wq_cursor(), (0, true));
        for _ in 0..4 {
            qp.advance_wq();
        }
        assert_eq!(qp.wq_cursor(), (0, false), "phase flips on wrap");
        for _ in 0..4 {
            qp.advance_wq();
        }
        assert_eq!(qp.wq_cursor(), (0, true), "phase flips back");
        assert_eq!(qp.wq_consumed(), 8);
    }

    #[test]
    fn cq_cursor_independent_of_wq() {
        let mut qp = qp();
        qp.advance_wq();
        qp.advance_wq();
        assert_eq!(qp.cq_cursor(), (0, true));
        qp.advance_cq();
        assert_eq!(qp.cq_cursor(), (1, true));
        assert_eq!(qp.cq_produced(), 1);
    }

    #[test]
    fn metadata_accessors() {
        let qp = qp();
        assert_eq!(qp.ctx(), CtxId(2));
        assert_eq!(qp.asid(), 7);
        assert_eq!(qp.entries(), 4);
    }

    #[test]
    #[should_panic(expected = "empty queue pair")]
    fn zero_entries_panics() {
        QueuePairState::new(CtxId(0), 0, VAddr::new(0), VAddr::new(0), 0);
    }
}
