//! RMC timing parameters for the two evaluation platforms.

use sonuma_sim::SimTime;

/// Per-stage timing of the RMC pipelines.
///
/// Two presets reproduce the paper's platforms:
///
/// * [`RmcTiming::hardware`] — the hardwired RMC of the cycle-accurate
///   model (Table 1): single-cycle combinational stages at 2 GHz, fully
///   pipelined unrolling, 32-entry MAQ and TLB.
/// * [`RmcTiming::emulated`] — RMCemu on the development platform (§7.1):
///   the same logic executed by kernel threads on dedicated virtual CPUs,
///   so every stage costs hundreds of nanoseconds and multi-line requests
///   unroll at software speed. The paper measures ~5x the latency and ~1/40
///   the bandwidth of the simulated hardware; these constants are
///   calibrated to land in that regime.
#[derive(Debug, Clone, Copy)]
pub struct RmcTiming {
    /// Cadence at which the RGP re-polls a registered WQ that had no new
    /// entry (detection adds on average half this interval).
    pub poll_interval: SimTime,
    /// Cost of one combinational pipeline stage (the `L` states of Fig. 3b).
    pub stage_local: SimTime,
    /// Fixed per-WQ-request cost in the RGP (decode, tid allocation, ITT
    /// init) beyond memory and TLB accesses.
    pub rgp_per_request: SimTime,
    /// Initiation interval between successive unrolled line transactions of
    /// one multi-line request.
    pub unroll_interval: SimTime,
    /// Fixed per-packet processing cost in the RRPP (decode, VA compute,
    /// reply generation) beyond memory and TLB accesses.
    pub rrpp_per_packet: SimTime,
    /// Fixed per-reply processing cost in the RCP (decode, ITT update)
    /// beyond memory and TLB accesses.
    pub rcp_per_packet: SimTime,
    /// TLB lookup cost (hit) — one cycle in hardware.
    pub tlb_lookup: SimTime,
    /// TLB entries (Table 1: 32).
    pub tlb_entries: usize,
    /// MAQ entries bounding concurrent RMC memory accesses (Table 1: 32).
    pub maq_entries: usize,
    /// CT$ entries caching recently used context-table rows (§4.3).
    pub ct_cache_entries: usize,
    /// Penalty for a CT$ miss (fetch the CT row through the MAQ/L1).
    pub ct_miss_penalty: SimTime,
}

impl RmcTiming {
    /// The hardwired RMC of the simulated-hardware platform.
    pub fn hardware() -> Self {
        let cycle = SimTime::from_cycles(1, 2_000_000_000);
        RmcTiming {
            poll_interval: SimTime::from_ns(10),
            stage_local: cycle,
            rgp_per_request: cycle * 4,
            unroll_interval: cycle * 2,
            rrpp_per_packet: cycle * 4,
            rcp_per_packet: cycle * 4,
            tlb_lookup: cycle,
            tlb_entries: 32,
            maq_entries: 32,
            ct_cache_entries: 8,
            ct_miss_penalty: SimTime::from_ns(15),
        }
    }

    /// RMCemu: the software RMC of the Xen-based development platform.
    ///
    /// Kernel threads on dedicated virtual CPUs run the RGP+RCP and RRPP
    /// loops; each stage is hundreds of instructions, and unrolling a large
    /// WQ request into line-sized transfers is the measured bottleneck
    /// ("the RMC emulation module becomes the performance bottleneck as it
    /// unrolls large WQ requests into cache-line-sized requests", §7.2).
    pub fn emulated() -> Self {
        RmcTiming {
            poll_interval: SimTime::from_ns(120),
            stage_local: SimTime::from_ns(30),
            rgp_per_request: SimTime::from_ns(120),
            unroll_interval: SimTime::from_ns(270),
            rrpp_per_packet: SimTime::from_ns(120),
            rcp_per_packet: SimTime::from_ns(110),
            tlb_lookup: SimTime::from_ns(20),
            tlb_entries: 32,
            maq_entries: 32,
            ct_cache_entries: 8,
            ct_miss_penalty: SimTime::from_ns(60),
        }
    }
}

impl Default for RmcTiming {
    fn default() -> Self {
        Self::hardware()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hardware_stages_are_cycle_scale() {
        let t = RmcTiming::hardware();
        assert_eq!(t.stage_local, SimTime::from_ps(500));
        assert_eq!(t.tlb_entries, 32);
        assert_eq!(t.maq_entries, 32);
        assert!(t.unroll_interval < SimTime::from_ns(2));
    }

    #[test]
    fn emulated_is_orders_of_magnitude_slower() {
        let hw = RmcTiming::hardware();
        let emu = RmcTiming::emulated();
        assert!(emu.stage_local >= hw.stage_local * 50);
        assert!(emu.unroll_interval >= hw.unroll_interval * 100);
        assert!(emu.rrpp_per_packet >= hw.rrpp_per_packet * 50);
    }

    #[test]
    fn emulated_unroll_matches_dev_platform_bandwidth() {
        // 64 B per unroll interval should land near the paper's 1.8 Gbps
        // dev-platform ceiling.
        let emu = RmcTiming::emulated();
        let gbps = 64.0 * 8.0 / emu.unroll_interval.as_ns_f64();
        assert!(
            (1.5..2.4).contains(&gbps),
            "dev-platform line rate {gbps} Gbps"
        );
    }
}
