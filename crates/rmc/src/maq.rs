//! The Memory Access Queue (MAQ).
//!
//! "To further ensure high throughput and low latency at high load, the RMC
//! allows multiple concurrent memory accesses in flight via a Memory Access
//! Queue (MAQ) ... The number of outstanding operations is limited by the
//! number of miss status handling registers at the RMC's L1 cache" (§4.3).
//!
//! Analytically, the MAQ is a pool of N slots: an access occupies the
//! earliest-free slot for its duration, so at most N accesses overlap and
//! excess accesses queue — which is what bounds the RMC's memory-level
//! parallelism under streaming load.

use sonuma_sim::SimTime;

/// A slot pool bounding concurrent RMC memory accesses.
///
/// # Example
///
/// ```
/// use sonuma_rmc::Maq;
/// use sonuma_sim::SimTime;
///
/// let mut maq = Maq::new(2);
/// let d = SimTime::from_ns(60);
/// assert_eq!(maq.acquire(SimTime::ZERO, d), SimTime::ZERO);
/// assert_eq!(maq.acquire(SimTime::ZERO, d), SimTime::ZERO);
/// // Third concurrent access waits for a slot.
/// assert_eq!(maq.acquire(SimTime::ZERO, d), SimTime::from_ns(60));
/// ```
#[derive(Debug, Clone)]
pub struct Maq {
    slots: Vec<SimTime>, // each slot's busy-until time
    accesses: u64,
    queued: u64,
}

impl Maq {
    /// Creates a MAQ with `entries` slots.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero.
    pub fn new(entries: usize) -> Self {
        assert!(entries > 0, "zero-entry MAQ");
        Maq {
            slots: vec![SimTime::ZERO; entries],
            accesses: 0,
            queued: 0,
        }
    }

    /// Number of slots.
    pub fn entries(&self) -> usize {
        self.slots.len()
    }

    /// Acquires a slot for an access of `duration` wishing to start at
    /// `now`; returns the actual start time (>= `now`; later iff all slots
    /// are busy).
    pub fn acquire(&mut self, now: SimTime, duration: SimTime) -> SimTime {
        let slot = self
            .slots
            .iter_mut()
            .min_by_key(|t| **t)
            .expect("nonzero slots");
        let start = now.max(*slot);
        if start > now {
            self.queued += 1;
        }
        *slot = start + duration;
        self.accesses += 1;
        start
    }

    /// Two-phase acquisition for accesses whose duration depends on their
    /// start time (e.g. DRAM queueing): picks the earliest-free slot,
    /// computes the duration via `f(start)`, occupies the slot, and returns
    /// `(start, completion)`.
    pub fn schedule<F>(&mut self, now: SimTime, f: F) -> (SimTime, SimTime)
    where
        F: FnOnce(SimTime) -> SimTime,
    {
        let slot = self
            .slots
            .iter_mut()
            .min_by_key(|t| **t)
            .expect("nonzero slots");
        let start = now.max(*slot);
        if start > now {
            self.queued += 1;
        }
        let duration = f(start);
        *slot = start + duration;
        self.accesses += 1;
        (start, start + duration)
    }

    /// Lifetime accesses issued.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Accesses that had to wait for a slot.
    pub fn queued(&self) -> u64 {
        self.queued
    }

    /// Number of slots busy at time `t`.
    pub fn busy_at(&self, t: SimTime) -> usize {
        self.slots.iter().filter(|&&s| s > t).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_until_full() {
        let mut maq = Maq::new(4);
        let d = SimTime::from_ns(100);
        for _ in 0..4 {
            assert_eq!(maq.acquire(SimTime::ZERO, d), SimTime::ZERO);
        }
        assert_eq!(maq.busy_at(SimTime::from_ns(50)), 4);
        // Fifth queues behind the earliest slot.
        assert_eq!(maq.acquire(SimTime::ZERO, d), SimTime::from_ns(100));
        assert_eq!(maq.queued(), 1);
    }

    #[test]
    fn slots_recycle_over_time() {
        let mut maq = Maq::new(2);
        let d = SimTime::from_ns(10);
        maq.acquire(SimTime::ZERO, d);
        maq.acquire(SimTime::ZERO, d);
        // At t=20 both are free again.
        assert_eq!(maq.acquire(SimTime::from_ns(20), d), SimTime::from_ns(20));
        assert_eq!(maq.queued(), 0);
    }

    #[test]
    fn throughput_is_entries_per_duration() {
        let mut maq = Maq::new(32);
        let d = SimTime::from_ns(64);
        let mut last = SimTime::ZERO;
        let n = 3200;
        for _ in 0..n {
            last = maq.acquire(SimTime::ZERO, d) + d;
        }
        // 32 slots x (1/64ns) = 0.5 access/ns; 3200 accesses ~ 6.4 us.
        let expect_ns = (n as u64 / 32) * 64;
        assert_eq!(last, SimTime::from_ns(expect_ns));
    }

    #[test]
    fn schedule_computes_duration_from_start() {
        let mut maq = Maq::new(1);
        let (s1, e1) = maq.schedule(SimTime::ZERO, |_| SimTime::from_ns(10));
        assert_eq!((s1, e1), (SimTime::ZERO, SimTime::from_ns(10)));
        // Second access starts at 10 ns and its duration sees that start.
        let (s2, e2) = maq.schedule(SimTime::ZERO, |start| {
            assert_eq!(start, SimTime::from_ns(10));
            SimTime::from_ns(5)
        });
        assert_eq!((s2, e2), (SimTime::from_ns(10), SimTime::from_ns(15)));
        assert_eq!(maq.queued(), 1);
    }

    #[test]
    #[should_panic(expected = "zero-entry")]
    fn zero_entries_panics() {
        Maq::new(0);
    }
}
