//! Property tests over the RMC's state machines: the ITT under arbitrary
//! out-of-order completion, the MAQ's concurrency bound, and CT$ behavior.

use proptest::collection::vec;
use proptest::prelude::*;

use sonuma_memory::VAddr;
use sonuma_protocol::{CtxId, QpId, Status};
use sonuma_rmc::{ContextEntry, ContextTable, CtCache, InflightTable, Maq, ReplyAction};
use sonuma_sim::SimTime;

proptest! {
    /// For any interleaving of allocations and (randomly ordered) replies,
    /// every transaction completes exactly once, with exactly its requested
    /// number of line replies, and tids never leak.
    #[test]
    fn itt_completes_each_tid_exactly_once(
        ops in vec((1u32..16, any::<bool>()), 1..100),
        pick in vec(any::<u16>(), 0..400),
    ) {
        let mut itt = InflightTable::new(32);
        let mut live: Vec<(sonuma_protocol::Tid, u32)> = Vec::new(); // (tid, remaining)
        let mut completed = 0u64;
        let mut expected_completions = 0u64;
        let mut op_iter = ops.iter();
        let mut pick_iter = pick.iter();
        loop {
            // Alternate: try to allocate, then deliver a random reply.
            match op_iter.next() {
                Some(&(lines, _)) => {
                    if let Some(tid) = itt.alloc(QpId(0), 0, lines, 0x1000) {
                        live.push((tid, lines));
                        expected_completions += 1;
                    }
                }
                None => {
                    if live.is_empty() {
                        break;
                    }
                }
            }
            if !live.is_empty() {
                let idx = match pick_iter.next() {
                    Some(&p) => p as usize % live.len(),
                    None => 0,
                };
                let (tid, _) = live[idx];
                match itt.on_reply(tid, Status::Ok) {
                    ReplyAction::Complete { .. } => {
                        completed += 1;
                        live.swap_remove(idx);
                    }
                    ReplyAction::InProgress => {
                        live[idx].1 -= 1;
                        prop_assert!(live[idx].1 > 0, "InProgress past the last line");
                    }
                }
            }
        }
        // Drain the rest.
        while let Some(&mut (tid, _)) = live.first_mut() {
            match itt.on_reply(tid, Status::Ok) {
                ReplyAction::Complete { .. } => {
                    completed += 1;
                    live.swap_remove(0);
                }
                ReplyAction::InProgress => {}
            }
        }
        prop_assert_eq!(completed, expected_completions);
        prop_assert_eq!(itt.in_flight(), 0);
        prop_assert_eq!(itt.completed(), expected_completions);
    }

    /// The MAQ never lets more than `entries` accesses overlap, for any
    /// request times and durations.
    #[test]
    fn maq_bounds_concurrency(
        entries in 1usize..16,
        reqs in vec((0u64..10_000, 1u64..500), 1..200),
    ) {
        let mut maq = Maq::new(entries);
        let mut intervals: Vec<(SimTime, SimTime)> = Vec::new();
        for &(at_ns, dur_ns) in &reqs {
            let now = SimTime::from_ns(at_ns);
            let dur = SimTime::from_ns(dur_ns);
            let (start, end) = maq.schedule(now, |_| dur);
            prop_assert!(start >= now);
            prop_assert_eq!(end - start, dur);
            intervals.push((start, end));
        }
        // Check the concurrency bound at every interval start.
        for &(t, _) in &intervals {
            let overlapping = intervals
                .iter()
                .filter(|&&(s, e)| s <= t && t < e)
                .count();
            prop_assert!(
                overlapping <= entries,
                "{overlapping} accesses overlap at {t} with {entries} slots"
            );
        }
    }

    /// The CT$ never reports more hits than touches, and a second touch of
    /// a context within `capacity` distinct contexts always hits.
    #[test]
    fn ct_cache_hit_accounting(
        capacity in 1usize..8,
        touches in vec(0u16..32, 1..200),
    ) {
        let mut cache = CtCache::new(capacity);
        let mut last: Option<u16> = None;
        for &ctx in &touches {
            let hit = cache.touch(CtxId(ctx));
            if last == Some(ctx) {
                prop_assert!(hit, "immediate re-touch must hit");
            }
            last = Some(ctx);
        }
        prop_assert_eq!(cache.hits() + cache.misses(), touches.len() as u64);
    }

    /// Segment bounds checking: resolve accepts exactly the in-range
    /// requests.
    #[test]
    fn context_resolve_is_exact(
        base in 0u64..(1 << 30),
        seg_len in 64u64..(1 << 20),
        offset in 0u64..(2 << 20),
        len in 0u64..4096,
    ) {
        let entry = ContextEntry {
            segment_base: VAddr::new(base),
            segment_len: seg_len,
            asid: 0,
            qps: vec![],
        };
        let result = entry.resolve(offset, len);
        if offset + len <= seg_len {
            prop_assert_eq!(result.unwrap(), VAddr::new(base + offset));
        } else {
            prop_assert_eq!(result.unwrap_err(), Status::OutOfBounds);
        }
    }

    /// Context-table registration behaves like a map keyed by ctx id.
    #[test]
    fn context_table_is_a_map(ids in vec(0u16..64, 1..64)) {
        let mut ct = ContextTable::new();
        let mut model = std::collections::HashMap::new();
        for (i, &id) in ids.iter().enumerate() {
            let entry = ContextEntry {
                segment_base: VAddr::new(i as u64 * 4096),
                segment_len: 4096,
                asid: i as u32,
                qps: vec![],
            };
            ct.register(CtxId(id), entry.clone());
            model.insert(id, entry);
        }
        for (&id, expect) in &model {
            prop_assert_eq!(ct.lookup(CtxId(id)).unwrap(), expect);
        }
        prop_assert_eq!(ct.len(), model.len());
    }
}
