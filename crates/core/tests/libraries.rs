//! End-to-end tests of the software messaging and barrier libraries over
//! the full machine model.

use std::cell::RefCell;
use std::rc::Rc;

use sonuma_core::{
    AppProcess, Barrier, Messenger, MsgConfig, MsgError, NodeApi, NodeId, RecvPoll, SimTime, Step,
    SystemBuilder, Wake,
};

type Shared<T> = Rc<RefCell<T>>;

fn message_pattern(k: u32, size: usize) -> Vec<u8> {
    (0..size).map(|i| (k as usize * 31 + i * 7) as u8).collect()
}

/// Streams `count` messages of `size` bytes to a peer.
struct Sender {
    m: Messenger,
    to: NodeId,
    count: u32,
    size: usize,
    sent: u32,
    finished_at: Shared<SimTime>,
}

impl Sender {
    fn step(&mut self, api: &mut NodeApi<'_>) -> Step {
        loop {
            if self.sent == self.count {
                if !self.m.all_sent() {
                    let (addr, len) = self.m.credit_watch(self.to);
                    return Step::WaitCqOrMemory {
                        qp: self.m.qp(),
                        addr,
                        len,
                    };
                }
                *self.finished_at.borrow_mut() = api.now();
                return Step::Done;
            }
            let data = message_pattern(self.sent, self.size);
            match self.m.try_send(api, self.to, &data) {
                Ok(()) => self.sent += 1,
                Err(MsgError::NoCredit) => {
                    let (addr, len) = self.m.credit_watch(self.to);
                    return Step::WaitCqOrMemory {
                        qp: self.m.qp(),
                        addr,
                        len,
                    };
                }
                Err(MsgError::Backpressure) => return Step::WaitCq(self.m.qp()),
                Err(e) => panic!("send failed: {e}"),
            }
        }
    }
}

impl AppProcess for Sender {
    fn wake(&mut self, api: &mut NodeApi<'_>, why: Wake) -> Step {
        if matches!(why, Wake::Start) {
            self.m.init(api).unwrap();
        }
        let comps = sonuma_core::drain_completions(api, &why, self.m.qp());
        self.m.on_completions(api, &comps);
        self.step(api)
    }
}

/// Receives `count` messages and records them.
struct Receiver {
    m: Messenger,
    from: NodeId,
    count: u32,
    got: Shared<Vec<Vec<u8>>>,
    finished_at: Shared<SimTime>,
}

impl Receiver {
    fn step(&mut self, api: &mut NodeApi<'_>) -> Step {
        loop {
            if self.got.borrow().len() as u32 == self.count {
                self.m.flush_credits(api, self.from);
                *self.finished_at.borrow_mut() = api.now();
                return Step::Done;
            }
            match self.m.try_recv(api, self.from) {
                Ok(RecvPoll::Message(v)) => self.got.borrow_mut().push(v),
                Ok(RecvPoll::Pending) => return Step::WaitCq(self.m.qp()),
                Ok(RecvPoll::Empty) => {
                    self.m.flush_credits(api, self.from);
                    let (addr, len) = self.m.recv_watch(self.from);
                    return Step::WaitCqOrMemory {
                        qp: self.m.qp(),
                        addr,
                        len,
                    };
                }
                Err(MsgError::Backpressure) => return Step::WaitCq(self.m.qp()),
                Err(e) => panic!("recv failed: {e}"),
            }
        }
    }
}

impl AppProcess for Receiver {
    fn wake(&mut self, api: &mut NodeApi<'_>, why: Wake) -> Step {
        if matches!(why, Wake::Start) {
            self.m.init(api).unwrap();
        }
        let comps = sonuma_core::drain_completions(api, &why, self.m.qp());
        self.m.on_completions(api, &comps);
        self.step(api)
    }
}

/// Runs a unidirectional stream and returns (messages, elapsed).
fn run_stream(cfg: MsgConfig, count: u32, size: usize) -> (Vec<Vec<u8>>, SimTime) {
    let mut system = SystemBuilder::simulated_hardware(2).build();
    let qp0 = system.create_qp(NodeId(0), 0);
    let qp1 = system.create_qp(NodeId(1), 0);
    let got: Shared<Vec<Vec<u8>>> = Rc::new(RefCell::new(Vec::new()));
    let send_done: Shared<SimTime> = Rc::new(RefCell::new(SimTime::ZERO));
    let recv_done: Shared<SimTime> = Rc::new(RefCell::new(SimTime::ZERO));
    system.spawn(
        NodeId(0),
        0,
        Box::new(Sender {
            m: Messenger::new(cfg, qp0, NodeId(0), 2, 0),
            to: NodeId(1),
            count,
            size,
            sent: 0,
            finished_at: send_done.clone(),
        }),
    );
    system.spawn(
        NodeId(1),
        0,
        Box::new(Receiver {
            m: Messenger::new(cfg, qp1, NodeId(1), 2, 0),
            from: NodeId(0),
            count,
            got: got.clone(),
            finished_at: recv_done.clone(),
        }),
    );
    system.run();
    let elapsed = *recv_done.borrow();
    let msgs = Rc::try_unwrap(got).unwrap().into_inner();
    (msgs, elapsed)
}

#[test]
fn push_stream_delivers_in_order() {
    let cfg = MsgConfig::hardware().with_threshold(u64::MAX);
    let (msgs, _) = run_stream(cfg, 20, 100);
    assert_eq!(msgs.len(), 20);
    for (k, m) in msgs.iter().enumerate() {
        assert_eq!(m, &message_pattern(k as u32, 100), "message {k} corrupted");
    }
}

#[test]
fn pull_stream_delivers_in_order() {
    let cfg = MsgConfig::hardware().with_threshold(0);
    let (msgs, _) = run_stream(cfg, 10, 4096);
    assert_eq!(msgs.len(), 10);
    for (k, m) in msgs.iter().enumerate() {
        assert_eq!(m, &message_pattern(k as u32, 4096), "message {k} corrupted");
    }
}

#[test]
fn large_push_exceeding_window_still_delivers() {
    // 8 KB push = 171 packets through a 16-slot window: forces credit
    // recycling mid-message.
    let cfg = MsgConfig::hardware().with_threshold(u64::MAX);
    let (msgs, _) = run_stream(cfg, 3, 8192);
    assert_eq!(msgs.len(), 3);
    for (k, m) in msgs.iter().enumerate() {
        assert_eq!(m, &message_pattern(k as u32, 8192));
    }
}

#[test]
fn zero_length_messages_work_in_both_modes() {
    for threshold in [0, u64::MAX] {
        let cfg = MsgConfig::hardware().with_threshold(threshold);
        let (msgs, _) = run_stream(cfg, 5, 0);
        assert_eq!(msgs.len(), 5);
        assert!(msgs.iter().all(|m| m.is_empty()));
    }
}

#[test]
fn mixed_sizes_cross_the_threshold() {
    // Default threshold 256: sizes straddle push and pull per message.
    let mut system = SystemBuilder::simulated_hardware(2).build();
    let qp0 = system.create_qp(NodeId(0), 0);
    let qp1 = system.create_qp(NodeId(1), 0);
    let cfg = MsgConfig::hardware();
    let got: Shared<Vec<Vec<u8>>> = Rc::new(RefCell::new(Vec::new()));
    let t: Shared<SimTime> = Rc::new(RefCell::new(SimTime::ZERO));

    /// Sends alternating small/large messages.
    struct MixedSender {
        m: Messenger,
        sent: u32,
        done: Shared<SimTime>,
    }
    impl AppProcess for MixedSender {
        fn wake(&mut self, api: &mut NodeApi<'_>, why: Wake) -> Step {
            if matches!(why, Wake::Start) {
                self.m.init(api).unwrap();
            }
            let comps = sonuma_core::drain_completions(api, &why, self.m.qp());
            self.m.on_completions(api, &comps);
            loop {
                if self.sent == 8 {
                    if !self.m.all_sent() {
                        return Step::WaitCq(self.m.qp());
                    }
                    *self.done.borrow_mut() = api.now();
                    return Step::Done;
                }
                let size = if self.sent.is_multiple_of(2) {
                    64
                } else {
                    2048
                };
                let data = message_pattern(self.sent, size);
                match self.m.try_send(api, NodeId(1), &data) {
                    Ok(()) => self.sent += 1,
                    Err(MsgError::NoCredit) => {
                        let (addr, len) = self.m.credit_watch(NodeId(1));
                        return Step::WaitCqOrMemory {
                            qp: self.m.qp(),
                            addr,
                            len,
                        };
                    }
                    Err(MsgError::Backpressure) => return Step::WaitCq(self.m.qp()),
                    Err(e) => panic!("{e}"),
                }
            }
        }
    }

    system.spawn(
        NodeId(0),
        0,
        Box::new(MixedSender {
            m: Messenger::new(cfg, qp0, NodeId(0), 2, 0),
            sent: 0,
            done: t.clone(),
        }),
    );
    system.spawn(
        NodeId(1),
        0,
        Box::new(Receiver {
            m: Messenger::new(cfg, qp1, NodeId(1), 2, 0),
            from: NodeId(0),
            count: 8,
            got: got.clone(),
            finished_at: t.clone(),
        }),
    );
    system.run();
    let msgs = Rc::try_unwrap(got).unwrap().into_inner();
    assert_eq!(msgs.len(), 8);
    for (k, m) in msgs.iter().enumerate() {
        let size = if k % 2 == 0 { 64 } else { 2048 };
        assert_eq!(m, &message_pattern(k as u32, size), "message {k}");
    }
}

/// Ping-pong endpoint: sends, waits for the echo, repeats.
struct Pinger {
    m: Messenger,
    peer: NodeId,
    rounds: u32,
    size: usize,
    current: u32,
    sent_current: bool,
    rtts: Shared<Vec<SimTime>>,
    t_send: SimTime,
}

impl AppProcess for Pinger {
    fn wake(&mut self, api: &mut NodeApi<'_>, why: Wake) -> Step {
        if matches!(why, Wake::Start) {
            self.m.init(api).unwrap();
        }
        let comps = sonuma_core::drain_completions(api, &why, self.m.qp());
        self.m.on_completions(api, &comps);
        loop {
            if self.current == self.rounds {
                return Step::Done;
            }
            if !self.sent_current {
                let data = message_pattern(self.current, self.size);
                self.t_send = api.now();
                match self.m.try_send(api, self.peer, &data) {
                    Ok(()) => self.sent_current = true,
                    Err(_) => return Step::WaitCq(self.m.qp()),
                }
            }
            match self.m.try_recv(api, self.peer).unwrap() {
                RecvPoll::Message(v) => {
                    assert_eq!(v, message_pattern(self.current, self.size));
                    self.rtts.borrow_mut().push(api.now() - self.t_send);
                    self.current += 1;
                    self.sent_current = false;
                }
                RecvPoll::Pending => return Step::WaitCq(self.m.qp()),
                RecvPoll::Empty => {
                    self.m.flush_credits(api, self.peer);
                    let (addr, len) = if self.m.all_sent() {
                        self.m.recv_watch(self.peer)
                    } else {
                        self.m.credit_watch(self.peer)
                    };
                    return Step::WaitCqOrMemory {
                        qp: self.m.qp(),
                        addr,
                        len,
                    };
                }
            }
        }
    }
}

/// Echo endpoint: receives and sends back.
struct Echoer {
    m: Messenger,
    peer: NodeId,
    rounds: u32,
    echoed: u32,
    held: Option<Vec<u8>>,
}

impl AppProcess for Echoer {
    fn wake(&mut self, api: &mut NodeApi<'_>, why: Wake) -> Step {
        if matches!(why, Wake::Start) {
            self.m.init(api).unwrap();
        }
        let comps = sonuma_core::drain_completions(api, &why, self.m.qp());
        self.m.on_completions(api, &comps);
        loop {
            if self.echoed == self.rounds && self.held.is_none() {
                if !self.m.all_sent() {
                    return Step::WaitCq(self.m.qp());
                }
                return Step::Done;
            }
            if let Some(data) = self.held.take() {
                match self.m.try_send(api, self.peer, &data) {
                    Ok(()) => {
                        self.echoed += 1;
                        continue;
                    }
                    Err(_) => {
                        self.held = Some(data);
                        return Step::WaitCq(self.m.qp());
                    }
                }
            }
            match self.m.try_recv(api, self.peer).unwrap() {
                RecvPoll::Message(v) => self.held = Some(v),
                RecvPoll::Pending => return Step::WaitCq(self.m.qp()),
                RecvPoll::Empty => {
                    self.m.flush_credits(api, self.peer);
                    let (addr, len) = if self.m.all_sent() {
                        self.m.recv_watch(self.peer)
                    } else {
                        self.m.credit_watch(self.peer)
                    };
                    return Step::WaitCqOrMemory {
                        qp: self.m.qp(),
                        addr,
                        len,
                    };
                }
            }
        }
    }
}

fn run_pingpong(cfg: MsgConfig, rounds: u32, size: usize) -> Vec<SimTime> {
    let mut system = SystemBuilder::simulated_hardware(2).build();
    let qp0 = system.create_qp(NodeId(0), 0);
    let qp1 = system.create_qp(NodeId(1), 0);
    let rtts: Shared<Vec<SimTime>> = Rc::new(RefCell::new(Vec::new()));
    system.spawn(
        NodeId(0),
        0,
        Box::new(Pinger {
            m: Messenger::new(cfg, qp0, NodeId(0), 2, 0),
            peer: NodeId(1),
            rounds,
            size,
            current: 0,
            sent_current: false,
            rtts: rtts.clone(),
            t_send: SimTime::ZERO,
        }),
    );
    system.spawn(
        NodeId(1),
        0,
        Box::new(Echoer {
            m: Messenger::new(cfg, qp1, NodeId(1), 2, 0),
            peer: NodeId(0),
            rounds,
            echoed: 0,
            held: None,
        }),
    );
    system.run();
    Rc::try_unwrap(rtts).unwrap().into_inner()
}

#[test]
fn pingpong_roundtrips_complete() {
    let rtts = run_pingpong(MsgConfig::hardware(), 10, 32);
    assert_eq!(rtts.len(), 10);
    // Steady-state half-duplex latency = RTT/2; the paper reports ~340 ns
    // minimum on the simulated hardware.
    let last_half = *rtts.last().unwrap() / 2;
    let ns = last_half.as_ns_f64();
    assert!(
        (250.0..600.0).contains(&ns),
        "half-duplex latency {ns:.0} ns; paper reports ~340 ns"
    );
}

#[test]
fn pingpong_pull_mode_works_for_large_messages() {
    let rtts = run_pingpong(MsgConfig::hardware(), 5, 4096);
    assert_eq!(rtts.len(), 5);
}

/// Barrier participant: loops `rounds` barriers, recording arrive/exit.
struct BarrierProc {
    b: Barrier,
    rounds: u32,
    log: Shared<Vec<(usize, u64, SimTime, SimTime)>>, // (node, round, arrive, exit)
    arrived_at: SimTime,
    in_round: bool,
}

impl AppProcess for BarrierProc {
    fn wake(&mut self, api: &mut NodeApi<'_>, why: Wake) -> Step {
        if matches!(why, Wake::Start) {
            self.b.init(api).unwrap();
        }
        let _ = api.poll_cq(self.b.qp());
        if !self.in_round {
            if self.b.round() == self.rounds as u64 {
                return Step::Done;
            }
            self.arrived_at = api.now();
            self.b.arrive(api).unwrap();
            self.in_round = true;
        }
        if self.b.ready(api).unwrap() {
            let node = api.node_id().index();
            self.log
                .borrow_mut()
                .push((node, self.b.round(), self.arrived_at, api.now()));
            self.in_round = false;
            // Desynchronize entries to stress the barrier.
            let jitter = SimTime::from_ns(((node as u64 + 1) * 137) % 500);
            return Step::Sleep(jitter);
        }
        let (addr, len) = self.b.watch();
        Step::WaitCqOrMemory {
            qp: self.b.qp(),
            addr,
            len,
        }
    }
}

#[test]
fn barrier_synchronizes_all_nodes() {
    let nodes = 4usize;
    let rounds = 5u32;
    let mut system = SystemBuilder::simulated_hardware(nodes).build();
    let log: Shared<Vec<(usize, u64, SimTime, SimTime)>> = Rc::new(RefCell::new(Vec::new()));
    for n in 0..nodes {
        let qp = system.create_qp(NodeId(n as u16), 0);
        system.spawn(
            NodeId(n as u16),
            0,
            Box::new(BarrierProc {
                b: Barrier::new(qp, NodeId(n as u16), nodes, 0),
                rounds,
                log: log.clone(),
                arrived_at: SimTime::ZERO,
                in_round: false,
            }),
        );
    }
    system.run();
    let log = Rc::try_unwrap(log).unwrap().into_inner();
    assert_eq!(log.len(), nodes * rounds as usize);
    // Barrier property: nobody exits round r before everyone arrived at r.
    for r in 1..=rounds as u64 {
        let arrivals: Vec<SimTime> = log.iter().filter(|e| e.1 == r).map(|e| e.2).collect();
        let exits: Vec<SimTime> = log.iter().filter(|e| e.1 == r).map(|e| e.3).collect();
        assert_eq!(arrivals.len(), nodes);
        let last_arrival = arrivals.iter().max().unwrap();
        let first_exit = exits.iter().min().unwrap();
        assert!(
            first_exit >= last_arrival,
            "round {r}: exit {first_exit} before last arrival {last_arrival}"
        );
    }
}
