//! End-to-end tests of the all-reduce collective.

use std::cell::RefCell;
use std::rc::Rc;

use sonuma_core::{
    drain_completions, AllReduce, AppProcess, NodeApi, NodeId, SimTime, Step, SystemBuilder, Wake,
};

type Shared<T> = Rc<RefCell<T>>;

/// Participates in `rounds` all-reduces; contribution at round r is
/// `base + r`, recorded sums are checked by the harness.
struct Participant {
    a: AllReduce,
    rounds: u64,
    base: u64,
    started: bool,
    sums: Shared<Vec<(usize, u64, u64)>>, // (node, round, sum)
}

impl AppProcess for Participant {
    fn wake(&mut self, api: &mut NodeApi<'_>, why: Wake) -> Step {
        if matches!(why, Wake::Start) {
            self.a.init(api).unwrap();
        }
        let _ = drain_completions(api, &why, self.a.qp());
        if !self.started {
            if self.a.round() == self.rounds {
                return Step::Done;
            }
            let contribution = self.base + self.a.round() + 1;
            self.a.start(api, contribution).unwrap();
            self.started = true;
        }
        match self.a.poll(api).unwrap() {
            Some(sum) => {
                let node = api.node_id().index();
                self.sums.borrow_mut().push((node, self.a.round(), sum));
                self.started = false;
                // Jitter so nodes enter rounds at different times.
                let jitter = SimTime::from_ns((node as u64 * 271) % 900);
                Step::Sleep(jitter)
            }
            None => {
                let (addr, len) = self.a.watch();
                Step::WaitCqOrMemory {
                    qp: self.a.qp(),
                    addr,
                    len,
                }
            }
        }
    }
}

fn run(nodes: usize, rounds: u64) -> Vec<(usize, u64, u64)> {
    let mut system = SystemBuilder::simulated_hardware(nodes)
        .segment_len(1 << 20)
        .qp_entries(64)
        .build();
    let sums: Shared<Vec<(usize, u64, u64)>> = Rc::new(RefCell::new(Vec::new()));
    for n in 0..nodes {
        let qp = system.create_qp(NodeId(n as u16), 0);
        system.spawn(
            NodeId(n as u16),
            0,
            Box::new(Participant {
                a: AllReduce::new(qp, NodeId(n as u16), nodes, 0),
                rounds,
                base: (n as u64 + 1) * 100,
                started: false,
                sums: sums.clone(),
            }),
        );
    }
    system.run();
    Rc::try_unwrap(sums).unwrap().into_inner()
}

#[test]
fn allreduce_sums_every_contribution() {
    let nodes = 4;
    let rounds = 3;
    let log = run(nodes, rounds);
    assert_eq!(log.len(), nodes * rounds as usize);
    for r in 1..=rounds {
        // Expected: sum over nodes of (n+1)*100 + r.
        let expect: u64 = (0..nodes as u64).map(|n| (n + 1) * 100 + r).sum();
        for n in 0..nodes {
            let got = log
                .iter()
                .find(|e| e.0 == n && e.1 == r)
                .unwrap_or_else(|| panic!("node {n} missing round {r}"));
            assert_eq!(got.2, expect, "node {n} round {r}");
        }
    }
}

#[test]
fn allreduce_works_pairwise_and_at_scale() {
    for nodes in [2usize, 8] {
        let log = run(nodes, 2);
        let expect_r1: u64 = (0..nodes as u64).map(|n| (n + 1) * 100 + 1).sum();
        assert!(
            log.iter().filter(|e| e.1 == 1).all(|e| e.2 == expect_r1),
            "{nodes} nodes: inconsistent round-1 sums: {log:?}"
        );
    }
}
