//! Property test: arbitrary message sequences (sizes straddling the
//! push/pull threshold, including empty messages) are delivered complete,
//! uncorrupted, and in order.

use std::cell::RefCell;
use std::rc::Rc;

use proptest::collection::vec;
use proptest::prelude::*;

use sonuma_core::{
    drain_completions, AppProcess, Messenger, MsgConfig, MsgError, NodeApi, NodeId, RecvPoll, Step,
    SystemBuilder, Wake,
};

type Shared<T> = Rc<RefCell<T>>;

fn payload(k: usize, size: usize) -> Vec<u8> {
    (0..size).map(|i| (k * 131 + i * 17) as u8).collect()
}

struct PropSender {
    m: Messenger,
    sizes: Vec<usize>,
    sent: usize,
}

impl AppProcess for PropSender {
    fn wake(&mut self, api: &mut NodeApi<'_>, why: Wake) -> Step {
        if matches!(why, Wake::Start) {
            self.m.init(api).unwrap();
        }
        let comps = drain_completions(api, &why, self.m.qp());
        self.m.on_completions(api, &comps);
        let to = NodeId(1);
        loop {
            if self.sent == self.sizes.len() {
                if !self.m.all_sent() {
                    let (addr, len) = self.m.credit_watch(to);
                    return Step::WaitCqOrMemory {
                        qp: self.m.qp(),
                        addr,
                        len,
                    };
                }
                return Step::Done;
            }
            let data = payload(self.sent, self.sizes[self.sent]);
            match self.m.try_send(api, to, &data) {
                Ok(()) => self.sent += 1,
                Err(MsgError::NoCredit) => {
                    let (addr, len) = self.m.credit_watch(to);
                    return Step::WaitCqOrMemory {
                        qp: self.m.qp(),
                        addr,
                        len,
                    };
                }
                Err(MsgError::Backpressure) => return Step::WaitCq(self.m.qp()),
                Err(e) => panic!("{e}"),
            }
        }
    }
}

struct PropReceiver {
    m: Messenger,
    expect: usize,
    got: Shared<Vec<Vec<u8>>>,
}

impl AppProcess for PropReceiver {
    fn wake(&mut self, api: &mut NodeApi<'_>, why: Wake) -> Step {
        if matches!(why, Wake::Start) {
            self.m.init(api).unwrap();
        }
        let comps = drain_completions(api, &why, self.m.qp());
        self.m.on_completions(api, &comps);
        let from = NodeId(0);
        loop {
            if self.got.borrow().len() == self.expect {
                self.m.flush_credits(api, from);
                return Step::Done;
            }
            match self.m.try_recv(api, from).unwrap() {
                RecvPoll::Message(v) => self.got.borrow_mut().push(v),
                RecvPoll::Pending => return Step::WaitCq(self.m.qp()),
                RecvPoll::Empty => {
                    self.m.flush_credits(api, from);
                    let (addr, len) = self.m.recv_watch(from);
                    return Step::WaitCqOrMemory {
                        qp: self.m.qp(),
                        addr,
                        len,
                    };
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    #[test]
    fn arbitrary_message_sequences_arrive_intact(
        sizes in vec(0usize..2048, 1..25),
        threshold in prop_oneof![Just(0u64), Just(256u64), Just(u64::MAX)],
    ) {
        let cfg = MsgConfig::hardware().with_threshold(threshold);
        let mut system = SystemBuilder::simulated_hardware(2)
            .segment_len(8 << 20)
            .qp_entries(128)
            .build();
        let qp0 = system.create_qp(NodeId(0), 0);
        let qp1 = system.create_qp(NodeId(1), 0);
        let got: Shared<Vec<Vec<u8>>> = Rc::new(RefCell::new(Vec::new()));
        system.spawn(
            NodeId(0),
            0,
            Box::new(PropSender {
                m: Messenger::new(cfg, qp0, NodeId(0), 2, 0),
                sizes: sizes.clone(),
                sent: 0,
            }),
        );
        system.spawn(
            NodeId(1),
            0,
            Box::new(PropReceiver {
                m: Messenger::new(cfg, qp1, NodeId(1), 2, 0),
                expect: sizes.len(),
                got: got.clone(),
            }),
        );
        system.run();
        let received = got.borrow();
        prop_assert_eq!(received.len(), sizes.len(), "message count");
        for (k, (msg, &size)) in received.iter().zip(&sizes).enumerate() {
            prop_assert_eq!(msg, &payload(k, size), "message {} corrupted", k);
        }
    }
}
