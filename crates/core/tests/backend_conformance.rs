//! The backend conformance suite: one set of messaging and one-sided
//! semantics tests, run identically over every [`RemoteBackend`].
//!
//! This is what makes the Table 2 comparisons apples-to-apples: the soNUMA
//! machine (full RGP/RRPP/RCP pipeline simulation), the RDMA model, and
//! the TCP model all execute the *same* request streams below and must
//! produce byte-identical functional results — only their clocks differ.
//! Each generic `suite_*` function is instantiated for all three backends
//! by the `conformance!` macro at the bottom.

use sonuma_baselines::{RdmaBackend, TcpBackend};
use sonuma_core::{BackendError, NodeId, RemoteBackend, RemoteRequest, SonumaBackend, Status};

const SEG: u64 = 256 << 10;

/// Line-granular pattern unique per (token-ish) index.
fn pattern(i: usize, len: usize) -> Vec<u8> {
    (0..len).map(|k| (i * 37 + k * 11) as u8).collect()
}

/// Remote writes land and remote reads observe them, end to end.
fn suite_read_write_roundtrip<B: RemoteBackend>(mut b: B) {
    let (src, dst) = (NodeId(0), NodeId(1));
    b.write_ctx(dst, 0, &pattern(7, 256));

    let t_read = b.post(src, RemoteRequest::read(dst, 0, 256)).unwrap();
    let done = b.complete_all(src);
    assert_eq!(done.len(), 1);
    assert_eq!(done[0].token, t_read);
    assert_eq!(done[0].status, Status::Ok);
    assert_eq!(done[0].data, pattern(7, 256));

    let msg = pattern(9, 128);
    b.post(src, RemoteRequest::write(dst, 4096, msg.clone()))
        .unwrap();
    let done = b.complete_all(src);
    assert_eq!(done.len(), 1);
    assert_eq!(done[0].status, Status::Ok);
    let mut back = vec![0u8; 128];
    b.read_ctx(dst, 4096, &mut back);
    assert_eq!(back, msg);
}

/// Many outstanding reads complete — possibly out of order — each with the
/// data its own token asked for.
fn suite_interleaved_reads_match_tokens<B: RemoteBackend>(mut b: B) {
    let (src, dst) = (NodeId(0), NodeId(1));
    let n = 16usize;
    for i in 0..n {
        b.write_ctx(dst, (i * 64) as u64, &pattern(i, 64));
    }
    let mut tokens = Vec::new();
    for i in 0..n {
        tokens.push(
            b.post(src, RemoteRequest::read(dst, (i * 64) as u64, 64))
                .unwrap(),
        );
    }
    let done = b.complete_all(src);
    assert_eq!(done.len(), n, "every posted read completes exactly once");
    for c in &done {
        let i = tokens
            .iter()
            .position(|&t| t == c.token)
            .expect("known token");
        assert_eq!(c.status, Status::Ok);
        assert_eq!(c.data, pattern(i, 64), "token {} got wrong data", c.token);
    }
}

/// Concurrent fetch-adds from two initiators linearize: the counter sums,
/// and the observed previous values are a permutation of `0..total`.
fn suite_atomic_counter_linearizes<B: RemoteBackend>(mut b: B) {
    let target = NodeId(2);
    let per_node = 8u64;
    for src in [NodeId(0), NodeId(1)] {
        for _ in 0..per_node {
            b.post(src, RemoteRequest::fetch_add(target, 0, 1)).unwrap();
        }
    }
    while b.advance() {}
    let mut ctr = [0u8; 8];
    b.read_ctx(target, 0, &mut ctr);
    assert_eq!(u64::from_le_bytes(ctr), 2 * per_node);

    let mut seen: Vec<u64> = [NodeId(0), NodeId(1)]
        .into_iter()
        .flat_map(|nid| b.poll(nid))
        .map(|c| u64::from_le_bytes(c.data[..8].try_into().unwrap()))
        .collect();
    seen.sort_unstable();
    assert_eq!(seen, (0..2 * per_node).collect::<Vec<_>>());
}

/// Out-of-range accesses complete with an error status — §4.2's error
/// reply path — and never panic or corrupt memory.
fn suite_out_of_bounds_surfaces_status<B: RemoteBackend>(mut b: B) {
    let (src, dst) = (NodeId(0), NodeId(1));
    b.post(
        src,
        RemoteRequest::read(dst, b.segment_len() + (64 << 10), 64),
    )
    .unwrap();
    let done = b.complete_all(src);
    assert_eq!(done.len(), 1);
    assert_ne!(done[0].status, Status::Ok);
    assert!(done[0].data.is_empty());
}

/// Posting past the transport's queue depth reports backpressure; draining
/// completions frees the queue and nothing is lost or duplicated.
fn suite_backpressure_then_drain<B: RemoteBackend>(mut b: B) {
    let (src, dst) = (NodeId(0), NodeId(1));
    let mut accepted = 0u64;
    let hit_backpressure = loop {
        match b.post(src, RemoteRequest::read(dst, 0, 64)) {
            Ok(_) => accepted += 1,
            Err(BackendError::Backpressure) => break true,
            Err(e) => panic!("unexpected post error: {e:?}"),
        }
        if accepted > 4096 {
            break false;
        }
    };
    assert!(hit_backpressure, "queue depth should be finite");
    let done = b.complete_all(src);
    assert_eq!(
        done.len(),
        accepted as usize,
        "no completion lost or duplicated"
    );
    assert!(b.post(src, RemoteRequest::read(dst, 0, 64)).is_ok());
}

/// Degenerate request shapes are rejected at post time — identically on
/// every backend, so a stream that runs clean on one transport cannot
/// fail validation on another.
fn suite_rejects_degenerate_requests<B: RemoteBackend>(mut b: B) {
    let (src, dst) = (NodeId(0), NodeId(1));
    assert_eq!(
        b.post(src, RemoteRequest::read(dst, 0, 0)),
        Err(BackendError::BadRequest),
        "zero-length read"
    );
    assert_eq!(
        b.post(src, RemoteRequest::write(dst, 0, Vec::new())),
        Err(BackendError::BadRequest),
        "zero-length write"
    );
    let mismatched = sonuma_core::RemoteRequest {
        len: 64,
        ..RemoteRequest::write(dst, 0, vec![1u8; 128])
    };
    assert_eq!(
        b.post(src, mismatched),
        Err(BackendError::BadRequest),
        "write with len disagreeing with payload"
    );
    assert_eq!(
        b.post(NodeId(7), RemoteRequest::read(dst, 0, 64)),
        Err(BackendError::BadNode),
        "source node out of range"
    );
    // The backend stays usable after rejected posts.
    b.post(src, RemoteRequest::write(dst, 0, vec![2u8; 64]))
        .unwrap();
    assert_eq!(b.complete_all(src).len(), 1);
}

/// Pull-style messaging over pure one-sided operations (§5.3): the sender
/// stages a message in its own segment and remote-writes a descriptor into
/// the receiver's mailbox; the receiver pulls the payload with one read.
fn suite_pull_messaging_roundtrip<B: RemoteBackend>(mut b: B) {
    let (sender, receiver) = (NodeId(0), NodeId(1));
    let msg = pattern(21, 1024);
    let staging_off = 8192u64;
    let mailbox_off = 0u64;

    // Sender: stage payload locally, then push the descriptor
    // (len || staging offset) as one 64-byte line.
    b.write_ctx(sender, staging_off, &msg);
    let mut desc = vec![0u8; 64];
    desc[0..8].copy_from_slice(&(msg.len() as u64).to_le_bytes());
    desc[8..16].copy_from_slice(&staging_off.to_le_bytes());
    b.post(sender, RemoteRequest::write(receiver, mailbox_off, desc))
        .unwrap();
    let done = b.complete_all(sender);
    assert_eq!(done[0].status, Status::Ok);

    // Receiver: observe the descriptor in its own segment, pull the bulk.
    let mut line = [0u8; 64];
    b.read_ctx(receiver, mailbox_off, &mut line);
    let len = u64::from_le_bytes(line[0..8].try_into().unwrap());
    let off = u64::from_le_bytes(line[8..16].try_into().unwrap());
    assert_eq!(len as usize, msg.len());
    b.post(receiver, RemoteRequest::read(sender, off, len))
        .unwrap();
    let done = b.complete_all(receiver);
    assert_eq!(done[0].status, Status::Ok);
    assert_eq!(done[0].data, msg);
}

macro_rules! conformance {
    ($backend:ident, $mk:expr) => {
        mod $backend {
            use super::*;

            #[test]
            fn read_write_roundtrip() {
                suite_read_write_roundtrip($mk(2));
            }

            #[test]
            fn interleaved_reads_match_tokens() {
                suite_interleaved_reads_match_tokens($mk(2));
            }

            #[test]
            fn atomic_counter_linearizes() {
                suite_atomic_counter_linearizes($mk(3));
            }

            #[test]
            fn out_of_bounds_surfaces_status() {
                suite_out_of_bounds_surfaces_status($mk(2));
            }

            #[test]
            fn backpressure_then_drain() {
                suite_backpressure_then_drain($mk(2));
            }

            #[test]
            fn rejects_degenerate_requests() {
                suite_rejects_degenerate_requests($mk(2));
            }

            #[test]
            fn pull_messaging_roundtrip() {
                suite_pull_messaging_roundtrip($mk(2));
            }
        }
    };
}

conformance!(sonuma, |nodes| SonumaBackend::simulated_hardware(
    nodes, SEG
));
conformance!(rdma, |nodes| RdmaBackend::connectx3(nodes, SEG));
conformance!(tcp, |nodes| TcpBackend::calxeda(nodes, SEG));

/// The cross-backend ordering the paper reports: soNUMA under RDMA under
/// TCP for small remote reads (Table 2, Fig. 1).
#[test]
fn small_read_latency_ordering_matches_table2() {
    fn one_read(b: &mut dyn RemoteBackend) -> sonuma_core::SimTime {
        b.write_ctx(NodeId(1), 0, &[1u8; 64]);
        b.post(NodeId(0), RemoteRequest::read(NodeId(1), 0, 64))
            .unwrap();
        let done = b.complete_all(NodeId(0));
        assert_eq!(done[0].status, Status::Ok);
        b.now()
    }
    let mut sonuma = SonumaBackend::simulated_hardware(2, SEG);
    let mut rdma = RdmaBackend::connectx3(2, SEG);
    let mut tcp = TcpBackend::calxeda(2, SEG);
    let t_sonuma = one_read(&mut sonuma);
    let t_rdma = one_read(&mut rdma);
    let t_tcp = one_read(&mut tcp);
    assert!(
        t_sonuma < t_rdma && t_rdma < t_tcp,
        "expected soNUMA < RDMA < TCP, got {t_sonuma} / {t_rdma} / {t_tcp}"
    );
}
