//! Unsolicited communication (§5.3): send/receive built purely in software
//! over one-sided remote operations.
//!
//! Two mechanisms, exactly as the paper describes:
//!
//! * **push** — "the sender creates packets of predefined size, each
//!   carrying a portion of the message content as part of the payload. It
//!   then pushes the packets into the peer's buffer": every packet is one
//!   cache-line `rmc_write` (16-byte header + up to 48 bytes of inline
//!   payload) into a per-sender bounded buffer in the receiver's context
//!   segment. Low latency for small messages; per-packet posting cost makes
//!   it bandwidth-poor for large ones.
//! * **pull** — "the sender only provides the base address and size ...
//!   the receiver then pulls the content using a single `rmc_read` and
//!   acknowledges the completion": the sender stages the payload in its own
//!   segment and pushes a one-line descriptor; the receiver issues one bulk
//!   read and releases the staging buffer with its credit update.
//!
//! A *threshold* selects push for messages at or below it and pull above —
//! "at compile time, the user can define the boundary between the two
//! mechanisms by setting a minimal message-size threshold". Flow control is
//! a credit scheme: each channel is a ring of `slots` packet slots; the
//! receiver advertises consumed packets by remotely writing a credit word
//! in the sender's segment (batched every half window, and eagerly when a
//! pull completes, since that also frees the sender's staging buffer).
//!
//! The messenger is plain application-level code: it owns no hardware and
//! calls nothing the [`NodeApi`] does not expose — demonstrating the
//! paper's claim that unsolicited communication needs no architectural
//! support beyond one-sided reads and writes.

use std::collections::{HashMap, VecDeque};
use std::error::Error;
use std::fmt;

use sonuma_machine::{ApiError, Completion, NodeApi};
use sonuma_memory::VAddr;
use sonuma_protocol::{CtxId, NodeId, QpId};

use crate::DEFAULT_CTX;

/// Inline payload bytes per push packet (64-byte line minus the header).
pub const CHUNK_BYTES: usize = 48;

const SLOT_BYTES: u64 = 64;
const HDR_SEQ: usize = 0; // u64
const HDR_KIND: usize = 8; // u8: 0 = fragment, 1 = pull descriptor
const HDR_LAST: usize = 9; // u8 bool
const HDR_CHUNK_LEN: usize = 10; // u16
const HDR_TOTAL_LEN: usize = 12; // u32
const HDR_CHUNK: usize = 16; // 48 bytes of inline payload
const HDR_PULL_OFFSET: usize = 16; // u64 (descriptor only)

/// Messaging-library configuration.
#[derive(Debug, Clone, Copy)]
pub struct MsgConfig {
    /// Packet slots per directed channel (the credit window).
    pub slots: usize,
    /// Messages of `len <= threshold` go push; larger go pull.
    /// `u64::MAX` disables pull; `0` disables push (used by Fig. 8's
    /// threshold sweep).
    pub threshold: u64,
    /// Maximum message size (bounds the pull staging buffers).
    pub max_msg_bytes: u64,
}

impl MsgConfig {
    /// The simulated-hardware tuning: the paper finds 256 B optimal (§7.3).
    pub fn hardware() -> Self {
        MsgConfig {
            slots: 16,
            threshold: 256,
            max_msg_bytes: 64 << 10,
        }
    }

    /// The development-platform tuning: 1 KB threshold (§7.3).
    pub fn dev_platform() -> Self {
        MsgConfig {
            slots: 16,
            threshold: 1024,
            max_msg_bytes: 64 << 10,
        }
    }

    /// Override the push/pull threshold.
    pub fn with_threshold(mut self, threshold: u64) -> Self {
        self.threshold = threshold;
        self
    }

    /// Bytes of context segment the messenger needs per node, starting at
    /// its region base.
    pub fn region_bytes(&self, nodes: usize) -> u64 {
        let n = nodes as u64;
        let channels = n * self.slots as u64 * SLOT_BYTES;
        let credits = n * SLOT_BYTES;
        let staging = n * self.staging_bytes();
        channels + credits + staging
    }

    fn staging_bytes(&self) -> u64 {
        self.max_msg_bytes.div_ceil(SLOT_BYTES) * SLOT_BYTES
    }
}

impl Default for MsgConfig {
    fn default() -> Self {
        Self::hardware()
    }
}

/// Messaging errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MsgError {
    /// The channel's credit window (or staging buffer) is exhausted; wait
    /// on [`Messenger::credit_watch`] and retry.
    NoCredit,
    /// The local work queue is full; wait on the messenger's CQ and retry.
    Backpressure,
    /// Message exceeds `max_msg_bytes`.
    TooBig,
    /// The messenger was not initialized ([`Messenger::init`]).
    NotInitialized,
}

impl fmt::Display for MsgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MsgError::NoCredit => write!(f, "send window exhausted, wait for credit"),
            MsgError::Backpressure => write!(f, "work queue full, drain completions"),
            MsgError::TooBig => write!(f, "message exceeds configured maximum"),
            MsgError::NotInitialized => write!(f, "messenger not initialized"),
        }
    }
}

impl Error for MsgError {}

/// Result of polling for a message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecvPoll {
    /// Nothing new on this channel.
    Empty,
    /// A pull is in flight; feed completions and poll again.
    Pending,
    /// A complete message.
    Message(Vec<u8>),
}

#[derive(Debug)]
struct PendingPush {
    data: Vec<u8>,
    next_packet: u64,
    total_packets: u64,
}

#[derive(Debug)]
struct SendChan {
    /// Packets sent on this channel.
    sent: u64,
    /// Packets the receiver has advertised as fully consumed.
    acked: u64,
    /// Seq of the pull descriptor whose staging buffer is still in use
    /// (0 = staging free). The buffer is released when `acked` reaches it:
    /// the receiver only credits a descriptor after its bulk read finished.
    staging_until_seq: u64,
    /// A push message still has packets to emit (window/WQ limited).
    pending: Option<PendingPush>,
}

#[derive(Debug)]
enum PullState {
    NeedPost { src_offset: u64, len: u64 },
    Posted,
}

#[derive(Debug)]
struct RecvChan {
    /// Packets taken off the ring (ring progress; also the expected seq - 1).
    taken: u64,
    /// Packets whose resources are fully released (credit basis).
    creditable: u64,
    /// Credit value last advertised to the sender.
    advertised: u64,
    /// Partially assembled push message.
    assembling: Vec<u8>,
    expected_total: u64,
    /// In-flight pull, if any.
    pull: Option<PullState>,
    /// Fully received messages awaiting the application.
    ready: VecDeque<Vec<u8>>,
}

#[derive(Debug, Clone, Copy)]
enum OpKind {
    PacketWrite,
    CreditWrite,
    PullRead { from: usize },
}

/// The per-process messaging endpoint.
///
/// Embed one in an [`sonuma_machine::AppProcess`]; call
/// [`Messenger::init`] on `Wake::Start`, feed CQ completions to
/// [`Messenger::on_completions`], and use `try_send`/`try_recv` plus the
/// watch helpers to block.
#[derive(Debug)]
pub struct Messenger {
    cfg: MsgConfig,
    ctx: CtxId,
    qp: QpId,
    me: usize,
    nodes: usize,
    /// Segment offset where the messaging region begins (same on every
    /// node).
    region_base: u64,
    send: Vec<SendChan>,
    recv: Vec<RecvChan>,
    pending: HashMap<u16, OpKind>,
    scratch: Option<VAddr>,
    /// Per-channel pull landing buffers: concurrent pulls from different
    /// senders must not share a destination.
    pull_bufs: Vec<Option<VAddr>>,
    segment_base: u64,
    /// Completed sends (packets acked end-to-end) — statistics.
    pub packets_sent: u64,
    /// Messages fully received — statistics.
    pub messages_received: u64,
}

impl Messenger {
    /// Creates an endpoint for node `me` of `nodes`, with its region at
    /// `region_base` within every node's context segment.
    pub fn new(cfg: MsgConfig, qp: QpId, me: NodeId, nodes: usize, region_base: u64) -> Self {
        Messenger {
            cfg,
            ctx: DEFAULT_CTX,
            qp,
            me: me.index(),
            nodes,
            region_base,
            send: (0..nodes)
                .map(|_| SendChan {
                    sent: 0,
                    acked: 0,
                    staging_until_seq: 0,
                    pending: None,
                })
                .collect(),
            recv: (0..nodes)
                .map(|_| RecvChan {
                    taken: 0,
                    creditable: 0,
                    advertised: 0,
                    assembling: Vec::new(),
                    expected_total: 0,
                    pull: None,
                    ready: VecDeque::new(),
                })
                .collect(),
            pending: HashMap::new(),
            scratch: None,
            pull_bufs: vec![None; nodes],
            segment_base: 0,
            packets_sent: 0,
            messages_received: 0,
        }
    }

    /// The queue pair this messenger posts on (wait on its CQ for
    /// [`MsgError::Backpressure`]).
    pub fn qp(&self) -> QpId {
        self.qp
    }

    /// Allocates scratch buffers; call once on `Wake::Start`.
    ///
    /// # Errors
    ///
    /// Propagates allocation failures.
    pub fn init(&mut self, api: &mut NodeApi<'_>) -> Result<(), ApiError> {
        let ring = api.qp_capacity(self.qp) as u64 * SLOT_BYTES;
        self.scratch = Some(api.heap_alloc(ring)?);
        for peer in 0..self.nodes {
            if peer != self.me {
                self.pull_bufs[peer] = Some(api.heap_alloc(self.cfg.staging_bytes())?);
            }
        }
        self.segment_base = api.ctx_base(self.ctx).raw();
        Ok(())
    }

    // -- region layout -------------------------------------------------

    fn channel_offset(&self, sender: usize) -> u64 {
        self.region_base + sender as u64 * self.cfg.slots as u64 * SLOT_BYTES
    }

    fn credit_offset(&self, receiver: usize) -> u64 {
        self.region_base
            + self.nodes as u64 * self.cfg.slots as u64 * SLOT_BYTES
            + receiver as u64 * SLOT_BYTES
    }

    fn staging_offset(&self, receiver: usize) -> u64 {
        self.region_base
            + self.nodes as u64 * self.cfg.slots as u64 * SLOT_BYTES
            + self.nodes as u64 * SLOT_BYTES
            + receiver as u64 * self.cfg.staging_bytes()
    }

    /// Local VA of the next slot we expect sender `from` to fill — the
    /// range to pass to `Step::WaitMemory` when receive-blocking.
    pub fn recv_watch(&self, from: NodeId) -> (VAddr, u64) {
        let chan = &self.recv[from.index()];
        let slot = chan.taken % self.cfg.slots as u64;
        let va = self.segment_base + self.channel_offset(from.index()) + slot * SLOT_BYTES;
        (VAddr::new(va), SLOT_BYTES)
    }

    /// Local VA of the credit word receiver `to` updates — the range to
    /// watch when send-blocked on [`MsgError::NoCredit`].
    pub fn credit_watch(&self, to: NodeId) -> (VAddr, u64) {
        let va = self.segment_base + self.credit_offset(to.index());
        (VAddr::new(va), SLOT_BYTES)
    }

    /// The entire inbound-channel region — the range a many-to-one
    /// receiver (e.g. a server polling every client) watches so that a
    /// packet from *any* sender wakes it.
    pub fn recv_watch_all(&self) -> (VAddr, u64) {
        (
            VAddr::new(self.segment_base + self.region_base),
            self.nodes as u64 * self.cfg.slots as u64 * SLOT_BYTES,
        )
    }

    // -- sending --------------------------------------------------------

    /// Attempts to send `data` to `to`, choosing push or pull by the
    /// configured threshold.
    ///
    /// On `Ok(())` the message is *accepted in order*: small pushes are
    /// fully posted; pushes larger than the available window are queued and
    /// pumped incrementally as credits return (keep calling
    /// [`Messenger::pump`] — or any messenger method — on wake-ups, and
    /// check [`Messenger::all_sent`] before finishing).
    ///
    /// # Errors
    ///
    /// [`MsgError::NoCredit`] (wait on [`Messenger::credit_watch`]),
    /// [`MsgError::Backpressure`] (wait on the CQ), or
    /// [`MsgError::TooBig`].
    pub fn try_send(
        &mut self,
        api: &mut NodeApi<'_>,
        to: NodeId,
        data: &[u8],
    ) -> Result<(), MsgError> {
        let scratch = self.scratch.ok_or(MsgError::NotInitialized)?;
        if data.len() as u64 > self.cfg.max_msg_bytes {
            return Err(MsgError::TooBig);
        }
        let dst = to.index();
        assert_ne!(
            dst, self.me,
            "self-send is a local operation, not messaging"
        );

        // Finish (or make progress on) any earlier partially-posted push:
        // messages on a channel are strictly ordered.
        self.pump_channel(api, dst);
        if self.send[dst].pending.is_some() {
            return Err(MsgError::NoCredit);
        }

        let push = (data.len() as u64) <= self.cfg.threshold;
        if push {
            let packets = data.len().div_ceil(CHUNK_BYTES).max(1) as u64;
            self.send[dst].pending = Some(PendingPush {
                data: data.to_vec(),
                next_packet: 0,
                total_packets: packets,
            });
            self.pump_channel(api, dst);
            return Ok(());
        }

        // Pull: needs the staging buffer, one window slot, and WQ room.
        self.refresh_acked(api, dst);
        let chan = &self.send[dst];
        if chan.staging_until_seq != 0 || chan.sent + 1 - chan.acked > self.cfg.slots as u64 {
            return Err(MsgError::NoCredit);
        }
        if api.outstanding(self.qp) >= api.qp_capacity(self.qp) {
            return Err(MsgError::Backpressure);
        }
        self.send_pull(api, to, data, scratch)
    }

    /// Whether every accepted message has been fully posted.
    pub fn all_sent(&self) -> bool {
        self.send.iter().all(|c| c.pending.is_none())
    }

    /// Makes progress on partially-posted push messages on all channels.
    /// Call on every wake-up while streaming.
    pub fn pump(&mut self, api: &mut NodeApi<'_>) {
        for dst in 0..self.nodes {
            self.pump_channel(api, dst);
        }
    }

    fn refresh_acked(&mut self, api: &mut NodeApi<'_>, dst: usize) {
        // The receiver advertises consumed packets by remote-writing this
        // word in our segment; reading it is a local (cached) load.
        let credit_va = VAddr::new(self.segment_base + self.credit_offset(dst));
        if let Ok(acked) = api.local_load_u64(credit_va) {
            let chan = &mut self.send[dst];
            chan.acked = chan.acked.max(acked);
            if chan.staging_until_seq != 0 && chan.acked >= chan.staging_until_seq {
                chan.staging_until_seq = 0;
            }
        }
    }

    fn pump_channel(&mut self, api: &mut NodeApi<'_>, dst: usize) {
        if self.send[dst].pending.is_none() {
            return;
        }
        let Some(scratch) = self.scratch else { return };
        self.refresh_acked(api, dst);
        loop {
            let chan = &self.send[dst];
            let Some(pending) = &chan.pending else { return };
            if chan.sent + 1 - chan.acked > self.cfg.slots as u64 {
                return; // window full; credits will pump again
            }
            if api.outstanding(self.qp) >= api.qp_capacity(self.qp) {
                return; // WQ full; completions will pump again
            }
            let i = pending.next_packet;
            let total = pending.total_packets;
            let lo = (i as usize * CHUNK_BYTES).min(pending.data.len());
            let hi = (lo + CHUNK_BYTES).min(pending.data.len());
            let chunk: Vec<u8> = pending.data[lo..hi].to_vec();
            let total_len = pending.data.len() as u32;

            let seq = self.send[dst].sent + 1;
            let mut line = [0u8; 64];
            line[HDR_SEQ..HDR_SEQ + 8].copy_from_slice(&seq.to_le_bytes());
            line[HDR_KIND] = 0;
            line[HDR_LAST] = u8::from(i == total - 1);
            line[HDR_CHUNK_LEN..HDR_CHUNK_LEN + 2]
                .copy_from_slice(&(chunk.len() as u16).to_le_bytes());
            line[HDR_TOTAL_LEN..HDR_TOTAL_LEN + 4].copy_from_slice(&total_len.to_le_bytes());
            line[HDR_CHUNK..HDR_CHUNK + chunk.len()].copy_from_slice(&chunk);
            if self
                .post_packet_line(api, NodeId(dst as u16), &line, scratch)
                .is_err()
            {
                return;
            }
            let pending = self.send[dst].pending.as_mut().expect("still pending");
            pending.next_packet += 1;
            if pending.next_packet == pending.total_packets {
                self.send[dst].pending = None;
                return;
            }
        }
    }

    fn post_packet_line(
        &mut self,
        api: &mut NodeApi<'_>,
        to: NodeId,
        line: &[u8; 64],
        scratch: VAddr,
    ) -> Result<(), MsgError> {
        let dst = to.index();
        let slot = self.send[dst].sent % self.cfg.slots as u64;
        let remote_offset = self.channel_offset(self.me) + slot * SLOT_BYTES;
        // Each in-flight packet needs a stable source line until the RGP
        // reads it: index the scratch ring by the WQ slot we will occupy
        // (unique among outstanding operations).
        let wq_slot = api.next_wq_index(self.qp);
        let src = VAddr::new(scratch.raw() + wq_slot as u64 * SLOT_BYTES);
        api.local_write(src, line)
            .map_err(|_| MsgError::NotInitialized)?;
        let wq = api
            .post_write(self.qp, to, self.ctx, remote_offset, src, SLOT_BYTES)
            .map_err(|e| match e {
                ApiError::WqFull => MsgError::Backpressure,
                _ => MsgError::NotInitialized,
            })?;
        self.pending.insert(wq, OpKind::PacketWrite);
        self.send[dst].sent += 1;
        self.packets_sent += 1;
        Ok(())
    }

    fn send_pull(
        &mut self,
        api: &mut NodeApi<'_>,
        to: NodeId,
        data: &[u8],
        scratch: VAddr,
    ) -> Result<(), MsgError> {
        let dst = to.index();
        let staging_off = self.staging_offset(dst);
        let staging_va = VAddr::new(self.segment_base + staging_off);
        if !data.is_empty() {
            api.local_write(staging_va, data)
                .map_err(|_| MsgError::NotInitialized)?;
        }
        let seq = self.send[dst].sent + 1;
        let mut line = [0u8; 64];
        line[HDR_SEQ..HDR_SEQ + 8].copy_from_slice(&seq.to_le_bytes());
        line[HDR_KIND] = 1;
        line[HDR_LAST] = 1;
        line[HDR_TOTAL_LEN..HDR_TOTAL_LEN + 4].copy_from_slice(&(data.len() as u32).to_le_bytes());
        line[HDR_PULL_OFFSET..HDR_PULL_OFFSET + 8].copy_from_slice(&staging_off.to_le_bytes());
        self.post_packet_line(api, to, &line, scratch)?;
        if !data.is_empty() {
            // `post_packet_line` advanced `sent`, so the descriptor's seq
            // is the new `sent` value.
            self.send[dst].staging_until_seq = self.send[dst].sent;
        }
        Ok(())
    }

    // -- receiving ------------------------------------------------------

    /// Polls channel `from` for a message, consuming any newly arrived
    /// packets (and launching the bulk read for pull descriptors).
    ///
    /// # Errors
    ///
    /// [`MsgError::Backpressure`] if a pull read cannot be posted yet.
    pub fn try_recv(&mut self, api: &mut NodeApi<'_>, from: NodeId) -> Result<RecvPoll, MsgError> {
        if self.scratch.is_none() {
            return Err(MsgError::NotInitialized);
        }
        let src = from.index();
        assert_ne!(src, self.me, "self-receive is a local operation");

        // Retry a pull read that could not be posted earlier.
        if let Some(PullState::NeedPost { src_offset, len }) = self.recv[src].pull {
            self.post_pull_read(api, src, src_offset, len)?;
        }

        loop {
            if let Some(m) = self.recv[src].ready.pop_front() {
                self.messages_received += 1;
                self.maybe_flush_credits(api, src, false);
                return Ok(RecvPoll::Message(m));
            }
            if self.recv[src].pull.is_some() {
                return Ok(RecvPoll::Pending);
            }

            // Inspect the next expected slot.
            let slot = self.recv[src].taken % self.cfg.slots as u64;
            let slot_va =
                VAddr::new(self.segment_base + self.channel_offset(src) + slot * SLOT_BYTES);
            let mut line = [0u8; 64];
            api.local_read(slot_va, &mut line)
                .map_err(|_| MsgError::NotInitialized)?;
            let seq = u64::from_le_bytes(line[HDR_SEQ..HDR_SEQ + 8].try_into().unwrap());
            if seq != self.recv[src].taken + 1 {
                return Ok(RecvPoll::Empty);
            }

            // Consume the packet and clear the slot (local stores).
            api.local_store_u64(slot_va, 0)
                .map_err(|_| MsgError::NotInitialized)?;
            self.recv[src].taken += 1;

            if line[HDR_KIND] == 1 {
                // Pull descriptor.
                let len =
                    u32::from_le_bytes(line[HDR_TOTAL_LEN..HDR_TOTAL_LEN + 4].try_into().unwrap())
                        as u64;
                let off = u64::from_le_bytes(
                    line[HDR_PULL_OFFSET..HDR_PULL_OFFSET + 8]
                        .try_into()
                        .unwrap(),
                );
                if len == 0 {
                    self.recv[src].creditable += 1;
                    self.recv[src].ready.push_back(Vec::new());
                } else {
                    self.post_pull_read(api, src, off, len)?;
                }
                continue;
            }

            // Push fragment.
            let chunk_len =
                u16::from_le_bytes(line[HDR_CHUNK_LEN..HDR_CHUNK_LEN + 2].try_into().unwrap())
                    as usize;
            let total =
                u32::from_le_bytes(line[HDR_TOTAL_LEN..HDR_TOTAL_LEN + 4].try_into().unwrap())
                    as u64;
            let chan = &mut self.recv[src];
            if chan.assembling.is_empty() {
                chan.expected_total = total;
            }
            chan.assembling
                .extend_from_slice(&line[HDR_CHUNK..HDR_CHUNK + chunk_len]);
            chan.creditable += 1;
            if line[HDR_LAST] == 1 {
                let msg = std::mem::take(&mut chan.assembling);
                debug_assert_eq!(msg.len() as u64, chan.expected_total, "fragment loss");
                chan.ready.push_back(msg);
            }
        }
    }

    fn post_pull_read(
        &mut self,
        api: &mut NodeApi<'_>,
        src: usize,
        src_offset: u64,
        len: u64,
    ) -> Result<(), MsgError> {
        let buf = self.pull_bufs[src].expect("initialized");
        let read_len = len.div_ceil(SLOT_BYTES) * SLOT_BYTES;
        match api.post_read(
            self.qp,
            NodeId(src as u16),
            self.ctx,
            src_offset,
            buf,
            read_len,
        ) {
            Ok(wq) => {
                self.pending.insert(wq, OpKind::PullRead { from: src });
                self.recv[src].pull = Some(PullState::Posted);
                self.recv[src].expected_total = len;
                Ok(())
            }
            Err(ApiError::WqFull) => {
                self.recv[src].pull = Some(PullState::NeedPost { src_offset, len });
                Err(MsgError::Backpressure)
            }
            Err(_) => Err(MsgError::NotInitialized),
        }
    }

    /// Feeds CQ completions (from `Wake::CqReady` or an explicit poll) to
    /// the messenger's bookkeeping. Completions for other users of the QP
    /// are ignored.
    pub fn on_completions(&mut self, api: &mut NodeApi<'_>, comps: &[Completion]) {
        for c in comps {
            if c.qp != self.qp {
                continue;
            }
            match self.pending.remove(&c.wq_index) {
                Some(OpKind::PullRead { from }) => {
                    debug_assert!(c.status.is_ok(), "pull read failed: {:?}", c.status);
                    let len = self.recv[from].expected_total as usize;
                    let mut data = vec![0u8; len];
                    if len > 0 {
                        api.local_read(self.pull_bufs[from].expect("initialized"), &mut data)
                            .expect("pull buffer mapped");
                    }
                    let chan = &mut self.recv[from];
                    chan.pull = None;
                    chan.creditable += 1;
                    chan.ready.push_back(data);
                    // Eager credit: it releases the sender's staging buffer.
                    self.maybe_flush_credits(api, from, true);
                }
                Some(OpKind::PacketWrite) | Some(OpKind::CreditWrite) | None => {}
            }
        }
        // Freed WQ slots may unblock partially-posted pushes.
        self.pump(api);
    }

    /// Advertises consumed packets to the sender when at least half the
    /// window is pending (or unconditionally with `force`).
    fn maybe_flush_credits(&mut self, api: &mut NodeApi<'_>, from: usize, force: bool) {
        let chan = &self.recv[from];
        let unadvertised = chan.creditable - chan.advertised;
        if unadvertised == 0 {
            return;
        }
        if !force && unadvertised < (self.cfg.slots as u64 / 2).max(1) {
            return;
        }
        let Some(scratch) = self.scratch else { return };
        if api.outstanding(self.qp) >= api.qp_capacity(self.qp) {
            return; // retry on a later flush
        }
        let value = chan.creditable;
        let wq_slot = api.next_wq_index(self.qp);
        let src = VAddr::new(scratch.raw() + wq_slot as u64 * SLOT_BYTES);
        let mut line = [0u8; 64];
        line[0..8].copy_from_slice(&value.to_le_bytes());
        if api.local_write(src, &line).is_err() {
            return;
        }
        // The credit word for (sender=from, receiver=me) lives in the
        // *sender's* segment, indexed by me.
        let remote_offset = self.credit_offset(self.me);
        if let Ok(wq) = api.post_write(
            self.qp,
            NodeId(from as u16),
            self.ctx,
            remote_offset,
            src,
            SLOT_BYTES,
        ) {
            self.pending.insert(wq, OpKind::CreditWrite);
            self.recv[from].advertised = value;
        }
    }

    /// Forces a credit advertisement before blocking (deadlock avoidance:
    /// never park while holding unadvertised credits the peer may need).
    pub fn flush_credits(&mut self, api: &mut NodeApi<'_>, from: NodeId) {
        self.maybe_flush_credits(api, from.index(), true);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn region_layout_is_disjoint_and_sized() {
        let cfg = MsgConfig::hardware();
        let m = Messenger::new(cfg, QpId(0), NodeId(1), 4, 4096);
        // Channels for the four senders.
        let ch: Vec<u64> = (0..4).map(|s| m.channel_offset(s)).collect();
        for w in ch.windows(2) {
            assert_eq!(w[1] - w[0], cfg.slots as u64 * 64);
        }
        // Credits after channels, staging after credits.
        assert_eq!(m.credit_offset(0), 4096 + 4 * 16 * 64);
        assert!(m.staging_offset(0) >= m.credit_offset(3) + 64);
        // Total fits the advertised region size.
        let end = m.staging_offset(3) + cfg.staging_bytes();
        assert_eq!(end - 4096, cfg.region_bytes(4));
    }

    #[test]
    fn threshold_presets_match_paper() {
        assert_eq!(MsgConfig::hardware().threshold, 256);
        assert_eq!(MsgConfig::dev_platform().threshold, 1024);
        assert_eq!(MsgConfig::hardware().with_threshold(0).threshold, 0);
    }

    #[test]
    fn chunking_counts() {
        // 48-byte chunks: 1 packet up to 48 B, 2 up to 96 B, ...
        assert_eq!(0usize.div_ceil(CHUNK_BYTES).max(1), 1);
        assert_eq!(48usize.div_ceil(CHUNK_BYTES).max(1), 1);
        assert_eq!(49usize.div_ceil(CHUNK_BYTES).max(1), 2);
        assert_eq!(8192usize.div_ceil(CHUNK_BYTES).max(1), 171);
    }

    #[test]
    fn errors_display() {
        for e in [
            MsgError::NoCredit,
            MsgError::Backpressure,
            MsgError::TooBig,
            MsgError::NotInitialized,
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
