//! Barrier synchronization (§5.3): "each participating node broadcasts the
//! arrival at a barrier by issuing a write to an agreed upon offset on each
//! of its peers. The nodes then poll locally until all of them reach the
//! barrier."
//!
//! The flag array lives at a fixed offset in every node's context segment:
//! slot `p` holds the latest round number node `p` has arrived at. Rounds
//! are monotone counters, so flags never need clearing and a stale wake-up
//! is harmless.

use sonuma_machine::{ApiError, NodeApi};
use sonuma_memory::VAddr;
use sonuma_protocol::{NodeId, QpId};

use crate::DEFAULT_CTX;

const SLOT_BYTES: u64 = 64;

/// A reusable N-party barrier over one-sided writes.
///
/// Protocol per round: [`Barrier::arrive`] stores the round number into the
/// local flag and remote-writes it into every peer's flag slot for this
/// node; the caller then polls [`Barrier::ready`] (blocking on
/// [`Barrier::watch`] between polls) until all peers' flags reach the
/// round.
#[derive(Debug)]
pub struct Barrier {
    qp: QpId,
    me: usize,
    nodes: usize,
    /// Offset of the flag array within every node's context segment.
    region_base: u64,
    round: u64,
    scratch: Option<VAddr>,
    segment_base: u64,
}

impl Barrier {
    /// Creates a barrier endpoint for node `me` of `nodes`, flags at
    /// `region_base` in every segment.
    pub fn new(qp: QpId, me: NodeId, nodes: usize, region_base: u64) -> Self {
        Barrier {
            qp,
            me: me.index(),
            nodes,
            region_base,
            round: 0,
            scratch: None,
            segment_base: 0,
        }
    }

    /// Segment bytes the barrier needs per node.
    pub fn region_bytes(nodes: usize) -> u64 {
        nodes as u64 * SLOT_BYTES
    }

    /// The current round (completed barriers).
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Allocates the scratch line; call once on `Wake::Start`.
    ///
    /// # Errors
    ///
    /// Propagates allocation failures.
    pub fn init(&mut self, api: &mut NodeApi<'_>) -> Result<(), ApiError> {
        self.scratch = Some(api.heap_alloc(SLOT_BYTES)?);
        self.segment_base = api.ctx_base(DEFAULT_CTX).raw();
        Ok(())
    }

    fn flag_va(&self, node: usize) -> VAddr {
        VAddr::new(self.segment_base + self.region_base + node as u64 * SLOT_BYTES)
    }

    /// Announces arrival at the next barrier: bumps the round, stores the
    /// local flag, and posts one remote write per peer.
    ///
    /// # Errors
    ///
    /// Propagates posting failures ([`ApiError::WqFull`] if the QP cannot
    /// hold `nodes - 1` writes — size rings accordingly).
    pub fn arrive(&mut self, api: &mut NodeApi<'_>) -> Result<(), ApiError> {
        let scratch = self.scratch.ok_or(ApiError::BadQp)?;
        self.round += 1;
        // Local flag: plain store (the coherence hierarchy handles it).
        api.local_store_u64(self.flag_va(self.me), self.round)?;
        // Broadcast. Round numbers are monotone, so one scratch line is
        // safe even if a previous round's write is still awaiting
        // injection: a peer can only ever observe a value >= the intended
        // round, which is exactly the barrier predicate.
        let mut line = [0u8; 64];
        line[0..8].copy_from_slice(&self.round.to_le_bytes());
        api.local_write(scratch, &line)?;
        let my_flag_offset = self.region_base + self.me as u64 * SLOT_BYTES;
        for peer in 0..self.nodes {
            if peer == self.me {
                continue;
            }
            api.post_write(
                self.qp,
                NodeId(peer as u16),
                DEFAULT_CTX,
                my_flag_offset,
                scratch,
                SLOT_BYTES,
            )?;
        }
        Ok(())
    }

    /// Whether every participant has arrived at the current round.
    ///
    /// # Errors
    ///
    /// Propagates local read faults.
    pub fn ready(&self, api: &mut NodeApi<'_>) -> Result<bool, ApiError> {
        for peer in 0..self.nodes {
            if api.local_load_u64(self.flag_va(peer))? < self.round {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// The local flag range to pass to `Step::WaitMemory` while not
    /// [`Barrier::ready`].
    pub fn watch(&self) -> (VAddr, u64) {
        (self.flag_va(0), self.nodes as u64 * SLOT_BYTES)
    }

    /// The QP used for arrival broadcasts (drain its CQ opportunistically).
    pub fn qp(&self) -> QpId {
        self.qp
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn region_and_watch_cover_all_flags() {
        let b = Barrier::new(QpId(0), NodeId(2), 8, 0);
        assert_eq!(Barrier::region_bytes(8), 512);
        let (_, len) = b.watch();
        assert_eq!(len, 512);
        assert_eq!(b.round(), 0);
    }

    #[test]
    fn flag_slots_are_distinct() {
        let b = Barrier::new(QpId(0), NodeId(0), 4, 1024);
        let flags: Vec<_> = (0..4).map(|p| b.flag_va(p)).collect();
        for w in flags.windows(2) {
            assert_eq!(w[1].raw() - w[0].raw(), 64);
        }
    }
}
