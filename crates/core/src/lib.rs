//! The soNUMA programming model (§5 of the paper).
//!
//! This crate is the user-facing layer of the reproduction:
//!
//! * [`SystemBuilder`] / [`SonumaSystem`] — assemble a cluster (platform
//!   preset, topology, context segment), register queue pairs, spawn
//!   application processes, and drive the simulation;
//! * the **access library** is re-exported from `sonuma-machine`
//!   ([`NodeApi`]): one-sided `post_read`/`post_write`/`post_fetch_add`/
//!   `post_comp_swap` with CQ polling — the paper's `rmc_*_async` inline
//!   functions (Fig. 4);
//! * [`msg`] — the unsolicited communication library (§5.3): send/receive
//!   built entirely in software over one-sided writes and reads, with the
//!   **push** (packetized inline writes) and **pull** (descriptor + bulk
//!   read) mechanisms and the compile-time threshold between them;
//! * [`barrier`] — the barrier primitive (§5.3): each node broadcasts its
//!   arrival with remote writes and polls locally until all peers arrive;
//! * the transport-agnostic [`RemoteBackend`] contract is re-exported here
//!   together with [`SonumaBackend`]; the backend conformance suite under
//!   `tests/` runs the same one-sided request streams over soNUMA and the
//!   TCP/RDMA baselines (apples-to-apples Table 2 semantics).
//!
//! # Example
//!
//! ```
//! use sonuma_core::{SonumaSystem, SystemBuilder};
//! use sonuma_protocol::NodeId;
//!
//! let mut system = SystemBuilder::simulated_hardware(2)
//!     .segment_len(1 << 20)
//!     .build();
//! // Put data on node 1, readable by remote one-sided operations.
//! system.write_ctx(NodeId(1), 0, b"hello, fabric");
//! let mut back = [0u8; 13];
//! system.read_ctx(NodeId(1), 0, &mut back);
//! assert_eq!(&back, b"hello, fabric");
//! ```

pub mod barrier;
pub mod collective;
pub mod msg;
pub mod system;

pub use barrier::Barrier;
pub use collective::AllReduce;
pub use msg::{Messenger, MsgConfig, MsgError, RecvPoll};
pub use system::{SonumaSystem, SystemBuilder};

// Re-export the execution model so applications depend on one crate.
pub use sonuma_machine::{
    ApiError, AppProcess, Completion, MachineConfig, NodeApi, PipelineStats, SchedPolicy, SloClass,
    SoftwareTiming, SonumaBackend, Step, TenantSpec, TenantStats, Wake,
};
pub use sonuma_memory::VAddr;
pub use sonuma_protocol::{
    BackendError, CtxId, NodeId, QpId, RemoteBackend, RemoteCompletion, RemoteOp, RemoteRequest,
    Status, TenantId,
};
pub use sonuma_sim::SimTime;

/// The context id used by [`SystemBuilder`]-managed systems (one global
/// address space per system, as in the paper's evaluation).
pub const DEFAULT_CTX: CtxId = CtxId(0);

/// Collects every completion available this wake-up: the ones delivered
/// with [`Wake::CqReady`] plus any that raced in since (one fresh poll).
///
/// Call at the top of [`AppProcess::wake`] before driving a [`Messenger`]
/// or any other CQ consumer — dropping the `CqReady` payload loses
/// completions, because the wake-up path already drained the CQ ring.
pub fn drain_completions(api: &mut NodeApi<'_>, why: &Wake, qp: QpId) -> Vec<Completion> {
    let mut comps = match why {
        Wake::CqReady(c) => c.clone(),
        _ => Vec::new(),
    };
    comps.extend(api.poll_cq(qp));
    comps
}
