//! System assembly and simulation driving.

use sonuma_machine::{AppProcess, Cluster, ClusterEngine, MachineConfig};
use sonuma_protocol::{NodeId, QpId};
use sonuma_sim::SimTime;

use crate::DEFAULT_CTX;

/// Builder for a complete soNUMA system.
///
/// # Example
///
/// ```
/// use sonuma_core::SystemBuilder;
///
/// let system = SystemBuilder::simulated_hardware(4)
///     .segment_len(8 << 20)
///     .qp_entries(128)
///     .build();
/// assert_eq!(system.num_nodes(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct SystemBuilder {
    config: MachineConfig,
    segment_len: u64,
}

impl SystemBuilder {
    /// The paper's cycle-accurate platform (Table 1) with `nodes` nodes.
    pub fn simulated_hardware(nodes: usize) -> Self {
        SystemBuilder {
            config: MachineConfig::simulated_hardware(nodes),
            segment_len: 16 << 20,
        }
    }

    /// The Xen-based development platform (§7.1) with `nodes` nodes.
    pub fn dev_platform(nodes: usize) -> Self {
        SystemBuilder {
            config: MachineConfig::dev_platform(nodes),
            segment_len: 16 << 20,
        }
    }

    /// A single cache-coherent node with `cores` cores (the SHM baseline).
    pub fn shared_memory(cores: usize) -> Self {
        SystemBuilder {
            config: MachineConfig::shared_memory_node(cores),
            segment_len: 16 << 20,
        }
    }

    /// Starts from an explicit machine configuration.
    pub fn from_config(config: MachineConfig) -> Self {
        SystemBuilder {
            config,
            segment_len: 16 << 20,
        }
    }

    /// Sets the per-node context-segment length (globally readable bytes).
    pub fn segment_len(mut self, len: u64) -> Self {
        self.segment_len = len;
        self
    }

    /// Sets the WQ/CQ ring size for queue pairs created on this system.
    pub fn qp_entries(mut self, entries: u16) -> Self {
        self.config.qp_entries = entries;
        self
    }

    /// Overrides the number of cores per node.
    pub fn cores_per_node(mut self, cores: usize) -> Self {
        self.config.cores_per_node = cores;
        self
    }

    /// Gives mutable access to the full machine configuration for
    /// fine-grained experiments (ablations).
    pub fn tune(mut self, f: impl FnOnce(&mut MachineConfig)) -> Self {
        f(&mut self.config);
        self
    }

    /// Assembles the system: builds the cluster and establishes the global
    /// context on every node.
    ///
    /// # Panics
    ///
    /// Panics if the context segment cannot be mapped (node memory too
    /// small for `segment_len`).
    pub fn build(self) -> SonumaSystem {
        let mut cluster = Cluster::new(self.config);
        cluster
            .create_context(DEFAULT_CTX, self.segment_len)
            .expect("segment must fit in node memory");
        SonumaSystem {
            cluster,
            engine: ClusterEngine::new(),
            segment_len: self.segment_len,
        }
    }
}

/// A ready-to-run soNUMA system: cluster + engine + the global context.
///
/// See the crate-level example for typical usage.
pub struct SonumaSystem {
    /// The simulated cluster (public for statistics inspection).
    pub cluster: Cluster,
    /// The event engine driving the cluster.
    pub engine: ClusterEngine,
    segment_len: u64,
}

impl std::fmt::Debug for SonumaSystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SonumaSystem")
            .field("nodes", &self.cluster.num_nodes())
            .field("segment_len", &self.segment_len)
            .field("now", &self.engine.now())
            .finish()
    }
}

impl SonumaSystem {
    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.cluster.num_nodes()
    }

    /// Context segment length per node.
    pub fn segment_len(&self) -> u64 {
        self.segment_len
    }

    /// Creates a queue pair on `node`, owned by `core`.
    ///
    /// # Panics
    ///
    /// Panics on setup failure (memory exhaustion).
    pub fn create_qp(&mut self, node: NodeId, core: usize) -> QpId {
        self.cluster
            .create_qp(node, DEFAULT_CTX, core)
            .expect("QP ring allocation failed")
    }

    /// Spawns an application process on `node`/`core`; it wakes with
    /// [`sonuma_machine::Wake::Start`] at the current simulation time.
    pub fn spawn(&mut self, node: NodeId, core: usize, process: Box<dyn AppProcess>) {
        self.cluster.spawn(&mut self.engine, node, core, process);
    }

    /// Runs until no events remain.
    pub fn run(&mut self) {
        self.engine.run(&mut self.cluster);
    }

    /// Runs events up to `horizon` (later events stay queued).
    pub fn run_until(&mut self, horizon: SimTime) {
        self.engine.run_until(&mut self.cluster, horizon);
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.engine.now()
    }

    /// Functional write into a node's context segment (workload setup).
    pub fn write_ctx(&mut self, node: NodeId, offset: u64, data: &[u8]) {
        self.cluster.write_ctx(node, DEFAULT_CTX, offset, data);
    }

    /// Functional read from a node's context segment (verification).
    pub fn read_ctx(&self, node: NodeId, offset: u64, buf: &mut [u8]) {
        self.cluster.read_ctx(node, DEFAULT_CTX, offset, buf);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_assembles_context_on_all_nodes() {
        let mut s = SystemBuilder::simulated_hardware(3)
            .segment_len(1 << 20)
            .build();
        for n in 0..3u16 {
            s.write_ctx(NodeId(n), 0, &[n as u8 + 1]);
            let mut b = [0u8; 1];
            s.read_ctx(NodeId(n), 0, &mut b);
            assert_eq!(b[0], n as u8 + 1);
        }
    }

    #[test]
    fn builder_options_apply() {
        let s = SystemBuilder::dev_platform(2)
            .qp_entries(16)
            .segment_len(2 << 20)
            .build();
        assert_eq!(s.cluster.config().qp_entries, 16);
        assert_eq!(s.segment_len(), 2 << 20);
    }

    #[test]
    fn tune_exposes_full_config() {
        let s = SystemBuilder::simulated_hardware(2)
            .tune(|c| c.itt_entries = 8)
            .build();
        assert_eq!(s.cluster.config().itt_entries, 8);
    }

    #[test]
    fn qp_creation_and_empty_run() {
        let mut s = SystemBuilder::simulated_hardware(2).build();
        let qp = s.create_qp(NodeId(0), 0);
        assert_eq!(qp.index(), 0);
        s.run();
        assert_eq!(s.now(), SimTime::ZERO);
    }
}
