//! All-reduce: a collective built purely from one-sided writes, in the
//! spirit of the §5.3 libraries (the paper implements unsolicited
//! communication and barriers in software and argues the minimal
//! architectural op set is not a limitation — this module is further
//! evidence).
//!
//! Protocol: the contribution array in every node's context segment has
//! two *parity banks* of one cache line per participant. At round `r`,
//! node `i` stores `(r, value)` into bank `r % 2`, slot `i`, locally and
//! on every peer, then polls until all slots of that bank carry round
//! `>= r`, and reduces locally. Double buffering makes overwrites safe: a
//! node can only reach round `r + 2` (which reuses the bank) after every
//! peer finished round `r + 1`, which implies they consumed round `r`.

use sonuma_machine::{ApiError, NodeApi};
use sonuma_memory::VAddr;
use sonuma_protocol::{NodeId, QpId};

use crate::DEFAULT_CTX;

const SLOT_BYTES: u64 = 64;

/// A reusable N-party sum all-reduce over one-sided writes.
///
/// Usage per round: [`AllReduce::start`] with this node's contribution,
/// then poll [`AllReduce::poll`] (parking on [`AllReduce::watch`] between
/// polls) until it yields the global sum.
#[derive(Debug)]
pub struct AllReduce {
    qp: QpId,
    me: usize,
    nodes: usize,
    region_base: u64,
    round: u64,
    scratch: Option<VAddr>,
    segment_base: u64,
}

impl AllReduce {
    /// Creates an endpoint for node `me` of `nodes`, with its region at
    /// `region_base` in every node's segment.
    pub fn new(qp: QpId, me: NodeId, nodes: usize, region_base: u64) -> Self {
        AllReduce {
            qp,
            me: me.index(),
            nodes,
            region_base,
            round: 0,
            scratch: None,
            segment_base: 0,
        }
    }

    /// Segment bytes required per node (two parity banks).
    pub fn region_bytes(nodes: usize) -> u64 {
        2 * nodes as u64 * SLOT_BYTES
    }

    /// Completed rounds.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Allocates the scratch line; call once on `Wake::Start`.
    ///
    /// # Errors
    ///
    /// Propagates allocation failures.
    pub fn init(&mut self, api: &mut NodeApi<'_>) -> Result<(), ApiError> {
        self.scratch = Some(api.heap_alloc(SLOT_BYTES)?);
        self.segment_base = api.ctx_base(DEFAULT_CTX).raw();
        Ok(())
    }

    fn slot_offset(&self, round: u64, node: usize) -> u64 {
        let bank = round % 2;
        self.region_base + (bank * self.nodes as u64 + node as u64) * SLOT_BYTES
    }

    fn slot_va(&self, round: u64, node: usize) -> VAddr {
        VAddr::new(self.segment_base + self.slot_offset(round, node))
    }

    /// Opens the next round with this node's `value`: stores the local
    /// slot and broadcasts it to every peer.
    ///
    /// # Errors
    ///
    /// Propagates posting failures (size QPs for `nodes - 1` writes).
    pub fn start(&mut self, api: &mut NodeApi<'_>, value: u64) -> Result<(), ApiError> {
        let scratch = self.scratch.ok_or(ApiError::BadQp)?;
        self.round += 1;
        let mut line = [0u8; 64];
        line[0..8].copy_from_slice(&self.round.to_le_bytes());
        line[8..16].copy_from_slice(&value.to_le_bytes());
        api.local_write(self.slot_va(self.round, self.me), &line)?;
        api.local_write(scratch, &line)?;
        let offset = self.slot_offset(self.round, self.me);
        for peer in 0..self.nodes {
            if peer == self.me {
                continue;
            }
            api.post_write(
                self.qp,
                NodeId(peer as u16),
                DEFAULT_CTX,
                offset,
                scratch,
                SLOT_BYTES,
            )?;
        }
        Ok(())
    }

    /// Returns the round's global sum once every contribution arrived.
    ///
    /// # Errors
    ///
    /// Propagates local read faults.
    pub fn poll(&self, api: &mut NodeApi<'_>) -> Result<Option<u64>, ApiError> {
        let mut sum = 0u64;
        for node in 0..self.nodes {
            let mut line = [0u8; 16];
            api.local_read(self.slot_va(self.round, node), &mut line)?;
            let round = u64::from_le_bytes(line[0..8].try_into().unwrap());
            if round < self.round {
                return Ok(None);
            }
            debug_assert_eq!(round, self.round, "bank reused before consumption");
            sum = sum.wrapping_add(u64::from_le_bytes(line[8..16].try_into().unwrap()));
        }
        Ok(Some(sum))
    }

    /// The local range to pass to `Step::WaitMemory` while contributions
    /// are outstanding.
    pub fn watch(&self) -> (VAddr, u64) {
        let bank = self.round % 2;
        (
            VAddr::new(
                self.segment_base + self.region_base + bank * self.nodes as u64 * SLOT_BYTES,
            ),
            self.nodes as u64 * SLOT_BYTES,
        )
    }

    /// The QP used for broadcasts (drain its CQ opportunistically).
    pub fn qp(&self) -> QpId {
        self.qp
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn region_is_double_banked() {
        assert_eq!(AllReduce::region_bytes(4), 512);
        let a = AllReduce::new(QpId(0), NodeId(1), 4, 0);
        // Banks alternate by round parity.
        assert_ne!(a.slot_offset(1, 2), a.slot_offset(2, 2));
        assert_eq!(a.slot_offset(1, 2), a.slot_offset(3, 2));
        // Slots within a bank are distinct lines.
        assert_eq!(a.slot_offset(1, 3) - a.slot_offset(1, 2), 64);
    }

    #[test]
    fn watch_covers_current_bank() {
        let mut a = AllReduce::new(QpId(0), NodeId(0), 4, 1024);
        a.round = 1;
        let (_, len) = a.watch();
        assert_eq!(len, 256);
    }
}
