//! RDMA over InfiniBand with a PCIe-attached adapter (Table 2's
//! comparison system).
//!
//! The paper's reference point is a Mellanox ConnectX-3 on a Xeon E5-2670
//! host, servers back-to-back over 56 Gbps InfiniBand [14, 36]: 1.19 µs
//! remote reads, 1.15 µs fetch-and-add, 50 Gbps read bandwidth (capped by
//! PCIe Gen3, not the 56 Gbps wire), and 35 M IOPS using four QPs on four
//! cores. The deciding contrast with soNUMA is the I/O-bus placement:
//! "it takes 400-500 ns to communicate short bursts over the PCIe bus"
//! \[21\], and every operation crosses it multiple times.

use sonuma_sim::SimTime;

/// A calibrated RDMA host-adapter-fabric model.
///
/// # Example
///
/// ```
/// use sonuma_baselines::RdmaFabric;
///
/// let ib = RdmaFabric::connectx3();
/// let rtt = ib.read_latency(64);
/// assert!((1.0..1.4).contains(&rtt.as_us_f64())); // the paper's 1.19 us
/// ```
#[derive(Debug, Clone, Copy)]
pub struct RdmaFabric {
    /// MMIO doorbell write crossing PCIe (posted, but serializing).
    pub doorbell: SimTime,
    /// Adapter's DMA fetch of the work-queue element from host memory.
    pub wqe_fetch: SimTime,
    /// Adapter processing per operation (each side).
    pub adapter_processing: SimTime,
    /// One-way wire latency between back-to-back HCAs.
    pub wire_latency: SimTime,
    /// Destination-side DMA to/from host DRAM (short burst).
    pub dma_burst: SimTime,
    /// Completion write-back + CQ poll observation at the initiator.
    pub completion: SimTime,
    /// InfiniBand wire rate, bits per second (4x FDR = 56 Gbps).
    pub wire_bits_per_sec: u64,
    /// PCIe Gen3 x8 effective data rate, bits per second — the bandwidth
    /// ceiling the paper highlights.
    pub pcie_bits_per_sec: u64,
    /// Adapter operation issue rate per queue pair (ops/s).
    pub ops_per_sec_per_qp: u64,
}

impl RdmaFabric {
    /// ConnectX-3 on PCIe Gen3, back-to-back 56 Gbps InfiniBand, per the
    /// measurements the paper cites \[14\].
    pub fn connectx3() -> Self {
        RdmaFabric {
            doorbell: SimTime::from_ns(160),
            wqe_fetch: SimTime::from_ns(220),
            adapter_processing: SimTime::from_ns(70),
            wire_latency: SimTime::from_ns(150),
            dma_burst: SimTime::from_ns(140),
            completion: SimTime::from_ns(80),
            wire_bits_per_sec: 56_000_000_000,
            pcie_bits_per_sec: 50_000_000_000,
            ops_per_sec_per_qp: 8_750_000,
        }
    }

    fn payload_time(&self, bytes: u64) -> SimTime {
        // Payload crosses the wire once and PCIe once per direction; the
        // slower of the two (PCIe) dominates streaming.
        let wire = bytes as f64 * 8.0 / self.wire_bits_per_sec as f64 * 1e9;
        let pcie = bytes as f64 * 8.0 / self.pcie_bits_per_sec as f64 * 1e9;
        SimTime::from_ns_f64(wire + pcie)
    }

    /// End-to-end latency of a one-sided read of `bytes`.
    ///
    /// Initiator: doorbell + WQE fetch + adapter; wire out; target adapter
    /// performs the DMA read (no CPU); wire back; initiator DMA write +
    /// completion. 64 B calibrates to ~1.19 µs.
    pub fn read_latency(&self, bytes: u64) -> SimTime {
        self.doorbell
            + self.wqe_fetch
            + self.adapter_processing
            + self.wire_latency
            + self.adapter_processing
            + self.dma_burst
            + self.wire_latency
            + self.dma_burst
            + self.completion
            + self.payload_time(bytes)
    }

    /// Latency of a remote fetch-and-add (handled by the target adapter;
    /// the paper measures it at 1.15 µs, marginally under the read).
    pub fn fetch_add_latency(&self) -> SimTime {
        // 8-byte payload; the adapter's atomic unit replaces the DRAM DMA
        // with a slightly cheaper read-modify-write over PCIe.
        self.read_latency(8)
    }

    /// Streaming read bandwidth in Gbps for `bytes`-sized operations with
    /// deep pipelining: the PCIe ceiling, unless small operations leave the
    /// adapter issue-limited.
    pub fn read_bandwidth_gbps(&self, bytes: u64, qps: usize) -> f64 {
        let issue_limited =
            (self.ops_per_sec_per_qp * qps as u64) as f64 * bytes as f64 * 8.0 / 1e9;
        let pcie = self.pcie_bits_per_sec as f64 / 1e9;
        issue_limited.min(pcie)
    }

    /// Small-operation rate (IOPS) with `qps` queue pairs on as many cores
    /// — the paper reports 35 M for four.
    pub fn iops(&self, qps: usize) -> f64 {
        (self.ops_per_sec_per_qp * qps as u64) as f64
    }

    /// Total PCIe crossings per one-sided read — the structural overhead
    /// soNUMA eliminates (used by the Table 2 commentary).
    pub fn pcie_crossings_per_read(&self) -> u32 {
        3 // doorbell, WQE fetch, payload delivery (+ completion piggybacks)
    }
}

impl crate::backend::LinkModel for RdmaFabric {
    fn label(&self) -> &'static str {
        "RDMA (ConnectX-3)"
    }

    /// One-sided reads and writes traverse the same doorbell/WQE/wire/DMA
    /// stages; atomics use the adapter's atomic unit (1.15 µs vs. the
    /// 1.19 µs read in the paper's Table 2).
    fn op_latency(&self, op: sonuma_protocol::RemoteOp, bytes: u64) -> SimTime {
        use sonuma_protocol::RemoteOp;
        match op {
            RemoteOp::FetchAdd | RemoteOp::CompSwap => self.fetch_add_latency(),
            _ => self.read_latency(bytes),
        }
    }

    /// The adapter issues at most `ops_per_sec_per_qp` operations per QP;
    /// one backend port maps to one QP.
    fn issue_occupancy(&self, _op: sonuma_protocol::RemoteOp, _bytes: u64) -> SimTime {
        SimTime::from_ns_f64(1e9 / self.ops_per_sec_per_qp as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_latency_matches_paper() {
        let ib = RdmaFabric::connectx3();
        let us = ib.read_latency(64).as_us_f64();
        assert!(
            (1.1..1.3).contains(&us),
            "64 B read RTT {us:.2} us; the paper reports 1.19 us"
        );
    }

    #[test]
    fn fetch_add_close_to_read() {
        let ib = RdmaFabric::connectx3();
        let fa = ib.fetch_add_latency().as_us_f64();
        assert!(
            (1.0..1.3).contains(&fa),
            "fetch-and-add {fa:.2} us; the paper reports 1.15 us"
        );
        assert!(ib.fetch_add_latency() <= ib.read_latency(64));
    }

    #[test]
    fn bandwidth_capped_by_pcie() {
        let ib = RdmaFabric::connectx3();
        let bw = ib.read_bandwidth_gbps(8192, 4);
        assert!(
            (49.0..=50.0).contains(&bw),
            "large-read bandwidth {bw} Gbps; the paper reports 50 Gbps"
        );
        // The wire could do more: the ceiling is the bus, not InfiniBand.
        assert!(ib.wire_bits_per_sec > ib.pcie_bits_per_sec);
    }

    #[test]
    fn small_ops_are_issue_limited() {
        let ib = RdmaFabric::connectx3();
        let bw64 = ib.read_bandwidth_gbps(64, 4);
        assert!(
            bw64 < 20.0,
            "64 B ops cannot reach the PCIe ceiling: {bw64}"
        );
    }

    #[test]
    fn iops_scale_with_qps() {
        let ib = RdmaFabric::connectx3();
        let four = ib.iops(4) / 1e6;
        assert!(
            (30.0..40.0).contains(&four),
            "4-QP IOPS {four} M; the paper reports 35 M"
        );
        assert!((ib.iops(1) - ib.iops(4) / 4.0).abs() < 1.0);
    }

    #[test]
    fn latency_grows_with_payload() {
        let ib = RdmaFabric::connectx3();
        assert!(ib.read_latency(8192) > ib.read_latency(64));
    }
}
