//! Baseline transports behind the [`RemoteBackend`] contract.
//!
//! [`ModeledBackend`] is a functional remote-memory engine timed by a
//! pluggable [`LinkModel`]: per-node byte segments, a completion-ordered
//! event clock, per-node issue serialization, and the same §4.2 error
//! semantics the soNUMA machine implements (out-of-range accesses complete
//! with [`Status::OutOfBounds`]). The TCP and RDMA models of this crate
//! each implement [`LinkModel`] (see `tcp.rs` / `rdma.rs`), giving
//! [`TcpBackend`] and [`RdmaBackend`] — so the `sonuma-core` conformance
//! suite and the Table 2 harness can replay identical request streams over
//! commodity networking, RDMA, and soNUMA, and the only thing that differs
//! is where the time goes.
//!
//! The in-flight set rides the same typed `sonuma_sim::EventEngine` the
//! machine uses: each posted operation becomes one [`OpComplete`] event on
//! the functional [`LinkWorld`], so completion ordering, the clock, and
//! the events-executed counter all come from one engine implementation.

use sonuma_protocol::{
    BackendError, NodeId, RemoteBackend, RemoteCompletion, RemoteOp, RemoteRequest, Status,
};
use sonuma_sim::{EventEngine, SimTime, World};

use crate::{RdmaFabric, TcpStack};

/// Stage-level cost model of one transport, consumed by [`ModeledBackend`].
pub trait LinkModel {
    /// Report label ("TCP/IP (Calxeda)", "RDMA (ConnectX-3)").
    fn label(&self) -> &'static str;

    /// End-to-end latency of one one-sided operation moving `bytes` of
    /// payload (request through completion observation).
    fn op_latency(&self, op: RemoteOp, bytes: u64) -> SimTime;

    /// How long the initiating side stays busy issuing one operation (the
    /// serialization floor between back-to-back posts from one node).
    fn issue_occupancy(&self, op: RemoteOp, bytes: u64) -> SimTime;
}

/// Maximum operations one node may have in flight (the baselines' send
/// queue depth; posts beyond it see [`BackendError::Backpressure`]).
pub const WINDOW: usize = 64;

/// One in-flight operation completing at the time it was scheduled for —
/// the baselines' single typed event.
#[derive(Debug, Clone)]
pub struct OpComplete {
    src: usize,
    token: u64,
    req: RemoteRequest,
}

/// The functional world behind a [`ModeledBackend`]: per-node segments,
/// completion queues, and window occupancy. Timing lives entirely in the
/// engine's event schedule.
#[derive(Debug)]
pub struct LinkWorld {
    segments: Vec<Vec<u8>>,
    ready: Vec<Vec<RemoteCompletion>>,
    in_window: Vec<usize>,
}

impl LinkWorld {
    /// Applies `req`'s functional effect at completion time; returns the
    /// completion payload.
    fn apply(&mut self, req: &RemoteRequest) -> (Status, Vec<u8>) {
        let seg = &mut self.segments[req.dst.index()];
        let end = req.offset.checked_add(req.len);
        let in_bounds = end.is_some_and(|e| e <= seg.len() as u64);
        if !in_bounds {
            return (Status::OutOfBounds, Vec::new());
        }
        let lo = req.offset as usize;
        match req.op {
            RemoteOp::Read => (Status::Ok, seg[lo..lo + req.len as usize].to_vec()),
            RemoteOp::Write => {
                seg[lo..lo + req.payload.len()].copy_from_slice(&req.payload);
                (Status::Ok, Vec::new())
            }
            RemoteOp::FetchAdd => {
                let old = u64::from_le_bytes(seg[lo..lo + 8].try_into().unwrap());
                let new = old.wrapping_add(req.operands.0);
                seg[lo..lo + 8].copy_from_slice(&new.to_le_bytes());
                (Status::Ok, old.to_le_bytes().to_vec())
            }
            RemoteOp::CompSwap => {
                let old = u64::from_le_bytes(seg[lo..lo + 8].try_into().unwrap());
                if old == req.operands.0 {
                    seg[lo..lo + 8].copy_from_slice(&req.operands.1.to_le_bytes());
                }
                (Status::Ok, old.to_le_bytes().to_vec())
            }
            RemoteOp::Interrupt => (Status::Ok, Vec::new()),
        }
    }
}

impl World for LinkWorld {
    type Event = OpComplete;

    fn handle(&mut self, _engine: &mut EventEngine<Self>, event: OpComplete) {
        // Effects apply in global completion order (the engine's
        // (time, seq) order), which linearizes atomics.
        let (status, data) = self.apply(&event.req);
        self.in_window[event.src] -= 1;
        self.ready[event.src].push(RemoteCompletion {
            token: event.token,
            status,
            data,
        });
    }
}

/// A functional remote-memory backend timed by a [`LinkModel`].
#[derive(Debug)]
pub struct ModeledBackend<M> {
    model: M,
    world: LinkWorld,
    engine: EventEngine<LinkWorld>,
    next_free: Vec<SimTime>,
    next_token: Vec<u64>,
    /// Idle-clock floor (`advance_clock_to`): the engine clock only moves
    /// with completions, so open-loop idle time is tracked separately and
    /// `now()` reports the max of the two.
    clock_floor: SimTime,
}

impl<M: LinkModel> ModeledBackend<M> {
    /// Builds a backend of `nodes` nodes with `segment_len`-byte segments.
    pub fn new(model: M, nodes: usize, segment_len: u64) -> Self {
        ModeledBackend {
            model,
            world: LinkWorld {
                segments: (0..nodes)
                    .map(|_| vec![0u8; segment_len as usize])
                    .collect(),
                ready: (0..nodes).map(|_| Vec::new()).collect(),
                in_window: vec![0; nodes],
            },
            engine: EventEngine::new(),
            next_free: vec![SimTime::ZERO; nodes],
            next_token: vec![0; nodes],
            clock_floor: SimTime::ZERO,
        }
    }

    /// The underlying cost model.
    pub fn model(&self) -> &M {
        &self.model
    }
}

impl<M: LinkModel> RemoteBackend for ModeledBackend<M> {
    fn label(&self) -> &'static str {
        self.model.label()
    }

    fn num_nodes(&self) -> usize {
        self.world.segments.len()
    }

    fn segment_len(&self) -> u64 {
        self.world.segments.first().map_or(0, |s| s.len() as u64)
    }

    fn write_ctx(&mut self, node: NodeId, offset: u64, data: &[u8]) {
        let seg = &mut self.world.segments[node.index()];
        let lo = offset as usize;
        seg[lo..lo + data.len()].copy_from_slice(data);
    }

    fn read_ctx(&self, node: NodeId, offset: u64, buf: &mut [u8]) {
        let seg = &self.world.segments[node.index()];
        let lo = offset as usize;
        buf.copy_from_slice(&seg[lo..lo + buf.len()]);
    }

    fn post(&mut self, src: NodeId, req: RemoteRequest) -> Result<u64, BackendError> {
        let n = src.index();
        if n >= self.world.segments.len() || req.dst.index() >= self.world.segments.len() {
            return Err(BackendError::BadNode);
        }
        if req.op == RemoteOp::Interrupt
            || req.len == 0
            || (req.op == RemoteOp::Write && req.len != req.payload.len() as u64)
        {
            return Err(BackendError::BadRequest);
        }
        if self.world.in_window[n] >= WINDOW {
            return Err(BackendError::Backpressure);
        }
        let bytes = match req.op {
            RemoteOp::Read => req.len,
            RemoteOp::Write => req.payload.len() as u64,
            _ => 8,
        };
        let issue_at = self
            .engine
            .now()
            .max(self.clock_floor)
            .max(self.next_free[n]);
        self.next_free[n] = issue_at + self.model.issue_occupancy(req.op, bytes);
        let done = issue_at + self.model.op_latency(req.op, bytes);
        let token = self.next_token[n];
        self.next_token[n] += 1;
        self.world.in_window[n] += 1;
        self.engine
            .schedule_at(done, OpComplete { src: n, token, req });
        Ok(token)
    }

    fn poll(&mut self, src: NodeId) -> Vec<RemoteCompletion> {
        std::mem::take(&mut self.world.ready[src.index()])
    }

    fn advance(&mut self) -> bool {
        // One completion per call, exactly as the old heap-based engine
        // advanced; the clock jumps to the completed event's time.
        if self.engine.run_steps(&mut self.world, 1) == 0 {
            return false;
        }
        self.engine.pending() > 0
    }

    fn now(&self) -> SimTime {
        self.engine.now().max(self.clock_floor)
    }

    fn advance_clock_to(&mut self, t: SimTime) {
        self.clock_floor = self.clock_floor.max(t);
    }

    fn events_processed(&self) -> u64 {
        self.engine.events_executed()
    }
}

/// Commodity TCP/IP on Calxeda microservers as a [`RemoteBackend`].
pub type TcpBackend = ModeledBackend<TcpStack>;

impl TcpBackend {
    /// The Fig. 1 platform with `nodes` nodes.
    pub fn calxeda(nodes: usize, segment_len: u64) -> Self {
        ModeledBackend::new(TcpStack::calxeda(), nodes, segment_len)
    }
}

/// RDMA over InfiniBand (ConnectX-3 class) as a [`RemoteBackend`].
pub type RdmaBackend = ModeledBackend<RdmaFabric>;

impl RdmaBackend {
    /// The Table 2 comparison platform with `nodes` nodes.
    pub fn connectx3(nodes: usize, segment_len: u64) -> Self {
        ModeledBackend::new(RdmaFabric::connectx3(), nodes, segment_len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rdma_functional_roundtrip() {
        let mut b = RdmaBackend::connectx3(2, 4096);
        b.write_ctx(NodeId(1), 0, &[5u8; 64]);
        let t = b
            .post(NodeId(0), RemoteRequest::read(NodeId(1), 0, 64))
            .unwrap();
        let done = b.complete_all(NodeId(0));
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].token, t);
        assert_eq!(done[0].data, vec![5u8; 64]);
    }

    #[test]
    fn out_of_bounds_is_a_status_not_a_panic() {
        let mut b = TcpBackend::calxeda(2, 4096);
        b.post(NodeId(0), RemoteRequest::read(NodeId(1), 1 << 20, 64))
            .unwrap();
        let done = b.complete_all(NodeId(0));
        assert_eq!(done[0].status, Status::OutOfBounds);
    }

    #[test]
    fn window_backpressure_then_drain() {
        let mut b = RdmaBackend::connectx3(2, 4096);
        for _ in 0..WINDOW {
            b.post(NodeId(0), RemoteRequest::read(NodeId(1), 0, 64))
                .unwrap();
        }
        assert_eq!(
            b.post(NodeId(0), RemoteRequest::read(NodeId(1), 0, 64)),
            Err(BackendError::Backpressure)
        );
        let done = b.complete_all(NodeId(0));
        assert_eq!(done.len(), WINDOW);
        assert!(b
            .post(NodeId(0), RemoteRequest::read(NodeId(1), 0, 64))
            .is_ok());
    }

    #[test]
    fn tcp_is_slower_than_rdma_for_small_reads() {
        let mut tcp = TcpBackend::calxeda(2, 4096);
        let mut rdma = RdmaBackend::connectx3(2, 4096);
        for b in [&mut tcp as &mut dyn RemoteBackend, &mut rdma] {
            b.post(NodeId(0), RemoteRequest::read(NodeId(1), 0, 64))
                .unwrap();
            let _ = b.complete_all(NodeId(0));
        }
        // Fig. 1 vs Table 2: >40 us against ~1.2 us.
        assert!(tcp.now() > rdma.now() * 10);
    }

    #[test]
    fn atomics_linearize_in_completion_order() {
        let mut b = RdmaBackend::connectx3(3, 4096);
        for src in [NodeId(0), NodeId(1)] {
            for _ in 0..8 {
                b.post(src, RemoteRequest::fetch_add(NodeId(2), 0, 1))
                    .unwrap();
            }
        }
        while b.advance() {}
        let mut ctr = [0u8; 8];
        b.read_ctx(NodeId(2), 0, &mut ctr);
        assert_eq!(u64::from_le_bytes(ctr), 16);
        // Observed previous values across both initiators are a permutation
        // of 0..16.
        let mut seen: Vec<u64> = [NodeId(0), NodeId(1)]
            .into_iter()
            .flat_map(|n| b.poll(n))
            .map(|c| u64::from_le_bytes(c.data[..8].try_into().unwrap()))
            .collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..16).collect::<Vec<_>>());
    }
}
