//! Commodity TCP/IP on a Calxeda-class microserver (Fig. 1 of the paper).
//!
//! "Despite the immediate proximity of the nodes and the lack of
//! intermediate switches, we observe high latency (in excess of 40 µs) for
//! small packet sizes and poor bandwidth scalability (under 2 Gbps) with
//! large packets. These bottlenecks exist due to the high processing
//! requirements of TCP/IP and are aggravated by the limited performance
//! offered by ARM cores." (§2.2)
//!
//! The model decomposes a Netpipe-style round trip into the documented
//! cost sources: per-message kernel entry/exit and socket work, per-segment
//! stack processing (the bandwidth limiter on wimpy cores), interrupt and
//! scheduling delay on the receive path, and wire serialization.

use sonuma_sim::SimTime;

/// A calibrated two-node TCP/IP stack model.
///
/// # Example
///
/// ```
/// use sonuma_baselines::TcpStack;
///
/// let tcp = TcpStack::calxeda();
/// let lat = tcp.half_duplex_latency(64);
/// assert!(lat.as_us_f64() > 40.0); // the paper's >40 us small-message latency
/// assert!(tcp.streaming_bandwidth_gbps(1 << 20) < 2.2);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct TcpStack {
    /// Kernel entry, socket bookkeeping and wake-up per message, per side.
    pub per_message_side: SimTime,
    /// Stack processing per TCP segment (checksums, skb management,
    /// driver) — the throughput limiter on the ARM cores.
    pub per_segment: SimTime,
    /// Interrupt + softirq + scheduler delay on the receive path.
    pub interrupt_delay: SimTime,
    /// Maximum segment size in bytes.
    pub mss: u64,
    /// Raw link rate in bits per second.
    pub wire_bits_per_sec: u64,
    /// Offered window: segments in flight before the sender stalls.
    pub window_segments: u64,
}

impl TcpStack {
    /// Two directly connected Calxeda ECX-1000 SoCs (10 GbE fabric,
    /// Cortex-A9 cores), calibrated to the paper's Netpipe measurements.
    pub fn calxeda() -> Self {
        TcpStack {
            per_message_side: SimTime::from_us(16),
            per_segment: SimTime::from_ns(5_500),
            interrupt_delay: SimTime::from_us(9),
            mss: 1448,
            wire_bits_per_sec: 10_000_000_000,
            window_segments: 44, // 64 KB window
        }
    }

    /// Number of segments a message of `bytes` occupies.
    pub fn segments(&self, bytes: u64) -> u64 {
        bytes.div_ceil(self.mss).max(1)
    }

    fn wire_time(&self, bytes: u64) -> SimTime {
        // Ethernet + IP + TCP headers per segment: 78 bytes with preamble.
        let on_wire = bytes + self.segments(bytes) * 78;
        SimTime::from_ns_f64(on_wire as f64 * 8.0 / self.wire_bits_per_sec as f64 * 1e9)
    }

    /// One-way latency of a `bytes`-sized message (Netpipe ping-pong
    /// divided by two): both endpoints' stacks plus segmentation and wire.
    pub fn half_duplex_latency(&self, bytes: u64) -> SimTime {
        let segs = self.segments(bytes);
        // Sender processes every segment; the receiver's per-segment work
        // overlaps reception, so the critical path sees the sender's
        // segmentation plus one receive-side segment + interrupt.
        self.per_message_side * 2
            + self.per_segment * segs
            + self.per_segment
            + self.interrupt_delay
            + self.wire_time(bytes)
    }

    /// Sustained throughput for repeated `bytes`-sized transfers, as
    /// Netpipe's streaming mode measures.
    ///
    /// The window lets wire time overlap stack processing; the per-segment
    /// CPU cost is what saturates — giving the just-under-2 Gbps plateau of
    /// Fig. 1.
    pub fn streaming_bandwidth_gbps(&self, bytes: u64) -> f64 {
        let segs = self.segments(bytes);
        // Steady-state cost per message at the bottleneck (sender CPU),
        // with per-message overheads amortized once per message.
        let cpu = self.per_message_side + self.per_segment * segs;
        let wire = self.wire_time(bytes);
        let per_message = cpu.max(wire); // pipelined across the window
        let stalled = if segs > self.window_segments {
            // Window-limited: a round of acks interleaves.
            per_message + self.interrupt_delay
        } else {
            per_message
        };
        bytes as f64 * 8.0 / stalled.as_ns_f64()
    }

    /// The Netpipe sweep: `(size, half-duplex latency, bandwidth)` rows for
    /// Fig. 1.
    pub fn netpipe_sweep(&self, sizes: &[u64]) -> Vec<(u64, SimTime, f64)> {
        sizes
            .iter()
            .map(|&s| {
                (
                    s,
                    self.half_duplex_latency(s),
                    self.streaming_bandwidth_gbps(s),
                )
            })
            .collect()
    }
}

impl crate::backend::LinkModel for TcpStack {
    fn label(&self) -> &'static str {
        "TCP/IP (Calxeda)"
    }

    /// A one-sided operation over TCP is a request/response exchange
    /// between user-space agents: the request travels one way (carrying
    /// the payload for writes), the response the other (carrying the
    /// payload for reads), each through the full kernel stack.
    fn op_latency(&self, op: sonuma_protocol::RemoteOp, bytes: u64) -> SimTime {
        use sonuma_protocol::RemoteOp;
        let header = 64;
        let (out, back) = match op {
            RemoteOp::Read => (header, bytes.max(1)),
            RemoteOp::Write => (bytes.max(1), header),
            _ => (header, header),
        };
        self.half_duplex_latency(out) + self.half_duplex_latency(back)
    }

    /// The sender's CPU is busy for the kernel-entry plus per-segment
    /// stack processing of the outbound message — the Fig. 1 bandwidth
    /// limiter on wimpy cores.
    fn issue_occupancy(&self, op: sonuma_protocol::RemoteOp, bytes: u64) -> SimTime {
        let out = match op {
            sonuma_protocol::RemoteOp::Write => bytes.max(1),
            _ => 64,
        };
        self.per_message_side + self.per_segment * self.segments(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_message_latency_exceeds_40us() {
        let tcp = TcpStack::calxeda();
        let lat = tcp.half_duplex_latency(1);
        assert!(
            (40.0..70.0).contains(&lat.as_us_f64()),
            "small-message latency {} us; Fig. 1 shows >40 us",
            lat.as_us_f64()
        );
    }

    #[test]
    fn bandwidth_plateaus_under_2gbps() {
        let tcp = TcpStack::calxeda();
        let plateau = tcp.streaming_bandwidth_gbps(1 << 20);
        assert!(
            (1.5..2.2).contains(&plateau),
            "large-transfer bandwidth {plateau} Gbps; Fig. 1 shows just under 2 Gbps"
        );
    }

    #[test]
    fn latency_grows_monotonically_with_size() {
        let tcp = TcpStack::calxeda();
        let sizes = [1u64, 64, 1024, 16 << 10, 256 << 10, 1 << 20];
        let mut prev = SimTime::ZERO;
        for &s in &sizes {
            let lat = tcp.half_duplex_latency(s);
            assert!(lat > prev, "latency must grow with size");
            prev = lat;
        }
        // Megabyte messages land in the multi-millisecond range (Fig. 1's
        // top-right decade).
        assert!(prev.as_us_f64() > 2_000.0);
    }

    #[test]
    fn bandwidth_rises_with_size() {
        let tcp = TcpStack::calxeda();
        let small = tcp.streaming_bandwidth_gbps(64);
        let large = tcp.streaming_bandwidth_gbps(256 << 10);
        assert!(small < 0.1, "64 B messages are latency-dominated: {small}");
        assert!(large > 10.0 * small);
    }

    #[test]
    fn segment_math() {
        let tcp = TcpStack::calxeda();
        assert_eq!(tcp.segments(0), 1);
        assert_eq!(tcp.segments(1448), 1);
        assert_eq!(tcp.segments(1449), 2);
        assert_eq!(tcp.segments(1 << 20), 725);
    }

    #[test]
    fn sweep_shape() {
        let tcp = TcpStack::calxeda();
        let rows = tcp.netpipe_sweep(&[64, 4096, 65536]);
        assert_eq!(rows.len(), 3);
        assert!(rows[0].1 < rows[2].1);
        assert!(rows[0].2 < rows[2].2);
    }
}
