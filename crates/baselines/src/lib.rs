//! Baseline communication stacks the paper compares soNUMA against.
//!
//! * [`tcp`] — commodity TCP/IP between two Calxeda ECX-1000 SoCs over the
//!   integrated 10 Gbps fabric, as measured by Netpipe in Fig. 1: >40 µs
//!   small-message latency and under 2 Gbps of bandwidth, dominated by
//!   kernel network-stack processing on the wimpy ARM cores.
//! * [`rdma`] — a Mellanox ConnectX-3 class RDMA adapter on a PCIe Gen3
//!   host over 56 Gbps InfiniBand (Table 2): 1.19 µs remote reads, 50 Gbps
//!   bandwidth ceiling imposed by the PCIe bus, and ~35 M IOPS across four
//!   QPs/cores.
//!
//! Both are calibrated stage-level cost models (the real hardware is out of
//! reach of a functional simulation): every documented latency component —
//! syscalls, segmentation, interrupts; doorbells, WQE fetches, payload DMA
//! — is explicit, so the benches can decompose where time goes exactly as
//! §2.2 of the paper does.

//! Both models also implement the transport-agnostic
//! [`sonuma_protocol::RemoteBackend`] contract (via [`backend`]), so the
//! same one-sided request streams the soNUMA machine executes can replay
//! over TCP and RDMA for apples-to-apples Table 2 comparisons.

pub mod backend;
pub mod rdma;
pub mod tcp;

pub use backend::{LinkModel, ModeledBackend, RdmaBackend, TcpBackend};
pub use rdma::RdmaFabric;
pub use tcp::TcpStack;
