//! A Pilaf-style key-value store: one-sided GETs, message-based PUTs.
//!
//! The paper motivates soNUMA with "latency-sensitive key-value stores ...
//! using one-sided read operations" \[38\] (§2.1, §8). This module builds
//! one: the server's hash table lives in its context segment, clients GET
//! with `rmc_read` plus linear probing (no server CPU involvement), and
//! PUTs travel through the §5.3 messaging library to the server core, which
//! applies them with plain local stores — the asymmetric design of Pilaf.
//!
//! Bucket layout (one 64-byte cache line, so a GET is a single-line remote
//! read):
//!
//! ```text
//! [0..8)   key (0 = empty)
//! [8..10)  value length
//! [10..64) value bytes (up to 54)
//! ```

use std::cell::RefCell;
use std::rc::Rc;

use sonuma_core::VAddr;
use sonuma_core::{
    drain_completions, AppProcess, Messenger, MsgConfig, MsgError, NodeApi, NodeId, QpId, RecvPoll,
    SimTime, Step, SystemBuilder, Wake,
};
use sonuma_sim::DetRng;

/// Maximum value bytes per entry.
pub const MAX_VALUE_BYTES: usize = 54;

const BUCKET_BYTES: u64 = 64;
/// Segment offset of the hash table on the server.
const TABLE_BASE: u64 = 1 << 20;

/// Key-value store configuration.
#[derive(Debug, Clone, Copy)]
pub struct KvStoreConfig {
    /// Hash-table buckets (power of two).
    pub buckets: u64,
    /// Keys preloaded by the harness.
    pub preload: u64,
    /// GET operations each client issues.
    pub gets_per_client: u32,
    /// PUT operations each client issues (interleaved).
    pub puts_per_client: u32,
    /// Workload seed.
    pub seed: u64,
}

impl Default for KvStoreConfig {
    fn default() -> Self {
        KvStoreConfig {
            buckets: 4096,
            preload: 1024,
            gets_per_client: 200,
            puts_per_client: 20,
            seed: 0xCAFE,
        }
    }
}

/// Per-client outcome.
#[derive(Debug, Clone, Default)]
pub struct KvClientReport {
    /// GETs that found their key.
    pub hits: u64,
    /// GETs that proved absence (hit an empty bucket).
    pub misses: u64,
    /// Mean GET latency.
    pub mean_get_ns: f64,
    /// PUT acknowledgements received.
    pub put_acks: u64,
    /// Values that failed verification (must stay zero).
    pub corrupt: u64,
}

/// SplitMix64-finalized key hash: deterministic, well-spread. Shared
/// with the rack-scale directory plane ([`crate::kvdir`]), which derives
/// key homes and value classes from the same stream.
pub fn hash_key(key: u64) -> u64 {
    // SplitMix64 finalizer: deterministic, well-spread.
    let mut z = key.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic value for `key` (verification).
pub fn value_of(key: u64) -> Vec<u8> {
    let len = 8 + (key % 40) as usize;
    (0..len)
        .map(|i| (key as usize * 13 + i * 3) as u8)
        .collect()
}

fn encode_bucket(key: u64, value: &[u8]) -> [u8; BUCKET_BYTES as usize] {
    assert!(value.len() <= MAX_VALUE_BYTES, "value too large");
    let mut line = [0u8; BUCKET_BYTES as usize];
    line[0..8].copy_from_slice(&key.to_le_bytes());
    line[8..10].copy_from_slice(&(value.len() as u16).to_le_bytes());
    line[10..10 + value.len()].copy_from_slice(value);
    line
}

fn decode_bucket(line: &[u8; BUCKET_BYTES as usize]) -> (u64, Vec<u8>) {
    let key = u64::from_le_bytes(line[0..8].try_into().unwrap());
    let len = u16::from_le_bytes(line[8..10].try_into().unwrap()) as usize;
    (key, line[10..10 + len.min(MAX_VALUE_BYTES)].to_vec())
}

/// Functionally preloads the server table (harness setup, untimed).
fn preload_table(system: &mut sonuma_core::SonumaSystem, server: NodeId, cfg: &KvStoreConfig) {
    for key in 1..=cfg.preload {
        let value = value_of(key);
        let mut probe = hash_key(key) % cfg.buckets;
        loop {
            let mut line = [0u8; 64];
            system.read_ctx(server, TABLE_BASE + probe * BUCKET_BYTES, &mut line);
            let (existing, _) = decode_bucket(&line);
            if existing == 0 || existing == key {
                system.write_ctx(
                    server,
                    TABLE_BASE + probe * BUCKET_BYTES,
                    &encode_bucket(key, &value),
                );
                break;
            }
            probe = (probe + 1) % cfg.buckets;
        }
    }
}

/// The server: applies PUT messages (`key | value`) and acks with the key.
struct KvServer {
    m: Messenger,
    clients: Vec<NodeId>,
    expected_puts: u64,
    applied: u64,
    buckets: u64,
}

impl KvServer {
    fn apply_put(&mut self, api: &mut NodeApi<'_>, data: &[u8]) {
        let key = u64::from_le_bytes(data[0..8].try_into().unwrap());
        let value = &data[8..];
        let seg = api.ctx_base(sonuma_core::DEFAULT_CTX).raw();
        let mut probe = hash_key(key) % self.buckets;
        loop {
            let va = VAddr::new(seg + TABLE_BASE + probe * BUCKET_BYTES);
            let mut line = [0u8; 64];
            api.local_read(va, &mut line).expect("table mapped");
            let (existing, _) = decode_bucket(&line);
            if existing == 0 || existing == key {
                api.local_write(va, &encode_bucket(key, value))
                    .expect("table mapped");
                break;
            }
            probe = (probe + 1) % self.buckets;
        }
        self.applied += 1;
    }
}

impl AppProcess for KvServer {
    fn wake(&mut self, api: &mut NodeApi<'_>, why: Wake) -> Step {
        if matches!(why, Wake::Start) {
            self.m.init(api).unwrap();
        }
        let comps = drain_completions(api, &why, self.m.qp());
        self.m.on_completions(api, &comps);
        loop {
            let mut progressed = false;
            for i in 0..self.clients.len() {
                let from = self.clients[i];
                match self.m.try_recv(api, from) {
                    Ok(RecvPoll::Message(data)) => {
                        let key = u64::from_le_bytes(data[0..8].try_into().unwrap());
                        self.apply_put(api, &data);
                        // Ack with the key; retry transient backpressure on
                        // the next wake.
                        while let Err(MsgError::Backpressure) =
                            self.m.try_send(api, from, &key.to_le_bytes())
                        {
                            let c = api.poll_cq(self.m.qp());
                            self.m.on_completions(api, &c);
                        }
                        progressed = true;
                    }
                    Ok(RecvPoll::Pending) => {}
                    Ok(RecvPoll::Empty) => self.m.flush_credits(api, from),
                    Err(_) => {}
                }
            }
            if self.applied == self.expected_puts && self.m.all_sent() {
                return Step::Done;
            }
            if !progressed {
                // Park until any client's channel (or the CQ) has news.
                let (addr, len) = self.m.recv_watch_all();
                return Step::WaitCqOrMemory {
                    qp: self.m.qp(),
                    addr,
                    len,
                };
            }
        }
    }
}

/// A client: one-sided GETs with linear probing plus messaged PUTs.
struct KvClient {
    qp: QpId,
    m: Messenger,
    server: NodeId,
    cfg: KvStoreConfig,
    rng: DetRng,
    buf: VAddr,
    gets_done: u32,
    puts_done: u32,
    awaiting_ack: bool,
    current: Option<GetState>,
    get_started: SimTime,
    lat_sum_ns: f64,
    report: Rc<RefCell<KvClientReport>>,
}

struct GetState {
    key: u64,
    probe: u64,
    expect_present: bool,
    /// WQ slot of the in-flight probe read (distinguishes its completion
    /// from the messenger's writes and pulls on the shared QP).
    wq: u16,
}

impl KvClient {
    fn issue_probe(&mut self, api: &mut NodeApi<'_>) {
        let st = self.current.as_mut().expect("active GET");
        let offset = TABLE_BASE + st.probe * BUCKET_BYTES;
        st.wq = api
            .post_read(
                self.qp,
                self.server,
                sonuma_core::DEFAULT_CTX,
                offset,
                self.buf,
                64,
            )
            .expect("GET read post");
    }

    fn start_next_get(&mut self, api: &mut NodeApi<'_>) -> bool {
        if self.gets_done >= self.cfg.gets_per_client {
            return false;
        }
        // ~75% present keys, 25% absent.
        let present = self.rng.chance(0.75);
        let key = if present {
            1 + self.rng.below(self.cfg.preload)
        } else {
            self.cfg.preload + 1000 + self.rng.below(1 << 20)
        };
        self.current = Some(GetState {
            key,
            probe: hash_key(key) % self.cfg.buckets,
            expect_present: present,
            wq: u16::MAX,
        });
        self.get_started = api.now();
        self.issue_probe(api);
        true
    }

    fn on_probe_reply(&mut self, api: &mut NodeApi<'_>) {
        let mut line = [0u8; 64];
        api.local_read(self.buf, &mut line).expect("buffer mapped");
        let (found_key, value) = decode_bucket(&line);
        let st = self.current.as_mut().expect("active GET");
        if found_key == st.key {
            let mut rep = self.report.borrow_mut();
            rep.hits += 1;
            if st.expect_present && value != value_of(st.key) {
                rep.corrupt += 1;
            }
        } else if found_key != 0 {
            // Collision: probe the next bucket.
            st.probe = (st.probe + 1) % self.cfg.buckets;
            self.issue_probe(api);
            return;
        } else {
            self.report.borrow_mut().misses += 1;
        }
        self.lat_sum_ns += (api.now() - self.get_started).as_ns_f64();
        self.gets_done += 1;
        self.current = None;
    }
}

impl AppProcess for KvClient {
    fn wake(&mut self, api: &mut NodeApi<'_>, why: Wake) -> Step {
        if matches!(why, Wake::Start) {
            self.m.init(api).unwrap();
            self.buf = api.heap_alloc(64).unwrap();
        }
        let comps = drain_completions(api, &why, self.qp);
        // GET replies are reads we posted directly (matched by WQ slot);
        // everything else belongs to the messenger.
        for c in &comps {
            let is_probe = matches!(&self.current, Some(st) if st.wq == c.wq_index);
            if is_probe {
                assert!(c.status.is_ok(), "GET probe failed: {:?}", c.status);
                self.on_probe_reply(api);
            }
        }
        self.m.on_completions(api, &comps);

        loop {
            // Harvest a PUT ack if one is in.
            if self.awaiting_ack {
                match self.m.try_recv(api, self.server) {
                    Ok(RecvPoll::Message(ack)) => {
                        assert_eq!(ack.len(), 8, "ack is the echoed key");
                        self.report.borrow_mut().put_acks += 1;
                        self.awaiting_ack = false;
                    }
                    Ok(RecvPoll::Pending) => return Step::WaitCq(self.m.qp()),
                    Ok(RecvPoll::Empty) => {
                        self.m.flush_credits(api, self.server);
                        let (addr, len) = self.m.recv_watch(self.server);
                        return Step::WaitCqOrMemory {
                            qp: self.qp,
                            addr,
                            len,
                        };
                    }
                    Err(_) => return Step::WaitCq(self.qp),
                }
            }
            if self.current.is_some() {
                return Step::WaitCq(self.qp);
            }
            // Interleave PUTs among GETs.
            let want_put = self.puts_done < self.cfg.puts_per_client
                && (self.gets_done + 1).is_multiple_of(10);
            if want_put {
                let key = 1 + self.rng.below(self.cfg.preload);
                let value = value_of(key);
                let mut msg = key.to_le_bytes().to_vec();
                msg.extend_from_slice(&value);
                match self.m.try_send(api, self.server, &msg) {
                    Ok(()) => {
                        self.puts_done += 1;
                        self.awaiting_ack = true;
                        continue;
                    }
                    Err(MsgError::NoCredit) => {
                        let (addr, len) = self.m.credit_watch(self.server);
                        return Step::WaitCqOrMemory {
                            qp: self.qp,
                            addr,
                            len,
                        };
                    }
                    Err(_) => return Step::WaitCq(self.qp),
                }
            }
            if !self.start_next_get(api) {
                if self.puts_done < self.cfg.puts_per_client {
                    // All GETs done; flush remaining PUTs.
                    self.gets_done = self.cfg.gets_per_client; // stay here
                    let key = 1 + self.rng.below(self.cfg.preload);
                    let value = value_of(key);
                    let mut msg = key.to_le_bytes().to_vec();
                    msg.extend_from_slice(&value);
                    match self.m.try_send(api, self.server, &msg) {
                        Ok(()) => {
                            self.puts_done += 1;
                            self.awaiting_ack = true;
                            continue;
                        }
                        Err(_) => return Step::WaitCq(self.qp),
                    }
                }
                if self.gets_done > 0 {
                    self.report.borrow_mut().mean_get_ns = self.lat_sum_ns / self.gets_done as f64;
                }
                return Step::Done;
            }
        }
    }
}

/// Runs the store with one server (node 0) and `clients` client nodes.
///
/// Returns per-client reports.
///
/// # Panics
///
/// Panics on setup failure or workload deadlock (run never completing).
pub fn run(clients: usize, cfg: &KvStoreConfig) -> Vec<KvClientReport> {
    assert!(clients >= 1, "need at least one client");
    let nodes = clients + 1;
    let msg_cfg = MsgConfig::hardware();
    let seg_len = TABLE_BASE + cfg.buckets * BUCKET_BYTES + msg_cfg.region_bytes(nodes);
    let mut system = SystemBuilder::simulated_hardware(nodes)
        .segment_len(seg_len)
        .build();
    let server = NodeId(0);
    preload_table(&mut system, server, cfg);

    let msg_base = TABLE_BASE + cfg.buckets * BUCKET_BYTES;
    let server_qp = system.create_qp(server, 0);
    let total_puts = cfg.puts_per_client as u64 * clients as u64;
    system.spawn(
        server,
        0,
        Box::new(KvServer {
            m: Messenger::new(msg_cfg, server_qp, server, nodes, msg_base),
            clients: (1..=clients).map(|c| NodeId(c as u16)).collect(),
            expected_puts: total_puts,
            applied: 0,
            buckets: cfg.buckets,
        }),
    );

    let mut reports = Vec::new();
    for c in 1..=clients {
        let node = NodeId(c as u16);
        let qp = system.create_qp(node, 0);
        let report = Rc::new(RefCell::new(KvClientReport::default()));
        reports.push(report.clone());
        system.spawn(
            node,
            0,
            Box::new(KvClient {
                qp,
                m: Messenger::new(msg_cfg, qp, node, nodes, msg_base),
                server,
                cfg: *cfg,
                rng: DetRng::seed(cfg.seed ^ c as u64),
                buf: VAddr::new(0),
                gets_done: 0,
                puts_done: 0,
                awaiting_ack: false,
                current: None,
                get_started: SimTime::ZERO,
                lat_sum_ns: 0.0,
                report,
            }),
        );
    }
    system.run();
    reports
        .into_iter()
        .map(|r| Rc::try_unwrap(r).expect("process finished").into_inner())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_codec_roundtrip() {
        let v = value_of(42);
        let line = encode_bucket(42, &v);
        assert_eq!(decode_bucket(&line), (42, v));
    }

    #[test]
    fn hash_is_deterministic_and_spread() {
        assert_eq!(hash_key(7), hash_key(7));
        let distinct: std::collections::HashSet<u64> =
            (0..1000).map(|k| hash_key(k) % 4096).collect();
        assert!(distinct.len() > 700, "poor spread: {}", distinct.len());
    }

    #[test]
    fn single_client_gets_and_puts() {
        let cfg = KvStoreConfig {
            gets_per_client: 50,
            puts_per_client: 5,
            preload: 256,
            ..Default::default()
        };
        let reports = run(1, &cfg);
        let r = &reports[0];
        assert_eq!(r.hits + r.misses, 50);
        assert!(r.hits > 20, "expected mostly hits: {r:?}");
        assert_eq!(r.put_acks, 5);
        assert_eq!(r.corrupt, 0, "one-sided reads must see consistent values");
        // One-sided GETs complete in sub-microsecond territory.
        assert!(
            r.mean_get_ns < 1500.0,
            "mean GET latency {} ns",
            r.mean_get_ns
        );
    }

    #[test]
    fn multiple_clients_share_the_server() {
        let cfg = KvStoreConfig {
            gets_per_client: 30,
            puts_per_client: 3,
            preload: 128,
            ..Default::default()
        };
        let reports = run(3, &cfg);
        assert_eq!(reports.len(), 3);
        for r in &reports {
            assert_eq!(r.hits + r.misses, 30);
            assert_eq!(r.put_acks, 3);
            assert_eq!(r.corrupt, 0);
        }
    }
}
