//! The §7.5 application study: PageRank under the Bulk Synchronous
//! Processing model, in three implementations.
//!
//! * [`Variant::Shm`] — `SHM(pthreads)`: one cache-coherent multicore node
//!   (4 MB of LLC per core, so "no benefits can be attributed to larger
//!   cache capacity"); threads share the vertex array directly.
//! * [`Variant::Bulk`] — `soNUMA(bulk)`: Pregel-style shuffles; at each
//!   superstep every node pulls each peer's whole vertex partition with one
//!   multi-line `rmc_read_async` (exploiting the RMC's hardware unrolling),
//!   then computes entirely locally.
//! * [`Variant::FineGrain`] — `soNUMA(fine-grain)`: the Fig. 4 programming
//!   model; every cross-partition edge issues one asynchronous remote read
//!   for the neighbour's vertex record, with callback-style accumulation.
//!   Remote operations scale "with the number of edges that span two
//!   partitions rather than with the number of vertices per partition".
//!
//! Vertex records are 32 bytes in the owner's context segment —
//! `rank[even] | rank[odd] | out_degree | pad` — so remote reads fetch the
//! 64-byte line containing the record, exactly like `rmc_read_async(...,
//! sizeof(Vertex))` in the paper's listing.

use std::cell::RefCell;
use std::rc::Rc;

use sonuma_core::ApiError;
use sonuma_core::VAddr;
use sonuma_core::{
    drain_completions, AppProcess, Barrier, NodeApi, NodeId, QpId, SimTime, Step, SystemBuilder,
    Wake,
};

use crate::graph::{Graph, Partition};

/// Segment offset of the barrier flag region.
const BARRIER_BASE: u64 = 0;
/// Segment offset of the vertex record array.
const VTX_BASE: u64 = 8192;
/// Bytes per vertex record.
const REC_BYTES: u64 = 32;

/// Which PageRank implementation to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// Shared-memory threads on one coherent multicore.
    Shm,
    /// Per-peer bulk shuffle reads each superstep.
    Bulk,
    /// One asynchronous remote read per cross-partition edge.
    FineGrain,
}

impl std::fmt::Display for Variant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Variant::Shm => "SHM(pthreads)",
            Variant::Bulk => "soNUMA(bulk)",
            Variant::FineGrain => "soNUMA(fine-grain)",
        };
        f.write_str(s)
    }
}

/// PageRank run parameters.
#[derive(Debug, Clone, Copy)]
pub struct PagerankConfig {
    /// BSP supersteps to execute.
    pub supersteps: u32,
    /// Seed for the random vertex partition.
    pub partition_seed: u64,
    /// Use the development-platform timing presets for the soNUMA variants.
    pub dev_platform: bool,
    /// Pure compute charged per edge update (beyond modeled memory
    /// accesses).
    pub per_edge_compute: SimTime,
}

impl Default for PagerankConfig {
    fn default() -> Self {
        PagerankConfig {
            supersteps: 1,
            partition_seed: 0x5EED,
            dev_platform: false,
            // ~100 cycles at 2 GHz: edge-array streaming, index
            // arithmetic, branches and the floating-point update of the
            // paper's (unoptimized) C kernel, beyond the explicitly
            // modeled vertex-record accesses.
            per_edge_compute: SimTime::from_ns(50),
        }
    }
}

/// Outcome of one PageRank run.
#[derive(Debug, Clone)]
pub struct PagerankResult {
    /// Final rank per vertex.
    pub ranks: Vec<f64>,
    /// Total simulated time for all supersteps.
    pub total_time: SimTime,
    /// Remote operations completed (zero for SHM).
    pub remote_ops: u64,
}

/// Serial reference implementation (ground truth for all variants).
pub fn reference_ranks(graph: &Graph, supersteps: u32) -> Vec<f64> {
    let v = graph.vertices();
    let mut cur = vec![1.0 / v as f64; v];
    let mut next = vec![0.0f64; v];
    for _ in 0..supersteps {
        for (i, slot) in next.iter_mut().enumerate() {
            let mut acc = 0.15 / v as f64;
            for &u in graph.in_neighbors(i) {
                acc += 0.85 * cur[u as usize] / graph.out_degree(u as usize) as f64;
            }
            *slot = acc;
        }
        std::mem::swap(&mut cur, &mut next);
    }
    cur
}

// ---------------------------------------------------------------------
// Vertex record helpers.
// ---------------------------------------------------------------------

fn record_offset(local_index: usize) -> u64 {
    VTX_BASE + local_index as u64 * REC_BYTES
}

fn rank_field_offset(local_index: usize, parity: u32) -> u64 {
    record_offset(local_index) + 8 * parity as u64
}

fn parse_record(line: &[u8; 64], within: usize, parity: u32) -> (f64, u32) {
    let base = within;
    let rank_off = base + 8 * parity as usize;
    let rank = f64::from_bits(u64::from_le_bytes(
        line[rank_off..rank_off + 8].try_into().unwrap(),
    ));
    let deg = u64::from_le_bytes(line[base + 16..base + 24].try_into().unwrap()) as u32;
    (rank, deg)
}

/// Reads `(rank, out_degree)` of a record through a charged local access.
fn read_record(
    api: &mut NodeApi<'_>,
    base_va: u64,
    local_index: usize,
    parity: u32,
) -> Result<(f64, u32), ApiError> {
    let off = local_index as u64 * REC_BYTES;
    let line_va = VAddr::new((base_va + off) & !63);
    let within = ((base_va + off) & 63) as usize;
    let mut line = [0u8; 64];
    api.local_read(line_va, &mut line)?;
    Ok(parse_record(&line, within, parity))
}

// ---------------------------------------------------------------------
// SHM(pthreads).
// ---------------------------------------------------------------------

/// Software barrier among cores of one node (stands in for
/// `pthread_barrier_t`; cores poll a shared generation counter).
#[derive(Debug, Default)]
struct ShmBarrier {
    arrived: usize,
    generation: u64,
}

/// Work units (edge updates or rank stores) per simulation quantum.
///
/// Run-to-block processes yield every `COMPUTE_QUANTUM` units so that
/// event time tracks logical time across cores — the discrete-event
/// equivalent of quantum-based multicore simulation (Flexus runs cores in
/// cycle quanta for the same reason). Without it, one core's entire
/// superstep executes at a single event timestamp and shared-resource
/// models (DRAM channel, links) see wildly non-monotone request times.
const COMPUTE_QUANTUM: u32 = 256;

struct ShmWorker {
    graph: Rc<Graph>,
    part: Rc<Partition>,
    me: usize,
    cfg: PagerankConfig,
    barrier: Rc<RefCell<ShmBarrier>>,
    total_cores: usize,
    superstep: u32,
    waiting_for_gen: u64,
    cursor_v: usize,
    cursor_e: usize,
    acc: f64,
}

impl ShmWorker {
    /// Advances the superstep by at most `budget` edge updates; returns
    /// whether the superstep's compute + write-back finished.
    fn compute_chunk(&mut self, api: &mut NodeApi<'_>, budget: &mut u32) -> bool {
        let v_total = self.graph.vertices() as f64;
        let parity = self.superstep % 2;
        let next_parity = (self.superstep + 1) % 2;
        let seg = api.ctx_base(sonuma_core::DEFAULT_CTX).raw() + VTX_BASE;
        let owned = self.part.owned_by(self.me).to_vec();
        while self.cursor_v < owned.len() {
            let v = owned[self.cursor_v] as usize;
            if self.cursor_e == 0 {
                self.acc = 0.15 / v_total;
            }
            let neighbors = self.graph.in_neighbors(v);
            while self.cursor_e < neighbors.len() {
                if *budget == 0 {
                    return false;
                }
                *budget -= 1;
                let u = neighbors[self.cursor_e] as usize;
                api.compute(self.cfg.per_edge_compute);
                let (rank, deg) = read_record(api, seg, u, parity).expect("vertex array mapped");
                self.acc += 0.85 * rank / deg as f64;
                self.cursor_e += 1;
            }
            let field = VAddr::new(seg + rank_field_offset(v, next_parity) - VTX_BASE);
            api.local_store_u64(field, self.acc.to_bits())
                .expect("mapped");
            self.cursor_v += 1;
            self.cursor_e = 0;
            *budget = budget.saturating_sub(1);
        }
        true
    }
}

impl AppProcess for ShmWorker {
    fn wake(&mut self, api: &mut NodeApi<'_>, _why: Wake) -> Step {
        let mut budget = COMPUTE_QUANTUM;
        loop {
            if self.waiting_for_gen > 0 {
                if self.barrier.borrow().generation < self.waiting_for_gen {
                    return Step::Sleep(SimTime::from_ns(200));
                }
                self.waiting_for_gen = 0;
                self.superstep += 1;
                if self.superstep == self.cfg.supersteps {
                    return Step::Done;
                }
            }
            if !self.compute_chunk(api, &mut budget) {
                return Step::Sleep(SimTime::ZERO); // quantum expired
            }
            self.cursor_v = 0;
            self.cursor_e = 0;
            // Arrive: last core to arrive releases the generation.
            let mut b = self.barrier.borrow_mut();
            b.arrived += 1;
            let target = b.generation + 1;
            if b.arrived == self.total_cores {
                b.arrived = 0;
                b.generation += 1;
            }
            drop(b);
            self.waiting_for_gen = target;
        }
    }
}

// ---------------------------------------------------------------------
// soNUMA(bulk).
// ---------------------------------------------------------------------

struct BulkWorker {
    graph: Rc<Graph>,
    part: Rc<Partition>,
    me: usize,
    nodes: usize,
    cfg: PagerankConfig,
    qp: QpId,
    barrier: Barrier,
    mirrors: Vec<VAddr>,
    /// WQ indices of in-flight shuffle reads (barrier-write completions on
    /// the same QP must not be mistaken for pulls).
    pull_wq: std::collections::HashSet<u16>,
    superstep: u32,
    phase: BulkPhase,
    cursor_v: usize,
    cursor_e: usize,
    acc: f64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BulkPhase {
    Pull,
    PullWait,
    Compute,
    BarrierWait,
}

impl BulkWorker {
    fn issue_pulls(&mut self, api: &mut NodeApi<'_>) {
        for peer in 0..self.nodes {
            if peer == self.me {
                continue;
            }
            let bytes = (self.part.owned_by(peer).len() as u64 * REC_BYTES).div_ceil(64) * 64;
            let wq = api
                .post_read(
                    self.qp,
                    NodeId(peer as u16),
                    sonuma_core::DEFAULT_CTX,
                    VTX_BASE,
                    self.mirrors[peer],
                    bytes,
                )
                .expect("bulk pull post");
            self.pull_wq.insert(wq);
        }
    }

    /// Advances the local compute phase by at most `budget` edge updates;
    /// returns whether the superstep's compute + write-back finished.
    fn compute_chunk(&mut self, api: &mut NodeApi<'_>, budget: &mut u32) -> bool {
        let v_total = self.graph.vertices() as f64;
        let parity = self.superstep % 2;
        let next_parity = (self.superstep + 1) % 2;
        let seg = api.ctx_base(sonuma_core::DEFAULT_CTX).raw() + VTX_BASE;
        let owned = self.part.owned_by(self.me).to_vec();
        while self.cursor_v < owned.len() {
            let v = owned[self.cursor_v] as usize;
            if self.cursor_e == 0 {
                self.acc = 0.15 / v_total;
            }
            let neighbors = self.graph.in_neighbors(v);
            while self.cursor_e < neighbors.len() {
                if *budget == 0 {
                    return false;
                }
                *budget -= 1;
                let u = neighbors[self.cursor_e] as usize;
                api.compute(self.cfg.per_edge_compute);
                let owner = self.part.node_of(u);
                let idx = self.part.index_of(u);
                let base = if owner == self.me {
                    seg
                } else {
                    self.mirrors[owner].raw()
                };
                let (rank, deg) = read_record(api, base, idx, parity).expect("mapped");
                self.acc += 0.85 * rank / deg as f64;
                self.cursor_e += 1;
            }
            let idx = self.part.index_of(v);
            let field = VAddr::new(seg + rank_field_offset(idx, next_parity) - VTX_BASE);
            api.local_store_u64(field, self.acc.to_bits())
                .expect("mapped");
            self.cursor_v += 1;
            self.cursor_e = 0;
            *budget = budget.saturating_sub(1);
        }
        true
    }
}

impl AppProcess for BulkWorker {
    fn wake(&mut self, api: &mut NodeApi<'_>, why: Wake) -> Step {
        if matches!(why, Wake::Start) {
            self.barrier.init(api).unwrap();
            for peer in 0..self.nodes {
                if peer == self.me {
                    continue;
                }
                let bytes = (self.part.owned_by(peer).len() as u64 * REC_BYTES).div_ceil(64) * 64;
                self.mirrors[peer] = api.heap_alloc(bytes.max(64)).unwrap();
            }
        }
        let comps = drain_completions(api, &why, self.qp);
        for c in &comps {
            if self.pull_wq.remove(&c.wq_index) {
                debug_assert!(c.status.is_ok(), "shuffle read failed: {:?}", c.status);
            }
        }

        let mut budget = COMPUTE_QUANTUM;
        loop {
            match self.phase {
                BulkPhase::Pull => {
                    if self.nodes > 1 {
                        self.issue_pulls(api);
                        self.phase = BulkPhase::PullWait;
                    } else {
                        self.phase = BulkPhase::Compute;
                    }
                }
                BulkPhase::PullWait => {
                    if !self.pull_wq.is_empty() {
                        return Step::WaitCq(self.qp);
                    }
                    self.phase = BulkPhase::Compute;
                }
                BulkPhase::Compute => {
                    if !self.compute_chunk(api, &mut budget) {
                        return Step::Sleep(SimTime::ZERO); // quantum expired
                    }
                    self.cursor_v = 0;
                    self.cursor_e = 0;
                    self.barrier.arrive(api).expect("barrier arrive");
                    self.phase = BulkPhase::BarrierWait;
                }
                BulkPhase::BarrierWait => {
                    if !self.barrier.ready(api).unwrap() {
                        let (addr, len) = self.barrier.watch();
                        return Step::WaitCqOrMemory {
                            qp: self.qp,
                            addr,
                            len,
                        };
                    }
                    self.superstep += 1;
                    if self.superstep == self.cfg.supersteps {
                        return Step::Done;
                    }
                    self.phase = BulkPhase::Pull;
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// soNUMA(fine-grain).
// ---------------------------------------------------------------------

struct SlotInfo {
    dest_local: u32,
    within_line: u8,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Advance {
    Finished,
    WqFull,
    Quantum,
}

struct FineGrainWorker {
    graph: Rc<Graph>,
    part: Rc<Partition>,
    me: usize,
    cfg: PagerankConfig,
    qp: QpId,
    barrier: Barrier,
    lbuf: VAddr,
    slots: Vec<Option<SlotInfo>>,
    in_flight: u32,
    accum: Vec<f64>,
    cursor_v: usize,
    cursor_e: usize,
    superstep: u32,
    draining: bool,
    in_barrier: bool,
}

impl FineGrainWorker {
    /// Applies completed remote reads (the paper's callback dispatch).
    fn apply_completions(&mut self, api: &mut NodeApi<'_>, comps: &[sonuma_core::Completion]) {
        let parity = self.superstep % 2;
        let callback = api.software().callback_cost;
        for c in comps {
            let Some(slot) = self.slots[c.wq_index as usize].take() else {
                continue; // barrier write completion
            };
            self.in_flight -= 1;
            debug_assert!(c.status.is_ok(), "remote vertex read failed");
            // Callback dispatch - the per-request software overhead that
            // bounds the fine-grain variant's per-core read rate (par. 7.5).
            api.compute(callback);
            let line_va = VAddr::new(self.lbuf.raw() + c.wq_index as u64 * 64);
            let mut line = [0u8; 64];
            api.local_read(line_va, &mut line).expect("lbuf mapped");
            let (rank, deg) = parse_record(&line, slot.within_line as usize, parity);
            api.compute(self.cfg.per_edge_compute);
            self.accum[slot.dest_local as usize] += 0.85 * rank / deg as f64;
        }
    }

    /// Issues reads / local accumulations until finished, out of WQ slots,
    /// or out of quantum budget.
    fn advance_compute(&mut self, api: &mut NodeApi<'_>, budget: &mut u32) -> Advance {
        let parity = self.superstep % 2;
        let owned = self.part.owned_by(self.me);
        let seg = api.ctx_base(sonuma_core::DEFAULT_CTX).raw() + VTX_BASE;
        while self.cursor_v < owned.len() {
            let v = owned[self.cursor_v] as usize;
            let neighbors = self.graph.in_neighbors(v);
            while self.cursor_e < neighbors.len() {
                if *budget == 0 {
                    return Advance::Quantum;
                }
                *budget -= 1;
                let u = neighbors[self.cursor_e] as usize;
                let owner = self.part.node_of(u);
                let idx = self.part.index_of(u);
                if owner == self.me {
                    // Shared-memory fast path (`is_local` in Fig. 4).
                    api.compute(self.cfg.per_edge_compute);
                    let (rank, deg) = read_record(api, seg, idx, parity).expect("mapped");
                    self.accum[self.cursor_v] += 0.85 * rank / deg as f64;
                } else {
                    // rmc_read_async of the line holding u's record.
                    let rec = record_offset(idx);
                    let line_off = rec & !63;
                    let wq_probe = api.next_wq_index(self.qp);
                    let buf = VAddr::new(self.lbuf.raw() + wq_probe as u64 * 64);
                    match api.post_read(
                        self.qp,
                        NodeId(owner as u16),
                        sonuma_core::DEFAULT_CTX,
                        line_off,
                        buf,
                        64,
                    ) {
                        Ok(wq) => {
                            debug_assert_eq!(wq, wq_probe);
                            debug_assert!(
                                self.slots[wq as usize].is_none(),
                                "slot reuse while in flight"
                            );
                            self.slots[wq as usize] = Some(SlotInfo {
                                dest_local: self.cursor_v as u32,
                                within_line: (rec - line_off) as u8,
                            });
                            self.in_flight += 1;
                        }
                        Err(ApiError::WqFull) => return Advance::WqFull,
                        Err(e) => panic!("post failed: {e}"),
                    }
                }
                self.cursor_e += 1;
            }
            self.cursor_v += 1;
            self.cursor_e = 0;
        }
        Advance::Finished
    }

    fn write_back_and_arrive(&mut self, api: &mut NodeApi<'_>) {
        let next_parity = (self.superstep + 1) % 2;
        let seg = api.ctx_base(sonuma_core::DEFAULT_CTX).raw() + VTX_BASE;
        for (i, acc) in self.accum.iter().enumerate() {
            let field = VAddr::new(seg + rank_field_offset(i, next_parity) - VTX_BASE);
            api.local_store_u64(field, acc.to_bits()).expect("mapped");
        }
        self.barrier.arrive(api).expect("barrier arrive");
    }
}

impl AppProcess for FineGrainWorker {
    fn wake(&mut self, api: &mut NodeApi<'_>, why: Wake) -> Step {
        if matches!(why, Wake::Start) {
            self.barrier.init(api).unwrap();
            let ring = api.qp_capacity(self.qp) as u64 * 64;
            self.lbuf = api.heap_alloc(ring).unwrap();
            self.slots = (0..api.qp_capacity(self.qp)).map(|_| None).collect();
            self.reset_superstep(api);
        }
        let comps = drain_completions(api, &why, self.qp);
        self.apply_completions(api, &comps);

        let mut budget = COMPUTE_QUANTUM;
        loop {
            if self.in_barrier {
                if !self.barrier.ready(api).unwrap() {
                    let (addr, len) = self.barrier.watch();
                    return Step::WaitCqOrMemory {
                        qp: self.qp,
                        addr,
                        len,
                    };
                }
                self.in_barrier = false;
                self.superstep += 1;
                if self.superstep == self.cfg.supersteps {
                    return Step::Done;
                }
                self.reset_superstep(api);
            }
            if !self.draining {
                match self.advance_compute(api, &mut budget) {
                    // WQ full: rmc_wait_for_slot — park on the CQ.
                    Advance::WqFull => return Step::WaitCq(self.qp),
                    Advance::Quantum => return Step::Sleep(SimTime::ZERO),
                    Advance::Finished => {}
                }
                self.draining = true;
            }
            // rmc_drain_cq: all callbacks must run before the write-back.
            if self.in_flight > 0 {
                return Step::WaitCq(self.qp);
            }
            self.draining = false;
            self.write_back_and_arrive(api);
            self.in_barrier = true;
        }
    }
}

impl FineGrainWorker {
    fn reset_superstep(&mut self, api: &mut NodeApi<'_>) {
        let v_total = self.graph.vertices() as f64;
        self.accum = vec![0.15 / v_total; self.part.owned_by(self.me).len()];
        self.cursor_v = 0;
        self.cursor_e = 0;
        let _ = api; // reserved for future per-superstep charges
    }
}

// ---------------------------------------------------------------------
// Harness.
// ---------------------------------------------------------------------

/// Runs PageRank and returns ranks plus timing.
///
/// `parallelism` is cores for [`Variant::Shm`] and nodes for the soNUMA
/// variants.
///
/// # Panics
///
/// Panics on setup failure (graph too large for the configured segments).
pub fn run(
    variant: Variant,
    parallelism: usize,
    graph: &Rc<Graph>,
    cfg: &PagerankConfig,
) -> PagerankResult {
    assert!(parallelism > 0, "need at least one worker");
    match variant {
        Variant::Shm => run_shm(parallelism, graph, cfg),
        Variant::Bulk | Variant::FineGrain => run_sonuma(variant, parallelism, graph, cfg),
    }
}

fn seed_records(write: &mut dyn FnMut(u64, &[u8]), graph: &Graph, vertices: &[u32]) {
    let init = (1.0 / graph.vertices() as f64).to_bits();
    for (i, &v) in vertices.iter().enumerate() {
        let mut rec = [0u8; REC_BYTES as usize];
        rec[0..8].copy_from_slice(&init.to_le_bytes());
        rec[16..24].copy_from_slice(&(graph.out_degree(v as usize) as u64).to_le_bytes());
        write(record_offset(i), &rec);
    }
}

fn run_shm(cores: usize, graph: &Rc<Graph>, cfg: &PagerankConfig) -> PagerankResult {
    let seg_len = VTX_BASE + (graph.vertices() as u64 * REC_BYTES).div_ceil(64) * 64 + 64;
    let mut system = SystemBuilder::shared_memory(cores)
        .segment_len(seg_len)
        .build();
    // Global layout: record i belongs to vertex i.
    let all: Vec<u32> = (0..graph.vertices() as u32).collect();
    seed_records(
        &mut |off, data| system.write_ctx(NodeId(0), VTX_BASE + off - VTX_BASE, data),
        graph,
        &all,
    );
    // Work division across cores; local indices are global ids (one shared
    // array).
    let work = Partition::random(graph.vertices(), cores, cfg.partition_seed);
    let groups: Vec<Vec<u32>> = (0..cores).map(|n| work.owned_by(n).to_vec()).collect();
    let ident = Rc::new(Partition::identity(graph.vertices(), groups));
    let barrier = Rc::new(RefCell::new(ShmBarrier::default()));
    for core in 0..cores {
        system.spawn(
            NodeId(0),
            core,
            Box::new(ShmWorker {
                graph: graph.clone(),
                part: ident.clone(),
                me: core,
                cfg: *cfg,
                barrier: barrier.clone(),
                total_cores: cores,
                superstep: 0,
                waiting_for_gen: 0,
                cursor_v: 0,
                cursor_e: 0,
                acc: 0.0,
            }),
        );
    }
    system.run();
    let parity = cfg.supersteps % 2;
    let mut ranks = vec![0.0f64; graph.vertices()];
    for (v, r) in ranks.iter_mut().enumerate() {
        let mut buf = [0u8; 8];
        system.read_ctx(
            NodeId(0),
            VTX_BASE + rank_field_offset(v, parity) - VTX_BASE,
            &mut buf,
        );
        *r = f64::from_bits(u64::from_le_bytes(buf));
    }
    PagerankResult {
        ranks,
        total_time: system.now(),
        remote_ops: 0,
    }
}

fn run_sonuma(
    variant: Variant,
    nodes: usize,
    graph: &Rc<Graph>,
    cfg: &PagerankConfig,
) -> PagerankResult {
    let part = Rc::new(Partition::random(
        graph.vertices(),
        nodes,
        cfg.partition_seed,
    ));
    let max_owned = (0..nodes)
        .map(|n| part.owned_by(n).len())
        .max()
        .unwrap_or(1);
    let seg_len = VTX_BASE + (max_owned as u64 * REC_BYTES).div_ceil(64) * 64 + 64;
    let builder = if cfg.dev_platform {
        SystemBuilder::dev_platform(nodes)
    } else {
        SystemBuilder::simulated_hardware(nodes)
    };
    let mut system = builder.segment_len(seg_len).qp_entries(64).build();

    for n in 0..nodes {
        let node = NodeId(n as u16);
        let owned = part.owned_by(n).to_vec();
        seed_records(
            &mut |off, data| system.write_ctx(node, off, data),
            graph,
            &owned,
        );
    }

    for n in 0..nodes {
        let node = NodeId(n as u16);
        let qp = system.create_qp(node, 0);
        let barrier = Barrier::new(qp, node, nodes, BARRIER_BASE);
        let process: Box<dyn AppProcess> = match variant {
            Variant::Bulk => Box::new(BulkWorker {
                graph: graph.clone(),
                part: part.clone(),
                me: n,
                nodes,
                cfg: *cfg,
                qp,
                barrier,
                mirrors: vec![VAddr::new(0); nodes],
                pull_wq: std::collections::HashSet::new(),
                superstep: 0,
                phase: BulkPhase::Pull,
                cursor_v: 0,
                cursor_e: 0,
                acc: 0.0,
            }),
            Variant::FineGrain => Box::new(FineGrainWorker {
                graph: graph.clone(),
                part: part.clone(),
                me: n,
                cfg: *cfg,
                qp,
                barrier,
                lbuf: VAddr::new(0),
                slots: Vec::new(),
                in_flight: 0,
                accum: Vec::new(),
                cursor_v: 0,
                cursor_e: 0,
                superstep: 0,
                draining: false,
                in_barrier: false,
            }),
            Variant::Shm => unreachable!("handled by run_shm"),
        };
        system.spawn(node, 0, process);
    }
    system.run();

    let parity = cfg.supersteps % 2;
    let mut ranks = vec![0.0f64; graph.vertices()];
    for (v, r) in ranks.iter_mut().enumerate() {
        let n = part.node_of(v);
        let idx = part.index_of(v);
        let mut buf = [0u8; 8];
        system.read_ctx(NodeId(n as u16), rank_field_offset(idx, parity), &mut buf);
        *r = f64::from_bits(u64::from_le_bytes(buf));
    }
    let remote_ops = system.cluster.total_ops_completed();
    PagerankResult {
        ranks,
        total_time: system.now(),
        remote_ops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphConfig;

    fn small_graph() -> Rc<Graph> {
        Rc::new(Graph::rmat(&GraphConfig {
            vertices: 256,
            edges: 2048,
            skew: (0.57, 0.19, 0.19, 0.05),
            seed: 11,
        }))
    }

    fn assert_close(a: &[f64], b: &[f64]) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!((x - y).abs() < 1e-9, "rank {i} differs: {x} vs {y}");
        }
    }

    #[test]
    fn reference_ranks_sum_to_one() {
        let g = small_graph();
        let ranks = reference_ranks(&g, 10);
        let sum: f64 = ranks.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6, "rank mass {sum}");
    }

    #[test]
    fn shm_matches_reference() {
        let g = small_graph();
        let cfg = PagerankConfig {
            supersteps: 2,
            ..Default::default()
        };
        let r = run(Variant::Shm, 4, &g, &cfg);
        assert_close(&r.ranks, &reference_ranks(&g, 2));
        assert_eq!(r.remote_ops, 0);
    }

    #[test]
    fn bulk_matches_reference() {
        let g = small_graph();
        let cfg = PagerankConfig {
            supersteps: 2,
            ..Default::default()
        };
        let r = run(Variant::Bulk, 4, &g, &cfg);
        assert_close(&r.ranks, &reference_ranks(&g, 2));
        assert!(r.remote_ops > 0);
    }

    #[test]
    fn fine_grain_matches_reference() {
        let g = small_graph();
        let cfg = PagerankConfig {
            supersteps: 2,
            ..Default::default()
        };
        let r = run(Variant::FineGrain, 4, &g, &cfg);
        assert_close(&r.ranks, &reference_ranks(&g, 2));
        // Remote ops scale with cut edges, far exceeding bulk's per-peer
        // pulls.
        let bulk = run(Variant::Bulk, 4, &g, &cfg);
        assert!(r.remote_ops > bulk.remote_ops * 10);
    }

    #[test]
    fn parallel_speedup_is_positive() {
        let g = small_graph();
        let cfg = PagerankConfig {
            supersteps: 1,
            ..Default::default()
        };
        let t1 = run(Variant::Shm, 1, &g, &cfg).total_time;
        let t4 = run(Variant::Shm, 4, &g, &cfg).total_time;
        let speedup = t1.as_ns_f64() / t4.as_ns_f64();
        assert!(speedup > 2.0, "4-core SHM speedup {speedup:.2}");
    }

    #[test]
    fn fine_grain_trails_bulk() {
        let g = small_graph();
        let cfg = PagerankConfig {
            supersteps: 1,
            ..Default::default()
        };
        let bulk = run(Variant::Bulk, 4, &g, &cfg).total_time;
        let fine = run(Variant::FineGrain, 4, &g, &cfg).total_time;
        assert!(
            fine > bulk,
            "fine-grain ({fine}) should trail bulk ({bulk}) per §7.5"
        );
    }
}
