//! Directory plane of the rack-scale KV-cache service (§2.1, §8).
//!
//! The paper's flagship workload serves multi-kilobyte values by
//! one-sided remote reads: a client hashes the key, consults the
//! *directory* for the value's `(node, offset, len)` placement, and
//! issues a single `rmc_read` spanning the value's cache lines — no
//! server CPU on the data path. This module is that directory as a pure
//! function of the configuration: key homes, value-size classes, and
//! per-node bump-allocated offsets are all derived from the SplitMix64
//! key hash, so every participant (and every benchmark repetition)
//! computes the identical layout without any metadata traffic.
//!
//! Value sizes are power-of-two *classes* doubling from `value_min` to
//! `value_max` (the paper's 4 KB–64 MB span, scaled to what a CI rack
//! affords); each key's class comes from high hash bits, independent of
//! its home node. Value bytes are deterministic per key — an 8-byte
//! little-endian key header followed by a SplitMix64-derived stream —
//! so a GET's returned payload is verifiable byte-for-byte and a PUT
//! (refill) rewrites the same image, making concurrent GET/PUT of one
//! key tear-free by construction.

use crate::kvstore::hash_key;

/// Where one key's value lives: resolved by [`KvDirectory::lookup`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KvPlacement {
    /// Home node holding the value in its context segment.
    pub node: usize,
    /// Byte offset of the value within the home node's segment
    /// (64-aligned: values are whole cache lines).
    pub offset: u64,
    /// Value length in bytes (a power-of-two class multiple of 64).
    pub len: u64,
}

/// The deterministic key → `(node, offset, len)` map every client and
/// benchmark driver shares.
#[derive(Debug, Clone, PartialEq)]
pub struct KvDirectory {
    nodes: usize,
    segment_len: u64,
    value_min: u64,
    value_max: u64,
    placements: Vec<KvPlacement>,
    node_bytes: Vec<u64>,
}

impl KvDirectory {
    /// Builds the directory for `keys` keys over `nodes` nodes with
    /// `segment_len`-byte context segments and value classes doubling
    /// from `value_min` to `value_max` bytes.
    ///
    /// Placement: key `k`'s home is `hash(k) % nodes`; its class comes
    /// from bits 40.. of the same hash; offsets are bump-allocated per
    /// node in key order (lengths are 64-multiples, so every offset is
    /// 64-aligned). Errors if the parameters are malformed or any
    /// node's values overflow its segment.
    pub fn build(
        keys: u64,
        nodes: usize,
        segment_len: u64,
        value_min: u64,
        value_max: u64,
    ) -> Result<KvDirectory, String> {
        if keys == 0 {
            return Err("kv directory needs at least one key".into());
        }
        if nodes == 0 {
            return Err("kv directory needs at least one node".into());
        }
        if !value_min.is_power_of_two() || value_min < 64 {
            return Err(format!(
                "value_min must be a power of two >= 64, got {value_min}"
            ));
        }
        if !value_max.is_power_of_two() || value_max < value_min {
            return Err(format!(
                "value_max must be a power of two >= value_min ({value_min}), got {value_max}"
            ));
        }
        let classes = (value_max / value_min).ilog2() as u64 + 1;
        let mut node_bytes = vec![0u64; nodes];
        let placements: Vec<KvPlacement> = (0..keys)
            .map(|k| {
                let h = hash_key(k);
                let node = (h % nodes as u64) as usize;
                let len = value_min << ((h >> 40) % classes);
                let offset = node_bytes[node];
                node_bytes[node] += len;
                KvPlacement { node, offset, len }
            })
            .collect();
        if let Some((worst, &bytes)) = node_bytes
            .iter()
            .enumerate()
            .max_by_key(|&(_, &b)| b)
            .filter(|&(_, &b)| b > segment_len)
        {
            return Err(format!(
                "kv values overflow the context segment: node {worst} needs {bytes} bytes \
                 but segment_bytes is {segment_len} (shrink keys/value sizes or grow the segment)"
            ));
        }
        Ok(KvDirectory {
            nodes,
            segment_len,
            value_min,
            value_max,
            placements,
            node_bytes,
        })
    }

    /// The placement of `key` (panics if `key >= keys`).
    pub fn lookup(&self, key: u64) -> KvPlacement {
        self.placements[key as usize]
    }

    /// Number of keys in the directory.
    pub fn keys(&self) -> u64 {
        self.placements.len() as u64
    }

    /// Number of nodes the directory spreads over.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Number of value-size classes (`value_min` doubling to `value_max`).
    pub fn classes(&self) -> usize {
        ((self.value_max / self.value_min).ilog2() + 1) as usize
    }

    /// The byte size of value class `class`.
    pub fn class_bytes(&self, class: usize) -> u64 {
        self.value_min << class
    }

    /// The class index of a value `len` bytes long.
    pub fn class_of(&self, len: u64) -> usize {
        (len / self.value_min).ilog2() as usize
    }

    /// Bytes of values homed on `node`.
    pub fn node_bytes(&self, node: usize) -> u64 {
        self.node_bytes[node]
    }

    /// The fullest node's value footprint (always `<= segment_len`).
    pub fn max_node_bytes(&self) -> u64 {
        self.node_bytes.iter().copied().max().unwrap_or(0)
    }
}

/// Writes `key`'s deterministic value image into `buf`: the key as an
/// 8-byte little-endian header, then a SplitMix64-derived byte stream.
/// PUTs rewrite exactly this image, so readers can never observe a torn
/// value.
pub fn fill_value(key: u64, buf: &mut [u8]) {
    assert!(buf.len() >= 8, "values are at least one header");
    buf[..8].copy_from_slice(&key.to_le_bytes());
    let mut z = hash_key(key ^ 0xD6E8_FEB8_6659_FD93);
    for chunk in buf[8..].chunks_mut(8) {
        z = z
            .wrapping_mul(0x2545_F491_4F6C_DD1D)
            .wrapping_add(0x9E37_79B9_7F4A_7C15);
        chunk.copy_from_slice(&z.to_le_bytes()[..chunk.len()]);
    }
}

/// Whether `buf` is byte-for-byte `key`'s value image.
pub fn verify_value(key: u64, buf: &[u8]) -> bool {
    if buf.len() < 8 || buf[..8] != key.to_le_bytes() {
        return false;
    }
    let mut expect = vec![0u8; buf.len()];
    fill_value(key, &mut expect);
    buf == expect
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_key_resolves_to_a_valid_placement() {
        let (keys, nodes, seg) = (2048u64, 64usize, 1u64 << 20);
        let dir = KvDirectory::build(keys, nodes, seg, 4096, 32768).unwrap();
        for k in 0..keys {
            let p = dir.lookup(k);
            assert!(p.node < nodes, "key {k} homed off-rack: {p:?}");
            assert_eq!(p.offset % 64, 0, "key {k} misaligned: {p:?}");
            assert!(
                p.len >= 4096 && p.len <= 32768 && p.len.is_power_of_two(),
                "key {k} has an off-class length: {p:?}"
            );
            assert!(
                p.offset + p.len <= seg,
                "key {k} overflows its segment: {p:?}"
            );
        }
        assert!(dir.max_node_bytes() <= seg);
    }

    #[test]
    fn layout_is_deterministic_and_non_overlapping() {
        let a = KvDirectory::build(512, 16, 1 << 20, 1024, 8192).unwrap();
        let b = KvDirectory::build(512, 16, 1 << 20, 1024, 8192).unwrap();
        assert_eq!(a, b);
        // Per node, sorted extents must tile without overlap.
        for n in 0..16 {
            let mut extents: Vec<(u64, u64)> = (0..a.keys())
                .map(|k| a.lookup(k))
                .filter(|p| p.node == n)
                .map(|p| (p.offset, p.len))
                .collect();
            extents.sort_unstable();
            let mut end = 0u64;
            for (off, len) in extents {
                assert_eq!(off, end, "hole or overlap on node {n}");
                end = off + len;
            }
            assert_eq!(end, a.node_bytes(n));
        }
    }

    #[test]
    fn class_mapping_roundtrips() {
        let dir = KvDirectory::build(64, 4, 1 << 22, 4096, 65536).unwrap();
        assert_eq!(dir.classes(), 5);
        for c in 0..dir.classes() {
            assert_eq!(dir.class_of(dir.class_bytes(c)), c);
        }
    }

    #[test]
    fn overflow_is_an_error_not_a_panic() {
        let err = KvDirectory::build(4096, 2, 1 << 12, 4096, 4096).unwrap_err();
        assert!(err.contains("overflow"), "{err}");
    }

    #[test]
    fn value_image_fills_and_verifies() {
        for key in [0u64, 1, 7, 4095] {
            let mut buf = vec![0u8; 4096];
            fill_value(key, &mut buf);
            assert!(verify_value(key, &buf));
            assert!(!verify_value(key + 1, &buf));
            buf[100] ^= 1;
            assert!(!verify_value(key, &buf), "corruption must be caught");
        }
    }
}
