//! Graph structures, the R-MAT generator, and the random partitioner.

use sonuma_sim::DetRng;

/// Configuration of a synthetic R-MAT power-law graph.
///
/// Defaults follow the classic (0.57, 0.19, 0.19, 0.05) skew, which yields
/// the heavy-tailed degree distribution of social graphs like the Twitter
/// crawl used in the paper.
#[derive(Debug, Clone, Copy)]
pub struct GraphConfig {
    /// Number of vertices (rounded up to a power of two internally).
    pub vertices: usize,
    /// Number of directed edges to sample.
    pub edges: usize,
    /// R-MAT quadrant probabilities; must sum to ~1.
    pub skew: (f64, f64, f64, f64),
    /// Generator seed (determinism).
    pub seed: u64,
}

impl GraphConfig {
    /// A graph with `vertices` vertices and ~16 edges per vertex.
    pub fn social(vertices: usize, seed: u64) -> Self {
        GraphConfig {
            vertices,
            edges: vertices * 16,
            skew: (0.57, 0.19, 0.19, 0.05),
            seed,
        }
    }
}

/// A directed graph in in-edge CSR form (the shape PageRank consumes:
/// for each vertex, the sources of its incoming edges).
#[derive(Debug, Clone)]
pub struct Graph {
    offsets: Vec<u64>,
    sources: Vec<u32>,
    out_degree: Vec<u32>,
}

impl Graph {
    /// Generates a deterministic R-MAT graph.
    ///
    /// Self-loops are dropped; every vertex is given at least one outgoing
    /// edge (to its successor) so PageRank has no dangling vertices.
    ///
    /// # Panics
    ///
    /// Panics if `vertices` is zero.
    pub fn rmat(config: &GraphConfig) -> Self {
        assert!(config.vertices > 0, "empty graph");
        let n = config.vertices.next_power_of_two();
        let levels = n.trailing_zeros();
        let (a, b, c, _) = config.skew;
        let mut rng = DetRng::seed(config.seed);
        let mut pairs: Vec<(u32, u32)> = Vec::with_capacity(config.edges + n);
        for _ in 0..config.edges {
            let (mut u, mut v) = (0usize, 0usize);
            for _ in 0..levels {
                let r = rng.unit_f64();
                let (du, dv) = if r < a {
                    (0, 0)
                } else if r < a + b {
                    (0, 1)
                } else if r < a + b + c {
                    (1, 0)
                } else {
                    (1, 1)
                };
                u = (u << 1) | du;
                v = (v << 1) | dv;
            }
            if u != v && u < config.vertices && v < config.vertices {
                pairs.push((u as u32, v as u32));
            }
        }
        // Guarantee nonzero out-degree.
        let mut has_out = vec![false; config.vertices];
        for &(u, _) in &pairs {
            has_out[u as usize] = true;
        }
        for (u, _) in has_out.iter().enumerate().filter(|&(_, covered)| !covered) {
            pairs.push((u as u32, ((u + 1) % config.vertices) as u32));
        }
        Self::from_edges(config.vertices, &pairs)
    }

    /// Builds a graph from explicit directed edges `(source, target)`.
    ///
    /// # Panics
    ///
    /// Panics if any endpoint is out of range.
    pub fn from_edges(vertices: usize, edges: &[(u32, u32)]) -> Self {
        let mut out_degree = vec![0u32; vertices];
        let mut in_degree = vec![0u64; vertices];
        for &(u, v) in edges {
            assert!(
                (u as usize) < vertices && (v as usize) < vertices,
                "edge out of range"
            );
            out_degree[u as usize] += 1;
            in_degree[v as usize] += 1;
        }
        let mut offsets = vec![0u64; vertices + 1];
        for v in 0..vertices {
            offsets[v + 1] = offsets[v] + in_degree[v];
        }
        let mut sources = vec![0u32; edges.len()];
        let mut cursor = offsets.clone();
        for &(u, v) in edges {
            sources[cursor[v as usize] as usize] = u;
            cursor[v as usize] += 1;
        }
        Graph {
            offsets,
            sources,
            out_degree,
        }
    }

    /// Number of vertices.
    pub fn vertices(&self) -> usize {
        self.out_degree.len()
    }

    /// Number of directed edges.
    pub fn edges(&self) -> usize {
        self.sources.len()
    }

    /// The sources of `v`'s incoming edges.
    pub fn in_neighbors(&self, v: usize) -> &[u32] {
        let lo = self.offsets[v] as usize;
        let hi = self.offsets[v + 1] as usize;
        &self.sources[lo..hi]
    }

    /// Out-degree of `v`.
    pub fn out_degree(&self, v: usize) -> u32 {
        self.out_degree[v]
    }

    /// Maximum in-degree (skew diagnostics).
    pub fn max_in_degree(&self) -> usize {
        (0..self.vertices())
            .map(|v| self.in_neighbors(v).len())
            .max()
            .unwrap_or(0)
    }
}

/// A random equal-cardinality vertex partition — the paper's "naive
/// algorithm that randomly partitions the vertices into sets of equal
/// cardinality" (§7.5).
#[derive(Debug, Clone)]
pub struct Partition {
    node_of: Vec<u16>,
    index_in_node: Vec<u32>,
    owned: Vec<Vec<u32>>,
}

impl Partition {
    /// Randomly partitions `vertices` vertices over `nodes` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero.
    pub fn random(vertices: usize, nodes: usize, seed: u64) -> Self {
        assert!(nodes > 0, "no partitions");
        let mut perm: Vec<u32> = (0..vertices as u32).collect();
        DetRng::seed(seed).shuffle(&mut perm);
        let mut node_of = vec![0u16; vertices];
        let mut index_in_node = vec![0u32; vertices];
        let mut owned = vec![Vec::new(); nodes];
        for (i, &v) in perm.iter().enumerate() {
            let n = i * nodes / vertices; // equal-cardinality ranges
            node_of[v as usize] = n as u16;
            index_in_node[v as usize] = owned[n].len() as u32;
            owned[n].push(v);
        }
        Partition {
            node_of,
            index_in_node,
            owned,
        }
    }

    /// Builds a partition whose local indices equal global vertex ids (a
    /// single shared array) with explicit ownership groups — the work
    /// division of the shared-memory PageRank baseline.
    ///
    /// # Panics
    ///
    /// Panics if the groups do not cover exactly `vertices` vertices.
    pub fn identity(vertices: usize, groups: Vec<Vec<u32>>) -> Self {
        let mut node_of = vec![u16::MAX; vertices];
        let mut index_in_node = vec![0u32; vertices];
        let mut covered = 0usize;
        for (n, group) in groups.iter().enumerate() {
            for &v in group {
                assert!((v as usize) < vertices, "vertex out of range");
                assert_eq!(node_of[v as usize], u16::MAX, "vertex in two groups");
                node_of[v as usize] = n as u16;
                index_in_node[v as usize] = v;
                covered += 1;
            }
        }
        assert_eq!(covered, vertices, "groups must cover every vertex");
        Partition {
            node_of,
            index_in_node,
            owned: groups,
        }
    }

    /// Number of partitions.
    pub fn nodes(&self) -> usize {
        self.owned.len()
    }

    /// The node owning vertex `v`.
    pub fn node_of(&self, v: usize) -> usize {
        self.node_of[v] as usize
    }

    /// The dense per-node index of vertex `v` within its owner.
    pub fn index_of(&self, v: usize) -> usize {
        self.index_in_node[v] as usize
    }

    /// The vertices owned by `node`, in local index order.
    pub fn owned_by(&self, node: usize) -> &[u32] {
        &self.owned[node]
    }

    /// Cross-partition edge count for `graph` — the quantity that scales
    /// fine-grain remote operations (§7.5).
    pub fn cut_edges(&self, graph: &Graph) -> usize {
        (0..graph.vertices())
            .flat_map(|v| {
                let owner = self.node_of(v);
                graph
                    .in_neighbors(v)
                    .iter()
                    .filter(move |&&u| self.node_of(u as usize) != owner)
            })
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rmat_is_deterministic() {
        let cfg = GraphConfig::social(1024, 7);
        let g1 = Graph::rmat(&cfg);
        let g2 = Graph::rmat(&cfg);
        assert_eq!(g1.edges(), g2.edges());
        assert_eq!(g1.in_neighbors(10), g2.in_neighbors(10));
        let g3 = Graph::rmat(&GraphConfig::social(1024, 8));
        assert_ne!(g1.edges(), g3.edges());
    }

    #[test]
    fn rmat_has_no_dangling_vertices() {
        let g = Graph::rmat(&GraphConfig::social(500, 3));
        assert_eq!(g.vertices(), 500);
        for v in 0..g.vertices() {
            assert!(g.out_degree(v) >= 1, "vertex {v} dangles");
        }
    }

    #[test]
    fn rmat_is_skewed() {
        let g = Graph::rmat(&GraphConfig::social(4096, 1));
        let avg = g.edges() / g.vertices();
        assert!(
            g.max_in_degree() > avg * 10,
            "power-law tail missing: max {} avg {avg}",
            g.max_in_degree()
        );
    }

    #[test]
    fn csr_matches_edge_list() {
        let edges = [(0u32, 1u32), (2, 1), (1, 0), (0, 2), (3, 2)];
        let g = Graph::from_edges(4, &edges);
        assert_eq!(g.edges(), 5);
        assert_eq!(g.in_neighbors(1), &[0, 2]);
        assert_eq!(g.in_neighbors(0), &[1]);
        assert_eq!(g.in_neighbors(2), &[0, 3]);
        assert_eq!(g.in_neighbors(3), &[] as &[u32]);
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.out_degree(3), 1);
    }

    #[test]
    fn partition_is_balanced_and_consistent() {
        let p = Partition::random(1000, 8, 42);
        assert_eq!(p.nodes(), 8);
        let sizes: Vec<usize> = (0..8).map(|n| p.owned_by(n).len()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 1000);
        assert!(
            sizes.iter().all(|&s| s == 125),
            "equal cardinality: {sizes:?}"
        );
        for v in 0..1000 {
            let n = p.node_of(v);
            let i = p.index_of(v);
            assert_eq!(p.owned_by(n)[i], v as u32);
        }
    }

    #[test]
    fn partition_cut_grows_with_nodes() {
        let g = Graph::rmat(&GraphConfig::social(2048, 5));
        let cut2 = Partition::random(2048, 2, 1).cut_edges(&g);
        let cut8 = Partition::random(2048, 8, 1).cut_edges(&g);
        assert!(cut8 > cut2, "more partitions, more cut edges");
        assert!(cut8 <= g.edges());
    }

    #[test]
    fn single_partition_has_no_cut() {
        let g = Graph::rmat(&GraphConfig::social(256, 2));
        let p = Partition::random(256, 1, 0);
        assert_eq!(p.cut_edges(&g), 0);
    }
}
