//! Applications from the soNUMA evaluation (§7.5) and motivation (§2.1).
//!
//! * [`graph`] — CSR graphs, a deterministic R-MAT generator (the stand-in
//!   for the Twitter crawl \[29\], which is not redistributable; R-MAT
//!   reproduces the skewed degree distribution that drives the partition
//!   imbalance the paper identifies as the speedup limiter), and the naive
//!   random equal-cardinality vertex partitioner the paper uses.
//! * [`pagerank`] — the three Bulk-Synchronous-Processing PageRank
//!   implementations of §7.5: `SHM(pthreads)` on one cache-coherent
//!   multicore, `soNUMA(bulk)` with per-peer shuffle reads, and
//!   `soNUMA(fine-grain)` with one asynchronous remote read per
//!   cross-partition edge (the Fig. 4 programming model).
//! * [`kvstore`] — a Pilaf-style key-value store: GETs are one-sided remote
//!   reads with linear probing; PUTs go through the messaging library to
//!   the server core (§2.1, §8 "killer applications").

pub mod graph;
pub mod kvstore;
pub mod pagerank;

pub use graph::{Graph, GraphConfig, Partition};
pub use kvstore::{KvClientReport, KvStoreConfig};
pub use pagerank::{PagerankConfig, PagerankResult, Variant};
