//! Applications from the soNUMA evaluation (§7.5) and motivation (§2.1).
//!
//! * [`graph`] — CSR graphs, a deterministic R-MAT generator (the stand-in
//!   for the Twitter crawl \[29\], which is not redistributable; R-MAT
//!   reproduces the skewed degree distribution that drives the partition
//!   imbalance the paper identifies as the speedup limiter), and the naive
//!   random equal-cardinality vertex partitioner the paper uses.
//! * [`pagerank`] — the three Bulk-Synchronous-Processing PageRank
//!   implementations of §7.5: `SHM(pthreads)` on one cache-coherent
//!   multicore, `soNUMA(bulk)` with per-peer shuffle reads, and
//!   `soNUMA(fine-grain)` with one asynchronous remote read per
//!   cross-partition edge (the Fig. 4 programming model).
//! * [`kvstore`] — a Pilaf-style key-value store: GETs are one-sided remote
//!   reads with linear probing; PUTs go through the messaging library to
//!   the server core (§2.1, §8 "killer applications").
//! * [`kvdir`] — the rack-scale KV-cache *directory plane*: a deterministic
//!   key → `(node, offset, len)` map with power-of-two value-size classes
//!   and per-node bump-allocated layouts, shared by every client of the
//!   bench harness's KV service scenarios.

pub mod graph;
pub mod kvdir;
pub mod kvstore;
pub mod pagerank;

pub use graph::{Graph, GraphConfig, Partition};
pub use kvdir::{fill_value, verify_value, KvDirectory, KvPlacement};
pub use kvstore::{KvClientReport, KvStoreConfig};
pub use pagerank::{PagerankConfig, PagerankResult, Variant};
