//! Deterministic random number generation.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A seeded, deterministic PRNG used for all stochastic workload decisions.
///
/// Wrapping [`rand::rngs::SmallRng`] behind a newtype keeps the choice of
/// generator an implementation detail and guarantees every consumer seeds
/// explicitly — there is no ambient entropy anywhere in the simulator, which
/// is what makes runs reproducible.
///
/// # Example
///
/// ```
/// use sonuma_sim::DetRng;
///
/// let mut a = DetRng::seed(42);
/// let mut b = DetRng::seed(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct DetRng(SmallRng);

impl DetRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed(seed: u64) -> Self {
        DetRng(SmallRng::seed_from_u64(seed))
    }

    /// Derives an independent child generator; used to give each simulated
    /// node its own stream without cross-node coupling.
    pub fn fork(&mut self, stream: u64) -> Self {
        let base: u64 = self.0.gen();
        DetRng::seed(base ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Next uniform `u64`.
    pub fn next_u64(&mut self) -> u64 {
        self.0.gen()
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is meaningless");
        self.0.gen_range(0..bound)
    }

    /// Uniform value in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        self.0.gen_range(lo..hi)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        self.0.gen::<f64>()
    }

    /// Bernoulli draw with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.0.gen::<f64>() < p
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.0.gen_range(0..=i);
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::seed(7);
        let mut b = DetRng::seed(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = DetRng::seed(1);
        let mut b = DetRng::seed(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams should be effectively independent");
    }

    #[test]
    fn forks_are_deterministic_and_distinct() {
        let mut parent1 = DetRng::seed(99);
        let mut parent2 = DetRng::seed(99);
        let mut f1 = parent1.fork(3);
        let mut f2 = parent2.fork(3);
        assert_eq!(f1.next_u64(), f2.next_u64());

        let mut parent = DetRng::seed(99);
        let mut a = parent.fork(1);
        let mut b = parent.fork(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn below_stays_in_range() {
        let mut r = DetRng::seed(11);
        for _ in 0..1000 {
            assert!(r.below(17) < 17);
        }
    }

    #[test]
    fn range_stays_in_range() {
        let mut r = DetRng::seed(12);
        for _ in 0..1000 {
            let v = r.range(5, 9);
            assert!((5..9).contains(&v));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = DetRng::seed(13);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0 + 1e-9));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = DetRng::seed(14);
        let mut xs: Vec<u32> = (0..50).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "below(0)")]
    fn below_zero_panics() {
        DetRng::seed(0).below(0);
    }
}
